package fairmove

// Serving-path latency benchmarks behind BENCH_serve.json (make
// bench-record). Unlike the throughput benchmarks, the served path is
// latency-sensitive — a dispatch decision is useful only within its slot —
// so the recorder keeps full per-operation latency distributions and commits
// p50/p99/max, not just a mean ns/op.
//
//	slot_decision      one engine slot through the live service driver
//	                   (channel hop + policy decisions + engine step)
//	http_ingest_b256   one 256-event NDJSON batch through POST /ingest
//	                   (parse + validate + atomic admission)

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/serve"
	"repro/internal/sim"
)

// benchServer builds a started service over the -benchscale city.
func benchServer(tb testing.TB, queueCap int) *serve.Server {
	tb.Helper()
	env := sim.New(benchCity(tb), sim.DefaultOptions(2), 42)
	srv, err := serve.New(serve.Config{
		Env: env, Policy: policy.NewGroundTruth(), Seed: 42, QueueCap: queueCap,
	})
	if err != nil {
		tb.Fatal(err)
	}
	srv.Start()
	return srv
}

// serveLatencies measures n operations and returns their latencies.
func serveSlotLatencies(tb testing.TB, n int) []time.Duration {
	srv := benchServer(tb, serve.DefaultQueueCap)
	ctx := context.Background()
	defer srv.Drain(ctx)
	out := make([]time.Duration, 0, n)
	for i := 0; i < n && !srv.Done(); i++ {
		start := time.Now()
		if _, err := srv.StepSlots(ctx, 1); err != nil {
			tb.Fatal(err)
		}
		out = append(out, time.Since(start))
	}
	return out
}

func serveIngestLatencies(tb testing.TB, n int) []time.Duration {
	srv := benchServer(tb, 1<<20)
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	events := make([]serve.Event, 256)
	for i := range events {
		events[i] = serve.Event{Kind: serve.KindGPS, TimeMin: i % 10, VehicleID: i}
	}
	body, err := serve.EncodeBatch(events)
	if err != nil {
		tb.Fatal(err)
	}
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			tb.Fatalf("ingest: %s", resp.Status)
		}
		out = append(out, time.Since(start))
	}
	return out
}

// percentile returns the q-quantile (0 < q <= 1) of sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BenchmarkServe is the make-bench view: mean ns/op of the two serving-path
// operations at the current -benchscale.
func BenchmarkServe(b *testing.B) {
	b.Run("slot_decision", func(b *testing.B) {
		srv := benchServer(b, serve.DefaultQueueCap)
		ctx := context.Background()
		defer srv.Drain(ctx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if srv.Done() {
				b.Fatalf("horizon exhausted at op %d; raise Days in benchServer", i)
			}
			if _, err := srv.StepSlots(ctx, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http_ingest_b256", func(b *testing.B) {
		srv := benchServer(b, 1<<20)
		defer srv.Drain(context.Background())
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		events := make([]serve.Event, 256)
		for i := range events {
			events[i] = serve.Event{Kind: serve.KindGPS, TimeMin: i % 10, VehicleID: i}
		}
		body, err := serve.EncodeBatch(events)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("ingest: %s", resp.Status)
			}
		}
	})
}

// --- BENCH_serve.json recorder (make bench-record) ---

type serveBenchFile struct {
	Command    string            `json:"command"`
	BenchScale string            `json:"benchscale"`
	Entries    []serveBenchEntry `json:"entries"`
}

type serveBenchEntry struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
	MaxNs   float64 `json:"max_ns"`
}

const serveBenchPath = "BENCH_serve.json"

// TestRecordServeBench measures the serving-path latency distributions
// (best-of-three reps, keeping the rep with the lowest p99 — the least
// machine-noise-contaminated run) and rewrites BENCH_serve.json. Guarded by
// -recordbench; the committed file is recorded at -benchscale=full.
func TestRecordServeBench(t *testing.T) {
	if !*recordBench {
		t.Skip("pass -recordbench (make bench-record) to rewrite BENCH_serve.json")
	}
	measure := map[string]func(testing.TB, int) []time.Duration{
		"slot_decision":    serveSlotLatencies,
		"http_ingest_b256": serveIngestLatencies,
	}
	samples := map[string]int{"slot_decision": 288, "http_ingest_b256": 2048}
	out := serveBenchFile{Command: "make bench-record", BenchScale: resolveBenchScale(t)}
	for _, name := range []string{"slot_decision", "http_ingest_b256"} {
		var best serveBenchEntry
		for rep := 0; rep < 3; rep++ {
			lats := measure[name](t, samples[name])
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			e := serveBenchEntry{
				Name:    name,
				Samples: len(lats),
				P50Ns:   float64(percentile(lats, 0.50)),
				P99Ns:   float64(percentile(lats, 0.99)),
				MaxNs:   float64(lats[len(lats)-1]),
			}
			if best.Samples == 0 || e.P99Ns < best.P99Ns {
				best = e
			}
		}
		t.Logf("%-18s n=%-5d p50=%-12v p99=%-12v max=%v", name, best.Samples,
			time.Duration(best.P50Ns), time.Duration(best.P99Ns), time.Duration(best.MaxNs))
		out.Entries = append(out.Entries, best)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(serveBenchPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote " + serveBenchPath)
}
