package fairmove

// End-to-end service smoke (make serve-smoke): build the real binaries,
// start `fairmove serve` on a free port, stream two slots of recorded events
// through `datagen stream`, assert the served decision digest is the one the
// batch engine computes in-process, then SIGTERM the service and require a
// clean drain. This is the one test that exercises the shipped artifacts —
// flag parsing, signal handling, process lifecycle — rather than the
// packages behind them.

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/serve"
)

func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke: run via make serve-smoke (part of make ci)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	bin := t.TempDir()
	fairmoveBin := filepath.Join(bin, "fairmove")
	datagenBin := filepath.Join(bin, "datagen")
	for target, pkg := range map[string]string{fairmoveBin: "./cmd/fairmove", datagenBin: "./cmd/datagen"} {
		if out, err := exec.CommandContext(ctx, "go", "build", "-o", target, pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// The in-process batch computation of what the service must serve:
	// two slots of GT decisions on the identical (city, seed, options).
	const seed, fleet, slots = 42, 24, 2
	cfg := DefaultConfig(seed)
	cfg.Fleet = fleet
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := policy.NewRunner(policy.NewGroundTruth(), sys.EvalEnv(), sys.EvalSeed())
	var batch []policy.Decision
	for i := 0; i < slots; i++ {
		batch = append(batch, append([]policy.Decision(nil), r.StepSlot()...)...)
	}
	want := serve.DigestDecisions(batch)

	srv := exec.CommandContext(ctx, fairmoveBin, "serve", "-fleet", "24", "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout // interleave; the smoke greps both
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// First line: "fairmove serve: listening on http://HOST:PORT (...)".
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("service printed nothing: %v", sc.Err())
	}
	first := sc.Text()
	i := strings.Index(first, "http://")
	if i < 0 {
		t.Fatalf("no listen address in %q", first)
	}
	url := strings.Fields(first[i:])[0]
	var rest strings.Builder
	var restWG sync.WaitGroup
	restWG.Add(1)
	go func() {
		defer restWG.Done()
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
	}()

	// Stream two slots of events through the real datagen binary.
	if out, err := exec.CommandContext(ctx, datagenBin, "stream",
		"-url", url, "-fleet", "24", "-slots", "2", "-digest").CombinedOutput(); err != nil {
		t.Fatalf("datagen stream: %v\n%s", err, out)
	}

	// Ingest is asynchronous past admission: poll until both slots closed.
	client := &serve.Client{URL: url}
	deadline := time.Now().Add(30 * time.Second)
	for {
		gotSlots, _, digest, err := client.Digest(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if gotSlots >= slots {
			if gotSlots != slots {
				t.Fatalf("served %d slots, streamed exactly %d", gotSlots, slots)
			}
			if digest != want {
				t.Fatalf("served digest %s, batch engine computes %s", digest, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service stuck at %d/%d slots", gotSlots, slots)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Clean SIGTERM drain: exit 0 and the drain banner with the same digest.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		restWG.Wait()
		t.Fatalf("service exited dirty on SIGTERM: %v\n%s", err, rest.String())
	}
	restWG.Wait()
	out := rest.String()
	if !strings.Contains(out, "draining") {
		t.Fatalf("no drain banner in output:\n%s", out)
	}
	if !strings.Contains(out, "drained cleanly") {
		t.Fatalf("no clean-drain confirmation in output:\n%s", out)
	}
	if !strings.Contains(out, want) {
		t.Fatalf("drain summary does not carry the decision digest %s:\n%s", want, out)
	}
}
