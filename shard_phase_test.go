package fairmove

// Per-phase wall-clock profile of the sharded engine — the measurement
// behind the shard-scaling table in EXPERIMENTS.md. The sharded Step is a
// sequence of parallel phases separated by serial barriers; when adding
// shards stops helping (BENCH_sharding.json shows shards=4 slower than
// shards=2 on this host), this profile says which phase absorbed the time.

import (
	"testing"

	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestShardPhaseProfile steps one full episode per shard count with the
// engine's phase timers enabled and logs the per-phase totals. Guarded by
// -recordbench like the other recorders; run at -benchscale=full to profile
// the paper-scale fleet:
//
//	go test -run TestShardPhaseProfile -recordbench -benchscale=full -v .
func TestShardPhaseProfile(t *testing.T) {
	if !*recordBench {
		t.Skip("pass -recordbench to profile shard phases")
	}
	phases := []string{
		"begin_slot_apply", "route_migrants", "generate_and_match",
		"run_minute", "end_slot",
	}
	city := benchCity(t)
	for _, k := range []int{1, 2, 4} {
		env := shard.New(city, sim.DefaultOptions(1), k, 42)
		reg := telemetry.NewRegistry()
		env.SetTelemetry(reg)
		env.Reset(42)
		slots := 0
		for !env.Done() {
			env.Step(nil)
			slots++
		}
		var step float64
		for _, name := range phases {
			st := reg.Timer("shard.phase." + name).Stat()
			step += float64(st.TotalNs)
		}
		t.Logf("shards=%d: %d slots, %.1f ms timed total", env.Shards(), slots, step/1e6)
		for _, name := range phases {
			st := reg.Timer("shard.phase." + name).Stat()
			total := float64(st.TotalNs)
			t.Logf("  %-20s %9.1f ms  (%4.1f%%, %d observations)",
				name, total/1e6, 100*total/step, st.Count)
		}
	}
}
