package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitStableIsStable(t *testing.T) {
	a := SplitStable(7, "demand")
	b := SplitStable(7, "demand")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("SplitStable not stable")
		}
	}
	c := SplitStable(7, "fleet")
	same := true
	a2 := SplitStable(7, "demand")
	for i := 0; i < 20; i++ {
		if a2.Int63() != c.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different names produced identical streams")
	}
}

func TestSplitDistinctNames(t *testing.T) {
	s := New(1)
	a := s.Split("a")
	s2 := New(1)
	b := s2.Split("b")
	same := true
	for i := 0; i < 20; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Split with different names produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(5)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / float64(n)
		tol := 4 * math.Sqrt(mean/float64(n)) // ~4 sigma
		if math.Abs(got-mean) > tol+0.05 {
			t.Errorf("Poisson(%v) sample mean %v (tol %v)", mean, got, tol)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	s := New(5)
	if s.Poisson(0) != 0 || s.Poisson(-2) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestExpMeanAndPanic(t *testing.T) {
	s := New(9)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.03 {
		t.Errorf("Exp(2) sample mean %v, want ~0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	s.Exp(0)
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(11)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio %v, want ~3", ratio)
	}
}

func TestWeightedChoiceEdgeCases(t *testing.T) {
	s := New(12)
	// All-zero weights: uniform fallback, must still return valid index.
	for i := 0; i < 100; i++ {
		idx := s.WeightedChoice([]float64{0, 0, 0})
		if idx < 0 || idx > 2 {
			t.Fatalf("invalid index %d", idx)
		}
	}
	// Negative weights treated as zero.
	for i := 0; i < 100; i++ {
		if idx := s.WeightedChoice([]float64{-5, 1}); idx != 1 {
			t.Fatalf("negative weight chosen")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty weights did not panic")
		}
	}()
	s.WeightedChoice(nil)
}

func TestWeightedChoiceAlwaysValidProperty(t *testing.T) {
	s := New(99)
	f := func(ws []float64) bool {
		if len(ws) == 0 {
			return true
		}
		idx := s.WeightedChoice(ws)
		return idx >= 0 && idx < len(ws)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormStats(t *testing.T) {
	s := New(21)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stddev %v, want ~2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(41)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}
