// Package rng provides deterministic, splittable random-number streams.
//
// FairMove's simulator, data generator, and learning algorithms each need
// their own reproducible stream so that, for example, changing the number of
// training epochs does not perturb the synthetic demand. A Source is split
// into named child streams via a stable hash of the name, so the same
// (seed, name) pair always yields the same stream.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream identified by name. Streams with
// distinct names are statistically independent; the same name always yields
// the same stream.
func (s *Source) Split(name string) *Source {
	// Note: Split consumes no state from the parent; it derives purely from
	// the parent's seed-equivalent state via one draw on a cloned hash.
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	child := int64(h.Sum64()) ^ s.r.Int63()
	return New(child)
}

// SplitStable derives a child stream from seed and name only, without
// consuming parent state. Calling it repeatedly with the same name yields the
// same stream every time.
func SplitStable(seed int64, name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative 63-bit value.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Norm returns a normally distributed value with the given mean and standard
// deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp rate must be positive")
	}
	return s.r.ExpFloat64() / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := s.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has the given mu and sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// WeightedChoice returns an index in [0, len(weights)) drawn proportionally
// to weights. Negative weights are treated as zero. If all weights are zero
// it returns a uniform index. It panics on an empty slice.
func (s *Source) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice with no weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.r.Intn(len(weights))
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
