// Package rng provides deterministic, splittable random-number streams.
//
// FairMove's simulator, data generator, and learning algorithms each need
// their own reproducible stream so that, for example, changing the number of
// training epochs does not perturb the synthetic demand. A Source is split
// into named child streams via a stable hash of the name, so the same
// (seed, name) pair always yields the same stream.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream identified by name. Streams with
// distinct names are statistically independent; the same name always yields
// the same stream.
func (s *Source) Split(name string) *Source {
	// Note: Split consumes no state from the parent; it derives purely from
	// the parent's seed-equivalent state via one draw on a cloned hash.
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	child := int64(h.Sum64()) ^ s.r.Int63()
	return New(child)
}

// SplitStable derives a child stream from seed and name only, without
// consuming parent state. Calling it repeatedly with the same name yields the
// same stream every time.
func SplitStable(seed int64, name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative 63-bit value.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Norm returns a normally distributed value with the given mean and standard
// deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp rate must be positive")
	}
	return s.r.ExpFloat64() / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := s.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has the given mu and sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// WeightedChoice returns an index in [0, len(weights)) drawn proportionally
// to weights. Negative and NaN weights are treated as zero; if no weight is
// positive it falls back to a uniform index (consuming one Intn draw instead
// of the usual one Float64). A +Inf weight dominates every finite one: the
// first such index is returned deterministically, still consuming the one
// uniform draw so interleaved callers stay stream-aligned. It panics on an
// empty slice.
func (s *Source) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice with no weights")
	}
	var total float64
	for i, w := range weights {
		if math.IsInf(w, 1) {
			s.r.Float64()
			return i
		}
		if w > 0 {
			total += w
		}
	}
	if !(total > 0) {
		return s.r.Intn(len(weights))
	}
	x := s.r.Float64() * total
	last := 0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
		last = i
	}
	// Accumulated rounding can leave x at a hair above zero after the final
	// positive weight; land on that weight, never on a trailing zero entry.
	return last
}

// CumWeights precomputes the prefix sums of weights (negatives treated as
// zero) for WeightedChoiceCum. The returned total is the sum of the positive
// weights.
func CumWeights(weights []float64) (cum []float64, total float64) {
	cum = make([]float64, len(weights))
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	return cum, total
}

// WeightedChoiceCum is WeightedChoice over a precomputed prefix-sum table:
// O(log n) instead of O(n) for a draw from a fixed distribution. It consumes
// exactly one uniform draw, the same as WeightedChoice over the underlying
// weights, so the two keep the stream aligned — but the linear scan
// accumulates rounding by repeated subtraction while the table rounds by
// prefix addition, so on rare boundary values the chosen *index* differs.
// Callers pinned to byte-identical historical traces must keep the linear
// form. It panics on an empty table.
func (s *Source) WeightedChoiceCum(cum []float64, total float64) int {
	if len(cum) == 0 {
		panic("rng: WeightedChoiceCum with no weights")
	}
	if !(total > 0) { // covers total <= 0 and a NaN total alike
		return s.r.Intn(len(cum))
	}
	x := s.r.Float64() * total
	if !(x < cum[len(cum)-1]) {
		// A total exceeding the table's own sum (caller mismatch, or an
		// overflowed/Inf table) can push the draw past the last prefix; fall
		// to the last index whose weight is positive rather than blindly to
		// the final (possibly zero-weight) entry.
		return lastRisingCum(cum)
	}
	// Smallest index with cum[i] > x: the strict inequality mirrors the
	// linear scan's `x - w < 0` rule, and flat spots (zero-weight entries)
	// can never satisfy it, so the drawn index always has positive weight.
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// lastRisingCum returns the index of the last strict rise in a prefix-sum
// table — the last entry with positive weight — or 0 when the table never
// rises.
func lastRisingCum(cum []float64) int {
	for i := len(cum) - 1; i > 0; i-- {
		if cum[i] > cum[i-1] {
			return i
		}
	}
	return 0
}

// Alias is a Walker alias table: an O(1)-per-draw sampler for a fixed
// discrete distribution. Entry i either keeps its own index (with
// probability prob[i]) or defers to alias[i].
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds the alias table for weights (negatives and NaNs treated
// as zero; the first +Inf weight, if any, dominates and is drawn with
// certainty). Building is O(n); every subsequent draw costs one uniform and
// two array reads. A distribution with no positive weight yields a uniform
// table.
func NewAlias(weights []float64) Alias {
	n := len(weights)
	a := Alias{prob: make([]float64, n), alias: make([]int32, n)}
	var total float64
	for i, w := range weights {
		if math.IsInf(w, 1) {
			// Degenerate certainty: every cell defers to the infinite entry.
			for j := range a.prob {
				a.alias[j] = int32(i)
			}
			a.prob[i] = 1
			return a
		}
		if w > 0 {
			total += w
		}
	}
	if n == 0 {
		return a
	}
	if !(total > 0) {
		for i := range a.prob {
			a.prob[i] = 1
			a.alias[i] = int32(i)
		}
		return a
	}
	// Split indices into under- and over-full relative to the uniform share,
	// then pair each under-full cell with an over-full donor.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		if !(w > 0) {
			w = 0 // negatives and NaNs carry no mass
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s, l := small[len(small)-1], large[len(large)-1]
		small = small[:len(small)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, i := range append(small, large...) {
		a.prob[i] = 1
		a.alias[i] = int32(i)
	}
	return a
}

// AliasChoice draws an index from the table using exactly one uniform draw.
// The index *sequence* differs from WeightedChoice/WeightedChoiceCum over
// the same weights even though the marginal distribution is identical, so
// callers pinned to historical traces must not switch samplers. It panics
// on an empty table.
func (s *Source) AliasChoice(a Alias) int {
	n := len(a.prob)
	if n == 0 {
		panic("rng: AliasChoice with no weights")
	}
	u := s.r.Float64() * float64(n)
	i := int(u)
	if i >= n { // u == n on the open-interval boundary is impossible, but be safe
		i = n - 1
	}
	if u-float64(i) < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
