package rng

import (
	"testing"
	"testing/quick"
)

// drain reads n doubles from a stream and returns them.
func drain(s *Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Float64()
	}
	return out
}

// Property the parallel runtime stands on: a stream obtained with
// SplitStable(seed, name) yields the same values no matter what its sibling
// streams have consumed, or in what order the siblings were created and
// drained. Workers can therefore draw from their own streams concurrently
// without perturbing one another.
func TestSplitStableIndependentOfSiblingConsumption(t *testing.T) {
	prop := func(seed int64, drawsA, drawsB uint8) bool {
		// Reference: derive "worker-1" alone and drain it.
		ref := drain(SplitStable(seed, "worker-1"), 16)

		// Same stream derived after siblings were created AND heavily
		// consumed, in a different creation order.
		s2 := SplitStable(seed, "worker-2")
		drain(s2, int(drawsA)+1)
		s0 := SplitStable(seed, "worker-0")
		drain(s0, int(drawsB)+1)
		got := drain(SplitStable(seed, "worker-1"), 16)

		for i := range ref {
			if got[i] != ref[i] {
				t.Logf("draw %d: %v != %v", i, got[i], ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A child produced by Source.Split depends on the parent's position at the
// split (documented behavior), but once created it is a private stream:
// consuming one child never perturbs another, regardless of interleaving.
func TestSplitChildrenAreIsolatedAfterCreation(t *testing.T) {
	mk := func() (*Source, *Source) {
		parent := New(99)
		a := parent.Split("a")
		b := parent.Split("b")
		return a, b
	}

	// Reference: drain b untouched by a.
	_, b1 := mk()
	ref := drain(b1, 16)

	// Same creation sequence, but a is heavily consumed first.
	a2, b2 := mk()
	drain(a2, 1000)
	got := drain(b2, 16)

	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("draw %d: consuming sibling changed the stream (%v != %v)", i, got[i], ref[i])
		}
	}
}

// SplitStable streams with distinct names must not be trivially correlated —
// the degenerate failure where all "independent" workers see the same draws.
func TestSplitStableDistinctStreams(t *testing.T) {
	a := drain(SplitStable(42, "worker-0"), 8)
	b := drain(SplitStable(42, "worker-1"), 8)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("differently-named streams produced identical draws")
	}
}
