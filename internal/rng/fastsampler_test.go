package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// The fast samplers (prefix-sum binary search, Walker alias table) exist for
// the sharded engine's hot path. Their contract: same marginal distribution
// as WeightedChoice over the same weights, exactly one uniform consumed per
// draw, zero-weight entries never drawn.

func TestCumWeightsPrefixSums(t *testing.T) {
	cum, total := CumWeights([]float64{1, 0, 2, -3, 4})
	if total != 7 {
		t.Fatalf("total = %v, want 7 (negatives ignored)", total)
	}
	want := []float64{1, 1, 3, 3, 7}
	for i, c := range cum {
		if c != want[i] {
			t.Fatalf("cum[%d] = %v, want %v", i, c, want[i])
		}
	}
}

func TestWeightedChoiceCumMatchesLinearAlmostAlways(t *testing.T) {
	// The binary search rounds by prefix addition, the linear scan by
	// repeated subtraction; they may disagree only on rare boundary draws.
	weights := []float64{0.3, 0, 2.5, 1.1, 0, 0.7, 3.2}
	cum, total := CumWeights(weights)
	a, b := New(99), New(99)
	diverged := 0
	for i := 0; i < 20000; i++ {
		if a.WeightedChoice(weights) != b.WeightedChoiceCum(cum, total) {
			diverged++
		}
	}
	if diverged > 2 {
		t.Fatalf("linear and prefix-sum samplers diverged on %d of 20000 aligned draws", diverged)
	}
}

func TestWeightedChoiceCumNeverDrawsZeroWeight(t *testing.T) {
	weights := []float64{0, 1, 0, 0, 5, 0}
	cum, total := CumWeights(weights)
	src := New(7)
	for i := 0; i < 5000; i++ {
		if got := src.WeightedChoiceCum(cum, total); weights[got] == 0 {
			t.Fatalf("drew zero-weight index %d", got)
		}
	}
}

func TestAliasChoiceDistribution(t *testing.T) {
	weights := []float64{1, 3, 0, 6}
	a := NewAlias(weights)
	src := New(1234)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[src.AliasChoice(a)]++
	}
	if counts[2] != 0 {
		t.Fatalf("alias table drew zero-weight index 2 (%d times)", counts[2])
	}
	for i, w := range weights {
		want := w / 10 * n
		if w == 0 {
			continue
		}
		if math.Abs(float64(counts[i])-want) > 4*math.Sqrt(want) {
			t.Fatalf("index %d drawn %d times, want ≈%.0f", i, counts[i], want)
		}
	}
}

func TestAliasChoiceConsumesOneDraw(t *testing.T) {
	// Stream alignment: interleaving AliasChoice with Float64 must keep two
	// sources in lockstep when one replaces each AliasChoice with one
	// Float64 — the kernel's per-region streams rely on the 1:1 accounting.
	a := NewAlias([]float64{2, 5, 3})
	s1, s2 := New(42), New(42)
	for i := 0; i < 100; i++ {
		s1.AliasChoice(a)
		s2.Float64()
		if got, want := s1.Float64(), s2.Float64(); got != want {
			t.Fatalf("streams out of lockstep after %d draws: %v != %v", i+1, got, want)
		}
	}
}

func TestAliasDegenerateDistributions(t *testing.T) {
	// All-zero (and all-negative) weights fall back to uniform.
	src := New(5)
	for _, ws := range [][]float64{{0, 0, 0}, {-1, -2, -3}} {
		a := NewAlias(ws)
		seen := make(map[int]bool)
		for i := 0; i < 200; i++ {
			got := src.AliasChoice(a)
			if got < 0 || got >= len(ws) {
				t.Fatalf("out-of-range index %d", got)
			}
			seen[got] = true
		}
		if len(seen) != len(ws) {
			t.Fatalf("uniform fallback only drew %d of %d indices", len(seen), len(ws))
		}
	}
	// Single entry always wins.
	one := NewAlias([]float64{0.4})
	if got := src.AliasChoice(one); got != 0 {
		t.Fatalf("single-entry table drew %d", got)
	}
}

func TestAliasChoiceAlwaysValidProperty(t *testing.T) {
	src := New(77)
	f := func(raw []float64, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		for i, w := range raw {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 0
			}
			ws[i] = math.Mod(math.Abs(w), 1e6)
		}
		a := NewAlias(ws)
		for i := 0; i < 50; i++ {
			got := src.AliasChoice(a)
			if got < 0 || got >= len(ws) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AliasChoice on empty table did not panic")
		}
	}()
	New(1).AliasChoice(NewAlias(nil))
}

// Edge-case battery for the sampler trio: all-zero tables, single-element
// tables, NaN and +Inf weights, and float-error fallthrough must each
// degrade deterministically — no panic, no zero-weight index, no bias
// toward an arbitrary trailing entry.

func TestSamplerEdgeCaseTable(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name    string
		weights []float64
		// forbidden are indices no sampler may ever return.
		forbidden []int
		// want, when >= 0, is the only index every sampler must return.
		want int
	}{
		{"single positive", []float64{3.5}, nil, 0},
		{"single zero", []float64{0}, nil, 0},
		{"single negative", []float64{-2}, nil, 0},
		{"trailing zeros", []float64{1, 2, 0, 0}, []int{2, 3}, -1},
		{"leading zeros", []float64{0, 0, 1, 2}, []int{0, 1}, -1},
		{"nan is zero", []float64{1, nan, 2}, []int{1}, -1},
		{"all nan uniform", []float64{nan, nan}, nil, -1},
		{"inf dominates", []float64{1, inf, 5}, []int{0, 2}, 1},
		{"first inf wins", []float64{inf, 2, inf}, []int{1, 2}, 0},
		{"negatives are zero", []float64{-1, 4, -3}, []int{0, 2}, 1},
		{"tiny float sums", []float64{1e-300, 2e-300, 0}, []int{2}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cum, total := CumWeights(tc.weights)
			alias := NewAlias(tc.weights)
			src := New(31)
			for i := 0; i < 2000; i++ {
				got := [3]int{
					src.WeightedChoice(tc.weights),
					src.WeightedChoiceCum(cum, total),
					src.AliasChoice(alias),
				}
				for s, g := range got {
					if g < 0 || g >= len(tc.weights) {
						t.Fatalf("sampler %d returned out-of-range %d", s, g)
					}
					if tc.want >= 0 && g != tc.want {
						t.Fatalf("sampler %d returned %d, want %d", s, g, tc.want)
					}
					for _, f := range tc.forbidden {
						if g == f {
							t.Fatalf("sampler %d drew forbidden index %d (weight %v)", s, f, tc.weights[f])
						}
					}
				}
			}
		})
	}
}

func TestWeightedChoiceCumMismatchedTotalDeterministic(t *testing.T) {
	// A caller-supplied total above the table's own sum pushes draws past
	// the last prefix; the fallback must land on the last positive-weight
	// entry, not the final (zero-weight) one — and do so deterministically.
	cum := []float64{1, 3, 3, 3} // weights {1, 2, 0, 0}
	src := New(13)
	for i := 0; i < 2000; i++ {
		got := src.WeightedChoiceCum(cum, 100) // most draws land past cum[3]=3
		if got != 0 && got != 1 {
			t.Fatalf("mismatched-total draw returned zero-weight index %d", got)
		}
	}
}

func TestLastRisingCum(t *testing.T) {
	cases := []struct {
		cum  []float64
		want int
	}{
		{[]float64{1, 3, 3, 3}, 1},
		{[]float64{0, 0, 0}, 0},
		{[]float64{2}, 0},
		{[]float64{0, 0, 5}, 2},
		{[]float64{1, 2, 3}, 2},
	}
	for _, tc := range cases {
		if got := lastRisingCum(tc.cum); got != tc.want {
			t.Fatalf("lastRisingCum(%v) = %d, want %d", tc.cum, got, tc.want)
		}
	}
}

func TestInfWeightKeepsStreamAlignment(t *testing.T) {
	// The deterministic +Inf path must still consume exactly one uniform so
	// interleaved callers stay in lockstep with the finite-weight path.
	inf := math.Inf(1)
	weights := []float64{1, inf, 2}
	cum, total := CumWeights([]float64{1, 4, 2})
	a := NewAlias(weights)
	s1, s2 := New(17), New(17)
	for i := 0; i < 50; i++ {
		s1.WeightedChoice(weights)
		s2.WeightedChoiceCum(cum, total)
		s1.AliasChoice(a)
		s2.Float64()
		if got, want := s1.Float64(), s2.Float64(); got != want {
			t.Fatalf("streams out of lockstep after %d rounds: %v != %v", i+1, got, want)
		}
	}
}
