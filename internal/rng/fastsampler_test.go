package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// The fast samplers (prefix-sum binary search, Walker alias table) exist for
// the sharded engine's hot path. Their contract: same marginal distribution
// as WeightedChoice over the same weights, exactly one uniform consumed per
// draw, zero-weight entries never drawn.

func TestCumWeightsPrefixSums(t *testing.T) {
	cum, total := CumWeights([]float64{1, 0, 2, -3, 4})
	if total != 7 {
		t.Fatalf("total = %v, want 7 (negatives ignored)", total)
	}
	want := []float64{1, 1, 3, 3, 7}
	for i, c := range cum {
		if c != want[i] {
			t.Fatalf("cum[%d] = %v, want %v", i, c, want[i])
		}
	}
}

func TestWeightedChoiceCumMatchesLinearAlmostAlways(t *testing.T) {
	// The binary search rounds by prefix addition, the linear scan by
	// repeated subtraction; they may disagree only on rare boundary draws.
	weights := []float64{0.3, 0, 2.5, 1.1, 0, 0.7, 3.2}
	cum, total := CumWeights(weights)
	a, b := New(99), New(99)
	diverged := 0
	for i := 0; i < 20000; i++ {
		if a.WeightedChoice(weights) != b.WeightedChoiceCum(cum, total) {
			diverged++
		}
	}
	if diverged > 2 {
		t.Fatalf("linear and prefix-sum samplers diverged on %d of 20000 aligned draws", diverged)
	}
}

func TestWeightedChoiceCumNeverDrawsZeroWeight(t *testing.T) {
	weights := []float64{0, 1, 0, 0, 5, 0}
	cum, total := CumWeights(weights)
	src := New(7)
	for i := 0; i < 5000; i++ {
		if got := src.WeightedChoiceCum(cum, total); weights[got] == 0 {
			t.Fatalf("drew zero-weight index %d", got)
		}
	}
}

func TestAliasChoiceDistribution(t *testing.T) {
	weights := []float64{1, 3, 0, 6}
	a := NewAlias(weights)
	src := New(1234)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[src.AliasChoice(a)]++
	}
	if counts[2] != 0 {
		t.Fatalf("alias table drew zero-weight index 2 (%d times)", counts[2])
	}
	for i, w := range weights {
		want := w / 10 * n
		if w == 0 {
			continue
		}
		if math.Abs(float64(counts[i])-want) > 4*math.Sqrt(want) {
			t.Fatalf("index %d drawn %d times, want ≈%.0f", i, counts[i], want)
		}
	}
}

func TestAliasChoiceConsumesOneDraw(t *testing.T) {
	// Stream alignment: interleaving AliasChoice with Float64 must keep two
	// sources in lockstep when one replaces each AliasChoice with one
	// Float64 — the kernel's per-region streams rely on the 1:1 accounting.
	a := NewAlias([]float64{2, 5, 3})
	s1, s2 := New(42), New(42)
	for i := 0; i < 100; i++ {
		s1.AliasChoice(a)
		s2.Float64()
		if got, want := s1.Float64(), s2.Float64(); got != want {
			t.Fatalf("streams out of lockstep after %d draws: %v != %v", i+1, got, want)
		}
	}
}

func TestAliasDegenerateDistributions(t *testing.T) {
	// All-zero (and all-negative) weights fall back to uniform.
	src := New(5)
	for _, ws := range [][]float64{{0, 0, 0}, {-1, -2, -3}} {
		a := NewAlias(ws)
		seen := make(map[int]bool)
		for i := 0; i < 200; i++ {
			got := src.AliasChoice(a)
			if got < 0 || got >= len(ws) {
				t.Fatalf("out-of-range index %d", got)
			}
			seen[got] = true
		}
		if len(seen) != len(ws) {
			t.Fatalf("uniform fallback only drew %d of %d indices", len(seen), len(ws))
		}
	}
	// Single entry always wins.
	one := NewAlias([]float64{0.4})
	if got := src.AliasChoice(one); got != 0 {
		t.Fatalf("single-entry table drew %d", got)
	}
}

func TestAliasChoiceAlwaysValidProperty(t *testing.T) {
	src := New(77)
	f := func(raw []float64, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		for i, w := range raw {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 0
			}
			ws[i] = math.Mod(math.Abs(w), 1e6)
		}
		a := NewAlias(ws)
		for i := 0; i < 50; i++ {
			got := src.AliasChoice(a)
			if got < 0 || got >= len(ws) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AliasChoice on empty table did not panic")
		}
	}()
	New(1).AliasChoice(NewAlias(nil))
}
