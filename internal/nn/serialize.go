package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire form of an MLP. Weights travel as float64 even
// though storage is float32: widening is exact, so the wire format predates
// the float32 backend and files written by either engine load identically.
type snapshot struct {
	Layers []layerSnapshot
}

type layerSnapshot struct {
	In, Out int
	Act     Activation
	W       []float64
	B       []float64
}

func widen(v []float32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func narrow(v []float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Save writes the network weights to w.
func (m *MLP) Save(w io.Writer) error {
	var s snapshot
	for _, l := range m.Layers {
		s.Layers = append(s.Layers, layerSnapshot{
			In: l.In, Out: l.Out, Act: l.Act,
			W: widen(l.W.Data),
			B: widen(l.B),
		})
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads network weights written by Save.
func Load(r io.Reader) (*MLP, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: load: empty network")
	}
	m := &MLP{}
	for i, ls := range s.Layers {
		if ls.In <= 0 || ls.Out <= 0 {
			return nil, fmt.Errorf("nn: load: layer %d has invalid shape %d -> %d", i, ls.In, ls.Out)
		}
		if len(ls.W) != ls.In*ls.Out {
			return nil, fmt.Errorf("nn: load: layer %d has %d weights, shape %d -> %d needs %d", i, len(ls.W), ls.In, ls.Out, ls.In*ls.Out)
		}
		if len(ls.B) != ls.Out {
			return nil, fmt.Errorf("nn: load: layer %d has %d biases, want %d", i, len(ls.B), ls.Out)
		}
		if ls.Act < Identity || ls.Act > Tanh {
			return nil, fmt.Errorf("nn: load: layer %d has unknown activation code %d", i, int(ls.Act))
		}
		if i > 0 && ls.In != s.Layers[i-1].Out {
			return nil, fmt.Errorf("nn: load: layer %d input width %d does not chain from previous output %d", i, ls.In, s.Layers[i-1].Out)
		}
		m.Layers = append(m.Layers, &Dense{
			In: ls.In, Out: ls.Out, Act: ls.Act,
			W:     FromSlice(ls.Out, ls.In, narrow(ls.W)),
			B:     narrow(ls.B),
			GradW: NewMat(ls.Out, ls.In),
			GradB: make([]float32, ls.Out),
		})
	}
	return m, nil
}
