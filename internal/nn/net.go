package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	default:
		return z
	}
}

// derivFromOut returns dσ/dz expressed via the activation output (possible
// for ReLU and tanh, which keeps the backward pass cache small).
func (a Activation) derivFromOut(out float64) float64 {
	switch a {
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - out*out
	default:
		return 1
	}
}

// Dense is one fully connected layer out = σ(x @ Wᵀ + b).
type Dense struct {
	In, Out int
	W       *Mat // Out × In
	B       []float64
	Act     Activation

	// training caches (set by Forward, consumed by Backward)
	lastIn  *Mat
	lastOut *Mat

	// accumulated gradients
	GradW *Mat
	GradB []float64
}

// NewDense creates a layer with He/Xavier-style initialization drawn from
// src.
func NewDense(src *rng.Source, in, out int, act Activation) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %d -> %d", in, out))
	}
	d := &Dense{
		In: in, Out: out,
		W: NewMat(out, in), B: make([]float64, out), Act: act,
		GradW: NewMat(out, in), GradB: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in)) // He init; fine for tanh too at these sizes
	for i := range d.W.Data {
		d.W.Data[i] = src.Norm(0, scale)
	}
	return d
}

// Forward computes the layer output for a batch (rows are samples).
func (d *Dense) Forward(x *Mat, train bool) *Mat {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense expected %d inputs, got %d", d.In, x.Cols))
	}
	z := MatMulTransB(x, d.W)
	for r := 0; r < z.Rows; r++ {
		row := z.Row(r)
		for c := range row {
			row[c] = d.Act.apply(row[c] + d.B[c])
		}
	}
	if train {
		d.lastIn = x
		d.lastOut = z
	}
	return z
}

// Backward consumes dL/dout and returns dL/dx, accumulating dL/dW and dL/db.
// Forward must have been called with train=true.
func (d *Dense) Backward(gradOut *Mat) *Mat {
	if d.lastIn == nil {
		panic("nn: Backward before Forward(train=true)")
	}
	// dL/dz = dL/dout * σ'(z)
	gz := gradOut.Clone()
	for r := 0; r < gz.Rows; r++ {
		grow := gz.Row(r)
		orow := d.lastOut.Row(r)
		for c := range grow {
			grow[c] *= d.Act.derivFromOut(orow[c])
		}
	}
	// dL/dW += gzᵀ @ x ; dL/db += Σ gz rows
	gw := MatMulTransA(gz, d.lastIn)
	for i, v := range gw.Data {
		d.GradW.Data[i] += v
	}
	for r := 0; r < gz.Rows; r++ {
		row := gz.Row(r)
		for c, v := range row {
			d.GradB[c] += v
		}
	}
	// dL/dx = gz @ W
	return MatMul(gz, d.W)
}

// ZeroGrad clears the accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.GradW.Data {
		d.GradW.Data[i] = 0
	}
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// MLP is a stack of dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a network with the given layer sizes; hidden layers use
// hiddenAct, the last layer outAct. sizes must list at least input and
// output widths.
func NewMLP(src *rng.Source, sizes []int, hiddenAct, outAct Activation) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(src, sizes[i], sizes[i+1], act))
	}
	return m
}

// InputSize returns the expected feature width.
func (m *MLP) InputSize() int { return m.Layers[0].In }

// OutputSize returns the output width.
func (m *MLP) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs the network on a batch.
func (m *MLP) Forward(x *Mat, train bool) *Mat {
	out := x
	for _, l := range m.Layers {
		out = l.Forward(out, train)
	}
	return out
}

// Forward1 runs the network on a single sample and returns the output row.
func (m *MLP) Forward1(x []float64) []float64 {
	out := m.Forward(FromSlice(1, len(x), x), false)
	return out.Row(0)
}

// Backward propagates dL/dout through all layers, accumulating gradients.
func (m *MLP) Backward(gradOut *Mat) {
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns flat views of all parameters and their gradients, in a
// stable order, for use by optimizers.
func (m *MLP) Params() (params, grads [][]float64) {
	for _, l := range m.Layers {
		params = append(params, l.W.Data, l.B)
		grads = append(grads, l.GradW.Data, l.GradB)
	}
	return params, grads
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	var n int
	for _, l := range m.Layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// CopyWeightsFrom copies all parameters from src (shapes must match). Target
// networks in DQN and CMA2C use it for the periodic hard update.
func (m *MLP) CopyWeightsFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: CopyWeightsFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		s := src.Layers[i]
		if l.In != s.In || l.Out != s.Out {
			panic("nn: CopyWeightsFrom shape mismatch")
		}
		copy(l.W.Data, s.W.Data)
		copy(l.B, s.B)
	}
}

// SoftUpdateFrom blends parameters θ ← (1-τ)θ + τ·θ_src, the Polyak update.
func (m *MLP) SoftUpdateFrom(src *MLP, tau float64) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: SoftUpdateFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		s := src.Layers[i]
		for j := range l.W.Data {
			l.W.Data[j] = (1-tau)*l.W.Data[j] + tau*s.W.Data[j]
		}
		for j := range l.B {
			l.B[j] = (1-tau)*l.B[j] + tau*s.B[j]
		}
	}
}

// Clone returns a deep copy of the network (weights only; caches and
// gradients are fresh).
func (m *MLP) Clone() *MLP {
	out := &MLP{}
	for _, l := range m.Layers {
		nl := &Dense{
			In: l.In, Out: l.Out, Act: l.Act,
			W: l.W.Clone(), B: append([]float64(nil), l.B...),
			GradW: NewMat(l.Out, l.In), GradB: make([]float64, l.Out),
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}
