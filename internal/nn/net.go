package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(z float32) float32 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return tanhF32(z)
	default:
		return z
	}
}

// derivFromOut returns dσ/dz expressed via the activation output (possible
// for ReLU and tanh, which keeps the backward pass cache small).
func (a Activation) derivFromOut(out float32) float32 {
	switch a {
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - out*out
	default:
		return 1
	}
}

// applyBiasAct is the fused GEMM epilogue: row = σ(row + b). The activation
// switch is hoisted out of the element loop and row is resliced to the bias
// length so the loops are bounds-check free.
func applyBiasAct(row, b []float32, act Activation) {
	row = row[:len(b)]
	switch act {
	case ReLU:
		for c, bv := range b {
			v := row[c] + bv
			if v < 0 {
				v = 0
			}
			row[c] = v
		}
	case Tanh:
		for c, bv := range b {
			row[c] = tanhF32(row[c] + bv)
		}
	default:
		for c, bv := range b {
			row[c] += bv
		}
	}
}

// Dense is one fully connected layer out = σ(x @ Wᵀ + b). W is stored
// Out×In row-major — exactly the transposed-B layout the gemmNT kernel
// consumes, so the forward pass needs no packing at all.
type Dense struct {
	In, Out int
	W       *Mat // Out × In
	B       []float32
	Act     Activation

	// training caches (set by Forward, consumed by Backward)
	lastIn  *Mat
	lastOut *Mat

	// accumulated gradients
	GradW *Mat
	GradB []float32

	// layer-owned scratch, reused call to call so the steady-state training
	// loop allocates nothing: trOut backs Forward(train=true) output,
	// bwGz/bwGw/bwGx back Backward's intermediates, and bwPackGz/bwPackIn/
	// bwPackW hold the transposed panels Backward's GEMMs consume. Each is
	// valid only until the next corresponding call on this layer.
	trOut    *Mat
	bwGz     *Mat
	bwGw     *Mat
	bwGx     *Mat
	bwPackGz []float32
	bwPackIn []float32
	bwPackW  []float32
}

// NewDense creates a layer with He/Xavier-style initialization drawn from
// src.
func NewDense(src *rng.Source, in, out int, act Activation) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %d -> %d", in, out))
	}
	d := &Dense{
		In: in, Out: out,
		W: NewMat(out, in), B: make([]float32, out), Act: act,
		GradW: NewMat(out, in), GradB: make([]float32, out),
	}
	scale := math.Sqrt(2.0 / float64(in)) // He init; fine for tanh too at these sizes
	for i := range d.W.Data {
		d.W.Data[i] = float32(src.Norm(0, scale))
	}
	return d
}

// Forward computes the layer output for a batch (rows are samples). With
// train=true the output is backed by layer-owned scratch: it stays valid
// through the matching Backward and until the next Forward(train=true) on
// this layer, and x must likewise stay untouched until Backward consumes it.
// Inference (train=false) allocates a fresh matrix; the allocation-free
// inference path is MLP.ForwardBatch/Forward1/ForwardRows.
func (d *Dense) Forward(x *Mat, train bool) *Mat {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense expected %d inputs, got %d", d.In, x.Cols))
	}
	var z *Mat
	if train {
		d.trOut = ensureMat(d.trOut, x.Rows, d.Out)
		z = d.trOut
	} else {
		z = NewMat(x.Rows, d.Out)
	}
	gemmNT(x.Rows, d.Out, d.In, x.Data, d.In, d.W.Data, d.In, z.Data, d.Out)
	for r := 0; r < z.Rows; r++ {
		applyBiasAct(z.Row(r), d.B, d.Act)
	}
	if train {
		d.lastIn = x
		d.lastOut = z
	}
	return z
}

// Backward consumes dL/dout and returns dL/dx, accumulating dL/dW and dL/db.
// Forward must have been called with train=true. The returned matrix is
// layer-owned scratch, valid until this layer's next Backward — the chained
// MLP.Backward copies it into the next layer's own scratch immediately.
// Both gradient products are gemmNT calls over layer-owned transposed
// panels: dL/dW = gzᵀ @ x contracts over the batch index, so gz and x are
// packed batch-contiguous; dL/dx = gz @ W contracts over Out, so W is packed
// as Wᵀ.
func (d *Dense) Backward(gradOut *Mat) *Mat {
	if d.lastIn == nil {
		panic("nn: Backward before Forward(train=true)")
	}
	n := gradOut.Rows
	// dL/dz = dL/dout * σ'(z), with the activation switch hoisted.
	d.bwGz = ensureMat(d.bwGz, n, gradOut.Cols)
	gz := d.bwGz
	copy(gz.Data, gradOut.Data)
	switch d.Act {
	case ReLU:
		for r := 0; r < n; r++ {
			grow := gz.Row(r)
			orow := d.lastOut.Row(r)
			orow = orow[:len(grow)]
			for c := range grow {
				if orow[c] <= 0 {
					grow[c] = 0
				}
			}
		}
	case Tanh:
		for r := 0; r < n; r++ {
			grow := gz.Row(r)
			orow := d.lastOut.Row(r)
			orow = orow[:len(grow)]
			for c := range grow {
				grow[c] *= 1 - orow[c]*orow[c]
			}
		}
	}
	// dL/dW += gzᵀ @ x ; dL/db += Σ gz rows
	d.bwPackGz = packTranspose(gz, d.bwPackGz)
	d.bwPackIn = packTranspose(d.lastIn, d.bwPackIn)
	d.bwGw = ensureMat(d.bwGw, d.Out, d.In)
	gemmNT(d.Out, d.In, n, d.bwPackGz, n, d.bwPackIn, n, d.bwGw.Data, d.In)
	for i, v := range d.bwGw.Data {
		d.GradW.Data[i] += v
	}
	for r := 0; r < n; r++ {
		row := gz.Row(r)
		gb := d.GradB[:len(row)]
		for c, v := range row {
			gb[c] += v
		}
	}
	// dL/dx = gz @ W
	d.bwPackW = packTranspose(d.W, d.bwPackW)
	d.bwGx = ensureMat(d.bwGx, n, d.In)
	gemmNT(n, d.In, d.Out, gz.Data, d.Out, d.bwPackW, d.Out, d.bwGx.Data, d.In)
	return d.bwGx
}

// ZeroGrad clears the accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.GradW.Data {
		d.GradW.Data[i] = 0
	}
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// MLP is a stack of dense layers.
type MLP struct {
	Layers []*Dense

	// Inference arenas: batchActs holds one n×Out activation matrix per
	// layer, shared by ForwardBatch/Forward1/ForwardRows (results alias the
	// last entry and stay valid until the next inference call on this
	// network); x1 backs Forward1's single-row input and rowsIn/rowsOut back
	// ForwardRows' input narrowing and result views. Workers write disjoint
	// row blocks of the shared arenas, so no per-worker copies exist. None
	// of these are shared by Clone, and checkpoints never touch them.
	batchActs []*Mat
	x1        *Mat
	rowsIn    *Mat
	rowsOut   [][]float32

	// Params() result cache: the layer list is fixed after construction, so
	// the flat parameter/gradient views are built once — optimizers call
	// Params() every step and must stay allocation-free.
	paramsCache [][]float32
	gradsCache  [][]float32
}

// NewMLP builds a network with the given layer sizes; hidden layers use
// hiddenAct, the last layer outAct. sizes must list at least input and
// output widths.
func NewMLP(src *rng.Source, sizes []int, hiddenAct, outAct Activation) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(src, sizes[i], sizes[i+1], act))
	}
	return m
}

// InputSize returns the expected feature width.
func (m *MLP) InputSize() int { return m.Layers[0].In }

// OutputSize returns the output width.
func (m *MLP) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs the network on a batch.
func (m *MLP) Forward(x *Mat, train bool) *Mat {
	out := x
	for _, l := range m.Layers {
		out = l.Forward(out, train)
	}
	return out
}

// Forward1 runs the network on a single sample and returns the output row.
// The row aliases the MLP's internal inference arena: it is valid until the
// next Forward1/ForwardRows/ForwardBatch call on this network, and callers
// keeping it longer must copy it out. Like all scratch-backed paths, Forward1
// is not safe for concurrent calls on a shared MLP — ForwardBatch is the
// parallel entry point.
func (m *MLP) Forward1(x []float64) []float32 {
	m.x1 = ensureMat(m.x1, 1, m.InputSize())
	m.x1.SetRow(0, x)
	return m.ForwardBatch(m.x1, 1).Row(0)
}

// Backward propagates dL/dout through all layers, accumulating gradients.
func (m *MLP) Backward(gradOut *Mat) {
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns flat views of all parameters and their gradients, in a
// stable order, for use by optimizers.
func (m *MLP) Params() (params, grads [][]float32) {
	if len(m.paramsCache) != 2*len(m.Layers) {
		m.paramsCache = make([][]float32, 0, 2*len(m.Layers))
		m.gradsCache = make([][]float32, 0, 2*len(m.Layers))
		for _, l := range m.Layers {
			m.paramsCache = append(m.paramsCache, l.W.Data, l.B)
			m.gradsCache = append(m.gradsCache, l.GradW.Data, l.GradB)
		}
	}
	return m.paramsCache, m.gradsCache
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	var n int
	for _, l := range m.Layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// CopyWeightsFrom copies all parameters from src (shapes must match). Target
// networks in DQN and CMA2C use it for the periodic hard update.
func (m *MLP) CopyWeightsFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: CopyWeightsFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		s := src.Layers[i]
		if l.In != s.In || l.Out != s.Out {
			panic("nn: CopyWeightsFrom shape mismatch")
		}
		copy(l.W.Data, s.W.Data)
		copy(l.B, s.B)
	}
}

// SoftUpdateFrom blends parameters θ ← (1-τ)θ + τ·θ_src, the Polyak update.
func (m *MLP) SoftUpdateFrom(src *MLP, tau float64) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: SoftUpdateFrom layer count mismatch")
	}
	t := float32(tau)
	for i, l := range m.Layers {
		s := src.Layers[i]
		for j := range l.W.Data {
			l.W.Data[j] = (1-t)*l.W.Data[j] + t*s.W.Data[j]
		}
		for j := range l.B {
			l.B[j] = (1-t)*l.B[j] + t*s.B[j]
		}
	}
}

// Clone returns a deep copy of the network (weights only; caches and
// gradients are fresh).
func (m *MLP) Clone() *MLP {
	out := &MLP{}
	for _, l := range m.Layers {
		nl := &Dense{
			In: l.In, Out: l.Out, Act: l.Act,
			W: l.W.Clone(), B: append([]float32(nil), l.B...),
			GradW: NewMat(l.Out, l.In), GradB: make([]float32, l.Out),
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}
