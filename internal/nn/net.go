package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	default:
		return z
	}
}

// derivFromOut returns dσ/dz expressed via the activation output (possible
// for ReLU and tanh, which keeps the backward pass cache small).
func (a Activation) derivFromOut(out float64) float64 {
	switch a {
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - out*out
	default:
		return 1
	}
}

// Dense is one fully connected layer out = σ(x @ Wᵀ + b).
type Dense struct {
	In, Out int
	W       *Mat // Out × In
	B       []float64
	Act     Activation

	// training caches (set by Forward, consumed by Backward)
	lastIn  *Mat
	lastOut *Mat

	// accumulated gradients
	GradW *Mat
	GradB []float64

	// layer-owned scratch, reused call to call so the steady-state training
	// loop allocates nothing: trOut backs Forward(train=true) output, and
	// bwGz/bwGw/bwGx back Backward's intermediates. Each is valid only until
	// the next corresponding call on this layer.
	trOut *Mat
	bwGz  *Mat
	bwGw  *Mat
	bwGx  *Mat
}

// NewDense creates a layer with He/Xavier-style initialization drawn from
// src.
func NewDense(src *rng.Source, in, out int, act Activation) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %d -> %d", in, out))
	}
	d := &Dense{
		In: in, Out: out,
		W: NewMat(out, in), B: make([]float64, out), Act: act,
		GradW: NewMat(out, in), GradB: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in)) // He init; fine for tanh too at these sizes
	for i := range d.W.Data {
		d.W.Data[i] = src.Norm(0, scale)
	}
	return d
}

// Forward computes the layer output for a batch (rows are samples). With
// train=true the output is backed by layer-owned scratch: it stays valid
// through the matching Backward and until the next Forward(train=true) on
// this layer, and x must likewise stay untouched until Backward consumes it.
// Inference (train=false) allocates a fresh matrix; the allocation-free
// inference path is MLP.Forward1/ForwardRows.
func (d *Dense) Forward(x *Mat, train bool) *Mat {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense expected %d inputs, got %d", d.In, x.Cols))
	}
	var z *Mat
	if train {
		d.trOut = MatMulTransBInto(x, d.W, d.trOut)
		z = d.trOut
	} else {
		z = MatMulTransB(x, d.W)
	}
	for r := 0; r < z.Rows; r++ {
		row := z.Row(r)
		for c := range row {
			row[c] = d.Act.apply(row[c] + d.B[c])
		}
	}
	if train {
		d.lastIn = x
		d.lastOut = z
	}
	return z
}

// Backward consumes dL/dout and returns dL/dx, accumulating dL/dW and dL/db.
// Forward must have been called with train=true. The returned matrix is
// layer-owned scratch, valid until this layer's next Backward — the chained
// MLP.Backward copies it into the next layer's own scratch immediately.
// Gradients accumulate through a reused intermediate in the exact operation
// order of the original allocating implementation, so repeated
// Backward-per-ZeroGrad schedules see bit-identical sums.
func (d *Dense) Backward(gradOut *Mat) *Mat {
	if d.lastIn == nil {
		panic("nn: Backward before Forward(train=true)")
	}
	// dL/dz = dL/dout * σ'(z)
	d.bwGz = ensureMat(d.bwGz, gradOut.Rows, gradOut.Cols)
	gz := d.bwGz
	copy(gz.Data, gradOut.Data)
	for r := 0; r < gz.Rows; r++ {
		grow := gz.Row(r)
		orow := d.lastOut.Row(r)
		for c := range grow {
			grow[c] *= d.Act.derivFromOut(orow[c])
		}
	}
	// dL/dW += gzᵀ @ x ; dL/db += Σ gz rows
	d.bwGw = MatMulTransAInto(gz, d.lastIn, d.bwGw)
	for i, v := range d.bwGw.Data {
		d.GradW.Data[i] += v
	}
	for r := 0; r < gz.Rows; r++ {
		row := gz.Row(r)
		for c, v := range row {
			d.GradB[c] += v
		}
	}
	// dL/dx = gz @ W
	d.bwGx = MatMulInto(gz, d.W, d.bwGx)
	return d.bwGx
}

// ZeroGrad clears the accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.GradW.Data {
		d.GradW.Data[i] = 0
	}
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// MLP is a stack of dense layers.
type MLP struct {
	Layers []*Dense

	// fwd is the serial inference arena behind Forward1; chunkFwd holds one
	// arena per ForwardRows worker so parallel chunks never share buffers.
	// rowsOut/rowsArena back ForwardRows results. None of these are shared
	// by Clone, and checkpoints never touch them.
	fwd       scratch
	chunkFwd  []scratch
	rowsOut   [][]float64
	rowsArena []float64
}

// scratch is one inference arena: a reusable input header plus one output
// buffer per layer. Each goroutine touching an MLP concurrently must use
// its own scratch (ForwardRows arranges this per worker chunk).
type scratch struct {
	in   Mat
	acts []*Mat
}

// forward1Into runs single-sample inference through s's buffers and returns
// the output row, which aliases s and is valid until s is reused. The
// per-layer kernels are exactly Forward's, so results are bit-identical to
// the allocating path.
func (m *MLP) forward1Into(x []float64, s *scratch) []float64 {
	if len(s.acts) != len(m.Layers) {
		s.acts = make([]*Mat, len(m.Layers))
	}
	s.in = Mat{Rows: 1, Cols: len(x), Data: x}
	in := &s.in
	for i, l := range m.Layers {
		s.acts[i] = MatMulTransBInto(in, l.W, s.acts[i])
		z := s.acts[i]
		row := z.Row(0)
		for c := range row {
			row[c] = l.Act.apply(row[c] + l.B[c])
		}
		in = z
	}
	return in.Row(0)
}

// NewMLP builds a network with the given layer sizes; hidden layers use
// hiddenAct, the last layer outAct. sizes must list at least input and
// output widths.
func NewMLP(src *rng.Source, sizes []int, hiddenAct, outAct Activation) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(src, sizes[i], sizes[i+1], act))
	}
	return m
}

// InputSize returns the expected feature width.
func (m *MLP) InputSize() int { return m.Layers[0].In }

// OutputSize returns the output width.
func (m *MLP) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs the network on a batch.
func (m *MLP) Forward(x *Mat, train bool) *Mat {
	out := x
	for _, l := range m.Layers {
		out = l.Forward(out, train)
	}
	return out
}

// Forward1 runs the network on a single sample and returns the output row.
// The row aliases the MLP's internal inference arena: it is valid until the
// next Forward1 or ForwardRows call on this network, and callers keeping it
// longer must copy it out. Like all scratch-backed paths, Forward1 is not
// safe for concurrent calls on a shared MLP — ForwardRows is the parallel
// entry point.
func (m *MLP) Forward1(x []float64) []float64 {
	return m.forward1Into(x, &m.fwd)
}

// Backward propagates dL/dout through all layers, accumulating gradients.
func (m *MLP) Backward(gradOut *Mat) {
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns flat views of all parameters and their gradients, in a
// stable order, for use by optimizers.
func (m *MLP) Params() (params, grads [][]float64) {
	for _, l := range m.Layers {
		params = append(params, l.W.Data, l.B)
		grads = append(grads, l.GradW.Data, l.GradB)
	}
	return params, grads
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	var n int
	for _, l := range m.Layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// CopyWeightsFrom copies all parameters from src (shapes must match). Target
// networks in DQN and CMA2C use it for the periodic hard update.
func (m *MLP) CopyWeightsFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: CopyWeightsFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		s := src.Layers[i]
		if l.In != s.In || l.Out != s.Out {
			panic("nn: CopyWeightsFrom shape mismatch")
		}
		copy(l.W.Data, s.W.Data)
		copy(l.B, s.B)
	}
}

// SoftUpdateFrom blends parameters θ ← (1-τ)θ + τ·θ_src, the Polyak update.
func (m *MLP) SoftUpdateFrom(src *MLP, tau float64) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: SoftUpdateFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		s := src.Layers[i]
		for j := range l.W.Data {
			l.W.Data[j] = (1-tau)*l.W.Data[j] + tau*s.W.Data[j]
		}
		for j := range l.B {
			l.B[j] = (1-tau)*l.B[j] + tau*s.B[j]
		}
	}
}

// Clone returns a deep copy of the network (weights only; caches and
// gradients are fresh).
func (m *MLP) Clone() *MLP {
	out := &MLP{}
	for _, l := range m.Layers {
		nl := &Dense{
			In: l.In, Out: l.Out, Act: l.Act,
			W: l.W.Clone(), B: append([]float64(nil), l.B...),
			GradW: NewMat(l.Out, l.In), GradB: make([]float64, l.Out),
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}
