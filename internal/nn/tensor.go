// Package nn is a small, dependency-free neural-network library sufficient
// for the paper's learning components: dense feed-forward networks trained
// with backpropagation and Adam. CMA2C's actor and critic, the DQN baseline,
// and TBA's REINFORCE policy are all built on it.
//
// Everything operates on row-major float32 tensors with explicit batch
// dimensions; every matrix product routes through the blocked gemmNT kernel
// in gemm.go. The library is deliberately minimal — no autograd graph, just
// layer-by-layer forward/backward — which keeps it fast, deterministic, and
// easy to verify with finite-difference gradient checks (see the tests).
// Scalar entry points (At/Set/SetRow, losses, the softmax helpers) keep a
// float64 boundary so consumers hand simulation features straight in; the
// storage and the kernels are float32.
package nn

import "fmt"

// Mat is a dense row-major float32 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("nn: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return float64(m.Data[r*m.Cols+c]) }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = float32(v) }

// Row returns a view of row r.
func (m *Mat) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// SetRow copies a float64 vector into row r, narrowing to float32. This is
// the batch-assembly boundary: simulation observations stay float64 and are
// narrowed exactly once, here.
func (m *Mat) SetRow(r int, v []float64) {
	row := m.Row(r)
	if len(v) != len(row) {
		panic(fmt.Sprintf("nn: SetRow length %d != %d cols", len(v), m.Cols))
	}
	for i, x := range v {
		row[i] = float32(x)
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ensureMat returns out reshaped to rows×cols, reusing its storage when the
// capacity allows and allocating otherwise (out may be nil). Contents are
// unspecified: the Into kernels below either zero or overwrite every cell.
func ensureMat(out *Mat, rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	n := rows * cols
	if out == nil {
		return &Mat{Rows: rows, Cols: cols, Data: make([]float32, n)}
	}
	if cap(out.Data) < n {
		out.Data = make([]float32, n)
	} else {
		out.Data = out.Data[:n]
	}
	out.Rows, out.Cols = rows, cols
	return out
}

// EnsureMat is the exported form of ensureMat for consumers that keep their
// own batch scratch (the CMA2C/DQN/TBA update steps): it returns out
// reshaped to rows×cols, reusing its storage when capacity allows and
// allocating otherwise (out may be nil). Contents are unspecified.
func EnsureMat(out *Mat, rows, cols int) *Mat { return ensureMat(out, rows, cols) }

// MatMul computes a @ b into a new matrix.
func MatMul(a, b *Mat) *Mat { return MatMulInto(a, b, nil) }

// MatMulInto computes a @ b into out's storage (reused when it fits, nil
// allocates) and returns out. The b operand is packed transposed into a
// temporary panel (allocated per call — the zero-alloc training path keeps
// its packs layer-owned, see Dense.Backward).
func MatMulInto(a, b, out *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = ensureMat(out, a.Rows, b.Cols)
	bt := packTranspose(b, nil)
	gemmNT(a.Rows, b.Cols, a.Cols, a.Data, a.Cols, bt, b.Rows, out.Data, out.Cols)
	return out
}

// MatMulTransB computes a @ bᵀ into a new matrix.
func MatMulTransB(a, b *Mat) *Mat { return MatMulTransBInto(a, b, nil) }

// MatMulTransBInto computes a @ bᵀ into out's storage (reused when it fits,
// nil allocates) and returns out. This is gemmNT's native layout: no packing,
// no zeroing pass, every cell written exactly once.
func MatMulTransBInto(a, b, out *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulTransB shape mismatch %dx%d @ (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = ensureMat(out, a.Rows, b.Rows)
	gemmNT(a.Rows, b.Rows, a.Cols, a.Data, a.Cols, b.Data, b.Cols, out.Data, out.Cols)
	return out
}

// MatMulTransA computes aᵀ @ b into a new matrix.
func MatMulTransA(a, b *Mat) *Mat { return MatMulTransAInto(a, b, nil) }

// MatMulTransAInto computes aᵀ @ b into out's storage (reused when it fits,
// nil allocates) and returns out. Both operands are packed transposed
// (allocated per call; the training path uses layer-owned packs instead).
func MatMulTransAInto(a, b, out *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: MatMulTransA shape mismatch (%dx%d)ᵀ @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = ensureMat(out, a.Cols, b.Cols)
	at := packTranspose(a, nil)
	bt := packTranspose(b, nil)
	gemmNT(a.Cols, b.Cols, a.Rows, at, a.Rows, bt, b.Rows, out.Data, out.Cols)
	return out
}
