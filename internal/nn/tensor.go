// Package nn is a small, dependency-free neural-network library sufficient
// for the paper's learning components: dense feed-forward networks trained
// with backpropagation and Adam. CMA2C's actor and critic, the DQN baseline,
// and TBA's REINFORCE policy are all built on it.
//
// Everything operates on row-major float64 matrices with explicit batch
// dimensions. The library is deliberately minimal — no autograd graph, just
// layer-by-layer forward/backward — which keeps it fast, deterministic, and
// easy to verify with finite-difference gradient checks (see the tests).
package nn

import "fmt"

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("nn: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Mat) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ensureMat returns out reshaped to rows×cols, reusing its storage when the
// capacity allows and allocating otherwise (out may be nil). Contents are
// unspecified: the Into kernels below either zero or overwrite every cell.
func ensureMat(out *Mat, rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	n := rows * cols
	if out == nil {
		return &Mat{Rows: rows, Cols: cols, Data: make([]float64, n)}
	}
	if cap(out.Data) < n {
		out.Data = make([]float64, n)
	} else {
		out.Data = out.Data[:n]
	}
	out.Rows, out.Cols = rows, cols
	return out
}

// MatMul computes a @ b into a new matrix.
func MatMul(a, b *Mat) *Mat { return MatMulInto(a, b, nil) }

// MatMulInto computes a @ b into out's storage (reused when it fits, nil
// allocates) and returns out. The accumulation order is identical to MatMul,
// so results are bit-for-bit equal.
func MatMulInto(a, b, out *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = ensureMat(out, a.Rows, b.Cols)
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB computes a @ bᵀ into a new matrix.
func MatMulTransB(a, b *Mat) *Mat { return MatMulTransBInto(a, b, nil) }

// MatMulTransBInto computes a @ bᵀ into out's storage (reused when it fits,
// nil allocates) and returns out. Every cell is written, so no zeroing pass
// is needed; results are bit-for-bit equal to MatMulTransB.
func MatMulTransBInto(a, b, out *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulTransB shape mismatch %dx%d @ (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = ensureMat(out, a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// MatMulTransA computes aᵀ @ b into a new matrix.
func MatMulTransA(a, b *Mat) *Mat { return MatMulTransAInto(a, b, nil) }

// MatMulTransAInto computes aᵀ @ b into out's storage (reused when it fits,
// nil allocates) and returns out. The accumulation order is identical to
// MatMulTransA, so results are bit-for-bit equal.
func MatMulTransAInto(a, b, out *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: MatMulTransA shape mismatch (%dx%d)ᵀ @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = ensureMat(out, a.Cols, b.Cols)
	for i := range out.Data {
		out.Data[i] = 0
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}
