package nn

// tanhF32 is a float32 rational approximation of tanh, accurate to ~1 ulp of
// float32 over the whole line (the classic 13/6-degree ratio of odd/even
// polynomials used by vectorized math libraries). The float64 math.Tanh it
// replaces cost two conversions plus a float64 exp per element and dominated
// the training-step profile (~37% of CPU); this version is a handful of
// float32 multiply-adds.
//
// Determinism: pure float32 arithmetic in a fixed order — the same inputs
// always produce the same bits on every platform, exactly like the GEMM
// kernels. It does NOT produce the same bits as float32(math.Tanh(float64)),
// which is why switching to it was a golden-fixture bump.
func tanhF32(x float32) float32 {
	// Beyond ±~7.9 the float32 result is exactly ±1; clamping also keeps the
	// polynomials in their fitted range.
	const clamp = 7.90531110763549805
	if x > clamp {
		x = clamp
	} else if x < -clamp {
		x = -clamp
	}
	const (
		a1  = 4.89352455891786e-03
		a3  = 6.37261928875436e-04
		a5  = 1.48572235717979e-05
		a7  = 5.12229709037114e-08
		a9  = -8.60467152213735e-11
		a11 = 2.00018790482477e-13
		a13 = -2.76076847742355e-16

		b0 = 4.89352518554385e-03
		b2 = 2.26843463243900e-03
		b4 = 1.18534705686654e-04
		b6 = 1.19825839466702e-06
	)
	x2 := x * x
	p := float32(a13)
	p = p*x2 + a11
	p = p*x2 + a9
	p = p*x2 + a7
	p = p*x2 + a5
	p = p*x2 + a3
	p = p*x2 + a1
	p *= x
	q := float32(b6)
	q = q*x2 + b4
	q = q*x2 + b2
	q = q*x2 + b0
	return p / q
}
