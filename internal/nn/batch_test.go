package nn

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// ForwardRows must match a serial Forward1 loop bit-for-bit at every worker
// count — the batched-inference half of the serial≡parallel invariant. With
// the batch-first backend this is also the batch-vs-single-row equivalence
// proof: one GEMM over 33 rows against 33 single-row GEMMs.
func TestForwardRowsMatchesForward1(t *testing.T) {
	src := rng.New(7)
	m := NewMLP(src, []int{12, 16, 5}, Tanh, Identity)
	rows := make([][]float64, 33)
	for i := range rows {
		r := make([]float64, 12)
		for j := range r {
			r[j] = src.Uniform(-2, 2)
		}
		rows[i] = r
	}
	want := make([][]float32, len(rows))
	for i, r := range rows {
		// Forward1 returns a view into the MLP's inference arena; copy it
		// out before the next call reuses the buffer.
		want[i] = append([]float32(nil), m.Forward1(r)...)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got := m.ForwardRows(rows, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batched forward differs from serial Forward1", workers)
		}
	}
	if got := m.ForwardRows(nil, 4); len(got) != 0 {
		t.Fatalf("empty input: got %d rows", len(got))
	}
}

// ForwardBatch must agree bit-for-bit with the training-path Forward and
// with itself at every worker partition.
func TestForwardBatchMatchesForward(t *testing.T) {
	src := rng.New(17)
	m := NewMLP(src, []int{9, 11, 4}, ReLU, Identity)
	x := NewMat(21, 9)
	for i := range x.Data {
		x.Data[i] = float32(src.Uniform(-2, 2))
	}
	want := m.Forward(x.Clone(), false)
	for _, workers := range []int{1, 2, 5, 21, 64} {
		got := m.ForwardBatch(x, workers)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("workers=%d: shape %dx%d, want %dx%d", workers, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: element %d differs: %v != %v", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}
