package nn

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// ForwardRows must match a serial Forward1 loop bit-for-bit at every worker
// count — the batched-inference half of the serial≡parallel invariant.
func TestForwardRowsMatchesForward1(t *testing.T) {
	src := rng.New(7)
	m := NewMLP(src, []int{12, 16, 5}, Tanh, Identity)
	rows := make([][]float64, 33)
	for i := range rows {
		r := make([]float64, 12)
		for j := range r {
			r[j] = src.Uniform(-2, 2)
		}
		rows[i] = r
	}
	want := make([][]float64, len(rows))
	for i, r := range rows {
		// Forward1 returns a view into the MLP's inference arena; copy it
		// out before the next call reuses the buffer.
		want[i] = append([]float64(nil), m.Forward1(r)...)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got := m.ForwardRows(rows, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batched forward differs from serial Forward1", workers)
		}
	}
	if got := m.ForwardRows(nil, 4); len(got) != 0 {
		t.Fatalf("empty input: got %d rows", len(got))
	}
}
