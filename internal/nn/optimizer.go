package nn

import "math"

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated in
	// the network, then zeroes them.
	Step(net *MLP)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity [][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (o *SGD) Step(net *MLP) {
	params, grads := net.Params()
	if o.velocity == nil {
		o.velocity = make([][]float64, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float64, len(p))
		}
	}
	for i, p := range params {
		g := grads[i]
		v := o.velocity[i]
		for j := range p {
			v[j] = o.Momentum*v[j] - o.LR*g[j]
			p[j] += v[j]
		}
	}
	net.ZeroGrad()
}

// Adam is the Adam optimizer (Kingma & Ba), the paper's choice
// ("AdamOptimizer with a learning rate of 0.001").
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  [][]float64
}

// NewAdam returns Adam with the standard betas and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// State exposes the step count and moment estimates for checkpointing. The
// returned slices are live views, not copies; m and v are nil until the
// first Step.
func (o *Adam) State() (t int, m, v [][]float64) { return o.t, o.m, o.v }

// Restore sets the step count and moment estimates from a checkpoint. Nil
// moments reproduce a freshly constructed optimizer (Step allocates lazily).
func (o *Adam) Restore(t int, m, v [][]float64) { o.t, o.m, o.v = t, m, v }

// Step implements Optimizer.
func (o *Adam) Step(net *MLP) {
	params, grads := net.Params()
	if o.m == nil {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, len(p))
			o.v[i] = make([]float64, len(p))
		}
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		g := grads[i]
		m, v := o.m[i], o.v[i]
		for j := range p {
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g[j]
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g[j]*g[j]
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p[j] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
	net.ZeroGrad()
}
