package nn

import "math"

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated in
	// the network, then zeroes them.
	Step(net *MLP)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity [][]float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (o *SGD) Step(net *MLP) {
	params, grads := net.Params()
	if o.velocity == nil {
		o.velocity = make([][]float32, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float32, len(p))
		}
	}
	mom, lr := float32(o.Momentum), float32(o.LR)
	for i, p := range params {
		g := grads[i]
		v := o.velocity[i]
		for j := range p {
			v[j] = mom*v[j] - lr*g[j]
			p[j] += v[j]
		}
	}
	net.ZeroGrad()
}

// Adam is the Adam optimizer (Kingma & Ba), the paper's choice
// ("AdamOptimizer with a learning rate of 0.001").
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  [][]float32
}

// NewAdam returns Adam with the standard betas and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// State exposes the step count and moment estimates for checkpointing. The
// returned slices are live views, not copies; m and v are nil until the
// first Step.
func (o *Adam) State() (t int, m, v [][]float32) { return o.t, o.m, o.v }

// Restore sets the step count and moment estimates from a checkpoint. Nil
// moments reproduce a freshly constructed optimizer (Step allocates lazily).
func (o *Adam) Restore(t int, m, v [][]float32) { o.t, o.m, o.v = t, m, v }

// Step implements Optimizer. The bias corrections are folded into two
// float64-precomputed scalars so the per-parameter loop is pure float32:
// with bc1 = 1-β1ᵗ and bc2 = 1-β2ᵗ,
//
//	p -= lr · (m/bc1) / (√(v/bc2) + ε)  ≡  p -= α_t · m / (√v + ε̂)
//
// where α_t = lr·√bc2/bc1 and ε̂ = ε·√bc2.
func (o *Adam) Step(net *MLP) {
	params, grads := net.Params()
	if o.m == nil {
		o.m = make([][]float32, len(params))
		o.v = make([][]float32, len(params))
		for i, p := range params {
			o.m[i] = make([]float32, len(p))
			o.v[i] = make([]float32, len(p))
		}
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	alphaT := float32(o.LR * math.Sqrt(bc2) / bc1)
	epsHat := float32(o.Eps * math.Sqrt(bc2))
	b1, omb1 := float32(o.Beta1), float32(1-o.Beta1)
	b2, omb2 := float32(o.Beta2), float32(1-o.Beta2)
	for i, p := range params {
		g := grads[i]
		m, v := o.m[i], o.v[i]
		g = g[:len(p)]
		m = m[:len(p)]
		v = v[:len(p)]
		for j := range p {
			gj := g[j]
			mj := b1*m[j] + omb1*gj
			vj := b2*v[j] + omb2*gj*gj
			m[j], v[j] = mj, vj
			p[j] -= alphaT * mj / (float32(math.Sqrt(float64(vj))) + epsHat)
		}
	}
	net.ZeroGrad()
}
