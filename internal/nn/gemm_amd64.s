//go:build amd64

#include "textflag.h"

// func gemmKernel4x4(k int, a *float32, lda int, panel *float32, c *float32, ldc int)
//
// 4×4 SSE micro-kernel for gemmNTPanel. X0–X3 hold the four C rows of the
// output block; per contraction step t one MOVUPS fetches the four packed B
// values (panel is k-major) and each A element is broadcast with
// MOVSS+SHUFPS, multiplied (MULPS), then accumulated (ADDPS) — the same
// round-to-nearest multiply-then-add as the scalar kernel, lane by lane, in
// strictly ascending t. SSE1/SSE2 only; valid at any GOAMD64 level.
//
// The dispatcher guarantees k ≥ 1.
TEXT ·gemmKernel4x4(SB), NOSPLIT, $0-48
	MOVQ a+8(FP), SI
	MOVQ lda+16(FP), R8
	LEAQ (SI)(R8*4), R10   // a row 1
	LEAQ (R10)(R8*4), R11  // a row 2
	LEAQ (R11)(R8*4), R12  // a row 3
	MOVQ panel+24(FP), DX
	MOVQ k+0(FP), CX

	XORPS X0, X0 // C row 0 accumulators
	XORPS X1, X1 // C row 1
	XORPS X2, X2 // C row 2
	XORPS X3, X3 // C row 3
	XORQ  BX, BX // byte offset into the A rows

loop:
	MOVUPS (DX), X4        // B[0..3][t]

	MOVSS  (SI)(BX*1), X5  // a[0][t]
	SHUFPS $0x00, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0

	MOVSS  (R10)(BX*1), X6 // a[1][t]
	SHUFPS $0x00, X6, X6
	MULPS  X4, X6
	ADDPS  X6, X1

	MOVSS  (R11)(BX*1), X7 // a[2][t]
	SHUFPS $0x00, X7, X7
	MULPS  X4, X7
	ADDPS  X7, X2

	MOVSS  (R12)(BX*1), X8 // a[3][t]
	SHUFPS $0x00, X8, X8
	MULPS  X4, X8
	ADDPS  X8, X3

	ADDQ $16, DX
	ADDQ $4, BX
	DECQ CX
	JNZ  loop

	MOVQ   c+32(FP), DI
	MOVQ   ldc+40(FP), R9
	MOVUPS X0, (DI)
	LEAQ   (DI)(R9*4), DI
	MOVUPS X1, (DI)
	LEAQ   (DI)(R9*4), DI
	MOVUPS X2, (DI)
	LEAQ   (DI)(R9*4), DI
	MOVUPS X3, (DI)
	RET
