package nn

import (
	"math"
	"testing"
)

// TestTanhF32Accuracy sweeps the rational approximation against float64
// math.Tanh. The bound is a few float32 ulps of the true value (|tanh| ≤ 1,
// so 1e-6 absolute ≈ 8 ulps near saturation — the approximation is
// typically within 1–2).
func TestTanhF32Accuracy(t *testing.T) {
	maxErr := 0.0
	for x := -12.0; x <= 12.0; x += 1.0 / 512 {
		got := float64(tanhF32(float32(x)))
		want := math.Tanh(x)
		if err := math.Abs(got - want); err > maxErr {
			maxErr = err
		}
	}
	if maxErr > 1e-6 {
		t.Fatalf("max |tanhF32 - tanh| = %.3g, want <= 1e-6", maxErr)
	}
	t.Logf("max abs error over [-12,12]: %.3g", maxErr)
}

// TestTanhF32Properties checks exact oddness (the numerator is odd and the
// denominator even in x, so symmetry holds bit-for-bit), the zero fixed
// point, and saturation at large |x|.
func TestTanhF32Properties(t *testing.T) {
	if tanhF32(0) != 0 {
		t.Fatalf("tanhF32(0) = %v, want 0", tanhF32(0))
	}
	for _, x := range []float32{1e-4, 0.5, 1, 2.5, 7, 8, 100} {
		if tanhF32(-x) != -tanhF32(x) {
			t.Fatalf("oddness broken at x=%v: %v vs %v", x, tanhF32(-x), -tanhF32(x))
		}
	}
	if y := tanhF32(50); y < 0.999999 || y > 1 {
		t.Fatalf("tanhF32(50) = %v, want saturated in (0.999999, 1]", y)
	}
	// Derivative-from-output stays in [0,1] at saturation (no 1−y² underflow
	// to negative values).
	if d := Tanh.derivFromOut(tanhF32(50)); d < 0 {
		t.Fatalf("derivFromOut at saturation went negative: %v", d)
	}
}
