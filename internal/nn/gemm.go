package nn

// Blocked float32 GEMM. The single real kernel is gemmNT, which computes
// C = A @ Bᵀ with both operands row-major and the contraction dimension K
// contiguous in memory — the pure dot-product layout, so the inner loop
// streams both operands linearly. The other products (a@b, aᵀ@b) are
// expressed by packing the relevant operand's transpose into a contiguous
// panel and calling gemmNT (see tensor.go and the Dense backward pass).
//
// Determinism contract: every output element is produced by ONE accumulator
// chain summing a[i][p]·b[j][p] in strictly ascending p. Blocking and the
// register-tiled micro-kernel change which elements are computed when, never
// the per-element order — so results are bit-identical to the naive
// dot-product reference at any block size, and partitioning rows across
// workers (ForwardBatch) cannot change a single bit.
//
// gemmColBlock is the only cache-tiling parameter: columns of C (= rows of
// the B panel) are processed in blocks so the panel slice touched by the
// micro-kernel stays L1-resident (128 rows × K floats; at the repo's layer
// widths K ≤ 64, that is ≤ 32 KiB). The M and K dimensions are not tiled —
// the A row pair of the micro-kernel is at most a few hundred bytes and
// K never exceeds a few hundred in this codebase.
const gemmColBlock = 128

// gemmPanelK bounds the contraction length the vectorized panel path
// handles: its k-major B panel lives in a fixed-size stack array (4·256
// floats = 4 KiB). Every GEMM in this codebase has k ≤ max(layer width,
// batch size) ≤ 256; anything larger falls back to the scalar kernel rather
// than split k, because splitting k would break the single-ascending-chain
// determinism contract.
const gemmPanelK = 256

// gemmNT writes C = A @ Bᵀ. A is m×k with row stride lda, B is n×k with row
// stride ldb, C is m×n with row stride ldc; every C cell is overwritten.
//
// Two implementations sit behind this dispatcher, both honoring the
// per-element ascending-k contract above, and both performing the identical
// float32 multiply-then-add per term — so they are bit-identical to each
// other and to the naive reference, and the choice of path can never change
// a result:
//
//   - gemmNTPanel (amd64): packs four B rows into a k-major panel and runs a
//     4×4 SSE micro-kernel — one 4-lane multiply + add per A element, each
//     lane one output element's chain. SSE1 MULPS/ADDPS round each lane
//     exactly like the scalar ops (no FMA), so vectorizing across *columns*
//     preserves bit-identity where vectorizing across k would not.
//   - gemmNTScalar: the portable 2×4 register-tiled loop, also used for the
//     panel path's edge tails and for k > gemmPanelK.
func gemmNT(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if haveGemmKernel && k > 0 && k <= gemmPanelK && m >= 4 && n >= 4 {
		gemmNTPanel(m, n, k, a, lda, b, ldb, c, ldc)
		return
	}
	gemmNTScalar(m, n, k, a, lda, b, ldb, c, ldc)
}

// gemmNTPanel is the vectorized path: for each block of four C columns it
// packs the four corresponding B rows k-major (panel[t*4+l] = b[j+l][t], so
// the micro-kernel's 4-lane load at step t reads the four B values of
// contraction index t) and sweeps all full 4-row A blocks with the SSE
// kernel. Row and column remainders go through gemmNTScalar on offset
// subviews.
func gemmNTPanel(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	var panel [4 * gemmPanelK]float32
	m4, n4 := m&^3, n&^3
	for j := 0; j < n4; j += 4 {
		b0 := b[j*ldb : j*ldb+k]
		b1 := b[(j+1)*ldb : (j+1)*ldb+k]
		b2 := b[(j+2)*ldb : (j+2)*ldb+k]
		b3 := b[(j+3)*ldb : (j+3)*ldb+k]
		b1 = b1[:len(b0)]
		b2 = b2[:len(b0)]
		b3 = b3[:len(b0)]
		for t := range b0 {
			panel[t*4+0] = b0[t]
			panel[t*4+1] = b1[t]
			panel[t*4+2] = b2[t]
			panel[t*4+3] = b3[t]
		}
		for i := 0; i < m4; i += 4 {
			gemmKernel4x4(k, &a[i*lda], lda, &panel[0], &c[i*ldc+j], ldc)
		}
	}
	if m4 < m && n4 > 0 {
		gemmNTScalar(m-m4, n4, k, a[m4*lda:], lda, b, ldb, c[m4*ldc:], ldc)
	}
	if n4 < n {
		gemmNTScalar(m, n-n4, k, a, lda, b[n4*ldb:], ldb, c[n4:], ldc)
	}
}

// gemmNTScalar is the portable kernel. The micro-kernel is 2×4: two A rows
// against four B rows yield eight independent accumulator chains, enough
// instruction-level parallelism to hide FP add latency on a single core
// without changing per-element order.
func gemmNTScalar(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for jb := 0; jb < n; jb += gemmColBlock {
		jmax := jb + gemmColBlock
		if jmax > n {
			jmax = n
		}
		i := 0
		for ; i+1 < m; i += 2 {
			a0 := a[i*lda : i*lda+k]
			a1 := a[(i+1)*lda : (i+1)*lda+k]
			a1 = a1[:len(a0)] // bounds-check elimination for a1[p]
			c0 := c[i*ldc : i*ldc+n]
			c1 := c[(i+1)*ldc : (i+1)*ldc+n]
			j := jb
			for ; j+3 < jmax; j += 4 {
				b0 := b[j*ldb : j*ldb+k]
				b1 := b[(j+1)*ldb : (j+1)*ldb+k]
				b2 := b[(j+2)*ldb : (j+2)*ldb+k]
				b3 := b[(j+3)*ldb : (j+3)*ldb+k]
				b0 = b0[:len(a0)]
				b1 = b1[:len(a0)]
				b2 = b2[:len(a0)]
				b3 = b3[:len(a0)]
				var s00, s01, s02, s03 float32
				var s10, s11, s12, s13 float32
				for p := range a0 {
					av0, av1 := a0[p], a1[p]
					bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s02 += av0 * bv2
					s03 += av0 * bv3
					s10 += av1 * bv0
					s11 += av1 * bv1
					s12 += av1 * bv2
					s13 += av1 * bv3
				}
				c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
				c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
			}
			for ; j < jmax; j++ {
				b0 := b[j*ldb : j*ldb+k]
				b0 = b0[:len(a0)]
				var s0, s1 float32
				for p := range a0 {
					s0 += a0[p] * b0[p]
					s1 += a1[p] * b0[p]
				}
				c0[j], c1[j] = s0, s1
			}
		}
		if i < m {
			a0 := a[i*lda : i*lda+k]
			c0 := c[i*ldc : i*ldc+n]
			j := jb
			for ; j+3 < jmax; j += 4 {
				b0 := b[j*ldb : j*ldb+k]
				b1 := b[(j+1)*ldb : (j+1)*ldb+k]
				b2 := b[(j+2)*ldb : (j+2)*ldb+k]
				b3 := b[(j+3)*ldb : (j+3)*ldb+k]
				b0 = b0[:len(a0)]
				b1 = b1[:len(a0)]
				b2 = b2[:len(a0)]
				b3 = b3[:len(a0)]
				var s0, s1, s2, s3 float32
				for p := range a0 {
					av := a0[p]
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				c0[j], c0[j+1], c0[j+2], c0[j+3] = s0, s1, s2, s3
			}
			for ; j < jmax; j++ {
				b0 := b[j*ldb : j*ldb+k]
				b0 = b0[:len(a0)]
				var s float32
				for p := range a0 {
					s += a0[p] * b0[p]
				}
				c0[j] = s
			}
		}
	}
}

// packTranspose writes src's transpose into dst as a contiguous
// Cols×Rows row-major panel, growing dst if needed, and returns it. This is
// how a@b and aᵀ@b become gemmNT calls: the packed panel puts the
// contraction dimension contiguous for the B side of the kernel.
func packTranspose(src *Mat, dst []float32) []float32 {
	n := src.Rows * src.Cols
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	rows, cols := src.Rows, src.Cols
	for r := 0; r < rows; r++ {
		row := src.Data[r*cols : (r+1)*cols]
		for c, v := range row {
			dst[c*rows+r] = v
		}
	}
	return dst
}
