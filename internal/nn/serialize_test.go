package nn

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// encodeRaw gob-encodes a hand-built snapshot, bypassing Save's invariants,
// to exercise each of Load's validation branches.
func encodeRaw(t *testing.T, layers []layerSnapshot) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshot{Layers: layers}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestLoadRejectsMalformed(t *testing.T) {
	ok := layerSnapshot{In: 2, Out: 3, Act: Tanh, W: make([]float64, 6), B: make([]float64, 3)}

	cases := []struct {
		name    string
		layers  []layerSnapshot
		wantSub string
	}{
		{"empty network", nil, "empty network"},
		{"zero input width", []layerSnapshot{{In: 0, Out: 3, B: make([]float64, 3)}}, "invalid shape"},
		{"negative output width", []layerSnapshot{{In: 2, Out: -1}}, "invalid shape"},
		{"weight count mismatch", []layerSnapshot{{In: 2, Out: 3, W: make([]float64, 5), B: make([]float64, 3)}}, "weights"},
		{"bias count mismatch", []layerSnapshot{{In: 2, Out: 3, W: make([]float64, 6), B: make([]float64, 2)}}, "biases"},
		{"activation below range", []layerSnapshot{{In: 2, Out: 3, Act: -1, W: make([]float64, 6), B: make([]float64, 3)}}, "unknown activation"},
		{"activation above range", []layerSnapshot{{In: 2, Out: 3, Act: Tanh + 1, W: make([]float64, 6), B: make([]float64, 3)}}, "unknown activation"},
		{"layers do not chain", []layerSnapshot{ok, {In: 4, Out: 1, W: make([]float64, 4), B: make([]float64, 1)}}, "does not chain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Load(encodeRaw(t, tc.layers))
			if err == nil {
				t.Fatal("malformed snapshot loaded without error")
			}
			if m != nil {
				t.Error("Load returned a network alongside an error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
