//go:build amd64

package nn

// haveGemmKernel gates the vectorized panel path in gemmNT. The kernel uses
// only SSE1/SSE2 instructions (MOVUPS/MOVSS/SHUFPS/MULPS/ADDPS), which are
// part of the amd64 baseline — no CPUID dispatch is needed and the kernel
// runs on every amd64 CPU at any GOAMD64 level.
const haveGemmKernel = true

// gemmKernel4x4 computes the 4×4 block C[0:4][0:4] = A[0:4][0:k] @ panelᵀ,
// overwriting C. a points at the first of four consecutive A rows (row
// stride lda floats), c at the top-left of the output block (row stride ldc
// floats), and panel at a k-major packed block of four B rows: panel[t*4+l]
// holds B[l][t], so one 16-byte load per contraction step t fetches the four
// B values multiplied against each A element.
//
// Determinism: lane l of accumulator row r is the single chain
// sum_t a[r][t]*B[l][t] in ascending t, with MULPS and ADDPS rounding each
// term exactly like the scalar expression `s += av * bv` — bit-identical to
// gemmNTScalar and the naive reference.
//
//go:noescape
func gemmKernel4x4(k int, a *float32, lda int, panel *float32, c *float32, ldc int)
