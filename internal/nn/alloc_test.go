package nn

import (
	"testing"

	"repro/internal/rng"
)

// refForward1 is a deliberately naive fresh-allocation forward pass using
// the same per-element accumulation order as the blocked kernel (one float32
// chain, ascending k) and the same bias-then-activation epilogue, so its
// results must be bit-identical to the arena-backed Forward1 — any
// divergence means blocking or buffer reuse changed an operation order.
func refForward1(m *MLP, x []float64) []float32 {
	in := make([]float32, len(x))
	for i, v := range x {
		in[i] = float32(v)
	}
	for _, l := range m.Layers {
		out := make([]float32, l.Out)
		for j := 0; j < l.Out; j++ {
			w := l.W.Row(j)
			var s float32
			for k := range in {
				s += in[k] * w[k]
			}
			out[j] = l.Act.apply(s + l.B[j])
		}
		in = out
	}
	return in
}

func testNet(tb testing.TB) (*MLP, [][]float64) {
	tb.Helper()
	src := rng.New(99)
	m := NewMLP(src, []int{55, 64, 64, 14}, ReLU, Identity)
	inputs := make([][]float64, 32)
	for i := range inputs {
		row := make([]float64, 55)
		for j := range row {
			row[j] = src.Uniform(-2, 2)
		}
		inputs[i] = row
	}
	return m, inputs
}

func TestForward1MatchesFreshAllocReference(t *testing.T) {
	m, inputs := testNet(t)
	for i, x := range inputs {
		got := m.Forward1(x)
		want := refForward1(m, x)
		if len(got) != len(want) {
			t.Fatalf("input %d: got %d outputs, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("input %d output %d: arena path %v != reference %v (must be bit-identical)", i, j, got[j], want[j])
			}
		}
	}
}

func TestForward1ZeroAlloc(t *testing.T) {
	m, inputs := testNet(t)
	m.Forward1(inputs[0]) // allocate the arena once
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		m.Forward1(inputs[i%len(inputs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Forward1 allocates %v/op, want 0", allocs)
	}
}

func TestForwardRowsSerialZeroAlloc(t *testing.T) {
	m, inputs := testNet(t)
	m.ForwardRows(inputs, 1) // allocate the rows arena once
	allocs := testing.AllocsPerRun(50, func() {
		m.ForwardRows(inputs, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state serial ForwardRows allocates %v/op, want 0", allocs)
	}
}

func TestForwardBatchZeroAlloc(t *testing.T) {
	m, inputs := testNet(t)
	x := NewMat(len(inputs), 55)
	for i, r := range inputs {
		x.SetRow(i, r)
	}
	m.ForwardBatch(x, 1) // allocate the arenas once
	allocs := testing.AllocsPerRun(50, func() {
		m.ForwardBatch(x, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForwardBatch allocates %v/op, want 0", allocs)
	}
}

// TestTrainStepZeroAlloc pins the batched training step — forward, MSE,
// backward, Adam — at zero steady-state allocations through the layer-owned
// scratch (trOut, bwGz/bwGw/bwGx, and the transposed pack panels).
func TestTrainStepZeroAlloc(t *testing.T) {
	m, inputs := testNet(t)
	x := NewMat(len(inputs), 55)
	for i, r := range inputs {
		x.SetRow(i, r)
	}
	y := NewMat(len(inputs), 14)
	opt := NewAdam(1e-4)
	var grad *Mat
	step := func() {
		m.ZeroGrad()
		pred := m.Forward(x, true)
		_, grad = MSELossInto(pred, y, grad)
		m.Backward(grad)
		opt.Step(m)
	}
	step() // allocate scratch and optimizer moments once
	allocs := testing.AllocsPerRun(20, func() { step() })
	if allocs != 0 {
		t.Fatalf("steady-state train step allocates %v/op, want 0", allocs)
	}
}
