//go:build !amd64

package nn

// haveGemmKernel is false on non-amd64 targets: gemmNT always takes the
// portable gemmNTScalar path, which is bit-identical to the SSE kernel by
// the determinism contract in gemm.go.
const haveGemmKernel = false

// gemmKernel4x4 is never reached when haveGemmKernel is false; the stub
// exists so gemm.go compiles on every target.
func gemmKernel4x4(k int, a *float32, lda int, panel *float32, c *float32, ldc int) {
	panic("nn: gemmKernel4x4 called on a target without an assembly kernel")
}
