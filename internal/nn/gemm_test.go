package nn

import (
	"testing"

	"repro/internal/rng"
)

// refGemmNT is the naive reference for C = A @ Bᵀ: one accumulator per
// output element, strictly ascending k. The blocked kernel promises
// bit-identical results to exactly this order at any block size, which is
// what makes worker-count byte-identity possible — so the comparisons below
// are exact equality, not tolerance.
func refGemmNT(m, n, k int, a, b []float32) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randMat(src *rng.Source, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(src.Uniform(-2, 2))
	}
	return m
}

// TestGemmBlockedMatchesNaive sweeps shapes around every tiling boundary:
// the 2×4 micro-kernel (m and n remainders 0/1 and 0..3), the gemmColBlock
// column block (n straddling 127..130), degenerate vectors, and random
// ragged shapes. Exact equality everywhere.
func TestGemmBlockedMatchesNaive(t *testing.T) {
	src := rng.New(31)
	type shape struct{ m, n, k int }
	shapes := []shape{
		{1, 1, 1}, {1, 1, 7}, {2, 4, 8}, {3, 5, 7}, {2, 3, 1},
		{1, 4, 16}, {2, 1, 16}, {5, 4, 3}, {4, 5, 2}, {7, 7, 7},
		{64, 14, 55}, {64, 64, 64}, {33, 17, 9},
		// straddle the column block
		{3, 127, 5}, {3, 128, 5}, {3, 129, 5}, {2, 130, 3}, {1, 256, 4},
		// straddle the 4×4 panel kernel's row/col blocks and gemmPanelK
		{4, 4, 1}, {4, 4, 3}, {5, 5, 8}, {6, 7, 16}, {7, 4, 5}, {4, 9, 5},
		{8, 8, 255}, {8, 8, 256}, {8, 8, 257},
	}
	for trial := 0; trial < 40; trial++ {
		shapes = append(shapes, shape{1 + src.Intn(40), 1 + src.Intn(40), 1 + src.Intn(40)})
	}
	for _, s := range shapes {
		a := randMat(src, s.m, s.k)
		b := randMat(src, s.n, s.k)
		got := MatMulTransB(a, b)
		want := refGemmNT(s.m, s.n, s.k, a.Data, b.Data)
		for i := range want {
			if got.Data[i] != want[i] {
				t.Fatalf("shape %dx%dx%d: blocked[%d]=%v naive[%d]=%v (must be bit-identical)",
					s.m, s.n, s.k, i, got.Data[i], i, want[i])
			}
		}
	}
}

// TestGemmPanelMatchesScalar pins the dispatcher's bit-identity promise
// directly: the SSE panel path and the portable scalar path must agree
// exactly on every shape both can handle, including ragged row/col tails and
// the k = gemmPanelK boundary. On targets without the assembly kernel the
// dispatcher is scalar-only and the test is vacuous, so it skips.
func TestGemmPanelMatchesScalar(t *testing.T) {
	if !haveGemmKernel {
		t.Skip("no assembly kernel on this target")
	}
	src := rng.New(53)
	type shape struct{ m, n, k int }
	shapes := []shape{
		{4, 4, 1}, {4, 4, 64}, {5, 6, 7}, {7, 9, 13}, {64, 64, 64},
		{64, 14, 55}, {256, 64, 55}, {6, 5, 256},
	}
	for trial := 0; trial < 30; trial++ {
		shapes = append(shapes, shape{4 + src.Intn(40), 4 + src.Intn(40), 1 + src.Intn(80)})
	}
	for _, s := range shapes {
		a := randMat(src, s.m, s.k)
		b := randMat(src, s.n, s.k)
		panel := make([]float32, s.m*s.n)
		scalar := make([]float32, s.m*s.n)
		gemmNTPanel(s.m, s.n, s.k, a.Data, s.k, b.Data, s.k, panel, s.n)
		gemmNTScalar(s.m, s.n, s.k, a.Data, s.k, b.Data, s.k, scalar, s.n)
		for i := range scalar {
			if panel[i] != scalar[i] {
				t.Fatalf("shape %dx%dx%d: panel[%d]=%v scalar[%d]=%v (must be bit-identical)",
					s.m, s.n, s.k, i, panel[i], i, scalar[i])
			}
		}
	}
}

// TestMatMulVariantsMatchNaive checks the packed-transpose paths (a@b and
// aᵀ@b) against naive ascending-k dot products at ragged shapes.
func TestMatMulVariantsMatchNaive(t *testing.T) {
	src := rng.New(37)
	for trial := 0; trial < 30; trial++ {
		m := 1 + src.Intn(20)
		k := 1 + src.Intn(20)
		n := 1 + src.Intn(20)

		a := randMat(src, m, k)
		b := randMat(src, k, n)
		got := MatMul(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a.Data[i*k+p] * b.Data[p*n+j]
				}
				if got.Data[i*n+j] != s {
					t.Fatalf("MatMul %dx%dx%d at (%d,%d): %v != %v", m, k, n, i, j, got.Data[i*n+j], s)
				}
			}
		}

		at := randMat(src, k, m) // aᵀ stored: k×m
		got = MatMulTransA(at, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += at.Data[p*m+i] * b.Data[p*n+j]
				}
				if got.Data[i*n+j] != s {
					t.Fatalf("MatMulTransA %dx%dx%d at (%d,%d): %v != %v", m, k, n, i, j, got.Data[i*n+j], s)
				}
			}
		}
	}
}

// TestGemmIntoReuseStable proves the Into variants give bit-identical
// results when reusing an oversized scratch matrix.
func TestGemmIntoReuseStable(t *testing.T) {
	src := rng.New(41)
	scratch := NewMat(64, 64) // oversized, will be resliced down
	for trial := 0; trial < 10; trial++ {
		m, n, k := 1+src.Intn(8), 1+src.Intn(8), 1+src.Intn(8)
		a := randMat(src, m, k)
		b := randMat(src, n, k)
		fresh := MatMulTransB(a, b)
		scratch = MatMulTransBInto(a, b, scratch)
		for i := range fresh.Data {
			if scratch.Data[i] != fresh.Data[i] {
				t.Fatalf("reused scratch differs at %d", i)
			}
		}
	}
}

func TestPackTranspose(t *testing.T) {
	src := rng.New(43)
	m := randMat(src, 5, 3)
	panel := packTranspose(m, nil)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if panel[c*m.Rows+r] != m.Data[r*m.Cols+c] {
				t.Fatalf("packTranspose(%d,%d) wrong", r, c)
			}
		}
	}
	// Reuse with exact-size buffer must not allocate a new one.
	buf := make([]float32, 15)
	out := packTranspose(m, buf)
	if &out[0] != &buf[0] {
		t.Fatal("packTranspose reallocated a sufficient buffer")
	}
}
