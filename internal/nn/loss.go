package nn

import "math"

// MSELoss returns the mean-squared-error loss over a batch and the gradient
// dL/dpred (averaged over the batch). pred and target must have identical
// shapes. The loss and each gradient element are accumulated in float64 and
// narrowed once on store.
func MSELoss(pred, target *Mat) (loss float64, grad *Mat) {
	return MSELossInto(pred, target, nil)
}

// MSELossInto is MSELoss writing the gradient into grad's storage (reused
// when it fits, nil allocates) and returning it.
func MSELossInto(pred, target, grad *Mat) (float64, *Mat) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSELoss shape mismatch")
	}
	grad = ensureMat(grad, pred.Rows, pred.Cols)
	var loss float64
	n := float64(len(pred.Data))
	for i := range pred.Data {
		d := float64(pred.Data[i]) - float64(target.Data[i])
		loss += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return loss / n, grad
}

// Softmax computes a numerically stable softmax of float32 logits,
// optionally restricted to a mask (nil = all valid). Masked-out entries
// receive probability 0. The exponentials and normalization run in float64:
// probabilities feed rng.WeightedChoice and the gradient helpers, where the
// extra precision is free.
func Softmax(logits []float32, mask []bool) []float64 {
	return SoftmaxInto(logits, mask, make([]float64, len(logits)))
}

// SoftmaxInto is Softmax writing into probs, which must have the logits'
// length (it is the caller's scratch, typically a fixed action-width
// buffer). Returns probs.
func SoftmaxInto(logits []float32, mask []bool, probs []float64) []float64 {
	if len(probs) != len(logits) {
		panic("nn: SoftmaxInto scratch length mismatch")
	}
	for i := range probs {
		probs[i] = 0
	}
	maxL := math.Inf(-1)
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		if float64(l) > maxL {
			maxL = float64(l)
		}
	}
	if math.IsInf(maxL, -1) {
		return probs // fully masked: all zeros
	}
	var sum float64
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		e := math.Exp(float64(l) - maxL)
		probs[i] = e
		sum += e
	}
	if sum == 0 {
		return probs
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// PolicyGradientRowInto writes one batch row of the policy-gradient loss
// into grad (typically a row of the n×actions gradient matrix handed to
// Backward), overwriting it:
//
//	grad = scale · (advantage · (π − onehot(action)) − entCoef · dH/dlogits)
//
// where π is the masked softmax of logits and H its entropy — the
// advantage-weighted policy gradient of Eq. 8 of the paper fused with the
// optional entropy bonus (entCoef = 0 skips the entropy term entirely).
// Masked entries get gradient 0. probs is caller scratch with the logits'
// length; all math runs in float64 and narrows once on store. The fused
// form replaces the separate PolicyGradient/EntropyBonusGradient passes:
// one softmax, no intermediate slices, zero allocations.
func PolicyGradientRowInto(logits []float32, mask []bool, action int, advantage, entCoef, scale float64, probs []float64, grad []float32) {
	if len(grad) != len(logits) {
		panic("nn: PolicyGradientRowInto scratch length mismatch")
	}
	probs = SoftmaxInto(logits, mask, probs)
	var ent float64
	if entCoef != 0 {
		for _, p := range probs {
			if p > 0 {
				ent -= p * math.Log(p)
			}
		}
	}
	for i := range grad {
		grad[i] = 0
	}
	for i, p := range probs {
		if mask != nil && !mask[i] {
			continue
		}
		g := p
		if i == action {
			g -= 1
		}
		g *= advantage
		// dH/dl_i = -p_i (log p_i + H); the bonus contributes -entCoef · dH.
		if entCoef != 0 && p > 0 {
			g += entCoef * p * (math.Log(p) + ent)
		}
		grad[i] = float32(scale * g)
	}
}

// PolicyGradient returns dL/dlogits for the policy-gradient loss
// L = -advantage · log π(action) as a fresh float32 row (convenience for
// tests and cold paths; hot paths use PolicyGradientRowInto).
func PolicyGradient(logits []float32, mask []bool, action int, advantage float64) []float32 {
	grad := make([]float32, len(logits))
	PolicyGradientRowInto(logits, mask, action, advantage, 0, 1, make([]float64, len(logits)), grad)
	return grad
}

// Entropy returns the Shannon entropy of a probability vector.
func Entropy(probs []float64) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// ClipGrads scales all gradients so their global L2 norm does not exceed
// maxNorm, returning the pre-clip norm. No-op if maxNorm <= 0. The squared
// norm accumulates in float64 — float32 would overflow around 1e19 and lose
// precision long before.
func ClipGrads(grads [][]float32, maxNorm float64) float64 {
	var sq float64
	for _, g := range grads {
		for _, v := range g {
			sq += float64(v) * float64(v)
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := float32(maxNorm / norm)
	for _, g := range grads {
		for i := range g {
			g[i] *= scale
		}
	}
	return norm
}
