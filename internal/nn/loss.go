package nn

import "math"

// MSELoss returns the mean-squared-error loss over a batch and the gradient
// dL/dpred (averaged over the batch). pred and target must have identical
// shapes.
func MSELoss(pred, target *Mat) (loss float64, grad *Mat) {
	return MSELossInto(pred, target, nil)
}

// MSELossInto is MSELoss writing the gradient into grad's storage (reused
// when it fits, nil allocates) and returning it.
func MSELossInto(pred, target, grad *Mat) (float64, *Mat) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSELoss shape mismatch")
	}
	grad = ensureMat(grad, pred.Rows, pred.Cols)
	var loss float64
	n := float64(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// Softmax computes a numerically stable softmax of logits in place-free
// fashion, optionally restricted to a mask (nil = all valid). Masked-out
// entries receive probability 0.
func Softmax(logits []float64, mask []bool) []float64 {
	return SoftmaxInto(logits, mask, make([]float64, len(logits)))
}

// SoftmaxInto is Softmax writing into probs, which must have the logits'
// length (it is the caller's scratch, typically a fixed action-width
// buffer). Returns probs.
func SoftmaxInto(logits []float64, mask []bool, probs []float64) []float64 {
	if len(probs) != len(logits) {
		panic("nn: SoftmaxInto scratch length mismatch")
	}
	for i := range probs {
		probs[i] = 0
	}
	maxL := math.Inf(-1)
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		if l > maxL {
			maxL = l
		}
	}
	if math.IsInf(maxL, -1) {
		return probs // fully masked: all zeros
	}
	var sum float64
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		e := math.Exp(l - maxL)
		probs[i] = e
		sum += e
	}
	if sum == 0 {
		return probs
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// PolicyGradient returns dL/dlogits for the policy-gradient loss
// L = -advantage · log π(action), where π is the (masked) softmax of logits:
// grad = advantage · (π − onehot(action)), zero on masked entries.
// Minimizing L with this gradient performs gradient ascent on expected
// advantage-weighted log-likelihood (Eq. 8 of the paper).
func PolicyGradient(logits []float64, mask []bool, action int, advantage float64) []float64 {
	return PolicyGradientInto(logits, mask, action, advantage,
		make([]float64, len(logits)), make([]float64, len(logits)))
}

// PolicyGradientInto is PolicyGradient through caller scratch: probs and
// grad must have the logits' length. Returns grad.
func PolicyGradientInto(logits []float64, mask []bool, action int, advantage float64, probs, grad []float64) []float64 {
	if len(grad) != len(logits) {
		panic("nn: PolicyGradientInto scratch length mismatch")
	}
	probs = SoftmaxInto(logits, mask, probs)
	for i := range grad {
		grad[i] = 0
	}
	for i, p := range probs {
		if mask != nil && !mask[i] {
			continue
		}
		g := p
		if i == action {
			g -= 1
		}
		grad[i] = advantage * g
	}
	return grad
}

// EntropyBonusGradient returns dH/dlogits scaled by -coef (so adding it to a
// loss gradient encourages exploration), where H = -Σ π log π over the
// masked softmax.
func EntropyBonusGradient(logits []float64, mask []bool, coef float64) []float64 {
	return EntropyBonusGradientInto(logits, mask, coef,
		make([]float64, len(logits)), make([]float64, len(logits)))
}

// EntropyBonusGradientInto is EntropyBonusGradient through caller scratch:
// probs and grad must have the logits' length. Returns grad.
func EntropyBonusGradientInto(logits []float64, mask []bool, coef float64, probs, grad []float64) []float64 {
	if len(grad) != len(logits) {
		panic("nn: EntropyBonusGradientInto scratch length mismatch")
	}
	probs = SoftmaxInto(logits, mask, probs)
	// H = -Σ p_i log p_i ; dH/dlogit_j = -p_j (log p_j + H... ) — derive:
	// dH/dl_j = -p_j * (log p_j - Σ_k p_k log p_k)
	var ent float64
	for _, p := range probs {
		if p > 0 {
			ent -= p * math.Log(p)
		}
	}
	for i := range grad {
		grad[i] = 0
	}
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		dH := -p * (math.Log(p) + ent)
		grad[i] = -coef * dH
	}
	return grad
}

// Entropy returns the Shannon entropy of a probability vector.
func Entropy(probs []float64) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// ClipGrads scales all gradients so their global L2 norm does not exceed
// maxNorm, returning the pre-clip norm. No-op if maxNorm <= 0.
func ClipGrads(grads [][]float64, maxNorm float64) float64 {
	var sq float64
	for _, g := range grads {
		for _, v := range g {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, g := range grads {
		for i := range g {
			g[i] *= scale
		}
	}
	return norm
}
