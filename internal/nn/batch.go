package nn

import (
	"context"

	"repro/internal/parallel"
)

// ForwardRows evaluates the network on each row independently, sharding the
// rows across at most workers goroutines. Inference (train=false) reads only
// the weights, and each worker chunk runs through its own scratch arena, so
// sharing the MLP across the chunks is safe; every row goes through exactly
// the same per-row kernels as Forward1, making the output byte-identical to
// a serial Forward1 loop for any worker count.
//
// The returned row slices are views into an MLP-owned result arena, reused
// by the next ForwardRows call on this network: callers that keep rows
// beyond that must copy them. Steady-state calls with a stable batch shape
// allocate nothing.
func (m *MLP) ForwardRows(rows [][]float64, workers int) [][]float64 {
	n := len(rows)
	if cap(m.rowsOut) < n {
		m.rowsOut = make([][]float64, n)
	}
	out := m.rowsOut[:n]
	if n == 0 {
		return out
	}
	w := m.OutputSize()
	if cap(m.rowsArena) < n*w {
		m.rowsArena = make([]float64, n*w)
	}
	arena := m.rowsArena[:n*w]
	serial := workers == 1 || n == 1
	var chunks [][2]int
	if !serial {
		chunks = parallel.Chunks(n, workers)
		serial = len(chunks) <= 1
	}
	if serial {
		for i, r := range rows {
			dst := arena[i*w : (i+1)*w : (i+1)*w]
			copy(dst, m.forward1Into(r, &m.fwd))
			out[i] = dst
		}
		return out
	}
	if len(m.chunkFwd) < len(chunks) {
		m.chunkFwd = make([]scratch, len(chunks))
	}
	// Each chunk writes a disjoint range of out and arena through its own
	// scratch; no worker returns an error, so ForEach cannot fail short of a
	// panic (which it re-raises here).
	_ = parallel.ForEach(context.Background(), len(chunks), len(chunks), func(_ context.Context, c int) error {
		s := &m.chunkFwd[c]
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			dst := arena[i*w : (i+1)*w : (i+1)*w]
			copy(dst, m.forward1Into(rows[i], s))
			out[i] = dst
		}
		return nil
	})
	return out
}
