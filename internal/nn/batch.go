package nn

import (
	"context"

	"repro/internal/parallel"
)

// ForwardRows evaluates the network on each row independently, sharding the
// rows across at most workers goroutines. Inference (train=false) reads only
// the weights, so sharing the MLP across workers is safe, and each row goes
// through exactly the same per-row kernels as Forward1 — the output is
// byte-identical to a serial Forward1 loop for any worker count.
func (m *MLP) ForwardRows(rows [][]float64, workers int) [][]float64 {
	out := make([][]float64, len(rows))
	chunks := parallel.Chunks(len(rows), workers)
	if len(chunks) <= 1 {
		for i, r := range rows {
			out[i] = m.Forward1(r)
		}
		return out
	}
	// Each chunk writes a disjoint range of out; no worker returns an error,
	// so ForEach cannot fail short of a panic (which it re-raises here).
	_ = parallel.ForEach(context.Background(), len(chunks), len(chunks), func(_ context.Context, c int) error {
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			out[i] = m.Forward1(rows[i])
		}
		return nil
	})
	return out
}
