package nn

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// ForwardBatch runs inference on a whole batch with one blocked GEMM per
// layer plus a fused bias/activation epilogue — the batch-first path that
// replaced the old per-row sharding. The returned matrix is the network's
// last activation arena, reused by the next inference call on this network:
// callers that keep it longer must copy it out.
//
// With workers > 1 the batch rows are split into contiguous blocks and each
// worker runs the full layer stack over its own block — rows are independent
// in a feed-forward net, so no cross-layer barrier is needed. Every output
// element is produced by one accumulator chain in ascending-k order
// regardless of the row partition (see gemm.go), so the result is
// byte-identical for any worker count. Workers write disjoint row ranges of
// the shared arenas; steady-state calls with a stable batch shape allocate
// nothing.
func (m *MLP) ForwardBatch(x *Mat, workers int) *Mat {
	if x.Cols != m.InputSize() {
		panic(fmt.Sprintf("nn: ForwardBatch expected %d features, got %d", m.InputSize(), x.Cols))
	}
	n := x.Rows
	if len(m.batchActs) != len(m.Layers) {
		m.batchActs = make([]*Mat, len(m.Layers))
	}
	for i, l := range m.Layers {
		m.batchActs[i] = ensureMat(m.batchActs[i], n, l.Out)
	}
	out := m.batchActs[len(m.batchActs)-1]
	serial := workers == 1 || n == 1
	var chunks [][2]int
	if !serial {
		chunks = parallel.Chunks(n, workers)
		serial = len(chunks) <= 1
	}
	if serial {
		m.forwardBlock(x, 0, n)
		return out
	}
	// Each chunk writes a disjoint row range of every arena; no worker
	// returns an error, so ForEach cannot fail short of a panic (which it
	// re-raises here).
	_ = parallel.ForEach(context.Background(), len(chunks), len(chunks), func(_ context.Context, c int) error {
		m.forwardBlock(x, chunks[c][0], chunks[c][1])
		return nil
	})
	return out
}

// forwardBlock runs every layer over rows [lo, hi) of the batch, reading x
// and writing the corresponding rows of the layer arenas.
func (m *MLP) forwardBlock(x *Mat, lo, hi int) {
	in := x
	rows := hi - lo
	for li, l := range m.Layers {
		z := m.batchActs[li]
		gemmNT(rows, l.Out, l.In, in.Data[lo*in.Cols:], in.Cols, l.W.Data, l.In, z.Data[lo*z.Cols:], z.Cols)
		for r := lo; r < hi; r++ {
			applyBiasAct(z.Row(r), l.B, l.Act)
		}
		in = z
	}
}

// ForwardRows evaluates the network on each row independently. It is a thin
// adapter over ForwardBatch: the float64 feature rows are narrowed into an
// MLP-owned input matrix and evaluated in one batched pass.
//
// The returned row slices are views into the network's last activation
// arena, reused by the next inference call on this network: callers that
// keep rows beyond that must copy them. Steady-state calls with a stable
// batch shape allocate nothing, and results are byte-identical for any
// worker count.
func (m *MLP) ForwardRows(rows [][]float64, workers int) [][]float32 {
	n := len(rows)
	if cap(m.rowsOut) < n {
		m.rowsOut = make([][]float32, n)
	}
	out := m.rowsOut[:n]
	if n == 0 {
		return out
	}
	m.rowsIn = ensureMat(m.rowsIn, n, m.InputSize())
	for i, r := range rows {
		m.rowsIn.SetRow(i, r)
	}
	res := m.ForwardBatch(m.rowsIn, workers)
	for i := range out {
		out[i] = res.Row(i)
	}
	return out
}
