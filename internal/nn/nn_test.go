package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulTransVariants(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	bt := FromSlice(2, 3, []float32{7, 9, 11, 8, 10, 12}) // b transposed
	c := MatMulTransB(a, bt)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMulTransB[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
	at := FromSlice(3, 2, []float32{1, 4, 2, 5, 3, 6}) // a transposed
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c2 := MatMulTransA(at, b)
	for i, v := range want {
		if c2.Data[i] != v {
			t.Fatalf("MatMulTransA[%d] = %v, want %v", i, c2.Data[i], v)
		}
	}
}

func TestMatShapePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewMat invalid", func() { NewMat(0, 3) })
	mustPanic("FromSlice mismatch", func() { FromSlice(2, 2, []float32{1}) })
	a := NewMat(2, 3)
	b := NewMat(2, 3)
	mustPanic("MatMul mismatch", func() { MatMul(a, b) })
}

// f64Apply mirrors Activation.apply in float64 for the finite-difference
// shadow network below.
func f64Apply(a Activation, z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	default:
		return z
	}
}

// f64Loss evaluates the network's MSE loss entirely in float64 from a
// float64 copy of the parameters (params64 lists W then B per layer, the
// Params order). Finite differences on the float32 weights directly would
// drown in rounding; perturbing the float64 shadow keeps the numeric
// gradient exact while probing the same function the float32 engine
// approximates.
func f64Loss(net *MLP, params64 [][]float64, x, target *Mat) float64 {
	var loss float64
	n := 0
	for r := 0; r < x.Rows; r++ {
		in := make([]float64, x.Cols)
		for c := range in {
			in[c] = x.At(r, c)
		}
		for li, l := range net.Layers {
			w := params64[2*li]
			b := params64[2*li+1]
			out := make([]float64, l.Out)
			for j := 0; j < l.Out; j++ {
				s := b[j]
				for k := 0; k < l.In; k++ {
					s += in[k] * w[j*l.In+k]
				}
				out[j] = f64Apply(l.Act, s)
			}
			in = out
		}
		for c := range in {
			d := in[c] - target.At(r, c)
			loss += d * d
			n++
		}
	}
	return loss / float64(n)
}

func TestBackpropMatchesFiniteDifferences(t *testing.T) {
	src := rng.New(1)
	for _, act := range []Activation{Identity, Tanh, ReLU} {
		net := NewMLP(src, []int{3, 5, 4, 2}, act, Identity)
		x := NewMat(4, 3)
		target := NewMat(4, 2)
		for i := range x.Data {
			x.Data[i] = float32(src.Norm(0, 1))
		}
		for i := range target.Data {
			target.Data[i] = float32(src.Norm(0, 1))
		}
		net.ZeroGrad()
		pred := net.Forward(x, true)
		_, grad := MSELoss(pred, target)
		net.Backward(grad)
		_, analytic := net.Params()

		params, _ := net.Params()
		params64 := make([][]float64, len(params))
		for i, p := range params {
			params64[i] = make([]float64, len(p))
			for j, v := range p {
				params64[i][j] = float64(v)
			}
		}
		const eps = 1e-6
		for i := range params64 {
			for j := range params64[i] {
				orig := params64[i][j]
				params64[i][j] = orig + eps
				lp := f64Loss(net, params64, x, target)
				params64[i][j] = orig - eps
				lm := f64Loss(net, params64, x, target)
				params64[i][j] = orig
				numeric := (lp - lm) / (2 * eps)
				a := float64(analytic[i][j])
				// The analytic gradient ran in float32: allow its rounding.
				scale := math.Max(1e-3, math.Max(math.Abs(a), math.Abs(numeric)))
				if math.Abs(a-numeric)/scale > 2e-3 {
					t.Fatalf("act=%v: grad[%d][%d] analytic=%v numeric=%v", act, i, j, a, numeric)
				}
			}
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	src := rng.New(7)
	net := NewMLP(src, []int{2, 8, 1}, Tanh, Identity)
	opt := NewAdam(0.02)
	x := FromSlice(4, 2, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	y := FromSlice(4, 1, []float32{0, 1, 1, 0})
	var loss float64
	for epoch := 0; epoch < 2000; epoch++ {
		net.ZeroGrad()
		pred := net.Forward(x, true)
		var grad *Mat
		loss, grad = MSELoss(pred, y)
		net.Backward(grad)
		opt.Step(net)
	}
	if loss > 0.01 {
		t.Fatalf("XOR not learned, final loss %v", loss)
	}
	for i := 0; i < 4; i++ {
		in := []float64{x.At(i, 0), x.At(i, 1)}
		pred := float64(net.Forward1(in)[0])
		if math.Abs(pred-float64(y.Data[i])) > 0.2 {
			t.Fatalf("XOR(%v) = %v, want %v", in, pred, y.Data[i])
		}
	}
}

func TestSGDReducesLoss(t *testing.T) {
	src := rng.New(3)
	net := NewMLP(src, []int{2, 6, 1}, Tanh, Identity)
	opt := NewSGD(0.1, 0.9)
	x := FromSlice(4, 2, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	y := FromSlice(4, 1, []float32{0, 1, 1, 2}) // linear target: sum
	first := -1.0
	var last float64
	for epoch := 0; epoch < 500; epoch++ {
		net.ZeroGrad()
		pred := net.Forward(x, true)
		loss, grad := MSELoss(pred, y)
		if first < 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step(net)
	}
	if last >= first/10 {
		t.Fatalf("SGD loss %v -> %v did not shrink enough", first, last)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float32{1, 1, 1}, nil)
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	// Masking.
	p = Softmax([]float32{5, 100, 5}, []bool{true, false, true})
	if p[1] != 0 {
		t.Fatal("masked entry got probability")
	}
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[2]-0.5) > 1e-12 {
		t.Fatalf("masked softmax = %v", p)
	}
	// Numerical stability at large logits.
	p = Softmax([]float32{1000, 1001}, nil)
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Fatal("softmax overflow")
	}
	if p[1] <= p[0] {
		t.Fatal("softmax ordering wrong")
	}
	// Fully masked.
	p = Softmax([]float32{1, 2}, []bool{false, false})
	if p[0] != 0 || p[1] != 0 {
		t.Fatal("fully masked softmax should be zeros")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		logits := make([]float32, 1+src.Intn(10))
		for i := range logits {
			logits[i] = float32(src.Norm(0, 10))
		}
		p := Softmax(logits, nil)
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatal("negative probability")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax sum = %v", sum)
		}
	}
}

func TestPolicyGradientDirection(t *testing.T) {
	// Repeatedly applying the gradient for a fixed chosen action with
	// positive advantage must increase that action's probability.
	logits := []float32{0.1, 0.2, 0.3}
	action := 0
	before := Softmax(logits, nil)[action]
	for iter := 0; iter < 50; iter++ {
		g := PolicyGradient(logits, nil, action, 1.0)
		for i := range logits {
			logits[i] -= 0.1 * g[i] // descend the loss = ascend log-prob
		}
	}
	after := Softmax(logits, nil)[action]
	if after <= before {
		t.Fatalf("action prob %v -> %v did not increase", before, after)
	}
	// Negative advantage pushes the other way.
	logits = []float32{0.1, 0.2, 0.3}
	before = Softmax(logits, nil)[action]
	for iter := 0; iter < 50; iter++ {
		g := PolicyGradient(logits, nil, action, -1.0)
		for i := range logits {
			logits[i] -= 0.1 * g[i]
		}
	}
	after = Softmax(logits, nil)[action]
	if after >= before {
		t.Fatalf("action prob %v -> %v did not decrease with negative advantage", before, after)
	}
}

func TestPolicyGradientZeroSum(t *testing.T) {
	// Σ_i grad_i = advantage·(Σπ − 1) = 0 when unmasked (up to float32
	// rounding of the stored entries).
	g := PolicyGradient([]float32{1, 2, 3}, nil, 1, 2.5)
	var sum float64
	for _, v := range g {
		sum += float64(v)
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("gradient sum = %v, want 0", sum)
	}
}

func TestPolicyGradientRowIntoMatchesUnfused(t *testing.T) {
	// The fused helper with entCoef=0, scale=1 must agree with the
	// allocating PolicyGradient, and the entropy term must match the
	// analytic dH/dlogits formula.
	logits := []float32{0.4, -1.2, 2.0, 0.0}
	mask := []bool{true, true, false, true}
	probs := make([]float64, len(logits))
	grad := make([]float32, len(logits))
	PolicyGradientRowInto(logits, mask, 1, 1.7, 0, 1, probs, grad)
	want := PolicyGradient(logits, mask, 1, 1.7)
	for i := range want {
		if grad[i] != want[i] {
			t.Fatalf("fused[%d] = %v, want %v", i, grad[i], want[i])
		}
	}
	// advantage=0 isolates the entropy term: grad_i = coef·p_i(log p_i + H).
	const coef = 0.3
	PolicyGradientRowInto(logits, mask, 1, 0, coef, 1, probs, grad)
	p := Softmax(logits, mask)
	ent := Entropy(p)
	for i := range grad {
		var want float64
		if mask[i] && p[i] > 0 {
			want = coef * p[i] * (math.Log(p[i]) + ent)
		}
		if math.Abs(float64(grad[i])-want) > 1e-7 {
			t.Fatalf("entropy grad[%d] = %v, want %v", i, grad[i], want)
		}
	}
	// scale multiplies everything.
	PolicyGradientRowInto(logits, mask, 1, 1.7, 0, 0.25, probs, grad)
	for i := range want {
		if math.Abs(float64(grad[i])-0.25*float64(want[i])) > 1e-7 {
			t.Fatalf("scaled[%d] = %v, want %v", i, grad[i], 0.25*want[i])
		}
	}
}

func TestEntropyBonusIncreasesEntropy(t *testing.T) {
	logits := []float32{3, 0, 0}
	probs := make([]float64, len(logits))
	grad := make([]float32, len(logits))
	before := Entropy(Softmax(logits, nil))
	for iter := 0; iter < 100; iter++ {
		// advantage=0: pure entropy-bonus gradient.
		PolicyGradientRowInto(logits, nil, 0, 0, 0.1, 1, probs, grad)
		for i := range logits {
			logits[i] -= 0.1 * grad[i]
		}
	}
	after := Entropy(Softmax(logits, nil))
	if after <= before {
		t.Fatalf("entropy %v -> %v did not increase", before, after)
	}
}

func TestClipGrads(t *testing.T) {
	g := [][]float32{{3, 4}} // norm 5
	norm := ClipGrads(g, 1)
	if math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	var sq float64
	for _, v := range g[0] {
		sq += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-6 {
		t.Fatalf("post-clip norm = %v", math.Sqrt(sq))
	}
	// No-op cases.
	g2 := [][]float32{{0.1}}
	if math.Abs(ClipGrads(g2, 10)-0.1) > 1e-7 {
		t.Fatal("norm wrong")
	}
	if g2[0][0] != 0.1 {
		t.Fatal("clip applied when below max")
	}
	ClipGrads(g2, 0) // maxNorm<=0 is no-op
	if g2[0][0] != 0.1 {
		t.Fatal("clip applied with maxNorm=0")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := rng.New(9)
	net := NewMLP(src, []int{4, 6, 3}, ReLU, Identity)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.2, 1.1, 0.0}
	a := net.Forward1(x)
	b := loaded.Forward1(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded network output differs: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	src := rng.New(11)
	net := NewMLP(src, []int{2, 3, 1}, Tanh, Identity)
	c := net.Clone()
	x := []float64{1, 2}
	if net.Forward1(x)[0] != c.Forward1(x)[0] {
		t.Fatal("clone output differs")
	}
	c.Layers[0].W.Data[0] += 1
	if net.Forward1(x)[0] == c.Forward1(x)[0] {
		t.Fatal("clone shares weight storage")
	}
}

func TestCopyAndSoftUpdate(t *testing.T) {
	src := rng.New(13)
	a := NewMLP(src, []int{2, 3, 1}, Tanh, Identity)
	b := NewMLP(src, []int{2, 3, 1}, Tanh, Identity)
	x := []float64{0.3, -0.7}
	if a.Forward1(x)[0] == b.Forward1(x)[0] {
		t.Fatal("fixture: networks should differ")
	}
	b.CopyWeightsFrom(a)
	if a.Forward1(x)[0] != b.Forward1(x)[0] {
		t.Fatal("CopyWeightsFrom did not copy")
	}
	// Soft update with tau=1 equals copy.
	c := NewMLP(src, []int{2, 3, 1}, Tanh, Identity)
	c.SoftUpdateFrom(a, 1.0)
	if a.Forward1(x)[0] != c.Forward1(x)[0] {
		t.Fatal("SoftUpdateFrom(tau=1) != copy")
	}
	// tau=0 is a no-op.
	d := NewMLP(src, []int{2, 3, 1}, Tanh, Identity)
	before := d.Forward1(x)[0]
	d.SoftUpdateFrom(a, 0)
	if d.Forward1(x)[0] != before {
		t.Fatal("SoftUpdateFrom(tau=0) changed weights")
	}
}

func TestNumParams(t *testing.T) {
	src := rng.New(15)
	net := NewMLP(src, []int{3, 5, 2}, ReLU, Identity)
	want := 3*5 + 5 + 5*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestForwardShapePanic(t *testing.T) {
	src := rng.New(17)
	net := NewMLP(src, []int{3, 2}, Identity, Identity)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input width did not panic")
		}
	}()
	net.Forward(NewMat(1, 5), false)
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	src := rng.New(19)
	net := NewMLP(src, []int{2, 2}, Identity, Identity)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward did not panic")
		}
	}()
	net.Backward(NewMat(1, 2))
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Single linear layer fitting y = 2x + 1.
	src := rng.New(21)
	net := NewMLP(src, []int{1, 1}, Identity, Identity)
	opt := NewAdam(0.05)
	x := FromSlice(8, 1, []float32{-2, -1.5, -1, -0.5, 0.5, 1, 1.5, 2})
	y := NewMat(8, 1)
	for i := range x.Data {
		y.Data[i] = 2*x.Data[i] + 1
	}
	for epoch := 0; epoch < 500; epoch++ {
		net.ZeroGrad()
		pred := net.Forward(x, true)
		_, grad := MSELoss(pred, y)
		net.Backward(grad)
		opt.Step(net)
	}
	w := float64(net.Layers[0].W.Data[0])
	b := float64(net.Layers[0].B[0])
	if math.Abs(w-2) > 0.05 || math.Abs(b-1) > 0.05 {
		t.Fatalf("fit w=%v b=%v, want 2, 1", w, b)
	}
}
