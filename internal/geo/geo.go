// Package geo provides the geometric primitives used throughout FairMove:
// geographic points, haversine distances, bounding boxes, polygons, and a
// uniform-grid spatial index. All coordinates are WGS-84 degrees
// (longitude, latitude), matching the GPS record schema of the paper.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by Distance.
const EarthRadiusKm = 6371.0088

// Point is a geographic coordinate in degrees.
type Point struct {
	Lng float64
	Lat float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lng, p.Lat)
}

// Distance returns the haversine great-circle distance between p and q in
// kilometres.
func Distance(p, q Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLat := (q.Lat - p.Lat) * degToRad
	dLng := (q.Lng - p.Lng) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLng := math.Sin(dLng / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLng*sinLng
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// DistanceApprox returns the equirectangular approximation of Distance —
// one cosine instead of haversine's full trig chain. At intra-city extents
// (tens of kilometres) it agrees with Distance to well under 0.1%, far
// inside the road-network fudge factors layered on top, so the hot sampling
// paths use it; anything comparing points across the whole map should keep
// Distance.
func DistanceApprox(p, q Point) float64 {
	const degToRad = math.Pi / 180
	dLat := (q.Lat - p.Lat) * degToRad
	dLng := (q.Lng - p.Lng) * degToRad * math.Cos((p.Lat+q.Lat)*(degToRad/2))
	return EarthRadiusKm * math.Sqrt(dLat*dLat+dLng*dLng)
}

// Midpoint returns the arithmetic midpoint of p and q. It is adequate for the
// city-scale distances FairMove deals with.
func Midpoint(p, q Point) Point {
	return Point{Lng: (p.Lng + q.Lng) / 2, Lat: (p.Lat + q.Lat) / 2}
}

// Lerp linearly interpolates between p (t=0) and q (t=1).
func Lerp(p, q Point, t float64) Point {
	return Point{
		Lng: p.Lng + (q.Lng-p.Lng)*t,
		Lat: p.Lat + (q.Lat-p.Lat)*t,
	}
}

// BBox is an axis-aligned bounding box in degree space.
type BBox struct {
	MinLng, MinLat, MaxLng, MaxLat float64
}

// Contains reports whether p lies inside or on the boundary of b.
func (b BBox) Contains(p Point) bool {
	return p.Lng >= b.MinLng && p.Lng <= b.MaxLng &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat
}

// Center returns the centre point of b.
func (b BBox) Center() Point {
	return Point{Lng: (b.MinLng + b.MaxLng) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
}

// Width returns the longitudinal extent of b in degrees.
func (b BBox) Width() float64 { return b.MaxLng - b.MinLng }

// Height returns the latitudinal extent of b in degrees.
func (b BBox) Height() float64 { return b.MaxLat - b.MinLat }

// Expand grows the box by margin degrees on every side.
func (b BBox) Expand(margin float64) BBox {
	return BBox{
		MinLng: b.MinLng - margin, MinLat: b.MinLat - margin,
		MaxLng: b.MaxLng + margin, MaxLat: b.MaxLat + margin,
	}
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	return BBox{
		MinLng: math.Min(b.MinLng, o.MinLng),
		MinLat: math.Min(b.MinLat, o.MinLat),
		MaxLng: math.Max(b.MaxLng, o.MaxLng),
		MaxLat: math.Max(b.MaxLat, o.MaxLat),
	}
}

// BBoxOf returns the bounding box of the given points. It panics if pts is
// empty.
func BBoxOf(pts []Point) BBox {
	if len(pts) == 0 {
		panic("geo: BBoxOf of empty point set")
	}
	b := BBox{
		MinLng: pts[0].Lng, MinLat: pts[0].Lat,
		MaxLng: pts[0].Lng, MaxLat: pts[0].Lat,
	}
	for _, p := range pts[1:] {
		b.MinLng = math.Min(b.MinLng, p.Lng)
		b.MinLat = math.Min(b.MinLat, p.Lat)
		b.MaxLng = math.Max(b.MaxLng, p.Lng)
		b.MaxLat = math.Max(b.MaxLat, p.Lat)
	}
	return b
}

// Polygon is a simple (non-self-intersecting) polygon given as a ring of
// vertices. The ring need not be explicitly closed.
type Polygon struct {
	Ring []Point
}

// Contains reports whether p lies inside the polygon using the even-odd
// ray-casting rule. Points exactly on an edge may be classified either way.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Ring)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Ring[i], pg.Ring[j]
		if (vi.Lat > p.Lat) != (vj.Lat > p.Lat) {
			x := vi.Lng + (p.Lat-vi.Lat)/(vj.Lat-vi.Lat)*(vj.Lng-vi.Lng)
			if p.Lng < x {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Centroid returns the area-weighted centroid of the polygon. For degenerate
// polygons it falls back to the vertex mean.
func (pg Polygon) Centroid() Point {
	n := len(pg.Ring)
	if n == 0 {
		return Point{}
	}
	var area, cx, cy float64
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Ring[i], pg.Ring[j]
		cross := vj.Lng*vi.Lat - vi.Lng*vj.Lat
		area += cross
		cx += (vj.Lng + vi.Lng) * cross
		cy += (vj.Lat + vi.Lat) * cross
		j = i
	}
	if math.Abs(area) < 1e-15 {
		var sx, sy float64
		for _, v := range pg.Ring {
			sx += v.Lng
			sy += v.Lat
		}
		return Point{Lng: sx / float64(n), Lat: sy / float64(n)}
	}
	area /= 2
	return Point{Lng: cx / (6 * area), Lat: cy / (6 * area)}
}

// BBox returns the bounding box of the polygon.
func (pg Polygon) BBox() BBox { return BBoxOf(pg.Ring) }
