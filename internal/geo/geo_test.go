package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Shenzhen city centre to Shenzhen Bao'an airport is roughly 28-32 km.
	center := Point{Lng: 114.06, Lat: 22.54}
	airport := Point{Lng: 113.81, Lat: 22.64}
	d := Distance(center, airport)
	if d < 25 || d > 35 {
		t.Fatalf("center-airport distance = %.2f km, want 25-35", d)
	}
}

func TestDistanceZero(t *testing.T) {
	p := Point{Lng: 114.0, Lat: 22.5}
	if d := Distance(p, p); d != 0 {
		t.Fatalf("Distance(p,p) = %v, want 0", d)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(aLng, aLat, bLng, bLat float64) bool {
		a := Point{Lng: math.Mod(aLng, 180), Lat: math.Mod(aLat, 85)}
		b := Point{Lng: math.Mod(bLng, 180), Lat: math.Mod(bLat, 85)}
		d1, d2 := Distance(a, b), Distance(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randPt := func() Point {
		return Point{Lng: 113.7 + rng.Float64()*0.9, Lat: 22.4 + rng.Float64()*0.5}
	}
	for i := 0; i < 500; i++ {
		a, b, c := randPt(), randPt(), randPt()
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := Point{Lng: 1, Lat: 2}
	b := Point{Lng: 3, Lat: 6}
	if got := Lerp(a, b, 0); got != a {
		t.Fatalf("Lerp t=0 = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Fatalf("Lerp t=1 = %v, want %v", got, b)
	}
	mid := Lerp(a, b, 0.5)
	if mid != (Point{Lng: 2, Lat: 4}) {
		t.Fatalf("Lerp t=0.5 = %v", mid)
	}
	if mid != Midpoint(a, b) {
		t.Fatalf("Lerp t=0.5 != Midpoint: %v vs %v", mid, Midpoint(a, b))
	}
}

func TestBBoxContains(t *testing.T) {
	b := BBox{MinLng: 0, MinLat: 0, MaxLng: 10, MaxLat: 5}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 2}, true},
		{Point{0, 0}, true},
		{Point{10, 5}, true},
		{Point{-0.1, 2}, false},
		{Point{5, 5.1}, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBBoxOfAndUnion(t *testing.T) {
	pts := []Point{{1, 2}, {-3, 4}, {5, -1}}
	b := BBoxOf(pts)
	want := BBox{MinLng: -3, MinLat: -1, MaxLng: 5, MaxLat: 4}
	if b != want {
		t.Fatalf("BBoxOf = %+v, want %+v", b, want)
	}
	u := b.Union(BBox{MinLng: -10, MinLat: 0, MaxLng: 0, MaxLat: 10})
	if u.MinLng != -10 || u.MaxLat != 10 || u.MaxLng != 5 || u.MinLat != -1 {
		t.Fatalf("Union = %+v", u)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bbox does not contain its own input point %v", p)
		}
	}
}

func TestBBoxOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BBoxOf(nil) did not panic")
		}
	}()
	BBoxOf(nil)
}

func TestPolygonContains(t *testing.T) {
	square := Polygon{Ring: []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}}
	if !square.Contains(Point{2, 2}) {
		t.Error("centre should be inside")
	}
	if square.Contains(Point{5, 2}) {
		t.Error("outside point reported inside")
	}
	if square.Contains(Point{-1, -1}) {
		t.Error("outside corner reported inside")
	}
	// Concave polygon (L shape).
	ell := Polygon{Ring: []Point{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}}
	if !ell.Contains(Point{1, 3}) {
		t.Error("point in L arm should be inside")
	}
	if ell.Contains(Point{3, 3}) {
		t.Error("point in L notch should be outside")
	}
}

func TestPolygonContainsDegenerate(t *testing.T) {
	if (Polygon{Ring: []Point{{0, 0}, {1, 1}}}).Contains(Point{0.5, 0.5}) {
		t.Error("2-vertex polygon cannot contain anything")
	}
	if (Polygon{}).Contains(Point{}) {
		t.Error("empty polygon cannot contain anything")
	}
}

func TestPolygonCentroid(t *testing.T) {
	square := Polygon{Ring: []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}}
	c := square.Centroid()
	if math.Abs(c.Lng-2) > 1e-12 || math.Abs(c.Lat-2) > 1e-12 {
		t.Fatalf("square centroid = %v, want (2,2)", c)
	}
	// Degenerate (zero-area) polygon falls back to vertex mean.
	line := Polygon{Ring: []Point{{0, 0}, {2, 0}, {4, 0}}}
	c = line.Centroid()
	if math.Abs(c.Lng-2) > 1e-12 || math.Abs(c.Lat) > 1e-12 {
		t.Fatalf("degenerate centroid = %v, want (2,0)", c)
	}
}

func TestPolygonCentroidInsideConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		// Random convex polygon: points on an ellipse.
		n := 3 + rng.Intn(8)
		cx, cy := rng.Float64()*100, rng.Float64()*100
		rx, ry := 1+rng.Float64()*10, 1+rng.Float64()*10
		ring := make([]Point, n)
		for i := 0; i < n; i++ {
			theta := 2 * math.Pi * float64(i) / float64(n)
			ring[i] = Point{Lng: cx + rx*math.Cos(theta), Lat: cy + ry*math.Sin(theta)}
		}
		pg := Polygon{Ring: ring}
		if c := pg.Centroid(); !pg.Contains(c) {
			t.Fatalf("centroid %v outside convex polygon %v", c, ring)
		}
	}
}

func TestGridIndexNearestBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{Lng: 113.7 + rng.Float64()*0.9, Lat: 22.4 + rng.Float64()*0.5}
	}
	idx := NewGridIndex(pts, nil, 12)
	for trial := 0; trial < 200; trial++ {
		q := Point{Lng: 113.7 + rng.Float64()*0.9, Lat: 22.4 + rng.Float64()*0.5}
		best, bestD := -1, math.Inf(1)
		for i, p := range pts {
			if d := Distance(q, p); d < bestD {
				best, bestD = i, d
			}
		}
		got, gotD := idx.Nearest(q)
		if got != best {
			t.Fatalf("Nearest(%v) = %d (%.4f km), brute force %d (%.4f km)", q, got, gotD, best, bestD)
		}
	}
}

func TestGridIndexKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := make([]Point, 150)
	for i := range pts {
		pts[i] = Point{Lng: rng.Float64(), Lat: rng.Float64()}
	}
	idx := NewGridIndex(pts, nil, 10)
	q := Point{Lng: 0.5, Lat: 0.5}
	for _, k := range []int{1, 3, 5, 20, 150, 400} {
		res := idx.KNearest(q, k)
		wantLen := k
		if wantLen > len(pts) {
			wantLen = len(pts)
		}
		if len(res) != wantLen {
			t.Fatalf("KNearest k=%d returned %d results", k, len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].DistKm < res[i-1].DistKm {
				t.Fatalf("KNearest k=%d results not sorted at %d", k, i)
			}
		}
	}
	// Cross-check top-5 against brute force.
	type cand struct {
		idx int
		d   float64
	}
	var all []cand
	for i, p := range pts {
		all = append(all, cand{i, Distance(q, p)})
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[i].d {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	res := idx.KNearest(q, 5)
	for i := 0; i < 5; i++ {
		if res[i].Label != all[i].idx {
			t.Fatalf("KNearest[%d] = %d, brute force %d", i, res[i].Label, all[i].idx)
		}
	}
}

func TestGridIndexKNearestZeroAndNegative(t *testing.T) {
	idx := NewGridIndex([]Point{{0, 0}}, nil, 4)
	if res := idx.KNearest(Point{}, 0); res != nil {
		t.Fatalf("k=0 should return nil, got %v", res)
	}
	if res := idx.KNearest(Point{}, -3); res != nil {
		t.Fatalf("k<0 should return nil, got %v", res)
	}
}

func TestGridIndexCustomLabels(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}}
	idx := NewGridIndex(pts, []int{100, 200}, 4)
	label, _ := idx.Nearest(Point{0.1, 0.1})
	if label != 100 {
		t.Fatalf("Nearest label = %d, want 100", label)
	}
	label, _ = idx.Nearest(Point{0.9, 0.9})
	if label != 200 {
		t.Fatalf("Nearest label = %d, want 200", label)
	}
}

func TestGridIndexPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty points", func() { NewGridIndex(nil, nil, 4) })
	mustPanic("label mismatch", func() { NewGridIndex([]Point{{0, 0}}, []int{1, 2}, 4) })
}

// TestGridIndexKNearestBruteForceProperty pins the ring-termination bound:
// across random point sets, grid resolutions, and deliberately skewed
// extents (tall/flat boxes stress the per-axis distance bound), KNearest
// must return exactly the brute-force k-nearest set. The old fixed
// guard-ring rule failed this whenever the first satisfying ring was 0 or
// the cell aspect let a nearer point hide two rings out.
func TestGridIndexKNearestBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := []struct{ w, h float64 }{
		{0.9, 0.5},   // Shenzhen-like
		{0.9, 0.05},  // flat: cellH ≪ cellW
		{0.05, 0.9},  // tall: cellW ≪ cellH
		{0.01, 0.01}, // dense micro-box
	}
	for trial := 0; trial < 40; trial++ {
		sh := shapes[trial%len(shapes)]
		n := 2 + rng.Intn(300)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Lng: 113.7 + rng.Float64()*sh.w,
				Lat: 22.4 + rng.Float64()*sh.h,
			}
			if rng.Intn(4) == 0 && i > 0 {
				// Cluster: duplicate-ish points sharing a cell.
				pts[i] = Point{Lng: pts[i-1].Lng + rng.Float64()*1e-4, Lat: pts[i-1].Lat}
			}
		}
		cells := 1 + rng.Intn(30)
		idx := NewGridIndex(pts, nil, cells)
		for q := 0; q < 25; q++ {
			query := Point{
				Lng: 113.7 + rng.Float64()*sh.w,
				Lat: 22.4 + rng.Float64()*sh.h,
			}
			k := 1 + rng.Intn(8)
			got := idx.KNearest(query, k)
			want := bruteKNearest(pts, query, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: KNearest(%v, %d) returned %d results, want %d",
					trial, query, k, len(got), len(want))
			}
			for i := range got {
				// Compare by distance, not label: exact ties may order freely.
				if got[i].DistKm != want[i].DistKm {
					t.Fatalf("trial %d (n=%d cells=%d): KNearest(%v, %d)[%d] = label %d at %.9f km, brute force %.9f km",
						trial, n, cells, query, k, i, got[i].Label, got[i].DistKm, want[i].DistKm)
				}
			}
		}
	}
}

// bruteKNearest is the O(n log n) reference the grid index must match.
func bruteKNearest(pts []Point, q Point, k int) []Neighbor {
	all := make([]Neighbor, len(pts))
	for i, p := range pts {
		all[i] = Neighbor{Label: i, DistKm: Distance(q, p)}
	}
	sortNeighbors(all)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TestGridIndexKNearestIntoMatchesKNearest pins the Into variant to the
// allocating API byte for byte, including buffer reuse across queries.
func TestGridIndexKNearestIntoMatchesKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 120)
	for i := range pts {
		pts[i] = Point{Lng: 113.7 + rng.Float64()*0.9, Lat: 22.4 + rng.Float64()*0.5}
	}
	idx := NewGridIndex(pts, nil, 16)
	var buf []Neighbor
	for trial := 0; trial < 100; trial++ {
		q := Point{Lng: 113.7 + rng.Float64()*0.9, Lat: 22.4 + rng.Float64()*0.5}
		k := 1 + rng.Intn(7)
		want := idx.KNearest(q, k)
		buf = idx.KNearestInto(q, k, buf)
		if len(buf) != len(want) {
			t.Fatalf("KNearestInto returned %d results, KNearest %d", len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("KNearestInto[%d] = %+v, KNearest %+v", i, buf[i], want[i])
			}
		}
	}
}

// TestGridIndexKNearestIntoSteadyStateAllocs proves the amortized lookup
// allocates nothing once the buffer has grown to steady size.
func TestGridIndexKNearestIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{Lng: 113.7 + rng.Float64()*0.9, Lat: 22.4 + rng.Float64()*0.5}
	}
	idx := NewGridIndex(pts, nil, 16)
	queries := make([]Point, 64)
	for i := range queries {
		queries[i] = Point{Lng: 113.7 + rng.Float64()*0.9, Lat: 22.4 + rng.Float64()*0.5}
	}
	var buf []Neighbor
	for _, q := range queries {
		buf = idx.KNearestInto(q, 5, buf)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf = idx.KNearestInto(queries[i%len(queries)], 5, buf)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state KNearestInto allocates %.1f/op, want 0", allocs)
	}
}
