package geo

import (
	"math"
	"sort"
)

// GridIndex is a uniform-grid spatial index over points. It supports
// nearest-neighbour and k-nearest queries, which FairMove uses for
// point-to-region assignment and nearest-charging-station lookups.
type GridIndex struct {
	bbox   BBox
	cols   int
	rows   int
	cellW  float64
	cellH  float64
	cells  [][]int // indices into pts per cell
	pts    []Point
	labels []int // caller-supplied identifiers, parallel to pts
}

// NewGridIndex builds an index over pts with roughly cells×cells resolution.
// labels[i] is the identifier returned for pts[i]; if labels is nil the point
// index itself is used.
func NewGridIndex(pts []Point, labels []int, cells int) *GridIndex {
	if len(pts) == 0 {
		panic("geo: NewGridIndex with no points")
	}
	if cells < 1 {
		cells = 1
	}
	if labels == nil {
		labels = make([]int, len(pts))
		for i := range labels {
			labels[i] = i
		}
	}
	if len(labels) != len(pts) {
		panic("geo: labels length mismatch")
	}
	b := BBoxOf(pts).Expand(1e-9)
	g := &GridIndex{
		bbox:   b,
		cols:   cells,
		rows:   cells,
		cellW:  b.Width() / float64(cells),
		cellH:  b.Height() / float64(cells),
		cells:  make([][]int, cells*cells),
		pts:    append([]Point(nil), pts...),
		labels: append([]int(nil), labels...),
	}
	for i, p := range g.pts {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], i)
	}
	return g
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

func (g *GridIndex) cellOf(p Point) int {
	cx := int((p.Lng - g.bbox.MinLng) / g.cellW)
	cy := int((p.Lat - g.bbox.MinLat) / g.cellH)
	cx = clampInt(cx, 0, g.cols-1)
	cy = clampInt(cy, 0, g.rows-1)
	return cy*g.cols + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Nearest returns the label of the indexed point closest to q and the
// distance to it in kilometres.
func (g *GridIndex) Nearest(q Point) (label int, distKm float64) {
	res := g.KNearest(q, 1)
	if len(res) == 0 {
		return -1, math.Inf(1)
	}
	return res[0].Label, res[0].DistKm
}

// Neighbor is one result of a KNearest query.
type Neighbor struct {
	Label  int
	DistKm float64
}

// KNearest returns the k indexed points closest to q ordered by increasing
// distance. It expands a ring search over grid cells until enough candidates
// are found.
func (g *GridIndex) KNearest(q Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	if k > len(g.pts) {
		k = len(g.pts)
	}
	cx := clampInt(int((q.Lng-g.bbox.MinLng)/g.cellW), 0, g.cols-1)
	cy := clampInt(int((q.Lat-g.bbox.MinLat)/g.cellH), 0, g.rows-1)

	var cand []Neighbor
	maxRing := g.cols
	if g.rows > maxRing {
		maxRing = g.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		added := g.collectRing(q, cx, cy, ring, &cand)
		// Stop once we have k candidates and have searched one ring past the
		// ring that produced them, which guarantees correctness on a uniform
		// grid (a nearer point cannot hide more than one ring further out).
		if len(cand) >= k && ring > 0 && !added {
			break
		}
		if len(cand) >= k && ring >= 1 {
			// One extra guard ring beyond first satisfaction.
			g.collectRing(q, cx, cy, ring+1, &cand)
			break
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].DistKm < cand[j].DistKm })
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// collectRing appends all points in cells at Chebyshev distance ring from
// (cx, cy) and reports whether any cell in the ring existed.
func (g *GridIndex) collectRing(q Point, cx, cy, ring int, out *[]Neighbor) bool {
	any := false
	appendCell := func(x, y int) {
		if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
			return
		}
		any = true
		for _, i := range g.cells[y*g.cols+x] {
			*out = append(*out, Neighbor{Label: g.labels[i], DistKm: Distance(q, g.pts[i])})
		}
	}
	if ring == 0 {
		appendCell(cx, cy)
		return any
	}
	for x := cx - ring; x <= cx+ring; x++ {
		appendCell(x, cy-ring)
		appendCell(x, cy+ring)
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		appendCell(cx-ring, y)
		appendCell(cx+ring, y)
	}
	return any
}
