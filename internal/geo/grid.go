package geo

import (
	"math"
	"slices"
)

// GridIndex is a uniform-grid spatial index over points. It supports
// nearest-neighbour and k-nearest queries, which FairMove uses for
// point-to-region assignment and nearest-charging-station lookups.
type GridIndex struct {
	bbox   BBox
	cols   int
	rows   int
	cellW  float64
	cellH  float64
	cosLat float64 // min |cos(lat)| over the bbox: deg-lng → km lower bound
	cells  [][]int // indices into pts per cell
	pts    []Point
	labels []int // caller-supplied identifiers, parallel to pts
}

// NewGridIndex builds an index over pts with roughly cells×cells resolution.
// labels[i] is the identifier returned for pts[i]; if labels is nil the point
// index itself is used.
func NewGridIndex(pts []Point, labels []int, cells int) *GridIndex {
	if len(pts) == 0 {
		panic("geo: NewGridIndex with no points")
	}
	if cells < 1 {
		cells = 1
	}
	if labels == nil {
		labels = make([]int, len(pts))
		for i := range labels {
			labels[i] = i
		}
	}
	if len(labels) != len(pts) {
		panic("geo: labels length mismatch")
	}
	b := BBoxOf(pts).Expand(1e-9)
	// cos is even and decreasing in |lat|, so the extreme latitude gives the
	// minimum over the whole box whether or not it straddles the equator.
	maxAbsLat := math.Max(math.Abs(b.MinLat), math.Abs(b.MaxLat))
	cosLat := math.Cos(maxAbsLat * math.Pi / 180)
	if cosLat < 0 {
		cosLat = 0 // polar box: longitude separation bounds nothing
	}
	g := &GridIndex{
		bbox:   b,
		cols:   cells,
		rows:   cells,
		cellW:  b.Width() / float64(cells),
		cellH:  b.Height() / float64(cells),
		cosLat: cosLat,
		cells:  make([][]int, cells*cells),
		pts:    append([]Point(nil), pts...),
		labels: append([]int(nil), labels...),
	}
	for i, p := range g.pts {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], i)
	}
	return g
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

func (g *GridIndex) cellOf(p Point) int {
	cx := int((p.Lng - g.bbox.MinLng) / g.cellW)
	cy := int((p.Lat - g.bbox.MinLat) / g.cellH)
	cx = clampInt(cx, 0, g.cols-1)
	cy = clampInt(cy, 0, g.rows-1)
	return cy*g.cols + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Nearest returns the label of the indexed point closest to q and the
// distance to it in kilometres.
func (g *GridIndex) Nearest(q Point) (label int, distKm float64) {
	var buf [nearestStack]Neighbor
	res := g.KNearestInto(q, 1, buf[:0])
	if len(res) == 0 {
		return -1, math.Inf(1)
	}
	return res[0].Label, res[0].DistKm
}

// nearestStack sizes Nearest's stack candidate buffer: sparse grids rarely
// see more than a few dozen candidates before the ring bound closes.
const nearestStack = 32

// Neighbor is one result of a KNearest query.
type Neighbor struct {
	Label  int
	DistKm float64
}

// KNearest returns the k indexed points closest to q ordered by increasing
// distance. It allocates a fresh result slice per call; amortized callers
// should hold a buffer and use KNearestInto.
func (g *GridIndex) KNearest(q Point, k int) []Neighbor {
	return g.KNearestInto(q, k, nil)
}

// KNearestInto is KNearest appending into buf's storage (contents are
// discarded), so a caller that keeps the returned slice as its next buf
// allocates only until the buffer reaches steady size. The result aliases
// buf and is valid until the next reuse.
//
// The ring search expands over grid cells until the next unexamined ring
// provably cannot contain a point nearer than the current k-th best: a cell
// at Chebyshev ring r is separated from the query's cell by at least r−1
// full cells along one axis, and minRingDistKm turns that into a
// great-circle lower bound. (The previous termination rule — one fixed
// guard ring past first satisfaction — was wrong twice over: when ring 0
// already held k candidates it skipped the guard entirely, and on grids
// with skewed cell aspect or clustered points a strictly nearer point can
// hide more than one ring out.)
func (g *GridIndex) KNearestInto(q Point, k int, buf []Neighbor) []Neighbor {
	cand := buf[:0]
	if k <= 0 {
		return cand
	}
	if k > len(g.pts) {
		k = len(g.pts)
	}
	cx := clampInt(int((q.Lng-g.bbox.MinLng)/g.cellW), 0, g.cols-1)
	cy := clampInt(int((q.Lat-g.bbox.MinLat)/g.cellH), 0, g.rows-1)

	maxRing := g.cols
	if g.rows > maxRing {
		maxRing = g.rows
	}
	ring := 0
	for ; ring <= maxRing; ring++ {
		g.collectRing(q, cx, cy, ring, &cand)
		if len(cand) >= k {
			break
		}
	}
	sortNeighbors(cand)
	for next := ring + 1; next <= maxRing; next++ {
		if g.minRingDistKm(next) > cand[k-1].DistKm {
			break
		}
		n := len(cand)
		g.collectRing(q, cx, cy, next, &cand)
		if len(cand) != n {
			sortNeighbors(cand)
		}
	}
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// sortNeighbors orders candidates by increasing distance with the exact
// comparison KNearest has always used (no tie-break beyond distance).
func sortNeighbors(cand []Neighbor) {
	slices.SortFunc(cand, func(a, b Neighbor) int {
		switch {
		case a.DistKm < b.DistKm:
			return -1
		case a.DistKm > b.DistKm:
			return 1
		}
		return 0
	})
}

// minRingDistKm returns a lower bound on the great-circle distance from any
// point in the query's cell to any point in a cell at Chebyshev ring r.
// Such cells are at least r−1 cell extents away along one axis, and the
// haversine distance satisfies d ≥ 2R·sin(Δlat/2) and
// d ≥ 2R·min|cos(lat)|·sin(Δlng/2), so the smaller of the two axis bounds
// is safe whichever axis provides the separation.
func (g *GridIndex) minRingDistKm(ring int) float64 {
	if ring <= 1 {
		return 0
	}
	const degToRad = math.Pi / 180
	gap := float64(ring - 1)
	latHalf := math.Min(gap*g.cellH*degToRad/2, math.Pi/2)
	lngHalf := math.Min(gap*g.cellW*degToRad/2, math.Pi/2)
	latBound := 2 * EarthRadiusKm * math.Sin(latHalf)
	lngBound := 2 * EarthRadiusKm * g.cosLat * math.Sin(lngHalf)
	return math.Min(latBound, lngBound)
}

// collectRing appends all points in cells at Chebyshev distance ring from
// (cx, cy) and reports whether any cell in the ring existed.
func (g *GridIndex) collectRing(q Point, cx, cy, ring int, out *[]Neighbor) bool {
	any := false
	appendCell := func(x, y int) {
		if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
			return
		}
		any = true
		for _, i := range g.cells[y*g.cols+x] {
			*out = append(*out, Neighbor{Label: g.labels[i], DistKm: Distance(q, g.pts[i])})
		}
	}
	if ring == 0 {
		appendCell(cx, cy)
		return any
	}
	for x := cx - ring; x <= cx+ring; x++ {
		appendCell(x, cy-ring)
		appendCell(x, cy+ring)
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		appendCell(cx-ring, y)
		appendCell(cx+ring, y)
	}
	return any
}
