package invariant

// The property-based robustness battery: N seeded random scenario
// compositions from the full fault zoo, each replayed on both engines —
// the sequential reference and the sharded engine at every configured
// shard count — with the invariant checker attached. Two kinds of failure
// exist: an invariant violation on any run, and a trace-digest mismatch
// between shard counts. Either dumps the offending scenario spec as a
// canonical JSON reproducer so the failure replays outside the battery.

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// BatteryConfig sizes one battery run. The zero value is the CI short-mode
// configuration: 64 compositions on the micro city, one day each, shards
// 1 and 4.
type BatteryConfig struct {
	// N is the number of random compositions (default 64).
	N int
	// Seed fixes the city, the run streams, and the generated scenarios;
	// the battery is a pure function of this config (default 42).
	Seed int64
	// Shards is the shard-count ladder every composition replays at
	// (default {1, 4}); digests must agree across the ladder.
	Shards []int
	// Days is the horizon per run (default 1).
	Days int
	// ReproDir, when non-empty, receives <scenario>.json reproducer specs
	// for every failing composition.
	ReproDir string
}

// Failure is one failed composition: a run that violated invariants, or a
// shard ladder whose digests diverged.
type Failure struct {
	Scenario   string      // generated spec name
	Mode       string      // "env", "shards=K", or "digest"
	Detail     string      // one-line description
	Violations []Violation // empty for digest mismatches
	SpecJSON   []byte      // canonical reproducer spec
	ReproPath  string      // where SpecJSON was written ("" if not dumped)
}

// Report is the outcome of a battery run.
type Report struct {
	Compositions int
	Runs         int // engine runs executed (compositions × (1 + len(Shards)))
	Failures     []Failure
}

// OK reports whether every run passed every invariant with identical
// digests across the shard ladder.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// RunBattery executes the battery and returns its report. It only returns
// a non-nil error for harness problems (unbuildable city, unwritable
// reproducer dir); invariant violations are data, not errors.
func RunBattery(cfg BatteryConfig) (*Report, error) {
	if cfg.N <= 0 {
		cfg.N = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 4}
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	city, err := synth.Build(synth.MicroConfig(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("invariant: build city: %w", err)
	}
	// Start near the forced-charge threshold so every composition
	// exercises the charging pipeline — the richest invariant surface.
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.3
	}
	gen := scenario.GenConfig{
		Stations:   city.Stations.Len(),
		Regions:    city.Partition.Len(),
		HorizonMin: cfg.Days * 24 * 60,
	}
	opts := sim.DefaultOptions(cfg.Days)

	rep := &Report{Compositions: cfg.N}
	for i := 0; i < cfg.N; i++ {
		name := fmt.Sprintf("battery-%04d", i)
		spec, err := scenario.Generate(rng.SplitStable(cfg.Seed, fmt.Sprintf("battery/%d", i)), name, gen)
		if err != nil {
			return nil, fmt.Errorf("invariant: generate %s: %w", name, err)
		}
		specJSON, err := scenario.Encode(spec)
		if err != nil {
			return nil, fmt.Errorf("invariant: encode %s: %w", name, err)
		}
		fail := func(mode, detail string, vs []Violation) error {
			f := Failure{Scenario: name, Mode: mode, Detail: detail, Violations: vs, SpecJSON: specJSON}
			if cfg.ReproDir != "" {
				if err := os.MkdirAll(cfg.ReproDir, 0o755); err != nil {
					return fmt.Errorf("invariant: reproducer dir: %w", err)
				}
				f.ReproPath = filepath.Join(cfg.ReproDir, name+".json")
				if err := os.WriteFile(f.ReproPath, specJSON, 0o644); err != nil {
					return fmt.Errorf("invariant: write reproducer: %w", err)
				}
			}
			rep.Failures = append(rep.Failures, f)
			return nil
		}

		envDigest, vs, err := CheckedRun(sim.New(city, opts, cfg.Seed), spec, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rep.Runs++
		if len(vs) > 0 {
			if err := fail("env", vs[0].String(), vs); err != nil {
				return nil, err
			}
		}
		ladder := make([]string, len(cfg.Shards))
		for j, k := range cfg.Shards {
			d, vs, err := CheckedRun(shard.New(city, opts, k, cfg.Seed), spec, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rep.Runs++
			ladder[j] = d
			if len(vs) > 0 {
				if err := fail(fmt.Sprintf("shards=%d", k), vs[0].String(), vs); err != nil {
					return nil, err
				}
			}
		}
		for j := 1; j < len(ladder); j++ {
			if ladder[j] != ladder[0] {
				detail := fmt.Sprintf("shards=%d digest %s != shards=%d digest %s",
					cfg.Shards[j], ladder[j], cfg.Shards[0], ladder[0])
				if err := fail("digest", detail, nil); err != nil {
					return nil, err
				}
			}
		}
		_ = envDigest // the sequential digest is checked only for invariants; see doc above
	}
	return rep, nil
}

// CheckedRun replays one spec on one freshly built environment with the
// invariant checker attached and returns the trace digest plus every
// violation. It is the single-run building block of the battery, exported
// so reproducer specs can be replayed in isolation.
func CheckedRun(env sim.Environment, spec *scenario.Spec, seed int64) (string, []Violation, error) {
	if spec != nil {
		if _, err := scenario.Attach(env, spec); err != nil {
			return "", nil, fmt.Errorf("invariant: attach %s: %w", spec.Name, err)
		}
	}
	ck := New(env, Options{Energy: true, Requests: true, Stranding: true})
	var events []trace.Event
	env.SetRecorder(ck.Recorder(func(ev trace.Event) { events = append(events, ev) }))
	env.Reset(seed)
	ck.Begin()
	for !env.Done() {
		env.Step(nil)
		ck.AfterStep()
	}
	return trace.DigestEvents(events), ck.Finish(), nil
}
