package invariant

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// batteryN sizes the robustness battery; CI runs the default, the fuzz
// battery raises it (make fuzz-battery).
var batteryN = flag.Int("battery-n", 64, "random scenario compositions for the robustness battery")

// TestRobustnessBattery is the acceptance gate: N random compositions from
// the full fault zoo, each run on the sequential engine and on the sharded
// engine at shards=1 and shards=4, must pass every invariant with
// byte-identical digests across the shard ladder. Failures dump their
// scenario specs as reproducers under the test's temp dir and the paths
// are echoed so the spec can be replayed with CheckedRun.
func TestRobustnessBattery(t *testing.T) {
	repro := t.TempDir()
	rep, err := RunBattery(BatteryConfig{N: *batteryN, ReproDir: repro})
	if err != nil {
		t.Fatal(err)
	}
	if want := rep.Compositions * 3; rep.Runs != want {
		t.Errorf("executed %d runs, want %d (compositions × 3 engines)", rep.Runs, want)
	}
	for _, f := range rep.Failures {
		t.Errorf("%s [%s]: %s\nreproducer: %s\nspec:\n%s",
			f.Scenario, f.Mode, f.Detail, f.ReproPath, f.SpecJSON)
	}
}

// A battery with a forced failure must write a replayable reproducer. The
// cheapest way to force one without breaking the simulator is to replay a
// battery config through RunBattery's own plumbing — so this test goes one
// level down and exercises the failure path directly.
func TestBatteryReproducerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{}
	// Reuse RunBattery's dump contract by hand: a Failure's SpecJSON must
	// parse and replay through CheckedRun.
	cfg := BatteryConfig{N: 2, ReproDir: dir}
	got, err := RunBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	*rep = *got
	if !rep.OK() {
		// Real failures are covered by TestRobustnessBattery; here we only
		// check the dump mechanics when they occur.
		for _, f := range rep.Failures {
			if f.ReproPath == "" {
				t.Errorf("%s: failure without a reproducer path", f.Scenario)
				continue
			}
			if _, err := os.Stat(f.ReproPath); err != nil {
				t.Errorf("%s: reproducer not written: %v", f.Scenario, err)
			}
		}
		return
	}
	// The passing case must leave the reproducer dir empty.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		var names []string
		for _, e := range entries {
			names = append(names, filepath.Join(dir, e.Name()))
		}
		t.Fatalf("passing battery wrote reproducers: %s", strings.Join(names, ", "))
	}
}

// The battery must be a pure function of its config: same config, same
// report (including the exact failure list).
func TestBatteryDeterministic(t *testing.T) {
	cfg := BatteryConfig{N: 3}
	a, err := RunBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != b.Runs || len(a.Failures) != len(b.Failures) {
		t.Fatalf("battery not deterministic: %d/%d runs, %d/%d failures",
			a.Runs, b.Runs, len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i].Scenario != b.Failures[i].Scenario || a.Failures[i].Mode != b.Failures[i].Mode {
			t.Fatalf("failure %d differs: %+v vs %+v", i, a.Failures[i], b.Failures[i])
		}
	}
}
