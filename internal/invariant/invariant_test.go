package invariant

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// testEnv builds the micro world the checker tests run against.
func testEnv(t *testing.T) sim.Environment {
	t.Helper()
	city, err := synth.Build(synth.MicroConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.3
	}
	return sim.New(city, sim.DefaultOptions(1), 42)
}

// forged runs a hand-written event stream through a fresh checker's shadow
// replay (no sim steps, so only the station invariants can fire) and
// returns the violation names.
func forged(t *testing.T, evs []trace.Event) []string {
	t.Helper()
	env := testEnv(t)
	env.Reset(42)
	ck := New(env, Options{})
	for _, ev := range evs {
		ck.Observe(ev)
	}
	var names []string
	for _, v := range ck.Finish() {
		names = append(names, v.Name)
	}
	return names
}

func wantViolation(t *testing.T, got []string, want string) {
	t.Helper()
	for _, n := range got {
		if n == want {
			return
		}
	}
	t.Fatalf("violations %v do not include %q", got, want)
}

// ev is shorthand for a station-scoped event.
func ev(kind trace.EventKind, min, taxi, station int) trace.Event {
	return trace.Event{TimeMin: min, Taxi: taxi, Region: -1, Kind: kind, A: station, B: -1}
}

func TestShadowDetectsUnplugWithoutPlug(t *testing.T) {
	wantViolation(t, forged(t, []trace.Event{ev(trace.EvUnplug, 10, 3, 0)}), "unplug-not-plugged")
}

func TestShadowDetectsFIFOViolation(t *testing.T) {
	wantViolation(t, forged(t, []trace.Event{
		ev(trace.EvQueue, 5, 1, 0),
		ev(trace.EvQueue, 6, 2, 0),
		ev(trace.EvPlug, 10, 2, 0), // taxi 1 joined earlier and still waits
	}), "queue-fifo")
}

func TestShadowDetectsQueueJump(t *testing.T) {
	wantViolation(t, forged(t, []trace.Event{
		ev(trace.EvQueue, 5, 1, 0),
		ev(trace.EvPlug, 10, 2, 0), // walk-up past a waiting taxi
	}), "queue-jump")
}

func TestShadowDetectsPlugAtClosedStation(t *testing.T) {
	closed := ev(trace.EvOutage, 5, -1, 0)
	closed.B = 1
	wantViolation(t, forged(t, []trace.Event{
		closed,
		ev(trace.EvPlug, 6, 1, 0),
	}), "plug-closed")
}

func TestShadowDetectsDoublePlug(t *testing.T) {
	wantViolation(t, forged(t, []trace.Event{
		ev(trace.EvPlug, 5, 1, 0),
		ev(trace.EvPlug, 6, 1, 1),
	}), "double-plug")
}

func TestShadowDetectsOverCapacity(t *testing.T) {
	env := testEnv(t)
	points := env.City().Stations.Station(0).Points
	var evs []trace.Event
	for i := 0; i <= points; i++ {
		evs = append(evs, ev(trace.EvPlug, 5+i, 100+i, 0))
	}
	wantViolation(t, forged(t, evs), "over-capacity")
}

func TestShadowAcceptsLegalSequence(t *testing.T) {
	unplug := ev(trace.EvUnplug, 9, 1, 0)
	unplug.V = 12.5
	got := forged(t, []trace.Event{
		ev(trace.EvPlug, 5, 1, 0),  // walk-up into free capacity
		ev(trace.EvQueue, 6, 2, 0), // second taxi waits
		unplug,                     // session ends
		ev(trace.EvPlug, 9, 2, 0),  // FIFO promotion, same minute as unplug
	})
	if len(got) != 0 {
		t.Fatalf("legal sequence flagged: %v", got)
	}
}

// A clean full run on the reference engine must pass every invariant, and
// attaching the checker must not perturb the trace: the checked digest
// equals an unchecked run's digest byte for byte.
func TestCheckerIsTransparentOnCleanRun(t *testing.T) {
	digest, vs, err := CheckedRun(testEnv(t), nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean run violated invariants: %v", vs)
	}
	env := testEnv(t)
	var events []trace.Event
	env.SetRecorder(func(e trace.Event) { events = append(events, e) })
	env.Reset(42)
	for !env.Done() {
		env.Step(nil)
	}
	if plain := trace.DigestEvents(events); plain != digest {
		t.Fatalf("checker perturbed the run: checked %s, plain %s", digest, plain)
	}
}

// The per-step surface must catch a corrupted ledger: poison the initial
// energy snapshot and the conservation check has to fire.
func TestEnergyCheckDetectsCorruptLedger(t *testing.T) {
	env := testEnv(t)
	env.Reset(42)
	ck := New(env, Options{Energy: true})
	ck.Begin()
	ck.initialKWh[0] += 5 // 5 kWh appears from nowhere
	env.Step(nil)
	ck.AfterStep()
	var names []string
	for _, v := range ck.Violations() {
		names = append(names, v.Name)
	}
	wantViolation(t, names, "energy-conservation")
}

func TestViolationString(t *testing.T) {
	v := Violation{Name: "soc-range", Minute: 120, Detail: "taxi 3 SoC 1.5"}
	if s := v.String(); !strings.Contains(s, "soc-range") || !strings.Contains(s, "@120") {
		t.Fatalf("unexpected String: %q", s)
	}
	v.Minute = -1
	if s := v.String(); strings.Contains(s, "@") {
		t.Fatalf("minute-less violation mentions a minute: %q", s)
	}
}

// The violation cap must hold even for a pathological stream.
func TestViolationCap(t *testing.T) {
	env := testEnv(t)
	env.Reset(42)
	ck := New(env, Options{MaxViolations: 5})
	for i := 0; i < 100; i++ {
		ck.Observe(ev(trace.EvUnplug, 10+i, i, 0))
	}
	if got := len(ck.Finish()); got != 5 {
		t.Fatalf("collected %d violations, want the cap of 5", got)
	}
}
