// Package invariant is a reusable invariant-checking engine for simulator
// runs. A Checker wraps any sim.Environment — the sequential reference
// engine and the sharded engine alike — and verifies, during and after a
// run, the physical laws the simulator must never break no matter which
// scenario is attached:
//
//   - no taxi's state of charge leaves [0, 1], and no taxi strands
//   - every taxi is always inside the region partition
//   - energy is conserved per taxi: SoC = initial + charged − consumed
//   - requests are conserved: generated = served + expired + pending
//   - station queues are FIFO, never over capacity, and never accept a
//     plug or a join while the station is closed
//   - the engine's own structural invariants (ownership partition,
//     occupancy state) hold after every step
//
// The station checks replay the structured event log through a shadow
// model, so they work identically on the causally-ordered stream of the
// sequential engine and the canonically-sorted stream of the sharded one.
// The checker is read-only: attaching it never perturbs a run, so a
// checked run digests byte-identically to an unchecked one.
package invariant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Options selects which invariant families a Checker enforces. The zero
// value enables everything that is valid on an arbitrary run; the ledger
// checks (energy, requests) additionally require Options.WarmupDays == 0
// on the environment, because warmup resets the accounting mid-run.
type Options struct {
	// Energy enables the per-step energy-conservation check. Requires an
	// environment with a TaxiEnergyLedger surface and WarmupDays == 0.
	Energy bool
	// Requests enables the request-conservation check. Requires an
	// environment with a GeneratedRequests surface and WarmupDays == 0.
	Requests bool
	// Stranding treats any stranded minute as a violation. Leave false for
	// scenarios severe enough that stranding is the expected outcome.
	Stranding bool
	// SoCEps is the tolerance on the [0, 1] SoC bounds (default 1e-9).
	SoCEps float64
	// MaxViolations caps how many violations are collected before the
	// checker stops recording new ones (default 64). The cap keeps a
	// fundamentally broken run from allocating without bound.
	MaxViolations int
}

// Violation is one detected invariant breach.
type Violation struct {
	// Name is the stable identifier of the broken invariant, e.g.
	// "soc-range" or "queue-fifo".
	Name string
	// Minute is the simulation minute of the breach, -1 when not tied to
	// a specific minute.
	Minute int
	// Detail is a human-readable description with the offending values.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Minute < 0 {
		return fmt.Sprintf("%s: %s", v.Name, v.Detail)
	}
	return fmt.Sprintf("%s @%d: %s", v.Name, v.Minute, v.Detail)
}

// The optional verification surfaces both engines expose (env_debug.go,
// kernel_debug.go). The checker probes for them with type assertions so it
// can still wrap a minimal Environment, silently skipping what is absent.
type structuralChecker interface{ CheckInvariants() error }

type requestLedger interface {
	GeneratedRequests() int
	PendingRequests() int
}

type energyLedger interface{ TaxiEnergyLedger(id int) sim.EnergyLedger }

// Checker verifies one run of one environment. Use it once: New, Begin
// after Reset, Observe every trace event, AfterStep after every Step, and
// Finish at the horizon.
type Checker struct {
	env  sim.Environment
	opts Options

	fleet   int
	regions int

	initialKWh []float64 // per-taxi SoC in kWh, captured at Begin

	events []trace.Event
	vs     []Violation
}

// New wraps env in a fresh checker. Call Begin after env.Reset and before
// the first Step.
func New(env sim.Environment, opts Options) *Checker {
	if opts.SoCEps <= 0 {
		opts.SoCEps = 1e-9
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 64
	}
	city := env.City()
	return &Checker{
		env:     env,
		opts:    opts,
		fleet:   len(city.Fleet),
		regions: city.Partition.Len(),
	}
}

// Recorder chains the checker into an event-recorder pipeline: the
// returned recorder feeds every event to the checker and then to next
// (which may be nil). Install it with env.SetRecorder.
func (c *Checker) Recorder(next sim.Recorder) sim.Recorder {
	return func(ev trace.Event) {
		c.Observe(ev)
		if next != nil {
			next(ev)
		}
	}
}

// Observe buffers one trace event for the Finish-time shadow replay.
func (c *Checker) Observe(ev trace.Event) {
	c.events = append(c.events, ev)
}

// Begin captures the initial energy state. Call it after env.Reset(seed)
// — the initial ledger is meaningless before the fleet is materialized.
func (c *Checker) Begin() {
	c.initialKWh = nil
	if el, ok := c.env.(energyLedger); ok {
		c.initialKWh = make([]float64, c.fleet)
		for i := 0; i < c.fleet; i++ {
			c.initialKWh[i] = el.TaxiEnergyLedger(i).SoCKWh
		}
	}
}

// violate records a violation unless the cap is reached.
func (c *Checker) violate(name string, minute int, format string, args ...any) {
	if len(c.vs) >= c.opts.MaxViolations {
		return
	}
	c.vs = append(c.vs, Violation{Name: name, Minute: minute, Detail: fmt.Sprintf(format, args...)})
}

// AfterStep runs the per-step checks: SoC and region bounds for every
// taxi, the engine's structural self-check, and (when enabled) the energy
// and request ledgers. Call it after every env.Step.
func (c *Checker) AfterStep() {
	minute := c.env.Now()
	for i := 0; i < c.fleet; i++ {
		if soc := c.env.TaxiSoC(i); soc < -c.opts.SoCEps || soc > 1+c.opts.SoCEps {
			c.violate("soc-range", minute, "taxi %d SoC %.12f outside [0, 1]", i, soc)
		}
		if r := c.env.TaxiRegion(i); r < 0 || r >= c.regions {
			c.violate("region-range", minute, "taxi %d in region %d, partition has %d", i, r, c.regions)
		}
	}
	if sc, ok := c.env.(structuralChecker); ok {
		if err := sc.CheckInvariants(); err != nil {
			c.violate("structural", minute, "%v", err)
		}
	}
	if c.opts.Energy {
		c.checkEnergy(minute)
	}
	if c.opts.Requests {
		c.checkRequests(minute)
	}
}

// checkEnergy verifies per-taxi conservation: current SoC must equal the
// initial charge plus everything charged minus everything consumed, where
// the deficit credits energy an empty pack could not actually spend.
func (c *Checker) checkEnergy(minute int) {
	el, ok := c.env.(energyLedger)
	if !ok || c.initialKWh == nil {
		return
	}
	for i := 0; i < c.fleet; i++ {
		l := el.TaxiEnergyLedger(i)
		want := c.initialKWh[i] + l.ChargedKWh - (l.DrivenKm*l.ConsumptionPerKm - l.DeficitKWh)
		if diff := math.Abs(l.SoCKWh - want); diff > 1e-6*math.Max(1, l.CapacityKWh) {
			c.violate("energy-conservation", minute,
				"taxi %d holds %.9f kWh, ledger says %.9f (drift %.3g)", i, l.SoCKWh, want, diff)
		}
	}
}

// checkRequests verifies request conservation: every sampled request is
// served, expired, or still pending — never duplicated, never dropped.
func (c *Checker) checkRequests(minute int) {
	rl, ok := c.env.(requestLedger)
	if !ok {
		return
	}
	res := c.env.Results()
	if got := res.ServedRequests + res.UnservedRequests + rl.PendingRequests(); got != rl.GeneratedRequests() {
		c.violate("request-conservation", minute,
			"served %d + unserved %d + pending %d = %d, want %d generated",
			res.ServedRequests, res.UnservedRequests, rl.PendingRequests(), got, rl.GeneratedRequests())
	}
}

// Finish runs the end-of-horizon checks — stranding, the per-region
// demand tallies, and the full station shadow replay — and returns every
// violation collected over the run.
func (c *Checker) Finish() []Violation {
	res := c.env.Results()
	if c.opts.Stranding {
		for i := range res.Accounts {
			if sm := res.Accounts[i].StrandedMin; sm > 0 {
				c.violate("stranding", -1, "taxi %d stranded for %g minutes", i, sm)
			}
		}
	}
	c.checkRegionTallies(res)
	c.replayStations()
	return c.vs
}

// Violations returns everything collected so far without ending the run.
func (c *Checker) Violations() []Violation { return c.vs }

// Err returns nil when no violation was recorded, else an error
// summarizing the first one.
func (c *Checker) Err() error {
	if len(c.vs) == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s), first: %s", len(c.vs), c.vs[0])
}

// checkRegionTallies cross-checks the spatial-fairness accounting against
// the headline counters: the per-region demand/served tallies must sum to
// the citywide totals, and no region serves more than it demanded.
func (c *Checker) checkRegionTallies(res *sim.Results) {
	if res.RegionDemand == nil || res.RegionServed == nil {
		return
	}
	sumD, sumS := 0, 0
	for r := range res.RegionDemand {
		sumD += res.RegionDemand[r]
		sumS += res.RegionServed[r]
		if res.RegionServed[r] > res.RegionDemand[r] {
			c.violate("region-tally", -1, "region %d served %d > demanded %d",
				r, res.RegionServed[r], res.RegionDemand[r])
		}
	}
	if sumS != res.ServedRequests {
		c.violate("region-tally", -1, "region served sum %d != %d served", sumS, res.ServedRequests)
	}
	if rl, ok := c.env.(requestLedger); ok && sumD != rl.GeneratedRequests() {
		c.violate("region-tally", -1, "region demand sum %d != %d generated", sumD, rl.GeneratedRequests())
	}
}

// stationShadow is the replay model of one station: who is plugged, who is
// waiting (and since when), and whether the station is closed.
type stationShadow struct {
	capacity int
	closed   bool
	plugged  map[int]bool
	queue    map[int]int // taxi -> join minute
}

// queueCandidate is a deferred queue-discipline finding. Event stamps have
// minute resolution and the engines stamp an unplug one minute after the
// causal freeing (a session charges through minute m and departs at m+1),
// so a promotion decided at minute m may be stamped m+1 while the taxi it
// overtook plugs at m+2's group. A candidate only becomes a violation if
// none of the seemingly-overtaken taxis left the queue (promotion or
// eviction) by minute+1.
type queueCandidate struct {
	name     string // "queue-fifo" or "queue-jump"
	minute   int
	station  int
	plugTaxi int
	blockers []blocked
}

type blocked struct{ taxi, joined int }

// replayStations replays the buffered event log through per-station shadow
// models. Events are grouped by causal minute — an unplug stamped m freed
// its point during minute m−1 — and processed in phases, state changes and
// removals before additions, so the replay accepts both the sequential
// engine's causal order and the sharded engine's canonical (minute, taxi,
// kind) order, which interleave a minute's events differently without
// changing its net semantics.
func (c *Checker) replayStations() {
	if len(c.events) == 0 {
		return
	}
	stations := c.env.City().Stations
	shadows := make([]*stationShadow, stations.Len())
	shadow := func(id, minute int) *stationShadow {
		if id < 0 || id >= len(shadows) {
			c.violate("station-range", minute, "event references station %d, city has %d", id, len(shadows))
			return nil
		}
		if shadows[id] == nil {
			shadows[id] = &stationShadow{
				capacity: stations.Station(id).Points,
				plugged:  make(map[int]bool),
				queue:    make(map[int]int),
			}
		}
		return shadows[id]
	}
	st := &replayState{
		shadow:    shadow,
		pluggedAt: make(map[int]int),
		queuedAt:  make(map[int]int),
		unqueued:  make(map[[2]int][]int),
	}

	// Sort by causal minute, stably: within a minute the two engines order
	// events differently (causal vs canonical), and the phase replay is
	// what makes that difference immaterial.
	evs := make([]trace.Event, len(c.events))
	copy(evs, c.events)
	causal := func(ev trace.Event) int {
		if ev.Kind == trace.EvUnplug {
			return ev.TimeMin - 1
		}
		return ev.TimeMin
	}
	sort.SliceStable(evs, func(i, j int) bool { return causal(evs[i]) < causal(evs[j]) })

	for lo := 0; lo < len(evs); {
		hi := lo
		minute := causal(evs[lo])
		for hi < len(evs) && causal(evs[hi]) == minute {
			hi++
		}
		c.replayMinute(evs[lo:hi], minute, st)
		lo = hi
	}
	c.resolveCandidates(st)
}

// replayState is the cross-minute state of one shadow replay.
type replayState struct {
	shadow func(id, minute int) *stationShadow
	// Where each taxi currently is, to catch cross-station double states.
	pluggedAt map[int]int
	queuedAt  map[int]int
	// unqueued records every queue departure (promotion or eviction) as
	// (station, taxi) -> minutes, for candidate resolution.
	unqueued map[[2]int][]int
	// candidates are the deferred queue-discipline findings.
	candidates []queueCandidate
}

// unqueue removes a taxi from a station's queue and logs the departure.
func (st *replayState) unqueue(s *stationShadow, station, taxi, minute int) {
	delete(s.queue, taxi)
	delete(st.queuedAt, taxi)
	st.unqueued[[2]int{station, taxi}] = append(st.unqueued[[2]int{station, taxi}], minute)
}

// replayMinute applies one causal minute of events in semantic phases.
func (c *Checker) replayMinute(evs []trace.Event, minute int, st *replayState) {
	// closedAtStart snapshots closure state before this minute's edges:
	// a promotion stamped at the closure-edge minute was decided during
	// the previous minute's charging sweep and is legal; any plug at a
	// station that was already closed entering the minute is not.
	closedAtStart := make(map[int]bool)
	snap := func(id int) {
		if s := st.shadow(id, minute); s != nil {
			if _, ok := closedAtStart[id]; !ok {
				closedAtStart[id] = s.closed
			}
		}
	}
	for _, ev := range evs {
		switch ev.Kind {
		case trace.EvOutage, trace.EvPlug, trace.EvQueue:
			snap(ev.A)
		}
	}

	// Phase 1: closure edges. A closure drains the queue (the evictions
	// arrive as replan events in phase 2); a reopening changes nothing.
	for _, ev := range evs {
		if ev.Kind != trace.EvOutage {
			continue
		}
		if s := st.shadow(ev.A, minute); s != nil {
			s.closed = ev.B == 1
		}
	}

	// Phase 2: removals — unplugs and queue evictions free capacity that
	// this same minute's plugs may consume.
	for _, ev := range evs {
		switch ev.Kind {
		case trace.EvUnplug:
			s := st.shadow(ev.A, minute)
			if s == nil {
				continue
			}
			if !s.plugged[ev.Taxi] {
				c.violate("unplug-not-plugged", minute, "taxi %d unplugged from station %d it never occupied", ev.Taxi, ev.A)
				continue
			}
			if ev.V < 0 {
				c.violate("negative-energy", minute, "taxi %d unplugged %.6f kWh at station %d", ev.Taxi, ev.V, ev.A)
			}
			delete(s.plugged, ev.Taxi)
			delete(st.pluggedAt, ev.Taxi)
		case trace.EvReplan:
			s := st.shadow(ev.A, minute)
			if s == nil {
				continue
			}
			if at, ok := st.queuedAt[ev.Taxi]; !ok || at != ev.A {
				c.violate("replan-not-queued", minute, "taxi %d evicted from station %d it was not queued at", ev.Taxi, ev.A)
				continue
			}
			st.unqueue(s, ev.A, ev.Taxi, minute)
		}
	}

	// Phase 3: balks. A balking taxi is en route, never an occupant.
	for _, ev := range evs {
		if ev.Kind != trace.EvBalk {
			continue
		}
		if at, ok := st.pluggedAt[ev.Taxi]; ok {
			c.violate("balk-while-plugged", minute, "taxi %d balked at station %d while plugged at %d", ev.Taxi, ev.A, at)
		}
	}

	// Phase 4a: apply every plug — promotions leave the queue, walk-ups
	// just occupy — collecting the minute's promotions and walk-ups per
	// station for the set-wise discipline checks in 4b.
	type plugged struct {
		taxi   int
		joined int // join minute for promotions, -1 for walk-ups
	}
	proms := make(map[int][]plugged)
	walks := make(map[int][]int)
	for _, ev := range evs {
		if ev.Kind != trace.EvPlug {
			continue
		}
		s := st.shadow(ev.A, minute)
		if s == nil {
			continue
		}
		if at, ok := st.pluggedAt[ev.Taxi]; ok {
			c.violate("double-plug", minute, "taxi %d plugged at station %d while still plugged at %d", ev.Taxi, ev.A, at)
			continue
		}
		if at, queued := st.queuedAt[ev.Taxi]; queued && at != ev.A {
			c.violate("plug-while-queued", minute, "taxi %d plugged at station %d while queued at %d", ev.Taxi, ev.A, at)
			if other := st.shadow(at, minute); other != nil {
				st.unqueue(other, at, ev.Taxi, minute)
			}
		} else if queued {
			if closedAtStart[ev.A] && s.closed {
				c.violate("plug-closed", minute, "taxi %d promoted at station %d closed since an earlier minute", ev.Taxi, ev.A)
			}
			proms[ev.A] = append(proms[ev.A], plugged{ev.Taxi, s.queue[ev.Taxi]})
			st.unqueue(s, ev.A, ev.Taxi, minute)
		} else {
			// A walk-up at a closed station is illegal even at the closure
			// edge: arrivals run after the perturbation sweep and must balk.
			if s.closed {
				c.violate("plug-closed", minute, "taxi %d plugged at closed station %d", ev.Taxi, ev.A)
			}
			walks[ev.A] = append(walks[ev.A], ev.Taxi)
		}
		s.plugged[ev.Taxi] = true
		st.pluggedAt[ev.Taxi] = ev.A
	}

	// Phase 4b: queue discipline, set-wise against the queue that remains
	// after all of the minute's departures. FIFO: no promoted taxi joined
	// strictly later than a taxi still waiting. Walk-up: nobody from an
	// earlier minute may still be waiting (same-minute joins are processed
	// in phase 5 — causally they happen after the plug). Findings are
	// deferred: the overtaken taxi's own promotion may be stamped one
	// minute later (see queueCandidate).
	for stID, ps := range proms {
		s := st.shadow(stID, minute)
		for _, p := range ps {
			var bs []blocked
			for other, om := range s.queue {
				if om < p.joined {
					bs = append(bs, blocked{other, om})
				}
			}
			if len(bs) > 0 {
				st.candidates = append(st.candidates, queueCandidate{"queue-fifo", minute, stID, p.taxi, bs})
			}
		}
	}
	for stID, ws := range walks {
		s := st.shadow(stID, minute)
		for _, w := range ws {
			var bs []blocked
			for other, om := range s.queue {
				if om < minute {
					bs = append(bs, blocked{other, om})
				}
			}
			if len(bs) > 0 {
				st.candidates = append(st.candidates, queueCandidate{"queue-jump", minute, stID, w, bs})
			}
		}
	}

	// Phase 5: queue joins.
	for _, ev := range evs {
		if ev.Kind != trace.EvQueue {
			continue
		}
		s := st.shadow(ev.A, minute)
		if s == nil {
			continue
		}
		if s.closed {
			c.violate("queue-closed", minute, "taxi %d queued at closed station %d", ev.Taxi, ev.A)
		}
		if at, ok := st.pluggedAt[ev.Taxi]; ok {
			c.violate("queue-while-plugged", minute, "taxi %d queued at station %d while plugged at %d", ev.Taxi, ev.A, at)
			continue
		}
		if at, ok := st.queuedAt[ev.Taxi]; ok {
			c.violate("double-queue", minute, "taxi %d queued at station %d while already queued at %d", ev.Taxi, ev.A, at)
			continue
		}
		s.queue[ev.Taxi] = minute
		st.queuedAt[ev.Taxi] = ev.A
	}

	// End of minute: occupancy never exceeds the physical inventory.
	// (EffectivePoints can transiently be below occupancy when a derate
	// lands mid-session — sessions are never interrupted — so the hard
	// bound is the point count, matching station.CheckInvariants.)
	for _, ev := range evs {
		switch ev.Kind {
		case trace.EvPlug, trace.EvUnplug:
			if s := st.shadow(ev.A, minute); s != nil && len(s.plugged) > s.capacity {
				c.violate("over-capacity", minute, "station %d holds %d taxis on %d points", ev.A, len(s.plugged), s.capacity)
			}
		}
	}
}

// resolveCandidates turns deferred queue-discipline findings into
// violations unless every seemingly-overtaken taxi in fact left the queue
// by the candidate minute plus the one-minute stamping slack.
func (c *Checker) resolveCandidates(st *replayState) {
	for _, cand := range st.candidates {
		for _, b := range cand.blockers {
			cleared := false
			for _, m := range st.unqueued[[2]int{cand.station, b.taxi}] {
				if m >= cand.minute && m <= cand.minute+1 {
					cleared = true
					break
				}
			}
			if !cleared {
				c.violate(cand.name, cand.minute,
					"taxi %d plugged at station %d ahead of taxi %d queued since @%d",
					cand.plugTaxi, cand.station, b.taxi, b.joined)
				break
			}
		}
	}
}
