package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4 (population)", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestMeanVarianceEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestVarianceSingleElement(t *testing.T) {
	// Population variance of a single observation is exactly 0: the one
	// element coincides with the mean, so Eq. 3 sums zero deviations.
	if v := Variance([]float64{42.5}); v != 0 {
		t.Fatalf("Variance(n=1) = %v, want 0", v)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceConstantIsZero(t *testing.T) {
	xs := []float64{3, 3, 3, 3}
	if v := Variance(xs); v != 0 {
		t.Fatalf("variance of constant = %v", v)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		got, ok := Percentile(xs, c.p)
		if !ok || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v,%v, want %v,true", c.p, got, ok, c.want)
		}
	}
	// Interpolation between order statistics.
	if got, _ := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	// Fault scenarios (total outage, demand drought) legitimately produce
	// empty distributions; the API must report "no data", not panic.
	if v, ok := Percentile(nil, 50); ok || v != 0 {
		t.Fatalf("Percentile(nil) = %v,%v, want 0,false", v, ok)
	}
	if v, ok := Median(nil); ok || v != 0 {
		t.Fatalf("Median(nil) = %v,%v, want 0,false", v, ok)
	}
}

func TestMedian(t *testing.T) {
	m, ok := Median([]float64{5, 1, 9})
	if !ok || m != 5 {
		t.Fatalf("Median = %v,%v", m, ok)
	}
}

func TestGini(t *testing.T) {
	// Perfect equality.
	if g := Gini([]float64{5, 5, 5, 5}); !almostEq(g, 0, 1e-12) {
		t.Errorf("Gini equal = %v, want 0", g)
	}
	// Perfect inequality approaches (n-1)/n.
	g := Gini([]float64{0, 0, 0, 100})
	if !almostEq(g, 0.75, 1e-12) {
		t.Errorf("Gini extreme = %v, want 0.75", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
	// Negative values clamped, not crashing.
	if g := Gini([]float64{-1, 1}); g < 0 || g > 1 {
		t.Errorf("Gini with negatives = %v", g)
	}
}

func TestGiniBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			if math.Abs(x) > 1e50 {
				xs[i] = math.Mod(x, 1e6)
			}
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatal("Len wrong")
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEq(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if q, ok := c.Quantile(0.5); !ok || !almostEq(q, 2.5, 1e-12) {
		t.Errorf("Quantile(0.5) = %v,%v", q, ok)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 {
		t.Fatal("empty CDF At should be 0")
	}
	if q, ok := c.Quantile(0.5); ok || q != 0 {
		t.Fatalf("Quantile of empty CDF = %v,%v, want 0,false", q, ok)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	c := NewCDF([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.Total() != 100 {
		t.Fatal("Total wrong")
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Fatalf("bin %d count = %d, want 10", i, c)
		}
	}
	if f := h.Fraction(0, 5); f != 0.5 {
		t.Fatalf("Fraction = %v", f)
	}
	if f := h.FractionInRange(0, 50); f != 0.5 {
		t.Fatalf("FractionInRange = %v", f)
	}
}

func TestHistogramOutOfRangeClamped(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("boundary bins = %v", h.Counts)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", c)
	}
	if c := h.BinCenter(4); c != 9 {
		t.Fatalf("BinCenter(4) = %v, want 9", c)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestHourBuckets(t *testing.T) {
	var hb HourBuckets
	hb.Add(3, 10)
	hb.Add(3, 20)
	hb.Add(27, 30) // wraps to 3
	hb.Add(-1, 5)  // wraps to 23
	if m := hb.Mean(3); m != 20 {
		t.Fatalf("Mean(3) = %v, want 20", m)
	}
	if m := hb.Mean(23); m != 5 {
		t.Fatalf("Mean(23) = %v, want 5", m)
	}
	if m := hb.Mean(10); m != 0 {
		t.Fatalf("Mean of empty hour = %v", m)
	}
	means := hb.Means()
	if means[3] != 20 {
		t.Fatal("Means()[3] wrong")
	}
	if hb.Totals()[3] != 3 {
		t.Fatal("Totals wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almostEq(s.Median, 5.5, 1e-12) {
		t.Fatalf("Median = %v", s.Median)
	}
	if !almostEq(s.Mean, 5.5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Fatal("empty Summarize should be zero")
	}
}
