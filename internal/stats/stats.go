// Package stats provides the descriptive statistics used to reproduce the
// paper's figures: empirical CDFs, percentiles, histograms, variance-based
// fairness measures, and hour-of-day bucketing.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for empty input; a
// single element has population variance 0). This matches the paper's
// profit-fairness definition (Eq. 3), which divides by N.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0, 100]) of xs by linear
// interpolation between order statistics. The boolean reports whether xs had
// any data: empty input returns (0, false) instead of panicking, so fault
// scenarios that drain a distribution (a total station outage, a demand
// drought) degrade to "no data" rather than crash the report path.
func Percentile(xs []float64, p float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), true
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile, with the same (value, ok) contract as
// Percentile: (0, false) for empty input.
func Median(xs []float64) (float64, bool) { return Percentile(xs, 50) }

// Gini returns the Gini coefficient of xs, an alternative inequality measure
// reported alongside PF in EXPERIMENTS.md. Values must be non-negative;
// negative values are clamped to zero. Returns 0 for degenerate input.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		sorted[i] = x
	}
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum/(float64(n)*total) - float64(n+1)/float64(n))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF over xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0, 1]); (0, false) for an empty
// CDF, mirroring Percentile's total contract.
func (c *CDF) Quantile(q float64) (float64, bool) {
	if len(c.sorted) == 0 {
		return 0, false
	}
	return percentileSorted(c.sorted, q*100), true
}

// Histogram is a fixed-width bin histogram over [Min, Max). Values outside
// the range are counted in the boundary bins.
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) bins=%d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bin := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bins [lo, hi).
func (h *Histogram) Fraction(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	var c int
	for i := lo; i < hi && i < len(h.Counts); i++ {
		if i >= 0 {
			c += h.Counts[i]
		}
	}
	return float64(c) / float64(h.total)
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// FractionInRange returns the fraction of observations with value in
// [lo, hi), computed from bins whose centers fall in the range.
func (h *Histogram) FractionInRange(lo, hi float64) float64 {
	if h.total == 0 {
		return 0
	}
	var c int
	for i := range h.Counts {
		if center := h.BinCenter(i); center >= lo && center < hi {
			c += h.Counts[i]
		}
	}
	return float64(c) / float64(h.total)
}

// HourBuckets accumulates values into 24 hour-of-day buckets — the x-axis of
// the paper's Figs. 4, 11, and 13.
type HourBuckets struct {
	Sum   [24]float64
	Count [24]int
}

// Add records value v at the given hour (wrapped mod 24).
func (hb *HourBuckets) Add(hour int, v float64) {
	h := ((hour % 24) + 24) % 24
	hb.Sum[h] += v
	hb.Count[h]++
}

// Mean returns the mean of the values recorded at hour (0 if none).
func (hb *HourBuckets) Mean(hour int) float64 {
	h := ((hour % 24) + 24) % 24
	if hb.Count[h] == 0 {
		return 0
	}
	return hb.Sum[h] / float64(hb.Count[h])
}

// Means returns all 24 hourly means.
func (hb *HourBuckets) Means() [24]float64 {
	var out [24]float64
	for h := 0; h < 24; h++ {
		out[h] = hb.Mean(h)
	}
	return out
}

// Totals returns all 24 hourly counts.
func (hb *HourBuckets) Totals() [24]int { return hb.Count }

// Summary bundles the five-number summary used when printing distribution
// rows for figures.
type Summary struct {
	N                       int
	Mean, P25, Median, P75  float64
	P10, P90, Min, Max, Std float64
}

// Summarize computes a Summary of xs. Empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		P10:    percentileSorted(s, 10),
		P25:    percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		P75:    percentileSorted(s, 75),
		P90:    percentileSorted(s, 90),
		Min:    s[0],
		Max:    s[len(s)-1],
		Std:    StdDev(s),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p25=%.2f median=%.2f p75=%.2f p90=%.2f std=%.2f",
		s.N, s.Mean, s.P25, s.Median, s.P75, s.P90, s.Std)
}
