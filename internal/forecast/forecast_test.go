package forecast

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 144); err == nil {
		t.Error("0 regions accepted")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("0 slots accepted")
	}
	p, err := New(10, 144)
	if err != nil {
		t.Fatal(err)
	}
	if p.Regions() != 10 || p.SlotsPerDay() != 144 {
		t.Fatal("shape accessors wrong")
	}
}

func TestColdStartUsesPrior(t *testing.T) {
	p, _ := New(3, 144)
	if got := p.Predict(0, 10); got != 0 {
		t.Fatalf("cold prediction = %v, want prior 0", got)
	}
	p.Prior = 2.5
	if got := p.Predict(1, 10); got != 2.5 {
		t.Fatalf("cold prediction = %v, want prior 2.5", got)
	}
}

func TestLearnsStationaryPattern(t *testing.T) {
	p, _ := New(2, 24)
	// Region 0 sees 5 requests at slot 8 every day, 1 elsewhere.
	for day := 0; day < 20; day++ {
		for s := 0; s < 24; s++ {
			count := 1.0
			if s == 8 {
				count = 5
			}
			p.Observe(0, day*24+s, count)
		}
	}
	peak := p.Predict(0, 20*24+8)
	base := p.Predict(0, 20*24+3)
	if math.Abs(peak-5) > 0.8 {
		t.Errorf("peak prediction %v, want ≈5", peak)
	}
	if math.Abs(base-1) > 0.8 {
		t.Errorf("off-peak prediction %v, want ≈1", base)
	}
}

func TestRealTimeCorrectionTracksSurge(t *testing.T) {
	p, _ := New(1, 24)
	// Learn a flat profile of 2.
	for day := 0; day < 10; day++ {
		for s := 0; s < 24; s++ {
			p.Observe(0, day*24+s, 2)
		}
	}
	flat := p.Predict(0, 10*24)
	// A sudden surge: several consecutive slots at 8.
	for s := 0; s < 4; s++ {
		p.Observe(0, 10*24+s, 8)
	}
	surged := p.Predict(0, 10*24+4)
	if surged <= flat+1 {
		t.Errorf("prediction %v did not lift above flat %v during a surge", surged, flat)
	}
}

func TestPredictionNeverNegative(t *testing.T) {
	p, _ := New(1, 24)
	for day := 0; day < 5; day++ {
		for s := 0; s < 24; s++ {
			p.Observe(0, day*24+s, 3)
		}
	}
	// Crash to zero demand.
	for s := 0; s < 6; s++ {
		p.Observe(0, 5*24+s, 0)
	}
	if got := p.Predict(0, 5*24+6); got < 0 {
		t.Fatalf("negative prediction %v", got)
	}
}

func TestBeatsNaiveOnNoisyDaily(t *testing.T) {
	// On a noisy daily-periodic signal, the learned profile must beat the
	// global-mean predictor on held-out data.
	src := rng.New(9)
	p, _ := New(1, 24)
	shape := func(s int) float64 { return 2 + 3*math.Sin(2*math.Pi*float64(s)/24) + 3 }
	var all []float64
	for day := 0; day < 15; day++ {
		for s := 0; s < 24; s++ {
			v := shape(s) * src.Uniform(0.7, 1.3)
			p.Observe(0, day*24+s, v)
			all = append(all, v)
		}
	}
	var mean float64
	for _, v := range all {
		mean += v
	}
	mean /= float64(len(all))

	var obs []Observation
	var naiveErr float64
	for s := 0; s < 24; s++ {
		actual := shape(s)
		obs = append(obs, Observation{Region: 0, AbsSlot: 15*24 + s, Count: actual})
		naiveErr += math.Abs(mean - actual)
	}
	naiveErr /= 24
	if got := p.MAE(obs); got >= naiveErr {
		t.Fatalf("predictor MAE %v not below naive %v", got, naiveErr)
	}
}

func TestMAEEmpty(t *testing.T) {
	p, _ := New(1, 24)
	if p.MAE(nil) != 0 {
		t.Fatal("empty MAE not 0")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p, _ := New(2, 24)
	for _, f := range []func(){
		func() { p.Predict(5, 0) },
		func() { p.Observe(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on out-of-range region")
				}
			}()
			f()
		}()
	}
}

func TestSlotWrapping(t *testing.T) {
	p, _ := New(1, 24)
	p.Observe(0, 5, 7) // slot-of-day 5
	if got := p.Predict(0, 24+5); got == 0 {
		t.Fatalf("next-day same-slot prediction = %v, want learned value", got)
	}
}
