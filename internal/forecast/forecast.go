// Package forecast predicts per-region passenger demand. The paper's
// global-view state includes "the expected number of passengers in each
// region at the next time slot, which is predicted with historical and
// real-time data" — this package is that predictor: an exponentially
// weighted per-(region, slot-of-day) historical profile blended with a
// short-horizon real-time correction, learned online from the observed
// request stream. The simulator can use it in place of the demand model's
// oracle expectation, so policies see honest predictions.
package forecast

import (
	"fmt"
	"math"
)

// Predictor learns and serves per-region, per-slot demand forecasts.
type Predictor struct {
	regions  int
	slotsDay int

	// hist[r][s] is the EWMA of observed request counts in region r during
	// slot-of-day s across days.
	hist [][]float64
	// seen[r][s] counts observations, used to fall back to priors early.
	seen [][]int
	// recent[r] tracks the last few slots' prediction error per region for
	// the real-time correction.
	recent []float64

	// HistAlpha is the day-over-day EWMA weight (default 0.3).
	HistAlpha float64
	// RecentAlpha is the real-time correction EWMA weight (default 0.5).
	RecentAlpha float64
	// RecentWeight is how strongly the real-time correction shifts the
	// historical profile (default 0.5).
	RecentWeight float64
	// Prior is the prediction before any observation (default 0).
	Prior float64
}

// New creates a predictor for the given city shape.
func New(regions, slotsPerDay int) (*Predictor, error) {
	if regions <= 0 || slotsPerDay <= 0 {
		return nil, fmt.Errorf("forecast: invalid shape %d regions × %d slots", regions, slotsPerDay)
	}
	p := &Predictor{
		regions:      regions,
		slotsDay:     slotsPerDay,
		hist:         make([][]float64, regions),
		seen:         make([][]int, regions),
		recent:       make([]float64, regions),
		HistAlpha:    0.3,
		RecentAlpha:  0.5,
		RecentWeight: 0.5,
	}
	for r := 0; r < regions; r++ {
		p.hist[r] = make([]float64, slotsPerDay)
		p.seen[r] = make([]int, slotsPerDay)
	}
	return p, nil
}

// slotOfDay maps an absolute slot index to a slot-of-day bucket.
func (p *Predictor) slotOfDay(absSlot int) int {
	s := absSlot % p.slotsDay
	if s < 0 {
		s += p.slotsDay
	}
	return s
}

// Observe records the actual request count of region r during absolute slot
// absSlot and updates both the historical profile and the real-time error
// tracker.
func (p *Predictor) Observe(r, absSlot int, count float64) {
	if r < 0 || r >= p.regions {
		panic(fmt.Sprintf("forecast: region %d out of range", r))
	}
	s := p.slotOfDay(absSlot)
	pred := p.Predict(r, absSlot)
	if p.seen[r][s] == 0 {
		p.hist[r][s] = count
	} else {
		p.hist[r][s] = (1-p.HistAlpha)*p.hist[r][s] + p.HistAlpha*count
	}
	p.seen[r][s]++
	// Real-time correction: how much this region is currently running
	// above/below its historical profile.
	err := count - pred
	p.recent[r] = (1-p.RecentAlpha)*p.recent[r] + p.RecentAlpha*err
}

// Predict returns the expected request count for region r in absolute slot
// absSlot: the historical slot-of-day profile shifted by the region's
// recent over/under-performance.
func (p *Predictor) Predict(r, absSlot int) float64 {
	if r < 0 || r >= p.regions {
		panic(fmt.Sprintf("forecast: region %d out of range", r))
	}
	s := p.slotOfDay(absSlot)
	base := p.Prior
	if p.seen[r][s] > 0 {
		base = p.hist[r][s]
	}
	v := base + p.RecentWeight*p.recent[r]
	if v < 0 {
		return 0
	}
	return v
}

// MAE returns the mean absolute error of the predictor against a sequence
// of (region, slot, actual) observations WITHOUT updating state — an
// evaluation helper.
func (p *Predictor) MAE(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range obs {
		sum += math.Abs(p.Predict(o.Region, o.AbsSlot) - o.Count)
	}
	return sum / float64(len(obs))
}

// Observation is one (region, slot, actual count) triple.
type Observation struct {
	Region  int
	AbsSlot int
	Count   float64
}

// Regions returns the number of regions.
func (p *Predictor) Regions() int { return p.regions }

// SlotsPerDay returns the slot-of-day resolution.
func (p *Predictor) SlotsPerDay() int { return p.slotsDay }
