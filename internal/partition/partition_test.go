package partition

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestGenerateShenzhenBasics(t *testing.T) {
	p := GenerateShenzhen(1)
	if p.Len() != 491 {
		t.Fatalf("region count = %d, want 491", p.Len())
	}
	if !p.IsConnected() {
		t.Fatal("partition not connected")
	}
	for _, r := range p.Regions() {
		if len(r.Neighbors) == 0 {
			t.Fatalf("region %d has no neighbors", r.ID)
		}
		if len(r.Neighbors) > 8 {
			t.Fatalf("region %d has %d neighbors", r.ID, len(r.Neighbors))
		}
		if len(r.Polygon.Ring) < 3 {
			t.Fatalf("region %d has degenerate polygon", r.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateShenzhen(7)
	b := GenerateShenzhen(7)
	for i := 0; i < a.Len(); i++ {
		if a.Region(i).Centroid != b.Region(i).Centroid {
			t.Fatalf("same seed produced different centroids at region %d", i)
		}
	}
	c := GenerateShenzhen(8)
	diff := false
	for i := 0; i < a.Len(); i++ {
		if a.Region(i).Centroid != c.Region(i).Centroid {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical partitions")
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	p := GenerateShenzhen(2)
	for _, r := range p.Regions() {
		for _, nb := range r.Neighbors {
			found := false
			for _, back := range p.Region(nb).Neighbors {
				if back == r.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", r.ID, nb)
			}
		}
	}
}

func TestLocateCentroidsSelf(t *testing.T) {
	p := GenerateShenzhen(3)
	misses := 0
	for _, r := range p.Regions() {
		if p.Locate(r.Centroid) != r.ID {
			misses++
		}
	}
	// Centroids of jittered quads are almost always inside their own
	// polygon; allow a tiny number of edge cases.
	if misses > p.Len()/100 {
		t.Fatalf("%d/%d centroids located in wrong region", misses, p.Len())
	}
}

func TestLocateCoversBBox(t *testing.T) {
	p := GenerateShenzhen(4)
	src := rng.New(99)
	b := p.BBox()
	for i := 0; i < 500; i++ {
		pt := geo.Point{
			Lng: src.Uniform(b.MinLng, b.MaxLng),
			Lat: src.Uniform(b.MinLat, b.MaxLat),
		}
		id := p.Locate(pt)
		if id < 0 || id >= p.Len() {
			t.Fatalf("Locate returned invalid region %d", id)
		}
	}
}

func TestShortestPathNextMakesProgress(t *testing.T) {
	p := GenerateShenzhen(5)
	src := rng.New(17)
	for trial := 0; trial < 100; trial++ {
		from := src.Intn(p.Len())
		to := src.Intn(p.Len())
		dists := p.HopDistances(to)
		next := p.ShortestPathNext(from, to)
		if from == to {
			if next != from {
				t.Fatalf("ShortestPathNext(%d,%d) = %d, want stay", from, to, next)
			}
			continue
		}
		if dists[from] < 0 {
			t.Fatalf("region %d unreachable from %d in connected partition", to, from)
		}
		if dists[next] != dists[from]-1 {
			t.Fatalf("ShortestPathNext(%d,%d) = %d does not reduce hop distance (%d -> %d)",
				from, to, next, dists[from], dists[next])
		}
	}
}

func TestShortestPathWalkTerminates(t *testing.T) {
	p := GenerateShenzhen(6)
	from, to := 0, p.Len()-1
	cur := from
	for steps := 0; cur != to; steps++ {
		if steps > p.Len() {
			t.Fatal("path walk did not terminate")
		}
		cur = p.ShortestPathNext(cur, to)
	}
}

func TestHopDistances(t *testing.T) {
	p := GenerateShenzhen(9)
	d := p.HopDistances(0)
	if d[0] != 0 {
		t.Fatal("self distance not 0")
	}
	for _, nb := range p.Region(0).Neighbors {
		if d[nb] != 1 {
			t.Fatalf("neighbor %d has hop distance %d", nb, d[nb])
		}
	}
	for id, dist := range d {
		if dist < 0 {
			t.Fatalf("region %d unreachable", id)
		}
	}
}

func TestDistancePositive(t *testing.T) {
	p := GenerateShenzhen(10)
	if p.Distance(0, 0) != 0 {
		t.Fatal("self distance not 0")
	}
	if d := p.Distance(0, p.Len()-1); d <= 0 {
		t.Fatalf("cross-city distance = %v", d)
	}
}

func TestNewValidation(t *testing.T) {
	mkRegion := func(id int, nbs ...int) Region {
		pg := geo.Polygon{Ring: []geo.Point{
			{Lng: 0, Lat: 0}, {Lng: 1, Lat: 0}, {Lng: 1, Lat: 1}, {Lng: 0, Lat: 1},
		}}
		return Region{ID: id, Polygon: pg, Centroid: pg.Centroid(), Neighbors: nbs}
	}
	if _, err := New(nil); err == nil {
		t.Error("empty partition accepted")
	}
	if _, err := New([]Region{mkRegion(0, 1), mkRegion(1, 0)}); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if _, err := New([]Region{mkRegion(5)}); err == nil {
		t.Error("non-dense IDs accepted")
	}
	if _, err := New([]Region{mkRegion(0, 0)}); err == nil {
		t.Error("self-neighbor accepted")
	}
	if _, err := New([]Region{mkRegion(0, 1), mkRegion(1)}); err == nil {
		t.Error("asymmetric adjacency accepted")
	}
	if _, err := New([]Region{mkRegion(0, 9), mkRegion(1, 0)}); err == nil {
		t.Error("unknown neighbor accepted")
	}
}

func TestGenerateSmall(t *testing.T) {
	for _, n := range []int{4, 10, 25, 100} {
		p, err := Generate(42, n, ShenzhenBBox)
		if err != nil {
			t.Fatalf("Generate(n=%d): %v", n, err)
		}
		if p.Len() != n {
			t.Fatalf("Generate(n=%d) produced %d regions", n, p.Len())
		}
		if !p.IsConnected() {
			t.Fatalf("Generate(n=%d) disconnected", n)
		}
	}
	if _, err := Generate(42, 3, ShenzhenBBox); err == nil {
		t.Error("Generate(n=3) should fail")
	}
}
