// Package partition models the urban partition data of Section II: the city
// is divided into 491 irregular regions, each with a polygon boundary, a
// centroid, and a set of adjacent regions. The paper uses the Shenzhen
// government census partition; since that file is proprietary, this package
// also provides a deterministic generator producing a partition with the
// same interface properties (region count, irregular polygons, adjacency
// graph, full coverage of the urban bounding box).
package partition

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Region is one cell of the urban partition.
type Region struct {
	ID       int
	Polygon  geo.Polygon
	Centroid geo.Point
	// Neighbors lists the IDs of regions sharing a boundary with this one,
	// sorted ascending. The displacement action space of the paper ("move to
	// an adjacent region") is defined over this list.
	Neighbors []int
}

// Partition is a complete urban partition.
type Partition struct {
	regions []Region
	bbox    geo.BBox
	index   *geo.GridIndex // nearest-centroid index for Locate
}

// New builds a Partition from regions, validating IDs and symmetry of the
// adjacency relation.
func New(regions []Region) (*Partition, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("partition: no regions")
	}
	seen := make(map[int]bool, len(regions))
	byID := make(map[int]*Region, len(regions))
	for i := range regions {
		r := &regions[i]
		if r.ID != i {
			return nil, fmt.Errorf("partition: region at index %d has ID %d; IDs must be dense 0..n-1", i, r.ID)
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("partition: duplicate region ID %d", r.ID)
		}
		seen[r.ID] = true
		byID[r.ID] = r
	}
	for i := range regions {
		r := &regions[i]
		for _, nb := range r.Neighbors {
			if nb == r.ID {
				return nil, fmt.Errorf("partition: region %d lists itself as neighbor", r.ID)
			}
			other, ok := byID[nb]
			if !ok {
				return nil, fmt.Errorf("partition: region %d has unknown neighbor %d", r.ID, nb)
			}
			if !containsInt(other.Neighbors, r.ID) {
				return nil, fmt.Errorf("partition: adjacency not symmetric between %d and %d", r.ID, nb)
			}
		}
		sort.Ints(r.Neighbors)
	}
	pts := make([]geo.Point, len(regions))
	var all []geo.Point
	for i, r := range regions {
		pts[i] = r.Centroid
		all = append(all, r.Polygon.Ring...)
	}
	p := &Partition{
		regions: regions,
		bbox:    geo.BBoxOf(all),
		index:   geo.NewGridIndex(pts, nil, gridCellsFor(len(regions))),
	}
	return p, nil
}

func gridCellsFor(n int) int {
	c := 1
	for c*c < n {
		c++
	}
	return c
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Len returns the number of regions.
func (p *Partition) Len() int { return len(p.regions) }

// Region returns the region with the given ID.
func (p *Partition) Region(id int) Region { return p.regions[id] }

// Regions returns all regions. The slice must not be modified.
func (p *Partition) Regions() []Region { return p.regions }

// BBox returns the bounding box of the whole partition.
func (p *Partition) BBox() geo.BBox { return p.bbox }

// Locate returns the ID of the region containing pt. Points that fall
// outside every polygon (e.g. on excluded terrain) are assigned to the
// nearest region by centroid distance, mirroring how trace points are
// snapped to census regions in practice.
func (p *Partition) Locate(pt geo.Point) int {
	id, _ := p.index.Nearest(pt)
	if p.regions[id].Polygon.Contains(pt) {
		return id
	}
	// Check the nearest few centroids' polygons before falling back.
	for _, nb := range p.index.KNearest(pt, 5) {
		if p.regions[nb.Label].Polygon.Contains(pt) {
			return nb.Label
		}
	}
	return id
}

// Distance returns the centroid-to-centroid distance between two regions in
// kilometres.
func (p *Partition) Distance(a, b int) float64 {
	return geo.Distance(p.regions[a].Centroid, p.regions[b].Centroid)
}

// IsConnected reports whether the adjacency graph is a single connected
// component. The generator guarantees this; custom partitions may check it.
func (p *Partition) IsConnected() bool {
	if len(p.regions) == 0 {
		return false
	}
	seen := make([]bool, len(p.regions))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range p.regions[cur].Neighbors {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == len(p.regions)
}

// ShortestPathNext returns the neighbor of from that lies on a shortest hop
// path towards to, or from itself if from == to. Used by policies that move
// taxis one adjacent region per time slot toward a target.
func (p *Partition) ShortestPathNext(from, to int) int {
	if from == to {
		return from
	}
	// BFS from `to` backwards; first neighbor of `from` reached wins.
	dist := make([]int, len(p.regions))
	for i := range dist {
		dist[i] = -1
	}
	dist[to] = 0
	queue := []int{to}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == from {
			break
		}
		for _, nb := range p.regions[cur].Neighbors {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	best, bestD := from, dist[from]
	if bestD < 0 {
		return from // unreachable; stay
	}
	for _, nb := range p.regions[from].Neighbors {
		if dist[nb] >= 0 && dist[nb] < bestD {
			best, bestD = nb, dist[nb]
		}
	}
	return best
}

// HopDistances returns the hop distance from src to every region (-1 if
// unreachable).
func (p *Partition) HopDistances(src int) []int {
	dist := make([]int, len(p.regions))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range p.regions[cur].Neighbors {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// ShenzhenBBox is the bounding box the generator uses; it approximates the
// extent of urban Shenzhen.
var ShenzhenBBox = geo.BBox{MinLng: 113.75, MinLat: 22.45, MaxLng: 114.65, MaxLat: 22.85}

// Generate produces a deterministic partition of n regions over bbox. The
// regions form a jittered lattice: cells of a cols×rows grid with randomly
// perturbed shared corners (so the tiling stays gap-free), with the
// (cols·rows − n) cells farthest from the centre removed, standing in for
// non-urban terrain. The result is connected and has 3–8 neighbors per
// region, like the census partition the paper uses.
func Generate(seed int64, n int, bbox geo.BBox) (*Partition, error) {
	if n < 4 {
		return nil, fmt.Errorf("partition: need at least 4 regions, got %d", n)
	}
	src := rng.SplitStable(seed, "partition")

	// Pick a grid shape matching the bbox aspect ratio with cols*rows >= n.
	aspect := bbox.Width() / bbox.Height()
	rows := 1
	for {
		cols := int(float64(rows)*aspect + 0.5)
		if cols < 1 {
			cols = 1
		}
		if cols*rows >= n {
			break
		}
		rows++
	}
	cols := int(float64(rows)*aspect + 0.5)
	if cols < 1 {
		cols = 1
	}
	for cols*rows < n {
		cols++
	}

	// Jittered shared corner lattice: corner (i,j) for i in [0,cols], j in [0,rows].
	cw := bbox.Width() / float64(cols)
	ch := bbox.Height() / float64(rows)
	corner := make([][]geo.Point, rows+1)
	for j := 0; j <= rows; j++ {
		corner[j] = make([]geo.Point, cols+1)
		for i := 0; i <= cols; i++ {
			p := geo.Point{
				Lng: bbox.MinLng + float64(i)*cw,
				Lat: bbox.MinLat + float64(j)*ch,
			}
			// Interior corners jitter by up to 30% of a cell; boundary
			// corners stay fixed so the partition exactly tiles the bbox.
			if i > 0 && i < cols && j > 0 && j < rows {
				p.Lng += src.Uniform(-0.3, 0.3) * cw
				p.Lat += src.Uniform(-0.3, 0.3) * ch
			}
			corner[j][i] = p
		}
	}

	// Rank cells by distance from centre; drop the farthest extras.
	type cell struct {
		i, j int
		d    float64
	}
	center := bbox.Center()
	cells := make([]cell, 0, cols*rows)
	for j := 0; j < rows; j++ {
		for i := 0; i < cols; i++ {
			mid := geo.Point{
				Lng: bbox.MinLng + (float64(i)+0.5)*cw,
				Lat: bbox.MinLat + (float64(j)+0.5)*ch,
			}
			cells = append(cells, cell{i, j, geo.Distance(mid, center)})
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].d < cells[b].d })
	kept := cells[:n]

	// Assign dense IDs.
	idOf := make(map[[2]int]int, n)
	for id, c := range kept {
		idOf[[2]int{c.i, c.j}] = id
	}

	regions := make([]Region, n)
	for id, c := range kept {
		ring := []geo.Point{
			corner[c.j][c.i],
			corner[c.j][c.i+1],
			corner[c.j+1][c.i+1],
			corner[c.j+1][c.i],
		}
		pg := geo.Polygon{Ring: ring}
		var nbs []int
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			if nb, ok := idOf[[2]int{c.i + d[0], c.j + d[1]}]; ok {
				nbs = append(nbs, nb)
			}
		}
		sort.Ints(nbs)
		regions[id] = Region{ID: id, Polygon: pg, Centroid: pg.Centroid(), Neighbors: nbs}
	}

	p, err := New(regions)
	if err != nil {
		return nil, err
	}
	if !p.IsConnected() {
		return nil, fmt.Errorf("partition: generated partition is disconnected (n=%d)", n)
	}
	return p, nil
}

// GenerateShenzhen returns the default 491-region partition over the
// Shenzhen bounding box used throughout the evaluation.
func GenerateShenzhen(seed int64) *Partition {
	p, err := Generate(seed, 491, ShenzhenBBox)
	if err != nil {
		panic("partition: GenerateShenzhen failed: " + err.Error())
	}
	return p
}
