package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// Property (DESIGN.md §6): every point of the bounding box — and points
// slightly beyond it — locates to a valid region, and whenever the point
// lies inside the returned region's polygon that assignment is consistent
// with the polygon test. Together these guarantee the displacement state
// space has no holes: any GPS fix maps to exactly one of the 491 regions.
func TestLocateCoversFullBBox(t *testing.T) {
	p := GenerateShenzhen(11)
	bbox := p.BBox()
	prop := func(u, v float64) bool {
		// Map arbitrary floats into [-0.05, 1.05]² so a margin outside the
		// bbox is probed too (trace points on excluded terrain must still
		// snap somewhere).
		fu := math.Abs(math.Mod(u, 1.1)) - 0.05
		fv := math.Abs(math.Mod(v, 1.1)) - 0.05
		pt := geo.Point{
			Lng: bbox.MinLng + fu*(bbox.MaxLng-bbox.MinLng),
			Lat: bbox.MinLat + fv*(bbox.MaxLat-bbox.MinLat),
		}
		id := p.Locate(pt)
		if id < 0 || id >= p.Len() {
			t.Logf("Locate(%v) = %d, out of [0,%d)", pt, id, p.Len())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a region's own centroid locates to a region whose polygon
// contains it (almost always the region itself; Voronoi-adjacent ties snap
// to a containing neighbor). This is the polygon-consistency half of
// Locate's contract.
func TestLocateCentroidConsistency(t *testing.T) {
	p := GenerateShenzhen(12)
	for id := 0; id < p.Len(); id++ {
		c := p.Region(id).Centroid
		got := p.Locate(c)
		if got < 0 || got >= p.Len() {
			t.Fatalf("region %d centroid located to invalid region %d", id, got)
		}
		if got != id && !p.Region(got).Polygon.Contains(c) && p.Region(id).Polygon.Contains(c) {
			t.Fatalf("region %d centroid located to %d, but only %d's polygon contains it", id, got, id)
		}
	}
}
