// Package telemetry is the fleet-wide metrics layer: a dependency-free,
// allocation-conscious registry of counters, gauges, timers, and fixed-bucket
// histograms, with snapshot/diff semantics and a canonical text/JSON dump.
//
// Design constraints, in order:
//
//   - Determinism safety. Instrumented code must behave identically with and
//     without telemetry: metric writes never branch on wall-clock, never touch
//     rng streams, and never feed back into simulation or training state.
//     Counters, gauges, and histograms record simulation events, so their
//     values are themselves deterministic (workers=1 and workers=N agree);
//     timers record wall-clock durations and are the one non-deterministic
//     metric family — comparisons across runs must exclude them.
//
//   - Nil is off. Every method on *Registry and on every handle type is
//     nil-receiver-safe: a nil registry hands out nil handles and a nil
//     handle's write methods are no-ops, so instrumented code carries no
//     "is telemetry on?" branches of its own.
//
//   - Hot paths resolve handles once. Registry lookups take a mutex; handle
//     writes are single atomic operations. Per-event instrumentation (the
//     simulator's match/balk/charge counters) stores handles at setup time
//     and only pays the atomic add per event.
//
// Handles are shared: two Counter("x") calls return the same counter, so one
// registry can aggregate across concurrent environments (CompareAll's six
// methods) without coordination beyond the atomics.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are allowed but unusual).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates wall-clock durations. Timers exist for profiling the
// runtime, not the simulation: their values are not deterministic and are
// excluded from any byte-identity comparison.
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.n.Add(1)
		t.ns.Add(int64(d))
	}
}

// Start begins timing and returns the function that stops and records. The
// nil timer returns a no-op stopper without reading the clock.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Stat returns the accumulated (count, total duration).
func (t *Timer) Stat() TimerStat {
	if t == nil {
		return TimerStat{}
	}
	return TimerStat{Count: t.n.Load(), TotalNs: t.ns.Load()}
}

// Histogram is a fixed-bucket distribution over [Min, Max); out-of-range
// observations clamp into the boundary buckets, so every observation counts.
// Bucket boundaries are fixed at creation — no rebucketing, no allocation on
// the observe path.
type Histogram struct {
	min, max float64
	buckets  []atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64 // float64 sum, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	b := int((v - h.min) / (h.max - h.min) * float64(len(h.buckets)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Stat returns a copy of the histogram's current state.
func (h *Histogram) Stat() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	s := HistogramStat{
		Min:    h.min,
		Max:    h.max,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Registry owns a namespace of metrics. The zero value is not usable; create
// with NewRegistry. A nil *Registry is the "telemetry off" state: it hands
// out nil handles whose writes are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Later calls with different bounds return the existing
// histogram unchanged (bounds are fixed at creation).
func (r *Registry) Histogram(name string, min, max float64, buckets int) *Histogram {
	if r == nil {
		return nil
	}
	if buckets <= 0 || max <= min {
		panic(fmt.Sprintf("telemetry: invalid histogram %q [%v,%v) buckets=%d", name, min, max, buckets))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{min: min, max: max, buckets: make([]atomic.Int64, buckets)}
		r.hists[name] = h
	}
	return h
}

// TimerStat is the snapshot of one timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

// Mean returns the mean duration (0 when empty).
func (t TimerStat) Mean() time.Duration {
	if t.Count == 0 {
		return 0
	}
	return time.Duration(t.TotalNs / t.Count)
}

// HistogramStat is the snapshot of one histogram.
type HistogramStat struct {
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramStat) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of every metric in a registry. Snapshots
// are plain data: diff them, serialize them, compare them across runs
// (excluding Timers, which are wall-clock).
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Timers     map[string]TimerStat     `json:"timers,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Timers:     map[string]TimerStat{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range timers {
		s.Timers[k] = v.Stat()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Stat()
	}
	return s
}

// Diff returns the change from prev to s: counters, timers, and histogram
// counts subtract (metrics absent from prev diff against zero); gauges keep
// their current value — a gauge is a level, not a flow.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Timers:     make(map[string]TimerStat, len(s.Timers)),
		Histograms: make(map[string]HistogramStat, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Timers {
		p := prev.Timers[k]
		out.Timers[k] = TimerStat{Count: v.Count - p.Count, TotalNs: v.TotalNs - p.TotalNs}
	}
	for k, v := range s.Histograms {
		p := prev.Histograms[k]
		d := HistogramStat{
			Min:    v.Min,
			Max:    v.Max,
			Counts: append([]int64(nil), v.Counts...),
			Count:  v.Count - p.Count,
			Sum:    v.Sum - p.Sum,
		}
		for i := range d.Counts {
			if i < len(p.Counts) {
				d.Counts[i] -= p.Counts[i]
			}
		}
		out.Histograms[k] = d
	}
	return out
}

// Merge folds a snapshot into the registry: counters and timers accumulate,
// gauges take the snapshot's value (last write wins), and histogram buckets
// add, with the histogram created from the snapshot's bounds on first use.
// It lets short-lived per-evaluation registries (one per report cell, so
// methods don't mix) roll up into a process-wide registry for the CLI dump.
func (r *Registry) Merge(s Snapshot) {
	if r == nil {
		return
	}
	for k, v := range s.Counters {
		r.Counter(k).Add(v)
	}
	for k, v := range s.Gauges {
		r.Gauge(k).Set(v)
	}
	for k, v := range s.Timers {
		t := r.Timer(k)
		t.n.Add(v.Count)
		t.ns.Add(v.TotalNs)
	}
	for k, v := range s.Histograms {
		if len(v.Counts) == 0 || v.Max <= v.Min {
			continue
		}
		h := r.Histogram(k, v.Min, v.Max, len(v.Counts))
		for i, c := range v.Counts {
			if i < len(h.buckets) {
				h.buckets[i].Add(c)
			}
		}
		h.count.Add(v.Count)
		for {
			old := h.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + v.Sum)
			if h.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// Text renders the snapshot as a canonical human-readable dump: one metric
// per line, keys sorted, families in fixed order. Identical snapshots render
// to identical bytes.
func (s Snapshot) Text() string {
	var sb strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "counter   %-42s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "gauge     %-42s %.4f\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&sb, "histogram %-42s n=%d mean=%.2f range=[%g,%g) buckets=%s\n",
			k, h.Count, h.Mean(), h.Min, h.Max, fmtBuckets(h.Counts))
	}
	for _, k := range sortedKeys(s.Timers) {
		t := s.Timers[k]
		fmt.Fprintf(&sb, "timer     %-42s n=%d total=%v mean=%v\n",
			k, t.Count, time.Duration(t.TotalNs).Round(time.Microsecond), t.Mean().Round(time.Microsecond))
	}
	return sb.String()
}

// JSON renders the snapshot as canonical JSON (encoding/json sorts map keys).
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

func fmtBuckets(counts []int64) string {
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DumpEvery writes a full snapshot to w every interval until stop is called.
// It is the CLI's periodic-dump loop; the ticker lives entirely outside the
// simulation, so determinism is unaffected. The returned stop function
// flushes nothing (callers print the final snapshot themselves) and is safe
// to call once.
func (r *Registry) DumpEvery(interval time.Duration, w io.Writer) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case t := <-tick.C:
				fmt.Fprintf(w, "-- telemetry @ %s --\n%s", t.Format(time.TimeOnly), r.Snapshot().Text())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
