package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	tm := r.Timer("x")
	h := r.Histogram("x", 0, 10, 4)
	if c != nil || g != nil || tm != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	// None of these may panic.
	c.Inc()
	c.Add(5)
	g.Set(3)
	tm.Observe(time.Second)
	tm.Start()()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || tm.Stat().Count != 0 || h.Stat().Count != 0 {
		t.Fatalf("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Text() != "" {
		t.Fatalf("nil registry snapshot must be empty, got %q", snap.Text())
	}
	r.DumpEvery(time.Second, nil)() // no-op stop
}

func TestHandlesAreShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sim.matches")
	b := r.Counter("sim.matches")
	if a != b {
		t.Fatalf("same name must return the same counter")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("sim.matches").Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
}

func TestHistogramClampsAndAccumulates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("idle", 0, 100, 4)
	for _, v := range []float64{-5, 10, 30, 60, 95, 250} {
		h.Observe(v)
	}
	s := h.Stat()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := []int64{2, 1, 1, 2} // -5 and 10 clamp low bucket; 95 and 250 top bucket
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := s.Sum; got != -5+10+30+60+95+250 {
		t.Fatalf("sum = %v", got)
	}
	if m := s.Mean(); m != s.Sum/6 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	g := r.Gauge("loss")
	h := r.Histogram("d", 0, 10, 2)
	c.Add(10)
	g.Set(0.5)
	h.Observe(1)
	before := r.Snapshot()
	c.Add(7)
	g.Set(0.25)
	h.Observe(9)
	diff := r.Snapshot().Diff(before)
	if diff.Counters["events"] != 7 {
		t.Fatalf("counter diff = %d, want 7", diff.Counters["events"])
	}
	if diff.Gauges["loss"] != 0.25 {
		t.Fatalf("gauge diff keeps current value, got %v", diff.Gauges["loss"])
	}
	hd := diff.Histograms["d"]
	if hd.Count != 1 || hd.Counts[0] != 0 || hd.Counts[1] != 1 || hd.Sum != 9 {
		t.Fatalf("histogram diff = %+v", hd)
	}
}

func TestTextCanonicalAndJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", 0, 4, 2).Observe(1)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s1.Text() != s2.Text() {
		t.Fatalf("identical snapshots must render identically")
	}
	// Keys are sorted: "a" before "b".
	txt := s1.Text()
	if strings.Index(txt, "a ") > strings.Index(txt, "b ") {
		t.Fatalf("keys not sorted:\n%s", txt)
	}
	data, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 2 || back.Gauges["g"] != 1.5 || back.Histograms["h"].Count != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("h", 0, 1, 4)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h", 0, 1, 4).Stat().Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestDumpEvery(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	stop := r.DumpEvery(5*time.Millisecond, w)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := sb.String()
		mu.Unlock()
		if strings.Contains(got, "counter") && strings.Contains(got, "x") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("periodic dump never fired; buffer: %q", got)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// BenchmarkCounterInc pins the per-event cost of the hot path: one atomic
// add. The <5% overhead budget on the Compare bench follows from this being
// a few nanoseconds against simulation slots that cost milliseconds.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncDisabled measures the telemetry-off path (nil handle).
func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
