package policy

import "repro/internal/telemetry"

// TrainTel bundles the per-epoch training diagnostics a learner emits:
// episode/transition/update throughput, the latest mean decision reward and
// exploration rate, the pre-clip gradient-norm distribution, and episode
// wall-clock. The zero value is fully inert — every handle is nil and every
// write a no-op — so learners embed it unconditionally and only pay when a
// registry is installed. All values are write-only diagnostics: nothing here
// feeds back into action selection or RNG streams, so enabling telemetry
// cannot change a training trajectory. The EpisodeTime timer is the only
// wall-clock-dependent family; determinism comparisons must ignore timers.
type TrainTel struct {
	Episodes    *telemetry.Counter
	Transitions *telemetry.Counter
	Steps       *telemetry.Counter // gradient (or Q-table) update steps
	MeanReward  *telemetry.Gauge   // latest per-episode mean decision reward
	Epsilon     *telemetry.Gauge   // latest exploration rate (ε-greedy learners)
	GradNorm    *telemetry.Histogram
	EpisodeTime *telemetry.Timer
}

// NewTrainTel resolves the standard training handles under a name prefix
// (e.g. "dqn" → "dqn.episodes"). A nil registry yields the inert zero value.
func NewTrainTel(r *telemetry.Registry, prefix string) TrainTel {
	if r == nil {
		return TrainTel{}
	}
	return TrainTel{
		Episodes:    r.Counter(prefix + ".episodes"),
		Transitions: r.Counter(prefix + ".transitions"),
		Steps:       r.Counter(prefix + ".update_steps"),
		MeanReward:  r.Gauge(prefix + ".mean_reward"),
		Epsilon:     r.Gauge(prefix + ".epsilon"),
		GradNorm:    r.Histogram(prefix+".grad_norm", 0, 10, 20),
		EpisodeTime: r.Timer(prefix + ".episode"),
	}
}
