package policy

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
)

func marshalOrDie(t *testing.T, c checkpoint.Checkpointer) []byte {
	t.Helper()
	data, err := checkpoint.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// roundTrip proves the two checkpoint properties for one learner: a trained
// state survives Marshal → Unmarshal into a differently initialized twin, and
// re-marshaling the twin reproduces the original bytes exactly.
func roundTrip(t *testing.T, trained, fresh checkpoint.Checkpointer) {
	t.Helper()
	data := marshalOrDie(t, trained)
	if _, err := checkpoint.Unmarshal(data, fresh); err != nil {
		t.Fatal(err)
	}
	if again := marshalOrDie(t, fresh); !bytes.Equal(again, data) {
		t.Fatal("restored learner does not re-serialize byte-identically")
	}
}

// failClosed proves a digest-valid container with a malformed payload is
// rejected with ErrPayload and leaves the learner bit-for-bit unchanged.
func failClosed(t *testing.T, learner checkpoint.Checkpointer) {
	t.Helper()
	before := marshalOrDie(t, learner)
	meta := checkpoint.Meta{
		Version:     checkpoint.Version,
		Kind:        learner.CheckpointKind(),
		Fingerprint: learner.CheckpointFingerprint(),
	}
	forged := checkpoint.Seal(meta, []byte{0xff, 0xee, 0xdd})
	if _, err := checkpoint.Unmarshal(forged, learner); !errors.Is(err, checkpoint.ErrPayload) {
		t.Fatalf("forged payload: %v, want ErrPayload", err)
	}
	if after := marshalOrDie(t, learner); !bytes.Equal(after, before) {
		t.Fatal("rejected payload mutated the learner")
	}
}

func TestDQNCheckpointRoundTrip(t *testing.T) {
	city := testCity(t, 5)
	d := NewDQN(0.6, 5)
	d.Pretrain(city, NewGroundTruth(), 1, 1, 5)
	d.Train(city, 1, 1, 5)
	// The twin differs only in weight initialization; hyperparameters (and
	// hence the fingerprint) match.
	roundTrip(t, d, NewDQN(0.6, 999))
	failClosed(t, d)
}

func TestTQLCheckpointRoundTrip(t *testing.T) {
	city := testCity(t, 6)
	q := NewTQL(0.6)
	q.Pretrain(city, NewGroundTruth(), 1, 1, 6)
	q.Train(city, 1, 1, 6)
	if len(q.q) == 0 {
		t.Fatal("training left the Q-table empty; round trip would be vacuous")
	}
	roundTrip(t, q, NewTQL(0.6))
	failClosed(t, q)
}

// TestTQLEncodeDeterministic pins the sorted-key emission: the Q-table is a
// map, and map iteration order must never leak into checkpoint bytes.
func TestTQLEncodeDeterministic(t *testing.T) {
	city := testCity(t, 8)
	q := NewTQL(0.6)
	q.Pretrain(city, NewGroundTruth(), 1, 1, 8)
	first := marshalOrDie(t, q)
	for i := 0; i < 5; i++ {
		if !bytes.Equal(marshalOrDie(t, q), first) {
			t.Fatal("same Q-table serialized to different bytes")
		}
	}
}

func TestTBACheckpointRoundTrip(t *testing.T) {
	city := testCity(t, 9)
	b := NewTBA(9)
	b.Pretrain(city, NewGroundTruth(), 1, 1, 9)
	b.Train(city, 1, 1, 9)
	roundTrip(t, b, NewTBA(321))
	failClosed(t, b)
}

// TestCrossLearnerLoadRejected: a DQN checkpoint must never load into a TBA,
// even though both serialize an MLP + Adam + transitions.
func TestCrossLearnerLoadRejected(t *testing.T) {
	d := NewDQN(0.6, 11)
	data := marshalOrDie(t, d)
	b := NewTBA(11)
	before := marshalOrDie(t, b)
	if _, err := checkpoint.Unmarshal(data, b); !errors.Is(err, checkpoint.ErrKind) {
		t.Fatalf("cross-learner load: %v, want ErrKind", err)
	}
	if !bytes.Equal(marshalOrDie(t, b), before) {
		t.Fatal("rejected cross-learner load mutated the learner")
	}
}

// TestHyperparameterMismatchRejected: the same learner kind with a different
// config must fail the fingerprint check, not silently continue divergently.
func TestHyperparameterMismatchRejected(t *testing.T) {
	data := marshalOrDie(t, NewDQN(0.6, 12))
	other := NewDQN(0.8, 12) // different α
	if _, err := checkpoint.Unmarshal(data, other); !errors.Is(err, checkpoint.ErrFingerprint) {
		t.Fatalf("α mismatch: %v, want ErrFingerprint", err)
	}
}

// TestDQNResumeDeterminism is the learner-level crash/resume proof: a run
// interrupted after fine-tune episode 1 and resumed from its checkpoint in a
// brand-new process (modeled by a fresh learner instance) finishes with
// byte-identical state to the unbroken run.
func TestDQNResumeDeterminism(t *testing.T) {
	city := testCity(t, 7)
	const total = 2
	dir := t.TempDir()

	// Unbroken run, cadence on: also proves checkpoint writes never perturb
	// training.
	a := NewDQN(0.6, 7)
	a.Pretrain(city, NewGroundTruth(), 1, 1, 7)
	if _, err := a.TrainCheckpointed(city, total, 1, 7, checkpoint.TrainOptions{Dir: dir, Every: 1, Keep: 10}); err != nil {
		t.Fatal(err)
	}
	want := marshalOrDie(t, a)

	// Plain run with checkpointing off must match too.
	plain := NewDQN(0.6, 7)
	plain.Pretrain(city, NewGroundTruth(), 1, 1, 7)
	plain.Train(city, total, 1, 7)
	if !bytes.Equal(marshalOrDie(t, plain), want) {
		t.Fatal("enabling checkpoints changed the training trajectory")
	}

	// "Crash" after episode 1: restore its checkpoint into a fresh learner
	// and re-run the identical command.
	mid := filepath.Join(dir, checkpoint.FileName(checkpoint.PhaseTrain, 1))
	resumed := NewDQN(0.6, 404)
	if _, err := checkpoint.ReadFile(mid, resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.epDone != 1 {
		t.Fatalf("restored epDone = %d, want 1", resumed.epDone)
	}
	if _, err := resumed.TrainCheckpointed(city, total, 1, 7, checkpoint.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalOrDie(t, resumed), want) {
		t.Fatal("resumed run is not byte-identical to the unbroken run")
	}
}

// TestTQLPretrainResumeDeterminism covers the pretrain phase: a warm-start
// interrupted between demonstration episodes resumes byte-identically.
func TestTQLPretrainResumeDeterminism(t *testing.T) {
	city := testCity(t, 13)
	dir := t.TempDir()

	a := NewTQL(0.6)
	if err := a.PretrainCheckpointed(city, NewGroundTruth(), 2, 1, 13, checkpoint.TrainOptions{Dir: dir, Every: 1, Keep: 10}); err != nil {
		t.Fatal(err)
	}
	want := marshalOrDie(t, a)

	mid := filepath.Join(dir, checkpoint.FileName(checkpoint.PhasePretrain, 1))
	resumed := NewTQL(0.6)
	if _, err := checkpoint.ReadFile(mid, resumed); err != nil {
		t.Fatal(err)
	}
	if err := resumed.PretrainCheckpointed(city, NewGroundTruth(), 2, 1, 13, checkpoint.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalOrDie(t, resumed), want) {
		t.Fatal("resumed pretrain is not byte-identical to the unbroken run")
	}
}
