package policy

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/sim"
)

func TestPolicyChooserFollowsGuide(t *testing.T) {
	city := testCity(t, 40)
	env := sim.New(city, sim.DefaultOptions(1), 40)
	env.Reset(40)
	guide := NewCoordinator()
	guide.BeginEpisode(40)
	chooser := PolicyChooser(env, guide)
	vacant := env.VacantTaxis()
	if len(vacant) == 0 {
		t.Fatal("no vacant taxis")
	}
	for _, id := range vacant[:minInt(10, len(vacant))] {
		obs := env.Observe(id)
		idx := chooser(id, obs)
		if idx < 0 || idx >= sim.NumActions {
			t.Fatalf("chooser returned invalid index %d", idx)
		}
		if !obs.Mask[idx] {
			t.Fatalf("chooser returned masked action %d", idx)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTQLPretrainSeedsTable(t *testing.T) {
	city := testCity(t, 41)
	tql := NewTQL(0.6)
	tql.Pretrain(city, NewGroundTruth(), 1, 1, 41)
	if len(tql.q) == 0 {
		t.Fatal("pretrain left the Q-table empty")
	}
	// Pessimistic init: entries must exist with values pulled up from -1.
	anyAbove := false
	for _, qs := range tql.q {
		for _, v := range qs {
			if v > tqlInitQ {
				anyAbove = true
			}
		}
	}
	if !anyAbove {
		t.Fatal("no Q-value was ever updated above the pessimistic floor")
	}
}

func TestDQNPretrainFillsReplay(t *testing.T) {
	city := testCity(t, 42)
	dqn := NewDQN(0.6, 42)
	dqn.Pretrain(city, NewGroundTruth(), 1, 1, 42)
	if len(dqn.replay) == 0 {
		t.Fatal("pretrain left the replay buffer empty")
	}
	// Offline learning must have moved the network.
	fresh := NewDQN(0.6, 42)
	x := make([]float64, sim.FeatureSize)
	for i := range x {
		x[i] = 0.2
	}
	a := fresh.Net().Forward1(x)
	b := dqn.Net().Forward1(x)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pretrain did not change the Q-network")
	}
}

func TestTBAPretrainClonesTeacher(t *testing.T) {
	city := testCity(t, 43)
	tba := NewTBA(43)
	tba.Pretrain(city, NewCoordinator(), 1, 1, 43)
	if len(tba.demo) == 0 {
		t.Fatal("pretrain kept no demonstration transitions")
	}
	// After cloning a mostly-staying teacher, "stay" should carry large
	// probability mass on a typical healthy-taxi observation.
	env := sim.New(city, sim.DefaultOptions(1), 43)
	env.Reset(43)
	var sum float64
	var n int
	for _, id := range env.VacantTaxis() {
		obs := env.Observe(id)
		if !obs.Mask[0] {
			continue
		}
		logits := tba.net.Forward1(obs.Features)
		p := softmaxAt(logits, obs.Mask[:], 0)
		sum += p
		n++
	}
	if n == 0 {
		t.Skip("no stay-valid observations")
	}
	if mean := sum / float64(n); mean < 0.2 {
		t.Errorf("mean stay probability %.3f after cloning a stay-heavy teacher", mean)
	}
}

func softmaxAt(logits []float32, mask []bool, idx int) float64 {
	p := nn.Softmax(logits, mask)
	if idx < 0 || idx >= len(p) {
		return 0
	}
	return p[idx]
}
