package policy

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/synth"
)

func TestCoordinatorBeatsGroundTruth(t *testing.T) {
	city := testCity(t, 30)
	opts := sim.DefaultOptions(1)
	env := sim.New(city, opts, 30)
	gt := Evaluate(NewGroundTruth(), env, 30)
	coord := Evaluate(NewCoordinator(), env, 30)
	if pipe := metrics.PIPE(gt, coord); pipe <= 0 {
		t.Errorf("coordinated dispatch PIPE = %.1f%%, expected positive", pipe)
	}
	if coord.ServedRequests <= gt.ServedRequests*9/10 {
		t.Errorf("coordinator served %d vs GT %d", coord.ServedRequests, gt.ServedRequests)
	}
}

func TestCoordinatorFairShareImprovesFairness(t *testing.T) {
	// The FairShare mechanism (low earners keep the staying slots) must
	// reduce the PE variance relative to the same policy without it.
	if testing.Short() {
		t.Skip("multi-day comparison; skipped with -short")
	}
	city, err := synth.Build(synth.Config{
		Seed: 42, Regions: 75, Stations: 18, Fleet: 300,
		TripsPerDay: 15 * 300, SlotMinutes: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions(2)
	opts.WarmupDays = 1
	env := sim.New(city, opts, 42)

	fair := Evaluate(NewCoordinator(), env, 42)
	noFair := NewCoordinator()
	noFair.FairShare = false
	unfair := Evaluate(noFair, env, 42)

	pfFair := metrics.ProfitFairness(fair)
	pfUnfair := metrics.ProfitFairness(unfair)
	if pfFair >= pfUnfair {
		t.Errorf("FairShare PF %.2f not below NoFair PF %.2f", pfFair, pfUnfair)
	}
	// The fairness mechanism must not cost much efficiency.
	peFair := metrics.FleetPE(fair)
	peUnfair := metrics.FleetPE(unfair)
	if peFair < peUnfair*0.9 {
		t.Errorf("FairShare PE %.2f sacrificed >10%% vs NoFair %.2f", peFair, peUnfair)
	}
}

func TestCoordinatorRespectsMasks(t *testing.T) {
	city := testCity(t, 32)
	env := sim.New(city, sim.DefaultOptions(1), 32)
	res := Evaluate(NewCoordinator(), env, 32)
	if env.InvalidActions() > 0 {
		t.Fatalf("coordinator produced %d invalid actions", env.InvalidActions())
	}
	if res.ServedRequests == 0 {
		t.Fatal("coordinator served nothing")
	}
}

func TestCoordinatorName(t *testing.T) {
	c := NewCoordinator()
	if c.Name() != "Coordinator" {
		t.Fatalf("Name = %q", c.Name())
	}
	c.FairShare = false
	if c.Name() != "Coordinator-NoFair" {
		t.Fatalf("NoFair name = %q", c.Name())
	}
}

func TestCoordinatorPreChargesOffPeak(t *testing.T) {
	city := testCity(t, 33)
	env := sim.New(city, sim.DefaultOptions(2), 33)
	res := Evaluate(NewCoordinator(), env, 33)
	if len(res.ChargeStats) == 0 {
		t.Skip("no charging in this run")
	}
	// Pre-charging should place a visible share of plug-ins in the cheap
	// bands (hours 2-5, 12-13, 17).
	var cheap, total int
	for h, c := range res.ChargeStartsByHour {
		total += c
		if (h >= 2 && h < 6) || h == 12 || h == 13 || h == 17 {
			cheap += c
		}
	}
	if total > 20 && float64(cheap)/float64(total) < 0.2 {
		t.Errorf("cheap-band plug-in share %.2f too low for a pre-charging coordinator",
			float64(cheap)/float64(total))
	}
}
