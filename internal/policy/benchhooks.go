package policy

// Benchmark hooks (see internal/core/benchhooks.go for the pattern): the
// module-root recorder pins the DQN minibatch learn step in BENCH_nn.json and
// the allocation gate. BenchRemember fills the replay buffer and
// BenchLearnStep runs one minibatch update; neither is part of the policy
// API.

// BenchRemember appends one transition to the replay buffer. Exported only
// for benchmarks.
func (d *DQN) BenchRemember(tr Transition) { d.remember(tr) }

// BenchLearnStep runs one minibatch target/online update. Exported only for
// benchmarks.
func (d *DQN) BenchLearnStep() { d.learn() }
