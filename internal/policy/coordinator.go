package policy

import (
	"sort"

	"repro/internal/pricing"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Coordinator is a centralized dispatching heuristic: it balances vacant
// supply against forecast demand region by region, assigns surplus taxis
// one hop toward the largest nearby deficit, staggers charging into cheap
// tariff bands when stations have spare points, and picks stations by
// expected wait rather than pure distance.
//
// It serves two roles. First, it is the demonstration teacher for the
// learned policies: the paper trains its networks on a month of fleet data,
// which at repro scale we substitute with teacher-guided warm starts before
// reward-driven fine-tuning (see DESIGN.md §2). Second, with FairShare
// toggled it is the ablation for the fairness mechanism: when FairShare is
// set, taxis with the lowest earnings so far get first pick of the good
// displacement targets, which is the behavioral content of the paper's
// fairness-aware objective.
type Coordinator struct {
	// FairShare gives low-PE taxis priority on favorable assignments.
	FairShare bool
	// PreChargeProb is the chance an eligible taxi is sent to pre-charge
	// during an off-peak band with spare station capacity.
	PreChargeProb float64

	src *rng.Source
}

// NewCoordinator returns the fairness-aware coordinated heuristic.
func NewCoordinator() *Coordinator {
	return &Coordinator{FairShare: true, PreChargeProb: 0.4, src: rng.New(0)}
}

// Name implements Policy.
func (c *Coordinator) Name() string {
	if c.FairShare {
		return "Coordinator"
	}
	return "Coordinator-NoFair"
}

// BeginEpisode implements Policy.
func (c *Coordinator) BeginEpisode(seed int64) { c.src = rng.SplitStable(seed, "coordinator") }

// CloneForWorker implements Cloner: the coordinator's only mutable state is
// its rng stream, and BeginEpisode re-derives that from the episode seed, so
// a clone driving an episode behaves exactly like the original would.
func (c *Coordinator) CloneForWorker() Policy {
	return &Coordinator{FairShare: c.FairShare, PreChargeProb: c.PreChargeProb, src: rng.New(0)}
}

// Act implements Policy.
func (c *Coordinator) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	city := env.City()
	n := city.Partition.Len()
	now := env.Now()
	slot := env.SlotLen()
	band := city.Tariff.BandAt(now)

	// Net demand pressure per region: forecast minus vacant supply.
	gap := make([]float64, n)
	for r := 0; r < n; r++ {
		gap[r] = city.Demand.ExpectedSlotDemand(r, now, slot)
	}
	actions := make(map[int]sim.Action, len(vacant))

	// First pass: charging decisions; the rest bucket by region.
	byRegion := make(map[int][]int)
	for _, id := range vacant {
		soc := env.TaxiSoC(id)
		region := env.TaxiRegion(id)
		switch {
		case soc < 0.20:
			actions[id] = sim.Action{Kind: sim.Charge, Arg: c.bestStation(env, region)}
		case soc < 0.30 && band == pricing.OffPeak && c.src.Bool(c.PreChargeProb) && c.stationHasFree(env, region):
			// Staggered pre-charging: use the cheap band while points are
			// actually free, spreading the fleet's charging demand in time.
			actions[id] = sim.Action{Kind: sim.Charge, Arg: c.bestStation(env, region)}
		default:
			byRegion[region] = append(byRegion[region], id)
			gap[region]--
		}
	}

	// Second pass, region by region: surplus taxis move toward the largest
	// nearby deficits. Matching serves the longest-vacant taxi first, so a
	// region's staying slots are its plum assignments; under FairShare the
	// lowest earners keep them and the highest earners carry the
	// speculative relocation burden.
	regions := make([]int, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Ints(regions)
	for _, r := range regions {
		members := byRegion[r]
		if c.FairShare {
			sort.Slice(members, func(a, b int) bool {
				return env.PESoFar(members[a]) < env.PESoFar(members[b])
			})
		}
		// Keep as many taxis as the region's expected demand supports.
		keep := int(gap[r] + float64(len(members)) + 0.99) // ceil(demand)
		if keep < 0 {
			keep = 0
		}
		for i, id := range members {
			if i < keep {
				actions[id] = sim.Action{Kind: sim.Stay}
				continue
			}
			actions[id] = c.moveToward(env, r, gap)
		}
	}
	return actions
}

// moveToward picks the adjacent region with the largest unmet demand,
// updating the pressure field so later assignments see the claim; it
// returns Stay when no neighbor has meaningfully more need.
func (c *Coordinator) moveToward(env sim.Environment, region int, gap []float64) sim.Action {
	nbs := env.City().Partition.Region(region).Neighbors
	bestI, bestGap := -1, gap[region]+1
	for i, nb := range nbs {
		if i >= sim.MaxNeighbors {
			break
		}
		if gap[nb] > bestGap+0.3 {
			bestI, bestGap = i, gap[nb]
		}
	}
	if bestI < 0 {
		return sim.Action{Kind: sim.Stay}
	}
	gap[nbs[bestI]]--
	gap[region]++
	return sim.Action{Kind: sim.Move, Arg: bestI}
}

// bestStation returns the rank of the nearest-five station minimizing an
// expected-wait score: queue relative to point count plus travel distance.
func (c *Coordinator) bestStation(env sim.Environment, region int) int {
	ns := env.NearStations(region)
	best, bestScore := 0, 1e18
	for k := 0; k < len(ns) && k < sim.KStations; k++ {
		st := env.StationState(ns[k].Label)
		pts := float64(st.Station().Points)
		score := (float64(st.QueueLen())-float64(st.Free()))/pts + ns[k].DistKm*0.15
		if score < bestScore {
			best, bestScore = k, score
		}
	}
	return best
}

// stationHasFree reports whether any of the region's nearest stations has a
// free point right now.
func (c *Coordinator) stationHasFree(env sim.Environment, region int) bool {
	for _, nb := range env.NearStations(region) {
		if env.StationState(nb.Label).Free() > 0 {
			return true
		}
	}
	return false
}
