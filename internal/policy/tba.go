package policy

import (
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// TBA is the Trip Bandit Approach of the SIGSPATIAL Cup 2019 [6]: a
// reinforcement-learning policy trained with the plain REINFORCE rule [24].
// Its two defining differences from FairMove, both preserved here: (i)
// agents are purely competitive — the reward is each taxi's own profit with
// no fairness term — and (ii) there is no critic; returns are Monte-Carlo
// with a running mean baseline.
type TBA struct {
	Gamma  float64
	LR     float64
	Hidden []int
	// Env builds the training environments; nil means the sequential
	// engine. Install shard.Builder(k) to train on the sharded engine.
	Env sim.EnvBuilder
	// Workers bounds the goroutines for batched actor inference and
	// parallel demonstration rollouts; <= 0 means GOMAXPROCS. Results are
	// byte-identical for any value.
	Workers int

	net *nn.MLP
	opt *nn.Adam
	src *rng.Source

	// running return baseline
	baseline float64
	baseN    int

	// demo holds Pretrain transitions; Train replays behavior-cloning
	// batches from it to anchor the actor while REINFORCE returns are noisy.
	demo []Transition

	exploring bool

	// resume cursors (see the DQN fields of the same name). fineTuning
	// records that Train already swapped in the gentler optimizer, so a
	// resumed run keeps the warm-start optimizer state instead of resetting
	// it a second time.
	demoDone   int
	epDone     int
	fineTuning bool

	tel TrainTel
}

// SetTelemetry installs (or, with nil, removes) training telemetry under the
// "tba." prefix.
func (t *TBA) SetTelemetry(r *telemetry.Registry) { t.tel = NewTrainTel(r, "tba") }

// NewTBA returns an untrained TBA baseline.
func NewTBA(seed int64) *TBA {
	t := &TBA{
		Gamma:  0.9,
		LR:     0.001,
		Hidden: []int{64},
		src:    rng.SplitStable(seed, "tba-init"),
	}
	sizes := append([]int{sim.FeatureSize}, t.Hidden...)
	sizes = append(sizes, sim.NumActions)
	t.net = nn.NewMLP(t.src, sizes, nn.Tanh, nn.Identity)
	t.opt = nn.NewAdam(t.LR)
	return t
}

// Name implements Policy.
func (t *TBA) Name() string { return "TBA" }

// BeginEpisode implements Policy.
func (t *TBA) BeginEpisode(seed int64) { t.src = rng.SplitStable(seed, "tba") }

// sample draws an action from the masked softmax policy. Sampling is used
// at evaluation time too: identical agents sharing an observation disperse
// naturally under a stochastic policy, where an argmax would herd them.
func (t *TBA) sample(obs sim.Observation) int {
	logits := t.net.Forward1(obs.Features)
	mask := make([]bool, sim.NumActions)
	for i := range mask {
		mask[i] = obs.Mask[i]
	}
	return t.src.WeightedChoice(nn.Softmax(logits, mask))
}

// Act implements Policy. Observations are collected serially (Observe
// refreshes env caches), the shared actor evaluates all rows sharded across
// Workers, and sampling then consumes t.src serially in vacant order — the
// same draw sequence as a per-taxi loop, so output is byte-identical for
// any worker count.
func (t *TBA) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	actions := make(map[int]sim.Action, len(vacant))
	obs := make([]sim.Observation, len(vacant))
	rows := make([][]float64, len(vacant))
	for i, id := range vacant {
		obs[i] = env.Observe(id)
		rows[i] = obs[i].Features
	}
	logits := t.net.ForwardRows(rows, t.Workers)
	for i, id := range vacant {
		mask := make([]bool, sim.NumActions)
		for j := range mask {
			mask[j] = obs[i].Mask[j]
		}
		actions[id] = sim.ActionFromIndex(t.src.WeightedChoice(nn.Softmax(logits[i], mask)))
	}
	return actions
}

// Pretrain behavior-clones the actor toward guide's decisions over
// demonstration episodes — a warm start before REINFORCE fine-tuning. The
// cross-entropy gradient is the policy gradient with unit advantage.
//
// Rollouts are guide-driven, so episodes fan out across Workers and the
// cloning updates consume them serially in episode order — byte-identical
// to a serial run.
func (t *TBA) Pretrain(city *synth.City, guide Policy, episodes, days int, seed int64) {
	_ = t.PretrainCheckpointed(city, guide, episodes, days, seed, checkpoint.TrainOptions{})
}

// PretrainCheckpointed is Pretrain with a checkpoint cadence, resuming past
// the demonstration episodes a loaded checkpoint already consumed.
func (t *TBA) PretrainCheckpointed(city *synth.City, guide Policy, episodes, days int, seed int64, opts checkpoint.TrainOptions) error {
	from := t.demoDone
	bufs := CollectDemosFrom(t.Env, city, guide, from, episodes, days, seed, t.Workers, 1.0, t.Gamma)
	for i, batch := range bufs {
		ep := from + i
		t.BeginEpisode(DemoEpisodeSeed(seed, ep))
		t.net.ZeroGrad()
		for i, tr := range batch {
			logits := t.net.Forward(nn.FromSlice(1, sim.FeatureSize, tr.Obs), true)
			mask := make([]bool, sim.NumActions)
			for j := range mask {
				mask[j] = tr.Mask[j]
			}
			pg := nn.PolicyGradient(logits.Row(0), mask, tr.Action, 1.0)
			t.net.Backward(nn.FromSlice(1, sim.NumActions, pg))
			if (i+1)%64 == 0 {
				_, grads := t.net.Params()
				nn.ClipGrads(grads, 5)
				t.opt.Step(t.net)
				t.net.ZeroGrad()
			}
		}
		_, grads := t.net.Params()
		nn.ClipGrads(grads, 5)
		t.opt.Step(t.net)
		t.demo = append(t.demo, batch...)
		t.demoDone = ep + 1
		if opts.ShouldSave(t.demoDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, t, opts.Keep); err != nil {
				return err
			}
		}
	}
	return nil
}

// Train runs REINFORCE episodes until `episodes` total are complete. Rewards
// are selfish (α = 1: own profit only), matching the competitive setting
// of [6].
func (t *TBA) Train(city *synth.City, episodes, days int, seed int64) TrainStats {
	stats, _ := t.TrainCheckpointed(city, episodes, days, seed, checkpoint.TrainOptions{})
	return stats
}

// TrainCheckpointed is Train with a checkpoint cadence.
func (t *TBA) TrainCheckpointed(city *synth.City, episodes, days int, seed int64, opts checkpoint.TrainOptions) (TrainStats, error) {
	stats := TrainStats{Episodes: episodes}
	env := sim.BuildEnv(t.Env, city, sim.DefaultOptions(days), seed)

	// Gentle fine-tuning after a warm start (see FairMove.Train): REINFORCE
	// returns are noisy, so polish rather than overwrite the demonstrated
	// policy. The fineTuning flag survives checkpoints, so a resumed run
	// keeps polishing with the optimizer state it saved instead of resetting
	// the moments a second time.
	if len(t.demo) > 0 && !t.fineTuning {
		t.opt = nn.NewAdam(t.LR * 0.1)
	}
	t.fineTuning = true
	for ep := t.epDone; ep < episodes; ep++ {
		epSeed := seed + int64(ep)
		env.Reset(epSeed)
		t.BeginEpisode(epSeed)
		t.exploring = true

		var batch []Transition
		stopEp := t.tel.EpisodeTime.Start()
		mean := RunEpisode(env,
			func(id int, obs sim.Observation) int { return t.sample(obs) },
			1.0, // selfish: no fairness term
			t.Gamma,
			func(id int, tr Transition) { batch = append(batch, tr.Detach()) },
		)
		stopEp()
		t.tel.Episodes.Inc()
		t.tel.Transitions.Add(int64(len(batch)))
		t.tel.MeanReward.Set(mean)
		stats.MeanReward = append(stats.MeanReward, mean)

		// Demonstration anchor (see FairMove): occasional cloning batches
		// keep the actor near competent behavior while returns are noisy.
		for i := 0; i+64 <= len(t.demo) && i < 20*64; i += 64 {
			t.net.ZeroGrad()
			for b := 0; b < 64; b++ {
				tr := t.demo[t.src.Intn(len(t.demo))]
				logits := t.net.Forward(nn.FromSlice(1, sim.FeatureSize, tr.Obs), true)
				mask := make([]bool, sim.NumActions)
				for j := range mask {
					mask[j] = tr.Mask[j]
				}
				pg := nn.PolicyGradient(logits.Row(0), mask, tr.Action, 1.0/64)
				t.net.Backward(nn.FromSlice(1, sim.NumActions, pg))
			}
			_, grads := t.net.Params()
			nn.ClipGrads(grads, 5)
			t.opt.Step(t.net)
		}

		// REINFORCE update over the episode's decisions with a running
		// baseline: ∇ = Σ (G − b) ∇ log π(a|s).
		t.net.ZeroGrad()
		nUpd := 0
		for _, tr := range batch {
			g := tr.Reward
			t.baseN++
			t.baseline += (g - t.baseline) / float64(t.baseN)
			adv := g - t.baseline
			if adv == 0 {
				continue
			}
			logits := t.net.Forward(nn.FromSlice(1, sim.FeatureSize, tr.Obs), true)
			mask := make([]bool, sim.NumActions)
			for i := range mask {
				mask[i] = tr.Mask[i]
			}
			pg := nn.PolicyGradient(logits.Row(0), mask, tr.Action, adv)
			gm := nn.FromSlice(1, sim.NumActions, pg)
			t.net.Backward(gm)
			nUpd++
			if nUpd%64 == 0 {
				_, grads := t.net.Params()
				t.tel.GradNorm.Observe(nn.ClipGrads(grads, 5))
				t.tel.Steps.Inc()
				t.opt.Step(t.net)
				t.net.ZeroGrad()
			}
		}
		if nUpd%64 != 0 {
			_, grads := t.net.Params()
			t.tel.GradNorm.Observe(nn.ClipGrads(grads, 5))
			t.tel.Steps.Inc()
			t.opt.Step(t.net)
		}
		t.epDone = ep + 1
		if opts.ShouldSave(t.epDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, t, opts.Keep); err != nil {
				t.exploring = false
				return stats, err
			}
		}
	}
	t.exploring = false
	return stats, nil
}

// Entropy returns the mean policy entropy over a sample of observations,
// a diagnostic used in tests.
func (t *TBA) Entropy(obs []sim.Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range obs {
		logits := t.net.Forward1(o.Features)
		mask := make([]bool, sim.NumActions)
		for i := range mask {
			mask[i] = o.Mask[i]
		}
		sum += nn.Entropy(nn.Softmax(logits, mask))
	}
	return sum / float64(len(obs))
}
