package policy

import (
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// TBA is the Trip Bandit Approach of the SIGSPATIAL Cup 2019 [6]: a
// reinforcement-learning policy trained with the plain REINFORCE rule [24].
// Its two defining differences from FairMove, both preserved here: (i)
// agents are purely competitive — the reward is each taxi's own profit with
// no fairness term — and (ii) there is no critic; returns are Monte-Carlo
// with a running mean baseline.
type TBA struct {
	Gamma  float64
	LR     float64
	Hidden []int
	// Env builds the training environments; nil means the sequential
	// engine. Install shard.Builder(k) to train on the sharded engine.
	Env sim.EnvBuilder
	// Workers bounds the goroutines for batched actor inference and
	// parallel demonstration rollouts; <= 0 means GOMAXPROCS. Results are
	// byte-identical for any value.
	Workers int

	net *nn.MLP
	opt *nn.Adam
	src *rng.Source

	// Batch-update scratch, reused across chunks (see DESIGN.md §9): bcX
	// holds observation rows, bcGrad the fused policy-gradient rows, bcProbs
	// the per-row softmax buffer, bcAdvs the per-transition advantages of
	// the REINFORCE pass. Never serialized.
	bcX     *nn.Mat
	bcGrad  *nn.Mat
	bcProbs []float64
	bcAdvs  []float64
	bcIdx   []int

	// running return baseline
	baseline float64
	baseN    int

	// demo holds Pretrain transitions; Train replays behavior-cloning
	// batches from it to anchor the actor while REINFORCE returns are noisy.
	demo []Transition

	exploring bool

	// resume cursors (see the DQN fields of the same name). fineTuning
	// records that Train already swapped in the gentler optimizer, so a
	// resumed run keeps the warm-start optimizer state instead of resetting
	// it a second time.
	demoDone   int
	epDone     int
	fineTuning bool

	tel TrainTel
}

// SetTelemetry installs (or, with nil, removes) training telemetry under the
// "tba." prefix.
func (t *TBA) SetTelemetry(r *telemetry.Registry) { t.tel = NewTrainTel(r, "tba") }

// NewTBA returns an untrained TBA baseline.
func NewTBA(seed int64) *TBA {
	t := &TBA{
		Gamma:  0.9,
		LR:     0.001,
		Hidden: []int{64},
		src:    rng.SplitStable(seed, "tba-init"),
	}
	sizes := append([]int{sim.FeatureSize}, t.Hidden...)
	sizes = append(sizes, sim.NumActions)
	t.net = nn.NewMLP(t.src, sizes, nn.Tanh, nn.Identity)
	t.opt = nn.NewAdam(t.LR)
	return t
}

// Name implements Policy.
func (t *TBA) Name() string { return "TBA" }

// BeginEpisode implements Policy.
func (t *TBA) BeginEpisode(seed int64) { t.src = rng.SplitStable(seed, "tba") }

// sample draws an action from the masked softmax policy. Sampling is used
// at evaluation time too: identical agents sharing an observation disperse
// naturally under a stochastic policy, where an argmax would herd them.
func (t *TBA) sample(obs sim.Observation) int {
	logits := t.net.Forward1(obs.Features)
	return t.src.WeightedChoice(nn.Softmax(logits, obs.Mask[:]))
}

// Act implements Policy. Observations are collected serially (Observe
// refreshes env caches), the shared actor evaluates all rows sharded across
// Workers, and sampling then consumes t.src serially in vacant order — the
// same draw sequence as a per-taxi loop, so output is byte-identical for
// any worker count.
func (t *TBA) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	actions := make(map[int]sim.Action, len(vacant))
	obs := make([]sim.Observation, len(vacant))
	rows := make([][]float64, len(vacant))
	for i, id := range vacant {
		obs[i] = env.Observe(id)
		rows[i] = obs[i].Features
	}
	logits := t.net.ForwardRows(rows, t.Workers)
	if t.bcProbs == nil {
		t.bcProbs = make([]float64, sim.NumActions)
	}
	for i, id := range vacant {
		probs := nn.SoftmaxInto(logits[i], obs[i].Mask[:], t.bcProbs)
		actions[id] = sim.ActionFromIndex(t.src.WeightedChoice(probs))
	}
	return actions
}

// gradStep takes one batched policy-gradient step on transitions
// buf[idxs[start..end)] (idxs nil means buf[start..end) directly): one
// batched forward, fused per-row gradients, one batched backward, then a
// clipped optimizer step. advs holds per-selection advantages indexed like
// idxs (nil means unit advantage — the behavior-cloning case); every row is
// scaled by scale.
func (t *TBA) gradStep(buf []Transition, idxs []int, start, end int, advs []float64, scale float64) {
	n := end - start
	t.net.ZeroGrad()
	t.bcX = nn.EnsureMat(t.bcX, n, sim.FeatureSize)
	at := func(b int) *Transition {
		if idxs != nil {
			return &buf[idxs[start+b]]
		}
		return &buf[start+b]
	}
	for b := 0; b < n; b++ {
		t.bcX.SetRow(b, at(b).Obs)
	}
	logits := t.net.Forward(t.bcX, true)
	t.bcGrad = nn.EnsureMat(t.bcGrad, n, sim.NumActions)
	if t.bcProbs == nil {
		t.bcProbs = make([]float64, sim.NumActions)
	}
	for b := 0; b < n; b++ {
		tr := at(b)
		adv := 1.0
		if advs != nil {
			adv = advs[start+b]
		}
		nn.PolicyGradientRowInto(logits.Row(b), tr.Mask[:], tr.Action, adv, 0, scale, t.bcProbs, t.bcGrad.Row(b))
	}
	t.net.Backward(t.bcGrad)
	_, grads := t.net.Params()
	t.tel.GradNorm.Observe(nn.ClipGrads(grads, 5))
	t.tel.Steps.Inc()
	t.opt.Step(t.net)
}

// Pretrain behavior-clones the actor toward guide's decisions over
// demonstration episodes — a warm start before REINFORCE fine-tuning. The
// cross-entropy gradient is the policy gradient with unit advantage.
//
// Rollouts are guide-driven, so episodes fan out across Workers and the
// cloning updates consume them serially in episode order — byte-identical
// to a serial run.
func (t *TBA) Pretrain(city *synth.City, guide Policy, episodes, days int, seed int64) {
	_ = t.PretrainCheckpointed(city, guide, episodes, days, seed, checkpoint.TrainOptions{})
}

// PretrainCheckpointed is Pretrain with a checkpoint cadence, resuming past
// the demonstration episodes a loaded checkpoint already consumed.
func (t *TBA) PretrainCheckpointed(city *synth.City, guide Policy, episodes, days int, seed int64, opts checkpoint.TrainOptions) error {
	from := t.demoDone
	bufs := CollectDemosFrom(t.Env, city, guide, from, episodes, days, seed, t.Workers, 1.0, t.Gamma)
	for i, batch := range bufs {
		ep := from + i
		t.BeginEpisode(DemoEpisodeSeed(seed, ep))
		for start := 0; start < len(batch); start += 64 {
			end := min(start+64, len(batch))
			t.gradStep(batch, nil, start, end, nil, 1.0)
		}
		t.demo = append(t.demo, batch...)
		t.demoDone = ep + 1
		if opts.ShouldSave(t.demoDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, t, opts.Keep); err != nil {
				return err
			}
		}
	}
	return nil
}

// Train runs REINFORCE episodes until `episodes` total are complete. Rewards
// are selfish (α = 1: own profit only), matching the competitive setting
// of [6].
func (t *TBA) Train(city *synth.City, episodes, days int, seed int64) TrainStats {
	stats, _ := t.TrainCheckpointed(city, episodes, days, seed, checkpoint.TrainOptions{})
	return stats
}

// TrainCheckpointed is Train with a checkpoint cadence.
func (t *TBA) TrainCheckpointed(city *synth.City, episodes, days int, seed int64, opts checkpoint.TrainOptions) (TrainStats, error) {
	stats := TrainStats{Episodes: episodes}
	env := sim.BuildEnv(t.Env, city, sim.DefaultOptions(days), seed)

	// Gentle fine-tuning after a warm start (see FairMove.Train): REINFORCE
	// returns are noisy, so polish rather than overwrite the demonstrated
	// policy. The fineTuning flag survives checkpoints, so a resumed run
	// keeps polishing with the optimizer state it saved instead of resetting
	// the moments a second time.
	if len(t.demo) > 0 && !t.fineTuning {
		t.opt = nn.NewAdam(t.LR * 0.1)
	}
	t.fineTuning = true
	for ep := t.epDone; ep < episodes; ep++ {
		epSeed := seed + int64(ep)
		env.Reset(epSeed)
		t.BeginEpisode(epSeed)
		t.exploring = true

		var batch []Transition
		stopEp := t.tel.EpisodeTime.Start()
		mean := RunEpisode(env,
			func(id int, obs sim.Observation) int { return t.sample(obs) },
			1.0, // selfish: no fairness term
			t.Gamma,
			func(id int, tr Transition) { batch = append(batch, tr.Detach()) },
		)
		stopEp()
		t.tel.Episodes.Inc()
		t.tel.Transitions.Add(int64(len(batch)))
		t.tel.MeanReward.Set(mean)
		stats.MeanReward = append(stats.MeanReward, mean)

		// Demonstration anchor (see FairMove): occasional cloning batches
		// keep the actor near competent behavior while returns are noisy.
		if cap(t.bcIdx) < 64 {
			t.bcIdx = make([]int, 64)
		}
		for i := 0; i+64 <= len(t.demo) && i < 20*64; i += 64 {
			idxs := t.bcIdx[:64]
			for b := 0; b < 64; b++ {
				idxs[b] = t.src.Intn(len(t.demo))
			}
			t.gradStep(t.demo, idxs, 0, 64, nil, 1.0/64)
		}

		// REINFORCE update over the episode's decisions with a running
		// baseline: ∇ = Σ (G − b) ∇ log π(a|s). The baseline recursion is
		// network-independent, so a first pass folds every return into it and
		// records the surviving (non-zero advantage) transitions; the policy
		// gradients then run as batched 64-row steps over that selection.
		t.bcIdx = t.bcIdx[:0]
		t.bcAdvs = t.bcAdvs[:0]
		for i, tr := range batch {
			g := tr.Reward
			t.baseN++
			t.baseline += (g - t.baseline) / float64(t.baseN)
			adv := g - t.baseline
			if adv == 0 {
				continue
			}
			t.bcIdx = append(t.bcIdx, i)
			t.bcAdvs = append(t.bcAdvs, adv)
		}
		for start := 0; start < len(t.bcIdx); start += 64 {
			end := min(start+64, len(t.bcIdx))
			t.gradStep(batch, t.bcIdx, start, end, t.bcAdvs, 1.0)
		}
		t.epDone = ep + 1
		if opts.ShouldSave(t.epDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, t, opts.Keep); err != nil {
				t.exploring = false
				return stats, err
			}
		}
	}
	t.exploring = false
	return stats, nil
}

// Entropy returns the mean policy entropy over a sample of observations,
// a diagnostic used in tests.
func (t *TBA) Entropy(obs []sim.Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range obs {
		logits := t.net.Forward1(o.Features)
		sum += nn.Entropy(nn.Softmax(logits, o.Mask[:]))
	}
	return sum / float64(len(obs))
}
