// Package policy defines the displacement-policy interface and implements
// the paper's five baselines: ground-truth driver behavior (GT),
// shortest-distance displacement (SD2), tabular Q-learning (TQL), Deep
// Q-Networks (DQN), and the REINFORCE-based trip bandit (TBA). The paper's
// contribution, CMA2C, lives in internal/core and shares the episode
// harness and reward definition declared here.
package policy

import (
	"repro/internal/sim"
)

// Policy decides one displacement action per vacant taxi each time slot.
type Policy interface {
	// Name identifies the strategy in reports (e.g. "SD2").
	Name() string
	// Act returns actions for the given vacant taxis. Missing entries
	// default to Stay. Implementations must respect the environment's
	// action mask; violations are coerced and counted.
	Act(env sim.Environment, vacant []int) map[int]sim.Action
	// BeginEpisode resets any per-episode state (e.g. exploration).
	BeginEpisode(seed int64)
}

// RewardScale normalizes Eq. 5 rewards before they reach value networks;
// fares are tens of CNY so raw slot-PE values are O(100).
const RewardScale = 0.01

// SlotReward computes the paper's blended reward r(k,t) (Eq. 4-5) for taxi
// id over the slot just simulated: α times the taxi's slot profit
// efficiency minus (1-α) times the fairness penalty. The penalty is the
// per-slot *change* of the fleet PE variance ΔPF(t) rather than its level:
// the sum of deltas telescopes to the same episode objective, but the level
// is a shared constant no single action controls, and feeding it raw drowns
// the per-agent credit signal (it grows to hundreds while a slot's profit
// term is O(10)). pfDelta is passed in so callers evaluate it once per slot.
func SlotReward(env sim.Environment, id int, alpha, pfDelta float64) float64 {
	slotHours := float64(env.SlotLen()) / 60
	pe := env.SlotProfit(id) / slotHours
	return (alpha*pe - (1-alpha)*pfDelta) * RewardScale
}

// Transition is one semi-MDP learning sample: the observation and action at
// a decision slot, the discounted reward accumulated until the taxi's next
// decision, and the observation there. Elapsed counts slots between the two
// decisions (≥1), used to discount the bootstrap term by gamma^Elapsed.
//
// Inside RunEpisode's onTransition callback, Obs and NextObs borrow reused
// buffers that the same taxi's next decision overwrites: a callback that
// stores the transition beyond its own return must Detach it (or copy the
// slices into storage it owns, as the DQN replay ring does).
type Transition struct {
	Obs      []float64
	Mask     [sim.NumActions]bool
	Action   int // flattened action index
	Reward   float64
	NextObs  []float64
	NextMask [sim.NumActions]bool
	Elapsed  int
	Terminal bool
}

// Detach returns the transition with Obs and NextObs copied into fresh
// storage, safe to keep after the onTransition callback returns. A nil
// NextObs (terminal transitions) stays nil.
func (tr Transition) Detach() Transition {
	tr.Obs = append([]float64(nil), tr.Obs...)
	if tr.NextObs != nil {
		tr.NextObs = append([]float64(nil), tr.NextObs...)
	}
	return tr
}

// Chooser selects a flattened action index given a taxi's observation.
type Chooser func(id int, obs sim.Observation) int

// RunEpisode drives env to completion, choosing actions with choose,
// accumulating Eq. 5 rewards with the given alpha and gamma, and invoking
// onTransition for every closed semi-MDP transition. It returns the mean
// per-decision reward (the "average reward r" of Table IV).
//
// A transition opens when a vacant taxi acts and closes at that taxi's next
// decision (or at the horizon, marked Terminal). Rewards earned in the
// intervening slots — fares collected, charging costs paid, and the fleet
// fairness term — are discounted by gamma per slot.
func RunEpisode(env sim.Environment, choose Chooser, alpha, gamma float64, onTransition func(id int, tr Transition)) (meanReward float64) {
	type pending struct {
		// feats is a pend-owned copy of the opening observation's features:
		// Observation.Features borrows an env buffer the same taxi's next
		// Observe rewrites, and a transition stays open across many slots.
		feats   []float64
		mask    [sim.NumActions]bool
		action  int
		reward  float64
		gammaPw float64
		elapsed int
		open    bool
	}
	pend := make([]pending, len(env.City().Fleet))

	var rewardSum float64
	var rewardN int
	_, pfPrev := env.FleetPEStats()

	actions := make(map[int]sim.Action)
	for !env.Done() {
		vacant := env.VacantTaxis()
		clear(actions)
		for _, id := range vacant {
			obs := env.Observe(id)
			// Close the previous transition at this new decision point.
			if pend[id].open && onTransition != nil {
				onTransition(id, Transition{
					Obs:      pend[id].feats,
					Mask:     pend[id].mask,
					Action:   pend[id].action,
					Reward:   pend[id].reward,
					NextObs:  obs.Features,
					NextMask: obs.Mask,
					Elapsed:  pend[id].elapsed,
				})
			}
			idx := choose(id, obs)
			actions[id] = sim.ActionFromIndex(idx)
			p := &pend[id]
			p.feats = append(p.feats[:0], obs.Features...)
			p.mask = obs.Mask
			p.action = idx
			p.reward = 0
			p.gammaPw = 1
			p.elapsed = 0
			p.open = true
		}

		env.Step(actions)

		// Accrue this slot's reward into every open transition.
		_, pfNow := env.FleetPEStats()
		pfDelta := pfNow - pfPrev
		pfPrev = pfNow
		for id := range pend {
			if !pend[id].open {
				continue
			}
			r := SlotReward(env, id, alpha, pfDelta)
			pend[id].reward += pend[id].gammaPw * r
			pend[id].gammaPw *= gamma
			pend[id].elapsed++
			if _, acted := actions[id]; acted {
				rewardSum += r
				rewardN++
			}
		}
	}

	// Close transitions still open at the horizon.
	if onTransition != nil {
		for id := range pend {
			if !pend[id].open {
				continue
			}
			onTransition(id, Transition{
				Obs:      pend[id].feats,
				Mask:     pend[id].mask,
				Action:   pend[id].action,
				Reward:   pend[id].reward,
				Elapsed:  pend[id].elapsed,
				Terminal: true,
			})
		}
	}

	if rewardN == 0 {
		return 0
	}
	return rewardSum / float64(rewardN)
}

// PolicyChooser adapts a joint Policy to RunEpisode's per-taxi Chooser. The
// policy's Act is invoked once per slot; mask-invalid or missing actions
// fall back to the first valid index. It is how demonstration episodes
// (e.g. ground-truth driver behavior) are fed to off-policy learners as a
// warm start before on-policy fine-tuning.
func PolicyChooser(env sim.Environment, pol Policy) Chooser {
	slot := -1
	var acts map[int]sim.Action
	return func(id int, obs sim.Observation) int {
		if env.Slot() != slot {
			slot = env.Slot()
			acts = pol.Act(env, env.VacantTaxis())
		}
		a, ok := acts[id]
		if !ok {
			a = sim.Action{Kind: sim.Stay}
		}
		idx := sim.ActionIndex(a)
		if !obs.Mask[idx] {
			for i, valid := range obs.Mask {
				if valid {
					return i
				}
			}
		}
		return idx
	}
}

// Evaluate runs policy p over a fresh environment seeded with seed and
// returns the accounting. All strategies in the evaluation are compared on
// the same (city, seed) pair, hence on an identical demand realization.
//
// It is a thin loop over Runner — the same slot driver the online dispatch
// service steps from its event feed — so batch and served trajectories are
// byte-identical by construction.
func Evaluate(p Policy, env sim.Environment, seed int64) *sim.Results {
	r := NewRunner(p, env, seed)
	for !r.Done() {
		r.StepSlot()
	}
	return r.Results()
}
