package policy

import (
	"repro/internal/sim"
)

// Decision is one per-taxi displacement decision of a slot — the unit the
// online dispatch service returns to callers and the batch evaluation loop
// applies to the environment. Region is the taxi's region at decision time
// (before the action executes).
type Decision struct {
	Slot   int
	Taxi   int
	Region int
	Action sim.Action
}

// Runner owns the slot-by-slot decision loop: ask the policy for one action
// per vacant taxi, apply them, advance the environment one slot. It is the
// seam the serve refactor split out of Evaluate — the batch path
// (policy.Evaluate) and the online dispatch service (internal/serve) drive
// the identical loop, so a served trajectory is byte-identical to a batch
// run of the same (policy, env, seed) by construction, and the
// serve-equivalence golden test pins it.
//
// A Runner is single-goroutine, like the Environment it wraps.
type Runner struct {
	env sim.Environment
	pol Policy

	// decisions is the reused per-slot output buffer: StepSlot overwrites it
	// on every call, so callers that retain decisions must copy them.
	decisions []Decision
	slots     int
}

// NewRunner resets env with seed, begins the policy's episode, and returns a
// runner positioned at slot 0. The reset/begin order matches what Evaluate
// has always done, which is what keeps the two paths byte-identical.
func NewRunner(p Policy, env sim.Environment, seed int64) *Runner {
	env.Reset(seed)
	p.BeginEpisode(seed)
	return &Runner{env: env, pol: p}
}

// Env returns the wrapped environment (read-only use between steps).
func (r *Runner) Env() sim.Environment { return r.env }

// Policy returns the currently installed policy.
func (r *Runner) Policy() Policy { return r.pol }

// SetPolicy atomically (from the driving goroutine's point of view: between
// slots) replaces the policy for all subsequent slots — the hot-swap seam.
// The new policy's episode begins at the given seed so learners with
// per-episode rng streams (CMA2C exploration) are initialized.
func (r *Runner) SetPolicy(p Policy, seed int64) {
	p.BeginEpisode(seed)
	r.pol = p
}

// Done reports whether the horizon has been reached.
func (r *Runner) Done() bool { return r.env.Done() }

// Slots returns how many slots StepSlot has completed.
func (r *Runner) Slots() int { return r.slots }

// StepSlot asks the policy for this slot's actions, records one Decision per
// vacant taxi (missing policy entries default to Stay, exactly as Step
// treats them), applies the actions, and advances the environment one slot.
// The returned slice is reused by the next call.
func (r *Runner) StepSlot() []Decision {
	slot := r.env.Slot()
	vacant := r.env.VacantTaxis()
	acts := r.pol.Act(r.env, vacant)
	r.decisions = r.decisions[:0]
	for _, id := range vacant {
		a, ok := acts[id]
		if !ok {
			a = sim.Action{Kind: sim.Stay}
		}
		r.decisions = append(r.decisions, Decision{
			Slot:   slot,
			Taxi:   id,
			Region: r.env.TaxiRegion(id),
			Action: a,
		})
	}
	r.env.Step(acts)
	r.slots++
	return r.decisions
}

// Results returns the environment's accounting.
func (r *Runner) Results() *sim.Results { return r.env.Results() }
