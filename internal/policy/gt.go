package policy

import (
	"repro/internal/pricing"
	"repro/internal/rng"
	"repro/internal/sim"
)

// GroundTruth replays the uncoordinated driver behavior the paper extracts
// from the raw Shenzhen data: drivers mostly stay where they are, sometimes
// drift toward known hotspots, charge at the nearest station when the
// battery is low, and — because the TOU tariff is public — opportunistically
// plug in during cheap bands. The last habit is what produces the intensive
// charging peaks of Fig. 4, and the nearest-station habit produces the
// queueing that FairMove later removes.
type GroundTruth struct {
	// WanderProb is the chance a driver drifts toward a promising adjacent
	// region instead of staying.
	WanderProb float64
	// CheapChargeProb is the chance a mid-SoC driver starts charging when
	// the tariff is off-peak.
	CheapChargeProb float64
	// CheapChargeSoC is the SoC ceiling for opportunistic charging.
	CheapChargeSoC float64

	src *rng.Source
	// savvy[id] ∈ [0,1] is driver id's skill: how accurately they know
	// where demand is and which stations are free. The spread is what
	// produces the paper's Fig. 8 earnings inequality (top-20% drivers earn
	// ~42% more than bottom-20%) that FairMove then evens out.
	savvy []float64
}

// NewGroundTruth returns the driver-behavior replay with the calibrated
// habit strengths.
func NewGroundTruth() *GroundTruth {
	return &GroundTruth{
		WanderProb:      0.35,
		CheapChargeProb: 0.5,
		CheapChargeSoC:  0.30, // must stay within the simulator's AllowChargeSoC
		src:             rng.New(0),
	}
}

// Name implements Policy.
func (g *GroundTruth) Name() string { return "GT" }

// BeginEpisode implements Policy.
func (g *GroundTruth) BeginEpisode(seed int64) {
	g.src = rng.SplitStable(seed, "gt")
	g.savvy = nil // regenerated lazily at the fleet size observed
}

// driverSavvy returns (building on first use) the per-driver skill levels.
func (g *GroundTruth) driverSavvy(fleet int) []float64 {
	if len(g.savvy) != fleet {
		skillSrc := rng.SplitStable(int64(fleet), "gt-savvy")
		g.savvy = make([]float64, fleet)
		for i := range g.savvy {
			g.savvy[i] = skillSrc.Float64()
		}
	}
	return g.savvy
}

// Act implements Policy.
func (g *GroundTruth) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	actions := make(map[int]sim.Action, len(vacant))
	tariff := env.City().Tariff
	band := tariff.BandAt(env.Now())
	savvy := g.driverSavvy(len(env.City().Fleet))
	for _, id := range vacant {
		soc := env.TaxiSoC(id)
		switch {
		case soc < 0.20:
			// Forced: a nearby station. Savvy drivers disperse by their
			// rough knowledge of occupancy; the rest just go to the nearest
			// (and inherit its queue).
			actions[id] = sim.Action{Kind: sim.Charge, Arg: g.pickStation(env, id, savvy[id])}
		case soc < g.CheapChargeSoC && band == pricing.OffPeak && g.src.Bool(g.CheapChargeProb):
			// Opportunistic cheap charging — everyone has the same idea,
			// hence the off-peak charging peaks of Fig. 4.
			actions[id] = sim.Action{Kind: sim.Charge, Arg: g.pickStation(env, id, savvy[id])}
		case g.lowLocalDemand(env, id, savvy[id]) && g.src.Bool(g.WanderProb):
			// Drivers drift when their region is dead. Savvy drivers head
			// toward the genuinely busiest neighbor; the rest guess.
			actions[id] = sim.Action{Kind: sim.Move, Arg: g.pickNeighbor(env, id, savvy[id])}
		default:
			actions[id] = sim.Action{Kind: sim.Stay}
		}
	}
	return actions
}

// pickStation chooses a station rank. Savvy drivers weight the nearest
// stations by free capacity; unsavvy ones take the nearest regardless.
func (g *GroundTruth) pickStation(env sim.Environment, id int, savvy float64) int {
	// Even savvy drivers only sometimes know the live occupancy; most of
	// the time everyone defaults to the nearest station, which is what
	// crowds popular stations during the cheap bands (Fig. 4) and gives
	// FairMove its idle-time headroom (Fig. 13).
	if !g.src.Bool(savvy * 0.6) {
		return 0
	}
	ns := env.NearStations(env.TaxiRegion(id))
	weights := make([]float64, 0, sim.KStations)
	for k := 0; k < len(ns) && k < sim.KStations; k++ {
		st := env.StationState(ns[k].Label)
		free := float64(st.Free()) - float64(st.QueueLen())
		if free < 0.5 {
			free = 0.5
		}
		// Nearer stations are preferred all else equal.
		weights = append(weights, free/(1+ns[k].DistKm))
	}
	if len(weights) == 0 {
		return 0
	}
	return g.src.WeightedChoice(weights)
}

// pickNeighbor chooses a move target. Savvy drivers know the busiest
// neighbor; the rest wander at random.
func (g *GroundTruth) pickNeighbor(env sim.Environment, id int, savvy float64) int {
	nbs := env.City().Partition.Region(env.TaxiRegion(id)).Neighbors
	n := len(nbs)
	if n > sim.MaxNeighbors {
		n = sim.MaxNeighbors
	}
	if n == 0 {
		return 0
	}
	if !g.src.Bool(savvy) {
		return g.src.Intn(n)
	}
	return g.busiestNeighbor(env, id, savvy)
}

// perceivedDemand is a driver's estimate of a region's demand this slot.
// Drivers know the city's long-run hotspots (the folk prior: each region's
// time-averaged request level) but not the time-resolved picture — that
// real-time + historical forecast is precisely the informational edge the
// paper's centralized system has (Section III). Savvy drivers blend in the
// actual time-of-day truth; everyone's estimate carries residual noise.
// The folk prior is why GT drivers hold famous hotspots at 3 a.m. while
// demand is elsewhere — the long pre-dawn cruises FairMove removes in
// Fig. 11.
func (g *GroundTruth) perceivedDemand(env sim.Environment, region int, savvy float64) float64 {
	m := env.City().Demand
	folk := m.Profile(region).BasePerHour * m.Scale / 60 * float64(env.SlotLen())
	truth := m.ExpectedSlotDemand(region, env.Now(), env.SlotLen())
	p := folk*(1-savvy) + truth*savvy
	return p * g.src.LogNormal(0, 0.4)
}

// lowLocalDemand reports whether the driver believes their region is dead.
func (g *GroundTruth) lowLocalDemand(env sim.Environment, id int, savvy float64) bool {
	return g.perceivedDemand(env, env.TaxiRegion(id), savvy) < 0.5
}

// busiestNeighbor returns the index of the adjacent region the driver
// believes is busiest.
func (g *GroundTruth) busiestNeighbor(env sim.Environment, id int, savvy float64) int {
	region := env.TaxiRegion(id)
	nbs := env.City().Partition.Region(region).Neighbors
	best, bestV := 0, -1.0
	for i, nb := range nbs {
		if i >= sim.MaxNeighbors {
			break
		}
		v := g.perceivedDemand(env, nb, savvy)
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
