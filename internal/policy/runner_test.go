package policy

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/synth"
)

// TestRunnerMatchesEvaluate pins the driver/core split introduced for the
// online dispatch service: Evaluate is now a thin loop over Runner, and a
// hand-driven Runner must produce the identical Results as Evaluate on a
// fresh environment with the same (policy, city, seed).
func TestRunnerMatchesEvaluate(t *testing.T) {
	const seed = 51
	city, err := synth.Build(synth.MicroConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions(1)

	evalEnv := sim.New(city, opts, seed)
	want := Evaluate(NewGroundTruth(), evalEnv, seed)

	runEnv := sim.New(city, opts, seed)
	r := NewRunner(NewGroundTruth(), runEnv, seed)
	for !r.Done() {
		r.StepSlot()
	}
	got := r.Results()

	if got.ServedRequests != want.ServedRequests || got.UnservedRequests != want.UnservedRequests {
		t.Fatalf("served/unserved diverged: runner %d/%d, evaluate %d/%d",
			got.ServedRequests, got.UnservedRequests, want.ServedRequests, want.UnservedRequests)
	}
	if got.FleetProfit() != want.FleetProfit() {
		t.Fatalf("fleet profit diverged: runner %v, evaluate %v", got.FleetProfit(), want.FleetProfit())
	}
	if len(got.TripStats) != len(want.TripStats) {
		t.Fatalf("trip stats diverged: runner %d, evaluate %d", len(got.TripStats), len(want.TripStats))
	}
	wantSlots := runEnv.Slot()
	if r.Slots() != wantSlots {
		t.Fatalf("runner counted %d slots, environment ran %d", r.Slots(), wantSlots)
	}
}

// TestRunnerDecisionsDeterministic: two runners over the same seed record
// identical decision streams, and every decision covers exactly the vacant
// taxis of its slot (missing policy entries surface as explicit Stay).
func TestRunnerDecisionsDeterministic(t *testing.T) {
	const seed = 52
	city, err := synth.Build(synth.MicroConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	record := func() []Decision {
		env := sim.New(city, sim.DefaultOptions(1), seed)
		r := NewRunner(NewGroundTruth(), env, seed)
		var all []Decision
		for i := 0; i < 24 && !r.Done(); i++ {
			vacant := len(env.VacantTaxis())
			ds := r.StepSlot()
			if len(ds) != vacant {
				t.Fatalf("slot %d: %d decisions for %d vacant taxis", i, len(ds), vacant)
			}
			all = append(all, append([]Decision(nil), ds...)...)
		}
		return all
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("decision streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRunnerSetPolicySwitchesMidRun: SetPolicy takes effect on the next slot
// and the environment keeps advancing — the contract the serve hot swap
// builds on.
func TestRunnerSetPolicySwitchesMidRun(t *testing.T) {
	const seed = 53
	city, err := synth.Build(synth.MicroConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	env := sim.New(city, sim.DefaultOptions(1), seed)
	r := NewRunner(NewGroundTruth(), env, seed)
	r.StepSlot()
	if r.Policy().Name() != "GT" {
		t.Fatalf("serving %q, want GT", r.Policy().Name())
	}
	r.SetPolicy(NewSD2(), seed)
	if r.Policy().Name() != "SD2" {
		t.Fatalf("serving %q after swap, want SD2", r.Policy().Name())
	}
	before := env.Slot()
	r.StepSlot()
	if env.Slot() != before+1 {
		t.Fatalf("swap stalled the clock: slot %d -> %d", before, env.Slot())
	}
}
