package policy

import (
	"math"

	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// DQN is the Deep Q-Network baseline [23]: a single network shared by all
// agents maps the observation to one Q-value per displacement action and is
// trained by minimizing the TD loss against a periodically updated target
// network, with experience replay and an ε-greedy behavior policy. The
// reward is the same Eq. 5 blend as FairMove.
type DQN struct {
	Alpha   float64 // reward blend α
	Gamma   float64 // discount β
	Epsilon float64 // initial exploration
	MinEps  float64
	Hidden  []int // hidden layer widths
	LR      float64
	Batch   int
	Buffer  int // replay capacity
	// TargetEvery is the number of gradient steps between target updates.
	TargetEvery int
	// CQLAlpha weights a conservative penalty that pushes down the Q-values
	// of actions absent from the replay data while raising the taken
	// action's. Without it, actions never tried in the demonstrations keep
	// their random initialization and the greedy policy exploits them —
	// the standard offline-RL overestimation failure.
	CQLAlpha float64
	// Env builds the training environments; nil means the sequential
	// engine. Install shard.Builder(k) to train on the sharded engine.
	Env sim.EnvBuilder

	// Workers bounds the goroutines used for batched Q-network inference
	// and parallel demonstration rollouts; <= 0 means GOMAXPROCS. Any value
	// produces byte-identical results — it only changes wall-clock.
	Workers int

	// EvalEpsilon adds a small random-valid-action rate at evaluation time.
	// A deterministic argmax executed simultaneously by every agent in a
	// region herds them onto one station; a little jitter restores the
	// dispersion a centralized dispatcher would impose.
	EvalEpsilon float64

	net    *nn.MLP
	target *nn.MLP
	opt    *nn.Adam
	replay []Transition
	rpPos  int
	src    *rng.Source
	steps  int

	// learn/Act scratch, reused call to call (shapes are fixed by Batch and
	// the observation/action widths, so steady-state training allocates
	// nothing here). lxn holds the minibatch next-observations for the
	// batched target-network pass. Never serialized.
	lx      *nn.Mat
	lxn     *nn.Mat
	lgrad   *nn.Mat
	lidx    []int
	actObs  []sim.Observation
	actRows [][]float64

	exploring bool
	eps       float64

	// resume cursors: completed pretraining and fine-tuning episodes.
	// Checkpoints are cut at episode boundaries, and every per-episode
	// stream re-derives from (seed, episode), so these two counters plus
	// the serialized state above fully determine the rest of a run.
	demoDone int
	epDone   int

	tel TrainTel
}

// SetTelemetry installs (or, with nil, removes) training telemetry under the
// "dqn." prefix.
func (d *DQN) SetTelemetry(r *telemetry.Registry) { d.tel = NewTrainTel(r, "dqn") }

// NewDQN returns an untrained DQN with the paper's optimizer settings
// (Adam, lr 0.001) at a batch size scaled to the repro fleet.
func NewDQN(alpha float64, seed int64) *DQN {
	d := &DQN{
		Alpha:       alpha,
		Gamma:       0.9,
		Epsilon:     0.15,
		MinEps:      0.05,
		Hidden:      []int{64, 64},
		LR:          0.001,
		Batch:       64,
		Buffer:      50000,
		TargetEvery: 200,
		EvalEpsilon: 0.03,
		CQLAlpha:    0.3,
		src:         rng.SplitStable(seed, "dqn-init"),
	}
	sizes := append([]int{sim.FeatureSize}, d.Hidden...)
	sizes = append(sizes, sim.NumActions)
	d.net = nn.NewMLP(d.src, sizes, nn.ReLU, nn.Identity)
	d.target = d.net.Clone()
	d.opt = nn.NewAdam(d.LR)
	d.eps = d.Epsilon
	return d
}

// Name implements Policy.
func (d *DQN) Name() string { return "DQN" }

// BeginEpisode implements Policy.
func (d *DQN) BeginEpisode(seed int64) { d.src = rng.SplitStable(seed, "dqn") }

// greedy returns the valid action with the highest Q.
func (d *DQN) greedy(net *nn.MLP, obs []float64, mask [sim.NumActions]bool) (int, float64) {
	return maskedArgmax(net.Forward1(obs), mask)
}

// maskedArgmax returns the valid action with the highest Q in a float32
// Q-row, or (0, 0) when no action is valid — the convention greedy always
// used.
func maskedArgmax(qs []float32, mask [sim.NumActions]bool) (int, float64) {
	best, bestQ := -1, math.Inf(-1)
	for i := 0; i < sim.NumActions; i++ {
		if mask[i] && float64(qs[i]) > bestQ {
			best, bestQ = i, float64(qs[i])
		}
	}
	if best < 0 {
		return 0, 0
	}
	return best, bestQ
}

func (d *DQN) choose(obs sim.Observation) int {
	eps := d.EvalEpsilon
	if d.exploring {
		eps = d.eps
	}
	if d.src.Bool(eps) {
		var valid []int
		for i, ok := range obs.Mask {
			if ok {
				valid = append(valid, i)
			}
		}
		if len(valid) == 0 {
			return 0
		}
		return valid[d.src.Intn(len(valid))]
	}
	a, _ := d.greedy(d.net, obs.Features, obs.Mask)
	return a
}

// chooseFromQ is choose with the Q-row already evaluated. The ε draw comes
// first, exactly as in choose, so the d.src draw sequence is unchanged.
func (d *DQN) chooseFromQ(obs sim.Observation, qs []float32, eps float64) int {
	if d.src.Bool(eps) {
		var valid []int
		for i, ok := range obs.Mask {
			if ok {
				valid = append(valid, i)
			}
		}
		if len(valid) == 0 {
			return 0
		}
		return valid[d.src.Intn(len(valid))]
	}
	a, _ := maskedArgmax(qs, obs.Mask)
	return a
}

// Act implements Policy (greedy over the learned network). Observations are
// collected serially (Observe refreshes env caches), the shared network
// evaluates all rows sharded across Workers (weights read-only), and the
// ε-greedy draws then consume d.src serially in vacant order — the same
// draw sequence as a per-taxi loop, so output is byte-identical for any
// worker count.
func (d *DQN) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	actions := make(map[int]sim.Action, len(vacant))
	if cap(d.actObs) < len(vacant) {
		d.actObs = make([]sim.Observation, len(vacant))
		d.actRows = make([][]float64, len(vacant))
	}
	obs := d.actObs[:len(vacant)]
	rows := d.actRows[:len(vacant)]
	for i, id := range vacant {
		obs[i] = env.Observe(id)
		rows[i] = obs[i].Features
	}
	qs := d.net.ForwardRows(rows, d.Workers)
	eps := d.EvalEpsilon
	if d.exploring {
		eps = d.eps
	}
	for i, id := range vacant {
		actions[id] = sim.ActionFromIndex(d.chooseFromQ(obs[i], qs[i], eps))
	}
	return actions
}

// remember stores a transition in the fixed-capacity ring-buffer replay
// memory, copying Obs/NextObs into the slot's own storage — the incoming
// slices borrow RunEpisode/env buffers, and an overwritten slot donates its
// old backing arrays, so a full ring recycles storage instead of allocating.
func (d *DQN) remember(tr Transition) {
	d.tel.Transitions.Inc()
	var slot *Transition
	if len(d.replay) < d.Buffer {
		d.replay = append(d.replay, Transition{})
		slot = &d.replay[len(d.replay)-1]
	} else {
		slot = &d.replay[d.rpPos]
		d.rpPos = (d.rpPos + 1) % d.Buffer
	}
	obs, next := slot.Obs, slot.NextObs
	*slot = tr
	slot.Obs = append(obs[:0], tr.Obs...)
	if tr.NextObs != nil {
		slot.NextObs = append(next[:0], tr.NextObs...)
	} else {
		slot.NextObs = nil
	}
}

// learn samples a minibatch and takes one TD step:
// L(θ) = E[(Q(s,a;θ) − y)²], y = r + β^elapsed · max_a' Q̂(s',a').
func (d *DQN) learn() {
	if len(d.replay) < d.Batch {
		return
	}
	d.net.ZeroGrad()
	if d.lx == nil {
		d.lx = nn.NewMat(d.Batch, sim.FeatureSize)
		d.lxn = nn.NewMat(d.Batch, sim.FeatureSize)
		d.lgrad = nn.NewMat(d.Batch, sim.NumActions)
		d.lidx = make([]int, d.Batch)
	}
	x, xn, grad, idxs := d.lx, d.lxn, d.lgrad, d.lidx
	// x's and xn's rows are fully overwritten below; grad is sparse and must
	// start from zero. Terminal transitions bootstrap zero, so their xn rows
	// are zeroed and the target row discarded — the batch shape stays fixed.
	for i := range grad.Data {
		grad.Data[i] = 0
	}
	for b := 0; b < d.Batch; b++ {
		idxs[b] = d.src.Intn(len(d.replay))
		tr := &d.replay[idxs[b]]
		x.SetRow(b, tr.Obs)
		if tr.Terminal || tr.NextObs == nil {
			row := xn.Row(b)
			for j := range row {
				row[j] = 0
			}
		} else {
			xn.SetRow(b, tr.NextObs)
		}
	}
	// Online prediction and target evaluation are each one batched GEMM pass
	// per layer instead of per-sample loops.
	pred := d.net.Forward(x, true)
	nextQ := d.target.ForwardBatch(xn, 1)
	for b := 0; b < d.Batch; b++ {
		tr := d.replay[idxs[b]]
		y := tr.Reward
		if !tr.Terminal {
			_, nq := maskedArgmax(nextQ.Row(b), tr.NextMask)
			y += math.Pow(d.Gamma, float64(tr.Elapsed)) * nq
		}
		// Gradient only on the taken action's output.
		diff := pred.At(b, tr.Action) - y
		grad.Set(b, tr.Action, 2*diff/float64(d.Batch))
		// Conservative penalty (CQL-lite): lift the taken action relative
		// to every other valid action.
		if d.CQLAlpha > 0 {
			var valid int
			for j := 0; j < sim.NumActions; j++ {
				if tr.Mask[j] {
					valid++
				}
			}
			if valid > 1 {
				for j := 0; j < sim.NumActions; j++ {
					if tr.Mask[j] && j != tr.Action {
						grad.Set(b, j, grad.At(b, j)+d.CQLAlpha/float64(valid-1)/float64(d.Batch))
					}
				}
				grad.Set(b, tr.Action, grad.At(b, tr.Action)-d.CQLAlpha/float64(d.Batch))
			}
		}
	}
	d.net.Backward(grad)
	params, grads := d.net.Params()
	_ = params
	d.tel.GradNorm.Observe(nn.ClipGrads(grads, 5))
	d.tel.Steps.Inc()
	d.opt.Step(d.net)

	d.steps++
	if d.steps%d.TargetEvery == 0 {
		d.target.CopyWeightsFrom(d.net)
	}
}

// Pretrain seeds the replay buffer with demonstration episodes driven by
// guide and performs offline Q-learning steps on them — a warm start before
// on-policy Train. Q-learning is off-policy, so learning from ground-truth
// driver trajectories is sound and lets the network start from competent
// behavior instead of random queue-flooding exploration.
//
// Rollouts are guide-driven (the learner's weights never influence the
// trajectories), so episodes fan out across Workers; the replay buffer and
// the offline sweeps then consume them serially in episode order, keeping
// the result byte-identical to a serial run.
func (d *DQN) Pretrain(city *synth.City, guide Policy, episodes, days int, seed int64) {
	_ = d.PretrainCheckpointed(city, guide, episodes, days, seed, checkpoint.TrainOptions{})
}

// PretrainCheckpointed is Pretrain with a checkpoint cadence. Pretraining
// resumes past the demonstration episodes a loaded checkpoint already
// consumed; the completed run is byte-identical to an unbroken one.
func (d *DQN) PretrainCheckpointed(city *synth.City, guide Policy, episodes, days int, seed int64, opts checkpoint.TrainOptions) error {
	from := d.demoDone
	bufs := CollectDemosFrom(d.Env, city, guide, from, episodes, days, seed, d.Workers, d.Alpha, d.Gamma)
	for i, buf := range bufs {
		ep := from + i
		// Restore d.src exactly where the serial loop left it: reset at the
		// top of the episode and untouched by the guide-driven rollout.
		d.BeginEpisode(DemoEpisodeSeed(seed, ep))
		for _, tr := range buf {
			d.remember(tr)
		}
		// Offline sweep over the demonstration data.
		steps := len(d.replay) / d.Batch
		for s := 0; s < steps; s++ {
			d.learn()
		}
		d.demoDone = ep + 1
		if opts.ShouldSave(d.demoDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, d, opts.Keep); err != nil {
				return err
			}
		}
	}
	return nil
}

// Train runs episodes of environment interaction with replay learning,
// continuing until `episodes` total fine-tuning episodes are complete. A
// learner restored from a mid-run checkpoint picks up at its next episode;
// the total matters because the linear ε schedule spans all of them.
func (d *DQN) Train(city *synth.City, episodes, days int, seed int64) TrainStats {
	stats, _ := d.TrainCheckpointed(city, episodes, days, seed, checkpoint.TrainOptions{})
	return stats
}

// TrainCheckpointed is Train with a checkpoint cadence.
func (d *DQN) TrainCheckpointed(city *synth.City, episodes, days int, seed int64, opts checkpoint.TrainOptions) (TrainStats, error) {
	stats := TrainStats{Episodes: episodes}
	env := sim.BuildEnv(d.Env, city, sim.DefaultOptions(days), seed)
	for ep := d.epDone; ep < episodes; ep++ {
		epSeed := seed + int64(ep)
		env.Reset(epSeed)
		d.BeginEpisode(epSeed)
		d.exploring = true
		// Linear ε decay across episodes.
		if episodes > 1 {
			frac := float64(ep) / float64(episodes-1)
			d.eps = d.Epsilon + (d.MinEps-d.Epsilon)*frac
		}
		learnEvery := 4
		nSeen := 0
		stopEp := d.tel.EpisodeTime.Start()
		mean := RunEpisode(env,
			func(id int, obs sim.Observation) int { return d.choose(obs) },
			d.Alpha, d.Gamma,
			func(id int, tr Transition) {
				d.remember(tr)
				nSeen++
				if nSeen%learnEvery == 0 {
					d.learn()
				}
			},
		)
		stopEp()
		d.tel.Episodes.Inc()
		d.tel.MeanReward.Set(mean)
		d.tel.Epsilon.Set(d.eps)
		stats.MeanReward = append(stats.MeanReward, mean)
		d.epDone = ep + 1
		if opts.ShouldSave(d.epDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, d, opts.Keep); err != nil {
				d.exploring = false
				return stats, err
			}
		}
	}
	d.exploring = false
	stats.FinalEpsilon = d.eps
	return stats, nil
}

// Net exposes the online network (for serialization).
func (d *DQN) Net() *nn.MLP { return d.net }
