package policy

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/synth"
)

func testCity(t *testing.T, seed int64) *synth.City {
	t.Helper()
	city, err := synth.Build(synth.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestEvaluateRunsAllPolicies(t *testing.T) {
	city := testCity(t, 1)
	env := sim.New(city, sim.DefaultOptions(1), 1)
	policies := []Policy{NewGroundTruth(), NewSD2(), NewTQL(0.6), NewDQN(0.6, 1), NewTBA(1)}
	for _, p := range policies {
		res := Evaluate(p, env, 1)
		if res.Slots != 144 {
			t.Fatalf("%s: slots = %d", p.Name(), res.Slots)
		}
		if res.ServedRequests == 0 {
			t.Fatalf("%s: served no requests", p.Name())
		}
		if env.InvalidActions() > 0 {
			t.Fatalf("%s: produced %d invalid actions", p.Name(), env.InvalidActions())
		}
	}
}

func TestEvaluateSameSeedSameDemand(t *testing.T) {
	city := testCity(t, 2)
	env := sim.New(city, sim.DefaultOptions(1), 1)
	a := Evaluate(NewGroundTruth(), env, 5)
	total1 := a.ServedRequests + a.UnservedRequests
	b := Evaluate(NewSD2(), env, 5)
	total2 := b.ServedRequests + b.UnservedRequests
	if total1 != total2 {
		t.Fatalf("same seed produced different demand volumes: %d vs %d", total1, total2)
	}
}

func TestGroundTruthChargesOffPeak(t *testing.T) {
	city := testCity(t, 3)
	env := sim.New(city, sim.DefaultOptions(2), 3)
	res := Evaluate(NewGroundTruth(), env, 3)
	if len(res.ChargeStats) == 0 {
		t.Skip("no charging in this short run")
	}
	// Opportunistic cheap charging should put a visible share of plug-ins
	// into the off-peak hours 2-5, 12-13, 17 (Fig. 4 behavior).
	offPeak := 0
	total := 0
	for h, c := range res.ChargeStartsByHour {
		total += c
		if (h >= 2 && h < 6) || h == 12 || h == 13 || h == 17 {
			offPeak += c
		}
	}
	if total == 0 {
		t.Skip("no plug-ins recorded")
	}
	frac := float64(offPeak) / float64(total)
	// Off-peak hours are 7 of 24 = 29% of the day; behavior should push the
	// share above that.
	if frac < 0.3 {
		t.Errorf("off-peak plug-in share %.2f; cheap-charging habit not visible", frac)
	}
}

func TestSD2AlwaysNearestStation(t *testing.T) {
	city := testCity(t, 4)
	env := sim.New(city, sim.DefaultOptions(1), 4)
	env.Reset(4)
	sd2 := NewSD2()
	sd2.BeginEpisode(4)
	// Force a low-SoC taxi and confirm the action targets station rank 0.
	vacant := env.VacantTaxis()
	id := vacant[0]
	// Drain its battery through the public-ish path: run Act with the SoC
	// as built; directly checking the decision rule instead.
	actions := sd2.Act(env, []int{id})
	a := actions[id]
	if env.TaxiSoC(id) < 0.20 && (a.Kind != sim.Charge || a.Arg != 0) {
		t.Fatalf("low-SoC SD2 action = %v, want charge(0)", a)
	}
	// All actions must be valid kinds.
	for _, a := range actions {
		if a.Kind != sim.Stay && a.Kind != sim.Move && a.Kind != sim.Charge {
			t.Fatalf("invalid action kind %v", a.Kind)
		}
	}
}

func TestSD2MovesTowardDemand(t *testing.T) {
	city := testCity(t, 5)
	env := sim.New(city, sim.DefaultOptions(1), 5)
	env.Reset(5)
	sd2 := NewSD2()
	// Step a few slots; SD2 should produce at least some Move actions over a
	// day (taxis in dead zones walk toward demand).
	moves := 0
	for i := 0; i < 36 && !env.Done(); i++ {
		vacant := env.VacantTaxis()
		acts := sd2.Act(env, vacant)
		for _, a := range acts {
			if a.Kind == sim.Move {
				moves++
			}
		}
		env.Step(acts)
	}
	if moves == 0 {
		t.Error("SD2 never moved toward demand in 6 hours")
	}
}

func TestTQLTrainingImprovesTable(t *testing.T) {
	city := testCity(t, 6)
	tql := NewTQL(0.6)
	stats := tql.Train(city, 2, 1, 6)
	if stats.Episodes != 2 || len(stats.MeanReward) != 2 {
		t.Fatalf("train stats wrong: %+v", stats)
	}
	if stats.StatesVisited == 0 {
		t.Fatal("Q-table empty after training")
	}
	// After training, greedy evaluation must run cleanly.
	env := sim.New(city, sim.DefaultOptions(1), 6)
	res := Evaluate(tql, env, 6)
	if res.ServedRequests == 0 {
		t.Fatal("trained TQL served nothing")
	}
}

func TestDQNLearnChangesWeights(t *testing.T) {
	city := testCity(t, 7)
	dqn := NewDQN(0.6, 7)
	before := dqn.Net().Clone()
	dqn.Train(city, 1, 1, 7)
	x := make([]float64, sim.FeatureSize)
	for i := range x {
		x[i] = 0.1
	}
	a := before.Forward1(x)
	b := dqn.Net().Forward1(x)
	changed := false
	for i := range a {
		if a[i] != b[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("DQN training did not move the network")
	}
}

func TestDQNRespectsMaskInGreedy(t *testing.T) {
	dqn := NewDQN(0.6, 8)
	obs := sim.Observation{Features: make([]float64, sim.FeatureSize)}
	// Only action 3 valid.
	obs.Mask[3] = true
	if got := dqn.choose(obs); got != 3 {
		t.Fatalf("masked greedy chose %d, want 3", got)
	}
}

func TestTBASamplesValidActions(t *testing.T) {
	tba := NewTBA(9)
	tba.exploring = true
	tba.BeginEpisode(9)
	obs := sim.Observation{Features: make([]float64, sim.FeatureSize)}
	obs.Mask[0] = true
	obs.Mask[5] = true
	for i := 0; i < 100; i++ {
		a := tba.sample(obs)
		if a != 0 && a != 5 {
			t.Fatalf("sampled masked action %d", a)
		}
	}
}

func TestTBATrainRuns(t *testing.T) {
	city := testCity(t, 10)
	tba := NewTBA(10)
	stats := tba.Train(city, 1, 1, 10)
	if len(stats.MeanReward) != 1 {
		t.Fatalf("train stats wrong: %+v", stats)
	}
	env := sim.New(city, sim.DefaultOptions(1), 10)
	res := Evaluate(tba, env, 10)
	if res.ServedRequests == 0 {
		t.Fatal("trained TBA served nothing")
	}
}

func TestRunEpisodeTransitionsWellFormed(t *testing.T) {
	city := testCity(t, 11)
	env := sim.New(city, sim.DefaultOptions(1), 11)
	env.Reset(11)
	var n, terminals int
	mean := RunEpisode(env,
		func(id int, obs sim.Observation) int {
			// Always choose the first valid action.
			for i, ok := range obs.Mask {
				if ok {
					return i
				}
			}
			return 0
		},
		0.6, 0.9,
		func(id int, tr Transition) {
			n++
			if len(tr.Obs) != sim.FeatureSize {
				t.Fatalf("obs width %d", len(tr.Obs))
			}
			if tr.Action < 0 || tr.Action >= sim.NumActions {
				t.Fatalf("action %d out of range", tr.Action)
			}
			if tr.Elapsed < 1 {
				t.Fatalf("elapsed %d < 1", tr.Elapsed)
			}
			if !tr.Mask[tr.Action] {
				t.Fatal("transition action was masked")
			}
			if tr.Terminal {
				terminals++
				if tr.NextObs != nil {
					t.Fatal("terminal transition has next obs")
				}
			} else if len(tr.NextObs) != sim.FeatureSize {
				t.Fatal("non-terminal transition missing next obs")
			}
			if math.IsNaN(tr.Reward) || math.IsInf(tr.Reward, 0) {
				t.Fatalf("bad reward %v", tr.Reward)
			}
		},
	)
	if n == 0 {
		t.Fatal("no transitions")
	}
	if terminals == 0 {
		t.Fatal("no terminal transitions at horizon")
	}
	if math.IsNaN(mean) {
		t.Fatal("NaN mean reward")
	}
}

func TestSlotRewardAlphaBoundaries(t *testing.T) {
	city := testCity(t, 12)
	env := sim.New(city, sim.DefaultOptions(1), 12)
	env.Reset(12)
	env.Step(nil)
	_, pf := env.FleetPEStats()
	id := 0
	// α=1: pure profit efficiency; α=0: pure (negated) unfairness.
	r1 := SlotReward(env, id, 1, pf)
	r0 := SlotReward(env, id, 0, pf)
	slotHours := float64(env.SlotLen()) / 60
	wantR1 := env.SlotProfit(id) / slotHours * RewardScale
	if math.Abs(r1-wantR1) > 1e-12 {
		t.Fatalf("alpha=1 reward %v, want %v", r1, wantR1)
	}
	if math.Abs(r0-(-pf*RewardScale)) > 1e-12 {
		t.Fatalf("alpha=0 reward %v, want %v", r0, -pf*RewardScale)
	}
}
