package policy

import (
	"context"

	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Cloner marks policies that can hand each rollout worker a private
// instance. The clone must behave identically to the original after
// BeginEpisode(seed) — all per-episode state is re-derived from the seed —
// so cloning is just copying configuration and dropping shared mutable
// state. Guide policies implement it to unlock parallel demonstration
// rollouts; learners falling back to a non-Cloner guide run serially.
type Cloner interface {
	Policy
	// CloneForWorker returns an independent instance safe to drive from
	// another goroutine.
	CloneForWorker() Policy
}

// demoSeedOffset is the shared pretraining seed convention: episode ep of a
// pretraining run seeded with s replays demand realization s+7000+ep. Every
// learner uses the same offset so all warm starts see the same teacher
// demonstrations for a given seed.
const demoSeedOffset = 7000

// DemoEpisodeSeed returns the seed of pretraining episode ep under run seed.
func DemoEpisodeSeed(seed int64, ep int) int64 { return seed + demoSeedOffset + int64(ep) }

// CollectDemos rolls out episodes of guide-driven demonstrations and returns
// each episode's transitions, indexed by episode. Episodes are independent —
// each gets a fresh environment and rng streams derived only from its own
// episode seed — so they fan out across workers; the returned order is
// always episode order, making the result byte-identical for any worker
// count. Rewards accrue with the caller's (alpha, gamma) so the transitions
// slot directly into the caller's update rule.
//
// If guide does not implement Cloner the rollout runs serially on the shared
// instance, whatever workers says: correctness beats speed.
func CollectDemos(city *synth.City, guide Policy, episodes, days int, seed int64, workers int, alpha, gamma float64) [][]Transition {
	return CollectDemosFrom(nil, city, guide, 0, episodes, days, seed, workers, alpha, gamma)
}

// CollectDemosFrom is CollectDemos restricted to episodes [from, episodes) —
// the resume path: a learner restored from a pretraining checkpoint replays
// only the demonstrations it has not consumed yet. Episode ep still rolls
// out under DemoEpisodeSeed(seed, ep), so the collected transitions are
// byte-identical to the corresponding tail of a full collection.
func CollectDemosFrom(build sim.EnvBuilder, city *synth.City, guide Policy, from, episodes, days int, seed int64, workers int, alpha, gamma float64) [][]Transition {
	if from < 0 {
		from = 0
	}
	n := episodes - from
	if n <= 0 {
		return nil
	}
	cloner, ok := guide.(Cloner)
	if !ok {
		workers = 1
	}
	rollout := func(g Policy, ep int) []Transition {
		epSeed := DemoEpisodeSeed(seed, ep)
		env := sim.BuildEnv(build, city, sim.DefaultOptions(days), epSeed)
		g.BeginEpisode(epSeed)
		var buf []Transition
		chooser := PolicyChooser(env, g)
		RunEpisode(env,
			func(id int, obs sim.Observation) int { return chooser(id, obs) },
			alpha, gamma,
			func(id int, tr Transition) { buf = append(buf, tr.Detach()) },
		)
		return buf
	}
	if parallel.Resolve(workers) == 1 || n == 1 {
		out := make([][]Transition, n)
		for i := 0; i < n; i++ {
			out[i] = rollout(guide, from+i)
		}
		return out
	}
	out, _ := parallel.Map(context.Background(), workers, n, func(_ context.Context, i int) ([]Transition, error) {
		return rollout(cloner.CloneForWorker(), from+i), nil
	})
	return out
}
