package policy

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// Checkpointer implementations for the three trainable baselines. Each
// learner serializes exactly the state that survives an episode boundary —
// weights, optimizer moments, replay/demo buffers, schedule position — and
// nothing transient (rng sources are re-derived by BeginEpisode, exploration
// flags by the training loop). Decoding is all-or-nothing: state is read
// into temporaries, validated, and committed only if the whole payload was
// sound, so a corrupt checkpoint leaves a live learner byte-identical to
// before the Load attempt.

// EncodeTransitions appends a transition buffer (replay memory or
// demonstration store) to the payload.
func EncodeTransitions(e *checkpoint.Encoder, trs []Transition) {
	e.U32(uint32(len(trs)))
	for _, tr := range trs {
		e.Floats(tr.Obs)
		for _, b := range tr.Mask {
			e.Bool(b)
		}
		e.Int(tr.Action)
		e.F64(tr.Reward)
		e.Floats(tr.NextObs)
		for _, b := range tr.NextMask {
			e.Bool(b)
		}
		e.Int(tr.Elapsed)
		e.Bool(tr.Terminal)
	}
}

// minTransitionBytes is the smallest possible encoded transition: two slice
// length prefixes, two fixed masks, action, reward, elapsed, terminal.
const minTransitionBytes = 4 + sim.NumActions + 8 + 8 + 4 + sim.NumActions + 8 + 1

// DecodeTransitions reads a buffer written by EncodeTransitions, validating
// feature widths and action indices.
func DecodeTransitions(d *checkpoint.Decoder) ([]Transition, error) {
	n, ok := d.Count(d.U32(), minTransitionBytes)
	if !ok {
		return nil, d.Err()
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Transition, n)
	for i := range out {
		tr := &out[i]
		tr.Obs = d.Floats()
		for j := range tr.Mask {
			tr.Mask[j] = d.Bool()
		}
		tr.Action = d.Int()
		tr.Reward = d.F64()
		tr.NextObs = d.Floats()
		for j := range tr.NextMask {
			tr.NextMask[j] = d.Bool()
		}
		tr.Elapsed = d.Int()
		tr.Terminal = d.Bool()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(tr.Obs) != sim.FeatureSize {
			return nil, fmt.Errorf("policy: transition %d has %d features, want %d", i, len(tr.Obs), sim.FeatureSize)
		}
		if len(tr.NextObs) != 0 && len(tr.NextObs) != sim.FeatureSize {
			return nil, fmt.Errorf("policy: transition %d has %d next features, want 0 or %d", i, len(tr.NextObs), sim.FeatureSize)
		}
		if tr.Action < 0 || tr.Action >= sim.NumActions {
			return nil, fmt.Errorf("policy: transition %d has action %d outside [0,%d)", i, tr.Action, sim.NumActions)
		}
		if tr.Elapsed < 0 {
			return nil, fmt.Errorf("policy: transition %d has negative elapsed %d", i, tr.Elapsed)
		}
	}
	return out, nil
}

// progress maps the shared (demoDone, epDone) counters to the container's
// phase/episode header: a learner is in the fine-tuning phase as soon as it
// has completed a fine-tune episode.
func progress(demoDone, epDone int) (int, int) {
	if epDone > 0 {
		return checkpoint.PhaseTrain, epDone
	}
	return checkpoint.PhasePretrain, demoDone
}

// --- DQN ---

// CheckpointKind implements checkpoint.Checkpointer.
func (d *DQN) CheckpointKind() string { return "dqn" }

// CheckpointFingerprint implements checkpoint.Checkpointer. It covers every
// hyperparameter that shapes the serialized state or the remaining training
// schedule; Workers and EvalEpsilon are excluded because they never change
// results.
func (d *DQN) CheckpointFingerprint() uint64 {
	return checkpoint.Fingerprint(fmt.Sprintf(
		"dqn|alpha=%g|gamma=%g|eps=%g|mineps=%g|hidden=%v|lr=%g|batch=%d|buffer=%d|target=%d|cql=%g|feat=%d|actions=%d",
		d.Alpha, d.Gamma, d.Epsilon, d.MinEps, d.Hidden, d.LR, d.Batch, d.Buffer, d.TargetEvery, d.CQLAlpha,
		sim.FeatureSize, sim.NumActions))
}

// CheckpointProgress implements checkpoint.Checkpointer.
func (d *DQN) CheckpointProgress() (int, int) { return progress(d.demoDone, d.epDone) }

// EncodeCheckpoint implements checkpoint.Checkpointer.
func (d *DQN) EncodeCheckpoint(e *checkpoint.Encoder) {
	e.Int(d.demoDone)
	e.Int(d.epDone)
	e.Int(d.steps)
	e.F64(d.eps)
	checkpoint.EncodeMLP(e, d.net)
	checkpoint.EncodeMLP(e, d.target)
	checkpoint.EncodeAdam(e, d.opt)
	EncodeTransitions(e, d.replay)
	e.Int(d.rpPos)
}

// DecodeCheckpoint implements checkpoint.Checkpointer.
func (d *DQN) DecodeCheckpoint(dec *checkpoint.Decoder) error {
	demoDone, epDone, steps := dec.Int(), dec.Int(), dec.Int()
	eps := dec.F64()
	net, err := checkpoint.DecodeMLP(dec)
	if err != nil {
		return err
	}
	target, err := checkpoint.DecodeMLP(dec)
	if err != nil {
		return err
	}
	opt, err := checkpoint.DecodeAdam(dec)
	if err != nil {
		return err
	}
	replay, err := DecodeTransitions(dec)
	if err != nil {
		return err
	}
	rpPos := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if demoDone < 0 || epDone < 0 || steps < 0 {
		return fmt.Errorf("policy: dqn checkpoint has negative counters (%d, %d, %d)", demoDone, epDone, steps)
	}
	if net.InputSize() != sim.FeatureSize || net.OutputSize() != sim.NumActions {
		return fmt.Errorf("policy: dqn net shape %d -> %d, want %d -> %d", net.InputSize(), net.OutputSize(), sim.FeatureSize, sim.NumActions)
	}
	if !checkpoint.SameShape(net, target) {
		return fmt.Errorf("policy: dqn target network shape differs from online network")
	}
	if !checkpoint.AdamMatches(opt, net) {
		return fmt.Errorf("policy: dqn optimizer moments do not fit the network")
	}
	if len(replay) > d.Buffer {
		return fmt.Errorf("policy: dqn replay holds %d transitions, capacity %d", len(replay), d.Buffer)
	}
	if rpPos < 0 || rpPos > len(replay) {
		return fmt.Errorf("policy: dqn replay cursor %d outside [0,%d]", rpPos, len(replay))
	}
	d.demoDone, d.epDone, d.steps, d.eps = demoDone, epDone, steps, eps
	d.net, d.target, d.opt = net, target, opt
	d.replay, d.rpPos = replay, rpPos
	d.exploring = false
	return nil
}

// --- TQL ---

// CheckpointKind implements checkpoint.Checkpointer.
func (t *TQL) CheckpointKind() string { return "tql" }

// CheckpointFingerprint implements checkpoint.Checkpointer.
func (t *TQL) CheckpointFingerprint() uint64 {
	return checkpoint.Fingerprint(fmt.Sprintf(
		"tql|alpha=%g|gamma=%g|lr=%g|eps=%g|bins=%d|actions=%d",
		t.Alpha, t.Gamma, t.LR, t.Epsilon, t.TimeBins, sim.NumActions))
}

// CheckpointProgress implements checkpoint.Checkpointer.
func (t *TQL) CheckpointProgress() (int, int) { return progress(t.demoDone, t.epDone) }

// minQEntryBytes is one encoded Q-table entry: timeBin + region + lowSoC +
// one value per action.
const minQEntryBytes = 8 + 8 + 1 + 8*sim.NumActions

// EncodeCheckpoint implements checkpoint.Checkpointer. The Q-table is a map,
// so entries are emitted in sorted key order — encoding the same table twice
// must produce identical bytes.
func (t *TQL) EncodeCheckpoint(e *checkpoint.Encoder) {
	e.Int(t.demoDone)
	e.Int(t.epDone)
	keys := make([]tqlState, 0, len(t.q))
	for k := range t.q {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.timeBin != b.timeBin {
			return a.timeBin < b.timeBin
		}
		if a.region != b.region {
			return a.region < b.region
		}
		return !a.lowSoC && b.lowSoC
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Int(k.timeBin)
		e.Int(k.region)
		e.Bool(k.lowSoC)
		qs := t.q[k]
		for _, q := range qs {
			e.F64(q)
		}
	}
}

// DecodeCheckpoint implements checkpoint.Checkpointer.
func (t *TQL) DecodeCheckpoint(dec *checkpoint.Decoder) error {
	demoDone, epDone := dec.Int(), dec.Int()
	n, ok := dec.Count(dec.U32(), minQEntryBytes)
	if !ok {
		return dec.Err()
	}
	q := make(map[tqlState][sim.NumActions]float64, n)
	for i := 0; i < n; i++ {
		st := tqlState{timeBin: dec.Int(), region: dec.Int(), lowSoC: dec.Bool()}
		var qs [sim.NumActions]float64
		for j := range qs {
			qs[j] = dec.F64()
		}
		if err := dec.Err(); err != nil {
			return err
		}
		if _, dup := q[st]; dup {
			return fmt.Errorf("policy: tql checkpoint repeats state %+v", st)
		}
		q[st] = qs
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if demoDone < 0 || epDone < 0 {
		return fmt.Errorf("policy: tql checkpoint has negative counters (%d, %d)", demoDone, epDone)
	}
	t.demoDone, t.epDone, t.q = demoDone, epDone, q
	t.exploring = false
	return nil
}

// --- TBA ---

// CheckpointKind implements checkpoint.Checkpointer.
func (t *TBA) CheckpointKind() string { return "tba" }

// CheckpointFingerprint implements checkpoint.Checkpointer.
func (t *TBA) CheckpointFingerprint() uint64 {
	return checkpoint.Fingerprint(fmt.Sprintf(
		"tba|gamma=%g|lr=%g|hidden=%v|feat=%d|actions=%d",
		t.Gamma, t.LR, t.Hidden, sim.FeatureSize, sim.NumActions))
}

// CheckpointProgress implements checkpoint.Checkpointer.
func (t *TBA) CheckpointProgress() (int, int) { return progress(t.demoDone, t.epDone) }

// EncodeCheckpoint implements checkpoint.Checkpointer.
func (t *TBA) EncodeCheckpoint(e *checkpoint.Encoder) {
	e.Int(t.demoDone)
	e.Int(t.epDone)
	e.Bool(t.fineTuning)
	e.F64(t.baseline)
	e.Int(t.baseN)
	checkpoint.EncodeMLP(e, t.net)
	checkpoint.EncodeAdam(e, t.opt)
	EncodeTransitions(e, t.demo)
}

// DecodeCheckpoint implements checkpoint.Checkpointer.
func (t *TBA) DecodeCheckpoint(dec *checkpoint.Decoder) error {
	demoDone, epDone := dec.Int(), dec.Int()
	fineTuning := dec.Bool()
	baseline := dec.F64()
	baseN := dec.Int()
	net, err := checkpoint.DecodeMLP(dec)
	if err != nil {
		return err
	}
	opt, err := checkpoint.DecodeAdam(dec)
	if err != nil {
		return err
	}
	demo, err := DecodeTransitions(dec)
	if err != nil {
		return err
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if demoDone < 0 || epDone < 0 || baseN < 0 {
		return fmt.Errorf("policy: tba checkpoint has negative counters (%d, %d, %d)", demoDone, epDone, baseN)
	}
	if net.InputSize() != sim.FeatureSize || net.OutputSize() != sim.NumActions {
		return fmt.Errorf("policy: tba net shape %d -> %d, want %d -> %d", net.InputSize(), net.OutputSize(), sim.FeatureSize, sim.NumActions)
	}
	if !checkpoint.AdamMatches(opt, net) {
		return fmt.Errorf("policy: tba optimizer moments do not fit the network")
	}
	t.demoDone, t.epDone, t.fineTuning = demoDone, epDone, fineTuning
	t.baseline, t.baseN = baseline, baseN
	t.net, t.opt, t.demo = net, opt, demo
	t.exploring = false
	return nil
}
