package policy

import (
	"math"

	"repro/internal/checkpoint"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// TQL is the standard Tabular Q-Learning baseline [22]: the state is the
// paper's local view (time index × location index) plus a coarse battery
// bucket, the action space is the shared displacement space, and a single
// Q-table is learned across all agents with an ε-greedy policy. Its reward
// uses the same Eq. 5 blend as FairMove, which is why the paper reports it
// improving fairness despite its crude state.
type TQL struct {
	Alpha    float64 // reward blend α
	Gamma    float64 // discount β
	LR       float64 // Q-table learning rate
	Epsilon  float64 // exploration rate during training
	TimeBins int     // time-of-day buckets (default 24)
	// Env builds the training environments; nil means the sequential
	// engine. Install shard.Builder(k) to train on the sharded engine.
	Env sim.EnvBuilder

	q   map[tqlState][sim.NumActions]float64
	src *rng.Source
	// exploration switch: on during Train, off during evaluation.
	exploring bool

	// resume cursors: completed pretraining and fine-tuning episodes (see
	// the DQN fields of the same name).
	demoDone int
	epDone   int

	tel TrainTel
}

// SetTelemetry installs (or, with nil, removes) training telemetry under the
// "tql." prefix. The table learner has no gradients; GradNorm stays unused.
func (t *TQL) SetTelemetry(r *telemetry.Registry) { t.tel = NewTrainTel(r, "tql") }

type tqlState struct {
	timeBin int
	region  int
	lowSoC  bool
}

// tqlInitQ pessimistically initializes every action's value when a state is
// first touched. With the zero default, actions never tried would keep
// Q = 0 and outrank visited actions whose learned values are negative (all
// charging decisions cost money) — the tabular version of offline
// overestimation.
const tqlInitQ = -1.0

// entry returns the Q-row of st, creating it pessimistically initialized.
func (t *TQL) entry(st tqlState) [sim.NumActions]float64 {
	if qs, ok := t.q[st]; ok {
		return qs
	}
	var qs [sim.NumActions]float64
	for i := range qs {
		qs[i] = tqlInitQ
	}
	t.q[st] = qs
	return qs
}

// NewTQL returns an untrained TQL baseline with the paper's hyperparameters
// (α = 0.6, β = 0.9).
func NewTQL(alpha float64) *TQL {
	return &TQL{
		Alpha:    alpha,
		Gamma:    0.9,
		LR:       0.1,
		Epsilon:  0.05,
		TimeBins: 24,
		q:        make(map[tqlState][sim.NumActions]float64),
		src:      rng.New(0),
	}
}

// Name implements Policy.
func (t *TQL) Name() string { return "TQL" }

// BeginEpisode implements Policy.
func (t *TQL) BeginEpisode(seed int64) { t.src = rng.SplitStable(seed, "tql") }

func (t *TQL) stateOf(env sim.Environment, id int) tqlState {
	bins := t.TimeBins
	if bins <= 0 {
		bins = 24
	}
	minOfDay := env.Now() % (24 * 60)
	return tqlState{
		timeBin: minOfDay * bins / (24 * 60),
		region:  env.TaxiRegion(id),
		lowSoC:  env.TaxiSoC(id) < 0.35,
	}
}

// choose picks the ε-greedy best valid action for the state.
func (t *TQL) choose(st tqlState, mask [sim.NumActions]bool) int {
	valid := make([]int, 0, sim.NumActions)
	for i, ok := range mask {
		if ok {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return 0
	}
	if t.exploring && t.src.Bool(t.Epsilon) {
		return valid[t.src.Intn(len(valid))]
	}
	qs := t.entry(st)
	best, bestQ := valid[0], math.Inf(-1)
	for _, a := range valid {
		if qs[a] > bestQ {
			best, bestQ = a, qs[a]
		}
	}
	return best
}

// maxQ returns the maximum Q over valid actions of st.
func (t *TQL) maxQ(st tqlState, mask [sim.NumActions]bool) float64 {
	qs := t.entry(st)
	best := math.Inf(-1)
	for i, ok := range mask {
		if ok && qs[i] > best {
			best = qs[i]
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// Act implements Policy (greedy over the learned table).
func (t *TQL) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	actions := make(map[int]sim.Action, len(vacant))
	for _, id := range vacant {
		st := t.stateOf(env, id)
		idx := t.choose(st, env.ValidMask(id))
		actions[id] = sim.ActionFromIndex(idx)
	}
	return actions
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Episodes      int
	MeanReward    []float64 // per-episode mean decision reward
	FinalEpsilon  float64
	StatesVisited int
}

// Pretrain runs demonstration episodes driven by guide (typically the
// ground-truth driver policy) and applies off-policy Q-learning updates to
// the table — a warm start before on-policy Train.
func (t *TQL) Pretrain(city *synth.City, guide Policy, episodes, days int, seed int64) {
	_ = t.PretrainCheckpointed(city, guide, episodes, days, seed, checkpoint.TrainOptions{})
}

// PretrainCheckpointed is Pretrain with a checkpoint cadence, resuming past
// the demonstration episodes a loaded checkpoint already consumed.
func (t *TQL) PretrainCheckpointed(city *synth.City, guide Policy, episodes, days int, seed int64, opts checkpoint.TrainOptions) error {
	env := sim.BuildEnv(t.Env, city, sim.DefaultOptions(days), seed)
	for ep := t.demoDone; ep < episodes; ep++ {
		epSeed := DemoEpisodeSeed(seed, ep)
		env.Reset(epSeed)
		guide.BeginEpisode(epSeed)
		t.BeginEpisode(epSeed)
		type open struct {
			st  tqlState
			act int
		}
		pend := make(map[int]open)
		chooser := PolicyChooser(env, guide)
		RunEpisode(env,
			func(id int, obs sim.Observation) int {
				idx := chooser(id, obs)
				pend[id] = open{st: t.stateOf(env, id), act: idx}
				return idx
			},
			t.Alpha, t.Gamma,
			func(id int, tr Transition) {
				o, ok := pend[id]
				if !ok {
					return
				}
				target := tr.Reward
				if !tr.Terminal {
					ns := t.stateOf(env, id)
					target += math.Pow(t.Gamma, float64(tr.Elapsed)) * t.maxQ(ns, tr.NextMask)
				}
				qs := t.entry(o.st)
				qs[o.act] += t.LR * (target - qs[o.act])
				t.q[o.st] = qs
			},
		)
		t.demoDone = ep + 1
		if opts.ShouldSave(t.demoDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, t, opts.Keep); err != nil {
				return err
			}
		}
	}
	return nil
}

// Train runs episodes of Q-learning on city until `episodes` total episodes
// are complete. Each episode replays a fresh demand realization; transitions
// close at each taxi's next decision (semi-MDP) and update Q with the
// standard rule.
func (t *TQL) Train(city *synth.City, episodes, days int, seed int64) TrainStats {
	stats, _ := t.TrainCheckpointed(city, episodes, days, seed, checkpoint.TrainOptions{})
	return stats
}

// TrainCheckpointed is Train with a checkpoint cadence.
func (t *TQL) TrainCheckpointed(city *synth.City, episodes, days int, seed int64, opts checkpoint.TrainOptions) (TrainStats, error) {
	stats := TrainStats{Episodes: episodes}
	env := sim.BuildEnv(t.Env, city, sim.DefaultOptions(days), seed)
	for ep := t.epDone; ep < episodes; ep++ {
		epSeed := seed + int64(ep)
		env.Reset(epSeed)
		t.BeginEpisode(epSeed)
		t.exploring = true

		// Track per-decision states so transitions can be updated on close.
		type open struct {
			st  tqlState
			act int
		}
		pend := make(map[int]open)

		stopEp := t.tel.EpisodeTime.Start()
		mean := RunEpisode(env,
			func(id int, obs sim.Observation) int {
				st := t.stateOf(env, id)
				idx := t.choose(st, obs.Mask)
				pend[id] = open{st: st, act: idx}
				return idx
			},
			t.Alpha, t.Gamma,
			func(id int, tr Transition) {
				o, ok := pend[id]
				if !ok {
					return
				}
				target := tr.Reward
				if !tr.Terminal {
					// The transition closes exactly when the environment sits
					// at the taxi's next decision, so the next state can be
					// read off the environment directly.
					ns := t.stateOf(env, id)
					target += math.Pow(t.Gamma, float64(tr.Elapsed)) * t.maxQ(ns, tr.NextMask)
				}
				qs := t.entry(o.st)
				qs[o.act] += t.LR * (target - qs[o.act])
				t.q[o.st] = qs
				t.tel.Transitions.Inc()
				t.tel.Steps.Inc()
			},
		)
		stopEp()
		t.tel.Episodes.Inc()
		t.tel.MeanReward.Set(mean)
		t.tel.Epsilon.Set(t.Epsilon)
		stats.MeanReward = append(stats.MeanReward, mean)
		t.epDone = ep + 1
		if opts.ShouldSave(t.epDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, t, opts.Keep); err != nil {
				t.exploring = false
				return stats, err
			}
		}
	}
	t.exploring = false
	stats.FinalEpsilon = t.Epsilon
	stats.StatesVisited = len(t.q)
	return stats, nil
}
