package policy

import (
	"repro/internal/sim"
)

// SD2 is the Shortest Distance based Displacement baseline [21]: every
// vacant taxi is displaced toward its nearest waiting passengers and charges
// at its nearest station, with no learning and no long-term view. As the
// paper notes, its weakness is herding — many nearby taxis pick the same
// nearest station, overcrowding it and *prolonging* idle time (negative
// PRIT in Table III).
type SD2 struct{}

// NewSD2 returns the baseline.
func NewSD2() *SD2 { return &SD2{} }

// Name implements Policy.
func (s *SD2) Name() string { return "SD2" }

// BeginEpisode implements Policy.
func (s *SD2) BeginEpisode(int64) {}

// Act implements Policy.
func (s *SD2) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	city := env.City()
	n := city.Partition.Len()
	now := env.Now()
	slot := env.SlotLen()

	// Per-slot precomputation: vacant supply and expected demand per region,
	// then one multi-source BFS from every surplus-demand region giving each
	// region its hop distance to the nearest passenger surplus.
	supply := make([]int, n)
	for _, id := range vacant {
		supply[env.TaxiRegion(id)]++
	}
	demand := make([]float64, n)
	dist := make([]int, n)
	var frontier []int
	for r := 0; r < n; r++ {
		demand[r] = city.Demand.ExpectedSlotDemand(r, now, slot)
		dist[r] = -1
		if demand[r] > float64(supply[r]) {
			dist[r] = 0
			frontier = append(frontier, r)
		}
	}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, nb := range city.Partition.Region(cur).Neighbors {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				frontier = append(frontier, nb)
			}
		}
	}

	actions := make(map[int]sim.Action, len(vacant))
	for _, id := range vacant {
		if env.TaxiSoC(id) < 0.20 {
			// Nearest station, always — the defining SD2 move.
			actions[id] = sim.Action{Kind: sim.Charge, Arg: 0}
			continue
		}
		region := env.TaxiRegion(id)
		// Enough local demand (or no reachable surplus): keep cruising here.
		if demand[region] >= 0.5 || dist[region] <= 0 {
			actions[id] = sim.Action{Kind: sim.Stay}
			continue
		}
		// Step toward the nearest surplus region: any neighbor one hop
		// closer on the BFS field.
		nbs := city.Partition.Region(region).Neighbors
		move := sim.Action{Kind: sim.Stay}
		for i, nb := range nbs {
			if i >= sim.MaxNeighbors {
				break
			}
			if dist[nb] >= 0 && dist[nb] < dist[region] {
				move = sim.Action{Kind: sim.Move, Arg: i}
				break
			}
		}
		actions[id] = move
	}
	return actions
}
