// Package shard runs the simulation region-sharded: the city's partition
// graph is split into K contiguous shards, each advanced by its own kernel
// (internal/sim.Core), concurrently within a slot and synchronized at
// deterministic barriers. Because every random stream is split per region
// or per station — never per shard — and all cross-shard exchange happens
// in canonical order under the barriers, the trajectory is byte-identical
// for every K: shards=1 equals shards=N on every golden scenario fixture.
package shard

import (
	"sort"

	"repro/internal/partition"
)

// Assign partitions the region graph into k contiguous, balanced shards by
// multi-source BFS: k seeds spread across the ID range, then round-robin
// growth where each shard claims the smallest-ID unassigned region adjacent
// to it (disconnected leftovers are dealt round-robin). The result depends
// only on the partition and k, never on scheduling. k is clamped to
// [1, regions].
func Assign(p *partition.Partition, k int) []int {
	n := p.Len()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	members := make([][]int, k)
	for s := 0; s < k; s++ {
		seed := s * n / k
		owner[seed] = s
		members[s] = append(members[s], seed)
	}
	assigned := k
	for assigned < n {
		progress := false
		for s := 0; s < k && assigned < n; s++ {
			best := -1
			for _, r := range members[s] {
				for _, nb := range p.Region(r).Neighbors {
					if owner[nb] < 0 && (best < 0 || nb < best) {
						best = nb
					}
				}
			}
			if best < 0 {
				continue
			}
			owner[best] = s
			members[s] = append(members[s], best)
			assigned++
			progress = true
		}
		if !progress {
			for r := 0; r < n && assigned < n; r++ {
				if owner[r] < 0 {
					s := assigned % k
					owner[r] = s
					members[s] = append(members[s], r)
					assigned++
				}
			}
		}
	}
	for s := range members {
		sort.Ints(members[s])
	}
	return owner
}
