package shard

import (
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Engine is the region-sharded simulation driver. It embeds the shared
// sim.Core — which provides the whole read surface of sim.Environment plus
// Reset — and supplies Step by sequencing the core's phase methods around
// its serial barriers:
//
//	apply actions   (parallel)  ─┐
//	route migrants  (barrier)    │ taxis retargeted across the cut
//	generate+match  (parallel)   │ per-region demand and match streams
//	snapshot loads  (barrier)    │ queue pressure for the slot's replans
//	per minute:                  │
//	  run minute    (parallel)   │ calendar + charging sweeps
//	  route migrants(barrier)    │ balk/replan redirects across the cut
//	end slot        (parallel)   │ crawl drain, dropoff migrants
//	route + finish  (barrier)   ─┘ canonical merge, clock advance
//
// With shards=1 every phase runs inline on the calling goroutine, so the
// single-shard engine is also the reference the invariance battery compares
// higher shard counts against.
type Engine struct {
	*sim.Core
	shards int

	// Phase closures, allocated once: Step hands each phase to each as a
	// func value, and a closure literal built inside Step escapes — at one
	// allocation per phase per call that was the driver's entire steady-state
	// allocation budget. The closures read their per-call parameters
	// (actions, the minute cursor) from the two fields below, which Step
	// writes between barriers; under multi-shard fan-out the writes
	// happen-before the goroutine launches that read them.
	beginFn, genFn, minuteFn, endFn func(k int)
	stepActions                     map[int]sim.Action
	stepMinute                      int

	ptel phaseTel
}

// phaseTel holds the engine's per-phase wall-clock timers, resolved once in
// SetTelemetry. They answer "where does a sharded Step spend its time" —
// begin-slot apply, the serial route-migrants barriers, demand generation and
// matching, the per-minute sweeps, and end-of-slot drain — which is how the
// shard-scaling profile in EXPERIMENTS.md was measured. Like every Timer
// these are wall-clock and excluded from determinism comparisons; nil handles
// no-op, so an engine without telemetry never reads the clock.
type phaseTel struct {
	begin, route, gen, minute, end *telemetry.Timer
}

// SetTelemetry installs (or, with nil, removes) a metrics registry on both
// the embedded core (deterministic simulation counters) and the engine's
// own per-phase timers.
func (e *Engine) SetTelemetry(r *telemetry.Registry) {
	e.Core.SetTelemetry(r)
	if r == nil {
		e.ptel = phaseTel{}
		return
	}
	e.ptel = phaseTel{
		begin:  r.Timer("shard.phase.begin_slot_apply"),
		route:  r.Timer("shard.phase.route_migrants"),
		gen:    r.Timer("shard.phase.generate_and_match"),
		minute: r.Timer("shard.phase.run_minute"),
		end:    r.Timer("shard.phase.end_slot"),
	}
}

// Engine implements the full environment surface.
var _ sim.Environment = (*Engine)(nil)

// New builds a sharded engine over city with the given shard count (clamped
// to [1, regions]) and resets it with seed.
func New(city *synth.City, opts sim.Options, shards int, seed int64) *Engine {
	owner := Assign(city.Partition, shards)
	core := sim.NewCore(city, opts, owner, seed)
	e := &Engine{Core: core, shards: core.Shards()}
	e.beginFn = func(k int) { e.Core.BeginSlotApply(k, e.stepActions) }
	e.genFn = func(k int) { e.Core.GenerateAndMatch(k) }
	e.minuteFn = func(k int) { e.Core.RunMinute(k, e.stepMinute) }
	e.endFn = func(k int) { e.Core.EndSlot(k) }
	return e
}

// Builder returns a sim.EnvBuilder that constructs sharded engines with a
// fixed shard count — the seam trainers and the system facade use to pick
// the engine without caring which one they got.
func Builder(shards int) sim.EnvBuilder {
	return func(city *synth.City, opts sim.Options, seed int64) sim.Environment {
		return New(city, opts, shards, seed)
	}
}

// Shards returns the number of shards the engine runs.
func (e *Engine) Shards() int { return e.shards }

// Step applies one displacement action per vacant taxi (missing entries
// default to Stay) and advances the world by one time slot. It panics if
// the episode is done.
func (e *Engine) Step(actions map[int]sim.Action) {
	if e.Done() {
		panic("shard: Step after Done")
	}
	c := e.Core
	e.stepActions = actions
	stop := e.ptel.begin.Start()
	e.each(e.beginFn)
	stop()
	e.stepActions = nil
	stop = e.ptel.route.Start()
	c.RouteMigrants()
	stop()
	stop = e.ptel.gen.Start()
	e.each(e.genFn)
	c.SnapshotLoads()
	stop()
	start, slotLen := c.Now(), c.SlotLen()
	for m := start; m < start+slotLen; m++ {
		e.stepMinute = m
		stop = e.ptel.minute.Start()
		e.each(e.minuteFn)
		stop()
		stop = e.ptel.route.Start()
		c.RouteMigrants()
		stop()
	}
	stop = e.ptel.end.Start()
	e.each(e.endFn)
	stop()
	stop = e.ptel.route.Start()
	c.RouteMigrants()
	c.FinishSlot()
	stop()
}

// each runs a phase once per kernel, returning only after all finish.
// Kernels run inline, in order, when single-sharded or when the runtime has
// a single scheduler thread — phase results are independent of interleaving
// (that is the invariance battery's whole claim), and on one P the goroutine
// fan-out is pure barrier overhead. Otherwise it is one goroutine per
// kernel.
func (e *Engine) each(f func(k int)) {
	if e.shards == 1 || runtime.GOMAXPROCS(0) == 1 {
		for k := 0; k < e.shards; k++ {
			f(k)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.shards)
	for k := 0; k < e.shards; k++ {
		go func(k int) {
			defer wg.Done()
			f(k)
		}(k)
	}
	wg.Wait()
}
