package shard

// The shard-invariance battery: the tentpole's correctness proof. A sharded
// run must be a pure function of (city, options, seed) — never of the shard
// count — so every test here runs the same world at several K and demands
// byte-identical results: trace digests, telemetry counters, accounting.

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// invarianceSeed fixes the worlds in this file.
const invarianceSeed = 42

// shardCounts is the ladder every invariance test climbs.
var shardCounts = []int{1, 2, 4, 8}

// goldenFixtures are the scenario specs pinned by the golden-trace harness;
// the sharded engine must be K-invariant under every one of them.
var goldenFixtures = []string{"baseline", "station-outage", "demand-surge", "weather", "airport-surge"}

func loadFixture(t *testing.T, name string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Load(filepath.Join("..", "scenario", "testdata", "scenarios", name+".json"))
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return spec
}

func microCity(t *testing.T, seed int64) *synth.City {
	t.Helper()
	city, err := synth.Build(synth.MicroConfig(seed))
	if err != nil {
		t.Fatalf("build city: %v", err)
	}
	// Start near the forced-charge threshold so stations, queues, and the
	// whole charging pipeline cross shard cuts from the first slot.
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.3
	}
	return city
}

// shardRun replays one full day at the given shard count and returns the
// event digest, the deterministic telemetry counters, and the results.
func shardRun(t *testing.T, city *synth.City, spec *scenario.Spec, shards int) (string, map[string]int64, *sim.Results) {
	t.Helper()
	// Built through Builder — the seam the facade uses — so the test also
	// covers the EnvBuilder path.
	env := Builder(shards)(city, sim.DefaultOptions(1), invarianceSeed).(*Engine)
	var events []trace.Event
	env.SetRecorder(func(ev trace.Event) { events = append(events, ev) })
	reg := telemetry.NewRegistry()
	env.SetTelemetry(reg)
	if spec != nil {
		if _, err := scenario.Attach(env, spec); err != nil {
			t.Fatalf("attach: %v", err)
		}
	}
	env.Reset(invarianceSeed)
	for !env.Done() {
		env.Step(nil)
	}
	counters := make(map[string]int64)
	for name, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "parallel.") {
			continue
		}
		counters[name] = v
	}
	return trace.DigestEvents(events), counters, env.Results()
}

// TestShardInvarianceGoldenFixtures is the acceptance gate: for every golden
// scenario fixture (plus the unperturbed world), shards=1 and shards=N
// produce identical trace digests, telemetry counters, and headline
// accounting.
func TestShardInvarianceGoldenFixtures(t *testing.T) {
	specs := map[string]*scenario.Spec{"clean": nil}
	for _, name := range goldenFixtures {
		specs[name] = loadFixture(t, name)
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			city := microCity(t, invarianceSeed)
			refDigest, refCounters, refRes := shardRun(t, city, spec, 1)
			for _, k := range shardCounts[1:] {
				digest, counters, res := shardRun(t, city, spec, k)
				if digest != refDigest {
					t.Errorf("shards=%d: digest %s != shards=1 digest %s", k, digest, refDigest)
				}
				for cname, want := range refCounters {
					if got := counters[cname]; got != want {
						t.Errorf("shards=%d: counter %s = %d, want %d", k, cname, got, want)
					}
				}
				if res.ServedRequests != refRes.ServedRequests || res.UnservedRequests != refRes.UnservedRequests {
					t.Errorf("shards=%d: served/unserved %d/%d, want %d/%d",
						k, res.ServedRequests, res.UnservedRequests, refRes.ServedRequests, refRes.UnservedRequests)
				}
				if got, want := res.FleetProfit(), refRes.FleetProfit(); got != want {
					t.Errorf("shards=%d: fleet profit %v, want %v", k, got, want)
				}
				if len(res.TripStats) != len(refRes.TripStats) {
					t.Fatalf("shards=%d: %d trips, want %d", k, len(res.TripStats), len(refRes.TripStats))
				}
				for i := range res.TripStats {
					if res.TripStats[i] != refRes.TripStats[i] {
						t.Fatalf("shards=%d: trip %d = %+v, want %+v", k, i, res.TripStats[i], refRes.TripStats[i])
					}
				}
				for i := range res.ChargeStats {
					if res.ChargeStats[i] != refRes.ChargeStats[i] {
						t.Fatalf("shards=%d: charge %d = %+v, want %+v", k, i, res.ChargeStats[i], refRes.ChargeStats[i])
					}
				}
			}
		})
	}
}

// TestShardSmoke is the short-mode CI gate (make shard-smoke): one clean
// micro-city day at shards=2 must match shards=1 digest-for-digest.
func TestShardSmoke(t *testing.T) {
	city := microCity(t, invarianceSeed)
	ref, _, _ := shardRun(t, city, nil, 1)
	got, _, _ := shardRun(t, city, nil, 2)
	if got != ref {
		t.Fatalf("shards=2 digest %s != shards=1 digest %s", got, ref)
	}
}

// TestAssignCoversPartition checks the BFS assignment is a total, clamped,
// deterministic cover of the region graph.
func TestAssignCoversPartition(t *testing.T) {
	city := microCity(t, invarianceSeed)
	for _, k := range []int{1, 2, 3, 5, 8, 12, 100} {
		owner := Assign(city.Partition, k)
		if len(owner) != city.Partition.Len() {
			t.Fatalf("k=%d: %d assignments for %d regions", k, len(owner), city.Partition.Len())
		}
		wantK := k
		if wantK > city.Partition.Len() {
			wantK = city.Partition.Len()
		}
		seen := make(map[int]int)
		for r, o := range owner {
			if o < 0 || o >= wantK {
				t.Fatalf("k=%d: region %d owner %d out of range [0,%d)", k, r, o, wantK)
			}
			seen[o]++
		}
		if len(seen) != wantK {
			t.Errorf("k=%d: only %d of %d shards own regions", k, len(seen), wantK)
		}
		again := Assign(city.Partition, k)
		for r := range owner {
			if owner[r] != again[r] {
				t.Fatalf("k=%d: assignment not deterministic at region %d", k, r)
			}
		}
	}
}

// TestShardHandoffProperties randomizes partition cuts (via the seed-driven
// city) and fleet sizes, then checks after every slot that no taxi is
// duplicated or lost across a barrier, and at the horizon that energy is
// conserved per taxi and every request was matched by at most one shard.
func TestShardHandoffProperties(t *testing.T) {
	cases := []struct {
		seed   int64
		fleet  int
		shards int
	}{
		{7, 16, 2}, {7, 16, 3}, {11, 24, 4}, {13, 40, 5}, {17, 64, 8},
	}
	for _, tc := range cases {
		cfg := synth.MicroConfig(tc.seed)
		cfg.Fleet = tc.fleet
		cfg.TripsPerDay = 10 * tc.fleet
		city, err := synth.Build(cfg)
		if err != nil {
			t.Fatalf("seed %d: build: %v", tc.seed, err)
		}
		for i := range city.Fleet {
			city.Fleet[i].InitialSoC = 0.3
		}
		env := New(city, sim.DefaultOptions(1), tc.shards, tc.seed)

		initial := make([]float64, cfg.Fleet)
		for i := 0; i < cfg.Fleet; i++ {
			initial[i] = env.TaxiEnergyLedger(i).SoCKWh
		}

		for !env.Done() {
			env.Step(nil)
			if err := env.CheckInvariants(); err != nil {
				t.Fatalf("seed %d shards %d minute %d: %v", tc.seed, tc.shards, env.Now(), err)
			}
		}

		// Energy conservation: SoC = initial + charged − consumed, where the
		// deficit credits energy an empty pack could not actually spend.
		for i := 0; i < cfg.Fleet; i++ {
			l := env.TaxiEnergyLedger(i)
			want := initial[i] + l.ChargedKWh - (l.DrivenKm*l.ConsumptionPerKm - l.DeficitKWh)
			if diff := math.Abs(l.SoCKWh - want); diff > 1e-6*math.Max(1, l.CapacityKWh) {
				t.Errorf("seed %d shards %d taxi %d: SoC %.9f kWh, ledger says %.9f (drift %.3g)",
					tc.seed, tc.shards, i, l.SoCKWh, want, diff)
			}
		}

		// Request ledger: every sampled request was served once, expired
		// once, or is still pending — never matched by two shards, never
		// dropped at a handoff.
		res := env.Results()
		if got := res.ServedRequests + res.UnservedRequests; got != env.GeneratedRequests() {
			t.Errorf("seed %d shards %d: served %d + unserved %d = %d, want %d generated",
				tc.seed, tc.shards, res.ServedRequests, res.UnservedRequests, got, env.GeneratedRequests())
		}
		if env.PendingRequests() != 0 {
			t.Errorf("seed %d shards %d: %d requests still pending after finalize", tc.seed, tc.shards, env.PendingRequests())
		}
	}
}

// TestShardResultsMatchAcrossSeeds widens the invariance net beyond the
// golden seed: several worlds, each compared shards=1 vs shards=3.
func TestShardResultsMatchAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := synth.MicroConfig(seed)
		city, err := synth.Build(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range city.Fleet {
			city.Fleet[i].InitialSoC = 0.3
		}
		run := func(shards int) string {
			env := New(city, sim.DefaultOptions(1), shards, seed)
			var events []trace.Event
			env.SetRecorder(func(ev trace.Event) { events = append(events, ev) })
			env.Reset(seed)
			for !env.Done() {
				env.Step(nil)
			}
			return trace.DigestEvents(events)
		}
		if a, b := run(1), run(3); a != b {
			t.Errorf("seed %d: shards=1 digest %s != shards=3 digest %s", seed, a, b)
		}
	}
}
