// Package pricing implements the two money models of the paper: the
// time-of-use (TOU) electricity tariff that e-taxis pay when charging
// (Section II, Fig. 2) and the passenger fare schedule that generates
// operating revenue.
//
// The Shenzhen tariff has three bands — off-peak, flat ("semi-peak"), and
// peak — priced at 0.9, 1.2, and 1.6 CNY/kWh. Charging costs are the inner
// product λ·T_charge of the price vector with the time spent in each band
// (Eq. 2), which this package computes exactly for charging intervals that
// span band boundaries or midnight.
package pricing

import (
	"fmt"
	"time"
)

// Band identifies one TOU price band.
type Band int

// The three TOU bands of the Shenzhen tariff.
const (
	OffPeak Band = iota
	Flat
	Peak
	numBands
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case OffPeak:
		return "off-peak"
	case Flat:
		return "flat"
	case Peak:
		return "peak"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// BandSpan is a half-open daily interval [StartMin, EndMin) in minutes since
// midnight assigned to one band.
type BandSpan struct {
	StartMin int
	EndMin   int
	Band     Band
}

// Tariff is a 24-hour TOU tariff. Rates are CNY per kWh indexed by Band.
type Tariff struct {
	spans []BandSpan
	rates [numBands]float64
	// minute-resolution lookup table for O(1) band queries.
	byMinute [24 * 60]Band
}

// NewTariff builds a tariff from spans covering [0, 1440) minutes without
// gaps or overlaps, and per-band rates.
func NewTariff(spans []BandSpan, offPeak, flat, peak float64) (*Tariff, error) {
	t := &Tariff{spans: append([]BandSpan(nil), spans...)}
	t.rates[OffPeak] = offPeak
	t.rates[Flat] = flat
	t.rates[Peak] = peak

	covered := make([]bool, 24*60)
	for _, s := range spans {
		if s.StartMin < 0 || s.EndMin > 24*60 || s.StartMin >= s.EndMin {
			return nil, fmt.Errorf("pricing: invalid span [%d,%d)", s.StartMin, s.EndMin)
		}
		if s.Band < 0 || s.Band >= numBands {
			return nil, fmt.Errorf("pricing: invalid band %d", s.Band)
		}
		for m := s.StartMin; m < s.EndMin; m++ {
			if covered[m] {
				return nil, fmt.Errorf("pricing: overlapping spans at minute %d", m)
			}
			covered[m] = true
			t.byMinute[m] = s.Band
		}
	}
	for m, c := range covered {
		if !c {
			return nil, fmt.Errorf("pricing: uncovered minute %d", m)
		}
	}
	return t, nil
}

// Shenzhen returns the TOU tariff used in the paper's evaluation (Fig. 2):
// peak bands around the morning and evening rush, off-peak bands overnight
// and in the early afternoon trough, flat elsewhere, at 0.9/1.2/1.6 CNY/kWh.
// The band layout matches the charging-peak hours the paper reports
// (off-peak 2:00-6:00, 12:00-14:00, 17:00-18:00).
func Shenzhen() *Tariff {
	h := func(hr int) int { return hr * 60 }
	spans := []BandSpan{
		{h(0), h(2), Flat},
		{h(2), h(6), OffPeak},
		{h(6), h(9), Flat},
		{h(9), h(12), Peak},
		{h(12), h(14), OffPeak},
		{h(14), h(17), Peak},
		{h(17), h(18), OffPeak},
		{h(18), h(22), Peak},
		{h(22), h(24), Flat},
	}
	t, err := NewTariff(spans, 0.9, 1.2, 1.6)
	if err != nil {
		panic("pricing: Shenzhen tariff construction failed: " + err.Error())
	}
	return t
}

// Rate returns the CNY/kWh price of a band.
func (t *Tariff) Rate(b Band) float64 { return t.rates[b] }

// Rates returns the price vector λ = [λ_o, λ_f, λ_p] indexed by Band.
func (t *Tariff) Rates() [3]float64 {
	return [3]float64{t.rates[OffPeak], t.rates[Flat], t.rates[Peak]}
}

// BandAt returns the band in effect at minute-of-day m (wrapped mod 1440).
func (t *Tariff) BandAt(m int) Band {
	m %= 24 * 60
	if m < 0 {
		m += 24 * 60
	}
	return t.byMinute[m]
}

// BandAtTime returns the band in effect at the wall-clock time of ts.
func (t *Tariff) BandAtTime(ts time.Time) Band {
	return t.BandAt(ts.Hour()*60 + ts.Minute())
}

// Decompose splits a charging interval that starts at minute-of-day startMin
// and lasts durationMin minutes into the per-band durations
// T = [T_o, T_f, T_p] (minutes), wrapping across midnight as needed.
func (t *Tariff) Decompose(startMin, durationMin int) [3]float64 {
	var out [3]float64
	if durationMin <= 0 {
		return out
	}
	for i := 0; i < durationMin; i++ {
		out[t.BandAt(startMin+i)]++
	}
	return out
}

// EnergyCost returns the CNY cost of drawing powerKW continuously from
// startMin for durationMin minutes: the inner product λ·T_charge of Eq. 2
// with energy expressed through constant power.
func (t *Tariff) EnergyCost(startMin, durationMin int, powerKW float64) float64 {
	dur := t.Decompose(startMin, durationMin)
	var cost float64
	for b := OffPeak; b < numBands; b++ {
		hours := dur[b] / 60
		cost += t.rates[b] * powerKW * hours
	}
	return cost
}

// CheapestStart returns the start minute in [0,1440) minimizing the cost of a
// charging session of the given duration and power, along with that cost.
// Useful as an oracle in tests and for the ground-truth driver heuristic,
// which seeks cheap bands (producing the charging peaks of Fig. 4).
func (t *Tariff) CheapestStart(durationMin int, powerKW float64) (startMin int, cost float64) {
	best, bestCost := 0, t.EnergyCost(0, durationMin, powerKW)
	for m := 1; m < 24*60; m++ {
		if c := t.EnergyCost(m, durationMin, powerKW); c < bestCost {
			best, bestCost = m, c
		}
	}
	return best, bestCost
}
