package pricing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestShenzhenTariffRates(t *testing.T) {
	tr := Shenzhen()
	if got := tr.Rate(OffPeak); got != 0.9 {
		t.Errorf("off-peak rate = %v, want 0.9", got)
	}
	if got := tr.Rate(Flat); got != 1.2 {
		t.Errorf("flat rate = %v, want 1.2", got)
	}
	if got := tr.Rate(Peak); got != 1.6 {
		t.Errorf("peak rate = %v, want 1.6", got)
	}
	r := tr.Rates()
	if r != [3]float64{0.9, 1.2, 1.6} {
		t.Errorf("Rates() = %v", r)
	}
}

func TestShenzhenBandLayout(t *testing.T) {
	tr := Shenzhen()
	cases := []struct {
		min  int
		want Band
	}{
		{0, Flat},          // midnight
		{3 * 60, OffPeak},  // 3:00 overnight trough
		{7 * 60, Flat},     // 7:00 morning shoulder
		{10 * 60, Peak},    // 10:00 late morning
		{13 * 60, OffPeak}, // 13:00 lunch trough
		{15 * 60, Peak},    // 15:00 afternoon
		{17*60 + 30, OffPeak},
		{19 * 60, Peak},
		{23 * 60, Flat},
	}
	for _, c := range cases {
		if got := tr.BandAt(c.min); got != c.want {
			t.Errorf("BandAt(%d:%02d) = %v, want %v", c.min/60, c.min%60, got, c.want)
		}
	}
}

func TestBandAtWrapsAndNegatives(t *testing.T) {
	tr := Shenzhen()
	if tr.BandAt(24*60+180) != tr.BandAt(180) {
		t.Error("BandAt does not wrap past 1440")
	}
	if tr.BandAt(-60) != tr.BandAt(23*60) {
		t.Error("BandAt does not handle negative minutes")
	}
}

func TestBandAtTime(t *testing.T) {
	tr := Shenzhen()
	ts := time.Date(2019, 12, 3, 3, 30, 0, 0, time.UTC)
	if got := tr.BandAtTime(ts); got != OffPeak {
		t.Errorf("BandAtTime 3:30 = %v, want off-peak", got)
	}
}

func TestDecomposeSumsToDuration(t *testing.T) {
	tr := Shenzhen()
	f := func(start, dur int) bool {
		start = ((start % 1440) + 1440) % 1440
		dur = dur % 300
		if dur < 0 {
			dur = -dur
		}
		d := tr.Decompose(start, dur)
		return math.Abs(d[0]+d[1]+d[2]-float64(dur)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeCrossesMidnight(t *testing.T) {
	tr := Shenzhen()
	// 23:30 to 00:30: all flat in the Shenzhen layout.
	d := tr.Decompose(23*60+30, 60)
	if d[Flat] != 60 || d[OffPeak] != 0 || d[Peak] != 0 {
		t.Fatalf("midnight crossing decompose = %v", d)
	}
}

func TestDecomposeZeroAndNegativeDuration(t *testing.T) {
	tr := Shenzhen()
	if d := tr.Decompose(100, 0); d != [3]float64{} {
		t.Errorf("zero duration = %v", d)
	}
	if d := tr.Decompose(100, -30); d != [3]float64{} {
		t.Errorf("negative duration = %v", d)
	}
}

func TestEnergyCostSingleBand(t *testing.T) {
	tr := Shenzhen()
	// One hour at 60 kW entirely inside off-peak (3:00-4:00): 60 kWh * 0.9.
	cost := tr.EnergyCost(3*60, 60, 60)
	if math.Abs(cost-54.0) > 1e-9 {
		t.Fatalf("off-peak hour cost = %v, want 54", cost)
	}
	// Same hour in peak (19:00-20:00): 60 kWh * 1.6 = 96.
	cost = tr.EnergyCost(19*60, 60, 60)
	if math.Abs(cost-96.0) > 1e-9 {
		t.Fatalf("peak hour cost = %v, want 96", cost)
	}
}

func TestEnergyCostBandBoundary(t *testing.T) {
	tr := Shenzhen()
	// 1:30-2:30 straddles flat->off-peak: 30 min each.
	cost := tr.EnergyCost(90, 60, 60)
	want := 0.5*60*1.2 + 0.5*60*0.9
	if math.Abs(cost-want) > 1e-9 {
		t.Fatalf("boundary cost = %v, want %v", cost, want)
	}
}

func TestEnergyCostMonotonicInDuration(t *testing.T) {
	tr := Shenzhen()
	prev := 0.0
	for d := 0; d <= 240; d += 10 {
		c := tr.EnergyCost(8*60, d, 60)
		if c < prev-1e-9 {
			t.Fatalf("cost decreased with duration at %d min", d)
		}
		prev = c
	}
}

func TestCheapestStartPrefersOffPeak(t *testing.T) {
	tr := Shenzhen()
	start, cost := tr.CheapestStart(60, 60)
	if tr.BandAt(start) != OffPeak {
		t.Fatalf("cheapest start %d:%02d in band %v, want off-peak", start/60, start%60, tr.BandAt(start))
	}
	if math.Abs(cost-54.0) > 1e-9 {
		t.Fatalf("cheapest cost = %v, want 54", cost)
	}
}

func TestNewTariffValidation(t *testing.T) {
	full := []BandSpan{{0, 1440, Flat}}
	if _, err := NewTariff(full, 1, 2, 3); err != nil {
		t.Fatalf("full coverage rejected: %v", err)
	}
	cases := []struct {
		name  string
		spans []BandSpan
	}{
		{"gap", []BandSpan{{0, 720, Flat}}},
		{"overlap", []BandSpan{{0, 800, Flat}, {700, 1440, Peak}}},
		{"inverted", []BandSpan{{100, 50, Flat}, {0, 1440, Peak}}},
		{"out of range", []BandSpan{{0, 1500, Flat}}},
		{"bad band", []BandSpan{{0, 1440, Band(9)}}},
	}
	for _, c := range cases {
		if _, err := NewTariff(c.spans, 1, 2, 3); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFareFlagFallOnly(t *testing.T) {
	f := ShenzhenFares()
	// A 1 km, 0-minute trip at noon: flag fall only.
	if got := f.Fare(1.0, 0, 12); got != 10.0 {
		t.Fatalf("short trip fare = %v, want 10", got)
	}
}

func TestFareDistanceAndTime(t *testing.T) {
	f := ShenzhenFares()
	// 10 km, 20 min, noon: 10 + 8*2.6 + 20*0.8 = 46.8
	want := 10 + 8*2.6 + 20*0.8
	if got := f.Fare(10, 20, 12); math.Abs(got-want) > 1e-9 {
		t.Fatalf("fare = %v, want %v", got, want)
	}
}

func TestFareNightSurcharge(t *testing.T) {
	f := ShenzhenFares()
	day := f.Fare(10, 20, 12)
	night := f.Fare(10, 20, 2)
	if math.Abs(night-day*1.3) > 1e-9 {
		t.Fatalf("night fare = %v, want %v", night, day*1.3)
	}
	// Window wraps: 23:00 is night, 6:00 is not.
	if !f.IsNight(23) || f.IsNight(6) || f.IsNight(12) {
		t.Fatal("IsNight window wrong")
	}
}

func TestFareNegativeInputsClamped(t *testing.T) {
	f := ShenzhenFares()
	if got := f.Fare(-5, -10, 12); got != f.FlagFallCNY {
		t.Fatalf("negative inputs fare = %v, want flag fall", got)
	}
}

func TestFareMonotoneInDistance(t *testing.T) {
	f := ShenzhenFares()
	prev := 0.0
	for km := 0.0; km < 50; km += 2.5 {
		fare := f.Fare(km, 15, 10)
		if fare < prev {
			t.Fatalf("fare decreased with distance at %v km", km)
		}
		prev = fare
	}
}

func TestBandString(t *testing.T) {
	if OffPeak.String() != "off-peak" || Flat.String() != "flat" || Peak.String() != "peak" {
		t.Fatal("Band.String wrong")
	}
	if Band(9).String() == "" {
		t.Fatal("unknown band should still format")
	}
}
