package pricing

// FareSchedule is a taxi fare model in the style of the Shenzhen taxi
// tariff: a flag-fall covering the first FlagDistanceKm kilometres, a per-km
// rate beyond that, a per-minute charge compensating slow traffic, and a
// night surcharge multiplier between NightStartHour and NightEndHour.
type FareSchedule struct {
	FlagFallCNY    float64 // base fare
	FlagDistanceKm float64 // distance included in the flag fall
	PerKmCNY       float64 // rate beyond the flag distance
	PerMinuteCNY   float64 // time charge applied to the whole trip
	NightSurcharge float64 // multiplier (e.g. 1.3) applied during night hours
	NightStartHour int     // inclusive, 0-23
	NightEndHour   int     // exclusive, 0-23
}

// ShenzhenFares returns a fare schedule close to the published Shenzhen taxi
// tariff (2019): 10 CNY flag fall for 2 km, 2.6 CNY/km after, 0.8 CNY/min
// waiting-time equivalent, 30% night surcharge 23:00-06:00.
func ShenzhenFares() FareSchedule {
	return FareSchedule{
		FlagFallCNY:    10.0,
		FlagDistanceKm: 2.0,
		PerKmCNY:       2.6,
		PerMinuteCNY:   0.8,
		NightSurcharge: 1.3,
		NightStartHour: 23,
		NightEndHour:   6,
	}
}

// IsNight reports whether hour (0-23) falls in the surcharge window,
// handling windows that wrap past midnight.
func (f FareSchedule) IsNight(hour int) bool {
	if f.NightSurcharge <= 1 {
		return false
	}
	if f.NightStartHour <= f.NightEndHour {
		return hour >= f.NightStartHour && hour < f.NightEndHour
	}
	return hour >= f.NightStartHour || hour < f.NightEndHour
}

// Fare returns the CNY revenue of a trip of distanceKm kilometres lasting
// durationMin minutes that started at the given hour of day.
func (f FareSchedule) Fare(distanceKm, durationMin float64, hour int) float64 {
	if distanceKm < 0 {
		distanceKm = 0
	}
	if durationMin < 0 {
		durationMin = 0
	}
	fare := f.FlagFallCNY
	if extra := distanceKm - f.FlagDistanceKm; extra > 0 {
		fare += extra * f.PerKmCNY
	}
	fare += durationMin * f.PerMinuteCNY
	if f.IsNight(hour) {
		fare *= f.NightSurcharge
	}
	return fare
}
