package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/sim"
)

// maxBodyBytes bounds an ingest request body; batches are bounded in events
// anyway, this just stops a hostile body before it is buffered.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP mux:
//
//	POST /ingest          NDJSON event batch → 202, 400, 429 (+Retry-After), 503
//	POST /step            {"slots":n} advance on demand → {"stepped":n}
//	POST /policy/reload   {"path":p} validate + hot-swap → 200, 409, 422
//	GET  /decisions       ?slot=k (default: latest) → decisions of one slot
//	GET  /decisions/digest  canonical decision-stream digest so far
//	GET  /healthz         liveness + clock + queue depth
//	GET  /metrics         telemetry snapshot (text, or ?format=json)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /step", s.handleStep)
	mux.HandleFunc("POST /policy/reload", s.handleReload)
	mux.HandleFunc("GET /decisions", s.handleDecisions)
	mux.HandleFunc("GET /decisions/digest", s.handleDigest)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// ingestResponse acknowledges an admitted batch.
type ingestResponse struct {
	Accepted  int `json:"accepted"`
	Watermark int `json:"watermark_min"`
	Slot      int `json:"slot"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBodyBytes {
		s.met.badBatches.Inc()
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body exceeds %d bytes", maxBodyBytes))
		return
	}
	events, err := ParseBatch(body, s.cfg.MaxBatch)
	if err != nil {
		s.met.badBatches.Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch err := s.Enqueue(events); {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrBacklogged):
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusAccepted, ingestResponse{
			Accepted:  len(events),
			Watermark: s.Watermark(),
			Slot:      s.Slot(),
		})
	}
}

// retryAfter estimates how long a rejected producer should back off. The
// queue drains at event-absorption speed, which is fast relative to any
// wall-clock second; one second is the honest floor HTTP's integer header
// allows and what load generators key off.
func (s *Server) retryAfter() string { return "1" }

type stepRequest struct {
	Slots int `json:"slots"`
}

type stepResponse struct {
	Stepped int  `json:"stepped"`
	Slot    int  `json:"slot"`
	NowMin  int  `json:"now_min"`
	Done    bool `json:"done"`
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	stepped, err := s.StepSlots(r.Context(), req.Slots)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, stepResponse{
		Stepped: stepped, Slot: s.Slot(), NowMin: s.Now(), Done: s.Done(),
	})
}

type reloadRequest struct {
	Path string `json:"path"`
}

type reloadResponse struct {
	Policy string `json:"policy"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Reload == nil {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: hot swap not configured"))
		return
	}
	var req reloadRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reload needs a checkpoint path"))
		return
	}
	switch err := s.Reload(r.Context(), req.Path); {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		// Validation failed: the old policy keeps serving (fail closed).
		writeError(w, http.StatusUnprocessableEntity, err)
	default:
		writeJSON(w, http.StatusOK, reloadResponse{Policy: s.PolicyName()})
	}
}

// decisionJSON is the wire form of one displacement decision.
type decisionJSON struct {
	Slot   int    `json:"slot"`
	Taxi   int    `json:"taxi"`
	Region int    `json:"region"`
	Action string `json:"action"`
	Index  int    `json:"action_index"`
}

type decisionsResponse struct {
	Slot      int            `json:"slot"`
	Decisions []decisionJSON `json:"decisions"`
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	slot := -1
	if q := r.URL.Query().Get("slot"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad slot %q", q))
			return
		}
		slot = n
	}
	ds, slot, ok := s.Decisions(slot)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no decisions retained for slot %d", slot))
		return
	}
	out := decisionsResponse{Slot: slot, Decisions: make([]decisionJSON, len(ds))}
	for i, d := range ds {
		out.Decisions[i] = decisionJSON{
			Slot: d.Slot, Taxi: d.Taxi, Region: d.Region,
			Action: d.Action.String(), Index: sim.ActionIndex(d.Action),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type digestResponse struct {
	Slots     int    `json:"slots"`
	Decisions int    `json:"decisions"`
	Digest    string `json:"digest"`
}

func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	slots, decisions, digest := s.DigestState()
	writeJSON(w, http.StatusOK, digestResponse{Slots: slots, Decisions: decisions, Digest: digest})
}

// healthzResponse is the liveness surface: the engine clock, feed watermark,
// queue depth, and lifecycle phase ("ok", "draining", "done").
type healthzResponse struct {
	Status     string `json:"status"`
	Policy     string `json:"policy"`
	Slot       int    `json:"slot"`
	NowMin     int    `json:"now_min"`
	HorizonMin int    `json:"horizon_min"`
	Watermark  int    `json:"watermark_min"`
	QueueDepth int    `json:"queue_depth"`
	Done       bool   `json:"done"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Done() {
		status = "done"
	}
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:     status,
		Policy:     s.PolicyName(),
		Slot:       s.Slot(),
		NowMin:     s.Now(),
		HorizonMin: s.horizonMin,
		Watermark:  s.Watermark(),
		QueueDepth: s.QueueDepth(),
		Done:       s.Done(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		data, err := snap.JSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, snap.Text())
}
