// Package serve is the online dispatch service: a long-running engine that
// loads a trained policy bundle (.fmck), ingests a request/GPS event stream
// in the Section II Table I schema, advances simulation slots on a
// configurable clock or on demand, and answers per-slot displacement
// decisions over HTTP/JSON.
//
// Architecture (DESIGN.md §10). The service is a driver around the same
// pure slot loop the batch path runs — policy.Runner — over the same
// deterministic environment (sequential *sim.Env or the sharded
// shard.Engine). The ingested feed is the service's clock and observability
// plane: the event high-watermark decides when a slot may close, exactly the
// FleetAI shape of an engine stepped by an external feed rather than an
// internal loop. Because the environment realizes the world deterministically
// from its seed (demand included), a served run is byte-identical — trace
// digest and decision digest — to a batch run of the same (policy, city,
// seed, scenario); the serve-equivalence test pins that. Assimilating feed
// demand into the twin is the named follow-up in ROADMAP.md.
//
// Contracts:
//
//   - Backpressure: ingest admission is atomic per batch against a bounded
//     queue. A batch that does not fit is rejected whole with 429 and a
//     Retry-After hint; an accepted batch is never dropped — every admitted
//     event is processed before drain completes.
//   - Hot swap: POST /policy/reload validates a candidate checkpoint into a
//     fresh learner off the driving goroutine (the checkpoint package's
//     fail-closed guarantees apply: digest, kind, fingerprint); only a fully
//     validated policy is installed, between slots. The old policy serves
//     throughout, and a failed reload leaves it untouched.
//   - Drain: Drain stops admission (503), processes every queued event,
//     finishes any slots the watermark already covers, and stops the driver.
//     Reloads during drain are refused.
//
// All environment and policy access happens on the single driver goroutine;
// HTTP handlers communicate with it through channels and read cheap
// snapshots through atomics, so the determinism contract of sim.Environment
// is never stretched.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Defaults for Config zero values.
const (
	DefaultQueueCap = 4096
	DefaultMaxBatch = 1024
	DefaultHistory  = 16
)

// Admission errors. Handlers map them onto HTTP statuses (429, 503).
var (
	// ErrBacklogged: the bounded ingest queue cannot hold the batch.
	ErrBacklogged = errors.New("serve: ingest queue full")
	// ErrDraining: the server no longer admits events or reloads.
	ErrDraining = errors.New("serve: draining")
)

// ReloadFunc builds and fully validates a fresh policy from a checkpoint
// path. It must not mutate the currently serving policy: implementations
// construct a new learner and decode into it (checkpoint decoding is
// all-or-nothing), so a failure leaves nothing to roll back.
type ReloadFunc func(path string) (policy.Policy, error)

// Config assembles a Server. Env and Policy are required.
type Config struct {
	// Env is the dispatch engine's environment (twin). The server owns it:
	// no other goroutine may touch it after New.
	Env sim.Environment
	// Policy makes the displacement decisions until a reload replaces it.
	Policy policy.Policy
	// Seed seeds the run (environment reset and policy episode), exactly as
	// the batch evaluation path seeds policy.Evaluate.
	Seed int64
	// QueueCap bounds the ingest queue (default DefaultQueueCap). Admission
	// beyond it backpressures with ErrBacklogged/429.
	QueueCap int
	// MaxBatch bounds events per ingest batch (default DefaultMaxBatch).
	MaxBatch int
	// History is how many recent slots of decisions stay queryable
	// (default DefaultHistory).
	History int
	// SlotEvery, when positive, also advances one slot per tick of a wall
	// clock — the "configurable clock" mode. Zero means slots advance only
	// from the feed watermark or explicit /step calls.
	SlotEvery time.Duration
	// Reload validates candidate policies for hot swap; nil disables
	// /policy/reload (405).
	Reload ReloadFunc
	// Telemetry receives the service metrics; nil creates a private registry
	// so /metrics always serves.
	Telemetry *telemetry.Registry
}

// Server is the online dispatch service. Create with New, start the driver
// with Start, mount Handler on an http.Server, and stop with Drain.
type Server struct {
	cfg        Config
	runner     *policy.Runner
	reg        *telemetry.Registry
	horizonMin int // constant after New; cached so handlers never touch Env

	// Admission: mu serializes queue-capacity checks with sends so a batch
	// is admitted atomically (the driver only ever removes, so a passed
	// check cannot be invalidated). draining flips once, under mu, and is
	// read lock-free by handlers.
	mu       sync.Mutex
	queue    chan Event
	draining atomic.Bool
	started  bool
	drainCh  chan struct{}
	stopped  chan struct{}

	// Driver requests.
	stepCh chan stepReq
	swapCh chan swapReq

	// Published state (written by the driver, read by handlers).
	slot      atomic.Int64
	nowMin    atomic.Int64
	watermark atomic.Int64
	done      atomic.Bool

	// Decision history and running digest, guarded by decMu.
	decMu     sync.RWMutex
	history   map[int][]policy.Decision
	digest    hash.Hash
	slotCount int
	decCount  int

	met serveMetrics
}

type stepReq struct {
	slots int
	resp  chan int
}

type swapReq struct {
	pol  policy.Policy
	resp chan error
}

// serveMetrics holds the resolved telemetry handles (nil-safe).
type serveMetrics struct {
	ingestBatches  *telemetry.Counter
	ingestEvents   *telemetry.Counter
	rejectBatches  *telemetry.Counter
	rejectEvents   *telemetry.Counter
	badBatches     *telemetry.Counter
	gpsEvents      *telemetry.Counter
	requestEvents  *telemetry.Counter
	slots          *telemetry.Counter
	decisions      *telemetry.Counter
	reloadOK       *telemetry.Counter
	reloadFailed   *telemetry.Counter
	queueDepth     *telemetry.Gauge
	slotGauge      *telemetry.Gauge
	watermarkGauge *telemetry.Gauge
	stepTimer      *telemetry.Timer
}

// New assembles a server: it resets cfg.Env with cfg.Seed and begins the
// policy's episode (via policy.Runner), so install hooks/recorders on the
// environment before calling New.
func New(cfg Config) (*Server, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("serve: Config.Env is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("serve: Config.Policy is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		runner:  policy.NewRunner(cfg.Policy, cfg.Env, cfg.Seed),
		reg:     reg,
		queue:   make(chan Event, cfg.QueueCap),
		drainCh: make(chan struct{}),
		stopped: make(chan struct{}),
		stepCh:  make(chan stepReq),
		swapCh:  make(chan swapReq),
		history: make(map[int][]policy.Decision),
		digest:  sha256.New(),
		met: serveMetrics{
			ingestBatches:  reg.Counter("serve.ingest.batches"),
			ingestEvents:   reg.Counter("serve.ingest.events"),
			rejectBatches:  reg.Counter("serve.ingest.rejected_batches"),
			rejectEvents:   reg.Counter("serve.ingest.rejected_events"),
			badBatches:     reg.Counter("serve.ingest.bad_batches"),
			gpsEvents:      reg.Counter("serve.ingest.gps"),
			requestEvents:  reg.Counter("serve.ingest.requests"),
			slots:          reg.Counter("serve.slots"),
			decisions:      reg.Counter("serve.decisions"),
			reloadOK:       reg.Counter("serve.reload.ok"),
			reloadFailed:   reg.Counter("serve.reload.failed"),
			queueDepth:     reg.Gauge("serve.queue.depth"),
			slotGauge:      reg.Gauge("serve.slot"),
			watermarkGauge: reg.Gauge("serve.watermark_min"),
			stepTimer:      reg.Timer("serve.step"),
		},
	}
	s.horizonMin = cfg.Env.HorizonMin()
	s.nowMin.Store(int64(cfg.Env.Now()))
	s.slot.Store(int64(cfg.Env.Slot()))
	s.done.Store(cfg.Env.Done())
	s.watermark.Store(-1)
	return s, nil
}

// Registry returns the server's metrics registry (the configured one, or the
// private registry New created).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Start launches the driver goroutine. Call exactly once.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("serve: Start called twice")
	}
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// Drain stops admission, lets the driver process every already-admitted
// event (finishing any slots the watermark covers), and stops it. It returns
// nil once the driver has exited, or ctx.Err() on timeout. Drain is
// idempotent; concurrent calls all wait for the same shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining.Load()
	if first {
		s.draining.Store(true)
		close(s.drainCh)
		if !s.started {
			// Driver never ran: nothing to wait for.
			close(s.stopped)
		}
	}
	s.mu.Unlock()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// Enqueue admits a parsed batch atomically: either every event is queued or
// none is. It returns ErrDraining after Drain and ErrBacklogged when the
// bounded queue cannot hold the whole batch — the caller (the ingest
// handler, or a test driving the server directly) maps those onto 503/429.
func (s *Server) Enqueue(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return ErrDraining
	}
	if len(events) > cap(s.queue)-len(s.queue) {
		s.met.rejectBatches.Inc()
		s.met.rejectEvents.Add(int64(len(events)))
		return ErrBacklogged
	}
	for _, ev := range events {
		s.queue <- ev
	}
	s.met.ingestBatches.Inc()
	s.met.ingestEvents.Add(int64(len(events)))
	s.met.queueDepth.Set(float64(len(s.queue)))
	return nil
}

// QueueDepth returns the number of admitted-but-unprocessed events.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Watermark returns the highest event timestamp ingested so far (-1 before
// any event).
func (s *Server) Watermark() int { return int(s.watermark.Load()) }

// Slot returns the next slot index the engine will step.
func (s *Server) Slot() int { return int(s.slot.Load()) }

// Now returns the engine's current absolute minute.
func (s *Server) Now() int { return int(s.nowMin.Load()) }

// Done reports whether the engine has reached its horizon.
func (s *Server) Done() bool { return s.done.Load() }

// StepSlots asks the driver to advance up to n slots immediately (the
// on-demand mode) and reports how many it stepped — fewer when the horizon
// intervenes, zero after drain.
func (s *Server) StepSlots(ctx context.Context, n int) (int, error) {
	if n <= 0 {
		n = 1
	}
	req := stepReq{slots: n, resp: make(chan int, 1)}
	select {
	case s.stepCh <- req:
	case <-s.stopped:
		return 0, ErrDraining
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	select {
	case stepped := <-req.resp:
		return stepped, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Reload validates the checkpoint at path into a fresh policy and, on
// success, installs it atomically between slots. The serving policy is
// untouched on any failure, and reloads during drain are refused.
func (s *Server) Reload(ctx context.Context, path string) error {
	if s.cfg.Reload == nil {
		return fmt.Errorf("serve: hot swap not configured")
	}
	if s.draining.Load() {
		s.met.reloadFailed.Inc()
		return ErrDraining
	}
	p, err := s.cfg.Reload(path)
	if err != nil {
		s.met.reloadFailed.Inc()
		return err
	}
	req := swapReq{pol: p, resp: make(chan error, 1)}
	select {
	case s.swapCh <- req:
	case <-s.stopped:
		s.met.reloadFailed.Inc()
		return ErrDraining
	case <-ctx.Done():
		s.met.reloadFailed.Inc()
		return ctx.Err()
	}
	select {
	case err := <-req.resp:
		if err != nil {
			s.met.reloadFailed.Inc()
		} else {
			s.met.reloadOK.Inc()
		}
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PolicyName returns the name of the currently serving policy. It is safe
// for handlers because Policy.Name is a pure accessor on every
// implementation and swaps replace the pointer between slots.
func (s *Server) PolicyName() string {
	s.decMu.RLock()
	defer s.decMu.RUnlock()
	return s.runner.Policy().Name()
}

// --- driver goroutine ---

// loop is the driver: the only goroutine that touches the environment and
// the policy. It folds ingested events into the watermark, steps slots when
// the watermark (or the optional wall clock, or an explicit step request)
// says so, installs validated policies between slots, and on drain processes
// the remaining queue before exiting.
func (s *Server) loop() {
	defer close(s.stopped)
	var tick <-chan time.Time
	if s.cfg.SlotEvery > 0 {
		t := time.NewTicker(s.cfg.SlotEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case ev := <-s.queue:
			s.absorb(ev)
			s.advance()
		case req := <-s.stepCh:
			req.resp <- s.stepN(req.slots)
		case req := <-s.swapCh:
			req.resp <- s.install(req.pol)
		case <-tick:
			s.stepN(1)
		case <-s.drainCh:
			s.drainQueue()
			return
		}
	}
}

// drainQueue empties the admitted backlog. Admission is already closed (the
// draining flag precedes closing drainCh), so the queue only shrinks.
func (s *Server) drainQueue() {
	for {
		select {
		case ev := <-s.queue:
			s.absorb(ev)
		default:
			s.advance()
			return
		}
	}
}

// absorb folds one event into the watermark and the per-kind counters.
func (s *Server) absorb(ev Event) {
	if int64(ev.TimeMin) > s.watermark.Load() {
		s.watermark.Store(int64(ev.TimeMin))
		s.met.watermarkGauge.Set(float64(ev.TimeMin))
	}
	switch ev.Kind {
	case KindGPS:
		s.met.gpsEvents.Inc()
	case KindRequest:
		s.met.requestEvents.Inc()
	}
	s.met.queueDepth.Set(float64(len(s.queue)))
}

// advance steps every slot the watermark already covers: slot [Now,
// Now+SlotLen) may close once an event at or past its end minute has been
// seen.
func (s *Server) advance() {
	for !s.runner.Done() {
		env := s.runner.Env()
		if s.watermark.Load() < int64(env.Now()+env.SlotLen()) {
			return
		}
		s.stepOnce()
	}
}

// stepN steps up to n slots regardless of the watermark (explicit /step or
// the wall clock), stopping at the horizon.
func (s *Server) stepN(n int) int {
	stepped := 0
	for i := 0; i < n && !s.runner.Done(); i++ {
		s.stepOnce()
		stepped++
	}
	return stepped
}

// stepOnce closes one slot: run the decision loop, publish the decisions and
// the rolling digest, refresh the published clock.
func (s *Server) stepOnce() {
	stop := s.met.stepTimer.Start()
	ds := s.runner.StepSlot()
	stop()

	env := s.runner.Env()
	s.decMu.Lock()
	slot := 0
	if len(ds) > 0 {
		slot = ds[0].Slot
	} else {
		slot = env.Slot() - 1
	}
	s.history[slot] = append([]policy.Decision(nil), ds...)
	delete(s.history, slot-s.cfg.History)
	var line []byte
	for _, d := range ds {
		line = appendDecision(line[:0], d)
		s.digest.Write(line)
	}
	s.slotCount++
	s.decCount += len(ds)
	s.decMu.Unlock()

	s.met.slots.Inc()
	s.met.decisions.Add(int64(len(ds)))
	s.met.slotGauge.Set(float64(env.Slot()))
	s.slot.Store(int64(env.Slot()))
	s.nowMin.Store(int64(env.Now()))
	s.done.Store(env.Done())
}

// install swaps the serving policy between slots.
func (s *Server) install(p policy.Policy) error {
	s.decMu.Lock()
	s.runner.SetPolicy(p, s.cfg.Seed)
	s.decMu.Unlock()
	return nil
}

// Decisions returns a copy of the decisions of one slot (the latest when
// slot < 0) and whether that slot is in the retained window.
func (s *Server) Decisions(slot int) ([]policy.Decision, int, bool) {
	s.decMu.RLock()
	defer s.decMu.RUnlock()
	if slot < 0 {
		slot = int(s.slot.Load()) - 1
	}
	ds, ok := s.history[slot]
	if !ok {
		return nil, slot, false
	}
	return append([]policy.Decision(nil), ds...), slot, true
}

// DigestState returns the number of slots stepped, decisions made, and the
// hex SHA-256 over the canonical decision stream so far — the serve-side
// half of the decision-equivalence checks.
func (s *Server) DigestState() (slots, decisions int, digest string) {
	s.decMu.RLock()
	defer s.decMu.RUnlock()
	return s.slotCount, s.decCount, hex.EncodeToString(s.digest.Sum(nil))
}

// appendDecision appends the canonical one-line encoding of d:
//
//	slot|taxi|region|action\n
//
// using Action.String()'s stable rendering. DigestDecisions and the server's
// rolling digest share it, so batch- and serve-side digests are comparable.
func appendDecision(dst []byte, d policy.Decision) []byte {
	dst = strconv.AppendInt(dst, int64(d.Slot), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(d.Taxi), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(d.Region), 10)
	dst = append(dst, '|')
	dst = append(dst, d.Action.String()...)
	return append(dst, '\n')
}

// DigestDecisions returns the hex SHA-256 of the canonical encoding of a
// decision stream — the batch-side counterpart of (*Server).DigestState.
func DigestDecisions(ds []policy.Decision) string {
	h := sha256.New()
	var line []byte
	for _, d := range ds {
		line = appendDecision(line[:0], d)
		h.Write(line)
	}
	return hex.EncodeToString(h.Sum(nil))
}
