package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
)

// The HTTP API battery: every endpoint's documented statuses and payload
// shapes, exercised through the same mux the binary mounts, plus the client
// wrappers (Digest, Healthz, PostBatch's 429 leg) the stream tooling uses.

func apiServer(t *testing.T, reload ReloadFunc) (*Server, *httptest.Server) {
	t.Helper()
	const seed = 41
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, Reload: reload, History: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPStepAndDecisions(t *testing.T) {
	srv, ts := apiServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/step", `{"slots":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/step: %s: %s", resp.Status, body)
	}
	var step stepResponse
	if err := json.Unmarshal(body, &step); err != nil {
		t.Fatal(err)
	}
	if step.Stepped != 3 || step.Slot != 3 || step.Done {
		t.Fatalf("/step answered %+v, want stepped=3 slot=3 done=false", step)
	}
	// Empty body steps one slot.
	if resp, body := postJSON(t, ts.URL+"/step", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("/step with empty body: %s: %s", resp.Status, body)
	}
	// Malformed body is a 400.
	if resp, _ := postJSON(t, ts.URL+"/step", `{"slots":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/step with bad body: %s, want 400", resp.Status)
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	resp, body = get("/decisions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/decisions: %s: %s", resp.Status, body)
	}
	var latest decisionsResponse
	if err := json.Unmarshal(body, &latest); err != nil {
		t.Fatal(err)
	}
	if latest.Slot != 3 || len(latest.Decisions) == 0 {
		t.Fatalf("/decisions answered slot %d with %d decisions, want slot 3 non-empty", latest.Slot, len(latest.Decisions))
	}
	for _, d := range latest.Decisions {
		if d.Action == "" || d.Slot != latest.Slot {
			t.Fatalf("malformed decision %+v", d)
		}
	}
	if resp, _ = get("/decisions?slot=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/decisions?slot=1: %s, want 200 inside retained window", resp.Status)
	}
	if resp, _ = get("/decisions?slot=99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/decisions?slot=99: %s, want 404 for an unstepped slot", resp.Status)
	}
	if resp, _ = get("/decisions?slot=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/decisions?slot=banana: %s, want 400", resp.Status)
	}
	if resp, _ = get("/decisions?slot=999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/decisions far future: %s, want 404", resp.Status)
	}

	resp, body = get("/decisions/digest")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/decisions/digest: %s", resp.Status)
	}
	var dig digestResponse
	if err := json.Unmarshal(body, &dig); err != nil {
		t.Fatal(err)
	}
	wantSlots, wantDecs, wantDigest := srv.DigestState()
	if dig.Slots != wantSlots || dig.Decisions != wantDecs || dig.Digest != wantDigest {
		t.Fatalf("/decisions/digest %+v, server state (%d,%d,%s)", dig, wantSlots, wantDecs, wantDigest)
	}

	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "serve.slots") {
		t.Fatalf("/metrics: %s: %s", resp.Status, body)
	}
	resp, body = get("/metrics?format=json")
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/metrics?format=json: %s: %s", resp.Status, body)
	}
}

func TestHTTPHealthzLifecycle(t *testing.T) {
	srv, ts := apiServer(t, nil)
	client := &Client{URL: ts.URL}
	ctx := context.Background()
	status, slot, _, done, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != "ok" || slot != 0 || done {
		t.Fatalf("fresh healthz = %q slot=%d done=%v, want ok/0/false", status, slot, done)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	status, _, _, _, err = client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != "draining" {
		t.Fatalf("healthz after drain = %q, want draining", status)
	}
	// /step during drain is a 503.
	if resp, _ := postJSON(t, ts.URL+"/step", `{"slots":1}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/step during drain: %s, want 503", resp.Status)
	}
}

func TestHTTPReload(t *testing.T) {
	const seed = 41
	dir := t.TempDir()
	good := writeFairMoveCheckpoint(t, dir, "good.fmck", 0.6, seed)
	srv, ts := apiServer(t, fairmoveReload(0.6, seed))

	// Bad request shapes first.
	if resp, _ := postJSON(t, ts.URL+"/policy/reload", `{`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed reload body: %s, want 400", resp.Status)
	}
	if resp, _ := postJSON(t, ts.URL+"/policy/reload", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty path: %s, want 400", resp.Status)
	}
	// Validation failure: 422, old policy kept.
	if resp, _ := postJSON(t, ts.URL+"/policy/reload", fmt.Sprintf(`{"path":%q}`, dir+"/missing.fmck")); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing checkpoint: %s, want 422", resp.Status)
	}
	if got := srv.PolicyName(); got != "GT" {
		t.Fatalf("failed HTTP reload replaced the policy: %q", got)
	}
	// Success: 200 with the new policy name.
	resp, body := postJSON(t, ts.URL+"/policy/reload", fmt.Sprintf(`{"path":%q}`, good))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid reload: %s: %s", resp.Status, body)
	}
	var rr reloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Policy != "FairMove" {
		t.Fatalf("reload answered policy %q, want FairMove", rr.Policy)
	}
	// Reload during drain: 409.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts.URL+"/policy/reload", fmt.Sprintf(`{"path":%q}`, good)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload during drain: %s, want 409", resp.Status)
	}
}

// TestHTTPReloadNotConfigured: without a ReloadFunc the endpoint answers 405.
func TestHTTPReloadNotConfigured(t *testing.T) {
	_, ts := apiServer(t, nil)
	if resp, _ := postJSON(t, ts.URL+"/policy/reload", `{"path":"x"}`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("reload without ReloadFunc: %s, want 405", resp.Status)
	}
}

// TestClientBackpressureRetry: PostBatch surfaces the 429 + Retry-After leg
// and Stream absorbs it without losing the batch.
func TestClientBackpressureRetry(t *testing.T) {
	const seed = 43
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the queue stays full, so the second batch must 429.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{URL: ts.URL, BatchSize: 4, MaxRetries: 2}
	ctx := context.Background()
	if _, bp, err := client.PostBatch(ctx, []Event{gpsAt(1), gpsAt(2), gpsAt(3), gpsAt(4)}); err != nil || bp {
		t.Fatalf("first batch: backpressured=%v err=%v", bp, err)
	}
	after, bp, err := client.PostBatch(ctx, []Event{gpsAt(5)})
	if err != nil || !bp {
		t.Fatalf("second batch into a full queue: backpressured=%v err=%v", bp, err)
	}
	if after <= 0 {
		t.Fatalf("429 Retry-After hint = %v, want positive", after)
	}
	// Stream against the wedged queue exhausts its bounded retries.
	if _, err := client.Stream(ctx, []Event{gpsAt(6)}, 0); err == nil {
		t.Fatal("Stream against a permanently full queue must fail after MaxRetries")
	}
	// Once the driver runs, the same stream goes through (paced, to cover
	// the rps leg of Stream).
	srv.Start()
	st, err := client.Stream(ctx, []Event{gpsAt(6), gpsAt(7)}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 2 {
		t.Fatalf("streamed %d events, want 2", st.Events)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSlotEveryTicker: SlotEvery advances slots on the wall clock with no
// feed and no /step calls.
func TestSlotEveryTicker(t *testing.T) {
	const seed = 44
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, SlotEvery: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Slot() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker advanced only %d slots in 10s", srv.Slot())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
