package serve

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
)

// soakEvents scales TestServeSoak beyond its -short default: `make soak`
// passes -soak-events to run the statistical tier for minutes instead of
// milliseconds. The invariants checked are identical at every scale.
var soakEvents = flag.Int("soak-events", 0, "total events the soak test pushes (0 = short default)")

// gpsAt builds a minimal valid GPS event at an absolute minute.
func gpsAt(min int) Event {
	return Event{Kind: KindGPS, TimeMin: min, VehicleID: min % 24}
}

// TestBackpressureDeterministic pins the admission contract without any
// concurrency: admission is atomic per batch against the bounded queue, a
// rejected batch leaves the queue untouched, and every admitted event is
// processed by drain.
func TestBackpressureDeterministic(t *testing.T) {
	const seed = 31
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The driver is intentionally not started: admission must work (and
	// backpressure must be exact) independent of consumption.
	fill := make([]Event, 8)
	for i := range fill {
		fill[i] = gpsAt(i)
	}
	if err := srv.Enqueue(fill); err != nil {
		t.Fatalf("batch at exactly queue capacity rejected: %v", err)
	}
	if err := srv.Enqueue([]Event{gpsAt(99)}); !errors.Is(err, ErrBacklogged) {
		t.Fatalf("enqueue into a full queue = %v, want ErrBacklogged", err)
	}
	if got := srv.QueueDepth(); got != 8 {
		t.Fatalf("rejected batch changed queue depth: %d, want 8", got)
	}
	reg := srv.Registry()
	if v := reg.Counter("serve.ingest.rejected_batches").Value(); v != 1 {
		t.Fatalf("rejected_batches = %d, want 1", v)
	}
	if v := reg.Counter("serve.ingest.rejected_events").Value(); v != 1 {
		t.Fatalf("rejected_events = %d, want 1", v)
	}
	// Start and drain: the 8 admitted events must all be absorbed.
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := srv.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after drain = %d, want 0 (admitted events dropped)", got)
	}
	if v := reg.Counter("serve.ingest.gps").Value(); v != 8 {
		t.Fatalf("processed gps events = %d, want all 8 admitted", v)
	}
	if got, want := srv.Watermark(), 7; got != want {
		t.Fatalf("watermark = %d, want %d", got, want)
	}
}

// TestBackpressureHTTP pins the wire protocol: 202 on admission, 429 with a
// Retry-After hint on overload, 400 on malformed bodies, 503 after drain.
func TestBackpressureHTTP(t *testing.T) {
	const seed = 32
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	ok := post(`{"kind":"gps","time_min":1,"vehicle_id":0}` + "\n" + `{"kind":"request","time_min":2,"region":3}`)
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("valid batch: %s, want 202", ok.Status)
	}
	over := post(`{"kind":"gps","time_min":3}` + "\n" + `{"kind":"gps","time_min":4}` + "\n" + `{"kind":"gps","time_min":5}`)
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow batch: %s, want 429", over.Status)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	bad := post(`{"kind":"warp","time_min":1}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: %s, want 400", bad.Status)
	}
	if v := srv.Registry().Counter("serve.ingest.bad_batches").Value(); v != 1 {
		t.Fatalf("bad_batches = %d, want 1", v)
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	gone := post(`{"kind":"gps","time_min":9}`)
	if gone.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after drain: %s, want 503", gone.Status)
	}
}

// TestDrainQueueMonotone: once drain has begun, admission is closed, so the
// queue depth can only shrink. A sampler races the drain and asserts every
// observation is <= the previous one.
func TestDrainQueueMonotone(t *testing.T) {
	const seed = 33
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, QueueCap: 4096})
	if err != nil {
		t.Fatal(err)
	}
	fill := make([]Event, 4096)
	for i := range fill {
		fill[i] = gpsAt(i % 50)
	}
	if err := srv.Enqueue(fill); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	done := make(chan struct{})
	var violation error
	go func() {
		defer close(done)
		prev := srv.QueueDepth()
		for !srv.Draining() {
			// Wait for the drain to begin; depth may bounce before that if
			// another test pattern enqueued, but here nothing else does.
			time.Sleep(50 * time.Microsecond)
		}
		for srv.QueueDepth() > 0 {
			d := srv.QueueDepth()
			if d > prev {
				violation = fmt.Errorf("queue depth grew during drain: %d -> %d", prev, d)
				return
			}
			prev = d
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	<-done
	if violation != nil {
		t.Fatal(violation)
	}
	if got := srv.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", got)
	}
}

// TestServeSoak is the statistical tier: many producers hammer a deliberately
// tiny queue through the full HTTP stack. The accounting invariants must hold
// exactly whatever the interleaving:
//
//	accepted + rejected == sent            (every batch resolves one way)
//	processed == accepted                  (no admitted event is dropped)
//	queue empty after drain
//
// In -short mode (make ci) it pushes a few thousand events; `make soak`
// raises -soak-events for a longer run with the identical invariants.
func TestServeSoak(t *testing.T) {
	const seed = 34
	total := 3 * 1024
	if *soakEvents > 0 {
		total = *soakEvents
	} else if testing.Short() {
		total = 1024
	}
	const producers, batchSize = 8, 16
	perProducer := total / producers / batchSize // batches per producer

	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mu sync.Mutex
	var accepted, rejected, sent int
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < perProducer; b++ {
				var buf bytes.Buffer
				for i := 0; i < batchSize; i++ {
					fmt.Fprintf(&buf, `{"kind":"gps","time_min":%d,"vehicle_id":%d}`+"\n", (p*perProducer+b)%120, i%24)
				}
				resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				mu.Lock()
				sent += batchSize
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted += batchSize
				case http.StatusTooManyRequests:
					rejected += batchSize
				default:
					t.Errorf("unexpected ingest status %s", resp.Status)
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	if accepted+rejected != sent {
		t.Fatalf("accounting leak: accepted %d + rejected %d != sent %d", accepted, rejected, sent)
	}
	reg := srv.Registry()
	if v := reg.Counter("serve.ingest.events").Value(); v != int64(accepted) {
		t.Fatalf("server admitted %d events, clients saw %d accepted", v, accepted)
	}
	if v := reg.Counter("serve.ingest.rejected_events").Value(); v != int64(rejected) {
		t.Fatalf("server rejected %d events, clients saw %d rejected", v, rejected)
	}
	processed := reg.Counter("serve.ingest.gps").Value() + reg.Counter("serve.ingest.requests").Value()
	if processed != int64(accepted) {
		t.Fatalf("processed %d events, admitted %d — admitted events were dropped", processed, accepted)
	}
	if got := srv.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", got)
	}
	t.Logf("soak: sent %d, accepted %d, rejected %d (%.1f%% backpressure)",
		sent, accepted, rejected, 100*float64(rejected)/float64(sent))
}
