package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
)

// The hot-swap battery: reloads install atomically between slots, every
// corruption mode fails closed with the old policy still serving, and
// concurrent reloads under ingest load are race-free (run under `make race`).

// fairmoveReload is the production ReloadFunc shape: build a fresh learner,
// decode the checkpoint into it, never touch the serving policy.
func fairmoveReload(alpha float64, seed int64) ReloadFunc {
	return func(path string) (policy.Policy, error) {
		fm, err := core.New(core.DefaultConfig(alpha, seed))
		if err != nil {
			return nil, err
		}
		if _, err := checkpoint.ReadFile(path, fm); err != nil {
			return nil, err
		}
		return fm, nil
	}
}

// writeFairMoveCheckpoint writes an (untrained) FairMove checkpoint — swap
// validity is about container integrity, not training quality.
func writeFairMoveCheckpoint(t *testing.T, dir, name string, alpha float64, seed int64) string {
	t.Helper()
	fm, err := core.New(core.DefaultConfig(alpha, seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := checkpoint.WriteFile(path, fm); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, seed int64, reload ReloadFunc) *Server {
	t.Helper()
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, Reload: reload})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestHotSwapInstallsValidatedPolicy(t *testing.T) {
	const seed = 21
	dir := t.TempDir()
	good := writeFairMoveCheckpoint(t, dir, "good.fmck", 0.6, seed)
	srv := newTestServer(t, seed, fairmoveReload(0.6, seed))
	srv.Start()
	ctx := context.Background()
	if _, err := srv.StepSlots(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := srv.PolicyName(); got != "GT" {
		t.Fatalf("serving %q before swap, want GT", got)
	}
	if err := srv.Reload(ctx, good); err != nil {
		t.Fatalf("reload of a valid checkpoint failed: %v", err)
	}
	if got := srv.PolicyName(); got != "FairMove" {
		t.Fatalf("serving %q after swap, want FairMove", got)
	}
	// The swapped-in policy must actually serve the next slots.
	if n, err := srv.StepSlots(ctx, 2); err != nil || n != 2 {
		t.Fatalf("post-swap StepSlots = %d, %v", n, err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if v := srv.Registry().Counter("serve.reload.ok").Value(); v != 1 {
		t.Fatalf("serve.reload.ok = %d, want 1", v)
	}
}

// TestHotSwapFailsClosed covers the corruption modes: a byte-flipped
// container, a truncated file, a fingerprint forgery (valid container sealed
// for different hyperparameters), and a missing file. Every one must be
// rejected with the matching sentinel and leave the old policy serving.
func TestHotSwapFailsClosed(t *testing.T) {
	const seed = 22
	dir := t.TempDir()
	good := writeFairMoveCheckpoint(t, dir, "good.fmck", 0.6, seed)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := filepath.Join(dir, "corrupt.fmck")
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(corrupt, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	truncated := filepath.Join(dir, "truncated.fmck")
	if err := os.WriteFile(truncated, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// A checkpoint sealed under different hyperparameters (alpha) carries a
	// different fingerprint: structurally valid, semantically wrong.
	forged := writeFairMoveCheckpoint(t, dir, "forged.fmck", 0.25, seed)

	srv := newTestServer(t, seed, fairmoveReload(0.6, seed))
	srv.Start()
	ctx := context.Background()

	cases := []struct {
		name string
		path string
		want error
	}{
		{"byte flip", corrupt, nil}, // any error is acceptable; digest or payload
		{"truncated", truncated, checkpoint.ErrTruncated},
		{"fingerprint forgery", forged, checkpoint.ErrFingerprint},
		{"missing file", filepath.Join(dir, "nope.fmck"), nil},
	}
	for _, tc := range cases {
		err := srv.Reload(ctx, tc.path)
		if err == nil {
			t.Fatalf("%s: reload succeeded, must fail closed", tc.name)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
		if got := srv.PolicyName(); got != "GT" {
			t.Fatalf("%s: old policy replaced (serving %q) despite failed reload", tc.name, got)
		}
		// The server must keep serving decisions after each failure.
		if n, err := srv.StepSlots(ctx, 1); err != nil || n != 1 {
			t.Fatalf("%s: server wedged after failed reload: %d, %v", tc.name, n, err)
		}
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if v := srv.Registry().Counter("serve.reload.failed").Value(); v != int64(len(cases)) {
		t.Fatalf("serve.reload.failed = %d, want %d", v, len(cases))
	}
	if v := srv.Registry().Counter("serve.reload.ok").Value(); v != 0 {
		t.Fatalf("serve.reload.ok = %d, want 0", v)
	}
}

// TestHotSwapConcurrent hammers reload (valid and corrupt alternating) from
// several goroutines while ingest and stepping continue — the race-detector
// tier of the battery. Invariants: the server never wedges, every reload
// resolves, and ok+failed matches attempts.
func TestHotSwapConcurrent(t *testing.T) {
	const seed = 23
	dir := t.TempDir()
	good := writeFairMoveCheckpoint(t, dir, "good.fmck", 0.6, seed)
	bad := filepath.Join(dir, "bad.fmck")
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x01
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, Reload: fairmoveReload(0.6, seed)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	feed := RecordFeed(city, sim.DefaultOptions(1), seed, 8)
	const reloaders, attempts = 4, 8
	var wg sync.WaitGroup
	var okCount, failCount int64
	var cntMu sync.Mutex
	for g := 0; g < reloaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				path := good
				if (g+i)%2 == 1 {
					path = bad
				}
				err := srv.Reload(ctx, path)
				cntMu.Lock()
				if err != nil {
					failCount++
				} else {
					okCount++
				}
				cntMu.Unlock()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(feed); i += 64 {
			end := i + 64
			if end > len(feed) {
				end = len(feed)
			}
			if err := srv.Enqueue(feed[i:end]); err != nil {
				return // draining or backlogged: load is best-effort here
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := srv.StepSlots(ctx, 1); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if okCount+failCount != reloaders*attempts {
		t.Fatalf("reloads resolved %d+%d, want %d", okCount, failCount, reloaders*attempts)
	}
	if okCount == 0 {
		t.Fatal("no valid reload succeeded under load")
	}
	reg := srv.Registry()
	gotOK := reg.Counter("serve.reload.ok").Value()
	gotFail := reg.Counter("serve.reload.failed").Value()
	if gotOK != okCount || gotFail != failCount {
		t.Fatalf("counters ok=%d failed=%d, callers saw ok=%d failed=%d", gotOK, gotFail, okCount, failCount)
	}
}

// TestReloadDuringDrainRefused: once drain begins, reloads answer
// ErrDraining and the drain still completes.
func TestReloadDuringDrainRefused(t *testing.T) {
	const seed = 24
	dir := t.TempDir()
	good := writeFairMoveCheckpoint(t, dir, "good.fmck", 0.6, seed)
	srv := newTestServer(t, seed, fairmoveReload(0.6, seed))
	srv.Start()
	ctx := context.Background()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(ctx, good); !errors.Is(err, ErrDraining) {
		t.Fatalf("reload during drain = %v, want ErrDraining", err)
	}
}
