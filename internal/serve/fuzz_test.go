package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synth"
)

// fuzzSrv is one shared server per fuzz worker process: the target exercises
// the full HTTP ingest path (body limits, NDJSON parsing, batch admission,
// watermark absorption) against a live driver, so crashes anywhere in that
// stack surface as fuzz failures.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzMux  http.Handler
)

func fuzzServer() (*Server, http.Handler) {
	fuzzOnce.Do(func() {
		city, err := synth.Build(synth.MicroConfig(1234))
		if err != nil {
			panic(err)
		}
		env := sim.New(city, sim.DefaultOptions(1), 1234)
		fuzzSrv, err = New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: 1234, QueueCap: 1 << 16})
		if err != nil {
			panic(err)
		}
		fuzzSrv.Start()
		fuzzMux = fuzzSrv.Handler()
	})
	return fuzzSrv, fuzzMux
}

// FuzzHTTPIngest throws arbitrary bodies — malformed JSON, truncated
// batches, out-of-order and negative timestamps, unknown fields, oversized
// lines — at POST /ingest and checks the protocol invariants:
//
//   - the handler never panics and always answers one of its documented
//     statuses (202, 400, 413, 429, 503)
//   - a 202 implies the body was a valid batch (ParseBatch agrees)
//   - an invalid batch is never admitted: ParseBatch failure implies 400/413
//   - every response body is valid JSON
//   - the server's watermark never decreases (out-of-order input is legal
//     and folded into a high-watermark)
func FuzzHTTPIngest(f *testing.F) {
	f.Add([]byte(`{"kind":"gps","time_min":10,"vehicle_id":3,"lng":114.1,"lat":22.6,"speed_kmh":30,"occupied":true}`))
	f.Add([]byte(`{"kind":"request","time_min":7,"region":4}`))
	f.Add([]byte(`{"kind":"gps","time_min":50,"vehicle_id":1}` + "\n" + `{"kind":"request","time_min":3,"region":0}`))
	f.Add([]byte("\n\n{\"kind\":\"gps\",\"time_min\":1}\n\n"))
	f.Add([]byte(`{"kind":"gps","time_min":1,"vehicle_id"`)) // truncated mid-key
	f.Add([]byte(`{"kind":"warp","time_min":1}`))
	f.Add([]byte(`{"kind":"gps","time_min":-5}`))
	f.Add([]byte(`{"kind":"request","time_min":2,"region":-1}`))
	f.Add([]byte(`{"kind":"gps","time_min":1} trailing garbage`))
	f.Add([]byte(`{"kind":"gps","time_min":1,"bogus_field":9}`))
	f.Add([]byte(`{"kind":"gps","time_min":99999999999999999999}`)) // number overflow
	f.Add([]byte(`[{"kind":"gps","time_min":1}]`))                  // array, not NDJSON
	f.Add([]byte{0xff, 0xfe, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, body []byte) {
		srv, mux := fuzzServer()
		before := srv.Watermark()
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)

		code := rec.Code
		switch code {
		case http.StatusAccepted, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("undocumented status %d for body %q", code, body)
		}
		_, parseErr := ParseBatch(body, DefaultMaxBatch)
		if code == http.StatusAccepted && parseErr != nil {
			t.Fatalf("admitted a batch ParseBatch rejects (%v): %q", parseErr, body)
		}
		if parseErr != nil && code != http.StatusBadRequest && code != http.StatusRequestEntityTooLarge {
			t.Fatalf("invalid batch (%v) answered %d, want 400/413: %q", parseErr, code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("response body is not JSON: %q", rec.Body.Bytes())
		}
		if after := srv.Watermark(); after < before {
			t.Fatalf("watermark went backwards: %d -> %d", before, after)
		}
	})
}

// FuzzParseBatch round-trips: any batch ParseBatch accepts must re-encode
// via EncodeBatch and parse again to the same events — the decode side of
// the client/server wire contract.
func FuzzParseBatch(f *testing.F) {
	f.Add([]byte(`{"kind":"gps","time_min":10,"vehicle_id":3}`))
	f.Add([]byte(`{"kind":"request","time_min":7,"region":4}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		events, err := ParseBatch(body, 64)
		if err != nil {
			return
		}
		enc, err := EncodeBatch(events)
		if err != nil {
			t.Fatalf("accepted batch failed to re-encode: %v", err)
		}
		again, err := ParseBatch(enc, 64)
		if err != nil {
			t.Fatalf("re-encoded batch failed to parse: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed batch size: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if events[i] != again[i] {
				t.Fatalf("event %d changed in round trip: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
