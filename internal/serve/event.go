package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Event kinds of the ingest stream. The schema is the online analogue of the
// paper's Section II Table I datasets as cmd/datagen emits them: per-vehicle
// GPS fixes and trip requests. Timestamps are absolute simulation minutes,
// the same clock every engine and trace record uses.
const (
	// KindGPS is one vehicle position fix (Table I's e-taxi GPS stream).
	KindGPS = "gps"
	// KindRequest is one trip request originating in a region (the demand
	// the paper infers from its transaction stream).
	KindRequest = "request"
)

// Event is one row of the ingest stream. Fields beyond Kind and TimeMin are
// kind-specific: GPS fixes carry vehicle/position/speed/occupancy, requests
// carry the origin region.
type Event struct {
	Kind      string  `json:"kind"`
	TimeMin   int     `json:"time_min"`
	VehicleID int     `json:"vehicle_id,omitempty"`
	Lng       float64 `json:"lng,omitempty"`
	Lat       float64 `json:"lat,omitempty"`
	SpeedKmh  float64 `json:"speed_kmh,omitempty"`
	Occupied  bool    `json:"occupied,omitempty"`
	Region    int     `json:"region,omitempty"`
}

// Validate reports schema errors a single decoded event can carry.
func (e Event) Validate() error {
	switch e.Kind {
	case KindGPS, KindRequest:
	default:
		return fmt.Errorf("serve: unknown event kind %q", e.Kind)
	}
	if e.TimeMin < 0 {
		return fmt.Errorf("serve: negative time_min %d", e.TimeMin)
	}
	if e.Kind == KindGPS && e.VehicleID < 0 {
		return fmt.Errorf("serve: negative vehicle_id %d", e.VehicleID)
	}
	if e.Kind == KindRequest && e.Region < 0 {
		return fmt.Errorf("serve: negative region %d", e.Region)
	}
	return nil
}

// ParseBatch decodes an NDJSON ingest body: one JSON event object per line,
// blank lines ignored, at most maxEvents events. The decoder is strict —
// unknown fields, unknown kinds, negative timestamps, and trailing garbage
// all fail the whole batch — because a batch is accepted or rejected
// atomically (see Server ingest): a half-valid batch must never be half
// applied. Out-of-order timestamps within and across batches are legal; the
// server folds them into a high-watermark.
func ParseBatch(body []byte, maxEvents int) ([]Event, error) {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxBatch
	}
	var events []Event
	for lineNo := 1; len(body) > 0; lineNo++ {
		line := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			body = nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if len(events) >= maxEvents {
			return nil, fmt.Errorf("serve: batch exceeds %d events", maxEvents)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("serve: line %d: %w", lineNo, err)
		}
		// A second document on the same line is trailing garbage.
		if dec.More() {
			return nil, fmt.Errorf("serve: line %d: trailing data after event object", lineNo)
		}
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("serve: line %d: %w", lineNo, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// EncodeBatch renders events as the NDJSON body ParseBatch reads back.
func EncodeBatch(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
