package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// The serve-equivalence battery pins the PR's headline contract: a served
// run — engine stepped by an ingested event feed over HTTP — produces the
// byte-identical trace digest and decision digest as the batch engine on the
// same (policy, city, seed, scenario). Sequential and sharded engines, clean
// and scenario-conditioned runs, direct enqueue and full HTTP transport are
// all covered.

func microCity(t *testing.T, seed int64) *synth.City {
	t.Helper()
	city, err := synth.Build(synth.MicroConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

// batchRun drives the batch path (policy.Runner, exactly what
// policy.Evaluate wraps) and returns the canonical digests.
func batchRun(t *testing.T, build sim.EnvBuilder, city *synth.City, opts sim.Options, spec *scenario.Spec, seed int64) (traceDigest, decDigest string, slots int) {
	t.Helper()
	env := sim.BuildEnv(build, city, opts, seed)
	if spec != nil {
		if _, err := scenario.Attach(env, spec); err != nil {
			t.Fatal(err)
		}
	}
	var evs []trace.Event
	env.SetRecorder(func(ev trace.Event) { evs = append(evs, ev) })
	r := policy.NewRunner(policy.NewGroundTruth(), env, seed)
	var all []policy.Decision
	for !r.Done() {
		all = append(all, append([]policy.Decision(nil), r.StepSlot()...)...)
	}
	return trace.DigestEvents(evs), DigestDecisions(all), r.Slots()
}

// serveRun drives the same run through the service: feed events in, let the
// watermark close slots, drain, and read the digests back.
func serveRun(t *testing.T, build sim.EnvBuilder, city *synth.City, opts sim.Options, spec *scenario.Spec, seed int64, viaHTTP bool) (traceDigest, decDigest string, slots int) {
	t.Helper()
	env := sim.BuildEnv(build, city, opts, seed)
	if spec != nil {
		if _, err := scenario.Attach(env, spec); err != nil {
			t.Fatal(err)
		}
	}
	var evs []trace.Event
	env.SetRecorder(func(ev trace.Event) { evs = append(evs, ev) })
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	feed := RecordFeed(city, opts, seed, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if viaHTTP {
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := &Client{URL: ts.URL, BatchSize: 512}
		if _, err := client.Stream(ctx, feed, 0); err != nil {
			t.Fatal(err)
		}
	} else {
		for len(feed) > 0 {
			n := 512
			if n > len(feed) {
				n = len(feed)
			}
			if err := srv.Enqueue(feed[:n]); err != nil {
				if errors.Is(err, ErrBacklogged) {
					time.Sleep(time.Millisecond)
					continue
				}
				t.Fatal(err)
			}
			feed = feed[n:]
		}
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	slots, _, decDigest = srv.DigestState()
	// Drain returned, so the driver goroutine has exited: evs is settled.
	return trace.DigestEvents(evs), decDigest, slots
}

func assertEquivalent(t *testing.T, build sim.EnvBuilder, spec *scenario.Spec, viaHTTP bool) {
	t.Helper()
	const seed = 77
	city := microCity(t, seed)
	opts := sim.DefaultOptions(1)
	bt, bd, bslots := batchRun(t, build, city, opts, spec, seed)
	st, sd, sslots := serveRun(t, build, city, opts, spec, seed, viaHTTP)
	if sslots != bslots {
		t.Fatalf("served %d slots, batch ran %d — the feed failed to drive the full horizon", sslots, bslots)
	}
	if st != bt {
		t.Errorf("trace digest diverged:\n  batch %s\n  serve %s", bt, st)
	}
	if sd != bd {
		t.Errorf("decision digest diverged:\n  batch %s\n  serve %s", bd, sd)
	}
}

func TestServeEquivalenceSequential(t *testing.T) {
	assertEquivalent(t, nil, nil, false)
}

func TestServeEquivalenceHTTP(t *testing.T) {
	assertEquivalent(t, nil, nil, true)
}

func TestServeEquivalenceSharded(t *testing.T) {
	assertEquivalent(t, shard.Builder(2), nil, false)
}

func TestServeEquivalenceScenario(t *testing.T) {
	spec, err := scenario.NewBuilder("serve-outage").
		StationOutage(0, 0, 12*60).
		DemandSurge(-1, 7*60, 10*60, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, nil, spec, false)
}

// TestServeStepOnDemand pins the /step path: stepping without any feed
// advances exactly the requested slots and decisions stay queryable for the
// retained window.
func TestServeStepOnDemand(t *testing.T) {
	const seed = 9
	city := microCity(t, seed)
	env := sim.New(city, sim.DefaultOptions(1), seed)
	srv, err := New(Config{Env: env, Policy: policy.NewGroundTruth(), Seed: seed, History: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ctx := context.Background()
	stepped, err := srv.StepSlots(ctx, 6)
	if err != nil || stepped != 6 {
		t.Fatalf("StepSlots = %d, %v; want 6, nil", stepped, err)
	}
	if got := srv.Slot(); got != 6 {
		t.Fatalf("Slot = %d, want 6", got)
	}
	if _, slot, ok := srv.Decisions(-1); !ok || slot != 5 {
		t.Fatalf("latest decisions: slot %d ok=%v, want slot 5", slot, ok)
	}
	// History=4 retains slots 2..5; slot 0 must be evicted.
	if _, _, ok := srv.Decisions(0); ok {
		t.Fatal("slot 0 should have been evicted from a History=4 window")
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.StepSlots(ctx, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("StepSlots after drain = %v, want ErrDraining", err)
	}
}
