package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// RecordFeed replays ground-truth driver behavior over a private environment
// and records the resulting Table-I-style event stream: one GPS fix per taxi
// per slot (stamped at the slot's closing minute, region centroid plus
// jitter) and one request event per passenger pickup. The feed is
// deterministic in (city, opts, seed) — the recorded feeds the equivalence
// tests and `datagen stream` replay come from here. maxSlots <= 0 records
// the full horizon.
//
// Feeding a server these events drives its watermark through every slot
// boundary: slot k's fixes are stamped at k's end minute, so ingesting them
// releases exactly slot k.
func RecordFeed(city *synth.City, opts sim.Options, seed int64, maxSlots int) []Event {
	env := sim.New(city, opts, seed)
	var slotReqs []Event
	env.SetRecorder(func(ev trace.Event) {
		if ev.Kind == trace.EvPickup {
			slotReqs = append(slotReqs, Event{Kind: KindRequest, TimeMin: ev.TimeMin, Region: ev.Region})
		}
	})
	r := policy.NewRunner(policy.NewGroundTruth(), env, seed)
	jitter := rng.SplitStable(seed, "serve-feed")
	var out []Event
	for !r.Done() && (maxSlots <= 0 || r.Slots() < maxSlots) {
		slotReqs = slotReqs[:0]
		r.StepSlot()
		now := env.Now()
		for _, req := range slotReqs {
			// A pickup can be scheduled minutes into the future (cruise time
			// to the passenger). The feed stamps the request when the slot
			// that matched it closes — the moment the service could actually
			// learn of it — so a maxSlots=k feed's watermark releases exactly
			// k slots and never runs the engine ahead of the recording.
			if req.TimeMin > now {
				req.TimeMin = now
			}
			out = append(out, req)
		}
		for id := range city.Fleet {
			c := city.Partition.Region(env.TaxiRegion(id)).Centroid
			state := env.TaxiState(id)
			speed := 0.0
			switch state {
			case sim.Serving, sim.Relocating, sim.ToStation:
				speed = 30
			case sim.Cruising:
				speed = 12
			}
			out = append(out, Event{
				Kind:      KindGPS,
				TimeMin:   now,
				VehicleID: id,
				Lng:       c.Lng + jitter.Uniform(-0.003, 0.003),
				Lat:       c.Lat + jitter.Uniform(-0.003, 0.003),
				SpeedKmh:  speed,
				Occupied:  state == sim.Serving,
			})
		}
	}
	return out
}

// Client streams event batches into a running dispatch service, honoring its
// backpressure protocol: a 429 response is retried after the server's
// Retry-After hint, so no generated event is ever dropped on the floor.
type Client struct {
	// URL is the service base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// BatchSize is events per POST (default 256).
	BatchSize int
	// MaxRetries bounds consecutive 429 retries of one batch (default 120)
	// so a wedged server fails the stream instead of hanging it.
	MaxRetries int
}

// StreamStats summarizes one Stream call.
type StreamStats struct {
	Batches  int           // batches accepted
	Events   int           // events accepted
	Rejected int           // 429 responses absorbed (batch retried, not dropped)
	Elapsed  time.Duration // wall-clock of the whole stream
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 256
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 120
}

// PostBatch posts one NDJSON batch. It returns (retryAfter, true, nil) when
// the server backpressured (429), (0, false, nil) on acceptance, and an
// error on any other outcome.
func (c *Client) PostBatch(ctx context.Context, events []Event) (retryAfter time.Duration, backpressured bool, err error) {
	body, err := EncodeBatch(events)
	if err != nil {
		return 0, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL+"/ingest", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, false, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusAccepted:
		return 0, false, nil
	case http.StatusTooManyRequests:
		after := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return after, true, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, false, fmt.Errorf("serve client: /ingest: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// Stream posts events in batches, pacing to approximately rps events per
// second (rps <= 0 streams as fast as the server admits). Backpressured
// batches are retried after the server's hint — accepted-event accounting
// therefore always matches what the server ingested.
func (c *Client) Stream(ctx context.Context, events []Event, rps float64) (StreamStats, error) {
	start := time.Now()
	var st StreamStats
	size := c.batchSize()
	var interval time.Duration
	if rps > 0 {
		interval = time.Duration(float64(size) / rps * float64(time.Second))
	}
	next := time.Now()
	for len(events) > 0 {
		n := size
		if n > len(events) {
			n = len(events)
		}
		batch := events[:n]
		events = events[n:]
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return st, ctx.Err()
				}
			}
			next = next.Add(interval)
		}
		retries := 0
		for {
			after, backpressured, err := c.PostBatch(ctx, batch)
			if err != nil {
				return st, err
			}
			if !backpressured {
				break
			}
			st.Rejected++
			retries++
			if retries > c.maxRetries() {
				return st, fmt.Errorf("serve client: batch still backpressured after %d retries", retries)
			}
			select {
			case <-time.After(after):
			case <-ctx.Done():
				return st, ctx.Err()
			}
		}
		st.Batches++
		st.Events += n
	}
	st.Elapsed = time.Since(start)
	return st, nil
}

// getJSON decodes a JSON GET endpoint into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.URL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve client: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return jsonDecode(resp.Body, out)
}

// Digest fetches the server's decision-stream digest.
func (c *Client) Digest(ctx context.Context) (slots, decisions int, digest string, err error) {
	var resp digestResponse
	if err := c.getJSON(ctx, "/decisions/digest", &resp); err != nil {
		return 0, 0, "", err
	}
	return resp.Slots, resp.Decisions, resp.Digest, nil
}

// Healthz fetches the server's liveness snapshot.
func (c *Client) Healthz(ctx context.Context) (status string, slot, queueDepth int, done bool, err error) {
	var resp healthzResponse
	if err := c.getJSON(ctx, "/healthz", &resp); err != nil {
		return "", 0, 0, false, err
	}
	return resp.Status, resp.Slot, resp.QueueDepth, resp.Done, nil
}

func jsonDecode(r io.Reader, out any) error {
	data, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}
