package synth

import (
	"math"
	"testing"
)

func TestBuildDefault(t *testing.T) {
	city, err := Build(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if city.Partition.Len() != 491 {
		t.Errorf("regions = %d, want 491", city.Partition.Len())
	}
	if city.Stations.Len() != 123 {
		t.Errorf("stations = %d, want 123", city.Stations.Len())
	}
	if len(city.Fleet) != 1000 {
		t.Errorf("fleet = %d, want 1000", len(city.Fleet))
	}
	if city.SlotsPerDay() != 144 {
		t.Errorf("slots per day = %d, want 144", city.SlotsPerDay())
	}
}

func TestDemandCalibration(t *testing.T) {
	cfg := DefaultConfig(2)
	city, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := city.Demand.TotalExpectedPerDay()
	want := float64(cfg.TripsPerDay)
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("calibrated demand %v, want %v", got, want)
	}
}

func TestStationPointRatio(t *testing.T) {
	city, err := Build(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Fleet:points ratio should be near the paper's 4:1.
	ratio := float64(len(city.Fleet)) / float64(city.Stations.TotalPoints())
	if ratio < 2 || ratio > 8 {
		t.Fatalf("fleet:points ratio %v, want near 4", ratio)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(TestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(TestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Fleet {
		if a.Fleet[i] != b.Fleet[i] {
			t.Fatal("same seed produced different fleets")
		}
	}
	for i := 0; i < a.Stations.Len(); i++ {
		if a.Stations.Station(i).Loc != b.Stations.Station(i).Loc {
			t.Fatal("same seed produced different stations")
		}
	}
}

func TestBuildTestConfig(t *testing.T) {
	city, err := Build(TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if city.Partition.Len() != 60 || city.Stations.Len() != 12 || len(city.Fleet) != 60 {
		t.Fatalf("test config city wrong shape: %d regions %d stations %d fleet",
			city.Partition.Len(), city.Stations.Len(), len(city.Fleet))
	}
	for _, v := range city.Fleet {
		if v.HomeRegion < 0 || v.HomeRegion >= city.Partition.Len() {
			t.Fatalf("vehicle %d home region %d invalid", v.ID, v.HomeRegion)
		}
		if v.InitialSoC < 0.5 || v.InitialSoC > 0.95 {
			t.Fatalf("vehicle %d initial SoC %v out of range", v.ID, v.InitialSoC)
		}
	}
}

func TestNewBattery(t *testing.T) {
	city, err := Build(TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := city.NewBattery(city.Fleet[0])
	if b.SoC != city.Fleet[0].InitialSoC {
		t.Fatalf("battery SoC %v, want %v", b.SoC, city.Fleet[0].InitialSoC)
	}
	if b.CapacityKWh != 80 {
		t.Fatalf("battery capacity %v, want 80 (BYD e6)", b.CapacityKWh)
	}
}

func TestValidate(t *testing.T) {
	good := TestConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"few regions", func(c *Config) { c.Regions = 2 }},
		{"no stations", func(c *Config) { c.Stations = 0 }},
		{"stations > regions", func(c *Config) { c.Stations = c.Regions + 1 }},
		{"no fleet", func(c *Config) { c.Fleet = 0 }},
		{"no trips", func(c *Config) { c.TripsPerDay = 0 }},
		{"bad slot", func(c *Config) { c.SlotMinutes = 7 }},
		{"zero slot", func(c *Config) { c.SlotMinutes = 0 }},
	}
	for _, c := range cases {
		cfg := TestConfig(1)
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFullScaleConfigShape(t *testing.T) {
	cfg := FullScaleConfig(1)
	if cfg.Fleet != 20130 || cfg.Regions != 491 || cfg.Stations != 123 {
		t.Fatalf("full-scale config wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("full-scale config invalid: %v", err)
	}
}
