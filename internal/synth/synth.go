// Package synth composes the substrate packages into a complete synthetic
// city: the 491-region partition, the 123-station charging network placed
// where demand is, the spatiotemporal demand model, the TOU tariff, and the
// fleet roster. It substitutes for the paper's proprietary Shenzhen datasets
// (see DESIGN.md §2); everything downstream consumes only the City value.
package synth

import (
	"fmt"

	"repro/internal/demand"
	"repro/internal/energy"
	"repro/internal/partition"
	"repro/internal/pricing"
	"repro/internal/rng"
	"repro/internal/station"
)

// Config sizes the synthetic city. The zero value is not usable; call
// DefaultConfig or FullScaleConfig.
type Config struct {
	Seed        int64
	Regions     int // paper: 491
	Stations    int // paper: 123
	Fleet       int // paper: 20,130
	TripsPerDay int // expected fleet-wide requests per day (paper: ~750k)
	SlotMinutes int // paper: 10
}

// DefaultConfig returns a laptop-scale city preserving the paper's ratios:
// the full region and station inventory with a 1,000-vehicle fleet and
// demand scaled proportionally (the paper's 23.2M trips over 31 days and
// 20,130 taxis is ≈37 trips/taxi/day).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Regions:     491,
		Stations:    123,
		Fleet:       1000,
		TripsPerDay: 37 * 1000,
		SlotMinutes: 10,
	}
}

// TestConfig returns a small city for unit tests.
func TestConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Regions:     60,
		Stations:    12,
		Fleet:       60,
		TripsPerDay: 37 * 60,
		SlotMinutes: 10,
	}
}

// MicroConfig returns the smallest usable city: the golden-trace harness
// runs full days under several scenarios and must stay fast in `go test
// -short`, and its fixture specs reference stations/regions by index, so
// the inventory here (4 stations, 12 regions) is part of the fixtures'
// contract.
func MicroConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Regions:     12,
		Stations:    4,
		Fleet:       24,
		TripsPerDay: 15 * 24,
		SlotMinutes: 10,
	}
}

// FullScaleConfig returns the paper's full scale (slow; used with -full
// benchmark runs only).
func FullScaleConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Regions:     491,
		Stations:    123,
		Fleet:       20130,
		TripsPerDay: 23_200_000 / 31,
		SlotMinutes: 10,
	}
}

// MegaScaleConfig returns a 10× extrapolation of the paper's fleet over the
// same region inventory — the `-benchscale=mega` tier that exists to show
// the sharded engine's event-calendar scaling headroom beyond the paper
// (the report bundle is never run at this size, only engine stepping).
func MegaScaleConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Regions:     491,
		Stations:    123,
		Fleet:       201300,
		TripsPerDay: 10 * 23_200_000 / 31,
		SlotMinutes: 10,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Regions < 4 {
		return fmt.Errorf("synth: Regions must be >= 4, got %d", c.Regions)
	}
	if c.Stations < 1 || c.Stations > c.Regions {
		return fmt.Errorf("synth: Stations must be in [1, Regions], got %d", c.Stations)
	}
	if c.Fleet < 1 {
		return fmt.Errorf("synth: Fleet must be positive, got %d", c.Fleet)
	}
	if c.TripsPerDay < 1 {
		return fmt.Errorf("synth: TripsPerDay must be positive, got %d", c.TripsPerDay)
	}
	if c.SlotMinutes < 1 || c.SlotMinutes > 60 || 1440%c.SlotMinutes != 0 {
		return fmt.Errorf("synth: SlotMinutes must divide 1440, got %d", c.SlotMinutes)
	}
	return nil
}

// Vehicle is one fleet roster entry.
type Vehicle struct {
	ID         int
	HomeRegion int     // where the shift starts
	InitialSoC float64 // state of charge at simulation start
}

// City is a fully constructed synthetic city.
type City struct {
	Config    Config
	Partition *partition.Partition
	Demand    *demand.Model
	Stations  *station.Network
	Tariff    *pricing.Tariff
	Fleet     []Vehicle
}

// SlotsPerDay returns the number of time slots per day (paper: T = 144).
func (c *City) SlotsPerDay() int { return 1440 / c.Config.SlotMinutes }

// Build constructs a City from cfg deterministically.
func Build(cfg Config) (*City, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	part, err := partition.Generate(cfg.Seed, cfg.Regions, partition.ShenzhenBBox)
	if err != nil {
		return nil, fmt.Errorf("synth: partition: %w", err)
	}
	dm := demand.NewShenzhenLike(cfg.Seed, part)

	// Calibrate demand volume to the requested trips per day.
	base := dm.TotalExpectedPerDay()
	if base <= 0 {
		return nil, fmt.Errorf("synth: demand model produced zero base volume")
	}
	dm.Scale = float64(cfg.TripsPerDay) / base

	// Place stations weighted by daily demand share so that infrastructure
	// follows ridership, as in the real deployment.
	seeds := make([]station.RegSeed, part.Len())
	for i := 0; i < part.Len(); i++ {
		var w float64
		for h := 0; h < 24; h++ {
			w += dm.Rate(i, h*60) * 60
		}
		seeds[i] = station.RegSeed{Region: i, Centroid: part.Region(i).Centroid, Weight: w}
	}
	// Scale point inventory with fleet size so queueing pressure matches the
	// paper's ratio (20,130 taxis : ~5,000 points ≈ 4:1).
	pointsTotal := cfg.Fleet / 4
	if pointsTotal < cfg.Stations {
		pointsTotal = cfg.Stations
	}
	minPts := pointsTotal / cfg.Stations / 2
	if minPts < 1 {
		minPts = 1
	}
	maxPts := pointsTotal*3/cfg.Stations/2 + 1
	net, err := station.Generate(cfg.Seed, station.GenerateOpts{
		Count:     cfg.Stations,
		MinPoints: minPts,
		MaxPoints: maxPts,
		Regions:   seeds,
	})
	if err != nil {
		return nil, fmt.Errorf("synth: stations: %w", err)
	}

	// Roster: vehicles start distributed proportionally to demand with
	// varied initial charge.
	src := rng.SplitStable(cfg.Seed, "fleet")
	weights := make([]float64, part.Len())
	for i := range weights {
		weights[i] = seeds[i].Weight
	}
	fleet := make([]Vehicle, cfg.Fleet)
	for i := range fleet {
		fleet[i] = Vehicle{
			ID:         i,
			HomeRegion: src.WeightedChoice(weights),
			InitialSoC: src.Uniform(0.5, 0.95),
		}
	}

	return &City{
		Config:    cfg,
		Partition: part,
		Demand:    dm,
		Stations:  net,
		Tariff:    pricing.Shenzhen(),
		Fleet:     fleet,
	}, nil
}

// NewBattery returns a fresh battery for vehicle v.
func (c *City) NewBattery(v Vehicle) energy.Battery {
	return energy.NewBYDe6(v.InitialSoC)
}
