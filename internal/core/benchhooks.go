package core

import "repro/internal/policy"

// Benchmark hooks. The module-root recorder (bench_nn_test.go) pins the cost
// of one batched CMA2C update step in BENCH_nn.json and in the allocation
// gate, but the update steps are deliberately unexported — outside the Train
// loop's replay sampling they have no meaning. These wrappers expose exactly
// one step over a caller-built transition buffer for that recorder and
// nothing else; they are not part of the training API.

// BenchCriticStep runs one batched critic update over buf at the sampled
// minibatch indices. Exported only for benchmarks.
func (f *FairMove) BenchCriticStep(buf []policy.Transition, idxs []int) {
	f.updateCritic(buf, idxs)
}

// BenchActorStep runs one batched actor update over buf at the sampled
// minibatch indices. Exported only for benchmarks.
func (f *FairMove) BenchActorStep(buf []policy.Transition, idxs []int) {
	f.updateActor(buf, idxs)
}
