package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/policy"
)

func trainedFairMove(t *testing.T, seed int64) *FairMove {
	t.Helper()
	city := testCity(t, seed)
	f, err := New(DefaultConfig(0.6, seed))
	if err != nil {
		t.Fatal(err)
	}
	f.Pretrain(city, policy.NewGroundTruth(), 1, 1, seed)
	f.Train(city, 1, 1, seed)
	return f
}

func TestFairMoveCheckpointRoundTrip(t *testing.T) {
	f := trainedFairMove(t, 3)
	data, err := checkpoint.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	// The twin shares the config (the fingerprint covers it, including the
	// seed) but has fresh random weights; decode must replace all of them.
	twin, err := New(DefaultConfig(0.6, 3))
	if err != nil {
		t.Fatal(err)
	}
	twin.actor.Layers[0].W.Data[0] += 0.5
	if _, err := checkpoint.Unmarshal(data, twin); err != nil {
		t.Fatal(err)
	}
	again, err := checkpoint.Marshal(twin)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("restored FairMove does not re-serialize byte-identically")
	}
}

func TestFairMoveCheckpointFailClosed(t *testing.T) {
	f := trainedFairMove(t, 4)
	before, err := checkpoint.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	meta := checkpoint.Meta{
		Version:     checkpoint.Version,
		Kind:        f.CheckpointKind(),
		Fingerprint: f.CheckpointFingerprint(),
	}
	forged := checkpoint.Seal(meta, []byte{1, 2, 3, 4})
	if _, err := checkpoint.Unmarshal(forged, f); !errors.Is(err, checkpoint.ErrPayload) {
		t.Fatalf("forged payload: %v, want ErrPayload", err)
	}
	after, err := checkpoint.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, before) {
		t.Fatal("rejected payload mutated the learner")
	}
}

func TestFairMoveConfigMismatchRejected(t *testing.T) {
	f := trainedFairMove(t, 5)
	data, err := checkpoint.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(DefaultConfig(0.8, 5)) // different α
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Unmarshal(data, other); !errors.Is(err, checkpoint.ErrFingerprint) {
		t.Fatalf("α mismatch: %v, want ErrFingerprint", err)
	}
}

// TestFairMoveResumeDeterminism: a CMA2C run killed after fine-tune episode 1
// and resumed in a fresh instance finishes byte-identical to the unbroken
// run — including the fine-tuning optimizer swap, which must not re-fire on
// resume.
func TestFairMoveResumeDeterminism(t *testing.T) {
	const seed, total = 21, 2
	city := testCity(t, seed)
	dir := t.TempDir()

	a, err := New(DefaultConfig(0.6, seed))
	if err != nil {
		t.Fatal(err)
	}
	a.Pretrain(city, policy.NewGroundTruth(), 1, 1, seed)
	if _, err := a.TrainCheckpointed(city, total, 1, seed, checkpoint.TrainOptions{Dir: dir, Every: 1, Keep: 10}); err != nil {
		t.Fatal(err)
	}
	want, err := checkpoint.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}

	mid := filepath.Join(dir, checkpoint.FileName(checkpoint.PhaseTrain, 1))
	resumed, err := New(DefaultConfig(0.6, seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.ReadFile(mid, resumed); err != nil {
		t.Fatal(err)
	}
	if !resumed.fineTuning {
		t.Fatal("restored learner lost the fine-tuning flag")
	}
	if _, err := resumed.TrainCheckpointed(city, total, 1, seed, checkpoint.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed CMA2C run is not byte-identical to the unbroken run")
	}
}
