// Package core implements the paper's contribution: the FairMove
// displacement system built on a Centralized Multi-Agent Actor-Critic
// (CMA2C, Section III-D). One shared policy network (actor) and one shared
// value network (critic) serve every e-taxi agent; the critic is trained on
// the Bellman loss against a target network (Eq. 6-7) and the actor follows
// advantage-weighted policy gradients where the advantage is the TD error
// (Eq. 8-11, Algorithm 1). The reward blends profit efficiency and profit
// fairness with the weight α (Eq. 4-5).
package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Config holds the CMA2C hyperparameters. Defaults follow Section IV-A:
// Adam with learning rate 0.001 and discount β = 0.9; the weight α = 0.6 is
// the value the sensitivity study (Table IV) selects.
type Config struct {
	Alpha       float64 // efficiency/fairness blend α ∈ [0, 1]
	Gamma       float64 // discount β
	ActorLR     float64
	CriticLR    float64
	Hidden      []int   // hidden widths for both networks
	EntropyCoef float64 // exploration bonus on the actor
	Batch       int     // minibatch size for the M update iterations
	UpdateIters int     // M of Algorithm 1
	Seed        int64
	// Workers bounds the goroutines used for batched actor inference and
	// parallel demonstration rollouts; <= 0 means GOMAXPROCS. Any value
	// produces byte-identical results — it only changes wall-clock.
	Workers int
}

// DefaultConfig returns the paper's hyperparameters at repro scale.
func DefaultConfig(alpha float64, seed int64) Config {
	return Config{
		Alpha:       alpha,
		Gamma:       0.9,
		ActorLR:     0.001,
		CriticLR:    0.001,
		Hidden:      []int{64, 64},
		EntropyCoef: 0.002,
		Batch:       64,
		UpdateIters: 300,
		Seed:        seed,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha must be in [0,1], got %v", c.Alpha)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("core: gamma must be in [0,1), got %v", c.Gamma)
	}
	if c.ActorLR <= 0 || c.CriticLR <= 0 {
		return fmt.Errorf("core: learning rates must be positive")
	}
	if c.Batch <= 0 || c.UpdateIters <= 0 {
		return fmt.Errorf("core: batch and update iterations must be positive")
	}
	return nil
}

// FairMove is the trained displacement system. It implements
// policy.Policy, so it is evaluated exactly like the baselines.
type FairMove struct {
	cfg Config

	actor        *nn.MLP
	critic       *nn.MLP
	targetCritic *nn.MLP
	actorOpt     *nn.Adam
	criticOpt    *nn.Adam

	src       *rng.Source
	exploring bool

	// demo holds demonstration transitions from Pretrain; Train replays
	// behavior-cloning batches from it between policy-gradient updates to
	// anchor the actor against collapse (in the spirit of DQfD).
	demo []policy.Transition

	// resume cursors: completed pretraining and fine-tuning episodes.
	// Checkpoints are cut at episode boundaries, where every per-episode
	// stream re-derives from (seed, episode), so these counters plus the
	// networks, optimizers, and demo buffer fully determine the rest of a
	// run. fineTuning records that Train already swapped in the gentler
	// actor optimizer, so a resumed run keeps its saved optimizer state.
	demoDone   int
	epDone     int
	fineTuning bool

	// env builds the training environments; nil means the sequential
	// engine. Set with SetEnvBuilder.
	env sim.EnvBuilder

	// Update-step scratch (DESIGN.md §9): batch matrices and per-row softmax
	// buffers owned by the learner and reused across minibatch updates, so
	// the steady-state critic/actor steps allocate nothing. upX/upXN hold the
	// sampled observations and next-observations, upY the TD targets, upGrad
	// the policy-gradient rows, upMSE the critic loss gradient. Never
	// serialized; checkpoints see only networks and optimizers.
	upX, upXN, upY *nn.Mat
	upGrad, upMSE  *nn.Mat
	upAdvs         []float64
	upProbs        []float64

	// Act scratch, reused call to call (same pattern as DQN).
	actObs   []sim.Observation
	actRows  [][]float64
	actProbs []float64

	tel coreTel
}

// SetEnvBuilder installs the environment builder training uses (nil restores
// the sequential engine). The facade sets shard.Builder(k) here when the
// system is configured to run region-sharded.
func (f *FairMove) SetEnvBuilder(b sim.EnvBuilder) { f.env = b }

// New creates an untrained FairMove system.
func New(cfg Config) (*FairMove, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64, 64}
	}
	src := rng.SplitStable(cfg.Seed, "cma2c-init")
	actorSizes := append([]int{sim.FeatureSize}, cfg.Hidden...)
	actorSizes = append(actorSizes, sim.NumActions)
	criticSizes := append([]int{sim.FeatureSize}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)
	f := &FairMove{
		cfg:       cfg,
		actor:     nn.NewMLP(src, actorSizes, nn.Tanh, nn.Identity),
		critic:    nn.NewMLP(src, criticSizes, nn.Tanh, nn.Identity),
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
		src:       src,
	}
	f.targetCritic = f.critic.Clone()
	return f, nil
}

// Name implements policy.Policy.
func (f *FairMove) Name() string { return "FairMove" }

// Config returns the hyperparameters.
func (f *FairMove) Config() Config { return f.cfg }

// BeginEpisode implements policy.Policy.
func (f *FairMove) BeginEpisode(seed int64) { f.src = rng.SplitStable(seed, "cma2c") }

// probs evaluates the masked policy distribution for one observation.
func (f *FairMove) probs(obs sim.Observation) []float64 {
	logits := f.actor.Forward1(obs.Features)
	return nn.Softmax(logits, obs.Mask[:])
}

// choose samples an action from the stochastic policy. Execution stays
// stochastic at evaluation time too: agents in the same region share an
// observation, so a deterministic argmax would send them all to the same
// station or neighbor (herding), while sampling from π disperses them — the
// intended behavior of executing a learned stochastic policy.
func (f *FairMove) choose(obs sim.Observation) int {
	return f.src.WeightedChoice(f.probs(obs))
}

// Act implements policy.Policy: centralized training, decentralized
// execution — each agent queries the shared actor on its own observation.
//
// The slot is processed in three phases so the fleet-wide forward pass can
// use every core without giving up determinism: observations are collected
// serially (Observe refreshes per-slot environment caches, so Env stays
// single-writer), the shared actor evaluates all rows sharded across
// workers (inference only reads the weights), and sampling consumes f.src
// serially in vacant order — the same rng draw sequence as a per-taxi loop.
func (f *FairMove) Act(env sim.Environment, vacant []int) map[int]sim.Action {
	actions := make(map[int]sim.Action, len(vacant))
	if cap(f.actObs) < len(vacant) {
		f.actObs = make([]sim.Observation, len(vacant))
		f.actRows = make([][]float64, len(vacant))
	}
	obs := f.actObs[:len(vacant)]
	rows := f.actRows[:len(vacant)]
	for i, id := range vacant {
		obs[i] = env.Observe(id)
		rows[i] = obs[i].Features
	}
	logits := f.actor.ForwardRows(rows, f.cfg.Workers)
	if f.actProbs == nil {
		f.actProbs = make([]float64, sim.NumActions)
	}
	for i, id := range vacant {
		probs := nn.SoftmaxInto(logits[i], obs[i].Mask[:], f.actProbs)
		actions[id] = sim.ActionFromIndex(f.src.WeightedChoice(probs))
	}
	return actions
}

// value evaluates a critic network on one observation.
func value(net *nn.MLP, obs []float64) float64 { return float64(net.Forward1(obs)[0]) }

// TrainStats records per-episode training diagnostics.
type TrainStats struct {
	Episodes    int
	MeanReward  []float64 // per-episode mean decision reward (Table IV's r)
	CriticLoss  []float64 // per-episode mean critic loss
	MeanAdvAbs  []float64 // per-episode mean |advantage|
	Transitions int
	PolicyEnt   float64 // final mean policy entropy over a sample
}

// Train runs Algorithm 1 until `episodes` total fine-tuning episodes are
// complete, each simulating `days` of fleet operation on city. The same seed
// always reproduces the same training trajectory; a system restored from a
// mid-run checkpoint picks up at its next episode and finishes with
// byte-identical weights.
func (f *FairMove) Train(city *synth.City, episodes, days int, seed int64) TrainStats {
	stats, _ := f.TrainCheckpointed(city, episodes, days, seed, checkpoint.TrainOptions{})
	return stats
}

// TrainCheckpointed is Train with a checkpoint cadence: after every
// opts.Every-th completed episode (and at the end of the run) the full
// learner state is written crash-safely into opts.Dir.
func (f *FairMove) TrainCheckpointed(city *synth.City, episodes, days int, seed int64, opts checkpoint.TrainOptions) (TrainStats, error) {
	stats := TrainStats{Episodes: episodes}
	env := sim.BuildEnv(f.env, city, sim.DefaultOptions(days), seed)

	// When a warm start is present, fine-tuning polishes rather than
	// re-learns: the actor steps an order of magnitude smaller so the noisy
	// semi-MDP advantages adjust the demonstrated policy instead of
	// overwriting it. The fineTuning flag survives checkpoints, so a resumed
	// run keeps polishing with its saved optimizer state instead of
	// resetting the moments a second time.
	if len(f.demo) > 0 && !f.fineTuning {
		f.actorOpt = nn.NewAdam(f.cfg.ActorLR * 0.1)
	}
	f.fineTuning = true
	f.tel.phase.Set(1)

	for ep := f.epDone; ep < episodes; ep++ {
		epSeed := seed + int64(ep)
		env.Reset(epSeed)
		f.BeginEpisode(epSeed)
		f.exploring = true

		// Lines 3-7 of Algorithm 1: roll out the joint policy, storing the
		// transitions of all active e-taxis.
		var buf []policy.Transition
		stopEp := f.tel.EpisodeTime.Start()
		mean := policy.RunEpisode(env,
			func(id int, obs sim.Observation) int { return f.choose(obs) },
			f.cfg.Alpha, f.cfg.Gamma,
			func(id int, tr policy.Transition) { buf = append(buf, tr.Detach()) },
		)
		stats.MeanReward = append(stats.MeanReward, mean)
		stats.Transitions += len(buf)
		f.tel.Episodes.Inc()
		f.tel.Transitions.Add(int64(len(buf)))
		f.tel.MeanReward.Set(mean)
		if len(buf) == 0 {
			stopEp()
			stats.CriticLoss = append(stats.CriticLoss, 0)
			stats.MeanAdvAbs = append(stats.MeanAdvAbs, 0)
			f.epDone = ep + 1
			if opts.ShouldSave(f.epDone, episodes) {
				if _, err := checkpoint.SaveDir(opts.Dir, f, opts.Keep); err != nil {
					f.exploring = false
					return stats, err
				}
			}
			continue
		}

		// Lines 8-10: M iterations of minibatch updates.
		var lossSum, advSum float64
		var nUpd int
		batch := f.cfg.Batch
		if batch > len(buf) {
			batch = len(buf)
		}
		idxs := make([]int, batch)
		for it := 0; it < f.cfg.UpdateIters; it++ {
			for b := range idxs {
				idxs[b] = f.src.Intn(len(buf))
			}
			lossSum += f.updateCritic(buf, idxs)
			advSum += f.updateActor(buf, idxs)
			nUpd++
			// Demonstration anchor: every few policy-gradient steps, one
			// behavior-cloning step on Pretrain data keeps the actor from
			// drifting into degenerate corners of the action space while
			// the advantage estimates are still noisy.
			if len(f.demo) >= batch && it%2 == 1 {
				for b := range idxs {
					idxs[b] = f.src.Intn(len(f.demo))
				}
				f.cloneActor(f.demo, idxs)
			}
		}
		stats.CriticLoss = append(stats.CriticLoss, lossSum/float64(nUpd))
		stats.MeanAdvAbs = append(stats.MeanAdvAbs, advSum/float64(nUpd))
		f.tel.criticLoss.Set(lossSum / float64(nUpd))
		f.tel.meanAdvAbs.Set(advSum / float64(nUpd))
		stopEp()

		// Target network hard update per episode (Eq. 7's θv').
		f.targetCritic.CopyWeightsFrom(f.critic)

		f.epDone = ep + 1
		if opts.ShouldSave(f.epDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, f, opts.Keep); err != nil {
				f.exploring = false
				return stats, err
			}
		}
	}
	f.exploring = false
	return stats, nil
}

// Pretrain warm-starts the system from demonstration episodes driven by
// guide (typically ground-truth driver behavior): the critic learns V by
// TD regression on the demonstration transitions, and the actor is
// behavior-cloned toward the demonstrated actions (cross-entropy = policy
// gradient with unit advantage). RL fine-tuning in Train then improves on
// the demonstrated behavior rather than exploring from scratch — without
// it, random multi-agent exploration floods charging stations for many
// episodes before any signal emerges.
//
// Demonstration rollouts are guide-driven — the learner's weights never
// influence the trajectories — so episodes fan out across workers and the
// gradient steps below consume them serially in episode order, which keeps
// the result byte-identical to a serial run.
func (f *FairMove) Pretrain(city *synth.City, guide policy.Policy, episodes, days int, seed int64) {
	_ = f.PretrainCheckpointed(city, guide, episodes, days, seed, checkpoint.TrainOptions{})
}

// PretrainCheckpointed is Pretrain with a checkpoint cadence. A system
// restored from a pretraining checkpoint replays only the demonstration
// episodes it has not consumed yet; the completed warm start is
// byte-identical to an unbroken one.
func (f *FairMove) PretrainCheckpointed(city *synth.City, guide policy.Policy, episodes, days int, seed int64, opts checkpoint.TrainOptions) error {
	f.tel.phase.Set(0)
	from := f.demoDone
	bufs := policy.CollectDemosFrom(f.env, city, guide, from, episodes, days, seed, f.cfg.Workers, f.cfg.Alpha, f.cfg.Gamma)
	for i, buf := range bufs {
		ep := from + i
		f.tel.demoEpisodes.Inc()
		f.tel.Transitions.Add(int64(len(buf)))
		// BeginEpisode re-derives f.src exactly as the serial loop did
		// before its rollout; the rollout itself never consumed f.src.
		f.BeginEpisode(policy.DemoEpisodeSeed(seed, ep))
		if len(buf) > 0 {
			batch := f.cfg.Batch
			if batch > len(buf) {
				batch = len(buf)
			}
			iters := len(buf) / batch * 2
			idxs := make([]int, batch)
			for it := 0; it < iters; it++ {
				for b := range idxs {
					idxs[b] = f.src.Intn(len(buf))
				}
				f.updateCritic(buf, idxs)
				f.cloneActor(buf, idxs)
			}
			f.targetCritic.CopyWeightsFrom(f.critic)
			f.demo = append(f.demo, buf...)
		}
		f.demoDone = ep + 1
		if opts.ShouldSave(f.demoDone, episodes) {
			if _, err := checkpoint.SaveDir(opts.Dir, f, opts.Keep); err != nil {
				return err
			}
		}
	}
	return nil
}

// cloneActor takes one behavior-cloning step toward the demonstrated
// actions of a minibatch: one batched forward, fused per-row gradients, one
// batched backward.
func (f *FairMove) cloneActor(buf []policy.Transition, idxs []int) {
	n := len(idxs)
	f.actor.ZeroGrad()
	f.upX = nn.EnsureMat(f.upX, n, sim.FeatureSize)
	for b, i := range idxs {
		f.upX.SetRow(b, buf[i].Obs)
	}
	logits := f.actor.Forward(f.upX, true)
	f.upGrad = nn.EnsureMat(f.upGrad, n, sim.NumActions)
	if f.upProbs == nil {
		f.upProbs = make([]float64, sim.NumActions)
	}
	inv := 1 / float64(n)
	for b, i := range idxs {
		tr := &buf[i]
		nn.PolicyGradientRowInto(logits.Row(b), tr.Mask[:], tr.Action, 1.0, 0, inv, f.upProbs, f.upGrad.Row(b))
	}
	f.actor.Backward(f.upGrad)
	_, grads := f.actor.Params()
	f.tel.actorGrad.Observe(nn.ClipGrads(grads, 5))
	f.tel.cloneSteps.Inc()
	f.actorOpt.Step(f.actor)
}

// tdTarget computes r + β^elapsed · V'(s') (Eq. 7/10) for one transition,
// zero bootstrap at the horizon. The update steps use the batched
// tdTargetsInto; this scalar form serves diagnostics and tests.
func (f *FairMove) tdTarget(tr policy.Transition) float64 {
	y := tr.Reward
	if !tr.Terminal {
		y += math.Pow(f.cfg.Gamma, float64(tr.Elapsed)) * value(f.targetCritic, tr.NextObs)
	}
	return y
}

// tdTargetsInto fills y (n×1) with r + β^elapsed · V'(s') for the sampled
// transitions, evaluating the target critic on every next-state in one
// batched pass. Terminal rows bootstrap zero; their input rows are zeroed
// (any value would do — the output is discarded) so the batch shape stays
// fixed.
func (f *FairMove) tdTargetsInto(buf []policy.Transition, idxs []int, y *nn.Mat) {
	n := len(idxs)
	f.upXN = nn.EnsureMat(f.upXN, n, sim.FeatureSize)
	for b, i := range idxs {
		tr := &buf[i]
		if tr.Terminal || tr.NextObs == nil {
			row := f.upXN.Row(b)
			for j := range row {
				row[j] = 0
			}
		} else {
			f.upXN.SetRow(b, tr.NextObs)
		}
	}
	next := f.targetCritic.ForwardBatch(f.upXN, 1)
	for b, i := range idxs {
		tr := &buf[i]
		t := tr.Reward
		if !tr.Terminal {
			t += math.Pow(f.cfg.Gamma, float64(tr.Elapsed)) * next.At(b, 0)
		}
		y.Set(b, 0, t)
	}
}

// updateCritic takes one minibatch step on L(θv) = (V(s) − y)² (Eq. 6) and
// returns the batch loss. The target pass, prediction, and backprop each run
// as one batched GEMM over learner-owned scratch.
func (f *FairMove) updateCritic(buf []policy.Transition, idxs []int) float64 {
	n := len(idxs)
	f.upX = nn.EnsureMat(f.upX, n, sim.FeatureSize)
	for b, i := range idxs {
		f.upX.SetRow(b, buf[i].Obs)
	}
	f.upY = nn.EnsureMat(f.upY, n, 1)
	f.tdTargetsInto(buf, idxs, f.upY)
	f.critic.ZeroGrad()
	pred := f.critic.Forward(f.upX, true)
	loss, grad := nn.MSELossInto(pred, f.upY, f.upMSE)
	f.upMSE = grad
	f.critic.Backward(grad)
	_, grads := f.critic.Params()
	f.tel.criticGrad.Observe(nn.ClipGrads(grads, 5))
	f.tel.criticSteps.Inc()
	f.criticOpt.Step(f.critic)
	return loss
}

// updateActor takes one minibatch policy-gradient step with the TD-error
// advantage (Eq. 8-11) plus an entropy bonus, and returns the mean |A|.
// Advantages are standardized within the batch and clipped — without this,
// the noisy semi-MDP advantages random-walk the logits of rarely compared
// actions (the five station ranks) until the softmax saturates on an
// arbitrary one.
func (f *FairMove) updateActor(buf []policy.Transition, idxs []int) float64 {
	n := len(idxs)
	f.actor.ZeroGrad()
	f.upX = nn.EnsureMat(f.upX, n, sim.FeatureSize)
	for b, i := range idxs {
		f.upX.SetRow(b, buf[i].Obs)
	}
	logits := f.actor.Forward(f.upX, true)

	// Advantage = batched TD target − batched critic value, both one GEMM
	// pass over the same observation batch.
	f.upY = nn.EnsureMat(f.upY, n, 1)
	f.tdTargetsInto(buf, idxs, f.upY)
	vals := f.critic.ForwardBatch(f.upX, 1)
	if cap(f.upAdvs) < n {
		f.upAdvs = make([]float64, n)
	}
	advs := f.upAdvs[:n]
	var mean float64
	for b := range idxs {
		advs[b] = f.upY.At(b, 0) - vals.At(b, 0)
		mean += advs[b]
	}
	mean /= float64(n)
	var variance float64
	for _, a := range advs {
		variance += (a - mean) * (a - mean)
	}
	std := math.Sqrt(variance/float64(n)) + 1e-6
	var advAbs float64
	for b := range advs {
		advAbs += math.Abs(advs[b])
		advs[b] = (advs[b] - mean) / std
		if advs[b] > 3 {
			advs[b] = 3
		}
		if advs[b] < -3 {
			advs[b] = -3
		}
	}

	f.upGrad = nn.EnsureMat(f.upGrad, n, sim.NumActions)
	if f.upProbs == nil {
		f.upProbs = make([]float64, sim.NumActions)
	}
	inv := 1 / float64(n)
	for b, i := range idxs {
		tr := &buf[i]
		nn.PolicyGradientRowInto(logits.Row(b), tr.Mask[:], tr.Action, advs[b], f.cfg.EntropyCoef, inv, f.upProbs, f.upGrad.Row(b))
	}
	f.actor.Backward(f.upGrad)
	_, grads := f.actor.Params()
	f.tel.actorGrad.Observe(nn.ClipGrads(grads, 5))
	f.tel.actorSteps.Inc()
	f.tel.advStd.Set(std)
	f.actorOpt.Step(f.actor)
	return advAbs / float64(n)
}

// Value exposes the critic's state-value estimate (diagnostics, tests).
func (f *FairMove) Value(obs sim.Observation) float64 { return value(f.critic, obs.Features) }

// Probs exposes the policy distribution (diagnostics, tests).
func (f *FairMove) Probs(obs sim.Observation) []float64 { return f.probs(obs) }

// Save writes both networks.
func (f *FairMove) Save(w io.Writer) error {
	if err := f.actor.Save(w); err != nil {
		return fmt.Errorf("core: save actor: %w", err)
	}
	if err := f.critic.Save(w); err != nil {
		return fmt.Errorf("core: save critic: %w", err)
	}
	return nil
}

// Load reads networks written by Save into a system configured with cfg.
func Load(r io.Reader, cfg Config) (*FairMove, error) {
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	actor, err := nn.Load(r)
	if err != nil {
		return nil, fmt.Errorf("core: load actor: %w", err)
	}
	critic, err := nn.Load(r)
	if err != nil {
		return nil, fmt.Errorf("core: load critic: %w", err)
	}
	if actor.InputSize() != sim.FeatureSize || actor.OutputSize() != sim.NumActions {
		return nil, fmt.Errorf("core: loaded actor has wrong shape %dx%d", actor.InputSize(), actor.OutputSize())
	}
	if critic.InputSize() != sim.FeatureSize || critic.OutputSize() != 1 {
		return nil, fmt.Errorf("core: loaded critic has wrong shape %dx%d", critic.InputSize(), critic.OutputSize())
	}
	f.actor = actor
	f.critic = critic
	f.targetCritic = critic.Clone()
	return f, nil
}
