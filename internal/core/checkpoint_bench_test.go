package core

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/policy"
	"repro/internal/synth"
)

// Cadence-overhead pair: the same micro training run with checkpointing off
// and with a checkpoint after every episode. EXPERIMENTS.md quotes the delta;
// the target is <3% even at the tightest cadence, since a checkpoint write is
// one serialize + fsync against an episode of simulation and SGD.
func benchmarkTrain(b *testing.B, everyEpisode bool) {
	city, err := synth.Build(synth.MicroConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	opts := checkpoint.TrainOptions{}
	if everyEpisode {
		opts = checkpoint.TrainOptions{Dir: b.TempDir(), Every: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(DefaultConfig(0.6, 1))
		if err != nil {
			b.Fatal(err)
		}
		f.Pretrain(city, policy.NewGroundTruth(), 1, 1, 1)
		if _, err := f.TrainCheckpointed(city, 2, 1, 1, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainNoCheckpoint(b *testing.B)     { benchmarkTrain(b, false) }
func BenchmarkTrainCheckpointEvery1(b *testing.B) { benchmarkTrain(b, true) }
