package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/policy"
	"repro/internal/sim"
)

// FairMove's checkpoint.Checkpointer implementation. The serialized state is
// everything that survives an episode boundary: both networks and their
// target, both optimizers (including the fine-tune learning rate and Adam
// moments), the demonstration buffer, the resume cursors, and the
// fine-tuning flag. Transient state — rng source, exploration flag,
// telemetry handles — is re-derived by the training loop.

// CheckpointKind implements checkpoint.Checkpointer.
func (f *FairMove) CheckpointKind() string { return "cma2c" }

// CheckpointFingerprint implements checkpoint.Checkpointer. It covers every
// Config field that shapes the serialized state or the training trajectory;
// Workers is excluded because any value produces byte-identical results.
func (f *FairMove) CheckpointFingerprint() uint64 {
	c := f.cfg
	return checkpoint.Fingerprint(fmt.Sprintf(
		"cma2c|alpha=%g|gamma=%g|actorlr=%g|criticlr=%g|hidden=%v|entropy=%g|batch=%d|iters=%d|seed=%d|feat=%d|actions=%d",
		c.Alpha, c.Gamma, c.ActorLR, c.CriticLR, c.Hidden, c.EntropyCoef, c.Batch, c.UpdateIters, c.Seed,
		sim.FeatureSize, sim.NumActions))
}

// CheckpointProgress implements checkpoint.Checkpointer.
func (f *FairMove) CheckpointProgress() (int, int) {
	if f.epDone > 0 {
		return checkpoint.PhaseTrain, f.epDone
	}
	return checkpoint.PhasePretrain, f.demoDone
}

// EncodeCheckpoint implements checkpoint.Checkpointer.
func (f *FairMove) EncodeCheckpoint(e *checkpoint.Encoder) {
	e.Int(f.demoDone)
	e.Int(f.epDone)
	e.Bool(f.fineTuning)
	checkpoint.EncodeMLP(e, f.actor)
	checkpoint.EncodeMLP(e, f.critic)
	checkpoint.EncodeMLP(e, f.targetCritic)
	checkpoint.EncodeAdam(e, f.actorOpt)
	checkpoint.EncodeAdam(e, f.criticOpt)
	policy.EncodeTransitions(e, f.demo)
}

// DecodeCheckpoint implements checkpoint.Checkpointer. State is decoded into
// temporaries and committed only after every validation passes, so a corrupt
// payload leaves the live system untouched.
func (f *FairMove) DecodeCheckpoint(dec *checkpoint.Decoder) error {
	demoDone, epDone := dec.Int(), dec.Int()
	fineTuning := dec.Bool()
	actor, err := checkpoint.DecodeMLP(dec)
	if err != nil {
		return err
	}
	critic, err := checkpoint.DecodeMLP(dec)
	if err != nil {
		return err
	}
	targetCritic, err := checkpoint.DecodeMLP(dec)
	if err != nil {
		return err
	}
	actorOpt, err := checkpoint.DecodeAdam(dec)
	if err != nil {
		return err
	}
	criticOpt, err := checkpoint.DecodeAdam(dec)
	if err != nil {
		return err
	}
	demo, err := policy.DecodeTransitions(dec)
	if err != nil {
		return err
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if demoDone < 0 || epDone < 0 {
		return fmt.Errorf("core: checkpoint has negative episode counters (%d, %d)", demoDone, epDone)
	}
	if actor.InputSize() != sim.FeatureSize || actor.OutputSize() != sim.NumActions {
		return fmt.Errorf("core: actor shape %d -> %d, want %d -> %d", actor.InputSize(), actor.OutputSize(), sim.FeatureSize, sim.NumActions)
	}
	if critic.InputSize() != sim.FeatureSize || critic.OutputSize() != 1 {
		return fmt.Errorf("core: critic shape %d -> %d, want %d -> 1", critic.InputSize(), critic.OutputSize(), sim.FeatureSize)
	}
	if !checkpoint.SameShape(critic, targetCritic) {
		return fmt.Errorf("core: target critic shape differs from critic")
	}
	if !checkpoint.AdamMatches(actorOpt, actor) {
		return fmt.Errorf("core: actor optimizer moments do not fit the actor")
	}
	if !checkpoint.AdamMatches(criticOpt, critic) {
		return fmt.Errorf("core: critic optimizer moments do not fit the critic")
	}
	f.demoDone, f.epDone, f.fineTuning = demoDone, epDone, fineTuning
	f.actor, f.critic, f.targetCritic = actor, critic, targetCritic
	f.actorOpt, f.criticOpt = actorOpt, criticOpt
	f.demo = demo
	f.exploring = false
	return nil
}
