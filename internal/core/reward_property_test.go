package core

import (
	"math"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Property (DESIGN.md §6): with γ = 1 the per-slot ΔPF penalties telescope,
// so each taxi's total reward over an episode equals the episode objective —
// α times its summed slot profit efficiency minus (1−α) times the net PF
// change since its first decision — with no dependence on how the episode
// was sliced into transitions. The test replays the identical trajectory
// manually (the chooser is deterministic, so both passes see the same
// demand realization and actions) and reconciles RunEpisode's accumulated
// transition rewards against the objective computed from raw env state.
func TestRewardTelescopesToEpisodeObjective(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0, 0.4, 1} {
		const seed = 31
		opts := sim.DefaultOptions(1)

		// firstValid is deterministic and rng-free, so the two passes below
		// drive byte-identical trajectories from the same seed.
		firstValid := func(mask [sim.NumActions]bool) int {
			for i, ok := range mask {
				if ok {
					return i
				}
			}
			return 0
		}

		// Pass 1: RunEpisode accumulates each taxi's transition rewards.
		env := sim.New(city, opts, seed)
		got := make(map[int]float64)
		policy.RunEpisode(env,
			func(id int, obs sim.Observation) int { return firstValid(obs.Mask) },
			alpha, 1.0,
			func(id int, tr policy.Transition) { got[id] += tr.Reward },
		)

		// Pass 2: manual replay, tracking PF before each taxi's first
		// decision and summing slot PE from then on.
		env2 := sim.New(city, opts, seed)
		slotHours := float64(env2.SlotLen()) / 60
		peSum := make(map[int]float64)
		pfAtOpen := make(map[int]float64)
		_, pfPrev := env2.FleetPEStats()
		for !env2.Done() {
			actions := make(map[int]sim.Action)
			for _, id := range env2.VacantTaxis() {
				if _, seen := pfAtOpen[id]; !seen {
					pfAtOpen[id] = pfPrev
				}
				actions[id] = sim.ActionFromIndex(firstValid(env2.ValidMask(id)))
			}
			env2.Step(actions)
			_, pfPrev = env2.FleetPEStats()
			for id := range pfAtOpen {
				peSum[id] += env2.SlotProfit(id) / slotHours
			}
		}
		_, pfEnd := env2.FleetPEStats()

		if len(got) == 0 {
			t.Fatalf("alpha=%v: episode produced no transitions", alpha)
		}
		for id, reward := range got {
			want := (alpha*peSum[id] - (1-alpha)*(pfEnd-pfAtOpen[id])) * policy.RewardScale
			if math.Abs(reward-want) > 1e-9 {
				t.Fatalf("alpha=%v taxi %d: transition rewards sum to %.12f, episode objective is %.12f",
					alpha, id, reward, want)
			}
		}
	}
}
