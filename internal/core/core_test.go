package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synth"
)

func testCity(t *testing.T, seed int64) *synth.City {
	t.Helper()
	city, err := synth.Build(synth.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(0.6, 1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Alpha = -0.1 },
		func(c *Config) { c.Alpha = 1.1 },
		func(c *Config) { c.Gamma = 1.0 },
		func(c *Config) { c.ActorLR = 0 },
		func(c *Config) { c.CriticLR = -1 },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.UpdateIters = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(0.6, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{Alpha: 2}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestActProducesValidActions(t *testing.T) {
	city := testCity(t, 1)
	f, err := New(DefaultConfig(0.6, 1))
	if err != nil {
		t.Fatal(err)
	}
	env := sim.New(city, sim.DefaultOptions(1), 1)
	res := policy.Evaluate(f, env, 1)
	if res.Slots != 144 {
		t.Fatalf("slots = %d", res.Slots)
	}
	if env.InvalidActions() > 0 {
		t.Fatalf("FairMove produced %d invalid actions", env.InvalidActions())
	}
}

func TestProbsRespectMask(t *testing.T) {
	f, err := New(DefaultConfig(0.6, 2))
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.Observation{Features: make([]float64, sim.FeatureSize)}
	obs.Mask[0] = true
	obs.Mask[7] = true
	p := f.Probs(obs)
	var sum float64
	for i, v := range p {
		if !obs.Mask[i] && v != 0 {
			t.Fatalf("masked action %d has probability %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestTrainProducesStatsAndLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-episode training; skipped in short mode")
	}
	city := testCity(t, 3)
	f, err := New(DefaultConfig(0.6, 3))
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.Observation{Features: make([]float64, sim.FeatureSize)}
	for i := range obs.Mask {
		obs.Mask[i] = true
	}
	vBefore := f.Value(obs)
	stats := f.Train(city, 2, 1, 3)
	if stats.Episodes != 2 || len(stats.MeanReward) != 2 || len(stats.CriticLoss) != 2 {
		t.Fatalf("stats shape wrong: %+v", stats)
	}
	if stats.Transitions == 0 {
		t.Fatal("no transitions collected")
	}
	if f.Value(obs) == vBefore {
		t.Fatal("critic unchanged by training")
	}
	for _, l := range stats.CriticLoss {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("critic loss invalid: %v", l)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-episode training; skipped in short mode")
	}
	city := testCity(t, 4)
	run := func() []float64 {
		f, err := New(DefaultConfig(0.6, 4))
		if err != nil {
			t.Fatal(err)
		}
		return f.Train(city, 2, 1, 4).MeanReward
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-episode training; skipped in short mode")
	}
	city := testCity(t, 5)
	f, err := New(DefaultConfig(0.6, 5))
	if err != nil {
		t.Fatal(err)
	}
	f.Train(city, 1, 1, 5)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, DefaultConfig(0.6, 5))
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.Observation{Features: make([]float64, sim.FeatureSize)}
	for i := range obs.Mask {
		obs.Mask[i] = true
	}
	pa, pb := f.Probs(obs), loaded.Probs(obs)
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-12 {
			t.Fatalf("loaded policy differs at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	if math.Abs(f.Value(obs)-loaded.Value(obs)) > 1e-12 {
		t.Fatal("loaded critic differs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk")), DefaultConfig(0.6, 1)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAlphaOneIgnoresFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-episode training; skipped in short mode")
	}
	// With α=1 the reward is pure profit; with α=0 pure fairness. Both must
	// train without error — the boundary cases of Table IV.
	city := testCity(t, 6)
	for _, alpha := range []float64{0, 1} {
		f, err := New(DefaultConfig(alpha, 6))
		if err != nil {
			t.Fatal(err)
		}
		stats := f.Train(city, 1, 1, 6)
		if len(stats.MeanReward) != 1 || math.IsNaN(stats.MeanReward[0]) {
			t.Fatalf("alpha=%v training failed: %+v", alpha, stats)
		}
	}
}
