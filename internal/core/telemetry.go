package core

import (
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// coreTel extends the shared training handles with actor-critic-specific
// diagnostics: per-epoch critic loss and advantage statistics, separate
// actor/critic/behavior-cloning step counters, pre-clip gradient-norm
// distributions for both networks, and a phase gauge distinguishing the
// demonstration warm start from RL fine-tuning. The zero value is inert.
type coreTel struct {
	policy.TrainTel
	phase        *telemetry.Gauge // 0 = demonstration (Pretrain), 1 = RL fine-tune (Train)
	criticLoss   *telemetry.Gauge // latest per-episode mean critic loss
	meanAdvAbs   *telemetry.Gauge // latest per-episode mean |advantage|
	advStd       *telemetry.Gauge // latest minibatch advantage std (pre-normalization)
	demoEpisodes *telemetry.Counter
	actorSteps   *telemetry.Counter
	criticSteps  *telemetry.Counter
	cloneSteps   *telemetry.Counter
	actorGrad    *telemetry.Histogram
	criticGrad   *telemetry.Histogram
}

// SetTelemetry installs (or, with nil, removes) training telemetry under the
// "core." prefix. Telemetry is write-only — the trainer never reads a value
// back — so enabling it cannot change the training trajectory or RNG use.
func (f *FairMove) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		f.tel = coreTel{}
		return
	}
	f.tel = coreTel{
		TrainTel:     policy.NewTrainTel(r, "core"),
		phase:        r.Gauge("core.phase"),
		criticLoss:   r.Gauge("core.critic_loss"),
		meanAdvAbs:   r.Gauge("core.mean_adv_abs"),
		advStd:       r.Gauge("core.adv_std"),
		demoEpisodes: r.Counter("core.demo_episodes"),
		actorSteps:   r.Counter("core.actor_steps"),
		criticSteps:  r.Counter("core.critic_steps"),
		cloneSteps:   r.Counter("core.clone_steps"),
		actorGrad:    r.Histogram("core.actor_grad_norm", 0, 10, 20),
		criticGrad:   r.Histogram("core.critic_grad_norm", 0, 10, 20),
	}
}
