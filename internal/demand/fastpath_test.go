package demand

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// The fast sampling path (alias destinations, triangle-fan points,
// equirectangular distances) powers the sharded engine. Contract: points
// land inside their region, distances track the haversine, and the fast and
// linear samplers agree in distribution even though their sample paths
// differ.

func TestRandPointInFastStaysInsideRegion(t *testing.T) {
	m := testModel(t)
	src := rng.New(31)
	for r := 0; r < m.part.Len(); r += 7 {
		poly := m.part.Region(r).Polygon
		for i := 0; i < 200; i++ {
			p := m.randPointInFast(src, r)
			if !poly.Contains(p) {
				t.Fatalf("region %d: fast point %v outside polygon", r, p)
			}
		}
	}
}

func TestRandPointInFastCoversTriangles(t *testing.T) {
	// The fan pick must not collapse onto one triangle: for a quad region,
	// both fan triangles have positive area and must both be hit.
	m := testModel(t)
	src := rng.New(8)
	tr := &m.tris[0]
	if len(tr.cum) < 2 {
		t.Skip("region 0 is not a quad")
	}
	hit := make([]int, len(tr.cum))
	for i := 0; i < 2000; i++ {
		p := m.randPointInFast(src, 0)
		// Classify by which side of the fan diagonal (apex, c[0]) p falls.
		a, c := tr.apex, tr.c[0]
		cross := (c.Lng-a.Lng)*(p.Lat-a.Lat) - (p.Lng-a.Lng)*(c.Lat-a.Lat)
		if cross > 0 {
			hit[0]++
		} else {
			hit[1]++
		}
	}
	for i, h := range hit {
		if h == 0 {
			t.Fatalf("triangle %d of the fan never sampled (hits %v)", i, hit)
		}
	}
}

func TestEquirectangularTracksHaversine(t *testing.T) {
	m := testModel(t)
	src := rng.New(17)
	for i := 0; i < 500; i++ {
		p := m.randPointInFast(src, src.Intn(m.part.Len()))
		q := m.randPointInFast(src, src.Intn(m.part.Len()))
		want := geo.Distance(p, q)
		got := geo.DistanceApprox(p, q)
		if want > 0.1 && math.Abs(got-want)/want > 0.001 {
			t.Fatalf("approx %v vs haversine %v at %v-%v: relative error %.5f",
				got, want, p, q, math.Abs(got-want)/want)
		}
	}
}

func TestFastAndLinearSamplersAgreeInDistribution(t *testing.T) {
	m := testModel(t)
	const origin, n = 0, 3000
	var fast, slow []Request
	fs, ss := rng.New(4), rng.New(5)
	for len(fast) < n {
		fast = m.SampleRegionScaledFast(fast, fs, origin, 480, 10, 25)
	}
	for len(slow) < n {
		slow = m.SampleRegionScaled(slow, ss, origin, 480, 10, 25)
	}
	mean := func(rs []Request) (dist, fare float64) {
		for _, r := range rs {
			dist += r.DistanceKm
			fare += r.Fare
		}
		return dist / float64(len(rs)), fare / float64(len(rs))
	}
	fd, ff := mean(fast)
	sd, sf := mean(slow)
	if math.Abs(fd-sd)/sd > 0.05 {
		t.Fatalf("mean trip distance: fast %.3f vs linear %.3f", fd, sd)
	}
	if math.Abs(ff-sf)/sf > 0.05 {
		t.Fatalf("mean fare: fast %.2f vs linear %.2f", ff, sf)
	}
	// Destination marginals: total-variation distance between the two
	// samplers' empirical destination distributions stays small.
	nreg := m.part.Len()
	fc, sc := make([]float64, nreg), make([]float64, nreg)
	for _, r := range fast {
		fc[r.DestRegion]++
	}
	for _, r := range slow {
		sc[r.DestRegion]++
	}
	tv := 0.0
	for i := range fc {
		tv += math.Abs(fc[i]/float64(len(fast)) - sc[i]/float64(len(slow)))
	}
	if tv /= 2; tv > 0.15 {
		t.Fatalf("destination distributions diverge: TV distance %.3f", tv)
	}
}
