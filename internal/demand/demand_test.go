package demand

import (
	"math"
	"testing"

	"repro/internal/partition"
	"repro/internal/pricing"
	"repro/internal/rng"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	part, err := partition.Generate(1, 100, partition.ShenzhenBBox)
	if err != nil {
		t.Fatal(err)
	}
	return NewShenzhenLike(1, part)
}

func TestArchetypeAssignment(t *testing.T) {
	m := testModel(t)
	counts := make(map[Archetype]int)
	for _, a := range m.Archetypes() {
		counts[a]++
	}
	if counts[Airport] != 1 {
		t.Fatalf("airport regions = %d, want exactly 1", counts[Airport])
	}
	if counts[Downtown] == 0 || counts[Residential] == 0 || counts[Suburb] == 0 {
		t.Fatalf("archetype mix incomplete: %v", counts)
	}
}

func TestRateRushHourPeaks(t *testing.T) {
	m := testModel(t)
	// Find a downtown region.
	var dt int = -1
	for i, a := range m.Archetypes() {
		if a == Downtown {
			dt = i
			break
		}
	}
	if dt < 0 {
		t.Fatal("no downtown region")
	}
	night := m.Rate(dt, 3*60)   // 3:00
	morning := m.Rate(dt, 8*60) // 8:00 rush
	evening := m.Rate(dt, 18*60)
	if morning <= 2*night {
		t.Errorf("morning rush rate %v not well above night %v", morning, night)
	}
	if evening <= 2*night {
		t.Errorf("evening rush rate %v not well above night %v", evening, night)
	}
}

func TestRateNonNegativeAllHours(t *testing.T) {
	m := testModel(t)
	for r := 0; r < m.Partition().Len(); r++ {
		for h := 0; h < 24; h++ {
			if m.Rate(r, h*60) < 0 {
				t.Fatalf("negative rate region %d hour %d", r, h)
			}
		}
	}
}

func TestExpectedSlotDemandAdditive(t *testing.T) {
	m := testModel(t)
	full := m.ExpectedSlotDemand(0, 480, 10)
	half1 := m.ExpectedSlotDemand(0, 480, 5)
	half2 := m.ExpectedSlotDemand(0, 485, 5)
	if math.Abs(full-half1-half2) > 1e-9 {
		t.Fatalf("slot demand not additive: %v vs %v + %v", full, half1, half2)
	}
}

func TestSampleProducesValidRequests(t *testing.T) {
	m := testModel(t)
	src := rng.New(42)
	reqs := m.Sample(src, 8*60, 10) // morning rush slot
	if len(reqs) == 0 {
		t.Fatal("no requests in rush hour slot")
	}
	seen := make(map[int64]bool)
	for _, r := range reqs {
		if r.TimeMin < 480 || r.TimeMin >= 490 {
			t.Fatalf("request time %d outside slot", r.TimeMin)
		}
		if r.OriginRegion < 0 || r.OriginRegion >= m.Partition().Len() {
			t.Fatalf("invalid origin region %d", r.OriginRegion)
		}
		if r.DestRegion < 0 || r.DestRegion >= m.Partition().Len() {
			t.Fatalf("invalid dest region %d", r.DestRegion)
		}
		if r.DistanceKm <= 0 {
			t.Fatalf("non-positive distance %v", r.DistanceKm)
		}
		if r.DurationMin <= 0 {
			t.Fatalf("non-positive duration %v", r.DurationMin)
		}
		if r.Fare <= 0 {
			t.Fatalf("non-positive fare %v", r.Fare)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestSampleVolumeMatchesExpectation(t *testing.T) {
	m := testModel(t)
	src := rng.New(7)
	var want float64
	for r := 0; r < m.Partition().Len(); r++ {
		want += m.ExpectedSlotDemand(r, 8*60, 10)
	}
	var got float64
	trials := 40
	for i := 0; i < trials; i++ {
		got += float64(len(m.Sample(src, 8*60, 10)))
	}
	got /= float64(trials)
	if math.Abs(got-want) > want*0.15+2 {
		t.Fatalf("sampled volume %v, expected %v", got, want)
	}
}

func TestScaleScalesVolume(t *testing.T) {
	m := testModel(t)
	base := m.TotalExpectedPerDay()
	m.Scale = 2
	if got := m.TotalExpectedPerDay(); math.Abs(got-2*base) > 1e-6*base {
		t.Fatalf("scale=2 demand %v, want %v", got, 2*base)
	}
}

func TestAirportRevenueHighest(t *testing.T) {
	// Paper Fig. 7: per-trip revenue in the airport region is always high,
	// suburbs low.
	m := testModel(t)
	src := rng.New(3)
	var airport, suburb int = -1, -1
	for i, a := range m.Archetypes() {
		if a == Airport {
			airport = i
		}
		if a == Suburb && suburb < 0 {
			suburb = i
		}
	}
	af := m.MeanFare(src, airport, 10, 300)
	sf := m.MeanFare(src, suburb, 10, 300)
	if af <= sf {
		t.Fatalf("airport mean fare %v not above suburb %v", af, sf)
	}
}

func TestPerTripRevenueSpread(t *testing.T) {
	// Fig. 7: region mean fares range from several CNY to over ~100 CNY.
	m := testModel(t)
	src := rng.New(5)
	var lo, hi float64 = math.Inf(1), 0
	for r := 0; r < m.Partition().Len(); r += 5 {
		f := m.MeanFare(src, r, 18, 100)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi/lo < 1.6 {
		t.Fatalf("per-trip revenue spread too small: lo=%v hi=%v", lo, hi)
	}
}

func TestSpeedKmh(t *testing.T) {
	if SpeedKmh(8) >= SpeedKmh(3) {
		t.Error("rush hour should be slower than overnight")
	}
	if SpeedKmh(18) >= SpeedKmh(14) {
		t.Error("evening rush should be slower than mid-afternoon")
	}
	if SpeedKmh(25) != SpeedKmh(1) {
		t.Error("hour wrapping broken")
	}
	if SpeedKmh(-1) != SpeedKmh(23) {
		t.Error("negative hour wrapping broken")
	}
}

func TestSampleDeterministicGivenSource(t *testing.T) {
	part, _ := partition.Generate(1, 50, partition.ShenzhenBBox)
	m1 := NewShenzhenLike(9, part)
	m2 := NewShenzhenLike(9, part)
	r1 := m1.Sample(rng.New(4), 600, 10)
	r2 := m2.Sample(rng.New(4), 600, 10)
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Origin != r2[i].Origin || r1[i].Fare != r2[i].Fare {
			t.Fatal("same seeds produced different requests")
		}
	}
}

func TestNewValidation(t *testing.T) {
	part, _ := partition.Generate(1, 10, partition.ShenzhenBBox)
	fares := pricing.ShenzhenFares()
	profiles := make([]RegionProfile, 10)
	for i := range profiles {
		profiles[i] = RegionProfile{Region: i, Archetype: Suburb, BasePerHour: 1, Attractiveness: 1}
	}
	if _, err := New(part, profiles, fares); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if _, err := New(part, profiles[:5], fares); err == nil {
		t.Error("profile count mismatch accepted")
	}
	bad := append([]RegionProfile(nil), profiles...)
	bad[3].Region = 7
	if _, err := New(part, bad, fares); err == nil {
		t.Error("wrong region ID accepted")
	}
	neg := append([]RegionProfile(nil), profiles...)
	neg[2].BasePerHour = -1
	if _, err := New(part, neg, fares); err == nil {
		t.Error("negative base accepted")
	}
}

func TestSampleTripFromOrigin(t *testing.T) {
	m := testModel(t)
	src := rng.New(8)
	for i := 0; i < 50; i++ {
		req := m.SampleTripFrom(src, 7, 100)
		if req.OriginRegion != 7 {
			t.Fatalf("origin region = %d, want 7", req.OriginRegion)
		}
	}
}

func TestExpectedFareTracksMonteCarlo(t *testing.T) {
	m := testModel(t)
	src := rng.New(12)
	for _, region := range []int{0, 10, 40, 90} {
		analytic := m.ExpectedFare(region, 10)
		mc := m.MeanFare(src, region, 10, 400)
		// The analytic estimate uses the mean distance; Jensen effects and
		// the minimum-trip floor allow moderate deviation.
		if analytic < mc*0.5 || analytic > mc*1.8 {
			t.Errorf("region %d: analytic fare %v vs Monte-Carlo %v", region, analytic, mc)
		}
	}
}

func TestExpectedFarePositiveEverywhere(t *testing.T) {
	m := testModel(t)
	for r := 0; r < m.Partition().Len(); r++ {
		for h := 0; h < 24; h++ {
			if f := m.ExpectedFare(r, h); f <= 0 {
				t.Fatalf("ExpectedFare(%d,%d) = %v", r, h, f)
			}
		}
	}
}

func TestGravityPrefersNearAttractive(t *testing.T) {
	m := testModel(t)
	src := rng.New(10)
	// Destinations from a downtown region should usually be nearby: mean
	// trip distance well below the city diameter.
	var dt int
	for i, a := range m.Archetypes() {
		if a == Downtown {
			dt = i
			break
		}
	}
	var sum float64
	n := 200
	for i := 0; i < n; i++ {
		sum += m.SampleTripFrom(src, dt, 600).DistanceKm
	}
	mean := sum / float64(n)
	if mean > 30 {
		t.Fatalf("mean trip distance %v km too long for gravity model", mean)
	}
	if mean < 1 {
		t.Fatalf("mean trip distance %v km implausibly short", mean)
	}
}
