package demand

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// A nil scale and an all-ones scale must consume the identical random stream:
// unperturbed scenarios replay the exact baseline demand realization.
func TestSampleScaledIdentityMatchesSample(t *testing.T) {
	m := testModel(t)
	a := m.Sample(rng.New(7), 8*60, 10)
	b := m.SampleScaled(rng.New(7), 8*60, 10, func(int) float64 { return 1 })
	if !reflect.DeepEqual(stripIDs(a), stripIDs(b)) {
		t.Fatalf("identity scale diverged: %d vs %d requests", len(a), len(b))
	}
}

func TestSampleScaledSurgeAndDrought(t *testing.T) {
	m := testModel(t)
	var base, surged, silenced int
	for day := 0; day < 5; day++ {
		tMin := day*1440 + 8*60
		base += len(m.Sample(rng.New(int64(day)), tMin, 10))
		surged += len(m.SampleScaled(rng.New(int64(day)), tMin, 10, func(int) float64 { return 3 }))
		silenced += len(m.SampleScaled(rng.New(int64(day)), tMin, 10, func(int) float64 { return 0 }))
	}
	if surged <= base {
		t.Fatalf("3x surge produced %d requests vs %d baseline", surged, base)
	}
	if silenced != 0 {
		t.Fatalf("zero scale produced %d requests", silenced)
	}
}

func TestSampleScaledRegionScoped(t *testing.T) {
	m := testModel(t)
	// Silence every region but 0: all requests must originate there.
	reqs := m.SampleScaled(rng.New(3), 18*60, 60, func(r int) float64 {
		if r == 0 {
			return 5
		}
		return 0
	})
	if len(reqs) == 0 {
		t.Fatal("no requests from the surged region")
	}
	for _, r := range reqs {
		if r.OriginRegion != 0 {
			t.Fatalf("request from silenced region %d", r.OriginRegion)
		}
	}
}

// Negative factors are treated as silence, not amplification.
func TestSampleScaledNegativeFactorSilences(t *testing.T) {
	m := testModel(t)
	if got := m.SampleScaled(rng.New(4), 12*60, 60, func(int) float64 { return -2 }); len(got) != 0 {
		t.Fatalf("negative scale produced %d requests", len(got))
	}
}

// stripIDs zeroes the diagnostic request IDs, which come from a shared
// atomic counter and are not part of the realization.
func stripIDs(reqs []Request) []Request {
	out := append([]Request(nil), reqs...)
	for i := range out {
		out[i].ID = 0
	}
	return out
}
