// Package demand models spatiotemporal passenger travel demand: where and
// when trip requests appear, where they go, and what they pay.
//
// The model reproduces the structure behind the paper's data-driven findings
// (Section II-C): per-trip revenue varies strongly across regions and hours
// (Fig. 7, several CNY to over 100 CNY, airport always high), demand has
// morning and evening rush peaks, and low-demand suburbs force long cruise
// times after charging (Figs. 5-6). Regions are typed by archetype and the
// origin-destination flow follows a gravity model.
package demand

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/partition"
	"repro/internal/pricing"
	"repro/internal/rng"
)

// Archetype classifies a region's land use, which drives its demand curve
// and trip-length distribution.
type Archetype int

// Region archetypes.
const (
	Downtown Archetype = iota
	Residential
	Suburb
	Industrial
	Airport
	numArchetypes
)

// String implements fmt.Stringer.
func (a Archetype) String() string {
	switch a {
	case Downtown:
		return "downtown"
	case Residential:
		return "residential"
	case Suburb:
		return "suburb"
	case Industrial:
		return "industrial"
	case Airport:
		return "airport"
	default:
		return fmt.Sprintf("Archetype(%d)", int(a))
	}
}

// hourlyShape returns the demand multiplier curve of an archetype over 24
// hours. Curves are normalized to mean 1 at construction time.
func hourlyShape(a Archetype) [24]float64 {
	switch a {
	case Downtown:
		// Strong morning and evening rush, busy evenings.
		return [24]float64{0.3, 0.2, 0.15, 0.1, 0.15, 0.3, 0.8, 1.6, 2.0, 1.5, 1.2, 1.2, 1.3, 1.2, 1.1, 1.2, 1.5, 1.9, 2.1, 1.8, 1.5, 1.2, 0.8, 0.5}
	case Residential:
		// Morning outflow peak, evening return.
		return [24]float64{0.3, 0.2, 0.1, 0.1, 0.2, 0.5, 1.4, 2.2, 1.8, 1.0, 0.8, 0.8, 0.9, 0.8, 0.8, 0.9, 1.1, 1.4, 1.7, 1.5, 1.2, 1.0, 0.7, 0.4}
	case Suburb:
		// Flat and thin.
		return [24]float64{0.2, 0.15, 0.1, 0.1, 0.15, 0.3, 0.7, 1.1, 1.2, 1.0, 0.9, 0.9, 1.0, 0.9, 0.9, 0.9, 1.0, 1.2, 1.2, 1.0, 0.8, 0.6, 0.4, 0.3}
	case Industrial:
		// Shift-change spikes.
		return [24]float64{0.2, 0.1, 0.1, 0.1, 0.2, 0.6, 1.5, 1.9, 1.3, 0.8, 0.7, 0.8, 1.1, 0.9, 0.7, 0.8, 1.2, 1.8, 1.5, 0.9, 0.6, 0.4, 0.3, 0.2}
	case Airport:
		// Busy through the day and late evening (arrivals).
		return [24]float64{0.8, 0.5, 0.3, 0.3, 0.5, 0.9, 1.2, 1.4, 1.5, 1.4, 1.3, 1.3, 1.3, 1.3, 1.4, 1.4, 1.4, 1.5, 1.5, 1.5, 1.5, 1.4, 1.2, 1.0}
	default:
		var flat [24]float64
		for i := range flat {
			flat[i] = 1
		}
		return flat
	}
}

// baseIntensity returns the relative request volume of an archetype (mean
// requests per hour per region before fleet scaling).
func baseIntensity(a Archetype) float64 {
	switch a {
	case Downtown:
		return 10.0
	case Residential:
		return 5.0
	case Suburb:
		return 1.2
	case Industrial:
		return 2.5
	case Airport:
		return 8.0
	default:
		return 1.0
	}
}

// attractiveness returns the gravity-model destination weight.
func attractiveness(a Archetype) float64 {
	switch a {
	case Downtown:
		return 8.0
	case Residential:
		return 5.0
	case Suburb:
		return 1.5
	case Industrial:
		return 2.0
	case Airport:
		return 4.0
	default:
		return 1.0
	}
}

// RegionProfile is the demand configuration of one region.
type RegionProfile struct {
	Region         int
	Archetype      Archetype
	BasePerHour    float64 // mean requests per hour before hourly shaping
	Attractiveness float64 // gravity-model destination weight
}

// Request is one passenger trip request.
type Request struct {
	ID           int64
	TimeMin      int // absolute simulation minute
	Origin       geo.Point
	OriginRegion int
	Dest         geo.Point
	DestRegion   int
	DistanceKm   float64 // road distance
	DurationMin  float64 // expected on-board duration
	Fare         float64 // CNY
}

// Model generates requests for a partitioned city.
type Model struct {
	part     *partition.Partition
	profiles []RegionProfile
	fares    pricing.FareSchedule
	// Scale multiplies every region's base intensity; the synthetic city
	// uses it to match demand to fleet size.
	Scale float64

	// destWeights[o] caches gravity weights from origin o to every region.
	destWeights [][]float64
	// destAlias[o] caches the alias table of destWeights[o] for the O(1)
	// destination draw used by SampleRegionScaledFast.
	destAlias []rng.Alias
	// tris[o] caches region o's triangle fan for O(1) point placement on
	// the fast sampling path.
	tris []regionTris
	// cosMidLat caches the cosine of the city's mid latitude for the fast
	// path's equirectangular trip distances.
	cosMidLat float64
	// meanDistKm[o] caches the gravity-weighted mean haversine trip
	// distance from origin o, used for fast expected-fare queries.
	meanDistKm []float64
	// nextID labels sampled requests. It is atomic because several
	// simulation environments may share one Model (the City is read-only
	// shared state under the parallel runtime); the IDs themselves are
	// diagnostic only and never reach Results.
	nextID atomic.Int64
}

// RoadFactor converts haversine distance to road distance.
const RoadFactor = 1.35

// SpeedKmh returns average traffic speed at the given hour: slower in the
// rush hours, faster overnight.
func SpeedKmh(hour int) float64 {
	h := ((hour % 24) + 24) % 24
	switch {
	case h >= 7 && h < 10:
		return 22
	case h >= 17 && h < 20:
		return 20
	case h >= 23 || h < 6:
		return 42
	default:
		return 30
	}
}

// NewShenzhenLike builds a demand model over part with archetypes assigned
// by geography: the innermost regions are downtown, surrounded by
// residential, then industrial/suburban fringe, plus one airport region in
// the far northwest (as in Shenzhen, where Bao'an airport sits away from the
// centre).
func NewShenzhenLike(seed int64, part *partition.Partition) *Model {
	src := rng.SplitStable(seed, "demand-archetypes")
	n := part.Len()
	center := part.BBox().Center()

	// Rank regions by distance from centre.
	type rd struct {
		id int
		d  float64
	}
	ranked := make([]rd, n)
	var maxD float64
	for i := 0; i < n; i++ {
		d := geo.Distance(part.Region(i).Centroid, center)
		ranked[i] = rd{i, d}
		if d > maxD {
			maxD = d
		}
	}

	profiles := make([]RegionProfile, n)
	// Airport: the region closest to the northwest corner of the bbox.
	b := part.BBox()
	nw := geo.Point{Lng: b.MinLng + 0.1*b.Width(), Lat: b.MinLat + 0.8*b.Height()}
	airportID, bestD := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		if d := geo.Distance(part.Region(i).Centroid, nw); d < bestD {
			airportID, bestD = i, d
		}
	}

	for i := 0; i < n; i++ {
		frac := ranked[i].d / maxD
		var a Archetype
		switch {
		case i == airportID:
			a = Airport
		case frac < 0.25:
			a = Downtown
		case frac < 0.55:
			a = Residential
		case frac < 0.8:
			if src.Bool(0.4) {
				a = Industrial
			} else {
				a = Suburb
			}
		default:
			a = Suburb
		}
		base := baseIntensity(a) * src.Uniform(0.7, 1.3)
		profiles[i] = RegionProfile{
			Region:         i,
			Archetype:      a,
			BasePerHour:    base,
			Attractiveness: attractiveness(a) * src.Uniform(0.8, 1.2),
		}
	}

	m := &Model{part: part, profiles: profiles, fares: pricing.ShenzhenFares(), Scale: 1}
	m.buildGravity()
	return m
}

// New builds a model from explicit profiles (profiles[i].Region must be i).
func New(part *partition.Partition, profiles []RegionProfile, fares pricing.FareSchedule) (*Model, error) {
	if len(profiles) != part.Len() {
		return nil, fmt.Errorf("demand: %d profiles for %d regions", len(profiles), part.Len())
	}
	for i, p := range profiles {
		if p.Region != i {
			return nil, fmt.Errorf("demand: profile %d has region %d", i, p.Region)
		}
		if p.BasePerHour < 0 || p.Attractiveness < 0 {
			return nil, fmt.Errorf("demand: profile %d has negative parameters", i)
		}
	}
	m := &Model{part: part, profiles: append([]RegionProfile(nil), profiles...), fares: fares, Scale: 1}
	m.buildGravity()
	return m, nil
}

// buildGravity precomputes destination weights w(o,d) ∝ A_d / (1 + dist²),
// excluding the origin itself for all but a small self-loop weight.
func (m *Model) buildGravity() {
	n := m.part.Len()
	m.destWeights = make([][]float64, n)
	m.destAlias = make([]rng.Alias, n)
	m.meanDistKm = make([]float64, n)
	for o := 0; o < n; o++ {
		ws := make([]float64, n)
		var wSum, wdSum float64
		for d := 0; d < n; d++ {
			dist := m.part.Distance(o, d)
			w := m.profiles[d].Attractiveness / (1 + 0.05*dist*dist)
			if d == o {
				w *= 0.1 // short intra-region trips are rare but possible
			}
			ws[d] = w
			wSum += w
			wdSum += w * dist
		}
		m.destWeights[o] = ws
		m.destAlias[o] = rng.NewAlias(ws)
		if wSum > 0 {
			m.meanDistKm[o] = wdSum / wSum
		}
	}
	m.buildTris()
}

// regionTris is a region polygon's triangle fan: triangle i is (apex, b[i],
// c[i]), with cum the prefix sums of the triangles' lng-lat areas.
type regionTris struct {
	apex  geo.Point
	b, c  []geo.Point
	cum   []float64
	total float64
}

// buildTris fans every region polygon from its first vertex. The partition's
// regions are convex (jittered grid quads), so the fan tiles each polygon
// exactly and picking a triangle by area then a uniform point inside it is a
// uniform draw over the region — the O(1) replacement for the fast path's
// rejection sampling.
func (m *Model) buildTris() {
	n := m.part.Len()
	m.tris = make([]regionTris, n)
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	for r := 0; r < n; r++ {
		for _, p := range m.part.Region(r).Polygon.Ring {
			minLat = math.Min(minLat, p.Lat)
			maxLat = math.Max(maxLat, p.Lat)
		}
	}
	m.cosMidLat = 1
	if minLat <= maxLat {
		m.cosMidLat = math.Cos((minLat + maxLat) / 2 * math.Pi / 180)
	}
	for r := 0; r < n; r++ {
		ring := m.part.Region(r).Polygon.Ring
		if len(ring) < 3 {
			continue
		}
		tr := &m.tris[r]
		tr.apex = ring[0]
		for i := 1; i < len(ring)-1; i++ {
			b, cc := ring[i], ring[i+1]
			area := math.Abs((b.Lng-tr.apex.Lng)*(cc.Lat-tr.apex.Lat) - (cc.Lng-tr.apex.Lng)*(b.Lat-tr.apex.Lat))
			tr.b = append(tr.b, b)
			tr.c = append(tr.c, cc)
			tr.total += area
			tr.cum = append(tr.cum, tr.total)
		}
	}
}

// randPointInFast places a uniform point in region via its triangle fan
// with exactly two uniform draws and no rejection loop: the first draw
// picks the triangle by area, and its position within the chosen area
// segment — uniform conditional on the pick — is rescaled into the first
// barycentric coordinate. Used only on the fast sampling path; the draw
// count and therefore the stream differ from randPointIn.
func (m *Model) randPointInFast(src *rng.Source, region int) geo.Point {
	tr := &m.tris[region]
	if tr.total <= 0 {
		return m.part.Region(region).Centroid
	}
	u := src.Float64()
	i := 0
	if len(tr.cum) > 1 {
		x := u * tr.total
		for i < len(tr.cum)-1 && tr.cum[i] <= x {
			i++
		}
		lo := 0.0
		if i > 0 {
			lo = tr.cum[i-1]
		}
		u = (x - lo) / (tr.cum[i] - lo)
	}
	v := src.Float64()
	if u+v > 1 {
		u, v = 1-u, 1-v
	}
	a, b, cc := tr.apex, tr.b[i], tr.c[i]
	return geo.Point{
		Lng: a.Lng + u*(b.Lng-a.Lng) + v*(cc.Lng-a.Lng),
		Lat: a.Lat + u*(b.Lat-a.Lat) + v*(cc.Lat-a.Lat),
	}
}

// ExpectedFare returns the gravity-weighted expected per-trip fare from
// origin at the given hour, computed analytically from the cached mean trip
// distance. It is the fast estimate used in policy observation features;
// MeanFare is the Monte-Carlo reference.
func (m *Model) ExpectedFare(origin, hour int) float64 {
	distKm := m.meanDistKm[origin] * RoadFactor
	if distKm < 1 {
		distKm = 1
	}
	durMin := distKm / SpeedKmh(hour) * 60
	return m.fares.Fare(distKm, durMin, hour)
}

// Partition returns the underlying partition.
func (m *Model) Partition() *partition.Partition { return m.part }

// Profile returns the demand profile of a region.
func (m *Model) Profile(region int) RegionProfile { return m.profiles[region] }

// Fares returns the fare schedule.
func (m *Model) Fares() pricing.FareSchedule { return m.fares }

// Rate returns the expected number of requests per minute in region at
// absolute minute t.
func (m *Model) Rate(region, tMin int) float64 {
	hour := (tMin / 60) % 24
	if hour < 0 {
		hour += 24
	}
	shape := hourlyShape(m.profiles[region].Archetype)
	return m.Scale * m.profiles[region].BasePerHour * shape[hour] / 60
}

// ExpectedSlotDemand returns the expected number of requests in region over
// a slot of slotMin minutes starting at tMin — the "predicted number of
// passengers at the next time slot" feature of the paper's global state.
func (m *Model) ExpectedSlotDemand(region, tMin, slotMin int) float64 {
	var sum float64
	for dm := 0; dm < slotMin; dm++ {
		sum += m.Rate(region, tMin+dm)
	}
	return sum
}

// TotalExpectedPerDay returns the expected total requests per day across all
// regions at the current scale. The synthetic city uses it to calibrate
// Scale against the fleet size.
func (m *Model) TotalExpectedPerDay() float64 {
	var sum float64
	for r := 0; r < m.part.Len(); r++ {
		for h := 0; h < 24; h++ {
			sum += m.Rate(r, h*60) * 60
		}
	}
	return sum
}

// randPointIn returns a point near the centroid of region, inside its
// polygon when possible.
func (m *Model) randPointIn(src *rng.Source, region int) geo.Point {
	r := m.part.Region(region)
	bb := r.Polygon.BBox()
	for try := 0; try < 8; try++ {
		p := geo.Point{
			Lng: src.Uniform(bb.MinLng, bb.MaxLng),
			Lat: src.Uniform(bb.MinLat, bb.MaxLat),
		}
		if r.Polygon.Contains(p) {
			return p
		}
	}
	return r.Centroid
}

// Sample generates the requests arriving in [tMin, tMin+slotMin) using src.
// Request times are uniform within the slot.
func (m *Model) Sample(src *rng.Source, tMin, slotMin int) []Request {
	return m.SampleScaled(src, tMin, slotMin, nil)
}

// ScaleFunc returns a region's demand-rate multiplier for a slot: 1 leaves
// the region unperturbed, >1 is a surge, <1 a drought, 0 silences it.
// Scenario engines use it to perturb demand without touching the model.
type ScaleFunc func(region int) float64

// SampleScaled is Sample with a per-region rate multiplier applied to the
// expected slot demand before the Poisson draw. A nil scale, or one that
// returns 1 everywhere, consumes exactly the same random stream as Sample,
// so unperturbed regions see an identical realization.
func (m *Model) SampleScaled(src *rng.Source, tMin, slotMin int, scale ScaleFunc) []Request {
	var out []Request
	n := m.part.Len()
	for region := 0; region < n; region++ {
		factor := 1.0
		if scale != nil {
			factor = scale(region)
		}
		out = m.SampleRegionScaled(out, src, region, tMin, slotMin, factor)
	}
	return out
}

// SampleRegionScaled appends the slot's requests for a single region to dst,
// drawing only from src: one Poisson count draw, then per request one
// arrival-offset draw plus the trip draws. Looping it over all regions with
// one source is exactly SampleScaled; a sharded engine instead calls it with
// one source per region, which makes the realization independent of how
// regions are grouped. factor scales the expected demand (1 = unperturbed,
// <= 0 silences the region without skipping the count draw).
func (m *Model) SampleRegionScaled(dst []Request, src *rng.Source, region, tMin, slotMin int, factor float64) []Request {
	return m.sampleRegion(dst, src, region, tMin, slotMin, factor, false)
}

// SampleRegionScaledFast is SampleRegionScaled on O(1)-per-request cached
// machinery: destinations come from a gravity alias table, points from the
// region's triangle fan, and trip distances from the equirectangular
// approximation. It draws from the same per-region stream but consumes a
// different number of draws per request, so realizations are not
// byte-identical to the linear form — same marginal distributions, different
// sample path. The legacy engine keeps SampleRegionScaled (its golden traces
// are pinned); the sharded engine uses this everywhere, at every shard
// count, so shard invariance is unaffected.
func (m *Model) SampleRegionScaledFast(dst []Request, src *rng.Source, region, tMin, slotMin int, factor float64) []Request {
	return m.sampleRegion(dst, src, region, tMin, slotMin, factor, true)
}

func (m *Model) sampleRegion(dst []Request, src *rng.Source, region, tMin, slotMin int, factor float64, fast bool) []Request {
	mean := m.ExpectedSlotDemand(region, tMin, slotMin)
	if factor > 0 {
		mean *= factor
	} else {
		mean = 0
	}
	count := src.Poisson(mean)
	for i := 0; i < count; i++ {
		dst = append(dst, m.sampleOne(src, region, tMin+src.Intn(maxInt(slotMin, 1)), fast))
	}
	return dst
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (m *Model) sampleOne(src *rng.Source, origin, tMin int, fast bool) Request {
	var dest int
	var op, dp geo.Point
	var distKm float64
	if fast {
		dest = src.AliasChoice(m.destAlias[origin])
		op = m.randPointInFast(src, origin)
		dp = m.randPointInFast(src, dest)
		// Equirectangular distance with the city-wide cached cosine: at
		// intra-city extents it matches the haversine to well under 0.1%,
		// far inside RoadFactor's fudge.
		const degToRad = math.Pi / 180
		dLat := (dp.Lat - op.Lat) * degToRad
		dLng := (dp.Lng - op.Lng) * degToRad * m.cosMidLat
		distKm = geo.EarthRadiusKm * math.Sqrt(dLat*dLat+dLng*dLng) * RoadFactor
	} else {
		dest = src.WeightedChoice(m.destWeights[origin])
		op = m.randPointIn(src, origin)
		dp = m.randPointIn(src, dest)
		distKm = geo.Distance(op, dp) * RoadFactor
	}
	if distKm < 0.5 {
		distKm = 0.5 + src.Uniform(0, 1.0) // minimum meaningful trip
	}
	hour := (tMin / 60) % 24
	speed := SpeedKmh(hour)
	durMin := distKm / speed * 60 * src.Uniform(0.9, 1.2)
	fare := m.fares.Fare(distKm, durMin, hour)
	return Request{
		ID:           m.nextID.Add(1),
		TimeMin:      tMin,
		Origin:       op,
		OriginRegion: origin,
		Dest:         dp,
		DestRegion:   dest,
		DistanceKm:   distKm,
		DurationMin:  durMin,
		Fare:         fare,
	}
}

// SampleTripFrom generates a single request originating in region at tMin.
// The simulator uses it when a matched passenger's trip needs materializing.
func (m *Model) SampleTripFrom(src *rng.Source, region, tMin int) Request {
	return m.sampleOne(src, region, tMin, false)
}

// MeanFare estimates the mean per-trip fare from region at the given hour by
// Monte-Carlo sampling. Figures use it; policies use learned estimates.
func (m *Model) MeanFare(src *rng.Source, region, hour, samples int) float64 {
	if samples <= 0 {
		samples = 50
	}
	var sum float64
	for i := 0; i < samples; i++ {
		sum += m.sampleOne(src, region, hour*60, false).Fare
	}
	return sum / float64(samples)
}

// Archetypes returns the archetype of every region.
func (m *Model) Archetypes() []Archetype {
	out := make([]Archetype, len(m.profiles))
	for i, p := range m.profiles {
		out[i] = p.Archetype
	}
	return out
}
