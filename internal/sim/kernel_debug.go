package sim

// Verification surface of the sharded core: cross-shard handoff invariants
// and conservation ledgers the property-test battery checks after every
// barrier. None of this is on the hot path.

import "fmt"

// CheckInvariants verifies the ownership partition: every taxi is owned by
// exactly one kernel (the ownership bitmaps are disjoint and total), the
// owner index matches the taxi's region assignment (valid at slot
// boundaries, when all migrants have been routed), and every station's
// occupancy state is consistent.
func (c *Core) CheckInvariants() error {
	count := make([]int, len(c.taxis))
	var err error
	for k, kn := range c.kernels {
		k := k
		kn.owned.forEach(func(id int) {
			if err != nil {
				return
			}
			count[id]++
			if c.taxiOwner[id] != k {
				err = fmt.Errorf("taxi %d: in kernel %d's set but taxiOwner says %d", id, k, c.taxiOwner[id])
				return
			}
			if got := c.regionOwner[c.taxis[id].region]; got != k {
				err = fmt.Errorf("taxi %d: owned by kernel %d but its region %d belongs to kernel %d",
					id, k, c.taxis[id].region, got)
			}
		})
	}
	if err != nil {
		return err
	}
	for id, n := range count {
		if n != 1 {
			return fmt.Errorf("taxi %d: owned by %d kernels, want exactly 1", id, n)
		}
	}
	for _, st := range c.stations {
		if err := st.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// EnergyLedger is a taxi's full energy account for conservation checks:
// SoCKWh must equal the initial charge plus ChargedKWh minus consumption
// (DrivenKm×ConsumptionPerKm−DeficitKWh), at any shard count.
type EnergyLedger struct {
	SoCKWh           float64
	CapacityKWh      float64
	ConsumptionPerKm float64
	ChargedKWh       float64 // completed sessions plus the in-progress one
	DrivenKm         float64
	DeficitKWh       float64
}

// TaxiEnergyLedger returns the energy ledger of a taxi. The account fields
// reset at the warmup boundary, so conservation holds exactly only when
// Options.WarmupDays is zero.
func (c *Core) TaxiEnergyLedger(id int) EnergyLedger {
	t := &c.taxis[id]
	charged := t.acct.EnergyKWh
	if t.state == ChargingState {
		// chargeEnergy is the in-progress session; after finishCharge folds
		// it into acct.EnergyKWh it stays set until the next plug-in, so it
		// only counts while the taxi is actually on a charger.
		charged += t.chargeEnergy
	}
	return EnergyLedger{
		SoCKWh:           t.batt.SoC * t.batt.CapacityKWh,
		CapacityKWh:      t.batt.CapacityKWh,
		ConsumptionPerKm: t.batt.ConsumptionPerKm,
		ChargedKWh:       charged,
		DrivenKm:         t.acct.DistanceKm,
		DeficitKWh:       t.acct.EnergyDeficitKWh,
	}
}

// GeneratedRequests returns how many requests have been sampled since Reset
// (counted at slot barriers). With WarmupDays zero it satisfies
// generated == served + unserved + pending at every slot boundary.
func (c *Core) GeneratedRequests() int { return c.generated }

// PendingRequests returns how many sampled requests are still waiting.
func (c *Core) PendingRequests() int {
	n := 0
	for _, kn := range c.kernels {
		for _, reqs := range kn.pending {
			n += len(reqs)
		}
	}
	return n
}

// RegionOwner returns the kernel index owning a region.
func (c *Core) RegionOwner(region int) int { return c.regionOwner[region] }

// TaxiOwner returns the kernel index currently owning a taxi.
func (c *Core) TaxiOwner(id int) int { return c.taxiOwner[id] }
