package sim

// Hook-level fault-injection tests. The scenario engine lives in
// internal/scenario (which imports sim, so these tests cannot use it);
// stubHooks stands in to exercise each perturbation channel in isolation.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/synth"
	"repro/internal/trace"
)

// stubHooks implements Hooks from closures; nil fields mean "unperturbed".
type stubHooks struct {
	closed  func(station, minute int) bool
	derate  func(station, minute int) int
	demand  func(region, minute int) float64
	fare    func(region, minute int) float64
	stale   func(region, minute int) bool
	battery func(taxi int) float64
}

func (h stubHooks) StationClosed(s, m int) bool {
	return h.closed != nil && h.closed(s, m)
}

func (h stubHooks) StationDerate(s, m int) int {
	if h.derate == nil {
		return 0
	}
	return h.derate(s, m)
}

func (h stubHooks) DemandScale(r, m int) float64 {
	if h.demand == nil {
		return 1
	}
	return h.demand(r, m)
}

func (h stubHooks) FareScale(r, m int) float64 {
	if h.fare == nil {
		return 1
	}
	return h.fare(r, m)
}

func (h stubHooks) ObsStale(r, m int) bool {
	return h.stale != nil && h.stale(r, m)
}

func (h stubHooks) BatteryFactor(i int) float64 {
	if h.battery == nil {
		return 1
	}
	return h.battery(i)
}

func TestOutageDivertsArrivals(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.25 // everyone needs to charge soon
	}
	e := New(city, DefaultOptions(1), 21)

	// Run once clean to find the busiest station, then close it all day.
	runStay(e)
	res := e.Results()
	counts := make(map[int]int)
	for _, ev := range res.ChargeStats {
		counts[ev.StationID]++
	}
	busiest, most := -1, 0
	for id, c := range counts {
		if c > most {
			busiest, most = id, c
		}
	}
	if busiest < 0 {
		t.Skip("no charging in baseline run")
	}

	e.SetHooks(stubHooks{closed: func(s, m int) bool {
		return s == busiest && m < 24*60
	}})
	e.Reset(21)
	runStay(e)
	res2 := e.Results()
	for _, ev := range res2.ChargeStats {
		if ev.StationID == busiest && ev.PlugMin < 24*60 {
			// Plugging in requires arriving, and arrivals divert during the
			// outage — unless every alternative was also closed (not the
			// case here).
			t.Fatalf("charging event at closed station %d (plug %d)", busiest, ev.PlugMin)
		}
	}
	// The fleet must still have charged somewhere.
	if len(res2.ChargeStats) == 0 {
		t.Fatal("outage wiped out all charging")
	}
}

func TestStationClosedRespectsWindow(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 22)
	e.SetHooks(stubHooks{closed: func(s, m int) bool {
		return s == 0 && m >= 100 && m < 200
	}})
	if e.stationClosed(0, 99) || e.stationClosed(0, 200) {
		t.Fatal("outage active outside its window")
	}
	if !e.stationClosed(0, 100) || !e.stationClosed(0, 199) {
		t.Fatal("outage inactive inside its window")
	}
	if e.stationClosed(1, 150) {
		t.Fatal("outage leaked to another station")
	}
}

func TestHooksPersistAcrossReset(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 23)
	e.SetHooks(stubHooks{closed: func(s, m int) bool { return s == 0 }})
	e.Reset(23)
	if !e.stationClosed(0, 100) {
		t.Fatal("Reset dropped the installed hooks")
	}
	e.SetHooks(nil)
	if e.stationClosed(0, 100) {
		t.Fatal("SetHooks(nil) did not remove the hooks")
	}
}

// Identity hooks must replay the clean run byte for byte: the golden
// baseline scenario is trustworthy only if installing a no-op engine
// perturbs nothing (in particular the demand RNG stream).
func TestIdentityHooksMatchCleanRun(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 31)
	var clean []trace.Event
	e.SetRecorder(func(ev trace.Event) { clean = append(clean, ev) })
	runStay(e)
	cleanRes := e.Results()

	var hooked []trace.Event
	e.SetRecorder(func(ev trace.Event) { hooked = append(hooked, ev) })
	e.SetHooks(stubHooks{})
	e.Reset(31)
	runStay(e)
	hookedRes := e.Results()

	if trace.DigestEvents(clean) != trace.DigestEvents(hooked) {
		t.Fatalf("identity hooks changed the event stream: %d vs %d events",
			len(clean), len(hooked))
	}
	if cleanRes.ServedRequests != hookedRes.ServedRequests ||
		cleanRes.UnservedRequests != hookedRes.UnservedRequests {
		t.Fatalf("identity hooks changed service counts: %d/%d vs %d/%d",
			cleanRes.ServedRequests, cleanRes.UnservedRequests,
			hookedRes.ServedRequests, hookedRes.UnservedRequests)
	}
}

func TestDemandScaleZeroSilencesCity(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 32)
	e.SetHooks(stubHooks{demand: func(r, m int) float64 { return 0 }})
	e.Reset(32)
	runStay(e)
	res := e.Results()
	if res.ServedRequests != 0 || res.UnservedRequests != 0 {
		t.Fatalf("silenced city produced %d served / %d unserved requests",
			res.ServedRequests, res.UnservedRequests)
	}
}

// Fare scaling multiplies revenue without touching any behavioral choice:
// under the Stay policy a 2x city-wide shock exactly doubles total revenue.
func TestFareScaleDoublesRevenue(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 33)
	runStay(e)
	base := e.Results()

	e.SetHooks(stubHooks{fare: func(r, m int) float64 { return 2 }})
	e.Reset(33)
	runStay(e)
	shocked := e.Results()

	if base.ServedRequests == 0 {
		t.Skip("no trips in baseline run")
	}
	if shocked.ServedRequests != base.ServedRequests {
		t.Fatalf("fare shock changed trip count: %d vs %d",
			shocked.ServedRequests, base.ServedRequests)
	}
	var baseRev, shockedRev float64
	for i := range base.Accounts {
		baseRev += base.Accounts[i].RevenueCNY
		shockedRev += shocked.Accounts[i].RevenueCNY
	}
	if math.Abs(shockedRev-2*baseRev) > 1e-6*baseRev {
		t.Fatalf("2x fare shock: revenue %.4f, want %.4f", shockedRev, 2*baseRev)
	}
}

// During a GPS dropout window observations freeze at the last fresh value;
// the action mask stays current.
func TestObsStaleFreezesFeatures(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(34))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 34)
	staleNow := false
	e.SetHooks(stubHooks{stale: func(r, m int) bool { return staleNow }})
	e.Reset(34)

	e.Step(nil) // advance so features are non-trivial
	ids := e.VacantTaxis()
	if len(ids) == 0 {
		t.Skip("no vacant taxis after one slot")
	}
	id := ids[0]
	// Observation.Features borrows a per-taxi buffer; snapshot it before
	// later Observe calls on the same taxi rewrite it.
	fresh := append([]float64(nil), e.Observe(id).Features...)

	staleNow = true
	e.Step(nil)
	e.Step(nil)
	if e.TaxiState(id) != Cruising {
		t.Skip("probe taxi left the vacant pool")
	}
	during := e.Observe(id)
	if !reflect.DeepEqual(during.Features, fresh) {
		t.Fatal("features changed during GPS dropout")
	}
	if during.Mask != e.ValidMask(id) {
		t.Fatal("mask went stale during GPS dropout")
	}

	staleNow = false
	after := e.Observe(id)
	if reflect.DeepEqual(after.Features, fresh) {
		t.Fatal("features still frozen after the dropout lifted")
	}
}

func TestBatteryFactorAppliedAtReset(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(35))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 35)
	healthy := make([]float64, len(e.taxis))
	for i := range e.taxis {
		healthy[i] = e.taxis[i].batt.CapacityKWh
	}
	e.SetHooks(stubHooks{battery: func(i int) float64 {
		if i%2 == 0 {
			return 0.8
		}
		return 1
	}})
	for i := range e.taxis {
		want := healthy[i]
		if i%2 == 0 {
			want *= 0.8
		}
		if got := e.taxis[i].batt.CapacityKWh; math.Abs(got-want) > 1e-12 {
			t.Fatalf("taxi %d capacity %.3f, want %.3f", i, got, want)
		}
	}
	// Reset must re-apply factors, not compound them.
	e.Reset(35)
	for i := range e.taxis {
		want := healthy[i]
		if i%2 == 0 {
			want *= 0.8
		}
		if got := e.taxis[i].batt.CapacityKWh; math.Abs(got-want) > 1e-12 {
			t.Fatalf("after Reset: taxi %d capacity %.3f, want %.3f", i, got, want)
		}
	}
}

// A derated station accepts fewer simultaneous sessions. With every point
// but one knocked out at every station, the fleet still eventually charges
// (sessions serialize through the remaining points).
func TestDerateSerializesCharging(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(36))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.25
	}
	e := New(city, DefaultOptions(1), 36)
	e.SetHooks(stubHooks{derate: func(s, m int) int {
		return e.City().Stations.Station(s).Points - 1
	}})
	e.Reset(36)
	runStay(e)
	res := e.Results()
	if len(res.ChargeStats) == 0 {
		t.Fatal("derate to one point wiped out all charging")
	}
	// No station may ever host more simultaneous sessions than its single
	// effective point plus sessions that predate the derate (none here,
	// since the derate is active from minute 0).
	type window struct{ plug, finish int }
	byStation := make(map[int][]window)
	for _, ev := range res.ChargeStats {
		byStation[ev.StationID] = append(byStation[ev.StationID], window{ev.PlugMin, ev.FinishMin})
	}
	for sid, ws := range byStation {
		for i, a := range ws {
			overlap := 1
			for j, b := range ws {
				if i != j && a.plug < b.finish && b.plug < a.finish {
					overlap++
				}
			}
			if overlap > 1 {
				t.Fatalf("station %d ran %d concurrent sessions under a 1-point derate", sid, overlap)
			}
		}
	}
}
