package sim

// Extended-hook fault-injection tests: the optional ExtendedHooks tier
// (weather speed scaling, TOU tariff shifts, shift-change off-duty
// windows, battery-cohort consumption factors) exercised in isolation
// through a stub, mirroring hooks_test.go for the base tier.

import (
	"math"
	"testing"

	"repro/internal/synth"
	"repro/internal/trace"
)

// extStubHooks layers the extended methods over stubHooks; nil fields mean
// "identity" so each channel can be perturbed alone.
type extStubHooks struct {
	stubHooks
	speed       func(region, minute int) float64
	tariff      func(minute int) float64
	offDuty     func(taxi, minute int) bool
	consumption func(taxi int) float64
}

func (h extStubHooks) SpeedScale(r, m int) float64 {
	if h.speed == nil {
		return 1
	}
	return h.speed(r, m)
}

func (h extStubHooks) TariffScale(m int) float64 {
	if h.tariff == nil {
		return 1
	}
	return h.tariff(m)
}

func (h extStubHooks) OffDuty(taxi, m int) bool {
	return h.offDuty != nil && h.offDuty(taxi, m)
}

func (h extStubHooks) ConsumptionFactor(taxi int) float64 {
	if h.consumption == nil {
		return 1
	}
	return h.consumption(taxi)
}

var _ ExtendedHooks = extStubHooks{}

func extTestEnv(t *testing.T, seed int64) *Env {
	t.Helper()
	city, err := synth.Build(synth.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return New(city, DefaultOptions(1), seed)
}

// Installing extended hooks that answer only identities must not perturb
// the trajectory: the trace digest equals a plain unhooked run's digest.
func TestExtendedIdentityHooksAreTransparent(t *testing.T) {
	digest := func(h Hooks) string {
		e := extTestEnv(t, 31)
		var events []trace.Event
		e.SetRecorder(func(ev trace.Event) { events = append(events, ev) })
		if h != nil {
			e.SetHooks(h)
		}
		runStay(e)
		return trace.DigestEvents(events)
	}
	plain := digest(nil)
	if got := digest(extStubHooks{}); got != plain {
		t.Fatalf("identity extended hooks perturbed the run: %s vs %s", got, plain)
	}
}

// A citywide slowdown must reduce served trips: every approach and the
// displacement legs take longer, so fewer matches complete per slot.
func TestSpeedScaleSlowsService(t *testing.T) {
	run := func(h Hooks) *Results {
		e := extTestEnv(t, 33)
		if h != nil {
			e.SetHooks(h)
		}
		runStay(e)
		return e.Results()
	}
	clean := run(nil)
	slowed := run(extStubHooks{speed: func(r, m int) float64 { return 0.4 }})
	if slowed.ServedRequests >= clean.ServedRequests {
		t.Fatalf("60%% slowdown served %d >= clean %d", slowed.ServedRequests, clean.ServedRequests)
	}
}

// A tariff shift scales charging cost only: the same energy flows at the
// same minutes (identical charge events), but every session costs ×2.
func TestTariffScaleScalesCostOnly(t *testing.T) {
	run := func(h Hooks) *Results {
		e := extTestEnv(t, 35)
		if h != nil {
			e.SetHooks(h)
		}
		runStay(e)
		return e.Results()
	}
	clean := run(nil)
	shifted := run(extStubHooks{tariff: func(m int) float64 { return 2 }})
	if len(shifted.ChargeStats) != len(clean.ChargeStats) {
		t.Fatalf("tariff shift changed session count: %d vs %d", len(shifted.ChargeStats), len(clean.ChargeStats))
	}
	cost := func(r *Results) (kwh, cny float64) {
		for i := range r.Accounts {
			kwh += r.Accounts[i].EnergyKWh
			cny += r.Accounts[i].ChargeCostCNY
		}
		return
	}
	ck, cc := cost(clean)
	sk, sc := cost(shifted)
	if math.Abs(sk-ck) > 1e-9 {
		t.Fatalf("tariff shift changed energy: %.6f vs %.6f kWh", sk, ck)
	}
	if cc <= 0 || math.Abs(sc-2*cc) > 1e-6*cc {
		t.Fatalf("doubled tariff cost %.6f, want 2 × %.6f", sc, cc)
	}
}

// With the whole fleet off duty all day, no requests are ever matched —
// but forced charging still runs, so nobody strands either.
func TestOffDutyExcludesFromMatching(t *testing.T) {
	e := extTestEnv(t, 37)
	for i := range e.city.Fleet {
		e.city.Fleet[i].InitialSoC = 0.25
	}
	e.SetHooks(extStubHooks{offDuty: func(taxi, m int) bool { return true }})
	runStay(e)
	res := e.Results()
	if res.ServedRequests != 0 {
		t.Fatalf("off-duty fleet served %d requests", res.ServedRequests)
	}
	if res.UnservedRequests == 0 {
		t.Fatal("no demand expired — the world generated nothing")
	}
	for i := range res.Accounts {
		if res.Accounts[i].StrandedMin > 0 {
			t.Fatalf("taxi %d stranded %.0f min: forced charging must override off-duty", i, res.Accounts[i].StrandedMin)
		}
	}
}

// A cohort consumption factor is applied once at Reset (no compounding
// across resets) and only to the cohort.
func TestConsumptionFactorAppliedAtReset(t *testing.T) {
	e := extTestEnv(t, 39)
	base := make([]float64, len(e.city.Fleet))
	for i := range e.city.Fleet {
		base[i] = e.city.NewBattery(e.city.Fleet[i]).ConsumptionPerKm
	}
	e.SetHooks(extStubHooks{consumption: func(taxi int) float64 {
		if taxi%2 == 0 {
			return 1.25
		}
		return 1
	}})
	e.Reset(39)
	e.Reset(39) // second reset must not compound the factor
	for i := range e.taxis {
		want := base[i]
		if i%2 == 0 {
			want *= 1.25
		}
		if got := e.taxis[i].batt.ConsumptionPerKm; math.Abs(got-want) > 1e-12 {
			t.Fatalf("taxi %d consumption %.9f, want %.9f", i, got, want)
		}
	}
}

// Off-duty holds surface in telemetry, and the taxis resume serving after
// the window: a half-day shift change serves strictly fewer requests than
// a clean run but strictly more than zero.
func TestShiftChangeWindowIsScoped(t *testing.T) {
	run := func(h Hooks) *Results {
		e := extTestEnv(t, 41)
		if h != nil {
			e.SetHooks(h)
		}
		runStay(e)
		return e.Results()
	}
	clean := run(nil)
	half := run(extStubHooks{offDuty: func(taxi, m int) bool { return m < 720 }})
	if half.ServedRequests == 0 || half.ServedRequests >= clean.ServedRequests {
		t.Fatalf("half-day shift change served %d (clean %d); want strictly between",
			half.ServedRequests, clean.ServedRequests)
	}
}
