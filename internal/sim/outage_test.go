package sim

import (
	"testing"

	"repro/internal/synth"
)

func TestOutageDivertsArrivals(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.25 // everyone needs to charge soon
	}
	e := New(city, DefaultOptions(1), 21)

	// Close every station's "rank 0" role for the whole day by picking one
	// busy station: run once without outage to find the busiest.
	runStay(e)
	res := e.Results()
	counts := make(map[int]int)
	for _, ev := range res.ChargeStats {
		counts[ev.StationID]++
	}
	busiest, most := -1, 0
	for id, c := range counts {
		if c > most {
			busiest, most = id, c
		}
	}
	if busiest < 0 {
		t.Skip("no charging in baseline run")
	}

	// Re-run with that station closed all day.
	e.Reset(21)
	e.ScheduleOutage(Outage{Station: busiest, FromMin: 0, ToMin: 24 * 60})
	runStay(e)
	res2 := e.Results()
	for _, ev := range res2.ChargeStats {
		if ev.StationID == busiest && ev.PlugMin < 24*60 {
			// Plugging in requires arriving, and arrivals divert during the
			// outage — unless every alternative was also closed (not the
			// case here).
			t.Fatalf("charging event at closed station %d (plug %d)", busiest, ev.PlugMin)
		}
	}
	// The fleet must still have charged somewhere.
	if len(res2.ChargeStats) == 0 {
		t.Fatal("outage wiped out all charging")
	}
}

func TestOutageOnlyDuringWindow(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 22)
	e.ScheduleOutage(Outage{Station: 0, FromMin: 100, ToMin: 200})
	if e.stationClosed(0, 99) || e.stationClosed(0, 200) {
		t.Fatal("outage active outside its window")
	}
	if !e.stationClosed(0, 100) || !e.stationClosed(0, 199) {
		t.Fatal("outage inactive inside its window")
	}
	if e.stationClosed(1, 150) {
		t.Fatal("outage leaked to another station")
	}
}

func TestOutageResetCleared(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 23)
	e.ScheduleOutage(Outage{Station: 0, FromMin: 0, ToMin: 1440})
	e.Reset(23)
	if e.stationClosed(0, 100) {
		t.Fatal("Reset did not clear outages")
	}
}

func TestOutageUnknownStationPanics(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 24)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown station")
		}
	}()
	e.ScheduleOutage(Outage{Station: 999, FromMin: 0, ToMin: 10})
}
