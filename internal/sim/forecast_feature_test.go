package sim

import (
	"testing"

	"repro/internal/synth"
)

// forecastFeatureIndex is the offset of the own-region forecast feature.
const forecastFeatureIndex = featTime + featSelf + 1

func TestNoForecastFeatureZeroes(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(1)
	opts.NoForecastFeature = true
	e := New(city, opts, 50)
	for _, id := range e.VacantTaxis()[:5] {
		obs := e.Observe(id)
		if obs.Features[forecastFeatureIndex] != 0 {
			t.Fatalf("forecast feature = %v with ablation on", obs.Features[forecastFeatureIndex])
		}
	}
}

func TestLearnedForecastColdThenWarm(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.LearnedForecast = true
	e := New(city, opts, 51)

	// Cold: the predictor has seen nothing, so forecasts are the prior (0).
	id := e.VacantTaxis()[0]
	if got := e.Observe(id).Features[forecastFeatureIndex]; got != 0 {
		t.Fatalf("cold learned forecast = %v, want 0", got)
	}

	// After a day of observations the busiest regions must forecast > 0.
	for i := 0; i < 144 && !e.Done(); i++ {
		e.Step(nil)
	}
	var any bool
	for _, id := range e.VacantTaxis() {
		if e.Observe(id).Features[forecastFeatureIndex] > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("learned forecast stayed at zero after a day of demand")
	}
}

func TestLearnedForecastResetsWithEnv(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(52))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(1)
	opts.LearnedForecast = true
	e := New(city, opts, 52)
	for i := 0; i < 20; i++ {
		e.Step(nil)
	}
	e.Reset(52)
	id := e.VacantTaxis()[0]
	if got := e.Observe(id).Features[forecastFeatureIndex]; got != 0 {
		t.Fatalf("forecast survived Reset: %v", got)
	}
}

func TestOracleForecastPositiveInBusyRegions(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(53))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 53)
	var any bool
	for _, id := range e.VacantTaxis() {
		if e.Observe(id).Features[forecastFeatureIndex] > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("oracle forecast zero everywhere")
	}
}
