package sim

import "math"

// Observation is the per-agent state of Section III-C: a local view (time
// and location context) plus a global view (supply, charging availability,
// and forecast demand), compressed to the agent's neighborhood so the
// feature width stays fixed while the policy network is shared by all
// agents. Mask marks which of the NumActions discrete actions are valid.
type Observation struct {
	Features []float64
	Mask     [NumActions]bool
}

// Feature layout (see Observe). The width is fixed so one shared network
// serves every agent, per the paper's centralized design.
const (
	featTime      = 2                // sin/cos of day fraction
	featSelf      = 3                // SoC, PE gap to fleet mean, vacancy age
	featOwnRegion = 3                // supply, forecast, expected fare
	featNeighbors = 3 * MaxNeighbors // same triple per neighbor, zero-padded
	featStations  = 4 * KStations    // free points, queue, distance, price
	featGlobal    = 3                // fleet vacancy rate, queue rate, tariff band level

	// FeatureSize is the total observation width.
	FeatureSize = featTime + featSelf + featOwnRegion + featNeighbors + featStations + featGlobal
)

// Observe builds the observation for a vacant taxi. It is deterministic
// given the environment state.
//
// Features borrows a per-taxi buffer owned by the environment: it stays
// valid until the same taxi is observed again. Within one slot repeated
// observations rewrite identical bytes, so holding the slice across calls
// in the same slot is safe; callers keeping features across Step (replay
// buffers, demonstration logs) must copy them out.
func (e *Env) Observe(id int) Observation {
	t := &e.taxis[id]
	f := e.obsBufs[id][:0]
	now := e.nowMin
	dayFrac := float64(now%(24*60)) / (24 * 60)

	// Time.
	f = append(f, math.Sin(2*math.Pi*dayFrac), math.Cos(2*math.Pi*dayFrac))

	// Self.
	meanPE, _ := e.FleetPEStats()
	peGap := (e.PESoFar(id) - meanPE) / 50 // fairness signal
	vacancyAge := float64(now-t.vacantSinceMin) / 60
	f = append(f, t.batt.SoC, clampF(peGap, -2, 2), clampF(vacancyAge, 0, 4))

	// Own region triple.
	supply := e.regionSupply()
	f = e.appendRegionTriple(f, t.region, supply, now)

	// Neighbor triples, zero-padded to MaxNeighbors.
	nbs := e.city.Partition.Region(t.region).Neighbors
	for i := 0; i < MaxNeighbors; i++ {
		if i < len(nbs) {
			f = e.appendRegionTriple(f, nbs[i], supply, now)
		} else {
			f = append(f, 0, 0, 0)
		}
	}

	// Nearest stations.
	ns := e.nearStations[t.region]
	for k := 0; k < KStations; k++ {
		if k < len(ns) {
			st := e.stations[ns[k].Label]
			f = append(f,
				float64(st.Free())/20,
				float64(st.QueueLen())/10,
				ns[k].DistKm/10,
				e.city.Tariff.Rate(e.city.Tariff.BandAt(now))/2,
			)
		} else {
			f = append(f, 0, 0, 0, 0)
		}
	}

	// Global aggregates.
	vacant, queued := e.fleetAggregates()
	n := float64(len(e.taxis))
	band := float64(e.city.Tariff.BandAt(now)) / 2
	f = append(f, float64(vacant)/n, float64(queued)/n, band)

	if len(f) != FeatureSize {
		panic("sim: feature size mismatch")
	}

	// GPS dropout: while the taxi's region is in a dropout window its
	// features freeze at the last fresh observation — the policy decides on
	// stale state. The action mask stays current: it encodes physical
	// validity (battery, topology), not telemetry.
	if e.hooks != nil {
		if e.staleFeats == nil {
			e.staleFeats = make([][]float64, len(e.taxis))
		}
		if e.hooks.ObsStale(t.region, now) {
			e.tel.staleObs.Inc()
			if cached := e.staleFeats[id]; cached != nil {
				f = append(f[:0], cached...)
			}
		} else {
			e.staleFeats[id] = append(e.staleFeats[id][:0], f...)
		}
	}
	e.obsBufs[id] = f
	return Observation{Features: f, Mask: e.ValidMask(id)}
}

// fleetAggregates returns the fleet-wide vacant and charge-bound counts
// behind the global observation features, cached per slot (the fleet is
// static between Steps).
func (e *Env) fleetAggregates() (vacant, queued int) {
	if slot := e.Slot(); e.aggSlot == slot {
		return e.aggVacant, e.aggQueued
	}
	for i := range e.taxis {
		switch e.taxis[i].state {
		case Cruising:
			vacant++
		case Queued, ToStation:
			queued++
		}
	}
	e.aggSlot, e.aggVacant, e.aggQueued = e.Slot(), vacant, queued
	return vacant, queued
}

// appendRegionTriple appends the (supply, forecast, fare) features of a
// region to f. The forecast is the oracle expectation by default, the
// learned predictor under Options.LearnedForecast, or zero under the
// ablation.
func (e *Env) appendRegionTriple(f []float64, region int, supply []int, now int) []float64 {
	var forecast float64
	switch {
	case e.opts.NoForecastFeature:
		forecast = 0
	case e.predictor != nil:
		forecast = e.predictor.Predict(region, now/e.slotLen)
	default:
		forecast = e.city.Demand.ExpectedSlotDemand(region, now, e.slotLen)
	}
	fare := e.city.Demand.ExpectedFare(region, e.hourAt(now))
	return append(f,
		float64(supply[region])/10,
		forecast/10,
		fare/100,
	)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
