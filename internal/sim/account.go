package sim

import (
	"repro/internal/geo"
	"repro/internal/trace"
)

// TaxiAccount is the cumulative ledger of one taxi over a run. PE (Eq. 1-2)
// is computed from it.
type TaxiAccount struct {
	RevenueCNY    float64
	ChargeCostCNY float64
	CruiseMin     float64
	ServeMin      float64
	IdleMin       float64
	ChargeMin     float64
	Trips         int
	ChargeEvents  int
	DistanceKm    float64
	EnergyKWh     float64 // energy drawn from chargers
	// EnergyDeficitKWh is the energy the taxi "should" have consumed but
	// could not because the pack was empty. Zero in healthy runs; positive
	// values indicate the policy let batteries run dry.
	EnergyDeficitKWh float64
	StrandedMin      float64 // minutes spent moving on an empty battery
}

// OnDutyMin returns total on-duty minutes (Σ T_cycle components).
func (a TaxiAccount) OnDutyMin() float64 {
	return a.CruiseMin + a.ServeMin + a.IdleMin + a.ChargeMin
}

// ProfitCNY returns revenue minus charging cost.
func (a TaxiAccount) ProfitCNY() float64 { return a.RevenueCNY - a.ChargeCostCNY }

// ProfitEfficiency returns the paper's PE: profit per on-duty hour (Eq. 2).
// Zero on-duty time yields zero.
func (a TaxiAccount) ProfitEfficiency() float64 {
	d := a.OnDutyMin()
	if d <= 0 {
		return 0
	}
	return a.ProfitCNY() / (d / 60)
}

// TripStat records one served trip for figure generation and for the
// synthetic transaction dataset.
type TripStat struct {
	Taxi       int
	PickupMin  int
	CruiseMin  float64 // seeking time before this pickup
	FareCNY    float64
	DistanceKm float64
	DurMin     float64
	Region     int // pickup region
	DestRegion int
	Pickup     geo.Point
	Dropoff    geo.Point
	// FirstAfterCharge marks the first trip following a charging event; its
	// CruiseMin is the paper's t_cruise^(1) (Figs. 5-6).
	FirstAfterCharge bool
	// ChargedAtStation is the station of the preceding charge when
	// FirstAfterCharge, else -1.
	ChargedAtStation int
}

// Results is the full accounting of one simulation run.
type Results struct {
	SlotMinutes int
	Slots       int // number of slots simulated
	Accounts    []TaxiAccount
	TripStats   []TripStat
	ChargeStats []trace.ChargingEvent
	// UnservedRequests counts demand that expired unmatched.
	UnservedRequests int
	ServedRequests   int
	// ChargeStartsByHour histograms plug-in events per hour of day (Fig. 4).
	ChargeStartsByHour [24]int
	// RegionDemand/RegionServed count generated and served requests per
	// origin region — the inputs of the spatial-fairness metrics (demand-
	// service ratio, F_spatial). Indexed by region; nil on results predating
	// the spatial analytics.
	RegionDemand []int
	RegionServed []int
}

// PEs returns per-taxi profit efficiencies, skipping taxis that never went
// on duty.
func (r *Results) PEs() []float64 {
	out := make([]float64, 0, len(r.Accounts))
	for _, a := range r.Accounts {
		if a.OnDutyMin() > 0 {
			out = append(out, a.ProfitEfficiency())
		}
	}
	return out
}

// FleetProfit returns total fleet profit in CNY.
func (r *Results) FleetProfit() float64 {
	var sum float64
	for _, a := range r.Accounts {
		sum += a.ProfitCNY()
	}
	return sum
}

// CruiseTimes returns the per-trip cruise times in minutes (Fig. 10 data).
func (r *Results) CruiseTimes() []float64 {
	out := make([]float64, len(r.TripStats))
	for i, ts := range r.TripStats {
		out[i] = ts.CruiseMin
	}
	return out
}

// IdleTimes returns the per-charge idle times in minutes (Fig. 12 data).
func (r *Results) IdleTimes() []float64 {
	out := make([]float64, len(r.ChargeStats))
	for i, cs := range r.ChargeStats {
		out[i] = float64(cs.IdleMin())
	}
	return out
}

// ChargeTimes returns per-charge plugged durations in minutes (Fig. 3 data).
func (r *Results) ChargeTimes() []float64 {
	out := make([]float64, len(r.ChargeStats))
	for i, cs := range r.ChargeStats {
		out[i] = float64(cs.ChargeMin())
	}
	return out
}

// FirstCruiseTimes returns the post-charge first cruise times t_cruise^(1)
// in minutes (Fig. 5 data), and the station each followed (Fig. 6 data).
func (r *Results) FirstCruiseTimes() (mins []float64, stations []int) {
	for _, ts := range r.TripStats {
		if ts.FirstAfterCharge {
			mins = append(mins, ts.CruiseMin)
			stations = append(stations, ts.ChargedAtStation)
		}
	}
	return mins, stations
}
