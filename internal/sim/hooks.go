package sim

import "repro/internal/trace"

// Hooks is the environment's fault/perturbation interface. A scenario engine
// (internal/scenario) implements it to inject charging-station outages and
// capacity derating, demand surges and droughts, fare-price shocks, GPS
// dropout (stale observations), and battery-degradation cohorts — without
// the environment hard-coding any particular fault type.
//
// All methods must be pure functions of their arguments (and the scenario
// they were built from): the environment may call them any number of times
// per minute, from one goroutine per Env, and identical runs must see
// identical answers. Install with SetHooks before Reset; battery factors
// are applied when the fleet is (re)built.
type Hooks interface {
	// StationClosed reports whether the station rejects new arrivals at the
	// given absolute minute. Taxis already plugged in keep charging; queued
	// taxis are evicted and re-plan.
	StationClosed(station, minute int) bool
	// StationDerate returns how many of the station's charging points are
	// unavailable at the given minute (0 = full capacity). Values above the
	// inventory are clamped.
	StationDerate(station, minute int) int
	// DemandScale returns the demand-rate multiplier for a region over the
	// slot starting at the given minute: 1 = unperturbed, >1 surge, <1
	// drought, <=0 silence.
	DemandScale(region, minute int) float64
	// FareScale returns the fare multiplier applied to requests originating
	// in the region at the given minute (1 = unperturbed).
	FareScale(region, minute int) float64
	// ObsStale reports whether taxis in the region have dropped off GPS at
	// the given minute: their observations freeze at the last value seen
	// before the dropout window.
	ObsStale(region, minute int) bool
	// BatteryFactor returns the battery-capacity multiplier for a taxi
	// (1 = healthy; 0.8 models a degraded cohort). Applied at Reset.
	BatteryFactor(taxi int) float64
}

// ExtendedHooks is the optional second tier of the perturbation interface:
// weather slowdowns, time-of-use tariff shifts, shift-change waves, and
// mixed-consumption battery cohorts. A Hooks implementation that also
// satisfies ExtendedHooks is detected by type assertion in SetHooks;
// implementations of plain Hooks keep working unchanged, and every method
// here has an exact identity element (1, 1, false, 1) under which the
// environment's behavior — including its trace bytes — is untouched.
//
// The same purity contract as Hooks applies: every method must be a pure
// function of its arguments, because the sharded engine calls them from
// per-region kernels and byte-identical traces across shard counts depend
// on it.
type ExtendedHooks interface {
	Hooks
	// SpeedScale returns the travel-speed multiplier for a region at a
	// minute (1 = unperturbed; 0.7 models heavy rain). Applied to cruising,
	// pickup approach, and station approach legs alike.
	SpeedScale(region, minute int) float64
	// TariffScale returns the citywide multiplier on the charging price at
	// a minute (1 = unperturbed). It scales billing only: charging power
	// and the tariff-band observation feature are deliberately untouched,
	// so policies feel the shift through profit, not through features.
	TariffScale(minute int) float64
	// OffDuty reports whether a taxi is on a shift change at a minute:
	// excluded from matching and holding position instead of executing
	// displacement actions. Forced charging below the low-SoC floor still
	// applies, so a shift change never strands a taxi.
	OffDuty(taxi, minute int) bool
	// ConsumptionFactor returns the multiplier on a taxi's energy
	// consumption per km (1 = stock vehicle). Applied at Reset alongside
	// BatteryFactor.
	ConsumptionFactor(taxi int) float64
}

// SetHooks installs (or, with nil, removes) a perturbation engine. Call it
// before Reset: battery-degradation factors take effect when the fleet is
// rebuilt, and policy.Evaluate resets the environment before every run.
// Hooks persist across Reset so one engine conditions every episode.
func (e *Env) SetHooks(h Hooks) {
	e.hooks = h
	e.xh, _ = h.(ExtendedHooks)
	if e.nowMin == 0 {
		// Fresh environment: re-derive the fleet so battery cohorts apply
		// even if the caller steps without another Reset.
		e.applyBatteryFactors()
	}
}

// Hooks returns the installed perturbation engine, or nil.
func (e *Env) Hooks() Hooks { return e.hooks }

// applyBatteryFactors scales each taxi's pack by its cohort factor and,
// under ExtendedHooks, its consumption rate by the cohort's vehicle model.
func (e *Env) applyBatteryFactors() {
	if e.hooks == nil {
		return
	}
	for i := range e.taxis {
		b := e.city.NewBattery(e.city.Fleet[i])
		if f := e.hooks.BatteryFactor(i); f > 0 && f != 1 {
			b.CapacityKWh *= f
		}
		if e.xh != nil {
			if f := e.xh.ConsumptionFactor(i); f > 0 && f != 1 {
				b.ConsumptionPerKm *= f
			}
		}
		e.taxis[i].batt = b
	}
}

// speedScale returns the ExtendedHooks travel-speed multiplier for a
// region at a minute, or exactly 1 when no extended hooks are installed.
func (e *Env) speedScale(region, minute int) float64 {
	if e.xh == nil {
		return 1
	}
	if f := e.xh.SpeedScale(region, minute); f > 0 {
		return f
	}
	return 1
}

// tariffScale returns the ExtendedHooks charging-price multiplier at a
// minute, or exactly 1 when no extended hooks are installed.
func (e *Env) tariffScale(minute int) float64 {
	if e.xh == nil {
		return 1
	}
	if f := e.xh.TariffScale(minute); f > 0 {
		return f
	}
	return 1
}

// offDuty reports whether the taxi sits out this minute on a shift change.
func (e *Env) offDuty(taxi, minute int) bool {
	return e.xh != nil && e.xh.OffDuty(taxi, minute)
}

// Recorder receives the structured event log of a run: one call per
// behavioral event, in simulation order. Install with SetRecorder; the
// golden-trace harness digests the stream to pin behavior at byte
// granularity. A nil recorder (the default) costs nothing.
type Recorder func(trace.Event)

// SetRecorder installs (or, with nil, removes) the event recorder. It
// persists across Reset.
func (e *Env) SetRecorder(r Recorder) { e.rec = r }

// record emits an event to the recorder, if any.
func (e *Env) record(ev trace.Event) {
	if e.rec != nil {
		e.rec(ev)
	}
}

// applyStationPerturbations advances closure and derate state for every
// station to minute m, evicting queued taxis from closed stations and
// promoting queued taxis into capacity a lifted derate frees. It runs once
// per simulated minute, before taxi advancement, so arrivals in the same
// minute see the already-updated state.
func (e *Env) applyStationPerturbations(m int) {
	if e.hooks == nil {
		return
	}
	for sid, st := range e.stations {
		closed := e.hooks.StationClosed(sid, m)
		if closed != e.closedNow[sid] {
			e.closedNow[sid] = closed
			e.tel.outageEdges.Inc()
			flag := 0
			if closed {
				flag = 1
			}
			e.record(trace.Event{
				TimeMin: m, Taxi: -1, Region: st.Station().Region,
				Kind: trace.EvOutage, A: sid, B: flag,
			})
		}
		if d := clampInt(e.hooks.StationDerate(sid, m), 0, st.Station().Points); d != st.Derate() {
			e.tel.derateChanges.Inc()
			promoted := st.SetDerate(d)
			e.record(trace.Event{
				TimeMin: m, Taxi: -1, Region: st.Station().Region,
				Kind: trace.EvDerate, A: sid, B: d,
			})
			for _, id := range promoted {
				e.beginCharge(&e.taxis[id], m)
			}
		}
		if closed {
			// Waiting taxis re-plan rather than queue at a dead station.
			for _, id := range st.DrainQueue() {
				e.tel.queueEvictions.Inc()
				t := &e.taxis[id]
				t.state = ToStation
				t.arriveMin = m
				e.replanCharge(t, m, trace.EvReplan)
			}
		}
	}
}

// replanCharge redirects taxi t — which still needs to charge but whose
// target station is closed or hopeless — to the least-loaded open nearby
// station. When every nearby station is closed it waits in place and retries
// a minute later rather than queueing at a dead station (the strand bug the
// hook refactor fixed: the old fallback plugged taxis into closed stations).
// kind selects the recorded event (EvBalk for queue balking, EvReplan for
// closure eviction).
func (e *Env) replanCharge(t *taxi, m int, kind trace.EventKind) {
	cur := e.city.Stations.Station(t.stationID)
	ns := e.nearStations[cur.Region]
	best, bestLoad := -1, 0.0
	for _, nb := range ns {
		if nb.Label == t.stationID || e.stationClosed(nb.Label, m) {
			continue
		}
		st := e.stations[nb.Label]
		load := float64(st.QueueLen()-st.Free()) + nb.DistKm*0.1
		if best < 0 || load < bestLoad {
			best, bestLoad = nb.Label, load
		}
	}
	e.record(trace.Event{
		TimeMin: m, Taxi: t.id, Region: t.region, Kind: kind,
		A: t.stationID, B: best,
	})
	if best < 0 {
		if !e.stationClosed(t.stationID, m) {
			// Nowhere better and the current station is open: join its queue.
			t.balkCount = maxBalks
			if e.stations[t.stationID].Arrive(t.id) {
				e.beginCharge(t, m)
			} else {
				t.state = Queued
				e.tel.queueJoins.Inc()
				e.record(trace.Event{TimeMin: m, Taxi: t.id, Region: t.region, Kind: trace.EvQueue, A: t.stationID, B: -1})
			}
			return
		}
		// Everything nearby is closed: wait parked and retry next minute.
		t.arriveMin = m + 1
		return
	}
	distKm := geoDistKm(cur.Loc, e.city.Stations.Station(best).Loc)
	travelMin := e.travelMinutes(distKm, cur.Region, m)
	e.driveTracked(t, distKm)
	t.stationID = best
	t.arriveMin = m + travelMin
	t.region = e.city.Stations.Station(best).Region
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
