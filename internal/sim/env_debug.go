package sim

// Verification surface of the sequential engine, mirroring kernel_debug.go
// so the invariant battery can check both engines through one interface.
// None of this is on the hot path.

// CheckInvariants verifies every station's occupancy state. The sequential
// engine has no ownership partition, so station consistency is the whole
// structural check.
func (e *Env) CheckInvariants() error {
	for _, st := range e.stations {
		if err := st.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// TaxiEnergyLedger returns the energy ledger of a taxi (see the Core
// method of the same name: the semantics, including the in-progress
// charging session, are identical). The account fields reset at the warmup
// boundary, so conservation holds exactly only when Options.WarmupDays is
// zero.
func (e *Env) TaxiEnergyLedger(id int) EnergyLedger {
	t := &e.taxis[id]
	charged := t.acct.EnergyKWh
	if t.state == ChargingState {
		charged += t.chargeEnergy
	}
	return EnergyLedger{
		SoCKWh:           t.batt.SoC * t.batt.CapacityKWh,
		CapacityKWh:      t.batt.CapacityKWh,
		ConsumptionPerKm: t.batt.ConsumptionPerKm,
		ChargedKWh:       charged,
		DrivenKm:         t.acct.DistanceKm,
		DeficitKWh:       t.acct.EnergyDeficitKWh,
	}
}

// GeneratedRequests returns how many requests have been sampled since
// Reset. With WarmupDays zero it satisfies generated == served + unserved +
// pending at every slot boundary.
func (e *Env) GeneratedRequests() int { return e.generated }

// PendingRequests returns how many sampled requests are still waiting.
func (e *Env) PendingRequests() int { return len(e.pending) }
