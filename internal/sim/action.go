// Package sim implements the fleet environment of Section III: a
// slot-stepped simulator of a large electric taxi fleet with passenger
// matching, multi-slot trips, battery depletion, station queueing, and
// TOU-priced charging. Displacement policies interact with it through the
// (VacantTaxis, Observe, Step) cycle; the accounting it produces feeds every
// metric and figure in the evaluation.
package sim

import "fmt"

// ActionKind is the paper's three displacement action types.
type ActionKind int

// Action kinds (Section III-C, Action space).
const (
	// Stay keeps the taxi cruising in its current region.
	Stay ActionKind = iota
	// Move displaces the taxi to the Arg-th adjacent region.
	Move
	// Charge sends the taxi to its Arg-th nearest charging station.
	Charge
)

// Action is one displacement decision for one vacant taxi.
type Action struct {
	Kind ActionKind
	Arg  int // neighbor index for Move, station rank (0-based) for Charge
}

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.Kind {
	case Stay:
		return "stay"
	case Move:
		return fmt.Sprintf("move(%d)", a.Arg)
	case Charge:
		return fmt.Sprintf("charge(%d)", a.Arg)
	default:
		return fmt.Sprintf("Action(%d,%d)", int(a.Kind), a.Arg)
	}
}

// Fixed action-space geometry. Every region has at most MaxNeighbors
// adjacent regions (the jittered-lattice partition guarantees ≤ 8 and the
// paper's census partition is similar); each taxi considers its KStations
// nearest charging stations.
const (
	MaxNeighbors = 8
	KStations    = 5
)

// NumActions is the fixed width of the discrete action space: stay, up to
// MaxNeighbors moves, and KStations charge targets.
const NumActions = 1 + MaxNeighbors + KStations

// ActionIndex flattens an Action into [0, NumActions).
func ActionIndex(a Action) int {
	switch a.Kind {
	case Stay:
		return 0
	case Move:
		return 1 + a.Arg
	case Charge:
		return 1 + MaxNeighbors + a.Arg
	default:
		panic(fmt.Sprintf("sim: invalid action %v", a))
	}
}

// ActionFromIndex inverts ActionIndex.
func ActionFromIndex(idx int) Action {
	switch {
	case idx == 0:
		return Action{Kind: Stay}
	case idx >= 1 && idx < 1+MaxNeighbors:
		return Action{Kind: Move, Arg: idx - 1}
	case idx >= 1+MaxNeighbors && idx < NumActions:
		return Action{Kind: Charge, Arg: idx - 1 - MaxNeighbors}
	default:
		panic(fmt.Sprintf("sim: action index %d out of range", idx))
	}
}
