package sim

import (
	"math"
	"testing"

	"repro/internal/synth"
)

func testEnv(t *testing.T, days int) *Env {
	t.Helper()
	city, err := synth.Build(synth.TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return New(city, DefaultOptions(days), 1)
}

// runStay advances the whole horizon with everyone staying put (charging is
// coerced automatically when forced).
func runStay(e *Env) {
	for !e.Done() {
		e.Step(nil)
	}
}

func TestActionIndexRoundTrip(t *testing.T) {
	for idx := 0; idx < NumActions; idx++ {
		a := ActionFromIndex(idx)
		if got := ActionIndex(a); got != idx {
			t.Fatalf("round trip %d -> %v -> %d", idx, a, got)
		}
	}
	if NumActions != 14 {
		t.Fatalf("NumActions = %d, want 14 (1 stay + 8 moves + 5 stations)", NumActions)
	}
}

func TestActionFromIndexPanics(t *testing.T) {
	for _, idx := range []int{-1, NumActions} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %d did not panic", idx)
				}
			}()
			ActionFromIndex(idx)
		}()
	}
}

func TestStepAdvancesClock(t *testing.T) {
	e := testEnv(t, 1)
	if e.Now() != 0 || e.Done() {
		t.Fatal("fresh env state wrong")
	}
	e.Step(nil)
	if e.Now() != e.SlotLen() {
		t.Fatalf("Now = %d after one step, want %d", e.Now(), e.SlotLen())
	}
	if e.Slot() != 1 {
		t.Fatalf("Slot = %d, want 1", e.Slot())
	}
}

func TestFullDayRunProducesActivity(t *testing.T) {
	e := testEnv(t, 1)
	runStay(e)
	if !e.Done() {
		t.Fatal("not done after full horizon")
	}
	res := e.Results()
	if res.Slots != 144 {
		t.Fatalf("slots = %d, want 144", res.Slots)
	}
	if res.ServedRequests == 0 {
		t.Fatal("no requests served in a whole day")
	}
	if len(res.TripStats) != res.ServedRequests {
		t.Fatalf("trip stats %d != served %d", len(res.TripStats), res.ServedRequests)
	}
	var revenue float64
	for _, a := range res.Accounts {
		revenue += a.RevenueCNY
	}
	if revenue <= 0 {
		t.Fatal("no revenue earned")
	}
}

func TestTimeAccountingConsistent(t *testing.T) {
	e := testEnv(t, 2)
	runStay(e)
	res := e.Results()
	horizon := float64(2 * 24 * 60)
	for i, a := range res.Accounts {
		if a.OnDutyMin() > horizon+1 {
			t.Fatalf("taxi %d on-duty %v min exceeds horizon %v", i, a.OnDutyMin(), horizon)
		}
		if a.CruiseMin < 0 || a.ServeMin < 0 || a.IdleMin < 0 || a.ChargeMin < 0 {
			t.Fatalf("taxi %d negative time component: %+v", i, a)
		}
	}
}

func TestChargingHappensAndIsAccounted(t *testing.T) {
	// Give every taxi a low battery so charging is forced quickly.
	city, err := synth.Build(synth.TestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.25
	}
	e := New(city, DefaultOptions(1), 2)
	runStay(e)
	res := e.Results()
	if len(res.ChargeStats) == 0 {
		t.Fatal("no charging events with a quarter-full fleet")
	}
	for _, ev := range res.ChargeStats {
		if ev.PlugMin < ev.ArriveMin {
			t.Fatalf("plug before departure: %+v", ev)
		}
		if ev.FinishMin <= ev.PlugMin {
			t.Fatalf("zero-length charge: %+v", ev)
		}
		if ev.EnergyKWh <= 0 || ev.CostCNY <= 0 {
			t.Fatalf("charge without energy/cost: %+v", ev)
		}
		if ev.EndSoC < ev.StartSoC {
			t.Fatalf("charge decreased SoC: %+v", ev)
		}
		if ev.StationID < 0 || ev.StationID >= city.Stations.Len() {
			t.Fatalf("invalid station: %+v", ev)
		}
	}
	// Charge costs must equal the sum over events per taxi.
	perTaxi := make([]float64, len(city.Fleet))
	for _, ev := range res.ChargeStats {
		perTaxi[ev.VehicleID] += ev.CostCNY
	}
	for i, a := range res.Accounts {
		if math.Abs(a.ChargeCostCNY-perTaxi[i]) > 1e-6 {
			t.Fatalf("taxi %d charge cost %v != events sum %v", i, a.ChargeCostCNY, perTaxi[i])
		}
	}
}

func TestChargeDurationInPaperBand(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.22
	}
	e := New(city, DefaultOptions(1), 3)
	runStay(e)
	res := e.Results()
	if len(res.ChargeStats) == 0 {
		t.Fatal("no charging events")
	}
	// Most sessions should fall in the paper's 45-120 min band (Fig. 3).
	inBand := 0
	for _, ev := range res.ChargeStats {
		d := ev.ChargeMin()
		if d >= 45 && d <= 120 {
			inBand++
		}
	}
	frac := float64(inBand) / float64(len(res.ChargeStats))
	if frac < 0.5 {
		t.Fatalf("only %.0f%% of charges in 45-120 min band", frac*100)
	}
}

func TestValidMaskSemantics(t *testing.T) {
	e := testEnv(t, 1)
	id := e.VacantTaxis()[0]

	// Healthy battery: stay + moves valid, charge masked iff SoC high.
	e.taxis[id].batt.SoC = 0.9
	mask := e.ValidMask(id)
	if !mask[0] {
		t.Fatal("stay masked for healthy taxi")
	}
	for k := 0; k < KStations; k++ {
		if mask[1+MaxNeighbors+k] {
			t.Fatal("charge offered above AllowChargeSoC")
		}
	}

	// Mid battery: charging offered alongside stay.
	e.taxis[id].batt.SoC = 0.25
	mask = e.ValidMask(id)
	if !mask[0] || !mask[1+MaxNeighbors] {
		t.Fatal("mid battery should offer stay and charge")
	}

	// Low battery: only charging.
	e.taxis[id].batt.SoC = 0.1
	mask = e.ValidMask(id)
	if mask[0] {
		t.Fatal("stay offered below LowSoC")
	}
	if !mask[1+MaxNeighbors] {
		t.Fatal("charge not offered below LowSoC")
	}

	// Move entries only for real neighbors.
	e.taxis[id].batt.SoC = 0.9
	mask = e.ValidMask(id)
	nbs := e.city.Partition.Region(e.taxis[id].region).Neighbors
	for i := 0; i < MaxNeighbors; i++ {
		want := i < len(nbs)
		if mask[1+i] != want {
			t.Fatalf("move mask[%d] = %v, want %v (%d neighbors)", i, mask[1+i], want, len(nbs))
		}
	}
}

func TestMoveActionChangesRegion(t *testing.T) {
	e := testEnv(t, 1)
	id := e.VacantTaxis()[0]
	from := e.TaxiRegion(id)
	nbs := e.city.Partition.Region(from).Neighbors
	socBefore := e.TaxiSoC(id)
	e.Step(map[int]Action{id: {Kind: Move, Arg: 0}})
	// Taxi may have been matched and be serving toward another region, but
	// its region must be the move destination or the trip destination.
	if e.TaxiState(id) == Cruising && e.TaxiRegion(id) != nbs[0] {
		t.Fatalf("region after move = %d, want %d", e.TaxiRegion(id), nbs[0])
	}
	if e.TaxiSoC(id) >= socBefore {
		t.Fatal("move consumed no energy")
	}
}

func TestChargeActionLeadsToCharging(t *testing.T) {
	e := testEnv(t, 1)
	id := e.VacantTaxis()[0]
	e.taxis[id].batt.SoC = 0.28
	e.Step(map[int]Action{id: {Kind: Charge, Arg: 0}})
	st := e.TaxiState(id)
	if st != ToStation && st != Queued && st != ChargingState {
		t.Fatalf("state after charge action = %v", st)
	}
	// Run to completion of the charge.
	for i := 0; i < 30 && !e.Done(); i++ {
		e.Step(nil)
		if e.TaxiState(id) == Cruising && e.taxis[id].batt.SoC > 0.9 {
			break
		}
	}
	if e.taxis[id].acct.ChargeEvents == 0 && e.TaxiState(id) != ChargingState && e.TaxiState(id) != Queued {
		t.Fatalf("charge never started/completed; state=%v soc=%v", e.TaxiState(id), e.taxis[id].batt.SoC)
	}
}

func TestInvalidActionCoerced(t *testing.T) {
	e := testEnv(t, 1)
	id := e.VacantTaxis()[0]
	e.taxis[id].batt.SoC = 0.9 // charge invalid
	e.Step(map[int]Action{id: {Kind: Charge, Arg: 0}})
	if e.InvalidActions() != 1 {
		t.Fatalf("invalid actions = %d, want 1", e.InvalidActions())
	}
	// Forced-charge coercion: low battery with a stay submission.
	id2 := e.VacantTaxis()[0]
	e.taxis[id2].batt.SoC = 0.1
	e.Step(map[int]Action{id2: {Kind: Stay}})
	st := e.TaxiState(id2)
	if st != ToStation && st != Queued && st != ChargingState {
		t.Fatalf("low-SoC stay not coerced to charge; state=%v", st)
	}
}

func TestObserveShapeAndMask(t *testing.T) {
	e := testEnv(t, 1)
	for _, id := range e.VacantTaxis() {
		obs := e.Observe(id)
		if len(obs.Features) != FeatureSize {
			t.Fatalf("feature width %d, want %d", len(obs.Features), FeatureSize)
		}
		for i, v := range obs.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d is %v", i, v)
			}
		}
		any := false
		for _, m := range obs.Mask {
			if m {
				any = true
			}
		}
		if !any {
			t.Fatal("observation with fully invalid mask")
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Results {
		e := New(city, DefaultOptions(1), 7)
		runStay(e)
		return e.Results()
	}
	a, b := run(), run()
	if a.ServedRequests != b.ServedRequests || a.UnservedRequests != b.UnservedRequests {
		t.Fatalf("same seed different matching: %d/%d vs %d/%d",
			a.ServedRequests, a.UnservedRequests, b.ServedRequests, b.UnservedRequests)
	}
	for i := range a.Accounts {
		if a.Accounts[i] != b.Accounts[i] {
			t.Fatalf("taxi %d accounts differ between identical runs", i)
		}
	}
}

func TestResetRestoresCleanState(t *testing.T) {
	e := testEnv(t, 1)
	runStay(e)
	e.Reset(1)
	if e.Now() != 0 || e.Done() {
		t.Fatal("Reset did not restore clock")
	}
	res := e.Results()
	if res.ServedRequests != 0 || len(res.ChargeStats) != 0 {
		t.Fatal("Reset did not clear accounting")
	}
	if len(e.VacantTaxis()) != len(e.city.Fleet) {
		t.Fatal("Reset did not restore fleet")
	}
}

func TestStepAfterDonePanics(t *testing.T) {
	e := testEnv(t, 1)
	runStay(e)
	defer func() {
		if recover() == nil {
			t.Fatal("Step after Done did not panic")
		}
	}()
	e.Step(nil)
}

func TestPEsAndProfit(t *testing.T) {
	e := testEnv(t, 1)
	runStay(e)
	res := e.Results()
	pes := res.PEs()
	if len(pes) == 0 {
		t.Fatal("no PEs")
	}
	for _, pe := range pes {
		if math.IsNaN(pe) || math.IsInf(pe, 0) {
			t.Fatalf("invalid PE %v", pe)
		}
	}
	// Fleet profit must equal sum over taxis.
	var want float64
	for _, a := range res.Accounts {
		want += a.ProfitCNY()
	}
	if math.Abs(res.FleetProfit()-want) > 1e-9 {
		t.Fatal("FleetProfit mismatch")
	}
}

func TestFirstCruiseTracking(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.22
	}
	e := New(city, DefaultOptions(2), 4)
	runStay(e)
	res := e.Results()
	mins, stations := res.FirstCruiseTimes()
	if len(mins) == 0 {
		t.Fatal("no first-cruise samples after forced charging")
	}
	for i := range mins {
		if mins[i] < 0 {
			t.Fatalf("negative first cruise %v", mins[i])
		}
		if stations[i] < 0 || stations[i] >= city.Stations.Len() {
			t.Fatalf("invalid station %d in first-cruise record", stations[i])
		}
	}
}

func TestSlotProfitMatchesFares(t *testing.T) {
	e := testEnv(t, 1)
	for i := 0; i < 6 && !e.Done(); i++ {
		before := e.Results().ServedRequests
		e.Step(nil)
		after := e.Results()
		// Sum of positive slot profits must equal fares of trips matched
		// this slot (charging costs are negative contributions).
		var fares float64
		for _, ts := range after.TripStats[before:] {
			fares += ts.FareCNY
		}
		var pos float64
		for id := range e.taxis {
			if p := e.SlotProfit(id); p > 0 {
				pos += p
			}
		}
		if math.Abs(pos-fares) > fares*0.01+1e-6 {
			t.Fatalf("slot %d: positive slot profit %v != new fares %v", i, pos, fares)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 5)
	initial := make([]float64, len(city.Fleet))
	for i := range e.taxis {
		initial[i] = e.taxis[i].batt.EnergyKWh()
	}
	runStay(e)
	res := e.Results()
	var totalDeficit float64
	for i := range e.taxis {
		final := e.taxis[i].batt.EnergyKWh()
		drawn := res.Accounts[i].EnergyKWh
		if e.taxis[i].state == ChargingState {
			// A session still open at the horizon is not yet in the account.
			drawn += e.taxis[i].chargeEnergy
		}
		driven := res.Accounts[i].DistanceKm * e.taxis[i].batt.ConsumptionPerKm
		deficit := res.Accounts[i].EnergyDeficitKWh
		// Exact ledger: initial + charged − (distance·rate − deficit) = final.
		diff := initial[i] + drawn - (driven - deficit) - final
		if math.Abs(diff) > 1e-6 {
			t.Fatalf("taxi %d: energy ledger off by %v kWh", i, diff)
		}
		totalDeficit += deficit
	}
	// With the per-slot crawl drain and the forced-charge mask, batteries
	// should essentially never run dry.
	if totalDeficit > 1 {
		t.Fatalf("fleet energy deficit %v kWh; low-SoC trigger not working", totalDeficit)
	}
}

func TestFleetPEStats(t *testing.T) {
	e := testEnv(t, 1)
	for i := 0; i < 30 && !e.Done(); i++ {
		e.Step(nil)
	}
	mean, variance := e.FleetPEStats()
	if variance < 0 {
		t.Fatalf("negative variance %v", variance)
	}
	if math.IsNaN(mean) || math.IsNaN(variance) {
		t.Fatal("NaN PE stats")
	}
}
