package sim

import (
	"repro/internal/geo"
	"repro/internal/station"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Environment is the simulation surface policies and harnesses run against.
// Two engines implement it: the original sequential *Env (the byte-compat
// reference whose behavior the golden traces pin) and the region-sharded
// shard.Engine (kernel.go provides its pure state-transition core). Every
// method is single-goroutine: callers interleave reads and Step from one
// goroutine, exactly as with *Env.
type Environment interface {
	// City returns the underlying synthetic city.
	City() *synth.City
	// Now returns the current absolute simulation minute.
	Now() int
	// Slot returns the current absolute slot index.
	Slot() int
	// SlotLen returns the slot length in minutes.
	SlotLen() int
	// HorizonMin returns the simulation horizon in absolute minutes: Done
	// becomes true once Now reaches it. External drivers (the online dispatch
	// service) use it to know when a feed has covered the whole run.
	HorizonMin() int
	// Done reports whether the horizon has been reached.
	Done() bool
	// Reset restores the initial fleet and clears all accounting.
	Reset(seed int64)
	// Step applies one displacement action per vacant taxi (missing entries
	// default to Stay) and advances the world by one time slot.
	Step(actions map[int]Action)

	// VacantTaxis returns the IDs of taxis awaiting a displacement decision
	// this slot, ascending.
	VacantTaxis() []int
	// Observe builds the observation for a vacant taxi.
	Observe(id int) Observation
	// ValidMask returns the action-validity mask for a taxi.
	ValidMask(id int) [NumActions]bool
	// TaxiRegion returns the current region of a taxi.
	TaxiRegion(id int) int
	// TaxiSoC returns the current state of charge of a taxi.
	TaxiSoC(id int) float64
	// TaxiState returns the state of a taxi.
	TaxiState(id int) TaxiState
	// NearStations returns the cached KStations nearest stations for a region.
	NearStations(region int) []geo.Neighbor
	// StationState returns the runtime state of a station (read-only use).
	StationState(id int) *station.State
	// SlotProfit returns the net CNY earned by taxi id during the last Step.
	SlotProfit(id int) float64
	// PESoFar returns taxi id's cumulative profit efficiency (CNY/h).
	PESoFar(id int) float64
	// FleetPEStats returns the mean and variance of the cumulative PE across
	// on-duty taxis.
	FleetPEStats() (mean, variance float64)
	// Results returns the accounting of the run.
	Results() *Results
	// InvalidActions returns how many submitted actions were mask-coerced.
	InvalidActions() int

	// SetHooks installs (or, with nil, removes) a perturbation engine.
	SetHooks(h Hooks)
	// Hooks returns the installed perturbation engine, or nil.
	Hooks() Hooks
	// SetRecorder installs (or, with nil, removes) the event recorder.
	SetRecorder(r Recorder)
	// SetTelemetry installs (or, with nil, removes) a metrics registry.
	SetTelemetry(r *telemetry.Registry)
}

// Both engines must satisfy the full surface.
var _ Environment = (*Env)(nil)

// EnvBuilder constructs a fresh Environment over a city — the seam through
// which trainers and the system facade choose an engine (sequential vs
// sharded) without the call sites caring. NewEnvBuilder is the default.
type EnvBuilder func(city *synth.City, opts Options, seed int64) Environment

// NewEnvBuilder is the EnvBuilder for the original sequential engine.
func NewEnvBuilder(city *synth.City, opts Options, seed int64) Environment {
	return New(city, opts, seed)
}

// BuildEnv invokes b, defaulting a nil builder to the sequential engine —
// the resolution rule every trainer applies to its optional Env field.
func BuildEnv(b EnvBuilder, city *synth.City, opts Options, seed int64) Environment {
	if b == nil {
		return New(city, opts, seed)
	}
	return b(city, opts, seed)
}
