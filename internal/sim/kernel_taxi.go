package sim

// Per-taxi transition rules of the sharded kernel. Each method mirrors the
// sequential engine's semantics (env.go / hooks.go) except where the header
// comment in kernel.go documents a deliberate divergence; any drift beyond
// those is a bug the shard-invariance battery should catch.

import (
	"math"
	"slices"

	"repro/internal/demand"
	"repro/internal/trace"
)

// record buffers an event for the slot's canonical merge. Buffering is
// skipped entirely when no recorder is installed so benchmarks pay nothing.
func (kn *kernel) record(ev trace.Event) {
	if kn.c.rec != nil {
		kn.events = append(kn.events, ev)
	}
}

// wakeOrEmigrate schedules t's next arrival locally, or hands the taxi to
// the barrier router when its new region belongs to another kernel (the
// adopting kernel schedules the wake-up instead).
func (kn *kernel) wakeOrEmigrate(t *taxi) {
	if kn.c.regionOwner[t.region] == kn.idx {
		kn.cal.push(t.arriveMin, t.id)
	} else {
		kn.outbox = append(kn.outbox, t.id)
	}
}

// removeOwned deletes id from the kernel's ownership set.
func (kn *kernel) removeOwned(id int) {
	kn.owned.remove(id)
}

// adopt inserts id into the kernel's ownership set and schedules the
// wake-up its state requires.
func (kn *kernel) adopt(id int) {
	kn.owned.add(id)
	t := &kn.c.taxis[id]
	switch t.state {
	case ToStation, Relocating:
		kn.cal.push(t.arriveMin, id)
	case Serving:
		// Serving taxis migrate only at dropoff (as Cruising); keep a
		// defensive wake-up in case that invariant ever breaks.
		kn.cal.push(t.tripEndMin, id)
	}
}

// applyAction executes a displacement decision for owned taxi id, coercing
// mask-invalid submissions exactly as the sequential engine does. The
// validity test is ValidMask's rule evaluated directly for the submitted
// action, skipping construction of the full mask on this per-taxi hot path.
func (kn *kernel) applyAction(id int, a Action) {
	c := kn.c
	t := &c.taxis[id]
	mustCharge := t.batt.SoC < c.opts.LowSoC

	valid := false
	switch a.Kind {
	case Stay:
		valid = !mustCharge
	case Move:
		if !mustCharge && a.Arg >= 0 && a.Arg < MaxNeighbors {
			valid = a.Arg < len(c.city.Partition.Region(t.region).Neighbors)
		}
	case Charge:
		if (mustCharge || t.batt.SoC < c.opts.AllowChargeSoC) && a.Arg >= 0 && a.Arg < KStations {
			valid = a.Arg < len(c.nearStations[t.region])
		}
	}
	if !valid {
		kn.invalid++
		if mustCharge {
			a = Action{Kind: Charge, Arg: 0}
		} else {
			a = Action{Kind: Stay}
		}
	}

	switch a.Kind {
	case Stay:
		// Nothing: the taxi keeps cruising in place.
	case Move:
		nbs := c.city.Partition.Region(t.region).Neighbors
		dest := nbs[a.Arg]
		distKm := c.city.Partition.Distance(t.region, dest) * demand.RoadFactor
		travelMin := c.travelMinutes(distKm, t.region, c.nowMin)
		accrueCrawl(t, c.nowMin, c.opts.CruiseSpeedKmh)
		driveTracked(t, distKm)
		kn.record(trace.Event{TimeMin: c.nowMin, Taxi: t.id, Region: t.region, Kind: trace.EvMove, A: dest, B: -1})
		c.tel.relocations.Inc()
		t.state = Relocating
		t.arriveMin = c.nowMin + travelMin
		t.crawlFromMin = t.arriveMin
		t.region = dest
		kn.wakeOrEmigrate(t)
	case Charge:
		ns := c.nearStations[t.region]
		st := ns[a.Arg]
		distKm := st.DistKm * demand.RoadFactor
		travelMin := c.travelMinutes(distKm, t.region, c.nowMin)
		flushCruise(t, c.nowMin)
		accrueCrawl(t, c.nowMin, c.opts.CruiseSpeedKmh)
		driveTracked(t, distKm)
		kn.record(trace.Event{TimeMin: c.nowMin, Taxi: t.id, Region: t.region, Kind: trace.EvChargeSeek, A: st.Label, B: -1})
		t.state = ToStation
		t.stationID = st.Label
		t.departMin = c.nowMin
		t.arriveMin = c.nowMin + travelMin
		t.balkCount = 0
		t.region = c.stationInfo[st.Label].Region
		kn.wakeOrEmigrate(t)
	}
}

// matchRegion assigns region r's waiting requests to its owned candidates,
// longest-waiting taxi first (ties to the lowest taxi ID), appending the
// requests left over to unmatched and returning it; the caller passes the
// pending buffer's emptied storage so no alias to reqs is created.
// Serving a request mutates only the served taxi,
// so every other candidate's state and vacancy age are frozen for the whole
// call — one packed sort up front replaces the sequential engine's
// O(reqs×cands) rescan, and each match pops the front of the sorted pool.
// The lowest-ID tie-break is a pure function of region state (identical at
// every shard count) but is one of the kernel's documented departures from
// the sequential engine, whose tie falls to scan order under swap-removal.
func (kn *kernel) matchRegion(r int, reqs, unmatched []demand.Request) []demand.Request {
	c := kn.c
	kn.keyBuf = kn.keyBuf[:0]
	for _, id := range kn.cands[r] {
		t := &c.taxis[id]
		if t.state != Cruising && t.state != Relocating {
			continue
		}
		kn.keyBuf = append(kn.keyBuf, uint64(t.vacantSinceMin)<<24|uint64(id))
	}
	slices.Sort(kn.keyBuf)
	pool := kn.keyBuf
	for i := range reqs {
		if len(pool) == 0 {
			unmatched = append(unmatched, reqs[i])
			continue
		}
		id := int(pool[0] & (1<<24 - 1))
		pool = pool[1:]
		kn.serve(id, &reqs[i])
	}
	return unmatched
}

// serve puts owned taxi id on the trip described by req, drawing the
// approach distance from the request's region stream.
func (kn *kernel) serve(id int, req *demand.Request) {
	c := kn.c
	t := &c.taxis[id]
	approachKm := c.matchSrc[req.OriginRegion].Uniform(0.3, 1.5)
	speed := demand.SpeedKmh(hourAt(req.TimeMin))
	if s := c.speedScale(req.OriginRegion, req.TimeMin); s != 1 {
		speed *= s
	}
	approachMin := int(math.Ceil(approachKm / speed * 60))
	start := req.TimeMin
	if c.nowMin > start {
		start = c.nowMin
	}
	if t.state == Relocating && t.arriveMin > start {
		start = t.arriveMin
	}
	pickup := start + approachMin
	if pickup <= t.vacantSinceMin {
		pickup = t.vacantSinceMin + 1
	}
	cruiseMin := float64(pickup - t.vacantSinceMin)
	flushCruise(t, pickup)
	accrueCrawl(t, pickup, c.opts.CruiseSpeedKmh)
	driveTracked(t, approachKm+req.DistanceKm)

	durMin := int(math.Ceil(req.DurationMin))
	if durMin < 1 {
		durMin = 1
	}
	t.state = Serving
	t.pickupMin = pickup
	t.tripEndMin = pickup + durMin
	t.tripDest = req.DestRegion

	t.acct.RevenueCNY += req.Fare
	t.acct.Trips++
	t.slotProfit += req.Fare
	c.tel.matches.Inc()
	kn.record(trace.Event{TimeMin: pickup, Taxi: id, Region: req.OriginRegion, Kind: trace.EvPickup, A: req.DestRegion, B: -1, V: req.Fare})

	kn.served++
	// req.OriginRegion is owned by this kernel, so the per-region served
	// tally is a race-free direct write.
	c.res.RegionServed[req.OriginRegion]++
	kn.trips = append(kn.trips, TripStat{
		Taxi:             id,
		PickupMin:        pickup,
		CruiseMin:        cruiseMin,
		FareCNY:          req.Fare,
		DistanceKm:       req.DistanceKm,
		DurMin:           req.DurationMin,
		Region:           req.OriginRegion,
		DestRegion:       req.DestRegion,
		Pickup:           req.Origin,
		Dropoff:          req.Dest,
		FirstAfterCharge: t.afterCharge,
		ChargedAtStation: chargedStation(t),
	})
	t.afterCharge = false
	kn.cal.push(t.tripEndMin, id)
}

// beginMinute applies station perturbations for the kernel's owned stations
// at minute m, in ascending station-ID order.
func (kn *kernel) beginMinute(m int) {
	c := kn.c
	if c.hooks == nil {
		return
	}
	for _, sid := range kn.stationIDs {
		st := c.stations[sid]
		closed := c.hooks.StationClosed(sid, m)
		if closed != c.closedNow[sid] {
			c.closedNow[sid] = closed
			c.tel.outageEdges.Inc()
			flag := 0
			if closed {
				flag = 1
			}
			kn.record(trace.Event{
				TimeMin: m, Taxi: -1, Region: st.Station().Region,
				Kind: trace.EvOutage, A: sid, B: flag,
			})
		}
		if d := clampInt(c.hooks.StationDerate(sid, m), 0, st.Station().Points); d != st.Derate() {
			c.tel.derateChanges.Inc()
			promoted := st.SetDerate(d)
			kn.record(trace.Event{
				TimeMin: m, Taxi: -1, Region: st.Station().Region,
				Kind: trace.EvDerate, A: sid, B: d,
			})
			for _, id := range promoted {
				kn.beginCharge(&c.taxis[id], m)
			}
		}
		if closed {
			for _, id := range st.DrainQueue() {
				c.tel.queueEvictions.Inc()
				t := &c.taxis[id]
				t.state = ToStation
				t.arriveMin = m
				kn.replanCharge(t, m, trace.EvReplan)
			}
		}
	}
}

// sweep processes the minute's due wake-ups and active charging sessions in
// one merged ascending-ID walk, then rebuilds the charging list.
func (kn *kernel) sweep(m int) {
	c := kn.c
	// The tariff band is a function of the minute alone; one lookup covers
	// every charging taxi this sweep touches.
	kn.rateNow = c.city.Tariff.Rate(c.city.Tariff.BandAt(m))
	if f := c.tariffScale(m); f != 1 {
		kn.rateNow *= f
	}
	kn.due = kn.cal.drainTo(kn.due[:0], m)
	slices.Sort(kn.due)

	di, ci := 0, 0
	for di < len(kn.due) || ci < len(kn.charging) {
		var id int
		switch {
		case di >= len(kn.due):
			id = kn.charging[ci]
		case ci >= len(kn.charging):
			id = kn.due[di]
		case kn.due[di] <= kn.charging[ci]:
			id = kn.due[di]
		default:
			id = kn.charging[ci]
		}
		if di < len(kn.due) && kn.due[di] == id {
			for di < len(kn.due) && kn.due[di] == id {
				di++
			}
			kn.dispatch(id, m)
		}
		if ci < len(kn.charging) && kn.charging[ci] == id {
			ci++
			if t := &c.taxis[id]; t.state == ChargingState {
				kn.chargeMinute(t, m)
			}
		}
	}

	kn.nextCharging = kn.nextCharging[:0]
	for _, id := range kn.charging {
		if c.taxis[id].state == ChargingState {
			kn.nextCharging = append(kn.nextCharging, id)
		}
	}
	kn.charging, kn.nextCharging = kn.nextCharging, kn.charging
}

// dispatch handles one wake-up. Stale entries — the taxi has since changed
// state, rescheduled, or emigrated — are ignored by the guards.
func (kn *kernel) dispatch(id, m int) {
	c := kn.c
	if c.taxiOwner[id] != kn.idx {
		return
	}
	t := &c.taxis[id]
	switch t.state {
	case Serving:
		if m >= t.tripEndMin {
			t.acct.ServeMin += float64(t.tripEndMin - t.pickupMin)
			kn.record(trace.Event{TimeMin: t.tripEndMin, Taxi: t.id, Region: t.tripDest, Kind: trace.EvDropoff, A: -1, B: -1})
			t.state = Cruising
			t.region = t.tripDest
			t.vacantSinceMin = t.tripEndMin
			t.crawlFromMin = t.tripEndMin
		}
	case ToStation:
		if m >= t.arriveMin {
			if c.stationClosedHook(t.stationID, m) || kn.shouldBalk(t) {
				t.balkCount++
				c.tel.balks.Inc()
				kn.replanCharge(t, m, trace.EvBalk)
				return
			}
			t.balkCount = 0
			if c.stations[t.stationID].Arrive(t.id) {
				kn.beginCharge(t, m)
			} else {
				t.state = Queued
				c.tel.queueJoins.Inc()
				kn.record(trace.Event{TimeMin: m, Taxi: t.id, Region: t.region, Kind: trace.EvQueue, A: t.stationID, B: -1})
			}
		}
	case Relocating:
		if m >= t.arriveMin {
			t.state = Cruising
			t.crawlFromMin = m
		}
	}
}

// shouldBalk reports whether the queue at t's (always owned) target station
// is hopeless — same rule as the sequential engine.
func (kn *kernel) shouldBalk(t *taxi) bool {
	c := kn.c
	if c.opts.BalkFactor < 0 || t.balkCount >= maxBalks {
		return false
	}
	st := c.stations[t.stationID]
	threshold := c.opts.BalkFactor * float64(st.Station().Points)
	if threshold < 3 {
		threshold = 3
	}
	return float64(st.QueueLen()) >= threshold
}

// replanCharge redirects t to the least-loaded open nearby station using
// the slot's load snapshot (see kernel.go header). The redirect may cross a
// shard cut; the taxi then migrates at the minute barrier.
func (kn *kernel) replanCharge(t *taxi, m int, kind trace.EventKind) {
	c := kn.c
	cur := &c.stationInfo[t.stationID]
	ns := c.nearStations[cur.Region]
	best, bestLoad := -1, 0.0
	for _, nb := range ns {
		if nb.Label == t.stationID || c.stationClosedHook(nb.Label, m) {
			continue
		}
		load := c.loads[nb.Label] + nb.DistKm*0.1
		if best < 0 || load < bestLoad {
			best, bestLoad = nb.Label, load
		}
	}
	kn.record(trace.Event{
		TimeMin: m, Taxi: t.id, Region: t.region, Kind: kind,
		A: t.stationID, B: best,
	})
	if best < 0 {
		if !c.stationClosedHook(t.stationID, m) {
			t.balkCount = maxBalks
			if c.stations[t.stationID].Arrive(t.id) {
				kn.beginCharge(t, m)
			} else {
				t.state = Queued
				c.tel.queueJoins.Inc()
				kn.record(trace.Event{TimeMin: m, Taxi: t.id, Region: t.region, Kind: trace.EvQueue, A: t.stationID, B: -1})
			}
			return
		}
		t.arriveMin = m + 1
		kn.cal.push(t.arriveMin, t.id)
		return
	}
	distKm := geoDistKm(cur.Loc, c.stationInfo[best].Loc)
	travelMin := c.travelMinutes(distKm, cur.Region, m)
	driveTracked(t, distKm)
	t.stationID = best
	t.arriveMin = m + travelMin
	t.region = c.stationInfo[best].Region
	kn.wakeOrEmigrate(t)
}

// beginCharge marks the plug-in of t at minute m. The session's first
// charging minute is m+1 (see the divergence note in kernel.go); the jitter
// draw comes from the station's stream.
func (kn *kernel) beginCharge(t *taxi, m int) {
	c := kn.c
	t.state = ChargingState
	t.plugMin = m
	t.chargeTarget = t.batt.SoC + 0.3 + c.stationSrc[t.stationID].Uniform(0, 0.55)
	if t.chargeTarget > c.opts.ChargeTargetSoC+0.04 {
		t.chargeTarget = c.opts.ChargeTargetSoC + 0.04
	}
	if t.chargeTarget > 0.99 {
		t.chargeTarget = 0.99
	}
	t.chargeSoC0 = t.batt.SoC
	t.chargeEnergy = 0
	t.chargeCost = 0
	idle := float64(m - t.departMin)
	t.acct.IdleMin += idle
	c.tel.idleMin.Observe(idle)
	kn.chargeStarts[hourAt(m)]++
	kn.record(trace.Event{TimeMin: m, Taxi: t.id, Region: t.region, Kind: trace.EvPlug, A: t.stationID, B: -1})
	kn.pendingPlug = append(kn.pendingPlug, t.id)
}

// chargeMinute integrates one minute of charging for t at minute m.
func (kn *kernel) chargeMinute(t *taxi, m int) {
	c := kn.c
	ch := &c.stationInfo[t.stationID].Charger
	delivered := ch.Charge(&t.batt, 1)
	cost := delivered * kn.rateNow
	t.chargeEnergy += delivered
	t.chargeCost += cost
	t.slotProfit -= cost
	if t.batt.SoC >= t.chargeTarget {
		kn.finishCharge(t, m+1)
	}
}

// finishCharge unplugs t at minute m, promotes the queue head (whose first
// charging minute is the next sweep), and releases t to cruising.
func (kn *kernel) finishCharge(t *taxi, m int) {
	c := kn.c
	promoted := c.stations[t.stationID].Finish(t.id)
	if promoted >= 0 {
		kn.beginCharge(&c.taxis[promoted], m)
	}
	t.acct.ChargeMin += float64(m - t.plugMin)
	t.acct.ChargeCostCNY += t.chargeCost
	t.acct.EnergyKWh += t.chargeEnergy
	t.acct.ChargeEvents++
	c.tel.chargeSessions.Inc()
	c.tel.chargeMin.Observe(float64(m - t.plugMin))
	kn.charges = append(kn.charges, trace.ChargingEvent{
		VehicleID: t.id,
		StationID: t.stationID,
		ArriveMin: t.departMin,
		PlugMin:   t.plugMin,
		FinishMin: m,
		EnergyKWh: t.chargeEnergy,
		CostCNY:   t.chargeCost,
		StartSoC:  t.chargeSoC0,
		EndSoC:    t.batt.SoC,
	})
	kn.record(trace.Event{TimeMin: m, Taxi: t.id, Region: c.stationInfo[t.stationID].Region, Kind: trace.EvUnplug, A: t.stationID, B: -1, V: t.chargeEnergy})
	t.state = Cruising
	t.region = c.stationInfo[t.stationID].Region
	t.vacantSinceMin = m
	t.crawlFromMin = m
	t.afterCharge = true
	t.lastStation = t.stationID
}

// activatePlugs merges this minute's plug-ins into the sorted charging list
// so their first integration happens next minute.
func (kn *kernel) activatePlugs() {
	if len(kn.pendingPlug) == 0 {
		return
	}
	slices.Sort(kn.pendingPlug)
	kn.nextCharging = kn.nextCharging[:0]
	i, j := 0, 0
	for i < len(kn.charging) || j < len(kn.pendingPlug) {
		switch {
		case i >= len(kn.charging):
			kn.nextCharging = append(kn.nextCharging, kn.pendingPlug[j])
			j++
		case j >= len(kn.pendingPlug):
			kn.nextCharging = append(kn.nextCharging, kn.charging[i])
			i++
		case kn.charging[i] < kn.pendingPlug[j]:
			kn.nextCharging = append(kn.nextCharging, kn.charging[i])
			i++
		default:
			kn.nextCharging = append(kn.nextCharging, kn.pendingPlug[j])
			j++
		}
	}
	kn.charging, kn.nextCharging = kn.nextCharging, kn.charging
	kn.pendingPlug = kn.pendingPlug[:0]
}
