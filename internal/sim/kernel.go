package sim

// The region-sharded state-transition core. Core holds the shared world
// state (fleet, stations, demand, accounting) and splits the city's regions
// across K kernels; each kernel advances only the taxis it owns, so a driver
// (internal/shard.Engine) can run kernels concurrently within a slot and
// synchronize at deterministic barriers. Every RNG stream is split per
// region or per station, never per kernel, so the realization is identical
// for any K — shards=1 and shards=N produce byte-identical traces.
//
// Ownership rule: a taxi belongs to the kernel owning its current region.
// Region changes that can cross a shard cut happen at barriers only:
//
//	Charge/Move actions   retarget the region at apply time; the migrant is
//	                      routed serially right after the apply phase.
//	Balk/replan redirects retarget mid-minute; routed at the minute barrier
//	                      (arrival is ≥ m+1 away, so nothing is missed).
//	Dropoffs              set the trip destination; the now-cruising taxi is
//	                      routed at the end-of-slot barrier (it cannot be
//	                      matched or act before the next slot anyway).
//
// Time-driven transitions run off a per-kernel event calendar (a min-heap
// of wake-ups) plus a sorted active-charging list, so a minute costs
// O(events) instead of the sequential engine's O(fleet) sweep. Stale
// wake-ups are tolerated: dispatch re-checks state and time.
//
// Known, deliberate divergences from the sequential *Env (the golden-trace
// reference is unaffected; the sharded engine pins its own goldens):
//
//   - Every plug-in integrates its first charging minute at m+1. The
//     sequential engine lets a queue promotion charge in the same minute
//     when the promoted ID is larger than the finisher's — an ID-order
//     artifact a parallel engine cannot reproduce independently of K.
//   - Charge replanning reads queue pressure from a once-per-slot snapshot
//     of every station rather than live values, because live reads of
//     another shard's stations would depend on scheduling. Balking still
//     reads the (always-local) target station live.
//   - Matching, demand, and charge-target jitter draw from per-region and
//     per-station streams instead of two global ones.
//   - Demand sampling picks destinations from a gravity alias table, places
//     points by triangle-fan decomposition instead of rejection sampling,
//     and measures trips equirectangularly. Same per-region stream; the draw
//     sequence differs from the sequential engine's linear forms.
//   - Matching breaks equal vacancy ages toward the lowest taxi ID (one
//     up-front sort) instead of the sequential engine's scan-order tie under
//     swap-removal. Both rules are pure functions of region state.

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"strconv"

	"repro/internal/demand"
	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/station"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// wakeCal is a calendar queue: one bucket of taxi IDs per simulation minute.
// Wake times are bounded by the horizon and the clock only moves forward, so
// push and drain are O(1) — no heap discipline needed. The sweep sorts each
// minute's due list by taxi ID anyway, so bucket insertion order never
// reaches the simulation and the drain order is identical to the (min, id)
// min-heap this replaces.
type wakeCal struct {
	buckets [][]int32
	head    int // first undrained minute
}

// reset sizes the calendar for a horizon of endMin minutes. Bucket backing
// arrays are kept across episodes.
func (w *wakeCal) reset(endMin int) {
	if len(w.buckets) < endMin+1 {
		w.buckets = append(w.buckets, make([][]int32, endMin+1-len(w.buckets))...)
	}
	for i := range w.buckets {
		w.buckets[i] = w.buckets[i][:0]
	}
	w.head = 0
}

// push schedules id at minute min. Past minutes land in the head bucket and
// wakes beyond the horizon park in the final bucket, which is never drained
// (finalize flushes open work) — both exactly as the heap behaved.
func (w *wakeCal) push(min, id int) {
	if min < w.head {
		min = w.head
	}
	if min >= len(w.buckets) {
		min = len(w.buckets) - 1
	}
	w.buckets[min] = append(w.buckets[min], int32(id))
}

// drainTo appends every ID due at minute m or earlier to due.
func (w *wakeCal) drainTo(due []int, m int) []int {
	if m >= len(w.buckets) {
		m = len(w.buckets) - 1
	}
	for ; w.head <= m; w.head++ {
		for _, id := range w.buckets[w.head] {
			due = append(due, int(id))
		}
		w.buckets[w.head] = w.buckets[w.head][:0]
	}
	return due
}

// ownSet tracks a kernel's owned taxi IDs as a bitmap over the fleet.
// Ownership churns on every cross-cut migration, and at full scale the
// memmove behind a sorted slice's insert/delete was the kernel's single
// hottest instruction; bitmap updates are O(1) and iteration walks the words
// in ascending ID order by construction.
type ownSet []uint64

func newOwnSet(n int) ownSet { return make(ownSet, (n+63)/64) }

func (s ownSet) add(id int)    { s[id>>6] |= 1 << uint(id&63) }
func (s ownSet) remove(id int) { s[id>>6] &^= 1 << uint(id&63) }

// forEach calls f for every member in ascending order.
func (s ownSet) forEach(f func(id int)) {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// kernel is the per-shard slice of the world: the taxis, regions, and
// stations one shard owns, plus its calendar and per-slot result buffers.
// All mutation of owned state happens here; the buffers are drained by
// Core.FinishSlot under the slot barrier.
type kernel struct {
	c   *Core
	idx int

	regions    []int // owned region IDs, ascending (static)
	stationIDs []int // owned station IDs, ascending (static)

	owned       ownSet // owned taxi IDs
	cal         wakeCal
	charging    []int // taxis integrating charge, ascending
	pendingPlug []int // plugged this minute; first charge minute is m+1
	pending     map[int][]demand.Request
	outbox      []int // emigrants awaiting RouteMigrants

	// scratch, reused across slots
	due          []int
	nextCharging []int
	cands        map[int][]int
	reqBuf       []demand.Request
	keyBuf       []uint64
	reqScratch   []demand.Request
	rateNow      float64 // tariff rate of the minute being swept

	// per-slot result buffers, drained serially in FinishSlot
	events       []trace.Event
	trips        []TripStat
	charges      []trace.ChargingEvent
	served       int
	unserved     int
	generated    int
	invalid      int
	chargeStarts [24]int
}

// Core is the shared state of a sharded simulation. It implements every
// sim.Environment method except Step; the driver in internal/shard supplies
// Step by sequencing the phase methods (BeginSlotApply, GenerateAndMatch,
// SnapshotLoads, RunMinute, EndSlot — parallel per kernel) around the serial
// barriers (RouteMigrants, FinishSlot).
type Core struct {
	city *synth.City
	opts Options

	slotLen int
	nowMin  int
	endMin  int

	taxis    []taxi
	stations []*station.State
	// stationInfo aliases the network's static station slice so hot paths
	// index it in place instead of copying a Station per lookup.
	stationInfo []station.Station

	nearStations [][]geo.Neighbor

	regionOwner []int // region ID -> kernel index (static)
	taxiOwner   []int // taxi ID -> kernel index (updated at barriers)
	kernels     []*kernel

	demandSrc  []*rng.Source // per region
	matchSrc   []*rng.Source // per region
	stationSrc []*rng.Source // per station

	// loads is the once-per-slot queue-pressure snapshot every replanning
	// decision reads, local or not, so K=1 and K=N see the same numbers.
	loads     []float64
	closedNow []bool

	hooks      Hooks
	xh         ExtendedHooks
	rec        Recorder
	tel        simTel
	predictor  *forecast.Predictor
	staleFeats [][]float64

	res            Results
	generated      int
	invalidActions int
	finalized      bool

	// per-slot read caches (state mutates only inside Step, so anything
	// keyed on the slot index stays valid between steps)
	supplySlot int
	supply     []int
	aggSlot    int
	aggValid   bool
	aggVacant  int
	aggQueued  int
	peSlot     int
	peValid    bool
	peMean     float64
	peVar      float64

	// merge scratch
	mergeTrips   []TripStat
	mergeCharges []trace.ChargingEvent
	mergeEvents  []trace.Event
	keyBuf       []uint64

	// Reusable hot-path scratch: per-taxi observation buffers (borrowed by
	// Observation.Features, see Env.Observe for the ownership contract), the
	// VacantTaxis result buffer, and RouteMigrants' gather slice.
	obsBufs    [][]float64
	vacantBuf  []int
	migrantBuf []int

	// Arena blocks behind tripChunks/chargeChunks. Each slot's chunk is cut
	// from the current block; exhausted blocks stay alive through the chunks
	// that reference them while the arena moves on to a geometrically larger
	// block, so chunk storage costs amortized O(1) allocations per slot.
	tripArena   []TripStat
	chargeArena []trace.ChargingEvent

	// Per-slot stat chunks. Appending every slot's trips onto one long
	// slice costs an amortized-doubling memmove of the whole history; at
	// full scale that realloc traffic dominates FinishSlot. Chunks bound
	// the copying to exactly twice per record: once into its chunk here,
	// once into the flat snapshot Results builds on demand.
	tripChunks   [][]TripStat
	chargeChunks [][]trace.ChargingEvent
	tripCount    int
	chargeCount  int
}

// NewCore builds a sharded core over city. regionOwner maps every region to
// a kernel index in [0, K); taxis, stations, demand, and matching for a
// region are advanced by its owning kernel. It panics on an invalid
// assignment (a programming error in the driver).
func NewCore(city *synth.City, opts Options, regionOwner []int, seed int64) *Core {
	opts.fillDefaults()
	n := city.Partition.Len()
	if len(regionOwner) != n {
		panic(fmt.Sprintf("sim: regionOwner covers %d regions, city has %d", len(regionOwner), n))
	}
	k := 0
	for r, o := range regionOwner {
		if o < 0 {
			panic(fmt.Sprintf("sim: region %d has negative owner %d", r, o))
		}
		if o+1 > k {
			k = o + 1
		}
	}
	c := &Core{
		city:        city,
		opts:        opts,
		slotLen:     city.Config.SlotMinutes,
		regionOwner: append([]int(nil), regionOwner...),
	}
	c.nearStations = make([][]geo.Neighbor, n)
	for r := 0; r < n; r++ {
		c.nearStations[r] = city.Stations.Nearest(city.Partition.Region(r).Centroid, KStations)
	}
	c.kernels = make([]*kernel, k)
	for i := range c.kernels {
		c.kernels[i] = &kernel{c: c, idx: i, cands: make(map[int][]int)}
	}
	for r := 0; r < n; r++ {
		kn := c.kernels[regionOwner[r]]
		kn.regions = append(kn.regions, r)
	}
	for sid := 0; sid < city.Stations.Len(); sid++ {
		kn := c.kernels[regionOwner[city.Stations.Station(sid).Region]]
		kn.stationIDs = append(kn.stationIDs, sid)
	}
	c.Reset(seed)
	return c
}

// Shards returns the number of kernels.
func (c *Core) Shards() int { return len(c.kernels) }

// Reset restores the initial fleet and clears all accounting. The per-region
// and per-station RNG streams are reseeded from seed alone, so the same seed
// reproduces the same realization at any shard count.
func (c *Core) Reset(seed int64) {
	c.nowMin = 0
	c.endMin = (c.opts.WarmupDays + c.opts.Days) * 24 * 60
	n := c.city.Partition.Len()
	c.demandSrc = make([]*rng.Source, n)
	c.matchSrc = make([]*rng.Source, n)
	for r := 0; r < n; r++ {
		c.demandSrc[r] = rng.SplitStable(seed, "shard-demand-"+strconv.Itoa(r))
		c.matchSrc[r] = rng.SplitStable(seed, "shard-match-"+strconv.Itoa(r))
	}
	nS := c.city.Stations.Len()
	c.stationSrc = make([]*rng.Source, nS)
	for s := 0; s < nS; s++ {
		c.stationSrc[s] = rng.SplitStable(seed, "shard-station-"+strconv.Itoa(s))
	}
	c.taxis = make([]taxi, len(c.city.Fleet))
	for i, v := range c.city.Fleet {
		c.taxis[i] = taxi{
			id:             v.ID,
			state:          Cruising,
			region:         v.HomeRegion,
			batt:           c.city.NewBattery(v),
			vacantSinceMin: 0,
			crawlFromMin:   0,
			lastStation:    -1,
		}
	}
	c.stations = make([]*station.State, nS)
	for i := 0; i < nS; i++ {
		c.stations[i] = station.NewState(c.city.Stations.Station(i))
	}
	c.stationInfo = c.city.Stations.Stations()
	c.loads = make([]float64, nS)
	c.closedNow = make([]bool, nS)
	c.staleFeats = nil
	c.applyBatteryFactors()
	if c.opts.LearnedForecast {
		p, err := forecast.New(n, c.city.SlotsPerDay())
		if err != nil {
			panic("sim: " + err.Error())
		}
		c.predictor = p
	} else {
		c.predictor = nil
	}
	c.res = Results{
		SlotMinutes:  c.slotLen,
		Accounts:     make([]TaxiAccount, len(c.taxis)),
		RegionDemand: make([]int, n),
		RegionServed: make([]int, n),
	}
	// Truncate the chunk lists (keeping their backing arrays for the next
	// episode's appends) and reuse the current arena blocks from the top.
	// The stale headers past len pin last episode's arena blocks until they
	// are overwritten — bounded by one episode of chunks, and cheaper than
	// re-growing the lists every Reset.
	c.tripChunks = c.tripChunks[:0]
	c.chargeChunks = c.chargeChunks[:0]
	c.tripCount, c.chargeCount = 0, 0
	c.tripArena = c.tripArena[:0]
	c.chargeArena = c.chargeArena[:0]
	if len(c.obsBufs) != len(c.taxis) {
		c.obsBufs = make([][]float64, len(c.taxis))
	}
	c.generated = 0
	c.invalidActions = 0
	c.finalized = false

	c.taxiOwner = make([]int, len(c.taxis))
	for _, kn := range c.kernels {
		kn.owned = newOwnSet(len(c.taxis))
		kn.cal.reset(c.endMin)
		kn.charging = kn.charging[:0]
		kn.pendingPlug = kn.pendingPlug[:0]
		// Keep the pending map and its per-region buckets across episodes:
		// the buckets are the match loop's working storage, and dropping
		// them re-pays their growth allocations every Reset.
		if kn.pending == nil {
			kn.pending = make(map[int][]demand.Request)
		}
		for r, s := range kn.pending {
			kn.pending[r] = s[:0]
		}
		kn.outbox = kn.outbox[:0]
		kn.events = kn.events[:0]
		kn.trips = kn.trips[:0]
		kn.charges = kn.charges[:0]
		kn.served, kn.unserved, kn.generated, kn.invalid = 0, 0, 0, 0
		kn.chargeStarts = [24]int{}
	}
	for i := range c.taxis {
		k := c.regionOwner[c.taxis[i].region]
		c.taxiOwner[i] = k
		c.kernels[k].owned.add(i)
	}
	c.invalidateCaches()
}

func (c *Core) invalidateCaches() {
	c.supplySlot = -1
	c.aggValid = false
	c.peValid = false
}

// applyBatteryFactors scales each taxi's pack by its cohort factor and,
// under ExtendedHooks, its consumption rate by the cohort's vehicle model.
func (c *Core) applyBatteryFactors() {
	if c.hooks == nil {
		return
	}
	for i := range c.taxis {
		b := c.city.NewBattery(c.city.Fleet[i])
		if f := c.hooks.BatteryFactor(i); f > 0 && f != 1 {
			b.CapacityKWh *= f
		}
		if c.xh != nil {
			if f := c.xh.ConsumptionFactor(i); f > 0 && f != 1 {
				b.ConsumptionPerKm *= f
			}
		}
		c.taxis[i].batt = b
	}
}

// speedScale returns the ExtendedHooks travel-speed multiplier for a
// region at a minute, or exactly 1 when no extended hooks are installed.
func (c *Core) speedScale(region, minute int) float64 {
	if c.xh == nil {
		return 1
	}
	if f := c.xh.SpeedScale(region, minute); f > 0 {
		return f
	}
	return 1
}

// tariffScale returns the ExtendedHooks charging-price multiplier at a
// minute, or exactly 1 when no extended hooks are installed.
func (c *Core) tariffScale(minute int) float64 {
	if c.xh == nil {
		return 1
	}
	if f := c.xh.TariffScale(minute); f > 0 {
		return f
	}
	return 1
}

// offDuty reports whether the taxi sits out this minute on a shift change.
func (c *Core) offDuty(taxi, minute int) bool {
	return c.xh != nil && c.xh.OffDuty(taxi, minute)
}

// travelMinutes converts a road distance to whole driving minutes at the
// traffic speed of minute m in the given region (see Env.travelMinutes —
// the scaled rule is shared, so both engines slow down identically).
func (c *Core) travelMinutes(distKm float64, region, m int) int {
	if s := c.speedScale(region, m); s != 1 {
		return travelMinutesScaled(distKm, m, s)
	}
	return travelMinutesAt(distKm, m)
}

// stationClosedHook reports whether station rejects new arrivals at minute m.
func (c *Core) stationClosedHook(station, m int) bool {
	return c.hooks != nil && c.hooks.StationClosed(station, m)
}

// --- Environment read surface ------------------------------------------------

// City returns the underlying synthetic city.
func (c *Core) City() *synth.City { return c.city }

// Now returns the current absolute simulation minute.
func (c *Core) Now() int { return c.nowMin }

// Slot returns the current absolute slot index.
func (c *Core) Slot() int { return c.nowMin / c.slotLen }

// SlotLen returns the slot length in minutes.
func (c *Core) SlotLen() int { return c.slotLen }

// HorizonMin returns the simulation horizon in absolute minutes.
func (c *Core) HorizonMin() int { return c.endMin }

// Done reports whether the horizon has been reached.
func (c *Core) Done() bool { return c.nowMin >= c.endMin }

// InvalidActions returns how many submitted actions were mask-coerced.
func (c *Core) InvalidActions() int { return c.invalidActions }

// VacantTaxis returns the IDs of taxis awaiting a displacement decision
// this slot, ascending. The slice borrows a core-owned buffer rewritten by
// the next call; see Env.VacantTaxis for the reuse contract.
func (c *Core) VacantTaxis() []int {
	out := c.vacantBuf[:0]
	for i := range c.taxis {
		if c.taxis[i].state == Cruising {
			out = append(out, i)
		}
	}
	c.vacantBuf = out
	return out
}

// TaxiRegion returns the current region of a taxi.
func (c *Core) TaxiRegion(id int) int { return c.taxis[id].region }

// TaxiSoC returns the current state of charge of a taxi.
func (c *Core) TaxiSoC(id int) float64 { return c.taxis[id].batt.SoC }

// TaxiState returns the state of a taxi.
func (c *Core) TaxiState(id int) TaxiState { return c.taxis[id].state }

// NearStations returns the cached KStations nearest stations for a region.
func (c *Core) NearStations(region int) []geo.Neighbor { return c.nearStations[region] }

// StationState returns the runtime state of a station (read-only use).
func (c *Core) StationState(id int) *station.State { return c.stations[id] }

// SlotProfit returns the net CNY earned by taxi id during the last Step.
func (c *Core) SlotProfit(id int) float64 { return c.taxis[id].slotProfit }

// PESoFar returns taxi id's cumulative profit efficiency (CNY/h), floored at
// one on-duty hour, exactly as the sequential engine computes it.
func (c *Core) PESoFar(id int) float64 {
	a := &c.taxis[id].acct
	d := a.OnDutyMin()
	if d < peFloorMin {
		d = peFloorMin
	}
	return a.ProfitCNY() / (d / 60)
}

// FleetPEStats returns the mean and variance of the cumulative PE across
// on-duty taxis, cached per slot (accounts change only inside Step).
func (c *Core) FleetPEStats() (mean, variance float64) {
	slot := c.Slot()
	if c.peValid && c.peSlot == slot {
		return c.peMean, c.peVar
	}
	var n int
	for i := range c.taxis {
		if c.taxis[i].acct.OnDutyMin() > 0 {
			mean += c.PESoFar(i)
			n++
		}
	}
	if n == 0 {
		c.peMean, c.peVar, c.peSlot, c.peValid = 0, 0, slot, true
		return 0, 0
	}
	mean /= float64(n)
	for i := range c.taxis {
		if c.taxis[i].acct.OnDutyMin() > 0 {
			d := c.PESoFar(i) - mean
			variance += d * d
		}
	}
	variance /= float64(n)
	c.peMean, c.peVar, c.peSlot, c.peValid = mean, variance, slot, true
	return mean, variance
}

// fleetStateCounts returns the global vacant and queued/to-station counts,
// cached per slot.
func (c *Core) fleetStateCounts() (vacant, queued int) {
	slot := c.Slot()
	if c.aggValid && c.aggSlot == slot {
		return c.aggVacant, c.aggQueued
	}
	for i := range c.taxis {
		switch c.taxis[i].state {
		case Cruising:
			vacant++
		case Queued, ToStation:
			queued++
		}
	}
	c.aggVacant, c.aggQueued, c.aggSlot, c.aggValid = vacant, queued, slot, true
	return vacant, queued
}

// regionSupply returns per-region vacant-taxi counts, cached per slot.
func (c *Core) regionSupply() []int {
	slot := c.Slot()
	if c.supplySlot == slot && c.supply != nil {
		return c.supply
	}
	sup := make([]int, c.city.Partition.Len())
	for i := range c.taxis {
		if c.taxis[i].state == Cruising {
			sup[c.taxis[i].region]++
		}
	}
	c.supply = sup
	c.supplySlot = slot
	return sup
}

// ValidMask returns the action-validity mask for a taxi.
func (c *Core) ValidMask(id int) [NumActions]bool {
	var mask [NumActions]bool
	t := &c.taxis[id]
	mustCharge := t.batt.SoC < c.opts.LowSoC
	mayCharge := t.batt.SoC < c.opts.AllowChargeSoC
	if !mustCharge {
		mask[0] = true
		nbs := c.city.Partition.Region(t.region).Neighbors
		for i := 0; i < len(nbs) && i < MaxNeighbors; i++ {
			mask[1+i] = true
		}
	}
	if mustCharge || mayCharge {
		for k := 0; k < len(c.nearStations[t.region]) && k < KStations; k++ {
			mask[1+MaxNeighbors+k] = true
		}
	}
	return mask
}

// Observe builds the observation for a vacant taxi. The feature math is
// identical to the sequential engine's; the fleet-wide aggregates come from
// per-slot caches, which turns the sequential engine's O(fleet) work per
// call into O(1) amortized.
func (c *Core) Observe(id int) Observation {
	t := &c.taxis[id]
	f := c.obsBufs[id][:0]
	now := c.nowMin
	dayFrac := float64(now%(24*60)) / (24 * 60)

	f = append(f, math.Sin(2*math.Pi*dayFrac), math.Cos(2*math.Pi*dayFrac))

	meanPE, _ := c.FleetPEStats()
	peGap := (c.PESoFar(id) - meanPE) / 50
	vacancyAge := float64(now-t.vacantSinceMin) / 60
	f = append(f, t.batt.SoC, clampF(peGap, -2, 2), clampF(vacancyAge, 0, 4))

	supply := c.regionSupply()
	f = c.appendRegionTriple(f, t.region, supply, now)

	nbs := c.city.Partition.Region(t.region).Neighbors
	for i := 0; i < MaxNeighbors; i++ {
		if i < len(nbs) {
			f = c.appendRegionTriple(f, nbs[i], supply, now)
		} else {
			f = append(f, 0, 0, 0)
		}
	}

	ns := c.nearStations[t.region]
	for k := 0; k < KStations; k++ {
		if k < len(ns) {
			st := c.stations[ns[k].Label]
			f = append(f,
				float64(st.Free())/20,
				float64(st.QueueLen())/10,
				ns[k].DistKm/10,
				c.city.Tariff.Rate(c.city.Tariff.BandAt(now))/2,
			)
		} else {
			f = append(f, 0, 0, 0, 0)
		}
	}

	vacant, queued := c.fleetStateCounts()
	n := float64(len(c.taxis))
	band := float64(c.city.Tariff.BandAt(now)) / 2
	f = append(f, float64(vacant)/n, float64(queued)/n, band)

	if len(f) != FeatureSize {
		panic("sim: feature size mismatch")
	}

	if c.hooks != nil {
		if c.staleFeats == nil {
			c.staleFeats = make([][]float64, len(c.taxis))
		}
		if c.hooks.ObsStale(t.region, now) {
			c.tel.staleObs.Inc()
			if cached := c.staleFeats[id]; cached != nil {
				f = append(f[:0], cached...)
			}
		} else {
			c.staleFeats[id] = append(c.staleFeats[id][:0], f...)
		}
	}
	c.obsBufs[id] = f
	return Observation{Features: f, Mask: c.ValidMask(id)}
}

// appendRegionTriple appends the (supply, forecast, fare) features of a
// region to f.
func (c *Core) appendRegionTriple(f []float64, region int, supply []int, now int) []float64 {
	var fc float64
	switch {
	case c.opts.NoForecastFeature:
		fc = 0
	case c.predictor != nil:
		fc = c.predictor.Predict(region, now/c.slotLen)
	default:
		fc = c.city.Demand.ExpectedSlotDemand(region, now, c.slotLen)
	}
	fare := c.city.Demand.ExpectedFare(region, hourAt(now))
	return append(f,
		float64(supply[region])/10,
		fc/10,
		fare/100,
	)
}

// SetHooks installs (or, with nil, removes) a perturbation engine.
func (c *Core) SetHooks(h Hooks) {
	c.hooks = h
	c.xh, _ = h.(ExtendedHooks)
	if c.nowMin == 0 {
		c.applyBatteryFactors()
	}
}

// Hooks returns the installed perturbation engine, or nil.
func (c *Core) Hooks() Hooks { return c.hooks }

// SetRecorder installs (or, with nil, removes) the event recorder. Events
// are buffered per kernel during a slot and emitted in canonical order at
// the slot barrier, so the stream is identical at any shard count.
func (c *Core) SetRecorder(r Recorder) { c.rec = r }

// SetTelemetry installs (or, with nil, removes) a metrics registry. All
// counters and histograms are atomic, so kernels write them concurrently;
// every count is a pure function of the trajectory and therefore identical
// at any shard count.
func (c *Core) SetTelemetry(r *telemetry.Registry) { c.tel = newSimTel(r) }

// Results returns the accounting of the run as a stable snapshot.
func (c *Core) Results() *Results {
	snap := c.res
	if !c.finalized {
		snap.Accounts = make([]TaxiAccount, len(c.taxis))
		for i := range c.taxis {
			snap.Accounts[i] = c.taxis[i].acct
		}
	} else {
		snap.Accounts = append([]TaxiAccount(nil), c.res.Accounts...)
	}
	snap.TripStats = make([]TripStat, 0, c.tripCount)
	for _, ch := range c.tripChunks {
		snap.TripStats = append(snap.TripStats, ch...)
	}
	snap.ChargeStats = make([]trace.ChargingEvent, 0, c.chargeCount)
	for _, ch := range c.chargeChunks {
		snap.ChargeStats = append(snap.ChargeStats, ch...)
	}
	snap.RegionDemand = append([]int(nil), c.res.RegionDemand...)
	snap.RegionServed = append([]int(nil), c.res.RegionServed...)
	return &snap
}

// --- Phase methods (parallel per kernel between barriers) --------------------

// BeginSlotApply clears kernel k's per-slot profit accumulators and applies
// one displacement action per owned vacant taxi (missing entries default to
// Stay). Safe to run concurrently across kernels: it touches only owned
// taxis and the kernel's own buffers.
func (c *Core) BeginSlotApply(k int, actions map[int]Action) {
	kn := c.kernels[k]
	kn.owned.forEach(func(id int) {
		// One fused scan: applyAction touches only the acting taxi, so
		// clearing each taxi's accumulator just before its own action is
		// equivalent to a separate clear pass.
		c.taxis[id].slotProfit = 0
		if c.taxis[id].state != Cruising {
			return
		}
		a, ok := actions[id]
		if !ok {
			a = Action{Kind: Stay}
		}
		// Off-duty taxis hold position — unless forced charging applies (a
		// shift change never strands a taxi), in which case the action
		// proceeds and the mask coercion steers it to a charger.
		if c.offDuty(id, c.nowMin) && c.taxis[id].batt.SoC >= c.opts.LowSoC {
			a = Action{Kind: Stay}
			c.tel.offDutyHolds.Inc()
		}
		kn.applyAction(id, a)
	})
}

// GenerateAndMatch samples kernel k's per-region demand for the slot,
// expires stale requests, and matches the rest oldest-first within each
// region. Regions are processed in ascending ID order; each draws from its
// own demand and match streams, so the outcome is independent of K.
func (c *Core) GenerateAndMatch(k int) {
	kn := c.kernels[k]
	slotStart := c.nowMin
	slot := slotStart / c.slotLen

	for r, s := range kn.cands {
		kn.cands[r] = s[:0]
	}
	kn.owned.forEach(func(id int) {
		if s := c.taxis[id].state; s == Cruising || s == Relocating {
			if c.offDuty(id, slotStart) {
				return // shift change: invisible to passengers this slot
			}
			r := c.taxis[id].region
			kn.cands[r] = append(kn.cands[r], id)
		}
	})

	for _, r := range kn.regions {
		factor := 1.0
		if c.hooks != nil {
			factor = c.hooks.DemandScale(r, slotStart)
		}
		// The fast sampler draws destinations from a gravity alias table and
		// places points by triangle fan — O(1) per request on the same
		// per-region stream. Its divergence from the sequential engine's
		// linear forms is one of the kernel's documented departures; shard
		// invariance is untouched because every K uses it.
		kn.reqBuf = c.city.Demand.SampleRegionScaledFast(kn.reqBuf[:0], c.demandSrc[r], r, slotStart, c.slotLen, factor)
		reqs := kn.reqBuf
		// Region r is owned by exactly this kernel, so the per-region demand
		// tally is a race-free direct write.
		c.res.RegionDemand[r] += len(reqs)
		if c.hooks != nil {
			for i := range reqs {
				if f := c.hooks.FareScale(reqs[i].OriginRegion, reqs[i].TimeMin); f != 1 && f >= 0 {
					reqs[i].Fare *= f
				}
			}
		}
		if c.predictor != nil {
			// Observe every owned region every slot, zeros included: the
			// predictor's EWMA semantics require the full sequence.
			c.predictor.Observe(r, slot, float64(len(reqs)))
		}
		kn.generated += len(reqs)

		pend := append(kn.pending[r], reqs...)
		// Expire and order in one pass over packed (TimeMin, arrival index)
		// keys — the sort moves 8-byte keys instead of 130-byte requests,
		// and the index tiebreak keeps equal times in arrival order. The
		// survivors are gathered into scratch so the pending buffer's own
		// storage is free to take back the unmatched remainder.
		kn.keyBuf = kn.keyBuf[:0]
		for i := range pend {
			if pend[i].TimeMin+c.opts.PatienceMin < slotStart {
				kn.unserved++
				c.tel.abandonments.Inc()
				continue
			}
			kn.keyBuf = append(kn.keyBuf, uint64(pend[i].TimeMin)<<24|uint64(i))
		}
		slices.Sort(kn.keyBuf)
		kn.reqScratch = kn.reqScratch[:0]
		for _, key := range kn.keyBuf {
			kn.reqScratch = append(kn.reqScratch, pend[key&(1<<24-1)])
		}
		kn.pending[r] = kn.matchRegion(r, kn.reqScratch, pend[:0])
	}
}

// SnapshotLoads records every station's queue pressure for the slot's
// replanning decisions. Serial: runs under the post-match barrier.
func (c *Core) SnapshotLoads() {
	for i, st := range c.stations {
		c.loads[i] = float64(st.QueueLen() - st.Free())
	}
}

// RunMinute advances kernel k's owned world by one minute: station
// perturbations first (so same-minute arrivals see updated state), then the
// merged calendar/charging sweep in ascending taxi ID, then activation of
// this minute's plug-ins.
func (c *Core) RunMinute(k, m int) {
	kn := c.kernels[k]
	kn.beginMinute(m)
	kn.sweep(m)
	kn.activatePlugs()
}

// EndSlot drains crawl energy for kernel k's cruising taxis and queues any
// whose region now belongs to another kernel (post-dropoff migrants) for
// routing at the slot barrier.
func (c *Core) EndSlot(k int) {
	kn := c.kernels[k]
	slotEnd := c.nowMin + c.slotLen
	kn.owned.forEach(func(id int) {
		t := &c.taxis[id]
		if t.state == Cruising {
			accrueCrawl(t, slotEnd, c.opts.CruiseSpeedKmh)
		}
		if c.regionOwner[t.region] != kn.idx {
			kn.outbox = append(kn.outbox, id)
		}
	})
}

// RouteMigrants moves every outboxed taxi to the kernel owning its current
// region, in ascending taxi ID order. Serial: runs only under barriers.
func (c *Core) RouteMigrants() {
	all := c.migrantBuf[:0]
	for _, kn := range c.kernels {
		all = append(all, kn.outbox...)
		kn.outbox = kn.outbox[:0]
	}
	c.migrantBuf = all
	if len(all) == 0 {
		return
	}
	slices.Sort(all)
	for _, id := range all {
		c.kernels[c.taxiOwner[id]].removeOwned(id)
	}
	for _, id := range all {
		dst := c.kernels[c.regionOwner[c.taxis[id].region]]
		dst.adopt(id)
		c.taxiOwner[id] = dst.idx
	}
}

// FinishSlot merges every kernel's slot buffers in canonical order, emits
// buffered events, advances the clock, and finalizes at the horizon.
// Serial: runs under the end-of-slot barrier.
func (c *Core) FinishSlot() {
	slotEnd := c.nowMin + c.slotLen
	c.mergeTrips = c.mergeTrips[:0]
	c.mergeCharges = c.mergeCharges[:0]
	c.mergeEvents = c.mergeEvents[:0]
	for _, kn := range c.kernels {
		c.res.ServedRequests += kn.served
		c.res.UnservedRequests += kn.unserved
		c.generated += kn.generated
		c.invalidActions += kn.invalid
		kn.served, kn.unserved, kn.generated, kn.invalid = 0, 0, 0, 0
		for h, n := range kn.chargeStarts {
			c.res.ChargeStartsByHour[h] += n
		}
		kn.chargeStarts = [24]int{}
		c.mergeTrips = append(c.mergeTrips, kn.trips...)
		kn.trips = kn.trips[:0]
		c.mergeCharges = append(c.mergeCharges, kn.charges...)
		kn.charges = kn.charges[:0]
		c.mergeEvents = append(c.mergeEvents, kn.events...)
		kn.events = kn.events[:0]
	}
	// Canonical orders: (PickupMin, Taxi) and (FinishMin, VehicleID) are
	// unique keys (a taxi starts at most one trip, and finishes at most one
	// session, per minute), so the merged order is a total order independent
	// of kernel count. Sorting the records directly moves ~100-byte structs
	// on every comparison or swap (reflection swappers and generic
	// comparators both showed up as the merge's dominant cost at full
	// scale); instead sort packed (key, index) words and gather once into
	// the slot's chunk. Packing bounds: minutes < 2^20 (~694 days), IDs <
	// 2^24, records per slot < 2^20 — all far above any configured scale.
	if len(c.mergeTrips) > 0 {
		c.keyBuf = c.keyBuf[:0]
		for i := range c.mergeTrips {
			t := &c.mergeTrips[i]
			c.keyBuf = append(c.keyBuf, uint64(t.PickupMin)<<44|uint64(t.Taxi)<<20|uint64(i))
		}
		slices.Sort(c.keyBuf)
		var chunk []TripStat
		c.tripArena, chunk = cutChunk(c.tripArena, len(c.keyBuf))
		for j, key := range c.keyBuf {
			chunk[j] = c.mergeTrips[key&(1<<20-1)]
		}
		c.tripChunks = append(c.tripChunks, chunk)
		c.tripCount += len(chunk)
	}
	if len(c.mergeCharges) > 0 {
		c.keyBuf = c.keyBuf[:0]
		for i := range c.mergeCharges {
			ev := &c.mergeCharges[i]
			c.keyBuf = append(c.keyBuf, uint64(ev.FinishMin)<<44|uint64(ev.VehicleID)<<20|uint64(i))
		}
		slices.Sort(c.keyBuf)
		var chunk []trace.ChargingEvent
		c.chargeArena, chunk = cutChunk(c.chargeArena, len(c.keyBuf))
		for j, key := range c.keyBuf {
			chunk[j] = c.mergeCharges[key&(1<<20-1)]
		}
		c.chargeChunks = append(c.chargeChunks, chunk)
		c.chargeCount += len(chunk)
	}
	if c.rec != nil {
		evs := c.mergeEvents
		slices.SortStableFunc(evs, func(a, b trace.Event) int {
			if a.TimeMin != b.TimeMin {
				return a.TimeMin - b.TimeMin
			}
			if a.Taxi != b.Taxi {
				return a.Taxi - b.Taxi
			}
			if a.Kind != b.Kind {
				return int(a.Kind) - int(b.Kind)
			}
			if a.Region != b.Region {
				return a.Region - b.Region
			}
			if a.A != b.A {
				return a.A - b.A
			}
			if a.B != b.B {
				return a.B - b.B
			}
			switch {
			case a.V < b.V:
				return -1
			case a.V > b.V:
				return 1
			}
			return 0
		})
		for _, ev := range evs {
			c.rec(ev)
		}
	}

	c.nowMin = slotEnd
	c.tel.slots.Inc()
	warmupEnd := c.opts.WarmupDays * 24 * 60
	if slotEnd > warmupEnd {
		c.res.Slots++
	}
	if slotEnd == warmupEnd {
		c.clearAccounting()
	}
	c.invalidateCaches()
	if c.Done() {
		c.finalize()
	}
}

// clearAccounting wipes all ledgers at the warmup boundary while keeping the
// physical fleet state, mirroring the sequential engine.
func (c *Core) clearAccounting() {
	now := c.nowMin
	for i := range c.taxis {
		t := &c.taxis[i]
		t.acct = TaxiAccount{}
		t.slotProfit = 0
		if t.vacantSinceMin < now {
			t.vacantSinceMin = now
		}
		if t.crawlFromMin < now {
			t.crawlFromMin = now
		}
		if t.pickupMin < now {
			t.pickupMin = now
		}
		if t.departMin < now {
			t.departMin = now
		}
		if t.plugMin < now {
			t.plugMin = now
		}
		t.chargeEnergy = 0
		t.chargeCost = 0
		t.chargeSoC0 = t.batt.SoC
	}
	c.res = Results{
		SlotMinutes:  c.slotLen,
		Accounts:     make([]TaxiAccount, len(c.taxis)),
		RegionDemand: make([]int, c.city.Partition.Len()),
		RegionServed: make([]int, c.city.Partition.Len()),
	}
	c.tripChunks = c.tripChunks[:0]
	c.chargeChunks = c.chargeChunks[:0]
	c.tripCount, c.chargeCount = 0, 0
	c.tripArena = c.tripArena[:0]
	c.chargeArena = c.chargeArena[:0]
}

// cutChunk cuts an n-record chunk off the end of the arena, starting a fresh
// block of at least double the previous capacity when the current one cannot
// fit n more. A superseded block stays reachable only through the chunks
// already cut from it — nothing is copied — so chunk storage costs amortized
// O(1) allocations per slot. The chunk's capacity is clipped to its length,
// keeping later arena growth unreachable through it.
func cutChunk[T any](arena []T, n int) (newArena, chunk []T) {
	if cap(arena)-len(arena) < n {
		size := 2 * cap(arena)
		if size < n {
			size = n
		}
		if size < 64 {
			size = 64
		}
		arena = make([]T, 0, size)
	}
	at := len(arena)
	newArena = arena[: at+n : cap(arena)]
	return newArena, newArena[at : at+n : at+n]
}

// finalize flushes open cruise segments, counts never-served requests, and
// copies accounts into Results.
func (c *Core) finalize() {
	if c.finalized {
		return
	}
	c.finalized = true
	for _, kn := range c.kernels {
		for _, r := range kn.regions {
			c.res.UnservedRequests += len(kn.pending[r])
			// Truncate, don't nil: the bucket is the match loop's working
			// storage and the next episode re-pays its growth otherwise.
			kn.pending[r] = kn.pending[r][:0]
		}
	}
	for i := range c.taxis {
		t := &c.taxis[i]
		if t.state == Cruising {
			flushCruise(t, c.endMin)
			accrueCrawl(t, c.endMin, c.opts.CruiseSpeedKmh)
		}
		c.res.Accounts[i] = t.acct
	}
}
