package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/demand"
	"repro/internal/energy"
	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/station"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TaxiState is the simulator's per-vehicle state machine.
type TaxiState int

// Taxi states, mirroring the mobility decomposition of Fig. 1.
const (
	// Cruising: vacant, matchable, receives displacement actions.
	Cruising TaxiState = iota
	// Serving: passenger on board until tripEndMin.
	Serving
	// ToStation: driving to a charging station (part of idle time).
	ToStation
	// Queued: at a station waiting for a point (part of idle time).
	Queued
	// ChargingState: plugged in until the target SoC.
	ChargingState
	// Relocating: executing a Move action; unmatchable until arrival. The
	// time still counts as cruising (the taxi is seeking, just elsewhere).
	Relocating
)

// String implements fmt.Stringer.
func (s TaxiState) String() string {
	switch s {
	case Cruising:
		return "cruising"
	case Serving:
		return "serving"
	case ToStation:
		return "to-station"
	case Queued:
		return "queued"
	case ChargingState:
		return "charging"
	case Relocating:
		return "relocating"
	default:
		return fmt.Sprintf("TaxiState(%d)", int(s))
	}
}

// Options configures a simulation run.
type Options struct {
	// Days is the simulated horizon.
	Days int
	// ChargeTargetSoC is the SoC at which a charging session ends (default 0.95).
	ChargeTargetSoC float64
	// LowSoC is the forced-charge threshold η of the paper (default 0.20):
	// below it only charging actions are valid.
	LowSoC float64
	// AllowChargeSoC is the ceiling below which charging actions are offered
	// (default 0.60): a nearly full taxi is not offered charge actions.
	AllowChargeSoC float64
	// CruiseSpeedKmh is the effective crawl speed while seeking passengers
	// (default 12; slow, with stops).
	CruiseSpeedKmh float64
	// PatienceMin is how long a passenger waits before abandoning the
	// request (default 10 minutes — one slot).
	PatienceMin int
	// WarmupDays runs the fleet for this many days before accounting
	// starts, so metrics reflect steady state rather than the synchronized
	// initial battery levels (the paper evaluates a full month, where
	// start-up transients are negligible). Default 0.
	WarmupDays int
	// NoForecastFeature zeroes the demand-forecast component of every
	// observation. It is the ablation for the paper's "expected number of
	// passengers at the next time slot" global-state feature.
	NoForecastFeature bool
	// LearnedForecast replaces the oracle demand expectation in the
	// observation features with an online-learned predictor (historical
	// slot-of-day profile + real-time correction), matching the paper's
	// "predicted with historical and real-time data". The oracle remains
	// the default so experiments stay comparable.
	LearnedForecast bool
	// BalkFactor controls queue balking: a taxi arriving at a station whose
	// queue is ≥ BalkFactor × its point count drives on to the next nearest
	// station instead of joining (up to maxBalks redirects). Drivers do not
	// join hopeless queues; this bounds the damage of bad station choices
	// for every policy. Default 2; negative disables balking.
	BalkFactor float64
}

// maxBalks caps redirects per charging attempt so a taxi eventually joins
// some queue even when the whole network is saturated.
const maxBalks = 3

// DefaultOptions returns the evaluation defaults.
func DefaultOptions(days int) Options {
	return Options{
		Days:            days,
		ChargeTargetSoC: 0.95,
		LowSoC:          0.20,
		AllowChargeSoC:  0.30,
		CruiseSpeedKmh:  12,
		PatienceMin:     10,
		BalkFactor:      2,
	}
}

func (o *Options) fillDefaults() {
	if o.Days <= 0 {
		o.Days = 1
	}
	if o.ChargeTargetSoC == 0 {
		o.ChargeTargetSoC = 0.95
	}
	if o.LowSoC == 0 {
		o.LowSoC = 0.20
	}
	if o.AllowChargeSoC == 0 {
		o.AllowChargeSoC = 0.30
	}
	if o.CruiseSpeedKmh == 0 {
		o.CruiseSpeedKmh = 12
	}
	if o.PatienceMin == 0 {
		o.PatienceMin = 10
	}
	if o.BalkFactor == 0 {
		o.BalkFactor = 2
	}
}

type taxi struct {
	id     int
	state  TaxiState
	region int
	batt   energy.Battery

	// Serving
	pickupMin  int
	tripEndMin int
	tripDest   int

	// Charging pipeline
	stationID    int
	departMin    int // when it left to charge (start of idle, t3)
	arriveMin    int // when it reaches the station
	plugMin      int
	chargeSoC0   float64
	chargeEnergy float64
	chargeCost   float64

	// balkCount counts redirects within the current charging attempt.
	balkCount int
	// chargeTarget is this session's stop SoC, jittered per event around
	// Options.ChargeTargetSoC: drivers unplug anywhere from "enough to keep
	// working" to a full pack, which is what spreads session durations over
	// the paper's 45-120 minute band (Fig. 3).
	chargeTarget float64

	// Cruise tracking. vacantSinceMin anchors seek-time accounting;
	// crawlFromMin anchors incremental crawl-energy accounting so energy
	// drains slot by slot rather than in a lump at match time.
	vacantSinceMin int
	crawlFromMin   int
	afterCharge    bool // next pickup is the first after a charge
	lastStation    int

	acct TaxiAccount
	// slotProfit accumulates fare − charge cost during the current Step;
	// trainers read it as the monetary part of the slot reward.
	slotProfit float64
}

// Env is the fleet environment.
type Env struct {
	city *synth.City
	opts Options

	slotLen  int
	nowMin   int
	endMin   int
	taxis    []taxi
	stations []*station.State

	demandSrc *rng.Source
	matchSrc  *rng.Source

	// pending holds unserved requests still within their patience window.
	pending []demand.Request

	// nearStations[region] caches the KStations nearest stations.
	nearStations [][]geo.Neighbor

	// per-slot caches. Each is keyed by the slot it was computed for and is
	// invalidated (slot = -1) together with supplySlot at the end of Step and
	// on Reset; between Steps the environment is static, so observation-time
	// fleet scans need to run once per slot, not once per taxi.
	supplySlot int // slot for which supply is valid
	supply     []int
	peSlot     int // slot for which peMean/peVar are valid
	peMean     float64
	peVar      float64
	aggSlot    int // slot for which aggVacant/aggQueued are valid
	aggVacant  int
	aggQueued  int

	// Reusable hot-path scratch. obsBufs holds one feature buffer per taxi
	// (Observation.Features borrows it — see Observe); vacantBuf backs
	// VacantTaxis; reqBuf backs the slot's demand sample; fcCounts backs the
	// predictor's per-region counts; regionCands backs matchRequests'
	// per-region candidate buckets; pendSort is the persistent sorter for
	// pending requests. None of these carry state across slots.
	obsBufs     [][]float64
	vacantBuf   []int
	reqBuf      []demand.Request
	fcCounts    []float64
	regionCands [][]int
	pendSort    reqsByTime

	res Results

	// hooks is the installed fault/perturbation engine (nil = clean run);
	// xh is its optional extended tier (nil unless hooks also implements
	// ExtendedHooks); rec receives the structured event log (nil = none).
	// See hooks.go.
	hooks Hooks
	xh    ExtendedHooks
	rec   Recorder
	// closedNow tracks each station's closure state so the perturbation
	// sweep can emit outage transition events exactly once per edge.
	closedNow []bool
	// staleFeats caches each taxi's last fresh observation features for GPS
	// dropout windows. Lazily allocated on first Observe under hooks.
	staleFeats [][]float64

	// predictor is the learned demand forecaster (when LearnedForecast).
	predictor *forecast.Predictor

	// tel holds pre-resolved telemetry handles (see telemetry.go). All
	// fields nil when telemetry is off; writes then cost nothing.
	tel simTel

	invalidActions int
	finalized      bool
	// generated counts every sampled request since Reset (warmup included),
	// mirroring Core's counter for the request-conservation invariant.
	generated int
}

// stationClosed reports whether station rejects new arrivals at minute m.
func (e *Env) stationClosed(station, m int) bool {
	return e.hooks != nil && e.hooks.StationClosed(station, m)
}

// New constructs an environment over city and resets it with seed.
func New(city *synth.City, opts Options, seed int64) *Env {
	opts.fillDefaults()
	e := &Env{
		city:    city,
		opts:    opts,
		slotLen: city.Config.SlotMinutes,
	}
	// Cache per-region nearest stations.
	n := city.Partition.Len()
	e.nearStations = make([][]geo.Neighbor, n)
	for r := 0; r < n; r++ {
		e.nearStations[r] = city.Stations.Nearest(city.Partition.Region(r).Centroid, KStations)
	}
	e.Reset(seed)
	return e
}

// Reset restores the initial fleet and clears all accounting. The same seed
// reproduces the same demand realization, so baselines are compared on
// identical workloads.
func (e *Env) Reset(seed int64) {
	e.nowMin = 0
	e.endMin = (e.opts.WarmupDays + e.opts.Days) * 24 * 60
	e.demandSrc = rng.SplitStable(seed, "sim-demand")
	e.matchSrc = rng.SplitStable(seed, "sim-match")
	e.taxis = make([]taxi, len(e.city.Fleet))
	for i, v := range e.city.Fleet {
		e.taxis[i] = taxi{
			id:             v.ID,
			state:          Cruising,
			region:         v.HomeRegion,
			batt:           e.city.NewBattery(v),
			vacantSinceMin: 0,
			crawlFromMin:   0,
			lastStation:    -1,
		}
	}
	e.stations = make([]*station.State, e.city.Stations.Len())
	for i := 0; i < e.city.Stations.Len(); i++ {
		e.stations[i] = station.NewState(e.city.Stations.Station(i))
	}
	e.supplySlot = -1
	e.peSlot = -1
	e.aggSlot = -1
	if len(e.obsBufs) != len(e.taxis) {
		e.obsBufs = make([][]float64, len(e.taxis))
	}
	e.pending = nil
	e.closedNow = make([]bool, len(e.stations))
	e.staleFeats = nil
	e.applyBatteryFactors()
	if e.opts.LearnedForecast {
		p, err := forecast.New(e.city.Partition.Len(), e.city.SlotsPerDay())
		if err != nil {
			panic("sim: " + err.Error())
		}
		e.predictor = p
	}
	e.res = Results{
		SlotMinutes:  e.slotLen,
		Accounts:     make([]TaxiAccount, len(e.taxis)),
		RegionDemand: make([]int, e.city.Partition.Len()),
		RegionServed: make([]int, e.city.Partition.Len()),
	}
	e.invalidActions = 0
	e.finalized = false
	e.generated = 0
}

// City returns the underlying synthetic city.
func (e *Env) City() *synth.City { return e.city }

// Now returns the current absolute simulation minute.
func (e *Env) Now() int { return e.nowMin }

// Slot returns the current absolute slot index.
func (e *Env) Slot() int { return e.nowMin / e.slotLen }

// SlotLen returns the slot length in minutes.
func (e *Env) SlotLen() int { return e.slotLen }

// HorizonMin returns the simulation horizon in absolute minutes.
func (e *Env) HorizonMin() int { return e.endMin }

// Done reports whether the horizon has been reached.
func (e *Env) Done() bool { return e.nowMin >= e.endMin }

// InvalidActions returns how many submitted actions violated the mask and
// were coerced (0 for well-behaved policies).
func (e *Env) InvalidActions() int { return e.invalidActions }

// VacantTaxis returns the IDs of taxis awaiting a displacement decision
// this slot, ascending. The slice borrows an environment-owned buffer that
// the next VacantTaxis call (including the one inside Step) rewrites —
// within one slot every call produces identical contents, so holding it
// across a single Step is safe, but callers keeping IDs longer must copy.
func (e *Env) VacantTaxis() []int {
	out := e.vacantBuf[:0]
	for i := range e.taxis {
		if e.taxis[i].state == Cruising {
			out = append(out, i)
		}
	}
	e.vacantBuf = out
	return out
}

// TaxiRegion returns the current region of a taxi.
func (e *Env) TaxiRegion(id int) int { return e.taxis[id].region }

// TaxiSoC returns the current state of charge of a taxi.
func (e *Env) TaxiSoC(id int) float64 { return e.taxis[id].batt.SoC }

// TaxiState returns the state of a taxi.
func (e *Env) TaxiState(id int) TaxiState { return e.taxis[id].state }

// NearStations returns the cached KStations nearest stations for a region.
func (e *Env) NearStations(region int) []geo.Neighbor { return e.nearStations[region] }

// StationState returns the runtime state of a station (read-only use).
func (e *Env) StationState(id int) *station.State { return e.stations[id] }

// regionSupply returns per-region vacant-taxi counts, cached per slot.
func (e *Env) regionSupply() []int {
	slot := e.Slot()
	if e.supplySlot == slot && e.supply != nil {
		return e.supply
	}
	sup := make([]int, e.city.Partition.Len())
	for i := range e.taxis {
		if e.taxis[i].state == Cruising {
			sup[e.taxis[i].region]++
		}
	}
	e.supply = sup
	e.supplySlot = slot
	return sup
}

// ValidMask returns the action-validity mask for a taxi: charging is forced
// below LowSoC, offered below AllowChargeSoC, and move actions exist only
// for real neighbors.
func (e *Env) ValidMask(id int) [NumActions]bool {
	var mask [NumActions]bool
	t := &e.taxis[id]
	mustCharge := t.batt.SoC < e.opts.LowSoC
	mayCharge := t.batt.SoC < e.opts.AllowChargeSoC
	if !mustCharge {
		mask[0] = true
		nbs := e.city.Partition.Region(t.region).Neighbors
		for i := 0; i < len(nbs) && i < MaxNeighbors; i++ {
			mask[1+i] = true
		}
	}
	if mustCharge || mayCharge {
		for k := 0; k < len(e.nearStations[t.region]) && k < KStations; k++ {
			mask[1+MaxNeighbors+k] = true
		}
	}
	return mask
}

// Step applies one displacement action per vacant taxi (missing entries
// default to Stay), generates and matches the slot's passenger demand, and
// advances the world by one time slot. It panics if the episode is done.
func (e *Env) Step(actions map[int]Action) {
	if e.Done() {
		panic("sim: Step after Done")
	}
	slotStart := e.nowMin
	slotEnd := slotStart + e.slotLen

	// Clear per-slot profit accumulators.
	for i := range e.taxis {
		e.taxis[i].slotProfit = 0
	}

	// 1. Apply displacement actions to vacant taxis. Off-duty taxis hold
	// position instead — unless forced charging applies (a shift change
	// never strands a taxi), in which case the action proceeds and the
	// mask coercion below steers it to a charger.
	ids := e.VacantTaxis()
	for _, id := range ids {
		a, ok := actions[id]
		if !ok {
			a = Action{Kind: Stay}
		}
		if e.offDuty(id, slotStart) && e.taxis[id].batt.SoC >= e.opts.LowSoC {
			a = Action{Kind: Stay}
			e.tel.offDutyHolds.Inc()
		}
		e.applyAction(id, a)
	}

	// 2. Generate this slot's requests (under any scenario demand scaling),
	// expire pending ones whose patience ran out, and match the rest
	// oldest-first.
	// Per-region sampling through a reused buffer; looping one source over
	// regions in order with the hook factor inline is exactly
	// Demand.SampleScaled (same draws, same order), minus its per-slot
	// allocations. pending copies the requests out, so reuse is safe.
	reqs := e.reqBuf[:0]
	for region, n := 0, e.city.Partition.Len(); region < n; region++ {
		factor := 1.0
		if e.hooks != nil {
			factor = e.hooks.DemandScale(region, slotStart)
		}
		reqs = e.city.Demand.SampleRegionScaled(reqs, e.demandSrc, region, slotStart, e.slotLen, factor)
	}
	e.reqBuf = reqs
	e.generated += len(reqs)
	for i := range reqs {
		e.res.RegionDemand[reqs[i].OriginRegion]++
	}
	if e.hooks != nil {
		for i := range reqs {
			if f := e.hooks.FareScale(reqs[i].OriginRegion, reqs[i].TimeMin); f != 1 && f >= 0 {
				reqs[i].Fare *= f
			}
		}
	}
	if e.predictor != nil {
		n := e.city.Partition.Len()
		if cap(e.fcCounts) < n {
			e.fcCounts = make([]float64, n)
		}
		counts := e.fcCounts[:n]
		for i := range counts {
			counts[i] = 0
		}
		for _, r := range reqs {
			counts[r.OriginRegion]++
		}
		slot := slotStart / e.slotLen
		for r, c := range counts {
			e.predictor.Observe(r, slot, c)
		}
	}
	e.pending = append(e.pending, reqs...)
	alive := e.pending[:0]
	for _, r := range e.pending {
		if r.TimeMin+e.opts.PatienceMin < slotStart {
			e.res.UnservedRequests++
			e.tel.abandonments.Inc()
			continue
		}
		alive = append(alive, r)
	}
	e.pending = alive
	// sort.Sort over a persistent sort.Interface applies the same pdqsort as
	// sort.Slice (identical comparison/swap sequence) without the per-call
	// closure and swapper allocations.
	e.pendSort.rs = e.pending
	sort.Sort(&e.pendSort)
	e.pendSort.rs = nil
	e.pending = e.matchRequests(e.pending)

	// 3. Advance the world minute by minute. Station perturbations (outage
	// edges, derate changes, queue evictions) apply first so taxis arriving
	// in the same minute see the already-updated station state.
	for m := slotStart; m < slotEnd; m++ {
		e.applyStationPerturbations(m)
		e.advanceMinute(m)
	}

	// 4. Drain crawl energy for taxis still cruising, so the low-SoC
	// trigger fires on time rather than retroactively.
	for i := range e.taxis {
		if e.taxis[i].state == Cruising {
			e.accrueCrawl(&e.taxis[i], slotEnd)
		}
	}
	e.nowMin = slotEnd
	e.tel.slots.Inc()
	warmupEnd := e.opts.WarmupDays * 24 * 60
	if slotEnd > warmupEnd {
		e.res.Slots++
	}
	if slotEnd == warmupEnd {
		e.clearAccounting()
	}
	e.supplySlot = -1 // invalidate per-slot caches
	e.peSlot = -1
	e.aggSlot = -1

	if e.Done() {
		e.finalize()
	}
}

// clearAccounting wipes all ledgers at the warmup boundary while keeping
// the physical fleet state (positions, batteries, queues, pending demand),
// so metrics cover steady-state operation only.
func (e *Env) clearAccounting() {
	now := e.nowMin
	for i := range e.taxis {
		t := &e.taxis[i]
		t.acct = TaxiAccount{}
		t.slotProfit = 0
		if t.vacantSinceMin < now {
			t.vacantSinceMin = now
		}
		if t.crawlFromMin < now {
			t.crawlFromMin = now
		}
		if t.pickupMin < now {
			t.pickupMin = now
		}
		if t.departMin < now {
			t.departMin = now
		}
		if t.plugMin < now {
			t.plugMin = now
		}
		// Bill only the post-warmup share of an in-progress session.
		t.chargeEnergy = 0
		t.chargeCost = 0
		t.chargeSoC0 = t.batt.SoC
	}
	e.res = Results{
		SlotMinutes:  e.slotLen,
		Accounts:     make([]TaxiAccount, len(e.taxis)),
		RegionDemand: make([]int, e.city.Partition.Len()),
		RegionServed: make([]int, e.city.Partition.Len()),
	}
}

// applyAction executes a displacement decision for taxi id, coercing
// mask-invalid submissions to the nearest legal equivalent.
func (e *Env) applyAction(id int, a Action) {
	t := &e.taxis[id]
	mask := e.ValidMask(id)

	idx := -1
	switch a.Kind {
	case Stay:
		idx = 0
	case Move:
		if a.Arg >= 0 && a.Arg < MaxNeighbors {
			idx = 1 + a.Arg
		}
	case Charge:
		if a.Arg >= 0 && a.Arg < KStations {
			idx = 1 + MaxNeighbors + a.Arg
		}
	}
	if idx < 0 || !mask[idx] {
		e.invalidActions++
		// Coerce: if charging is forced, go to the nearest station;
		// otherwise stay.
		if t.batt.SoC < e.opts.LowSoC {
			a = Action{Kind: Charge, Arg: 0}
		} else {
			a = Action{Kind: Stay}
		}
	}

	switch a.Kind {
	case Stay:
		// Nothing: the taxi keeps cruising in place.
	case Move:
		nbs := e.city.Partition.Region(t.region).Neighbors
		dest := nbs[a.Arg]
		distKm := e.city.Partition.Distance(t.region, dest) * demand.RoadFactor
		travelMin := e.travelMinutes(distKm, t.region, e.nowMin)
		// Crawl energy up to now is settled, then the relocation drive is
		// paid in full; the taxi is unmatchable until it arrives. Seek time
		// keeps accruing — relocation is still cruising.
		e.accrueCrawl(t, e.nowMin)
		e.driveTracked(t, distKm)
		e.record(trace.Event{TimeMin: e.nowMin, Taxi: t.id, Region: t.region, Kind: trace.EvMove, A: dest, B: -1})
		e.tel.relocations.Inc()
		t.state = Relocating
		t.arriveMin = e.nowMin + travelMin
		// The hop's energy is paid in full above; crawl resumes at arrival.
		t.crawlFromMin = t.arriveMin
		t.region = dest
	case Charge:
		ns := e.nearStations[t.region]
		st := ns[a.Arg]
		distKm := st.DistKm * demand.RoadFactor
		travelMin := e.travelMinutes(distKm, t.region, e.nowMin)
		// Close the cruise segment: seeking ends, idle begins (t3).
		e.flushCruise(t, e.nowMin)
		e.accrueCrawl(t, e.nowMin)
		e.driveTracked(t, distKm)
		e.record(trace.Event{TimeMin: e.nowMin, Taxi: t.id, Region: t.region, Kind: trace.EvChargeSeek, A: st.Label, B: -1})
		t.state = ToStation
		t.stationID = st.Label
		t.departMin = e.nowMin
		t.arriveMin = e.nowMin + travelMin
		t.balkCount = 0
		t.region = e.city.Stations.Station(st.Label).Region
	}
}

func (e *Env) hourAt(min int) int { return hourAt(min) }

// hourAt returns the hour of day of an absolute minute.
func hourAt(min int) int { return (min / 60) % 24 }

// travelMinutes converts a road distance to whole driving minutes at the
// traffic speed of minute m in the given region, with a one-minute floor.
// The region matters only under a weather perturbation.
func (e *Env) travelMinutes(distKm float64, region, m int) int {
	if s := e.speedScale(region, m); s != 1 {
		return travelMinutesScaled(distKm, m, s)
	}
	return travelMinutesAt(distKm, m)
}

// travelMinutesAt is the engine-independent travel-time rule; both the
// sequential Env and the sharded kernel use it.
func travelMinutesAt(distKm float64, m int) int {
	travelMin := int(math.Ceil(distKm / demand.SpeedKmh(hourAt(m)) * 60))
	if travelMin < 1 {
		travelMin = 1
	}
	return travelMin
}

// travelMinutesScaled is travelMinutesAt under a weather speed multiplier.
// Kept as a separate function so the clean path divides by the exact same
// float as before extended hooks existed.
func travelMinutesScaled(distKm float64, m int, scale float64) int {
	travelMin := int(math.Ceil(distKm / (demand.SpeedKmh(hourAt(m)) * scale) * 60))
	if travelMin < 1 {
		travelMin = 1
	}
	return travelMin
}

// geoDistKm returns the road distance between two points.
func geoDistKm(a, b geo.Point) float64 { return geo.Distance(a, b) * demand.RoadFactor }

// driveTracked consumes energy for km kilometres, accounting the distance
// and any energy deficit from an empty pack exactly.
func (e *Env) driveTracked(t *taxi, km float64) { driveTracked(t, km) }

func driveTracked(t *taxi, km float64) {
	if km <= 0 {
		return
	}
	need := km * t.batt.ConsumptionPerKm
	got := t.batt.Drive(km)
	t.acct.DistanceKm += km
	if need > got {
		t.acct.EnergyDeficitKWh += need - got
	}
}

// flushCruise closes the open cruise (seek-time) segment of a vacant taxi
// at minute m. Time only; crawl energy accrues via accrueCrawl.
func (e *Env) flushCruise(t *taxi, m int) { flushCruise(t, m) }

func flushCruise(t *taxi, m int) {
	if mins := float64(m - t.vacantSinceMin); mins > 0 {
		t.acct.CruiseMin += mins
	}
	t.vacantSinceMin = m
}

// accrueCrawl charges the crawl energy of a vacant taxi for the interval
// since the last accrual up to minute m.
func (e *Env) accrueCrawl(t *taxi, m int) { accrueCrawl(t, m, e.opts.CruiseSpeedKmh) }

func accrueCrawl(t *taxi, m int, cruiseSpeedKmh float64) {
	mins := float64(m - t.crawlFromMin)
	if mins <= 0 {
		return
	}
	t.crawlFromMin = m
	if t.batt.Empty() {
		t.acct.StrandedMin += mins
	}
	driveTracked(t, mins/60*cruiseSpeedKmh)
}

// matchRequests assigns waiting requests to cruising taxis in the same
// region, longest-waiting taxi first in request-time order (Section III-C:
// passengers are served by vacant taxis in the same region). It returns the
// requests left unmatched, which remain pending until their patience runs
// out.
func (e *Env) matchRequests(reqs []demand.Request) (unmatched []demand.Request) {
	// Bucket matchable taxis by region: cruising ones, plus relocating ones
	// at their destination (they can pick up once they arrive). The buckets
	// are dense (regions are small ints) and reused across slots; candidates
	// land in taxi-index order either way.
	if len(e.regionCands) != e.city.Partition.Len() {
		e.regionCands = make([][]int, e.city.Partition.Len())
	}
	byRegion := e.regionCands
	for r := range byRegion {
		byRegion[r] = byRegion[r][:0]
	}
	for i := range e.taxis {
		if s := e.taxis[i].state; s == Cruising || s == Relocating {
			if e.offDuty(i, e.nowMin) {
				continue // shift change: invisible to passengers this slot
			}
			byRegion[e.taxis[i].region] = append(byRegion[e.taxis[i].region], i)
		}
	}
	// Compact unmatched requests in place: the write index never passes the
	// read index, so the aliasing is safe, and the caller assigns the result
	// back over the same backing (e.pending).
	unmatched = reqs[:0]
	for _, req := range reqs {
		cands := byRegion[req.OriginRegion]
		// Pop the longest-waiting candidate (FIFO by vacantSince), a proxy
		// for "nearest" given intra-region uniformity, and fair by default.
		best, bestAt := -1, -1
		for pos, id := range cands {
			t := &e.taxis[id]
			if t.state != Cruising && t.state != Relocating {
				continue
			}
			if best < 0 || t.vacantSinceMin < e.taxis[best].vacantSinceMin {
				best, bestAt = id, pos
			}
		}
		if best < 0 {
			unmatched = append(unmatched, req)
			continue
		}
		// Remove from candidates.
		cands[bestAt] = cands[len(cands)-1]
		byRegion[req.OriginRegion] = cands[:len(cands)-1]
		e.serve(best, req)
	}
	return unmatched
}

// serve puts taxi id on the trip described by req.
func (e *Env) serve(id int, req demand.Request) {
	t := &e.taxis[id]
	// Approach: a short intra-region drive to the passenger. Matching
	// happens at slot boundaries, so the pickup is anchored at the later of
	// the request time and the current slot start.
	approachKm := e.matchSrc.Uniform(0.3, 1.5)
	speed := demand.SpeedKmh(e.hourAt(req.TimeMin))
	if s := e.speedScale(req.OriginRegion, req.TimeMin); s != 1 {
		speed *= s
	}
	approachMin := int(math.Ceil(approachKm / speed * 60))
	start := req.TimeMin
	if e.nowMin > start {
		start = e.nowMin
	}
	if t.state == Relocating && t.arriveMin > start {
		// Mid-relocation match: the pickup waits for the taxi's arrival.
		start = t.arriveMin
	}
	pickup := start + approachMin
	if pickup <= t.vacantSinceMin {
		pickup = t.vacantSinceMin + 1
	}
	cruiseMin := float64(pickup - t.vacantSinceMin)
	e.flushCruise(t, pickup)
	e.accrueCrawl(t, pickup)
	e.driveTracked(t, approachKm+req.DistanceKm)

	durMin := int(math.Ceil(req.DurationMin))
	if durMin < 1 {
		durMin = 1
	}
	t.state = Serving
	t.pickupMin = pickup
	t.tripEndMin = pickup + durMin
	t.tripDest = req.DestRegion

	t.acct.RevenueCNY += req.Fare
	t.acct.Trips++
	t.slotProfit += req.Fare
	e.tel.matches.Inc()
	e.record(trace.Event{TimeMin: pickup, Taxi: id, Region: req.OriginRegion, Kind: trace.EvPickup, A: req.DestRegion, B: -1, V: req.Fare})

	e.res.ServedRequests++
	e.res.RegionServed[req.OriginRegion]++
	e.res.TripStats = append(e.res.TripStats, TripStat{
		Taxi:             id,
		PickupMin:        pickup,
		CruiseMin:        cruiseMin,
		FareCNY:          req.Fare,
		DistanceKm:       req.DistanceKm,
		DurMin:           req.DurationMin,
		Region:           req.OriginRegion,
		DestRegion:       req.DestRegion,
		Pickup:           req.Origin,
		Dropoff:          req.Dest,
		FirstAfterCharge: t.afterCharge,
		ChargedAtStation: chargedStation(t),
	})
	t.afterCharge = false
}

func chargedStation(t *taxi) int {
	if t.afterCharge {
		return t.lastStation
	}
	return -1
}

// advanceMinute progresses every non-cruising taxi by one minute.
func (e *Env) advanceMinute(m int) {
	for i := range e.taxis {
		t := &e.taxis[i]
		switch t.state {
		case Serving:
			if m >= t.tripEndMin {
				t.acct.ServeMin += float64(t.tripEndMin - t.pickupMin)
				e.record(trace.Event{TimeMin: t.tripEndMin, Taxi: t.id, Region: t.tripDest, Kind: trace.EvDropoff, A: -1, B: -1})
				t.state = Cruising
				t.region = t.tripDest
				t.vacantSinceMin = t.tripEndMin
				t.crawlFromMin = t.tripEndMin
			}
		case ToStation:
			if m >= t.arriveMin {
				if e.stationClosed(t.stationID, m) || e.shouldBalk(t) {
					e.balk(t, m)
					break
				}
				t.balkCount = 0
				plugged := e.stations[t.stationID].Arrive(t.id)
				if plugged {
					e.beginCharge(t, m)
				} else {
					t.state = Queued
					e.tel.queueJoins.Inc()
					e.record(trace.Event{TimeMin: m, Taxi: t.id, Region: t.region, Kind: trace.EvQueue, A: t.stationID, B: -1})
				}
			}
		case ChargingState:
			e.chargeMinute(t, m)
		case Queued:
			// Waiting; promotion happens in beginCharge via Finish.
		case Relocating:
			if m >= t.arriveMin {
				t.state = Cruising
				// The relocation drive's energy is already paid; crawl
				// resumes from arrival.
				t.crawlFromMin = m
			}
		case Cruising:
			// Decisions and matching happen at slot granularity.
		}
	}
}

// shouldBalk reports whether the queue at t's target station is hopeless.
func (e *Env) shouldBalk(t *taxi) bool {
	if e.opts.BalkFactor < 0 || t.balkCount >= maxBalks {
		return false
	}
	st := e.stations[t.stationID]
	threshold := e.opts.BalkFactor * float64(st.Station().Points)
	if threshold < 3 {
		threshold = 3
	}
	return float64(st.QueueLen()) >= threshold
}

// balk redirects taxi t away from a hopeless queue (or a closed station),
// continuing the same idle window. The heavy lifting — including the
// all-stations-closed fallback — lives in replanCharge.
func (e *Env) balk(t *taxi, m int) {
	t.balkCount++
	e.tel.balks.Inc()
	e.replanCharge(t, m, trace.EvBalk)
}

// beginCharge marks the plug-in of taxi t at minute m.
func (e *Env) beginCharge(t *taxi, m int) {
	t.state = ChargingState
	t.plugMin = m
	// Drivers unplug anywhere between a quick top-up and a full pack;
	// the spread reproduces Fig. 3's session-length distribution (73.5%
	// in 45-120 min with tails on both sides).
	t.chargeTarget = t.batt.SoC + 0.3 + e.matchSrc.Uniform(0, 0.55)
	if t.chargeTarget > e.opts.ChargeTargetSoC+0.04 {
		t.chargeTarget = e.opts.ChargeTargetSoC + 0.04
	}
	// Keep the target reachable: the charger tapers to a stop at SoC 1.
	if t.chargeTarget > 0.99 {
		t.chargeTarget = 0.99
	}
	t.chargeSoC0 = t.batt.SoC
	t.chargeEnergy = 0
	t.chargeCost = 0
	idle := float64(m - t.departMin)
	t.acct.IdleMin += idle
	e.tel.idleMin.Observe(idle)
	e.res.ChargeStartsByHour[e.hourAt(m)]++
	e.record(trace.Event{TimeMin: m, Taxi: t.id, Region: t.region, Kind: trace.EvPlug, A: t.stationID, B: -1})
}

// chargeMinute advances one minute of charging for t at absolute minute m.
func (e *Env) chargeMinute(t *taxi, m int) {
	ch := e.city.Stations.Station(t.stationID).Charger
	delivered := ch.Charge(&t.batt, 1)
	rate := e.city.Tariff.Rate(e.city.Tariff.BandAt(m))
	if f := e.tariffScale(m); f != 1 {
		rate *= f
	}
	cost := delivered * rate
	t.chargeEnergy += delivered
	t.chargeCost += cost
	t.slotProfit -= cost
	if t.batt.SoC >= t.chargeTarget {
		e.finishCharge(t, m+1)
	}
}

// finishCharge unplugs taxi t at minute m, promotes the queue, and releases
// the taxi back to cruising in the station's region.
func (e *Env) finishCharge(t *taxi, m int) {
	promoted := e.stations[t.stationID].Finish(t.id)
	if promoted >= 0 {
		e.beginCharge(&e.taxis[promoted], m)
	}
	t.acct.ChargeMin += float64(m - t.plugMin)
	t.acct.ChargeCostCNY += t.chargeCost
	t.acct.EnergyKWh += t.chargeEnergy
	t.acct.ChargeEvents++
	e.tel.chargeSessions.Inc()
	e.tel.chargeMin.Observe(float64(m - t.plugMin))
	e.res.ChargeStats = append(e.res.ChargeStats, trace.ChargingEvent{
		VehicleID: t.id,
		StationID: t.stationID,
		ArriveMin: t.departMin,
		PlugMin:   t.plugMin,
		FinishMin: m,
		EnergyKWh: t.chargeEnergy,
		CostCNY:   t.chargeCost,
		StartSoC:  t.chargeSoC0,
		EndSoC:    t.batt.SoC,
	})
	e.record(trace.Event{TimeMin: m, Taxi: t.id, Region: e.city.Stations.Station(t.stationID).Region, Kind: trace.EvUnplug, A: t.stationID, B: -1, V: t.chargeEnergy})
	t.state = Cruising
	t.region = e.city.Stations.Station(t.stationID).Region
	t.vacantSinceMin = m
	t.crawlFromMin = m
	t.afterCharge = true
	t.lastStation = t.stationID
}

// finalize flushes open cruise segments and copies accounts into Results.
func (e *Env) finalize() {
	if e.finalized {
		return
	}
	e.finalized = true
	// Requests still waiting at the horizon are never served.
	e.res.UnservedRequests += len(e.pending)
	e.pending = nil
	for i := range e.taxis {
		t := &e.taxis[i]
		if t.state == Cruising {
			e.flushCruise(t, e.endMin)
			e.accrueCrawl(t, e.endMin)
		}
		// Taxis mid-trip/mid-charge at the horizon keep their open segment
		// unaccounted, matching how the paper truncates at period edges.
		e.res.Accounts[i] = t.acct
	}
}

// Results returns the accounting of the run as a snapshot that stays valid
// across later Reset/Step calls on the same environment. Calling it before
// Done reflects completed activity only.
func (e *Env) Results() *Results {
	snap := e.res
	if !e.finalized {
		snap.Accounts = make([]TaxiAccount, len(e.taxis))
		for i := range e.taxis {
			snap.Accounts[i] = e.taxis[i].acct
		}
	} else {
		snap.Accounts = append([]TaxiAccount(nil), e.res.Accounts...)
	}
	// Copy slice headers' backing data that later runs would otherwise
	// regrow in place.
	snap.TripStats = append([]TripStat(nil), e.res.TripStats...)
	snap.ChargeStats = append([]trace.ChargingEvent(nil), e.res.ChargeStats...)
	snap.RegionDemand = append([]int(nil), e.res.RegionDemand...)
	snap.RegionServed = append([]int(nil), e.res.RegionServed...)
	return &snap
}

// SlotProfit returns the net CNY earned by taxi id during the last Step.
func (e *Env) SlotProfit(id int) float64 { return e.taxis[id].slotProfit }

// peFloorMin stabilizes mid-run PE estimates: a taxi that has been on duty
// only a few minutes would otherwise report a wildly noisy CNY/h figure
// (one early fare → PE of hundreds), which destabilizes the fairness term
// of the learning reward. Final metrics use Results.PEs (exact Eq. 2); this
// floor applies only to the in-run estimates below.
const peFloorMin = 60.0

// PESoFar returns taxi id's cumulative profit efficiency (CNY/h) up to now,
// with the on-duty denominator floored at one hour for stability.
func (e *Env) PESoFar(id int) float64 {
	a := &e.taxis[id].acct
	d := a.OnDutyMin()
	if d < peFloorMin {
		d = peFloorMin
	}
	return a.ProfitCNY() / (d / 60)
}

// FleetPEStats returns the mean and variance of the (floored) cumulative PE
// across taxis that have been on duty — PF(t) of Eq. 3 evaluated mid-run.
// The result is cached per slot (the fleet is static between Steps); the
// two direct passes below add the same terms in the same index order as the
// original collect-then-sum implementation, so the values are bit-identical.
func (e *Env) FleetPEStats() (mean, variance float64) {
	if slot := e.Slot(); e.peSlot == slot {
		return e.peMean, e.peVar
	}
	var n int
	for i := range e.taxis {
		if e.taxis[i].acct.OnDutyMin() > 0 {
			mean += e.PESoFar(i)
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
		for i := range e.taxis {
			if e.taxis[i].acct.OnDutyMin() > 0 {
				d := e.PESoFar(i) - mean
				variance += d * d
			}
		}
		variance /= float64(n)
	}
	e.peSlot, e.peMean, e.peVar = e.Slot(), mean, variance
	return mean, variance
}

// reqsByTime orders requests by arrival minute. A persistent sort.Interface
// value lets Step sort pending requests without sort.Slice's per-call
// closure and reflect-swapper allocations.
type reqsByTime struct{ rs []demand.Request }

func (s *reqsByTime) Len() int           { return len(s.rs) }
func (s *reqsByTime) Less(i, j int) bool { return s.rs[i].TimeMin < s.rs[j].TimeMin }
func (s *reqsByTime) Swap(i, j int)      { s.rs[i], s.rs[j] = s.rs[j], s.rs[i] }
