package sim

import "repro/internal/telemetry"

// simTel holds the environment's pre-resolved telemetry handles. Handles are
// looked up once in SetTelemetry so the per-event cost on the hot path is a
// single atomic add (or nothing at all: nil handles no-op). Every counter
// here is a pure function of the simulation trajectory — no wall-clock, no
// RNG draws — so counts are byte-identical across worker counts and safe to
// compare in determinism tests.
type simTel struct {
	matches        *telemetry.Counter // requests matched to a taxi
	abandonments   *telemetry.Counter // requests whose patience ran out
	balks          *telemetry.Counter // hopeless-queue redirects
	queueEvictions *telemetry.Counter // queued taxis drained from a closed station
	relocations    *telemetry.Counter // Move actions executed
	chargeSessions *telemetry.Counter // completed charging sessions
	queueJoins     *telemetry.Counter // taxis entering a station queue
	outageEdges    *telemetry.Counter // station closure state transitions
	derateChanges  *telemetry.Counter // station derate level changes
	staleObs       *telemetry.Counter // observations served from the GPS-dropout cache
	offDutyHolds   *telemetry.Counter // actions overridden to Stay by a shift change
	slots          *telemetry.Counter // simulated slots stepped
	idleMin        *telemetry.Histogram
	chargeMin      *telemetry.Histogram
}

// SetTelemetry installs (or, with nil, removes) a metrics registry. Like
// hooks and the recorder it persists across Reset, so one registry observes
// every episode run on this environment. Telemetry is strictly write-only
// from the simulation's perspective: nothing in the environment reads a
// counter back, so enabling it cannot perturb the trajectory or RNG streams.
func (e *Env) SetTelemetry(r *telemetry.Registry) { e.tel = newSimTel(r) }

// newSimTel resolves the simulation's handles against a registry (nil
// registry yields all-nil handles, which no-op). Both engines — the
// sequential Env and the sharded Core — use the same handle set, so their
// deterministic counters are directly comparable.
func newSimTel(r *telemetry.Registry) simTel {
	if r == nil {
		return simTel{}
	}
	return simTel{
		matches:        r.Counter("sim.matches"),
		abandonments:   r.Counter("sim.abandonments"),
		balks:          r.Counter("sim.balks"),
		queueEvictions: r.Counter("sim.queue_evictions"),
		relocations:    r.Counter("sim.relocations"),
		chargeSessions: r.Counter("sim.charge_sessions"),
		queueJoins:     r.Counter("sim.queue_joins"),
		outageEdges:    r.Counter("sim.hook.outage_edges"),
		derateChanges:  r.Counter("sim.hook.derate_changes"),
		staleObs:       r.Counter("sim.hook.stale_obs"),
		offDutyHolds:   r.Counter("sim.hook.off_duty_holds"),
		slots:          r.Counter("sim.slots"),
		idleMin:        r.Histogram("sim.idle_min", 0, 240, 16),
		chargeMin:      r.Histogram("sim.charge_min", 0, 240, 16),
	}
}
