package sim

import (
	"testing"

	"repro/internal/synth"
)

// Regression: Results must return a snapshot, not a pointer into the
// environment — evaluating two policies on one shared env used to make the
// first result silently mirror the second.
func TestResultsSnapshotSurvivesReset(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 60)
	runStay(e)
	first := e.Results()
	served1 := first.ServedRequests
	trips1 := len(first.TripStats)

	// A second, different run on the same env must not mutate `first`.
	e.Reset(61)
	for i := 0; i < 30 && !e.Done(); i++ {
		e.Step(nil)
	}
	if first.ServedRequests != served1 || len(first.TripStats) != trips1 {
		t.Fatalf("earlier snapshot mutated by later run: served %d->%d trips %d->%d",
			served1, first.ServedRequests, trips1, len(first.TripStats))
	}
}

// Regression: the warmup period must not leak into the accounting — a
// warmed-up one-day window reports at most one day of on-duty time.
func TestWarmupExcludedFromAccounting(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(62))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(1)
	opts.WarmupDays = 1
	e := New(city, opts, 62)
	runStay(e)
	res := e.Results()
	if res.Slots != 144 {
		t.Fatalf("post-warmup slots = %d, want 144", res.Slots)
	}
	for i, a := range res.Accounts {
		if a.OnDutyMin() > 24*60+1 {
			t.Fatalf("taxi %d accounted %v min over a 1-day window", i, a.OnDutyMin())
		}
	}
}

// Relocating taxis must be unmatchable until arrival but matchable at the
// destination afterwards; their seek time keeps accruing throughout.
func TestRelocatingLifecycle(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(63))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 63)
	id := e.VacantTaxis()[0]
	from := e.TaxiRegion(id)
	nbs := city.Partition.Region(from).Neighbors
	e.Step(map[int]Action{id: {Kind: Move, Arg: 0}})
	// After one slot, the taxi is either cruising at the destination or
	// serving a trip it caught there.
	switch e.TaxiState(id) {
	case Cruising:
		if e.TaxiRegion(id) != nbs[0] {
			t.Fatalf("cruising in region %d, want destination %d", e.TaxiRegion(id), nbs[0])
		}
	case Serving, Relocating:
		// Acceptable: matched mid-slot or still en route on a slow hop.
	default:
		t.Fatalf("unexpected state %v after move", e.TaxiState(id))
	}
}

// Pending requests must persist across slots until patience expires, and
// the accounting must cover every generated request exactly once.
func TestPatienceConservation(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(1)
	opts.PatienceMin = 30 // three slots
	e := New(city, opts, 64)
	runStay(e)
	res := e.Results()
	// Conservation: served + unserved = all generated (pending flushed at
	// the horizon). Generated count is recovered by re-running the demand
	// stream through a second env with identical seed and summing.
	e2 := New(city, opts, 64)
	runStay(e2)
	res2 := e2.Results()
	if res.ServedRequests+res.UnservedRequests != res2.ServedRequests+res2.UnservedRequests {
		t.Fatalf("request conservation differs across identical runs: %d vs %d",
			res.ServedRequests+res.UnservedRequests, res2.ServedRequests+res2.UnservedRequests)
	}
	if res.ServedRequests == 0 || res.UnservedRequests == 0 {
		t.Fatalf("degenerate split served=%d unserved=%d", res.ServedRequests, res.UnservedRequests)
	}
}

// Longer patience must never reduce the served count on the same demand.
func TestPatienceMonotonicity(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(65))
	if err != nil {
		t.Fatal(err)
	}
	served := make([]int, 0, 3)
	for _, patience := range []int{10, 30, 60} {
		opts := DefaultOptions(1)
		opts.PatienceMin = patience
		e := New(city, opts, 65)
		runStay(e)
		served = append(served, e.Results().ServedRequests)
	}
	for i := 1; i < len(served); i++ {
		if served[i] < served[i-1] {
			t.Fatalf("served %v not monotone in patience", served)
		}
	}
}

// Regression: crawl energy drains slot by slot, so a long-vacant taxi's SoC
// must fall steadily rather than in a lump at match time.
func TestCrawlEnergyDrainsPerSlot(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(66))
	if err != nil {
		t.Fatal(err)
	}
	e := New(city, DefaultOptions(1), 66)
	id := e.VacantTaxis()[0]
	prev := e.TaxiSoC(id)
	drops := 0
	for i := 0; i < 12 && !e.Done(); i++ {
		e.Step(nil)
		if e.TaxiState(id) != Cruising {
			break
		}
		cur := e.TaxiSoC(id)
		if cur < prev {
			drops++
		}
		prev = cur
	}
	if drops == 0 {
		t.Fatal("cruising taxi's SoC never dropped across slots")
	}
}

// The charge-target jitter must never strand a taxi in an unreachable
// charging session (target above what the charger can deliver).
func TestChargeSessionsAlwaysTerminate(t *testing.T) {
	city, err := synth.Build(synth.TestConfig(67))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.22
	}
	e := New(city, DefaultOptions(2), 67)
	runStay(e)
	// Any taxi still plugged at the horizon is fine; what must not happen
	// is a session older than ~4 hours (the longest possible full charge).
	for i := range e.taxis {
		if e.taxis[i].state == ChargingState {
			if age := e.Now() - e.taxis[i].plugMin; age > 4*60 {
				t.Fatalf("taxi %d charging for %d min — unreachable target", i, age)
			}
		}
	}
}
