package report

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// smallBundle runs the full pipeline once at test scale and is shared by
// the formatting tests.
var smallBundle *Bundle

func bundle(t *testing.T) *Bundle {
	t.Helper()
	if testing.Short() {
		t.Skip("full report pipeline; skipped in short mode")
	}
	if smallBundle != nil {
		return smallBundle
	}
	// Telemetry on: the shared bundle doubles as coverage that metrics
	// collection rides through the whole pipeline without changing it.
	cfg := DefaultConfig(1, ScaleSmall).WithTelemetry(telemetry.NewRegistry())
	b, err := RunFull(cfg, []float64{0, 0.6, 1})
	if err != nil {
		t.Fatal(err)
	}
	smallBundle = b
	return b
}

func TestRunProducesAllMethods(t *testing.T) {
	b := bundle(t)
	for _, m := range MethodNames {
		res, ok := b.Results[m]
		if !ok {
			t.Fatalf("method %s missing", m)
		}
		if res.ServedRequests == 0 {
			t.Fatalf("method %s served nothing", m)
		}
	}
}

func TestGTOnlyBundleFormatsDataFigures(t *testing.T) {
	b, err := RunGTOnly(DefaultConfig(2, ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func() string{
		"Fig3": b.Fig3, "Fig4": b.Fig4, "Fig5": b.Fig5,
		"Fig6": b.Fig6, "Fig7": b.Fig7, "Fig8": b.Fig8,
	} {
		out := f()
		if !strings.Contains(out, "Fig.") {
			t.Errorf("%s output missing header: %q", name, out)
		}
		if strings.Contains(out, "%!") {
			t.Errorf("%s has formatting error: %q", name, out)
		}
	}
}

func TestComparisonFiguresFormat(t *testing.T) {
	b := bundle(t)
	sections := map[string]func() string{
		"Fig10": b.Fig10, "Fig11": b.Fig11, "Fig12": b.Fig12,
		"Fig13": b.Fig13, "Fig14": b.Fig14, "Fig15": b.Fig15, "Fig16": b.Fig16,
		"Table2": b.Table2, "Table3": b.Table3, "Table4": b.Table4,
	}
	for name, f := range sections {
		out := f()
		if len(out) == 0 {
			t.Errorf("%s empty", name)
		}
		if strings.Contains(out, "%!") {
			t.Errorf("%s has formatting error: %q", name, out)
		}
		if !strings.Contains(out, "FairMove") && name != "Table4" {
			t.Errorf("%s missing FairMove row: %q", name, out)
		}
	}
}

func TestAlphaSweepPopulatesTable4(t *testing.T) {
	b := bundle(t)
	if len(b.Alphas) != 3 || len(b.AlphaRewards) != 3 {
		t.Fatalf("sweep shape: %v %v", b.Alphas, b.AlphaRewards)
	}
	if b.Alphas[0] != 0 || b.Alphas[2] != 1 {
		t.Fatalf("alphas not sorted: %v", b.Alphas)
	}
	out := b.Table4()
	if !strings.Contains(out, "α=0.6") {
		t.Fatalf("Table4 missing swept α: %q", out)
	}
}

func TestAblationsPresent(t *testing.T) {
	b := bundle(t)
	for _, name := range []string{
		"Coordinator", "Coordinator-NoFair", "Coordinator-NearestOnly", "FairMove-NoForecast",
	} {
		if _, ok := b.Ablations[name]; !ok {
			t.Errorf("ablation %s missing", name)
		}
	}
	out := b.FormatAblations()
	if !strings.Contains(out, "Coordinator-NoFair") {
		t.Fatalf("ablation report incomplete: %q", out)
	}
}

func TestFormatAllComplete(t *testing.T) {
	b := bundle(t)
	out := b.FormatAll()
	for _, want := range []string{
		"Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8",
		"Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16",
		"Table II", "Table III", "Table IV", "Ablations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatAll missing section %q", want)
		}
	}
}

func TestRunScenariosProducesGrid(t *testing.T) {
	b := bundle(t)
	outage, err := scenario.NewBuilder("station-outage").
		StationOutage(0, 0, 24*60).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	surge, err := scenario.NewBuilder("demand-surge").
		DemandSurge(-1, 7*60, 10*60, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RunScenarios([]*scenario.Spec{outage, surge}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"station-outage", "demand-surge"} {
		row, ok := b.Scenarios[name]
		if !ok {
			t.Fatalf("scenario %s missing from grid", name)
		}
		for _, m := range MethodNames {
			if _, ok := row[m]; !ok {
				t.Fatalf("scenario %s missing method %s", name, m)
			}
		}
	}
	out := b.FormatScenarioDeltas()
	for _, want := range []string{"scenario station-outage", "scenario demand-surge", "FairMove", "PE", "PF", "Fsp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "%!") {
		t.Fatalf("scenario report has formatting error:\n%s", out)
	}
}

// A scenario from the extended zoo (weather + airport surge) must flow
// through the grid, and the delta table must carry the spatial-fairness
// column next to PE/PF for it — the rider-side view of a fault that drags
// the fleet toward one region.
func TestRunScenariosExtendedZooSpatialColumn(t *testing.T) {
	b := bundle(t)
	storm, err := scenario.NewBuilder("airport-storm").
		Weather(-1, 6*60, 12*60, 0.7).
		AirportSurge(0, 6*60, 10*60, 2.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RunScenarios([]*scenario.Spec{storm}); err != nil {
		t.Fatal(err)
	}
	out := b.FormatScenarioDeltas()
	if !strings.Contains(out, "scenario airport-storm") || !strings.Contains(out, "Fsp") {
		t.Fatalf("extended-zoo scenario missing spatial column:\n%s", out)
	}
	if strings.Contains(out, "%!") || strings.Contains(out, "NaN") {
		t.Fatalf("spatial deltas format badly:\n%s", out)
	}
	// The clean-run comparison summary carries F_spatial too.
	if sum := b.FormatComparisonSummary(); !strings.Contains(sum, "Fsp") {
		t.Fatalf("comparison summary missing Fsp:\n%s", sum)
	}
}

// blackoutSpec closes every station and silences demand for the whole
// horizon — the zero-charge/zero-trip worst case that used to panic inside
// stats.Percentile when the report asked for medians of empty series.
func blackoutSpec(t *testing.T, stations, horizonMin int) *scenario.Spec {
	t.Helper()
	b := scenario.NewBuilder("total-blackout")
	for s := 0; s < stations; s++ {
		b.StationOutage(s, 0, horizonMin)
	}
	b.DemandScale(-1, 0, horizonMin, 0)
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// The headline bugfix regression: a full GT report under total blackout must
// complete — every figure formats, no median/percentile panics, no NaN/Inf
// format escapes — and the telemetry snapshot must explain the silence.
func TestGTOnlyBlackoutScenarioNoPanic(t *testing.T) {
	cfg := DefaultConfig(4, ScaleSmall).WithTelemetry(telemetry.NewRegistry())
	horizon := (cfg.Days + cfg.WarmupDays) * 24 * 60
	cfg.Scenario = blackoutSpec(t, cfg.cityConfig().Stations, horizon)
	b, err := RunGTOnly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func() string{
		"Fig3": b.Fig3, "Fig4": b.Fig4, "Fig5": b.Fig5,
		"Fig6": b.Fig6, "Fig7": b.Fig7, "Fig8": b.Fig8,
	} {
		out := f()
		if strings.Contains(out, "%!") || strings.Contains(out, "NaN") {
			t.Errorf("%s formats badly under blackout: %q", name, out)
		}
	}
	res := b.Results["GT"]
	if res.ServedRequests != 0 || len(res.ChargeStats) != 0 {
		t.Fatalf("blackout leaked activity: served=%d charges=%d",
			res.ServedRequests, len(res.ChargeStats))
	}
	snap, ok := b.Telemetry["GT"]
	if !ok {
		t.Fatal("telemetry snapshot missing for GT")
	}
	if snap.Counters["sim.slots"] == 0 {
		t.Fatal("telemetry recorded no simulated slots")
	}
	if snap.Counters["sim.matches"] != 0 || snap.Counters["sim.charge_sessions"] != 0 {
		t.Fatalf("telemetry contradicts blackout: %v", snap.Counters)
	}
	if out := b.FormatTelemetry(); !strings.Contains(out, "GT") || !strings.Contains(out, "sim.slots") {
		t.Fatalf("FormatTelemetry incomplete: %q", out)
	}
}

// The same blackout through the comparison pipeline: every trained method
// re-evaluated under zero charges and zero trips, with per-cell telemetry
// explaining the deltas.
func TestRunScenariosBlackoutNoPanic(t *testing.T) {
	b := bundle(t)
	horizon := (b.Config.Days + b.Config.WarmupDays) * 24 * 60
	spec := blackoutSpec(t, b.Config.cityConfig().Stations, horizon)
	if err := b.RunScenarios([]*scenario.Spec{spec}); err != nil {
		t.Fatal(err)
	}
	for _, m := range MethodNames {
		res, ok := b.Scenarios["total-blackout"][m]
		if !ok {
			t.Fatalf("method %s missing from blackout grid", m)
		}
		if res.ServedRequests != 0 {
			t.Fatalf("method %s served %d requests under blackout", m, res.ServedRequests)
		}
	}
	out := b.FormatScenarioDeltas()
	if !strings.Contains(out, "total-blackout") {
		t.Fatalf("deltas missing blackout row:\n%s", out)
	}
	if strings.Contains(out, "%!") || strings.Contains(out, "NaN") {
		t.Fatalf("blackout deltas format badly:\n%s", out)
	}
	row, ok := b.ScenarioTelemetry["total-blackout"]
	if !ok {
		t.Fatal("scenario telemetry missing")
	}
	for _, m := range MethodNames {
		if row[m].Counters["sim.matches"] != 0 {
			t.Fatalf("method %s telemetry shows matches under blackout", m)
		}
	}
	if tl := b.FormatTelemetry(); !strings.Contains(tl, "scenario total-blackout") {
		t.Fatalf("FormatTelemetry missing scenario section:\n%s", tl)
	}
}

func TestRunScenariosRejectsUntrainedBundle(t *testing.T) {
	empty := &Bundle{Config: DefaultConfig(1, ScaleSmall)}
	spec, err := scenario.NewBuilder("x").StationOutage(0, 0, 10).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.RunScenarios([]*scenario.Spec{spec}); err == nil {
		t.Fatal("RunScenarios accepted a bundle without trained policies")
	}
}

func TestScaleConfigs(t *testing.T) {
	small := DefaultConfig(1, ScaleSmall).cityConfig()
	def := DefaultConfig(1, ScaleDefault).cityConfig()
	full := DefaultConfig(1, ScaleFull).cityConfig()
	if small.Fleet >= def.Fleet || def.Fleet >= full.Fleet {
		t.Fatalf("scales not increasing: %d %d %d", small.Fleet, def.Fleet, full.Fleet)
	}
	if full.Fleet != 20130 {
		t.Fatalf("full scale fleet = %d, want paper's 20130", full.Fleet)
	}
}

func TestFmtHourSeries(t *testing.T) {
	var s [24]float64
	for i := range s {
		s[i] = float64(i)
	}
	out := fmtHourSeries(s)
	if !strings.Contains(out, "00h:") || !strings.Contains(out, "20h:") {
		t.Fatalf("series format wrong: %q", out)
	}
}
