// Package report regenerates every table and figure of the paper's
// evaluation (Section IV) as formatted text plus raw series. Both the
// benchtab command and the root bench_test.go drive it, so the same code
// path produces the human-readable report and the benchmark measurements.
//
// Experiment index (see DESIGN.md §4): Figs. 3-8 are the data-driven
// findings computed from a ground-truth run; Figs. 10-16 and Tables II-III
// compare the six displacement strategies on identical demand; Table IV
// sweeps the fairness weight α.
package report

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Scale selects the experiment size.
type Scale int

// Experiment scales.
const (
	// ScaleSmall is for unit tests and quick smoke runs (seconds).
	ScaleSmall Scale = iota
	// ScaleDefault is the benchmark scale used in EXPERIMENTS.md (minutes).
	ScaleDefault
	// ScaleFull is the paper's full fleet (hours; -full runs only).
	ScaleFull
)

// Config sizes one report run.
type Config struct {
	Seed             int64
	Scale            Scale
	Days             int // evaluation horizon after warmup
	WarmupDays       int
	PretrainEpisodes int
	TrainEpisodes    int
	Alpha            float64
	// Workers bounds the goroutines used to train and evaluate strategies;
	// <= 0 means GOMAXPROCS. Results are byte-identical for any value.
	Workers int
	// Telemetry, when non-nil, aggregates metrics from every training and
	// evaluation run into the registry (the CLIs pass theirs for periodic
	// dumps) and captures a per-method snapshot in Bundle.Telemetry /
	// Bundle.ScenarioTelemetry. Each evaluation uses its own short-lived
	// registry so concurrent methods don't mix, then merges into this one.
	// Telemetry is write-only — nothing reads a metric back into the run —
	// so enabling it never changes results.
	Telemetry *telemetry.Registry
	// Scenario, when non-nil, conditions every evaluation with the fault
	// schedule (the -scenario flag of benchtab's gt-only mode). Validate
	// against the city before running; Run/RunGTOnly do so.
	Scenario *scenario.Spec
	// PolicyPath, when non-empty, warm-starts FairMove from a checkpoint
	// file (benchtab's -policy flag) instead of training it, so comparison
	// grids and scenario sweeps reload a trained artifact rather than pay
	// the training cost per run. The checkpoint must have been written under
	// the same core configuration (seed, α, hyperparameters); mismatches
	// fail closed.
	PolicyPath string
}

// WithTelemetry returns a copy of the Config with the registry installed.
func (c Config) WithTelemetry(r *telemetry.Registry) Config {
	c.Telemetry = r
	return c
}

// DefaultConfig returns the configuration for a scale.
func DefaultConfig(seed int64, scale Scale) Config {
	c := Config{
		Seed:             seed,
		Scale:            scale,
		Days:             2,
		WarmupDays:       1,
		PretrainEpisodes: 4,
		TrainEpisodes:    6,
		Alpha:            0.6,
	}
	if scale == ScaleSmall {
		c.Days = 1
		c.PretrainEpisodes = 1
		c.TrainEpisodes = 1
	}
	return c
}

// cityConfig maps a scale to a synthetic-city configuration.
func (c Config) cityConfig() synth.Config {
	switch c.Scale {
	case ScaleFull:
		return synth.FullScaleConfig(c.Seed)
	case ScaleSmall:
		return synth.Config{
			Seed: c.Seed, Regions: 40, Stations: 10, Fleet: 120,
			TripsPerDay: 15 * 120, SlotMinutes: 10,
		}
	default:
		return synth.Config{
			Seed: c.Seed, Regions: 75, Stations: 18, Fleet: 300,
			TripsPerDay: 15 * 300, SlotMinutes: 10,
		}
	}
}

// MethodNames is the report order of the compared strategies.
var MethodNames = []string{"GT", "SD2", "TQL", "DQN", "TBA", "FairMove"}

// Bundle holds everything needed to print the full report.
type Bundle struct {
	Config  Config
	City    *synth.City
	Results map[string]*sim.Results // by method name
	// AlphaRewards maps swept α values to the final-episode mean reward
	// (Table IV); AlphaPE and AlphaPF are the evaluated fleet metrics of
	// each α-trained policy. Populated by RunAlphaSweep.
	Alphas       []float64
	AlphaRewards []float64
	AlphaPE      []float64
	AlphaPF      []float64
	// Ablations maps ablation names to results (populated by RunAblations).
	Ablations map[string]*sim.Results

	// Scenarios maps scenario name → method → results under that fault
	// schedule, and ScenarioOrder preserves run order for formatting.
	// Populated by RunScenarios.
	Scenarios     map[string]map[string]*sim.Results
	ScenarioOrder []string

	// Telemetry maps method → the simulation-counter snapshot of its clean
	// evaluation; ScenarioTelemetry adds the same per scenario. Populated
	// only when Config.Telemetry is set; FormatTelemetry prints both and
	// diffs each scenario cell against the method's clean run.
	Telemetry         map[string]telemetry.Snapshot
	ScenarioTelemetry map[string]map[string]telemetry.Snapshot

	// policyCache retains the trained policies so ablations and scenario
	// runs can re-evaluate them under modified environments.
	policyCache map[string]policy.Policy
}

// simOptions returns the shared evaluation protocol.
func (c Config) simOptions() sim.Options {
	opts := sim.DefaultOptions(c.Days)
	opts.WarmupDays = c.WarmupDays
	return opts
}

// evaluate runs p on a fresh environment over the bundle's city.
func (c Config) evaluate(city *synth.City, p policy.Policy) *sim.Results {
	res, _ := c.evaluateTel(city, p)
	return res
}

// evaluateTel is evaluate plus conditioning and observability: the fault
// schedule in c.Scenario (if any) is attached to the fresh environment, and
// when c.Telemetry is set the run writes to a private registry whose final
// snapshot is returned and merged into c.Telemetry. The private registry
// keeps concurrent evaluations separable per method; its counters are pure
// functions of the trajectory, so the snapshot is deterministic.
func (c Config) evaluateTel(city *synth.City, p policy.Policy) (*sim.Results, telemetry.Snapshot) {
	env := sim.New(city, c.simOptions(), c.Seed)
	if c.Scenario != nil {
		if _, err := scenario.Attach(env, c.Scenario); err != nil {
			// Run/RunGTOnly validate the spec against the city up front, so
			// this is a programmer error, not an input error.
			panic("report: " + err.Error())
		}
	}
	var reg *telemetry.Registry
	if c.Telemetry != nil {
		reg = telemetry.NewRegistry()
		env.SetTelemetry(reg)
	}
	res := policy.Evaluate(p, env, c.Seed+1000)
	snap := reg.Snapshot()
	c.Telemetry.Merge(snap)
	return res, snap
}

// BuildPolicies constructs and trains the six strategies with the shared
// teacher-guided protocol. Each learner trains on its own worker with its
// own teacher instance — the teacher re-derives all per-episode state from
// the episode seed, so separate instances demonstrate identical behavior
// and the result is byte-identical to the old shared-teacher serial loop
// for any worker count.
func (c Config) BuildPolicies(city *synth.City) map[string]policy.Policy {
	builders := []func() policy.Policy{
		func() policy.Policy { return policy.NewGroundTruth() },
		func() policy.Policy { return policy.NewSD2() },
		func() policy.Policy {
			tql := policy.NewTQL(c.Alpha)
			tql.SetTelemetry(c.Telemetry)
			tql.Pretrain(city, policy.NewCoordinator(), c.PretrainEpisodes, 1, c.Seed)
			tql.Train(city, c.TrainEpisodes, 1, c.Seed)
			return tql
		},
		func() policy.Policy {
			dqn := policy.NewDQN(c.Alpha, c.Seed)
			dqn.Workers = c.Workers
			dqn.SetTelemetry(c.Telemetry)
			dqn.Pretrain(city, policy.NewCoordinator(), c.PretrainEpisodes, 1, c.Seed)
			dqn.Train(city, (c.TrainEpisodes+1)/2, 1, c.Seed)
			return dqn
		},
		func() policy.Policy {
			tba := policy.NewTBA(c.Seed)
			tba.Workers = c.Workers
			tba.SetTelemetry(c.Telemetry)
			tba.Pretrain(city, policy.NewCoordinator(), c.PretrainEpisodes, 1, c.Seed)
			tba.Train(city, (c.TrainEpisodes+1)/2, 1, c.Seed)
			return tba
		},
		func() policy.Policy {
			ccfg := core.DefaultConfig(c.Alpha, c.Seed)
			ccfg.Workers = c.Workers
			fm, err := core.New(ccfg)
			if err != nil {
				panic("report: " + err.Error())
			}
			fm.SetTelemetry(c.Telemetry)
			if c.PolicyPath != "" {
				if _, err := checkpoint.ReadFile(c.PolicyPath, fm); err != nil {
					panic("report: load policy: " + err.Error())
				}
				return fm
			}
			fm.Pretrain(city, policy.NewCoordinator(), c.PretrainEpisodes, 1, c.Seed)
			fm.Train(city, c.TrainEpisodes, 1, c.Seed)
			return fm
		},
	}
	pols, _ := parallel.Map(context.Background(), c.Workers, len(builders),
		func(_ context.Context, i int) (policy.Policy, error) { return builders[i](), nil })
	out := make(map[string]policy.Policy, len(pols))
	for i, name := range MethodNames {
		out[name] = pols[i]
	}
	return out
}

// Run executes the whole comparison and returns the bundle.
func Run(cfg Config) (*Bundle, error) {
	city, err := synth.Build(cfg.cityConfig())
	if err != nil {
		return nil, err
	}
	if cfg.Scenario != nil {
		if err := scenario.ValidateFor(cfg.Scenario, city); err != nil {
			return nil, err
		}
	}
	pols := cfg.BuildPolicies(city)
	results, snaps := cfg.evaluateAll(city, pols)
	b := &Bundle{
		Config:      cfg,
		City:        city,
		Results:     results,
		Telemetry:   snaps,
		Ablations:   make(map[string]*sim.Results),
		policyCache: pols,
	}
	return b, nil
}

// evalCell pairs one evaluation's results with its telemetry snapshot so
// parallel fan-outs keep the two aligned per method.
type evalCell struct {
	res  *sim.Results
	snap telemetry.Snapshot
}

// evaluateAll evaluates every policy on its own worker and private
// environment, reducing into the results map in MethodNames order. The
// snapshot map is nil when telemetry is off.
func (c Config) evaluateAll(city *synth.City, pols map[string]policy.Policy) (map[string]*sim.Results, map[string]telemetry.Snapshot) {
	cells, _ := parallel.Map(context.Background(), c.Workers, len(MethodNames),
		func(_ context.Context, i int) (evalCell, error) {
			res, snap := c.evaluateTel(city, pols[MethodNames[i]])
			return evalCell{res: res, snap: snap}, nil
		})
	out := make(map[string]*sim.Results, len(cells))
	var snaps map[string]telemetry.Snapshot
	if c.Telemetry != nil {
		snaps = make(map[string]telemetry.Snapshot, len(cells))
	}
	for i, name := range MethodNames {
		out[name] = cells[i].res
		if snaps != nil {
			snaps[name] = cells[i].snap
		}
	}
	return out, snaps
}

// RunGTOnly executes just the ground-truth run (enough for Figs. 3-8).
func RunGTOnly(cfg Config) (*Bundle, error) {
	city, err := synth.Build(cfg.cityConfig())
	if err != nil {
		return nil, err
	}
	if cfg.Scenario != nil {
		if err := scenario.ValidateFor(cfg.Scenario, city); err != nil {
			return nil, err
		}
	}
	res, snap := cfg.evaluateTel(city, policy.NewGroundTruth())
	b := &Bundle{
		Config:    cfg,
		City:      city,
		Results:   map[string]*sim.Results{"GT": res},
		Ablations: make(map[string]*sim.Results),
	}
	if cfg.Telemetry != nil {
		b.Telemetry = map[string]telemetry.Snapshot{"GT": snap}
	}
	return b, nil
}

// RunAlphaSweep trains a fresh FairMove per α and records the final-episode
// mean decision reward (Table IV).
func (b *Bundle) RunAlphaSweep(alphas []float64) error {
	sorted := append([]float64(nil), alphas...)
	sort.Float64s(sorted)
	b.Alphas = sorted
	b.AlphaRewards = make([]float64, len(sorted))
	b.AlphaPE = make([]float64, len(sorted))
	b.AlphaPF = make([]float64, len(sorted))
	// Each α trains and evaluates on its own worker with a private FairMove
	// and teacher; the slices index by sorted-α position, so the sweep is
	// byte-identical for any worker count.
	return parallel.ForEach(context.Background(), b.Config.Workers, len(sorted),
		func(_ context.Context, i int) error {
			cfg := core.DefaultConfig(sorted[i], b.Config.Seed)
			cfg.Workers = b.Config.Workers
			fm, err := core.New(cfg)
			if err != nil {
				return err
			}
			fm.Pretrain(b.City, policy.NewCoordinator(), b.Config.PretrainEpisodes, 1, b.Config.Seed)
			st := fm.Train(b.City, b.Config.TrainEpisodes, 1, b.Config.Seed)
			if len(st.MeanReward) > 0 {
				b.AlphaRewards[i] = st.MeanReward[len(st.MeanReward)-1]
			}
			res := b.Config.evaluate(b.City, fm)
			b.AlphaPE[i] = metrics.FleetPE(res)
			b.AlphaPF[i] = metrics.ProfitFairness(res)
			return nil
		})
}

// RunScenarios re-evaluates every already-trained policy under each
// perturbation scenario, on identical fault schedules: specs are data, so
// method M and method N see byte-identical outages, surges, and dropouts.
// Results land in b.Scenarios[spec.Name][method]; FormatScenarioDeltas
// prints the per-scenario PE/PF deltas against the clean run. Requires a
// bundle built by Run or RunFull (the trained policies are reused, not
// retrained — scenario scores measure robustness, not adaptation).
func (b *Bundle) RunScenarios(specs []*scenario.Spec) error {
	if b.policyCache == nil {
		return fmt.Errorf("report: RunScenarios needs a bundle built by Run or RunFull")
	}
	for _, spec := range specs {
		if err := scenario.ValidateFor(spec, b.City); err != nil {
			return err
		}
	}
	if b.Scenarios == nil {
		b.Scenarios = make(map[string]map[string]*sim.Results)
	}
	methods := b.methodsPresent()
	// Fan out over (scenario, method) pairs; each cell owns a private env,
	// so the grid reduces identically for any worker count.
	n := len(specs) * len(methods)
	cells, err := parallel.Map(context.Background(), b.Config.Workers, n,
		func(_ context.Context, i int) (evalCell, error) {
			spec, method := specs[i/len(methods)], methods[i%len(methods)]
			cfg := b.Config
			cfg.Scenario = spec
			res, snap := cfg.evaluateTel(b.City, b.policyCache[method])
			return evalCell{res: res, snap: snap}, nil
		})
	if err != nil {
		return err
	}
	if b.Config.Telemetry != nil && b.ScenarioTelemetry == nil {
		b.ScenarioTelemetry = make(map[string]map[string]telemetry.Snapshot)
	}
	for si, spec := range specs {
		row := make(map[string]*sim.Results, len(methods))
		var snaps map[string]telemetry.Snapshot
		if b.Config.Telemetry != nil {
			snaps = make(map[string]telemetry.Snapshot, len(methods))
		}
		for mi, m := range methods {
			row[m] = cells[si*len(methods)+mi].res
			if snaps != nil {
				snaps[m] = cells[si*len(methods)+mi].snap
			}
		}
		b.Scenarios[spec.Name] = row
		if snaps != nil {
			b.ScenarioTelemetry[spec.Name] = snaps
		}
		b.ScenarioOrder = append(b.ScenarioOrder, spec.Name)
	}
	return nil
}

// FormatScenarioDeltas prints, for every scenario run, each method's PE
// and PF with the relative change against its own clean-run score — the
// robustness table of the scenario-conditioned evaluation.
func (b *Bundle) FormatScenarioDeltas() string {
	var sb strings.Builder
	sb.WriteString("Scenario-conditioned evaluation (Δ vs clean run)\n")
	for _, name := range b.ScenarioOrder {
		row := b.Scenarios[name]
		fmt.Fprintf(&sb, "  scenario %s:\n", name)
		for _, m := range b.methodsPresent() {
			res, ok := row[m]
			if !ok {
				continue
			}
			clean := b.Results[m]
			pe, pf := metrics.FleetPE(res), metrics.ProfitFairness(res)
			cpe, cpf := metrics.FleetPE(clean), metrics.ProfitFairness(clean)
			fsp, cfsp := metrics.SpatialFairness(res), metrics.SpatialFairness(clean)
			fmt.Fprintf(&sb, "    %-10s PE %8.2f (%+6.1f%%)   PF %10.2f (%+6.1f%%)   Fsp %5.3f (%+6.1f%%)\n",
				m, pe, pctDelta(cpe, pe), pf, pctDelta(cpf, pf), fsp, pctDelta(cfsp, fsp))
		}
	}
	return sb.String()
}

// FormatTelemetry prints each method's clean-run simulation counters and,
// for every scenario, the counter deltas against that method's clean
// snapshot — the mechanism companion to FormatScenarioDeltas' score table
// (a PE drop reads differently next to "abandonments +412, charge_sessions
// -97" than next to nothing). Returns "" when telemetry was off.
func (b *Bundle) FormatTelemetry() string {
	if len(b.Telemetry) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("Telemetry (per-evaluation simulation counters)\n")
	for _, m := range b.methodsPresent() {
		snap, ok := b.Telemetry[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "  %-10s %s\n", m, counterLine(snap))
	}
	for _, name := range b.ScenarioOrder {
		row := b.ScenarioTelemetry[name]
		if len(row) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  scenario %s (Δ counters vs clean):\n", name)
		for _, m := range b.methodsPresent() {
			snap, ok := row[m]
			if !ok {
				continue
			}
			fmt.Fprintf(&sb, "    %-10s %s\n", m, deltaLine(b.Telemetry[m], snap))
		}
	}
	return sb.String()
}

// counterLine formats a snapshot's counters as sorted name=value pairs.
func counterLine(s telemetry.Snapshot) string {
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.Counters[k]))
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, " ")
}

// deltaLine formats the nonzero counter differences of cur minus clean.
func deltaLine(clean, cur telemetry.Snapshot) string {
	seen := make(map[string]struct{}, len(clean.Counters)+len(cur.Counters))
	for k := range clean.Counters {
		seen[k] = struct{}{}
	}
	for k := range cur.Counters {
		seen[k] = struct{}{}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		if d := cur.Counters[k] - clean.Counters[k]; d != 0 {
			parts = append(parts, fmt.Sprintf("%s%+d", k+"=", d))
		}
	}
	if len(parts) == 0 {
		return "(no change)"
	}
	return strings.Join(parts, " ")
}

// pctDelta returns the relative change from base to v in percent, or 0
// when the base is zero (nothing meaningful to normalize by).
func pctDelta(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}

// nearestOnly wraps a policy, forcing every charge decision to the nearest
// station — the station-choice ablation.
type nearestOnly struct{ inner policy.Policy }

func (n nearestOnly) Name() string         { return n.inner.Name() + "-NearestOnly" }
func (n nearestOnly) BeginEpisode(s int64) { n.inner.BeginEpisode(s) }
func (n nearestOnly) Act(env sim.Environment, v []int) map[int]sim.Action {
	acts := n.inner.Act(env, v)
	for id, a := range acts {
		if a.Kind == sim.Charge {
			acts[id] = sim.Action{Kind: sim.Charge, Arg: 0}
		}
	}
	return acts
}

// RunAblations evaluates the design-choice ablations of DESIGN.md §5:
// fairness-aware assignment, queue-aware station choice, and the demand
// forecast feature.
func (b *Bundle) RunAblations() {
	cfg := b.Config

	coord := policy.NewCoordinator()
	b.Ablations["Coordinator"] = cfg.evaluate(b.City, coord)

	noFair := policy.NewCoordinator()
	noFair.FairShare = false
	b.Ablations["Coordinator-NoFair"] = cfg.evaluate(b.City, noFair)

	b.Ablations["Coordinator-NearestOnly"] = cfg.evaluate(b.City, nearestOnly{policy.NewCoordinator()})

	// Forecast ablation: the trained FairMove policy evaluated with the
	// forecast feature zeroed out of every observation. Re-training is not
	// needed — evaluating blind shows how much weight the policy put on
	// that feature.
	if p, ok := b.policyCache["FairMove"]; ok {
		opts := cfg.simOptions()
		opts.NoForecastFeature = true
		env := sim.New(b.City, opts, cfg.Seed)
		b.Ablations["FairMove-NoForecast"] = policy.Evaluate(p, env, cfg.Seed+1000)
	}
}

// RunFull is Run plus the alpha sweep and ablations.
func RunFull(cfg Config, alphas []float64) (*Bundle, error) {
	b, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	if len(alphas) > 0 {
		if err := b.RunAlphaSweep(alphas); err != nil {
			return nil, err
		}
	}
	b.RunAblations()
	return b, nil
}

// gt returns the ground-truth results, which every comparison references.
func (b *Bundle) gt() *sim.Results { return b.Results["GT"] }

// row formats one per-method line prefixed with the method name.
func row(name, body string) string { return fmt.Sprintf("  %-10s %s\n", name, body) }

func (b *Bundle) methodsPresent() []string {
	var out []string
	for _, m := range MethodNames {
		if _, ok := b.Results[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// FormatComparisonSummary prints the headline Comparison of every method.
func (b *Bundle) FormatComparisonSummary() string {
	var sb strings.Builder
	sb.WriteString("Headline comparison vs ground truth\n")
	g := b.gt()
	for _, m := range b.methodsPresent() {
		sb.WriteString("  " + metrics.Compare(m, g, b.Results[m]).String() + "\n")
	}
	return sb.String()
}

// cdfPoints formats an empirical CDF at fixed probes.
func cdfPoints(xs []float64, probes []float64) string {
	c := stats.NewCDF(xs)
	parts := make([]string, len(probes))
	for i, p := range probes {
		parts[i] = fmt.Sprintf("P(≤%.0fmin)=%.0f%%", p, c.At(p)*100)
	}
	return strings.Join(parts, " ")
}
