package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig3 reproduces the charging-time distribution finding: the paper reports
// 73.5% of charging events lasting 45-120 minutes.
func (b *Bundle) Fig3() string {
	times := b.gt().ChargeTimes()
	var sb strings.Builder
	sb.WriteString("Fig. 3 — Charging time distribution (GT)\n")
	if len(times) == 0 {
		sb.WriteString("  no charging events\n")
		return sb.String()
	}
	h := stats.NewHistogram(0, 240, 16) // 15-min bins
	for _, t := range times {
		h.Add(t)
	}
	inBand := h.FractionInRange(45, 120)
	med, _ := stats.Median(times)
	sb.WriteString(fmt.Sprintf("  events=%d median=%.0fmin in[45,120)min=%.1f%% (paper: 73.5%%)\n",
		len(times), med, inBand*100))
	for i := 0; i < len(h.Counts); i += 2 {
		lo := h.Min + float64(i)*15
		sb.WriteString(fmt.Sprintf("  %3.0f-%3.0f min: %5.1f%%\n", lo, lo+30, h.Fraction(i, i+2)*100))
	}
	return sb.String()
}

// Fig4 reproduces the charging peaks: the paper observes plug-in surges in
// the cheap bands 2:00-6:00, 12:00-14:00, and 17:00-18:00.
func (b *Bundle) Fig4() string {
	counts := b.gt().ChargeStartsByHour
	var sb strings.Builder
	sb.WriteString("Fig. 4 — Charging events per hour of day (GT)\n")
	var total, offPeak int
	for h, c := range counts {
		total += c
		if (h >= 2 && h < 6) || h == 12 || h == 13 || h == 17 {
			offPeak += c
		}
	}
	if total == 0 {
		sb.WriteString("  no charging events\n")
		return sb.String()
	}
	sb.WriteString(fmt.Sprintf("  off-peak-band share=%.1f%% (uniform would be %.1f%%)\n",
		float64(offPeak)/float64(total)*100, 7.0/24*100))
	for h := 0; h < 24; h += 2 {
		c := counts[h] + counts[h+1]
		bar := strings.Repeat("#", c*40/max(total, 1))
		sb.WriteString(fmt.Sprintf("  %02d-%02dh %4d %s\n", h, h+2, c, bar))
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig5 reproduces the first-cruise-time CDF after charging: the paper finds
// 40% of e-taxis find their first passenger within 10 minutes while 10%
// cruise over an hour.
func (b *Bundle) Fig5() string {
	mins, _ := b.gt().FirstCruiseTimes()
	var sb strings.Builder
	sb.WriteString("Fig. 5 — First cruise time after charging, CDF (GT)\n")
	if len(mins) == 0 {
		sb.WriteString("  no post-charge trips\n")
		return sb.String()
	}
	sb.WriteString(fmt.Sprintf("  n=%d %s (paper: ≤10min≈40%%, >60min≈10%%)\n",
		len(mins), cdfPoints(mins, []float64{10, 20, 30, 60, 90})))
	return sb.String()
}

// Fig6 reproduces the per-station first-cruise differences: three stations
// with clearly different post-charge seek times.
func (b *Bundle) Fig6() string {
	mins, sts := b.gt().FirstCruiseTimes()
	var sb strings.Builder
	sb.WriteString("Fig. 6 — First cruise time by charging station (GT)\n")
	byStation := make(map[int][]float64)
	for i, m := range mins {
		byStation[sts[i]] = append(byStation[sts[i]], m)
	}
	type entry struct {
		id   int
		n    int
		mean float64
	}
	var entries []entry
	for id, xs := range byStation {
		if len(xs) >= 5 {
			entries = append(entries, entry{id, len(xs), stats.Mean(xs)})
		}
	}
	if len(entries) < 3 {
		sb.WriteString("  insufficient per-station samples\n")
		return sb.String()
	}
	sort.Slice(entries, func(a, c int) bool { return entries[a].mean < entries[c].mean })
	pick := []entry{entries[0], entries[len(entries)/2], entries[len(entries)-1]}
	for _, e := range pick {
		sb.WriteString(fmt.Sprintf("  station CS-%03d: n=%d mean first cruise=%.1f min\n", e.id, e.n, e.mean))
	}
	spread := pick[2].mean - pick[0].mean
	sb.WriteString(fmt.Sprintf("  spread across stations=%.1f min (paper: large differences)\n", spread))
	return sb.String()
}

// Fig7 reproduces the per-trip revenue heatmap finding: mean fares range
// from several CNY to over 100 CNY across regions, the airport is always
// expensive, and rush hours have more high-fare regions than late night.
func (b *Bundle) Fig7() string {
	var sb strings.Builder
	sb.WriteString("Fig. 7 — Mean per-trip revenue by region and time of day\n")
	m := b.City.Demand
	src := rng.SplitStable(b.Config.Seed, "fig7")
	windows := []struct {
		name string
		hour int
	}{
		{"late night (00-01h)", 0},
		{"morning rush (08-09h)", 8},
		{"evening rush (18-19h)", 18},
	}
	archeOf := m.Archetypes()
	for _, w := range windows {
		var fares []float64
		var airport float64
		for r := 0; r < b.City.Partition.Len(); r++ {
			f := m.ExpectedFare(r, w.hour)
			fares = append(fares, f)
			if archeOf[r] == demand.Airport {
				airport = f
			}
		}
		s := stats.Summarize(fares)
		sb.WriteString(fmt.Sprintf("  %-22s min=%.0f median=%.0f max=%.0f airport=%.0f CNY\n",
			w.name, s.Min, s.Median, s.Max, airport))
	}
	// Monte-Carlo check of the analytic table on a sample region.
	mc := m.MeanFare(src, 0, 18, 100)
	sb.WriteString(fmt.Sprintf("  (analytic vs sampled fare, region 0 @18h: %.0f vs %.0f CNY)\n",
		m.ExpectedFare(0, 18), mc))
	return sb.String()
}

// Fig8 reproduces the profit-inequality finding: the paper reports the 20th
// percentile of hourly PE below 36 and the 80th above 51 — a 42% gap.
func (b *Bundle) Fig8() string {
	pes := b.gt().PEs()
	var sb strings.Builder
	sb.WriteString("Fig. 8 — Hourly profit efficiency across e-taxis, CDF (GT)\n")
	if len(pes) == 0 {
		sb.WriteString("  no on-duty taxis\n")
		return sb.String()
	}
	p20, _ := stats.Percentile(pes, 20)
	p50, _ := stats.Percentile(pes, 50)
	p80, _ := stats.Percentile(pes, 80)
	gap := 0.0
	if p20 > 0 {
		gap = (p80 - p20) / p20 * 100
	}
	sb.WriteString(fmt.Sprintf("  n=%d P20=%.1f P50=%.1f P80=%.1f CNY/h top-vs-bottom gap=%.0f%% (paper: P20≈36 P50≈45 P80≈51, gap 42%%)\n",
		len(pes), p20, p50, p80, gap))
	sb.WriteString(fmt.Sprintf("  PF (variance)=%.1f Gini=%.3f\n", stats.Variance(pes), stats.Gini(pes)))
	return sb.String()
}

// Fig10 reproduces the per-trip cruise time distributions by method. The
// paper's GT median is 6.5 min, dropping to 5.4 under FairMove with smaller
// variance.
func (b *Bundle) Fig10() string {
	var sb strings.Builder
	sb.WriteString("Fig. 10 — Per-trip cruise time by method\n")
	for _, m := range b.methodsPresent() {
		ct := b.Results[m].CruiseTimes()
		if len(ct) == 0 {
			sb.WriteString(row(m, "no trips"))
			continue
		}
		sb.WriteString(row(m, stats.Summarize(ct).String()))
	}
	return sb.String()
}

// Fig11 reproduces the hour-of-day PRCT series; the paper highlights >40%
// reductions at 5:00-7:00 when uncoordinated drivers cruise longest.
func (b *Bundle) Fig11() string {
	var sb strings.Builder
	sb.WriteString("Fig. 11 — PRCT by hour of day (percent reduction vs GT)\n")
	g := b.gt()
	for _, m := range b.methodsPresent() {
		if m == "GT" {
			continue
		}
		series := metrics.PRCTByHour(g, b.Results[m])
		sb.WriteString(row(m, fmtHourSeries(series)))
	}
	return sb.String()
}

// Fig12 reproduces the per-charge idle-time distributions. The paper's
// FairMove keeps 75% of idle times below 22 minutes while SD2 worsens them.
func (b *Bundle) Fig12() string {
	var sb strings.Builder
	sb.WriteString("Fig. 12 — Per-charge idle time by method\n")
	for _, m := range b.methodsPresent() {
		it := b.Results[m].IdleTimes()
		if len(it) == 0 {
			sb.WriteString(row(m, "no charging events"))
			continue
		}
		sb.WriteString(row(m, stats.Summarize(it).String()))
	}
	return sb.String()
}

// Fig13 reproduces the hour-of-day PRIT series; the paper highlights gains
// in the charging-peak hours (4:00-5:00, 17:00-18:00).
func (b *Bundle) Fig13() string {
	var sb strings.Builder
	sb.WriteString("Fig. 13 — PRIT by hour of day (percent reduction vs GT)\n")
	g := b.gt()
	for _, m := range b.methodsPresent() {
		if m == "GT" {
			continue
		}
		series := metrics.PRITByHour(g, b.Results[m])
		sb.WriteString(row(m, fmtHourSeries(series)))
	}
	return sb.String()
}

// Fig14 reproduces the hourly-PE distributions; the paper's GT median is
// 45.2 CNY/h rising to 53.1 under FairMove with shrinking variance.
func (b *Bundle) Fig14() string {
	var sb strings.Builder
	sb.WriteString("Fig. 14 — Hourly profit efficiency by method\n")
	for _, m := range b.methodsPresent() {
		pes := b.Results[m].PEs()
		if len(pes) == 0 {
			sb.WriteString(row(m, "no on-duty taxis"))
			continue
		}
		sb.WriteString(row(m, stats.Summarize(pes).String()))
	}
	return sb.String()
}

// Fig15 reproduces the overall PIPE bars: the paper reports +25.2% for
// FairMove, +7.5% for DQN, and −5% for SD2.
func (b *Bundle) Fig15() string {
	var sb strings.Builder
	sb.WriteString("Fig. 15 — Percentage increase of profit efficiency (PIPE vs GT)\n")
	g := b.gt()
	for _, m := range b.methodsPresent() {
		if m == "GT" {
			continue
		}
		sb.WriteString(row(m, fmt.Sprintf("PIPE=%+6.1f%%", metrics.PIPE(g, b.Results[m]))))
	}
	return sb.String()
}

// Fig16 reproduces the PIPF bars: the paper reports +54.7% for FairMove,
// +28.7% TQL, +17.9% DQN, ≈13% for SD2 and TBA.
func (b *Bundle) Fig16() string {
	var sb strings.Builder
	sb.WriteString("Fig. 16 — Percentage increase of profit fairness (PIPF vs GT)\n")
	g := b.gt()
	for _, m := range b.methodsPresent() {
		if m == "GT" {
			continue
		}
		sb.WriteString(row(m, fmt.Sprintf("PIPF=%+6.1f%%", metrics.PIPF(g, b.Results[m]))))
	}
	return sb.String()
}

// Table2 reproduces the average PRCT row (paper: SD2 19.4, TQL 13.7,
// DQN 23.6, TBA 21.3, FairMove 32.1).
func (b *Bundle) Table2() string {
	return b.percentTable("Table II — Average PRCT", metrics.PRCT)
}

// Table3 reproduces the average PRIT row (paper: SD2 −23.1, TQL 8.4,
// DQN 21, TBA 3.1, FairMove 43.3).
func (b *Bundle) Table3() string {
	return b.percentTable("Table III — Average PRIT", metrics.PRIT)
}

func (b *Bundle) percentTable(title string, f func(g, d *sim.Results) float64) string {
	var sb strings.Builder
	sb.WriteString(title + "\n  ")
	g := b.gt()
	for _, m := range b.methodsPresent() {
		if m == "GT" {
			continue
		}
		sb.WriteString(fmt.Sprintf("%s=%+.1f%%  ", m, f(g, b.Results[m])))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table4 reproduces the α sensitivity study: average reward per swept α
// (paper: 6.95, 7.05, 7.16, 7.44, 7.39, 7.15 for α = 0..1, peaking at
// 0.6-0.8).
func (b *Bundle) Table4() string {
	var sb strings.Builder
	sb.WriteString("Table IV — Average reward r under different α\n")
	if len(b.Alphas) == 0 {
		sb.WriteString("  (run the alpha sweep to populate)\n")
		return sb.String()
	}
	bestI := 0
	for i := range b.Alphas {
		if b.AlphaRewards[i] > b.AlphaRewards[bestI] {
			bestI = i
		}
		line := fmt.Sprintf("  α=%.1f  r=%.3f", b.Alphas[i], b.AlphaRewards[i])
		if i < len(b.AlphaPE) {
			line += fmt.Sprintf("  evaluated meanPE=%.2f PF=%.2f", b.AlphaPE[i], b.AlphaPF[i])
		}
		sb.WriteString(line + "\n")
	}
	sb.WriteString(fmt.Sprintf("  best α by training reward=%.1f (paper: 0.6-0.8); the evaluated PE/PF\n", b.Alphas[bestI]))
	sb.WriteString("  columns show the efficiency/fairness trade the weight actually buys\n")
	return sb.String()
}

// FormatAblations prints the design-choice ablation comparisons.
func (b *Bundle) FormatAblations() string {
	if len(b.Ablations) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("Ablations (vs GT)\n")
	g := b.gt()
	names := make([]string, 0, len(b.Ablations))
	for n := range b.Ablations {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sb.WriteString("  " + metrics.Compare(n, g, b.Ablations[n]).String() + "\n")
	}
	return sb.String()
}

// FormatAll prints the full report.
func (b *Bundle) FormatAll() string {
	sections := []string{
		b.FormatComparisonSummary(),
		b.Fig3(), b.Fig4(), b.Fig5(), b.Fig6(), b.Fig7(), b.Fig8(),
		b.Fig10(), b.Fig11(), b.Table2(),
		b.Fig12(), b.Fig13(), b.Table3(),
		b.Fig14(), b.Fig15(), b.Fig16(),
		b.Table4(),
		b.FormatAblations(),
	}
	return strings.Join(sections, "\n")
}

// fmtHourSeries compresses a 24-value series into 6 four-hour buckets.
func fmtHourSeries(series [24]float64) string {
	var parts []string
	for h := 0; h < 24; h += 4 {
		avg := (series[h] + series[h+1] + series[h+2] + series[h+3]) / 4
		parts = append(parts, fmt.Sprintf("%02dh:%+.0f%%", h, avg))
	}
	return strings.Join(parts, " ")
}
