package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestGPSRoundTrip(t *testing.T) {
	recs := []GPSRecord{
		{VehicleID: 1, TimeMin: 100, Loc: geo.Point{Lng: 114.05, Lat: 22.53}, DirDeg: 45, SpeedKmh: 30, Occupied: true},
		{VehicleID: 2, TimeMin: 101, Loc: geo.Point{Lng: 113.95, Lat: 22.61}, DirDeg: 180.5, SpeedKmh: 0, Occupied: false},
	}
	var buf bytes.Buffer
	w, err := NewGPSWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGPS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	recs := []Transaction{
		{
			VehicleID: 3, PickupMin: 500, DropoffMin: 525,
			Pickup:      geo.Point{Lng: 114.1, Lat: 22.55},
			Dropoff:     geo.Point{Lng: 114.2, Lat: 22.60},
			OperatingKm: 12.5, CruisingKm: 1.2, FareCNY: 45.30,
			PickupRegion: 17, DropRegion: 203,
		},
	}
	var buf bytes.Buffer
	w, err := NewTransactionWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != recs[0] {
		t.Fatalf("round trip = %+v, want %+v", got, recs)
	}
}

func TestChargingRoundTripAndDurations(t *testing.T) {
	ev := ChargingEvent{
		VehicleID: 7, StationID: 22, ArriveMin: 1000, PlugMin: 1015, FinishMin: 1090,
		EnergyKWh: 55.5, CostCNY: 61.05, StartSoC: 0.2, EndSoC: 0.95,
	}
	if ev.IdleMin() != 15 {
		t.Errorf("IdleMin = %d, want 15", ev.IdleMin())
	}
	if ev.ChargeMin() != 75 {
		t.Errorf("ChargeMin = %d, want 75", ev.ChargeMin())
	}
	var buf bytes.Buffer
	w, err := NewChargingWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChargingEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != ev {
		t.Fatalf("round trip = %+v, want %+v", got, ev)
	}
}

func TestStationMetaRoundTrip(t *testing.T) {
	metas := []StationMeta{
		{StationID: 0, Name: "CS-000", Loc: geo.Point{Lng: 114.0, Lat: 22.5}, Points: 40},
		{StationID: 1, Name: "CS, with comma", Loc: geo.Point{Lng: 114.3, Lat: 22.7}, Points: 25},
	}
	var buf bytes.Buffer
	if err := WriteStationMeta(&buf, metas); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStationMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != metas[0] || got[1] != metas[1] {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadGPS(strings.NewReader("")); err == nil {
		t.Error("empty GPS accepted")
	}
	if _, err := ReadTransactions(strings.NewReader("")); err == nil {
		t.Error("empty transactions accepted")
	}
	if _, err := ReadChargingEvents(strings.NewReader("")); err == nil {
		t.Error("empty charging accepted")
	}
	if _, err := ReadStationMeta(strings.NewReader("")); err == nil {
		t.Error("empty stations accepted")
	}
	badGPS := "vehicle_id,time_min,lng,lat,dir_deg,speed_kmh,occupied\nx,0,1,2,3,4,1\n"
	if _, err := ReadGPS(strings.NewReader(badGPS)); err == nil {
		t.Error("malformed GPS row accepted")
	}
	badCharge := "vehicle_id,station_id,arrive_min,plug_min,finish_min,energy_kwh,cost_cny,start_soc,end_soc\n1,2,3,4,5,abc,7,8,9\n"
	if _, err := ReadChargingEvents(strings.NewReader(badCharge)); err == nil {
		t.Error("malformed charging row accepted")
	}
}

func TestHeaderOnlyStreamsAreEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewGPSWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGPS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("header-only stream decoded %d records", len(got))
	}
}
