package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{TimeMin: 0, Taxi: 3, Region: 7, Kind: EvChargeSeek, A: 2, B: -1},
		{TimeMin: 14, Taxi: 3, Region: 5, Kind: EvPlug, A: 2, B: -1},
		{TimeMin: 75, Taxi: 3, Region: 5, Kind: EvUnplug, A: 2, B: -1, V: 41.25},
		{TimeMin: 80, Taxi: 1, Region: 0, Kind: EvPickup, A: 4, V: 33.7},
		{TimeMin: 95, Taxi: 1, Region: 4, Kind: EvDropoff, A: -1, B: -1},
		{TimeMin: 100, Taxi: -1, Region: 2, Kind: EvOutage, A: 1, B: 1},
		{TimeMin: 101, Taxi: 9, Region: 2, Kind: EvBalk, A: 1, B: -1},
		{TimeMin: 160, Taxi: -1, Region: 2, Kind: EvDerate, A: 1, B: 3},
		{TimeMin: 161, Taxi: 5, Region: 2, Kind: EvReplan, A: 1, B: 0},
		{TimeMin: 170, Taxi: 5, Region: 8, Kind: EvMove, A: 9},
		{TimeMin: 180, Taxi: 6, Region: 8, Kind: EvQueue, A: 0},
	}
}

func TestEventRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", events, got)
	}
}

// The encoding must be byte-stable: the same events always produce the same
// bytes, and the digest is a pure function of the encoding.
func TestEventEncodingByteStable(t *testing.T) {
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := EncodeEvents(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := EncodeEvents(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same events differ")
	}
	if DigestEvents(events) != DigestEvents(sampleEvents()) {
		t.Fatal("digest not reproducible")
	}
	if DigestEvents(events) == DigestEvents(events[:len(events)-1]) {
		t.Fatal("digest insensitive to a dropped event")
	}
}

func TestEventKindNamesStable(t *testing.T) {
	// The text labels are part of the on-disk digest contract; renaming one
	// silently invalidates every committed golden trace.
	want := []string{
		"pickup", "dropoff", "move", "charge-seek", "queue", "plug", "unplug",
		"balk", "outage", "derate", "replan",
	}
	if int(numEventKinds) != len(want) {
		t.Fatalf("have %d kinds, want %d — update the golden traces and this list together", numEventKinds, len(want))
	}
	for i, w := range want {
		if EventKind(i).String() != w {
			t.Fatalf("kind %d renamed %q -> %q; existing digests are invalidated", i, w, EventKind(i).String())
		}
	}
}

func TestDecodeEventsRejectsMalformed(t *testing.T) {
	cases := []string{
		"plug|1|2\n",              // too few fields
		"warp|1|2|3|4|5|6\n",      // unknown kind
		"plug|x|2|3|4|5|6\n",      // bad int
		"plug|1|2|3|4|5|zz\n",     // bad float
		"plug|1|2|3|4|5|6|7|8\n",  // too many fields
		"plug|1|2|3|4|5|6\nbad\n", // valid line then garbage
	}
	for _, c := range cases {
		if _, err := DecodeEvents(strings.NewReader(c)); err == nil {
			t.Errorf("no error decoding %q", c)
		}
	}
	// Blank lines are tolerated (trailing newline artifacts).
	got, err := DecodeEvents(strings.NewReader("\nplug|1|2|3|4|5|6\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line handling: got %v, %v", got, err)
	}
}

func TestEncodeEventsRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, []Event{{Kind: numEventKinds}}); err == nil {
		t.Fatal("no error encoding out-of-range kind")
	}
}

func TestEventSpecialFloats(t *testing.T) {
	events := []Event{
		{Kind: EvUnplug, V: math.Inf(1)},
		{Kind: EvUnplug, V: math.Inf(-1)},
		{Kind: EvUnplug, V: 1e-323}, // subnormal
	}
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if math.Float64bits(events[i].V) != math.Float64bits(got[i].V) {
			t.Fatalf("event %d: V %v round-tripped to %v", i, events[i].V, got[i].V)
		}
	}
}
