// Package trace defines the record schemas of the paper's five datasets
// (Section II, Table I) and provides streaming CSV encoding and decoding for
// them. The synthetic data generator writes these files and the analysis
// benches read them back, mirroring how the original system consumed the
// Shenzhen streams.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
)

// GPSRecord is one row of the e-taxi GPS stream: vehicle ID, position,
// timestamp, heading, speed, and passenger indicator.
type GPSRecord struct {
	VehicleID int
	TimeMin   int // absolute simulation minute
	Loc       geo.Point
	DirDeg    float64
	SpeedKmh  float64
	Occupied  bool
}

// Transaction is one row of the transaction fare stream.
type Transaction struct {
	VehicleID    int
	PickupMin    int
	DropoffMin   int
	Pickup       geo.Point
	Dropoff      geo.Point
	OperatingKm  float64 // on-trip distance
	CruisingKm   float64 // empty distance before pickup
	FareCNY      float64
	PickupRegion int
	DropRegion   int
}

// ChargingEvent is one inferred charging event (the paper infers these from
// GPS + station data per [16]).
type ChargingEvent struct {
	VehicleID int
	StationID int
	ArriveMin int     // arrival at the station (start of idle)
	PlugMin   int     // plug-in (end of idle, start of charge)
	FinishMin int     // unplug
	EnergyKWh float64 // energy delivered
	CostCNY   float64 // TOU cost
	StartSoC  float64
	EndSoC    float64
}

// IdleMin returns the queueing idle time T_idle in minutes.
func (c ChargingEvent) IdleMin() int { return c.PlugMin - c.ArriveMin }

// ChargeMin returns the plugged-in duration T_charge in minutes.
func (c ChargingEvent) ChargeMin() int { return c.FinishMin - c.PlugMin }

// StationMeta is one row of the charging-station dataset.
type StationMeta struct {
	StationID int
	Name      string
	Loc       geo.Point
	Points    int
}

// --- CSV encoding ---

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func parseF(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
func parseI(s string) (int, error)     { return strconv.Atoi(s) }

// GPSWriter streams GPSRecords as CSV.
type GPSWriter struct{ w *csv.Writer }

// NewGPSWriter writes a header and returns a writer.
func NewGPSWriter(w io.Writer) (*GPSWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vehicle_id", "time_min", "lng", "lat", "dir_deg", "speed_kmh", "occupied"}); err != nil {
		return nil, err
	}
	return &GPSWriter{w: cw}, nil
}

// Write appends one record.
func (g *GPSWriter) Write(r GPSRecord) error {
	occ := "0"
	if r.Occupied {
		occ = "1"
	}
	return g.w.Write([]string{
		strconv.Itoa(r.VehicleID), strconv.Itoa(r.TimeMin),
		f(r.Loc.Lng), f(r.Loc.Lat), f(r.DirDeg), f(r.SpeedKmh), occ,
	})
}

// Flush flushes buffered rows and reports any write error.
func (g *GPSWriter) Flush() error {
	g.w.Flush()
	return g.w.Error()
}

// ReadGPS decodes an entire GPS CSV stream.
func ReadGPS(r io.Reader) ([]GPSRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty GPS stream")
	}
	out := make([]GPSRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 7 {
			return nil, fmt.Errorf("trace: GPS row %d has %d fields", i+1, len(row))
		}
		var rec GPSRecord
		if rec.VehicleID, err = parseI(row[0]); err != nil {
			return nil, fmt.Errorf("trace: GPS row %d vehicle_id: %w", i+1, err)
		}
		if rec.TimeMin, err = parseI(row[1]); err != nil {
			return nil, fmt.Errorf("trace: GPS row %d time_min: %w", i+1, err)
		}
		if rec.Loc.Lng, err = parseF(row[2]); err != nil {
			return nil, fmt.Errorf("trace: GPS row %d lng: %w", i+1, err)
		}
		if rec.Loc.Lat, err = parseF(row[3]); err != nil {
			return nil, fmt.Errorf("trace: GPS row %d lat: %w", i+1, err)
		}
		if rec.DirDeg, err = parseF(row[4]); err != nil {
			return nil, fmt.Errorf("trace: GPS row %d dir: %w", i+1, err)
		}
		if rec.SpeedKmh, err = parseF(row[5]); err != nil {
			return nil, fmt.Errorf("trace: GPS row %d speed: %w", i+1, err)
		}
		rec.Occupied = row[6] == "1"
		out = append(out, rec)
	}
	return out, nil
}

// TransactionWriter streams Transactions as CSV.
type TransactionWriter struct{ w *csv.Writer }

// NewTransactionWriter writes a header and returns a writer.
func NewTransactionWriter(w io.Writer) (*TransactionWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"vehicle_id", "pickup_min", "dropoff_min", "pickup_lng", "pickup_lat",
		"dropoff_lng", "dropoff_lat", "operating_km", "cruising_km", "fare_cny",
		"pickup_region", "drop_region",
	}); err != nil {
		return nil, err
	}
	return &TransactionWriter{w: cw}, nil
}

// Write appends one record.
func (t *TransactionWriter) Write(r Transaction) error {
	return t.w.Write([]string{
		strconv.Itoa(r.VehicleID), strconv.Itoa(r.PickupMin), strconv.Itoa(r.DropoffMin),
		f(r.Pickup.Lng), f(r.Pickup.Lat), f(r.Dropoff.Lng), f(r.Dropoff.Lat),
		f(r.OperatingKm), f(r.CruisingKm), f(r.FareCNY),
		strconv.Itoa(r.PickupRegion), strconv.Itoa(r.DropRegion),
	})
}

// Flush flushes buffered rows and reports any write error.
func (t *TransactionWriter) Flush() error {
	t.w.Flush()
	return t.w.Error()
}

// ReadTransactions decodes an entire transaction CSV stream.
func ReadTransactions(r io.Reader) ([]Transaction, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty transaction stream")
	}
	out := make([]Transaction, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 12 {
			return nil, fmt.Errorf("trace: transaction row %d has %d fields", i+1, len(row))
		}
		var rec Transaction
		fields := []struct {
			dst *int
			idx int
		}{
			{&rec.VehicleID, 0}, {&rec.PickupMin, 1}, {&rec.DropoffMin, 2},
			{&rec.PickupRegion, 10}, {&rec.DropRegion, 11},
		}
		for _, fd := range fields {
			if *fd.dst, err = parseI(row[fd.idx]); err != nil {
				return nil, fmt.Errorf("trace: transaction row %d field %d: %w", i+1, fd.idx, err)
			}
		}
		ffields := []struct {
			dst *float64
			idx int
		}{
			{&rec.Pickup.Lng, 3}, {&rec.Pickup.Lat, 4}, {&rec.Dropoff.Lng, 5},
			{&rec.Dropoff.Lat, 6}, {&rec.OperatingKm, 7}, {&rec.CruisingKm, 8},
			{&rec.FareCNY, 9},
		}
		for _, fd := range ffields {
			if *fd.dst, err = parseF(row[fd.idx]); err != nil {
				return nil, fmt.Errorf("trace: transaction row %d field %d: %w", i+1, fd.idx, err)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// ChargingWriter streams ChargingEvents as CSV.
type ChargingWriter struct{ w *csv.Writer }

// NewChargingWriter writes a header and returns a writer.
func NewChargingWriter(w io.Writer) (*ChargingWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"vehicle_id", "station_id", "arrive_min", "plug_min", "finish_min",
		"energy_kwh", "cost_cny", "start_soc", "end_soc",
	}); err != nil {
		return nil, err
	}
	return &ChargingWriter{w: cw}, nil
}

// Write appends one record.
func (c *ChargingWriter) Write(r ChargingEvent) error {
	return c.w.Write([]string{
		strconv.Itoa(r.VehicleID), strconv.Itoa(r.StationID),
		strconv.Itoa(r.ArriveMin), strconv.Itoa(r.PlugMin), strconv.Itoa(r.FinishMin),
		f(r.EnergyKWh), f(r.CostCNY), f(r.StartSoC), f(r.EndSoC),
	})
}

// Flush flushes buffered rows and reports any write error.
func (c *ChargingWriter) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// ReadChargingEvents decodes an entire charging-event CSV stream.
func ReadChargingEvents(r io.Reader) ([]ChargingEvent, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty charging stream")
	}
	out := make([]ChargingEvent, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 9 {
			return nil, fmt.Errorf("trace: charging row %d has %d fields", i+1, len(row))
		}
		var rec ChargingEvent
		ints := []struct {
			dst *int
			idx int
		}{
			{&rec.VehicleID, 0}, {&rec.StationID, 1}, {&rec.ArriveMin, 2},
			{&rec.PlugMin, 3}, {&rec.FinishMin, 4},
		}
		for _, fd := range ints {
			if *fd.dst, err = parseI(row[fd.idx]); err != nil {
				return nil, fmt.Errorf("trace: charging row %d field %d: %w", i+1, fd.idx, err)
			}
		}
		floats := []struct {
			dst *float64
			idx int
		}{
			{&rec.EnergyKWh, 5}, {&rec.CostCNY, 6}, {&rec.StartSoC, 7}, {&rec.EndSoC, 8},
		}
		for _, fd := range floats {
			if *fd.dst, err = parseF(row[fd.idx]); err != nil {
				return nil, fmt.Errorf("trace: charging row %d field %d: %w", i+1, fd.idx, err)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteStationMeta writes the station metadata dataset.
func WriteStationMeta(w io.Writer, metas []StationMeta) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"station_id", "name", "lng", "lat", "points"}); err != nil {
		return err
	}
	for _, m := range metas {
		if err := cw.Write([]string{
			strconv.Itoa(m.StationID), m.Name, f(m.Loc.Lng), f(m.Loc.Lat), strconv.Itoa(m.Points),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadStationMeta decodes the station metadata dataset.
func ReadStationMeta(r io.Reader) ([]StationMeta, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty station stream")
	}
	out := make([]StationMeta, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("trace: station row %d has %d fields", i+1, len(row))
		}
		var m StationMeta
		if m.StationID, err = parseI(row[0]); err != nil {
			return nil, fmt.Errorf("trace: station row %d id: %w", i+1, err)
		}
		m.Name = row[1]
		if m.Loc.Lng, err = parseF(row[2]); err != nil {
			return nil, fmt.Errorf("trace: station row %d lng: %w", i+1, err)
		}
		if m.Loc.Lat, err = parseF(row[3]); err != nil {
			return nil, fmt.Errorf("trace: station row %d lat: %w", i+1, err)
		}
		if m.Points, err = parseI(row[4]); err != nil {
			return nil, fmt.Errorf("trace: station row %d points: %w", i+1, err)
		}
		out = append(out, m)
	}
	return out, nil
}
