package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// FuzzDecodeEvents feeds arbitrary bytes to the event decoder. The decoder
// must never panic, and whenever it accepts an input, re-encoding the result
// must be canonical: decode(encode(decode(x))) == decode(x).
func FuzzDecodeEvents(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeEvents(&seed, sampleEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("plug|1|2|3|4|5|6\n"))
	f.Add([]byte("pickup|80|1|0|4|0|33.7\nunplug|75|3|5|2|-1|41.25\n"))
	f.Add([]byte(""))
	f.Add([]byte("plug|1|2|3|4|5|6"))   // no trailing newline
	f.Add([]byte("||||||\nwarp|x|y\n")) // malformed
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeEvents(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := EncodeEvents(&enc, events); err != nil {
			t.Fatalf("decoded events failed to re-encode: %v", err)
		}
		again, err := DecodeEvents(&enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		if !eventsEqual(events, again) {
			t.Fatalf("canonicalization not idempotent:\nfirst:  %+v\nsecond: %+v", events, again)
		}
	})
}

// FuzzEventRoundTrip builds one event from fuzzed fields and asserts the
// strict round-trip property decode(encode(x)) == x.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(10, 3, 7, uint8(EvPickup), 4, -1, 33.7)
	f.Add(-5, -1, -1, uint8(EvOutage), 0, 1, 0.0)
	f.Add(0, 0, 0, uint8(EvUnplug), 0, 0, math.MaxFloat64)
	f.Fuzz(func(t *testing.T, timeMin, taxi, region int, kind uint8, a, b int, v float64) {
		ev := Event{
			TimeMin: timeMin, Taxi: taxi, Region: region,
			Kind: EventKind(kind % uint8(numEventKinds)),
			A:    a, B: b, V: v,
		}
		var buf bytes.Buffer
		if err := EncodeEvents(&buf, []Event{ev}); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEvents(&buf)
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", ev, err)
		}
		if len(got) != 1 || !eventsEqual([]Event{ev}, got) {
			t.Fatalf("round trip diverged: %+v -> %+v", ev, got)
		}
	})
}

// eventsEqual compares events with NaN-tolerant float comparison (NaN != NaN
// under ==, but a NaN payload round-trips to the canonical NaN bit pattern).
func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.IsNaN(x.V) && math.IsNaN(y.V) {
			x.V, y.V = 0, 0
		}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}
