package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EventKind labels one kind of simulator event in the structured event log.
// The log is the canonical behavioral record of a run: every state change
// that matters to the evaluation (matches, trips, charging, queueing,
// perturbations) appears as one Event, and the golden-trace harness pins the
// byte encoding of the whole stream, so any drift in sim/policy/station/
// energy behavior is caught at byte granularity.
type EventKind uint8

// Event kinds. New kinds must be appended (the numeric value is part of the
// on-disk digest contract) and registered in kindNames.
const (
	// EvPickup: a taxi picked up a passenger. A=destination region,
	// V=fare (CNY).
	EvPickup EventKind = iota
	// EvDropoff: a trip ended. Region is the drop-off region.
	EvDropoff
	// EvMove: a displacement action moved a taxi. Region is the origin,
	// A=destination region.
	EvMove
	// EvChargeSeek: a taxi left to charge. A=target station.
	EvChargeSeek
	// EvQueue: a taxi joined a station's waiting queue. A=station.
	EvQueue
	// EvPlug: a taxi plugged in (on arrival or promoted from the queue).
	// A=station.
	EvPlug
	// EvUnplug: a charging session finished. A=station, V=energy (kWh).
	EvUnplug
	// EvBalk: a taxi diverted from a hopeless or closed station. A=station
	// balked at, B=new target station (-1: waiting in place to retry).
	EvBalk
	// EvOutage: a station closed (B=1) or reopened (B=0) to new arrivals.
	// A=station.
	EvOutage
	// EvDerate: a station's unavailable-point count changed. A=station,
	// B=new derate.
	EvDerate
	// EvReplan: a queued taxi was evicted by a station closure and re-planned.
	// A=closed station, B=new target station (-1: waiting in place).
	EvReplan
	numEventKinds
)

// kindNames is the canonical text label of each kind; labels are part of the
// byte-stable encoding and must never change for existing kinds.
var kindNames = [numEventKinds]string{
	"pickup", "dropoff", "move", "charge-seek", "queue", "plug", "unplug",
	"balk", "outage", "derate", "replan",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// kindByName inverts kindNames.
var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, numEventKinds)
	for i, n := range kindNames {
		m[n] = EventKind(i)
	}
	return m
}()

// Event is one row of the structured event log. Fields that do not apply to
// a kind are -1 (Taxi, Region, A, B) or 0 (V); the per-kind meaning of A, B,
// and V is documented on the kind constants.
type Event struct {
	TimeMin int // absolute simulation minute
	Taxi    int // taxi ID, -1 when not taxi-scoped
	Region  int // region ID, -1 when not region-scoped
	Kind    EventKind
	A, B    int     // kind-specific integer payload
	V       float64 // kind-specific float payload
}

// appendEvent appends the canonical one-line encoding of ev:
//
//	kind|time|taxi|region|a|b|v\n
//
// Integers are base-10, V uses strconv's shortest 'g' form, so the encoding
// of a given event is a single fixed byte string on every platform.
func appendEvent(dst []byte, ev Event) []byte {
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(ev.TimeMin), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(ev.Taxi), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(ev.Region), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(ev.A), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(ev.B), 10)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, ev.V, 'g', -1, 64)
	return append(dst, '\n')
}

// EncodeEvents writes the canonical encoding of events to w. Encoding the
// same slice always produces the same bytes.
func EncodeEvents(w io.Writer, events []Event) error {
	var buf []byte
	for _, ev := range events {
		if int(ev.Kind) >= len(kindNames) {
			return fmt.Errorf("trace: unknown event kind %d", int(ev.Kind))
		}
		buf = appendEvent(buf[:0], ev)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// parseEventLine decodes one canonical event line (without trailing newline).
func parseEventLine(lineNo int, line string) (Event, error) {
	var ev Event
	parts := strings.Split(line, "|")
	if len(parts) != 7 {
		return ev, fmt.Errorf("trace: event line %d has %d fields, want 7", lineNo, len(parts))
	}
	kind, ok := kindByName[parts[0]]
	if !ok {
		return ev, fmt.Errorf("trace: event line %d has unknown kind %q", lineNo, parts[0])
	}
	ev.Kind = kind
	ints := []struct {
		dst *int
		idx int
	}{
		{&ev.TimeMin, 1}, {&ev.Taxi, 2}, {&ev.Region, 3}, {&ev.A, 4}, {&ev.B, 5},
	}
	var err error
	for _, fd := range ints {
		if *fd.dst, err = parseI(parts[fd.idx]); err != nil {
			return ev, fmt.Errorf("trace: event line %d field %d: %w", lineNo, fd.idx, err)
		}
	}
	if ev.V, err = parseF(parts[6]); err != nil {
		return ev, fmt.Errorf("trace: event line %d value: %w", lineNo, err)
	}
	return ev, nil
}

// DecodeEvents reads a canonical event stream written by EncodeEvents. It is
// the strict inverse: DecodeEvents(EncodeEvents(x)) == x for any valid x, and
// malformed input returns an error, never panics.
func DecodeEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		ev, err := parseEventLine(lineNo, line)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: event stream: %w", err)
	}
	return out, nil
}

// DigestEvents returns the hex SHA-256 of the canonical encoding of events —
// the committed fingerprint the golden-trace harness compares against.
func DigestEvents(events []Event) string {
	h := sha256.New()
	var buf []byte
	for _, ev := range events {
		buf = appendEvent(buf[:0], ev)
		_, _ = h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}
