// Package energy models the e-taxi battery and the fast-charging process.
//
// All Shenzhen e-taxis in the paper are BYD e6 vehicles with an 80 kWh pack
// and a 400 km range, i.e. 0.2 kWh/km. Fast charging runs at constant power
// up to a knee state-of-charge and then tapers linearly (the CC/CV profile),
// which is what stretches real charge sessions to the paper's observed
// 45-120 minute band (Fig. 3).
package energy

import (
	"fmt"
	"math"
)

// BYD e6 parameters used throughout the paper.
const (
	BYDe6CapacityKWh = 80.0
	BYDe6RangeKm     = 400.0
)

// Battery is the state of one vehicle's pack. SoC is the state of charge in
// [0, 1].
type Battery struct {
	CapacityKWh      float64
	ConsumptionPerKm float64 // kWh consumed per km driven
	SoC              float64
}

// NewBYDe6 returns a battery with the BYD e6 parameters at the given initial
// state of charge (clamped to [0, 1]).
func NewBYDe6(initialSoC float64) Battery {
	return Battery{
		CapacityKWh:      BYDe6CapacityKWh,
		ConsumptionPerKm: BYDe6CapacityKWh / BYDe6RangeKm,
		SoC:              clamp01(initialSoC),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EnergyKWh returns the energy currently stored.
func (b Battery) EnergyKWh() float64 { return b.SoC * b.CapacityKWh }

// RangeKm returns the remaining driving range.
func (b Battery) RangeKm() float64 {
	if b.ConsumptionPerKm <= 0 {
		return math.Inf(1)
	}
	return b.EnergyKWh() / b.ConsumptionPerKm
}

// Drive consumes energy for km kilometres and returns the energy drawn in
// kWh. If the pack cannot cover the distance the SoC floors at zero and the
// returned energy is what was actually available.
func (b *Battery) Drive(km float64) float64 {
	if km <= 0 {
		return 0
	}
	need := km * b.ConsumptionPerKm
	avail := b.EnergyKWh()
	if need > avail {
		need = avail
	}
	b.SoC = clamp01(b.SoC - need/b.CapacityKWh)
	return need
}

// Empty reports whether the pack is fully depleted.
func (b Battery) Empty() bool { return b.SoC <= 1e-12 }

// Charger describes a fast-charging point.
type Charger struct {
	PowerKW float64 // nominal constant-current power
	// TaperKneeSoC is the state of charge above which power tapers linearly
	// down to TaperFloor×PowerKW at SoC = 1.
	TaperKneeSoC float64
	TaperFloor   float64
}

// DefaultFastCharger returns a charger typical of the Shenzhen e-taxi
// stations: 60 kW nominal, tapering above 80% SoC down to 20% power.
func DefaultFastCharger() Charger {
	return Charger{PowerKW: 60, TaperKneeSoC: 0.80, TaperFloor: 0.20}
}

// PowerAt returns the instantaneous charging power at the given SoC.
func (c Charger) PowerAt(soc float64) float64 {
	soc = clamp01(soc)
	if soc <= c.TaperKneeSoC || c.TaperKneeSoC >= 1 {
		return c.PowerKW
	}
	frac := (soc - c.TaperKneeSoC) / (1 - c.TaperKneeSoC)
	return c.PowerKW * (1 - frac*(1-c.TaperFloor))
}

// Charge advances a charging session by minutes and returns the energy
// delivered in kWh. Integration is per-minute, which is exact enough for the
// 10-minute simulation slots and keeps charge-time distributions smooth.
func (c Charger) Charge(b *Battery, minutes float64) float64 {
	if minutes <= 0 || b.SoC >= 1 {
		return 0
	}
	var delivered float64
	remaining := minutes
	for remaining > 0 && b.SoC < 1 {
		step := math.Min(1, remaining)
		p := c.PowerAt(b.SoC)
		e := p * step / 60
		headroom := (1 - b.SoC) * b.CapacityKWh
		if e > headroom {
			e = headroom
		}
		b.SoC = clamp01(b.SoC + e/b.CapacityKWh)
		delivered += e
		remaining -= step
	}
	return delivered
}

// TimeToCharge returns the minutes needed to charge b from its current SoC
// to targetSoC (clamped to [SoC, 1]), simulated at minute resolution.
func (c Charger) TimeToCharge(b Battery, targetSoC float64) float64 {
	targetSoC = clamp01(targetSoC)
	if targetSoC <= b.SoC {
		return 0
	}
	if c.PowerKW <= 0 {
		return math.Inf(1)
	}
	work := b // copy
	var minutes float64
	for work.SoC < targetSoC {
		c.Charge(&work, 1)
		minutes++
		if minutes > 24*60 {
			return math.Inf(1)
		}
	}
	return minutes
}

// Validate reports configuration errors.
func (c Charger) Validate() error {
	if c.PowerKW <= 0 {
		return fmt.Errorf("energy: charger power must be positive, got %v", c.PowerKW)
	}
	if c.TaperKneeSoC < 0 || c.TaperKneeSoC > 1 {
		return fmt.Errorf("energy: taper knee must be in [0,1], got %v", c.TaperKneeSoC)
	}
	if c.TaperFloor < 0 || c.TaperFloor > 1 {
		return fmt.Errorf("energy: taper floor must be in [0,1], got %v", c.TaperFloor)
	}
	return nil
}
