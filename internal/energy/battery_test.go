package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBYDe6(t *testing.T) {
	b := NewBYDe6(0.5)
	if b.CapacityKWh != 80 {
		t.Errorf("capacity = %v, want 80", b.CapacityKWh)
	}
	if math.Abs(b.ConsumptionPerKm-0.2) > 1e-12 {
		t.Errorf("consumption = %v, want 0.2", b.ConsumptionPerKm)
	}
	if b.EnergyKWh() != 40 {
		t.Errorf("energy = %v, want 40", b.EnergyKWh())
	}
	if b.RangeKm() != 200 {
		t.Errorf("range = %v, want 200", b.RangeKm())
	}
}

func TestNewBYDe6ClampsSoC(t *testing.T) {
	if b := NewBYDe6(1.5); b.SoC != 1 {
		t.Errorf("SoC = %v, want 1", b.SoC)
	}
	if b := NewBYDe6(-0.2); b.SoC != 0 {
		t.Errorf("SoC = %v, want 0", b.SoC)
	}
}

func TestDriveConsumesEnergy(t *testing.T) {
	b := NewBYDe6(1.0)
	used := b.Drive(100)
	if math.Abs(used-20) > 1e-9 {
		t.Fatalf("100 km used %v kWh, want 20", used)
	}
	if math.Abs(b.SoC-0.75) > 1e-9 {
		t.Fatalf("SoC after 100 km = %v, want 0.75", b.SoC)
	}
}

func TestDriveBeyondRangeFloorsAtZero(t *testing.T) {
	b := NewBYDe6(0.1) // 40 km range
	used := b.Drive(100)
	if math.Abs(used-8) > 1e-9 {
		t.Fatalf("used %v kWh, want 8 (all that was there)", used)
	}
	if !b.Empty() {
		t.Fatalf("battery should be empty, SoC=%v", b.SoC)
	}
}

func TestDriveNegativeNoOp(t *testing.T) {
	b := NewBYDe6(0.5)
	if used := b.Drive(-10); used != 0 || b.SoC != 0.5 {
		t.Fatal("negative drive changed state")
	}
}

func TestDriveEnergyConservationProperty(t *testing.T) {
	f := func(soc, km float64) bool {
		soc = math.Abs(math.Mod(soc, 1))
		km = math.Abs(math.Mod(km, 500))
		b := NewBYDe6(soc)
		before := b.EnergyKWh()
		used := b.Drive(km)
		after := b.EnergyKWh()
		return math.Abs(before-used-after) < 1e-6 && used >= 0 && b.SoC >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChargerPowerTaper(t *testing.T) {
	c := DefaultFastCharger()
	if p := c.PowerAt(0.5); p != 60 {
		t.Errorf("power below knee = %v, want 60", p)
	}
	if p := c.PowerAt(0.8); p != 60 {
		t.Errorf("power at knee = %v, want 60", p)
	}
	if p := c.PowerAt(1.0); math.Abs(p-12) > 1e-9 {
		t.Errorf("power at full = %v, want 12 (20%% floor)", p)
	}
	mid := c.PowerAt(0.9)
	if mid >= 60 || mid <= 12 {
		t.Errorf("power at 0.9 = %v, want between floor and nominal", mid)
	}
}

func TestChargeDeliversEnergy(t *testing.T) {
	c := DefaultFastCharger()
	b := NewBYDe6(0.2)
	got := c.Charge(&b, 60)
	// One hour at 60 kW from 0.2: all below knee, so exactly 60 kWh would
	// overfill? 0.2 -> +60/80 = +0.75 crosses the knee at 0.8 after 48 kWh.
	if got <= 48 || got > 60 {
		t.Fatalf("delivered %v kWh in 1 h from SoC 0.2", got)
	}
	if b.SoC <= 0.8 || b.SoC > 1 {
		t.Fatalf("SoC after 1 h = %v", b.SoC)
	}
}

func TestChargeNeverOverfills(t *testing.T) {
	c := DefaultFastCharger()
	b := NewBYDe6(0.95)
	c.Charge(&b, 600)
	if b.SoC > 1 {
		t.Fatalf("SoC overfilled: %v", b.SoC)
	}
	if b.SoC < 0.999 {
		t.Fatalf("10 h should fully charge, SoC=%v", b.SoC)
	}
	if c.Charge(&b, 60) != 0 {
		t.Fatal("charging a full battery delivered energy")
	}
}

func TestChargeZeroOrNegativeMinutes(t *testing.T) {
	c := DefaultFastCharger()
	b := NewBYDe6(0.5)
	if c.Charge(&b, 0) != 0 || c.Charge(&b, -5) != 0 {
		t.Fatal("zero/negative duration delivered energy")
	}
	if b.SoC != 0.5 {
		t.Fatal("state changed")
	}
}

func TestChargeConservationProperty(t *testing.T) {
	c := DefaultFastCharger()
	f := func(soc, mins float64) bool {
		soc = math.Abs(math.Mod(soc, 1))
		mins = math.Abs(math.Mod(mins, 300))
		b := NewBYDe6(soc)
		before := b.EnergyKWh()
		got := c.Charge(&b, mins)
		return math.Abs(b.EnergyKWh()-(before+got)) < 1e-6 && b.SoC <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToChargeMatchesPaperBand(t *testing.T) {
	// Paper finding (i): most charge sessions last 45-120 minutes. A typical
	// session charges from the 20% threshold to ~95% on a fast charger.
	c := DefaultFastCharger()
	b := NewBYDe6(0.20)
	mins := c.TimeToCharge(b, 0.95)
	if mins < 45 || mins > 120 {
		t.Fatalf("typical session = %v min, want 45-120 (paper Fig. 3 band)", mins)
	}
}

func TestTimeToChargeEdges(t *testing.T) {
	c := DefaultFastCharger()
	b := NewBYDe6(0.9)
	if m := c.TimeToCharge(b, 0.5); m != 0 {
		t.Errorf("target below current SoC = %v, want 0", m)
	}
	if m := c.TimeToCharge(b, 0.9); m != 0 {
		t.Errorf("target equal to SoC = %v, want 0", m)
	}
	bad := Charger{PowerKW: 0}
	if m := bad.TimeToCharge(b, 1); !math.IsInf(m, 1) {
		t.Errorf("zero-power charger = %v, want +Inf", m)
	}
}

func TestTimeToChargeMonotoneInTarget(t *testing.T) {
	c := DefaultFastCharger()
	b := NewBYDe6(0.1)
	prev := -1.0
	for _, target := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		m := c.TimeToCharge(b, target)
		if m < prev {
			t.Fatalf("charge time decreased at target %v", target)
		}
		prev = m
	}
}

func TestChargerValidate(t *testing.T) {
	if err := DefaultFastCharger().Validate(); err != nil {
		t.Fatalf("default charger invalid: %v", err)
	}
	bad := []Charger{
		{PowerKW: 0, TaperKneeSoC: 0.8, TaperFloor: 0.2},
		{PowerKW: -5, TaperKneeSoC: 0.8, TaperFloor: 0.2},
		{PowerKW: 60, TaperKneeSoC: 1.5, TaperFloor: 0.2},
		{PowerKW: 60, TaperKneeSoC: 0.8, TaperFloor: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad charger %d accepted", i)
		}
	}
}

func TestRangeKmInfiniteWithZeroConsumption(t *testing.T) {
	b := Battery{CapacityKWh: 80, ConsumptionPerKm: 0, SoC: 0.5}
	if !math.IsInf(b.RangeKm(), 1) {
		t.Fatal("zero consumption should give infinite range")
	}
}
