package energy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property (DESIGN.md §6): energy is conserved across arbitrary drive/charge
// cycles — the pack's stored energy always equals the initial charge plus
// everything the chargers delivered minus everything driving drew, and the
// SoC never leaves [0, 1].
func TestBatteryEnergyConservation(t *testing.T) {
	prop := func(seed int64, initialSoC float64, ops uint8) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBYDe6(math.Abs(math.Mod(initialSoC, 1)))
		c := DefaultFastCharger()
		initial := b.EnergyKWh()
		var delivered, drawn float64
		n := int(ops%50) + 1
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				drawn += b.Drive(r.Float64() * 120)
			} else {
				delivered += c.Charge(&b, r.Float64()*90)
			}
			if b.SoC < 0 || b.SoC > 1 {
				t.Logf("SoC %v out of range", b.SoC)
				return false
			}
		}
		want := initial + delivered - drawn
		if math.Abs(b.EnergyKWh()-want) > 1e-6 {
			t.Logf("stored %.9f kWh, ledger says %.9f", b.EnergyKWh(), want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: driving an empty pack draws nothing, and charging a full pack
// delivers nothing — the boundary cases of the conservation ledger.
func TestBatteryBoundaryCases(t *testing.T) {
	prop := func(km, minutes float64) bool {
		km = math.Abs(math.Mod(km, 500))
		minutes = math.Abs(math.Mod(minutes, 300))
		empty := NewBYDe6(0)
		if d := empty.Drive(km); d != 0 {
			t.Logf("empty pack drew %.9f kWh over %.1f km", d, km)
			return false
		}
		full := NewBYDe6(1)
		c := DefaultFastCharger()
		if e := c.Charge(&full, minutes); e != 0 {
			t.Logf("full pack accepted %.9f kWh over %.1f min", e, minutes)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
