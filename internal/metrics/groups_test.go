package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// resultsWithPEs builds Results whose taxis have exactly the given profit
// efficiencies (1 hour on duty each).
func resultsWithPEs(pes ...float64) *sim.Results {
	r := &sim.Results{}
	for _, pe := range pes {
		r.Accounts = append(r.Accounts, sim.TaxiAccount{RevenueCNY: pe, CruiseMin: 60})
	}
	return r
}

func TestStarGroupsByPEQuantiles(t *testing.T) {
	r := resultsWithPEs(10, 20, 30, 40, 50, 60, 70, 80)
	assign, err := StarGroupsByPE(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if assign.Groups != 4 || len(assign.Of) != 8 {
		t.Fatalf("assignment shape wrong: %+v", assign)
	}
	// Quantile groups must be non-decreasing with PE.
	for i := 1; i < 8; i++ {
		if assign.Of[i] < assign.Of[i-1] {
			t.Fatalf("group order broken: %v", assign.Of)
		}
	}
	if assign.Of[0] != 0 || assign.Of[7] != 3 {
		t.Fatalf("extremes misassigned: %v", assign.Of)
	}
}

func TestStarGroupsRejectsBadCount(t *testing.T) {
	if _, err := StarGroupsByPE(&sim.Results{}, 0); err == nil {
		t.Fatal("groups=0 accepted")
	}
}

func TestStarGroupsOffDutyToGroupZero(t *testing.T) {
	r := resultsWithPEs(10, 90)
	r.Accounts = append(r.Accounts, sim.TaxiAccount{}) // never on duty
	assign, err := StarGroupsByPE(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if assign.Of[2] != 0 {
		t.Fatalf("off-duty taxi in group %d, want 0", assign.Of[2])
	}
}

func TestWithinGroupFairness(t *testing.T) {
	// Two groups: (10, 20) and (70, 80) — both with variance 25, while the
	// whole-fleet variance is far larger. The grouped view says "fair".
	r := resultsWithPEs(10, 20, 70, 80)
	assign := GroupAssignment{Groups: 2, Of: []int{0, 0, 1, 1}}
	gf := WithinGroupFairness(r, assign)
	if len(gf) != 2 {
		t.Fatalf("group count %d", len(gf))
	}
	for g, f := range gf {
		if f.N != 2 {
			t.Fatalf("group %d has %d members", g, f.N)
		}
		if math.Abs(f.PF-25) > 1e-9 {
			t.Fatalf("group %d PF = %v, want 25", g, f.PF)
		}
	}
	whole := ProfitFairness(r)
	if whole <= 25 {
		t.Fatalf("fleet PF %v should exceed within-group PF", whole)
	}
	if m := MeanWithinGroupPF(gf); math.Abs(m-25) > 1e-9 {
		t.Fatalf("MeanWithinGroupPF = %v, want 25", m)
	}
}

func TestWithinGroupFairnessEmpty(t *testing.T) {
	gf := WithinGroupFairness(&sim.Results{}, GroupAssignment{Groups: 3, Of: nil})
	if len(gf) != 3 {
		t.Fatalf("group count %d", len(gf))
	}
	if MeanWithinGroupPF(gf) != 0 {
		t.Fatal("empty mean PF should be 0")
	}
}

func TestWithinGroupIgnoresOutOfRange(t *testing.T) {
	r := resultsWithPEs(10, 20)
	assign := GroupAssignment{Groups: 1, Of: []int{0, 9}} // 9 is invalid
	gf := WithinGroupFairness(r, assign)
	if gf[0].N != 1 {
		t.Fatalf("group 0 has %d members, want 1 (invalid index skipped)", gf[0].N)
	}
}
