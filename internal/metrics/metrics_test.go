package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// fakeResults builds a Results with the given per-trip cruise times,
// per-charge idle times, and per-taxi (revenue, on-duty hours) pairs.
func fakeResults(cruise []float64, idle []int, pe []struct{ rev, hours float64 }) *sim.Results {
	r := &sim.Results{SlotMinutes: 10}
	for i, c := range cruise {
		r.TripStats = append(r.TripStats, sim.TripStat{Taxi: 0, PickupMin: i * 60, CruiseMin: c})
	}
	for i, d := range idle {
		r.ChargeStats = append(r.ChargeStats, trace.ChargingEvent{
			VehicleID: 0, ArriveMin: i * 200, PlugMin: i*200 + d, FinishMin: i*200 + d + 60,
		})
	}
	for _, p := range pe {
		r.Accounts = append(r.Accounts, sim.TaxiAccount{
			RevenueCNY: p.rev,
			CruiseMin:  p.hours * 60, // all on-duty time booked as cruise
		})
	}
	r.ServedRequests = len(cruise)
	return r
}

func pes(vals ...float64) []struct{ rev, hours float64 } {
	out := make([]struct{ rev, hours float64 }, len(vals))
	for i, v := range vals {
		out[i] = struct{ rev, hours float64 }{rev: v, hours: 1}
	}
	return out
}

func TestPRCT(t *testing.T) {
	g := fakeResults([]float64{10, 10}, nil, pes(1))
	d := fakeResults([]float64{5, 5}, nil, pes(1))
	if got := PRCT(g, d); math.Abs(got-50) > 1e-9 {
		t.Fatalf("PRCT = %v, want 50", got)
	}
	// Worse strategy: negative.
	d2 := fakeResults([]float64{15, 15}, nil, pes(1))
	if got := PRCT(g, d2); math.Abs(got+50) > 1e-9 {
		t.Fatalf("PRCT = %v, want -50", got)
	}
	// Zero ground truth: defined as 0.
	g0 := fakeResults(nil, nil, pes(1))
	if got := PRCT(g0, d); got != 0 {
		t.Fatalf("PRCT with empty GT = %v", got)
	}
}

func TestPRIT(t *testing.T) {
	g := fakeResults(nil, []int{20, 40}, pes(1))
	d := fakeResults(nil, []int{10, 20}, pes(1))
	if got := PRIT(g, d); math.Abs(got-50) > 1e-9 {
		t.Fatalf("PRIT = %v, want 50", got)
	}
	// SD2-style worsening gives negative PRIT.
	d2 := fakeResults(nil, []int{40, 80}, pes(1))
	if got := PRIT(g, d2); math.Abs(got+100) > 1e-9 {
		t.Fatalf("PRIT = %v, want -100", got)
	}
}

func TestPIPE(t *testing.T) {
	g := fakeResults(nil, nil, pes(40, 40))
	d := fakeResults(nil, nil, pes(50, 50))
	if got := PIPE(g, d); math.Abs(got-25) > 1e-9 {
		t.Fatalf("PIPE = %v, want 25", got)
	}
}

func TestPIPF(t *testing.T) {
	g := fakeResults(nil, nil, pes(30, 50)) // variance 100
	d := fakeResults(nil, nil, pes(38, 42)) // variance 4
	if got := PIPF(g, d); math.Abs(got-96) > 1e-9 {
		t.Fatalf("PIPF = %v, want 96", got)
	}
	// Perfectly fair GT: defined as 0.
	g0 := fakeResults(nil, nil, pes(40, 40))
	if got := PIPF(g0, d); got != 0 {
		t.Fatalf("PIPF with zero-variance GT = %v", got)
	}
}

func TestFleetPEAndPF(t *testing.T) {
	r := fakeResults(nil, nil, pes(30, 50))
	if got := FleetPE(r); math.Abs(got-40) > 1e-9 {
		t.Fatalf("FleetPE = %v, want 40", got)
	}
	if got := ProfitFairness(r); math.Abs(got-100) > 1e-9 {
		t.Fatalf("PF = %v, want 100", got)
	}
}

func TestOffDutyTaxisExcluded(t *testing.T) {
	r := fakeResults(nil, nil, pes(40, 40))
	// Append a taxi that never went on duty.
	r.Accounts = append(r.Accounts, sim.TaxiAccount{})
	if got := FleetPE(r); math.Abs(got-40) > 1e-9 {
		t.Fatalf("off-duty taxi polluted FleetPE: %v", got)
	}
}

func TestHourlyBucketsAndReductions(t *testing.T) {
	g := &sim.Results{}
	d := &sim.Results{}
	// Hour 8: GT cruises 10 min, D cruises 6 min -> 40% reduction.
	g.TripStats = append(g.TripStats, sim.TripStat{PickupMin: 8 * 60, CruiseMin: 10})
	d.TripStats = append(d.TripStats, sim.TripStat{PickupMin: 8*60 + 30, CruiseMin: 6})
	prct := PRCTByHour(g, d)
	if math.Abs(prct[8]-40) > 1e-9 {
		t.Fatalf("PRCTByHour[8] = %v, want 40", prct[8])
	}
	if prct[9] != 0 {
		t.Fatalf("PRCTByHour[9] = %v, want 0 (no data)", prct[9])
	}
	// Idle at hour 3: GT 30 min vs D 15 min -> 50% reduction.
	g.ChargeStats = append(g.ChargeStats, trace.ChargingEvent{ArriveMin: 160, PlugMin: 190, FinishMin: 400})
	d.ChargeStats = append(d.ChargeStats, trace.ChargingEvent{ArriveMin: 175, PlugMin: 190, FinishMin: 400})
	prit := PRITByHour(g, d)
	if math.Abs(prit[3]-50) > 1e-9 {
		t.Fatalf("PRITByHour[3] = %v, want 50", prit[3])
	}
}

// TestZeroBaselineGuards pins the contract that every GT-relative metric is
// defined as 0 when the ground-truth baseline sums to nothing — exactly the
// inputs an all-stations-closed or zero-demand scenario produces. A missing
// guard here is a division by zero that surfaces as ±Inf/NaN in the report.
func TestZeroBaselineGuards(t *testing.T) {
	empty := &sim.Results{SlotMinutes: 10}
	d := fakeResults([]float64{5}, []int{10}, pes(40))
	for name, got := range map[string]float64{
		"PRCT": PRCT(empty, d),
		"PRIT": PRIT(empty, d),
		"PIPE": PIPE(empty, d),
		"PIPF": PIPF(empty, d),
	} {
		if got != 0 {
			t.Errorf("%s with empty baseline = %v, want 0", name, got)
		}
	}
	// Blackout case: both sides empty.
	for name, got := range map[string]float64{
		"PRCT": PRCT(empty, empty),
		"PRIT": PRIT(empty, empty),
		"PIPE": PIPE(empty, empty),
		"PIPF": PIPF(empty, empty),
	} {
		if got != 0 || math.IsNaN(got) {
			t.Errorf("%s empty-vs-empty = %v, want 0", name, got)
		}
	}
	// The full comparison bundle must format cleanly on empty results too.
	c := Compare("blackout", empty, empty)
	if s := c.String(); strings.Contains(s, "NaN") || strings.Contains(s, "%!") {
		t.Errorf("empty comparison formats badly: %q", s)
	}
}

// TestHourlyMeansEmptyHours pins that hours without any trips or charges
// report a 0 mean rather than 0/0.
func TestHourlyMeansEmptyHours(t *testing.T) {
	empty := &sim.Results{}
	for h, v := range HourlyMeanCruise(empty) {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("HourlyMeanCruise[%d] on empty results = %v", h, v)
		}
	}
	for h, v := range HourlyMeanIdle(empty) {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("HourlyMeanIdle[%d] on empty results = %v", h, v)
		}
	}
	// One populated hour must not leak into the other 23.
	r := &sim.Results{}
	r.TripStats = append(r.TripStats, sim.TripStat{PickupMin: 5 * 60, CruiseMin: 4})
	r.ChargeStats = append(r.ChargeStats, trace.ChargingEvent{ArriveMin: 5 * 60, PlugMin: 5*60 + 12, FinishMin: 5*60 + 60})
	cruise, idle := HourlyMeanCruise(r), HourlyMeanIdle(r)
	for h := 0; h < 24; h++ {
		wantCruise, wantIdle := 0.0, 0.0
		if h == 5 {
			wantCruise, wantIdle = 4, 12
		}
		if cruise[h] != wantCruise {
			t.Fatalf("HourlyMeanCruise[%d] = %v, want %v", h, cruise[h], wantCruise)
		}
		if idle[h] != wantIdle {
			t.Fatalf("HourlyMeanIdle[%d] = %v, want %v", h, idle[h], wantIdle)
		}
	}
}

func TestCompareBundle(t *testing.T) {
	g := fakeResults([]float64{10, 20}, []int{30}, pes(30, 50))
	d := fakeResults([]float64{5, 10}, []int{15}, pes(45, 45))
	c := Compare("test", g, d)
	if c.Name != "test" {
		t.Fatal("name lost")
	}
	if math.Abs(c.PRCT-50) > 1e-9 || math.Abs(c.PRIT-50) > 1e-9 {
		t.Fatalf("comparison percentages wrong: %+v", c)
	}
	if math.Abs(c.PIPE-12.5) > 1e-9 {
		t.Fatalf("PIPE = %v, want 12.5", c.PIPE)
	}
	if c.PIPF != 100 {
		t.Fatalf("PIPF = %v, want 100 (perfectly fair)", c.PIPF)
	}
	if c.MedianCruise != 7.5 || c.MedianIdle != 15 {
		t.Fatalf("medians wrong: %+v", c)
	}
	if !strings.Contains(c.String(), "PRCT") {
		t.Fatal("String() missing fields")
	}
}
