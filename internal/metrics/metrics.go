// Package metrics computes the paper's evaluation metrics (Section IV-A):
// profit efficiency PE (Eq. 2), profit fairness PF (Eq. 3), and the four
// comparison percentages PRCT, PRIT, PIPE, and PIPF (Eq. 12-15) that every
// table and figure reports.
package metrics

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// FleetPE returns the mean profit efficiency across on-duty taxis.
func FleetPE(r *sim.Results) float64 { return stats.Mean(r.PEs()) }

// ProfitFairness returns PF (Eq. 3): the population variance of per-taxi
// profit efficiency. Smaller is fairer.
func ProfitFairness(r *sim.Results) float64 { return stats.Variance(r.PEs()) }

// PRCT returns the Percentage Reduction of Cruise Time of strategy D versus
// ground truth G (Eq. 12), in percent. Positive means D cruises less.
func PRCT(g, d *sim.Results) float64 {
	gSum := sum(g.CruiseTimes())
	dSum := sum(d.CruiseTimes())
	if gSum == 0 {
		return 0
	}
	return (gSum - dSum) / gSum * 100
}

// PRIT returns the Percentage Reduction of Idle Time (Eq. 13), in percent.
func PRIT(g, d *sim.Results) float64 {
	gSum := sum(g.IdleTimes())
	dSum := sum(d.IdleTimes())
	if gSum == 0 {
		return 0
	}
	return (gSum - dSum) / gSum * 100
}

// PIPE returns the Percentage Increase of Profit Efficiency (Eq. 14), in
// percent: the relative change of the summed per-taxi PE.
func PIPE(g, d *sim.Results) float64 {
	gSum := sum(g.PEs())
	dSum := sum(d.PEs())
	if gSum == 0 {
		return 0
	}
	return (dSum - gSum) / gSum * 100
}

// PIPF returns the Percentage Increase of Profit Fairness (Eq. 15), in
// percent: the relative reduction of PF (variance), so positive is fairer.
func PIPF(g, d *sim.Results) float64 {
	gPF := ProfitFairness(g)
	dPF := ProfitFairness(d)
	if gPF == 0 {
		return 0
	}
	return (gPF - dPF) / gPF * 100
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// HourlyMeanCruise buckets per-trip cruise times by pickup hour — the series
// behind Fig. 11 (combined with a GT run via PRCTByHour).
func HourlyMeanCruise(r *sim.Results) [24]float64 {
	var hb stats.HourBuckets
	for _, ts := range r.TripStats {
		hb.Add((ts.PickupMin/60)%24, ts.CruiseMin)
	}
	return hb.Means()
}

// HourlyMeanIdle buckets per-charge idle times by plug hour (Fig. 13).
func HourlyMeanIdle(r *sim.Results) [24]float64 {
	var hb stats.HourBuckets
	for _, cs := range r.ChargeStats {
		hb.Add((cs.PlugMin/60)%24, float64(cs.IdleMin()))
	}
	return hb.Means()
}

// PRCTByHour returns the hour-of-day PRCT series of Fig. 11: the relative
// cruise-time reduction of d versus g within each pickup hour.
func PRCTByHour(g, d *sim.Results) [24]float64 {
	return reductionByHour(HourlyMeanCruise(g), HourlyMeanCruise(d))
}

// PRITByHour returns the hour-of-day PRIT series of Fig. 13.
func PRITByHour(g, d *sim.Results) [24]float64 {
	return reductionByHour(HourlyMeanIdle(g), HourlyMeanIdle(d))
}

func reductionByHour(g, d [24]float64) [24]float64 {
	var out [24]float64
	for h := 0; h < 24; h++ {
		if g[h] > 0 {
			out[h] = (g[h] - d[h]) / g[h] * 100
		}
	}
	return out
}

// Comparison bundles every headline metric of one strategy against ground
// truth — one column of Tables II/III and Figs. 15/16.
type Comparison struct {
	Name string
	// Against ground truth (percent).
	PRCT, PRIT, PIPE, PIPF float64
	// Absolute values.
	MeanPE, PF       float64
	MedianCruise     float64
	MedianIdle       float64
	ServedRequests   int
	UnservedRequests int
	GiniPE           float64
	// Spatial fairness of service across regions (see spatial.go).
	FSpatial float64
	GiniDSR  float64
	FloorDSR float64
}

// Compare computes a full Comparison of strategy results d (named name)
// against ground truth g.
func Compare(name string, g, d *sim.Results) Comparison {
	c := Comparison{
		Name:             name,
		PRCT:             PRCT(g, d),
		PRIT:             PRIT(g, d),
		PIPE:             PIPE(g, d),
		PIPF:             PIPF(g, d),
		MeanPE:           FleetPE(d),
		PF:               ProfitFairness(d),
		ServedRequests:   d.ServedRequests,
		UnservedRequests: d.UnservedRequests,
		GiniPE:           stats.Gini(d.PEs()),
		FSpatial:         SpatialFairness(d),
		GiniDSR:          GiniDSR(d),
		FloorDSR:         AccessibilityFloor(d),
	}
	c.MedianCruise, _ = stats.Median(d.CruiseTimes())
	c.MedianIdle, _ = stats.Median(d.IdleTimes())
	return c
}

// String renders the comparison as one report row. FloorDSR is the one
// field with a legitimate no-signal value (NaN under a total demand
// blackout) and renders as "n/a" there.
func (c Comparison) String() string {
	return fmt.Sprintf("%-10s PRCT=%6.1f%% PRIT=%6.1f%% PIPE=%6.1f%% PIPF=%6.1f%% meanPE=%6.2f PF=%7.2f Fsp=%5.3f floor=%s",
		c.Name, c.PRCT, c.PRIT, c.PIPE, c.PIPF, c.MeanPE, c.PF, c.FSpatial, FormatRatio(c.FloorDSR))
}

// MarshalJSON emits the comparison with FloorDSR as null when it is NaN
// (no region saw demand): encoding/json refuses non-finite floats, so
// without this a blackout scenario makes the whole report unserializable.
func (c Comparison) MarshalJSON() ([]byte, error) {
	type alias Comparison // drops the method set, avoiding recursion
	return json.Marshal(struct {
		alias
		FloorDSR json.RawMessage
	}{alias(c), JSONFloat(c.FloorDSR)})
}
