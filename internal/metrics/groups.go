package metrics

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Section V of the paper proposes grouping drivers by performance level
// (the five-star rating taxi companies already assign) and measuring
// fairness within each group rather than across the whole fleet. This file
// implements that extension.

// GroupAssignment maps each taxi to a group index in [0, Groups).
type GroupAssignment struct {
	Groups int
	Of     []int // Of[taxi] = group index
}

// StarGroupsByPE assigns taxis to `groups` performance tiers by their
// realized profit efficiency quantiles — a stand-in for the five-star
// company ratings the paper mentions. Off-duty taxis land in group 0.
func StarGroupsByPE(r *sim.Results, groups int) (GroupAssignment, error) {
	if groups < 1 {
		return GroupAssignment{}, fmt.Errorf("metrics: groups must be ≥ 1, got %d", groups)
	}
	assign := GroupAssignment{Groups: groups, Of: make([]int, len(r.Accounts))}
	pes := r.PEs()
	if len(pes) == 0 {
		return assign, nil
	}
	// Quantile cut points over on-duty taxis.
	cuts := make([]float64, groups-1)
	for i := 1; i < groups; i++ {
		cuts[i-1], _ = stats.Percentile(pes, float64(i)/float64(groups)*100)
	}
	for id, a := range r.Accounts {
		if a.OnDutyMin() <= 0 {
			assign.Of[id] = 0
			continue
		}
		pe := a.ProfitEfficiency()
		g := 0
		for g < groups-1 && pe > cuts[g] {
			g++
		}
		assign.Of[id] = g
	}
	return assign, nil
}

// GroupFairness is the within-group profit fairness report of Section V.
type GroupFairness struct {
	Group  int
	N      int
	MeanPE float64
	PF     float64 // within-group variance of PE
}

// WithinGroupFairness computes PF (Eq. 3) inside each group. The paper's
// argument: a veteran out-earning a novice is not unfair, so PF should be
// measured among peers.
func WithinGroupFairness(r *sim.Results, assign GroupAssignment) []GroupFairness {
	buckets := make([][]float64, assign.Groups)
	for id, a := range r.Accounts {
		if a.OnDutyMin() <= 0 || id >= len(assign.Of) {
			continue
		}
		g := assign.Of[id]
		if g < 0 || g >= assign.Groups {
			continue
		}
		buckets[g] = append(buckets[g], a.ProfitEfficiency())
	}
	out := make([]GroupFairness, assign.Groups)
	for g, xs := range buckets {
		out[g] = GroupFairness{
			Group:  g,
			N:      len(xs),
			MeanPE: stats.Mean(xs),
			PF:     stats.Variance(xs),
		}
	}
	return out
}

// MeanWithinGroupPF aggregates the per-group variances weighted by group
// size — the single number to compare across strategies under the grouped
// fairness definition.
func MeanWithinGroupPF(gf []GroupFairness) float64 {
	var sum float64
	var n int
	for _, g := range gf {
		sum += g.PF * float64(g.N)
		n += g.N
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
