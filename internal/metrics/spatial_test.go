package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func spatialResults(demand, served []int) *sim.Results {
	return &sim.Results{RegionDemand: demand, RegionServed: served}
}

func TestRegionDSRSkipsZeroDemand(t *testing.T) {
	r := spatialResults([]int{10, 0, 4}, []int{5, 0, 4})
	got := RegionDSR(r)
	want := []float64{0.5, 1}
	if len(got) != len(want) {
		t.Fatalf("DSR %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("DSR %v, want %v", got, want)
		}
	}
}

func TestRegionDSRNilWithoutTallies(t *testing.T) {
	if got := RegionDSR(&sim.Results{}); got != nil {
		t.Fatalf("pre-analytics results produced DSR %v, want nil", got)
	}
}

func TestSpatialFairnessPerfectlyEven(t *testing.T) {
	r := spatialResults([]int{10, 20, 30}, []int{5, 10, 15})
	if f := SpatialFairness(r); math.Abs(f-1) > 1e-9 {
		t.Fatalf("even service F_spatial = %v, want 1", f)
	}
	if g := GiniDSR(r); math.Abs(g) > 1e-9 {
		t.Fatalf("even service GiniDSR = %v, want 0", g)
	}
}

func TestSpatialFairnessPenalizesConcentration(t *testing.T) {
	even := spatialResults([]int{10, 10}, []int{8, 8})
	skew := spatialResults([]int{10, 10}, []int{10, 2})
	if fe, fs := SpatialFairness(even), SpatialFairness(skew); fs >= fe {
		t.Fatalf("skewed service F_spatial %v >= even %v", fs, fe)
	}
}

func TestSpatialFairnessVacuous(t *testing.T) {
	// No demand anywhere: fairness is vacuously 1 (and NaN-free), while the
	// accessibility floor reports NaN so "no signal" is distinguishable.
	r := spatialResults([]int{0, 0}, []int{0, 0})
	if f := SpatialFairness(r); f != 1 {
		t.Fatalf("vacuous F_spatial = %v, want 1", f)
	}
	if fl := AccessibilityFloor(r); !math.IsNaN(fl) {
		t.Fatalf("vacuous floor = %v, want NaN", fl)
	}
}

func TestAccessibilityFloorIsWorstRegion(t *testing.T) {
	r := spatialResults([]int{10, 10, 5}, []int{9, 3, 5})
	if fl := AccessibilityFloor(r); math.Abs(fl-0.3) > 1e-12 {
		t.Fatalf("floor = %v, want 0.3", fl)
	}
}

func TestCompareCarriesSpatialFields(t *testing.T) {
	g := spatialResults([]int{10, 10}, []int{10, 10})
	d := spatialResults([]int{10, 10}, []int{10, 2})
	c := Compare("test", g, d)
	if c.FSpatial >= 1 || c.FSpatial <= 0 {
		t.Fatalf("FSpatial = %v, want in (0,1)", c.FSpatial)
	}
	if math.Abs(c.FloorDSR-0.2) > 1e-12 {
		t.Fatalf("FloorDSR = %v, want 0.2", c.FloorDSR)
	}
	if math.Abs(c.GiniDSR-(1-c.FSpatial)) > 1e-12 {
		t.Fatalf("GiniDSR %v inconsistent with FSpatial %v", c.GiniDSR, c.FSpatial)
	}
}

func TestBlackoutRendersWithoutNaN(t *testing.T) {
	// Total demand blackout: every region demanded nothing, so the
	// accessibility floor is NaN ("no signal"). The formatters must not leak
	// that NaN — text renders "n/a" and JSON encodes null (raw NaN makes
	// encoding/json fail outright, taking the whole report with it).
	g := spatialResults([]int{10, 10}, []int{10, 10})
	d := spatialResults([]int{0, 0}, []int{0, 0})
	c := Compare("blackout", g, d)
	if !math.IsNaN(c.FloorDSR) {
		t.Fatalf("blackout FloorDSR = %v, want NaN", c.FloorDSR)
	}
	if got := FormatRatio(c.FloorDSR); got != "n/a" {
		t.Fatalf("FormatRatio(NaN) = %q, want \"n/a\"", got)
	}
	if s := c.String(); strings.Contains(s, "NaN") || !strings.Contains(s, "floor=n/a") {
		t.Fatalf("blackout row renders %q", s)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("blackout comparison does not marshal: %v", err)
	}
	if !strings.Contains(string(data), `"FloorDSR":null`) {
		t.Fatalf("blackout JSON = %s, want FloorDSR null", data)
	}
}

func TestFormatRatioFinite(t *testing.T) {
	if got := FormatRatio(0.25); got != "0.250" {
		t.Fatalf("FormatRatio(0.25) = %q, want \"0.250\"", got)
	}
}

func TestJSONFloatRoundTrips(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0.5, "0.5"},
		{math.NaN(), "null"},
		{math.Inf(1), "null"},
		{math.Inf(-1), "null"},
	}
	for _, tc := range cases {
		if got := string(JSONFloat(tc.in)); got != tc.want {
			t.Fatalf("JSONFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
