package metrics

// Spatial-fairness analytics: the displacement policy's objective is not
// only that drivers earn equally (PF over per-taxi PE) but that riders are
// served equally wherever they request — remote regions must not be
// starved because displacement concentrates supply downtown. These metrics
// reduce the per-region demand/served tallies the engines record to a
// demand-service ratio distribution and summarize its equity.

import (
	"encoding/json"
	"math"
	"strconv"

	"repro/internal/sim"
	"repro/internal/stats"
)

// RegionDSR returns the demand-service ratio (served/demanded) of every
// region with nonzero demand. Regions that saw no demand carry no service
// signal and are skipped rather than counted as 0 or 1. Returns nil when
// the results predate the spatial tallies.
func RegionDSR(r *sim.Results) []float64 {
	if r.RegionDemand == nil || r.RegionServed == nil {
		return nil
	}
	out := make([]float64, 0, len(r.RegionDemand))
	for i, d := range r.RegionDemand {
		if d > 0 {
			out = append(out, float64(r.RegionServed[i])/float64(d))
		}
	}
	return out
}

// GiniDSR returns the Gini coefficient of the demand-service ratio across
// regions with demand: 0 when every region is served at the same rate.
func GiniDSR(r *sim.Results) float64 { return stats.Gini(RegionDSR(r)) }

// SpatialFairness returns F_spatial = 1 − GiniDSR: 1 is perfectly even
// service across regions, lower is more spatially concentrated. NaN-free:
// no demand anywhere yields 1 (vacuously fair).
func SpatialFairness(r *sim.Results) float64 {
	dsr := RegionDSR(r)
	if len(dsr) == 0 {
		return 1
	}
	return 1 - stats.Gini(dsr)
}

// AccessibilityFloor returns the worst region's demand-service ratio — the
// floor the fairness-aware displacement is meant to lift. No demand
// anywhere yields NaN so callers cannot mistake "no signal" for "perfect".
func AccessibilityFloor(r *sim.Results) float64 {
	dsr := RegionDSR(r)
	if len(dsr) == 0 {
		return math.NaN()
	}
	floor := dsr[0]
	for _, v := range dsr[1:] {
		if v < floor {
			floor = v
		}
	}
	return floor
}

// FormatRatio renders a possibly-NaN ratio metric for text tables: a
// no-signal NaN (e.g. AccessibilityFloor under a total demand blackout)
// prints as "n/a" rather than Go's "NaN".
func FormatRatio(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// JSONFloat marshals v as a JSON number, or as null when v is NaN or ±Inf:
// encoding/json rejects non-finite floats outright ("unsupported value"),
// so any report struct holding a possibly-NaN metric must route it through
// here (see Comparison.MarshalJSON).
func JSONFloat(v float64) json.RawMessage {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.RawMessage("null")
	}
	b, _ := json.Marshal(v)
	return b
}
