package station

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/partition"
)

func testStation(points int) Station {
	return Station{
		ID:      0,
		Name:    "CS-000",
		Loc:     geo.Point{Lng: 114, Lat: 22.5},
		Region:  0,
		Points:  points,
		Charger: energy.DefaultFastCharger(),
	}
}

func TestArrivePlugsWhenFree(t *testing.T) {
	s := NewState(testStation(2))
	if !s.Arrive(1) {
		t.Fatal("first arrival should plug in")
	}
	if !s.Arrive(2) {
		t.Fatal("second arrival should plug in")
	}
	if s.Arrive(3) {
		t.Fatal("third arrival should queue")
	}
	if s.Occupied() != 2 || s.QueueLen() != 1 || s.Free() != 0 {
		t.Fatalf("occupied=%d queue=%d free=%d", s.Occupied(), s.QueueLen(), s.Free())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFinishPromotesFIFO(t *testing.T) {
	s := NewState(testStation(1))
	s.Arrive(10)
	s.Arrive(20)
	s.Arrive(30)
	if got := s.Finish(10); got != 20 {
		t.Fatalf("promoted %d, want 20 (FIFO)", got)
	}
	if got := s.Finish(20); got != 30 {
		t.Fatalf("promoted %d, want 30", got)
	}
	if got := s.Finish(30); got != -1 {
		t.Fatalf("promoted %d, want -1 (empty queue)", got)
	}
	if s.Occupied() != 0 || s.QueueLen() != 0 {
		t.Fatal("station not empty after all finished")
	}
}

func TestFinishNotChargingPanics(t *testing.T) {
	s := NewState(testStation(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Finish of non-charging taxi did not panic")
		}
	}()
	s.Finish(99)
}

func TestArriveTwicePanics(t *testing.T) {
	s := NewState(testStation(1))
	s.Arrive(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Arrive did not panic")
		}
	}()
	s.Arrive(1)
}

func TestAbandon(t *testing.T) {
	s := NewState(testStation(1))
	s.Arrive(1)
	s.Arrive(2)
	s.Arrive(3)
	if !s.Abandon(2) {
		t.Fatal("Abandon of queued taxi failed")
	}
	if s.Abandon(2) {
		t.Fatal("Abandon of absent taxi succeeded")
	}
	if s.Abandon(1) {
		t.Fatal("Abandon of charging taxi succeeded")
	}
	if got := s.Finish(1); got != 3 {
		t.Fatalf("promoted %d after abandon, want 3", got)
	}
}

func TestIsChargingAndReset(t *testing.T) {
	s := NewState(testStation(1))
	s.Arrive(5)
	if !s.IsCharging(5) || s.IsCharging(6) {
		t.Fatal("IsCharging wrong")
	}
	s.Reset()
	if s.Occupied() != 0 || s.QueueLen() != 0 || s.IsCharging(5) {
		t.Fatal("Reset did not clear state")
	}
}

func TestInvariantQueueWithFreePoints(t *testing.T) {
	s := NewState(testStation(2))
	s.Arrive(1)
	s.waiting = append(s.waiting, 9) // corrupt deliberately
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("invariant check missed queue-with-free-points")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	good := []Station{testStation(5)}
	if _, err := NewNetwork(good); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty network accepted")
	}
	bad := testStation(5)
	bad.ID = 3
	if _, err := NewNetwork([]Station{bad}); err == nil {
		t.Error("non-dense IDs accepted")
	}
	zero := testStation(0)
	if _, err := NewNetwork([]Station{zero}); err == nil {
		t.Error("zero points accepted")
	}
	badCharger := testStation(5)
	badCharger.Charger.PowerKW = -1
	if _, err := NewNetwork([]Station{badCharger}); err == nil {
		t.Error("invalid charger accepted")
	}
}

func TestNetworkNearest(t *testing.T) {
	stations := []Station{
		{ID: 0, Loc: geo.Point{Lng: 0, Lat: 0}, Points: 1, Charger: energy.DefaultFastCharger()},
		{ID: 1, Loc: geo.Point{Lng: 1, Lat: 0}, Points: 1, Charger: energy.DefaultFastCharger()},
		{ID: 2, Loc: geo.Point{Lng: 2, Lat: 0}, Points: 1, Charger: energy.DefaultFastCharger()},
	}
	n, err := NewNetwork(stations)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Nearest(geo.Point{Lng: 0.1, Lat: 0}, 2)
	if len(res) != 2 || res[0].Label != 0 || res[1].Label != 1 {
		t.Fatalf("Nearest = %+v", res)
	}
	if n.TotalPoints() != 3 {
		t.Fatalf("TotalPoints = %d", n.TotalPoints())
	}
}

func TestGenerateShenzhenScale(t *testing.T) {
	p := partition.GenerateShenzhen(1)
	seeds := make([]RegSeed, p.Len())
	for i, r := range p.Regions() {
		seeds[i] = RegSeed{Region: r.ID, Centroid: r.Centroid, Weight: 1}
	}
	n, err := Generate(1, GenerateOpts{Count: 123, Regions: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 123 {
		t.Fatalf("station count = %d, want 123", n.Len())
	}
	// Paper: 123 stations with over 5,000 charging points.
	if tp := n.TotalPoints(); tp < 2400 || tp > 7500 {
		t.Fatalf("total points = %d, want thousands (paper: >5000)", tp)
	}
	regions := make(map[int]bool)
	for _, s := range n.Stations() {
		if s.Points < 20 || s.Points > 60 {
			t.Fatalf("station %d has %d points, want 20-60", s.ID, s.Points)
		}
		if regions[s.Region] {
			t.Fatalf("two stations in region %d (sampling should be without replacement)", s.Region)
		}
		regions[s.Region] = true
		if s.Charger.PowerKW < 40 || s.Charger.PowerKW > 60 {
			t.Fatalf("station %d charger power %v", s.ID, s.Charger.PowerKW)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := partition.GenerateShenzhen(1)
	seeds := make([]RegSeed, p.Len())
	for i, r := range p.Regions() {
		seeds[i] = RegSeed{Region: r.ID, Centroid: r.Centroid, Weight: float64(i%7) + 1}
	}
	a, _ := Generate(5, GenerateOpts{Count: 50, Regions: seeds})
	b, _ := Generate(5, GenerateOpts{Count: 50, Regions: seeds})
	for i := 0; i < 50; i++ {
		if a.Station(i).Loc != b.Station(i).Loc || a.Station(i).Points != b.Station(i).Points {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(1, GenerateOpts{Count: 0}); err == nil {
		t.Error("Count=0 accepted")
	}
	if _, err := Generate(1, GenerateOpts{Count: 5, Regions: []RegSeed{{}}}); err == nil {
		t.Error("too few regions accepted")
	}
}
