package station

import (
	"reflect"
	"testing"
)

func TestDerateBlocksNewArrivals(t *testing.T) {
	s := NewState(testStation(3))
	s.SetDerate(2)
	if s.EffectivePoints() != 1 || s.Free() != 1 {
		t.Fatalf("effective=%d free=%d, want 1, 1", s.EffectivePoints(), s.Free())
	}
	if !s.Arrive(1) {
		t.Fatal("first arrival should plug into the remaining point")
	}
	if s.Arrive(2) {
		t.Fatal("second arrival should queue behind the derate")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDerateNeverInterruptsSessions(t *testing.T) {
	s := NewState(testStation(2))
	s.Arrive(1)
	s.Arrive(2)
	if promoted := s.SetDerate(2); promoted != nil {
		t.Fatalf("derating a full station promoted %v", promoted)
	}
	// Both sessions keep running even though effective capacity is zero.
	if !s.IsCharging(1) || !s.IsCharging(2) {
		t.Fatal("derate interrupted an in-progress session")
	}
	// A finishing session must NOT promote while occupancy >= effective.
	s.waiting = []int{9}
	if got := s.Finish(1); got != -1 {
		t.Fatalf("Finish promoted %d into derated capacity", got)
	}
	if s.Occupied() != 1 || s.Free() != 0 {
		t.Fatalf("occupied=%d free=%d after drain", s.Occupied(), s.Free())
	}
}

func TestDerateLiftPromotesFIFO(t *testing.T) {
	s := NewState(testStation(3))
	s.SetDerate(3)
	for _, id := range []int{4, 5, 6} {
		if s.Arrive(id) {
			t.Fatalf("taxi %d plugged into a fully derated station", id)
		}
	}
	if promoted := s.SetDerate(1); !reflect.DeepEqual(promoted, []int{4, 5}) {
		t.Fatalf("promoted %v, want [4 5]", promoted)
	}
	if promoted := s.SetDerate(0); !reflect.DeepEqual(promoted, []int{6}) {
		t.Fatalf("promoted %v, want [6]", promoted)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDerateClampedToInventory(t *testing.T) {
	s := NewState(testStation(2))
	s.SetDerate(99)
	if s.Derate() != 2 || s.EffectivePoints() != 0 {
		t.Fatalf("derate=%d effective=%d, want 2, 0", s.Derate(), s.EffectivePoints())
	}
	s.SetDerate(-4)
	if s.Derate() != 0 || s.EffectivePoints() != 2 {
		t.Fatalf("derate=%d effective=%d, want 0, 2", s.Derate(), s.EffectivePoints())
	}
}

func TestDrainQueue(t *testing.T) {
	s := NewState(testStation(1))
	s.Arrive(1)
	s.Arrive(2)
	s.Arrive(3)
	if got := s.DrainQueue(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("drained %v, want [2 3]", got)
	}
	if s.QueueLen() != 0 || !s.IsCharging(1) {
		t.Fatal("drain touched the charging set or left queue entries")
	}
	if got := s.DrainQueue(); got != nil {
		t.Fatalf("second drain returned %v", got)
	}
}

func TestResetClearsDerate(t *testing.T) {
	s := NewState(testStation(2))
	s.SetDerate(2)
	s.Reset()
	if s.Derate() != 0 || s.EffectivePoints() != 2 {
		t.Fatalf("derate=%d effective=%d after Reset", s.Derate(), s.EffectivePoints())
	}
}
