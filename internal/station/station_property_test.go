package station

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/energy"
)

// stationModel drives a State through a random op sequence while tracking
// the expected arrival order and population independently.
type stationModel struct {
	st      *State
	arrived []int // queue arrival order (oracle for FIFO promotion)
	plugged map[int]bool
	next    int // next taxi ID to hand out
}

func newStationModel(points int) *stationModel {
	return &stationModel{
		st: NewState(Station{
			ID: 0, Points: points,
			Charger: energy.DefaultFastCharger(),
		}),
		plugged: make(map[int]bool),
	}
}

// Properties (DESIGN.md §6): station queues promote strictly in FIFO order,
// no taxi is ever lost or duplicated, and CheckInvariants holds after every
// operation.
func TestStationQueueFIFONoLostTaxi(t *testing.T) {
	prop := func(seed int64, pointsRaw, opsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		points := int(pointsRaw%4) + 1
		m := newStationModel(points)
		ops := int(opsRaw%120) + 10
		for i := 0; i < ops; i++ {
			switch r.Intn(3) {
			case 0: // arrive
				id := m.next
				m.next++
				plugged := m.st.Arrive(id)
				if plugged {
					if m.st.Occupied() > points {
						t.Logf("op %d: occupancy %d exceeds %d points", i, m.st.Occupied(), points)
						return false
					}
					if len(m.arrived) > 0 {
						t.Logf("op %d: taxi %d plugged straight in past a non-empty queue", i, id)
						return false
					}
					m.plugged[id] = true
				} else {
					m.arrived = append(m.arrived, id)
				}
			case 1: // finish a random charging taxi
				if len(m.plugged) == 0 {
					continue
				}
				var ids []int
				for id := range m.plugged {
					ids = append(ids, id)
				}
				// Map order is random anyway; pick deterministically for the
				// failure-case replay.
				id := ids[0]
				for _, v := range ids {
					if v < id {
						id = v
					}
				}
				promoted := m.st.Finish(id)
				delete(m.plugged, id)
				if len(m.arrived) == 0 {
					if promoted != -1 {
						t.Logf("op %d: promoted %d from an empty queue", i, promoted)
						return false
					}
				} else {
					if promoted != m.arrived[0] {
						t.Logf("op %d: promoted %d, FIFO head was %d", i, promoted, m.arrived[0])
						return false
					}
					m.plugged[promoted] = true
					m.arrived = m.arrived[1:]
				}
			case 2: // abandon a random waiting taxi
				if len(m.arrived) == 0 {
					continue
				}
				k := r.Intn(len(m.arrived))
				id := m.arrived[k]
				if !m.st.Abandon(id) {
					t.Logf("op %d: taxi %d was waiting but Abandon returned false", i, id)
					return false
				}
				m.arrived = append(m.arrived[:k], m.arrived[k+1:]...)
			}
			if err := m.st.CheckInvariants(); err != nil {
				t.Logf("op %d: %v", i, err)
				return false
			}
			// No lost taxis: the state must account for exactly the taxis the
			// model believes are present.
			if m.st.Occupied() != len(m.plugged) || m.st.QueueLen() != len(m.arrived) {
				t.Logf("op %d: state has %d charging / %d waiting, model has %d / %d",
					i, m.st.Occupied(), m.st.QueueLen(), len(m.plugged), len(m.arrived))
				return false
			}
			for id := range m.plugged {
				if !m.st.IsCharging(id) {
					t.Logf("op %d: taxi %d lost from charging set", i, id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
