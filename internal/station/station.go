// Package station models the charging infrastructure of Section II: 123
// stations, each with a fixed inventory of fast-charging points and a FIFO
// waiting queue. Queue dynamics are the mechanism behind the paper's idle
// time T_idle (time between arriving at a station and plugging in), so they
// are modeled explicitly rather than folded into a delay constant.
package station

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/rng"

	"repro/internal/energy"
)

// Station is the static description of one charging station (the charging
// station dataset of Table I).
type Station struct {
	ID     int
	Name   string
	Loc    geo.Point
	Region int // region containing the station
	Points int // number of fast charging points
	// Charger describes the hardware at this station's points.
	Charger energy.Charger
}

// State is the runtime occupancy state of one station: which taxis hold a
// point and which are waiting, in arrival order.
type State struct {
	station  Station
	charging map[int]bool // taxi IDs currently plugged in
	waiting  []int        // FIFO of taxi IDs
	// derate is the number of points currently unavailable (capacity
	// perturbation, e.g. broken chargers or grid limits). In-progress
	// sessions are never interrupted; the excess drains as they finish.
	derate int
}

// NewState returns an empty runtime state for st.
func NewState(st Station) *State {
	return &State{station: st, charging: make(map[int]bool)}
}

// Station returns the static description.
func (s *State) Station() Station { return s.station }

// Arrive registers taxi at the station. If a point is free the taxi plugs in
// immediately and Arrive returns true; otherwise it joins the FIFO queue and
// Arrive returns false. Arriving twice without leaving is a programming
// error and panics.
func (s *State) Arrive(taxi int) (plugged bool) {
	if s.charging[taxi] || s.inQueue(taxi) {
		panic(fmt.Sprintf("station: taxi %d arrived twice at station %d", taxi, s.station.ID))
	}
	if len(s.charging) < s.EffectivePoints() {
		s.charging[taxi] = true
		return true
	}
	s.waiting = append(s.waiting, taxi)
	return false
}

// EffectivePoints returns the points currently usable: the inventory minus
// the derate, floored at zero.
func (s *State) EffectivePoints() int {
	p := s.station.Points - s.derate
	if p < 0 {
		return 0
	}
	return p
}

// Derate returns the number of points currently unavailable.
func (s *State) Derate() int { return s.derate }

// SetDerate marks n points unavailable to new sessions (clamped to the
// inventory). Taxis already plugged in keep charging even when occupancy
// exceeds the derated capacity — the excess drains as sessions finish.
// Lowering the derate promotes waiting taxis into whatever capacity it
// frees; the promoted IDs are returned in FIFO order (empty when none).
func (s *State) SetDerate(n int) (promoted []int) {
	if n < 0 {
		n = 0
	}
	if n > s.station.Points {
		n = s.station.Points
	}
	s.derate = n
	for len(s.waiting) > 0 && len(s.charging) < s.EffectivePoints() {
		next := s.waiting[0]
		s.waiting = s.waiting[1:]
		s.charging[next] = true
		promoted = append(promoted, next)
	}
	return promoted
}

// DrainQueue empties the waiting queue and returns the evicted taxi IDs in
// FIFO order. The simulator uses it when a station closes: waiting taxis
// must re-plan rather than queue at a dead station.
func (s *State) DrainQueue() []int {
	out := s.waiting
	s.waiting = nil
	return out
}

func (s *State) inQueue(taxi int) bool {
	for _, t := range s.waiting {
		if t == taxi {
			return true
		}
	}
	return false
}

// Finish releases the point held by taxi and promotes the head of the queue
// if any. It returns the promoted taxi ID, or -1 if the queue was empty. It
// panics if taxi was not charging.
func (s *State) Finish(taxi int) (promoted int) {
	if !s.charging[taxi] {
		panic(fmt.Sprintf("station: taxi %d finished but was not charging at station %d", taxi, s.station.ID))
	}
	delete(s.charging, taxi)
	if len(s.waiting) == 0 || len(s.charging) >= s.EffectivePoints() {
		// Nothing to promote, or the freed point is one the derate already
		// claimed (occupancy still at or above the derated capacity).
		return -1
	}
	next := s.waiting[0]
	s.waiting = s.waiting[1:]
	s.charging[next] = true
	return next
}

// Abandon removes a waiting taxi from the queue (e.g. the policy redirects
// it). It returns false if the taxi was not waiting.
func (s *State) Abandon(taxi int) bool {
	for i, t := range s.waiting {
		if t == taxi {
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			return true
		}
	}
	return false
}

// Occupied returns the number of points in use.
func (s *State) Occupied() int { return len(s.charging) }

// Free returns the number of unoccupied charging points available to new
// sessions (a component of the paper's global-view state), respecting any
// derate and floored at zero while excess sessions drain.
func (s *State) Free() int {
	f := s.EffectivePoints() - len(s.charging)
	if f < 0 {
		return 0
	}
	return f
}

// QueueLen returns the number of taxis waiting.
func (s *State) QueueLen() int { return len(s.waiting) }

// IsCharging reports whether taxi currently holds a point.
func (s *State) IsCharging(taxi int) bool { return s.charging[taxi] }

// Reset clears all runtime occupancy and any derate.
func (s *State) Reset() {
	s.charging = make(map[int]bool)
	s.waiting = nil
	s.derate = 0
}

// CheckInvariants verifies internal consistency; tests and the simulator's
// debug mode call it.
func (s *State) CheckInvariants() error {
	if len(s.charging) > s.station.Points {
		return fmt.Errorf("station %d: %d charging > %d points", s.station.ID, len(s.charging), s.station.Points)
	}
	if s.derate < 0 || s.derate > s.station.Points {
		return fmt.Errorf("station %d: derate %d outside [0, %d]", s.station.ID, s.derate, s.station.Points)
	}
	if len(s.waiting) > 0 && len(s.charging) < s.EffectivePoints() {
		return fmt.Errorf("station %d: queue non-empty with %d free points", s.station.ID, s.Free())
	}
	seen := make(map[int]bool)
	for _, t := range s.waiting {
		if seen[t] {
			return fmt.Errorf("station %d: taxi %d queued twice", s.station.ID, t)
		}
		seen[t] = true
		if s.charging[t] {
			return fmt.Errorf("station %d: taxi %d both charging and queued", s.station.ID, t)
		}
	}
	return nil
}

// Network is the set of all stations plus a spatial index for k-nearest
// queries ("the nearest five charging stations" of the action space).
type Network struct {
	stations []Station
	index    *geo.GridIndex
}

// NewNetwork builds a network from stations with dense IDs 0..n-1.
func NewNetwork(stations []Station) (*Network, error) {
	if len(stations) == 0 {
		return nil, fmt.Errorf("station: empty network")
	}
	pts := make([]geo.Point, len(stations))
	for i, st := range stations {
		if st.ID != i {
			return nil, fmt.Errorf("station: station at index %d has ID %d; IDs must be dense", i, st.ID)
		}
		if st.Points <= 0 {
			return nil, fmt.Errorf("station %d: must have at least one point", st.ID)
		}
		if err := st.Charger.Validate(); err != nil {
			return nil, fmt.Errorf("station %d: %w", st.ID, err)
		}
		pts[i] = st.Loc
	}
	cells := 1
	for cells*cells < len(stations) {
		cells++
	}
	return &Network{
		stations: append([]Station(nil), stations...),
		index:    geo.NewGridIndex(pts, nil, cells),
	}, nil
}

// Len returns the number of stations.
func (n *Network) Len() int { return len(n.stations) }

// Station returns the station with the given ID.
func (n *Network) Station(id int) Station { return n.stations[id] }

// Stations returns all stations. The slice must not be modified.
func (n *Network) Stations() []Station { return n.stations }

// Nearest returns the k stations closest to p ordered by distance.
func (n *Network) Nearest(p geo.Point, k int) []geo.Neighbor {
	return n.index.KNearest(p, k)
}

// TotalPoints returns the total charging point inventory.
func (n *Network) TotalPoints() int {
	var total int
	for _, s := range n.stations {
		total += s.Points
	}
	return total
}

// GenerateOpts controls synthetic station placement.
type GenerateOpts struct {
	Count     int       // number of stations (paper: 123)
	MinPoints int       // minimum points per station (default 20)
	MaxPoints int       // maximum points per station (default 60)
	Regions   []RegSeed // candidate regions with placement weights
}

// RegSeed is a candidate region for station placement.
type RegSeed struct {
	Region   int
	Centroid geo.Point
	Weight   float64 // placement probability weight (e.g. demand share)
}

// Generate places Count stations by weighted sampling over candidate regions
// without replacement, with point counts uniform in [MinPoints, MaxPoints]
// and charger power uniform in 40-60 kW. The paper's network has 123
// stations with >5,000 points total; the defaults reproduce that scale.
func Generate(seed int64, opts GenerateOpts) (*Network, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("station: Count must be positive")
	}
	if len(opts.Regions) < opts.Count {
		return nil, fmt.Errorf("station: %d candidate regions for %d stations", len(opts.Regions), opts.Count)
	}
	if opts.MinPoints <= 0 {
		opts.MinPoints = 20
	}
	if opts.MaxPoints < opts.MinPoints {
		opts.MaxPoints = opts.MinPoints + 40
	}
	src := rng.SplitStable(seed, "stations")

	weights := make([]float64, len(opts.Regions))
	for i, r := range opts.Regions {
		weights[i] = r.Weight
		if weights[i] <= 0 {
			weights[i] = 1e-9
		}
	}
	chosen := make([]int, 0, opts.Count)
	for len(chosen) < opts.Count {
		i := src.WeightedChoice(weights)
		if weights[i] == 0 {
			continue
		}
		weights[i] = 0
		chosen = append(chosen, i)
	}

	stations := make([]Station, opts.Count)
	for id, ri := range chosen {
		r := opts.Regions[ri]
		loc := geo.Point{
			Lng: r.Centroid.Lng + src.Uniform(-0.004, 0.004),
			Lat: r.Centroid.Lat + src.Uniform(-0.004, 0.004),
		}
		stations[id] = Station{
			ID:     id,
			Name:   fmt.Sprintf("CS-%03d", id),
			Loc:    loc,
			Region: r.Region,
			Points: opts.MinPoints + src.Intn(opts.MaxPoints-opts.MinPoints+1),
			Charger: energy.Charger{
				PowerKW:      src.Uniform(40, 60),
				TaperKneeSoC: 0.80,
				TaperFloor:   0.20,
			},
		}
	}
	return NewNetwork(stations)
}
