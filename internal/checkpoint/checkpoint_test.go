package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// stubLearner is a minimal Checkpointer with enough state to prove the
// fail-closed contract: after any rejected load, every field must be exactly
// what it was before.
type stubLearner struct {
	kind        string
	fingerprint uint64
	phase, ep   int

	a    int
	b    float64
	xs   []float64
	flag bool
}

func newStub() *stubLearner {
	return &stubLearner{
		kind:        "stub",
		fingerprint: Fingerprint("stub|v=1"),
		phase:       PhaseTrain,
		ep:          3,
		a:           17,
		b:           2.5,
		xs:          []float64{1, -2, 3.75},
		flag:        true,
	}
}

func (s *stubLearner) CheckpointKind() string         { return s.kind }
func (s *stubLearner) CheckpointFingerprint() uint64  { return s.fingerprint }
func (s *stubLearner) CheckpointProgress() (int, int) { return s.phase, s.ep }

func (s *stubLearner) EncodeCheckpoint(e *Encoder) {
	e.Int(s.a)
	e.F64(s.b)
	e.Floats(s.xs)
	e.Bool(s.flag)
}

func (s *stubLearner) DecodeCheckpoint(d *Decoder) error {
	a, b, xs, flag := d.Int(), d.F64(), d.Floats(), d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if a < 0 {
		return fmt.Errorf("stub: negative counter %d", a)
	}
	s.a, s.b, s.xs, s.flag = a, b, xs, flag
	return nil
}

// snapshot copies the mutable state for before/after comparison.
func (s *stubLearner) snapshot() stubLearner {
	cp := *s
	cp.xs = append([]float64(nil), s.xs...)
	return cp
}

func mustMarshal(t *testing.T, c Checkpointer) []byte {
	t.Helper()
	data, err := Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	src := newStub()
	data := mustMarshal(t, src)

	dst := newStub()
	dst.a, dst.b, dst.xs, dst.flag = 0, 0, nil, false
	meta, err := Unmarshal(data, dst)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != Version || meta.Kind != "stub" || meta.Phase != PhaseTrain || meta.Episode != 3 {
		t.Errorf("meta = %+v", meta)
	}
	if dst.a != src.a || dst.b != src.b || !reflect.DeepEqual(dst.xs, src.xs) || dst.flag != src.flag {
		t.Errorf("restored state differs: %+v vs %+v", dst, src)
	}

	// Determinism: the restored learner serializes to the identical bytes.
	if again := mustMarshal(t, dst); !reflect.DeepEqual(again, data) {
		t.Error("marshal after restore is not byte-identical")
	}
}

// TestCorruptionBattery is the core fail-closed proof: every corruption mode
// is rejected with its distinct sentinel, and the learner is untouched.
func TestCorruptionBattery(t *testing.T) {
	valid := mustMarshal(t, newStub())
	meta := Meta{Version: Version, Kind: "stub", Fingerprint: Fingerprint("stub|v=1"), Phase: PhaseTrain, Episode: 3}

	// Container offsets for the stub: magic 0..4, version 4..8,
	// kind length+bytes 8..14, fingerprint 14..22, phase 22..26,
	// episode 26..34, payload length 34..42, payload 42.., digest last 32.
	flip := func(off int) []byte {
		data := append([]byte(nil), valid...)
		data[off] ^= 0x02
		return data
	}
	truncate := func(n int) []byte { return append([]byte(nil), valid[:n]...) }
	badPayload := func(build func(e *Encoder)) []byte {
		e := NewEncoder()
		build(e)
		return Seal(meta, e.Bytes())
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty file", nil, ErrTruncated},
		{"shorter than magic", truncate(3), ErrTruncated},
		{"header cut mid-fingerprint", truncate(18), ErrTruncated},
		{"payload cut short", truncate(len(valid) - 40), ErrTruncated},
		{"digest cut short", truncate(len(valid) - 5), ErrTruncated},
		{"magic bit flip", flip(0), ErrBadMagic},
		{"version bit flip", flip(4), ErrVersion},
		{"fingerprint bit flip", flip(14), ErrDigest},
		{"payload bit flip", flip(44), ErrDigest},
		{"digest bit flip", flip(len(valid) - 1), ErrDigest},
		{"future version", Seal(Meta{Version: Version + 1, Kind: "stub", Fingerprint: meta.Fingerprint}, nil), ErrVersion},
		// Version-1 files carry float64 weight payloads; the header check
		// must reject them before the float32 payload decoder ever runs.
		{"previous version (float64-era file)", Seal(Meta{Version: 1, Kind: "stub", Fingerprint: meta.Fingerprint}, nil), ErrVersion},
		{"kind mismatch", Seal(Meta{Version: Version, Kind: "dqn", Fingerprint: meta.Fingerprint}, nil), ErrKind},
		{"fingerprint mismatch", Seal(Meta{Version: Version, Kind: "stub", Fingerprint: meta.Fingerprint + 1}, nil), ErrFingerprint},
		{"payload truncated inside a field", badPayload(func(e *Encoder) { e.Int(1) }), ErrPayload},
		{"payload fails learner validation", badPayload(func(e *Encoder) {
			e.Int(-5)
			e.F64(0)
			e.Floats(nil)
			e.Bool(false)
		}), ErrPayload},
		{"payload with trailing bytes", badPayload(func(e *Encoder) {
			newStub().EncodeCheckpoint(e)
			e.U8(0)
		}), ErrPayload},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			learner := newStub()
			before := learner.snapshot()
			_, err := Unmarshal(tc.data, learner)
			if err == nil {
				t.Fatal("corrupt checkpoint loaded without error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want wrap of %v", err, tc.want)
			}
			// Exactly one sentinel: the battery's modes must stay
			// distinguishable.
			for _, other := range []error{ErrTruncated, ErrBadMagic, ErrVersion, ErrDigest, ErrKind, ErrFingerprint, ErrPayload} {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("error wraps both %v and %v", tc.want, other)
				}
			}
			after := learner.snapshot()
			if !reflect.DeepEqual(before, after) {
				t.Errorf("failed load mutated learner: %+v -> %+v", before, after)
			}
		})
	}
}

func TestShouldSave(t *testing.T) {
	cases := []struct {
		opts        TrainOptions
		done, total int
		want        bool
	}{
		{TrainOptions{}, 5, 10, false},                   // disabled
		{TrainOptions{}, 10, 10, false},                  // disabled even at end
		{TrainOptions{Dir: "d"}, 5, 10, false},           // no cadence, mid-run
		{TrainOptions{Dir: "d"}, 10, 10, true},           // final always saves
		{TrainOptions{Dir: "d", Every: 3}, 3, 10, true},  // on cadence
		{TrainOptions{Dir: "d", Every: 3}, 4, 10, false}, // off cadence
		{TrainOptions{Dir: "d", Every: 3}, 9, 10, true},  // on cadence
		{TrainOptions{Dir: "d", Every: 3}, 10, 10, true}, // final wins off-cadence
		{TrainOptions{Dir: "d", Every: 7}, 12, 10, true}, // past total
	}
	for i, tc := range cases {
		if got := tc.opts.ShouldSave(tc.done, tc.total); got != tc.want {
			t.Errorf("case %d: ShouldSave(%d, %d) with %+v = %v, want %v",
				i, tc.done, tc.total, tc.opts, got, tc.want)
		}
	}
}

func TestWriteFileAtomicAndClean(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.fmck")
	if err := WriteFile(path, newStub()); err != nil {
		t.Fatal(err)
	}
	// No temp droppings after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ckpt.fmck" {
		t.Errorf("directory after write: %v", entries)
	}
	// And the file round-trips.
	dst := newStub()
	dst.a = 0
	if _, err := ReadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if dst.a != 17 {
		t.Errorf("restored a = %d", dst.a)
	}

	// Overwriting an existing checkpoint keeps it valid.
	dst.a = 99
	if err := WriteFile(path, dst); err != nil {
		t.Fatal(err)
	}
	again := newStub()
	if _, err := ReadFile(path, again); err != nil {
		t.Fatal(err)
	}
	if again.a != 99 {
		t.Errorf("overwritten checkpoint restored a = %d", again.a)
	}
}

func TestFileNameSortsInTrainingOrder(t *testing.T) {
	names := []string{
		FileName(PhaseTrain, 2),
		FileName(PhasePretrain, 10),
		FileName(PhaseTrain, 10),
		FileName(PhasePretrain, 2),
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	want := []string{
		FileName(PhasePretrain, 2),
		FileName(PhasePretrain, 10),
		FileName(PhaseTrain, 2),
		FileName(PhaseTrain, 10),
	}
	if !reflect.DeepEqual(sorted, want) {
		t.Errorf("lexical order %v != training order %v", sorted, want)
	}
}

func TestLatestAndPrune(t *testing.T) {
	dir := t.TempDir()
	for ep := 1; ep <= 4; ep++ {
		s := newStub()
		s.ep = ep
		if _, err := SaveDir(dir, s, 0); err != nil {
			t.Fatal(err)
		}
	}
	// DefaultKeep bounds retention.
	names, err := checkpointFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != DefaultKeep {
		t.Errorf("retained %d files, want %d: %v", len(names), DefaultKeep, names)
	}

	path, meta, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Episode != 4 {
		t.Errorf("Latest episode = %d, want 4", meta.Episode)
	}

	// Corrupt the newest file: Latest falls back to the previous one instead
	// of bricking resume.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, meta2, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Episode != 3 {
		t.Errorf("Latest after corruption = episode %d, want 3", meta2.Episode)
	}

	// Tighter prune keeps only the newest.
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	names, _ = checkpointFiles(dir)
	if len(names) != 1 {
		t.Errorf("after Prune(1): %v", names)
	}
}

func TestLatestNoCheckpoint(t *testing.T) {
	// Missing directory reads as "nothing saved yet", not an I/O error.
	if _, _, err := Latest(filepath.Join(t.TempDir(), "never-created")); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("missing dir: %v", err)
	}
	// So does an empty directory.
	if _, _, err := Latest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty dir: %v", err)
	}
	// And one holding only corrupt files.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName(0, 1)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("all-corrupt dir: %v", err)
	}
}

func TestPeekValidatesWithoutLearner(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.fmck")
	if err := WriteFile(path, newStub()); err != nil {
		t.Fatal(err)
	}
	meta, err := Peek(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != "stub" || meta.Episode != 3 {
		t.Errorf("Peek meta = %+v", meta)
	}

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 1
	bad := filepath.Join(dir, "bad.fmck")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Peek(bad); !errors.Is(err, ErrDigest) {
		t.Errorf("Peek on corrupt file: %v", err)
	}
}

func TestFingerprintStable(t *testing.T) {
	// FNV-64a reference values; the fingerprint definition is frozen, so
	// these must never change.
	if got := Fingerprint(""); got != 0xcbf29ce484222325 {
		t.Errorf("Fingerprint(\"\") = %#x", got)
	}
	if got := Fingerprint("a"); got != 0xaf63dc4c8601ec8c {
		t.Errorf("Fingerprint(\"a\") = %#x", got)
	}
	if Fingerprint("cma2c|alpha=0.6") == Fingerprint("cma2c|alpha=0.8") {
		t.Error("distinct configs collided")
	}
}
