package checkpoint_test

// Golden checkpoint fixtures.
//
// For each learner kind, a micro-city training run (one demonstration
// episode + one fine-tune episode, seed 42) is serialized and committed
// under testdata/checkpoints/<kind>.fmck with its SHA-256 recorded next to
// it in <kind>.digest. The test then proves three things against the
// committed bytes:
//
//   - compatibility: today's build still loads checkpoints written in the
//     past (the fixture IS a past build's output once committed);
//   - stability: re-serializing the loaded state reproduces the fixture
//     byte-for-byte, so the encoding has not silently drifted;
//   - reproducibility: retraining from scratch yields the fixture bytes,
//     pinning the whole train→serialize pipeline.
//
// To regenerate after an INTENTIONAL format or training change:
//
//	go test ./internal/checkpoint -run TestGoldenCheckpoints -update
//
// and bump checkpoint.Version if the container or payload layout changed
// shape. Never update goldens to quiet a failure you cannot explain.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden checkpoint fixtures")

const goldenSeed = 42

var goldenKinds = []string{"cma2c", "dqn", "tql", "tba"}

// fixtureDir is the repo-root testdata tree, shared with the scenario
// fixtures; checkpoints are a repo-wide contract, not a package detail.
var fixtureDir = filepath.Join("..", "..", "testdata", "checkpoints")

func goldenCity(t *testing.T) *synth.City {
	t.Helper()
	city, err := synth.Build(synth.MicroConfig(goldenSeed))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

// goldenLearner builds the learner for one fixture; trained runs the fixed
// micro curriculum, untrained returns a twin with identical hyperparameters
// for the load test.
func goldenLearner(t *testing.T, kind string, city *synth.City, trained bool) checkpoint.Checkpointer {
	t.Helper()
	guide := policy.NewGroundTruth()
	switch kind {
	case "cma2c":
		f, err := core.New(core.DefaultConfig(0.6, goldenSeed))
		if err != nil {
			t.Fatal(err)
		}
		if trained {
			f.Pretrain(city, guide, 1, 1, goldenSeed)
			f.Train(city, 1, 1, goldenSeed)
		}
		return f
	case "dqn":
		d := policy.NewDQN(0.6, goldenSeed)
		if trained {
			d.Pretrain(city, guide, 1, 1, goldenSeed)
			d.Train(city, 1, 1, goldenSeed)
		}
		return d
	case "tql":
		q := policy.NewTQL(0.6)
		if trained {
			q.Pretrain(city, guide, 1, 1, goldenSeed)
			q.Train(city, 1, 1, goldenSeed)
		}
		return q
	case "tba":
		b := policy.NewTBA(goldenSeed)
		if trained {
			b.Pretrain(city, guide, 1, 1, goldenSeed)
			b.Train(city, 1, 1, goldenSeed)
		}
		return b
	default:
		t.Fatalf("unknown golden kind %q", kind)
		return nil
	}
}

func TestGoldenCheckpoints(t *testing.T) {
	for _, kind := range goldenKinds {
		t.Run(kind, func(t *testing.T) {
			fixture := filepath.Join(fixtureDir, kind+".fmck")
			digestPath := filepath.Join(fixtureDir, kind+".digest")

			if *update {
				city := goldenCity(t)
				data, err := checkpoint.Marshal(goldenLearner(t, kind, city, true))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(fixtureDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(fixture, data, 0o644); err != nil {
					t.Fatal(err)
				}
				sum := sha256.Sum256(data)
				if err := os.WriteFile(digestPath, []byte(hex.EncodeToString(sum[:])+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			data, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			wantDigest, err := os.ReadFile(digestPath)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != strings.TrimSpace(string(wantDigest)) {
				t.Fatalf("fixture bytes do not match their recorded digest:\n got %s\nwant %s", got, strings.TrimSpace(string(wantDigest)))
			}

			// Compatibility: the committed bytes load into a fresh learner.
			city := goldenCity(t)
			fresh := goldenLearner(t, kind, city, false)
			meta, err := checkpoint.Unmarshal(data, fresh)
			if err != nil {
				t.Fatalf("golden checkpoint no longer loads: %v\nIf the format change is intentional, bump checkpoint.Version and regenerate with -update.", err)
			}
			if meta.Kind != kind {
				t.Fatalf("meta.Kind = %q", meta.Kind)
			}

			// Stability: re-serializing reproduces the fixture exactly.
			again, err := checkpoint.Marshal(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("encoding drifted: restored %s state re-serializes to different bytes.\nIf intentional, bump checkpoint.Version and regenerate with -update.", kind)
			}
		})
	}
}

// TestGoldenRetrainReproduces pins the whole pipeline: training from scratch
// with the fixed seed reproduces the committed fixture bytes. This is the
// byte-identical-restart contract extended back to episode zero.
func TestGoldenRetrainReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("retraining all learners is not short")
	}
	for _, kind := range goldenKinds {
		t.Run(kind, func(t *testing.T) {
			fixture := filepath.Join(fixtureDir, kind+".fmck")
			want, err := os.ReadFile(fixture)
			if err != nil {
				t.Skipf("%v (run with -update to create)", err)
			}
			city := goldenCity(t)
			got, err := checkpoint.Marshal(goldenLearner(t, kind, city, true))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("retraining %s does not reproduce its golden checkpoint", kind)
			}
		})
	}
}
