package checkpoint

import (
	"fmt"

	"repro/internal/nn"
)

// Shared encoders for the neural-network state every learner carries. The
// layer encoding mirrors nn's gob snapshot (shape, activation, weights,
// biases) but through the deterministic codec, and decoding re-runs the same
// shape validation as nn.Load: a checkpoint is untrusted input.
//
// Container version 2 switched the weight and moment payloads from float64
// to float32, matching the nn backend's storage: the file holds the exact
// bits the kernels compute with. Version 1 files fail closed at the header
// with ErrVersion before any payload decode runs.

// EncodeMLP appends a network's architecture and weights.
func EncodeMLP(e *Encoder, m *nn.MLP) {
	e.U32(uint32(len(m.Layers)))
	for _, l := range m.Layers {
		e.Int(l.In)
		e.Int(l.Out)
		e.U8(uint8(l.Act))
		e.Floats32(l.W.Data)
		e.Floats32(l.B)
	}
}

// minLayerBytes is the smallest possible encoded layer: In + Out + Act +
// two slice length prefixes.
const minLayerBytes = 8 + 8 + 1 + 4 + 4

// DecodeMLP reads a network written by EncodeMLP. Shapes, activation codes,
// and inter-layer widths are all validated; a malformed payload returns an
// error and never a partially built network.
func DecodeMLP(d *Decoder) (*nn.MLP, error) {
	n, ok := d.Count(d.U32(), minLayerBytes)
	if !ok {
		return nil, d.Err()
	}
	if n == 0 {
		return nil, fmt.Errorf("checkpoint: empty network")
	}
	m := &nn.MLP{}
	for i := 0; i < n; i++ {
		in, out := d.Int(), d.Int()
		act := nn.Activation(d.U8())
		w := d.Floats32()
		b := d.Floats32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if in <= 0 || out <= 0 || len(w) != in*out || len(b) != out {
			return nil, fmt.Errorf("checkpoint: layer %d malformed: shape %dx%d with %d weights, %d biases", i, out, in, len(w), len(b))
		}
		if act < nn.Identity || act > nn.Tanh {
			return nil, fmt.Errorf("checkpoint: layer %d has unknown activation code %d", i, int(act))
		}
		if i > 0 && in != m.Layers[i-1].Out {
			return nil, fmt.Errorf("checkpoint: layer %d input width %d does not chain from previous output %d", i, in, m.Layers[i-1].Out)
		}
		m.Layers = append(m.Layers, &nn.Dense{
			In: in, Out: out, Act: act,
			W: nn.FromSlice(out, in, w), B: b,
			GradW: nn.NewMat(out, in), GradB: make([]float32, out),
		})
	}
	return m, nil
}

// EncodeAdam appends an Adam optimizer's hyperparameters, step count, and
// first/second moment estimates. The learning rate is part of the state on
// purpose: CMA2C and TBA drop to LR×0.1 when fine-tuning starts, and a
// resumed run must keep that rate, not the constructor's.
func EncodeAdam(e *Encoder, o *nn.Adam) {
	e.F64(o.LR)
	e.F64(o.Beta1)
	e.F64(o.Beta2)
	e.F64(o.Eps)
	t, m, v := o.State()
	e.Int(t)
	e.U32(uint32(len(m)))
	for _, s := range m {
		e.Floats32(s)
	}
	for _, s := range v {
		e.Floats32(s)
	}
}

// DecodeAdam reads an optimizer written by EncodeAdam. Moment shapes are
// only checked internally consistent here; AdamMatches ties them to a
// specific network.
func DecodeAdam(d *Decoder) (*nn.Adam, error) {
	o := nn.NewAdam(0)
	o.LR = d.F64()
	o.Beta1 = d.F64()
	o.Beta2 = d.F64()
	o.Eps = d.F64()
	t := d.Int()
	n, ok := d.Count(d.U32(), 4)
	if !ok {
		return nil, d.Err()
	}
	var m, v [][]float32
	if n > 0 {
		m = make([][]float32, n)
		v = make([][]float32, n)
		for i := range m {
			m[i] = d.Floats32()
		}
		for i := range v {
			v[i] = d.Floats32()
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("checkpoint: negative adam step count %d", t)
	}
	o.Restore(t, m, v)
	return o, nil
}

// SameShape reports whether two networks have identical layer shapes and
// activations (e.g. a target network against its online network).
func SameShape(a, b *nn.MLP) bool {
	if len(a.Layers) != len(b.Layers) {
		return false
	}
	for i, l := range a.Layers {
		o := b.Layers[i]
		if l.In != o.In || l.Out != o.Out || l.Act != o.Act {
			return false
		}
	}
	return true
}

// AdamMatches reports whether o's moment estimates fit net's parameters: the
// optimizer either never stepped (empty moments, lazily allocated on first
// Step) or carries one moment pair per parameter group of matching length.
func AdamMatches(o *nn.Adam, net *nn.MLP) bool {
	_, m, v := o.State()
	if len(m) == 0 && len(v) == 0 {
		return true
	}
	params, _ := net.Params()
	if len(m) != len(params) || len(v) != len(params) {
		return false
	}
	for i := range params {
		if len(m[i]) != len(params[i]) || len(v[i]) != len(params[i]) {
			return false
		}
	}
	return true
}
