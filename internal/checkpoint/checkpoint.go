// Package checkpoint implements crash-safe, versioned training checkpoints
// with byte-identical restart semantics.
//
// A checkpoint is a single file:
//
//	magic "FMCK" | u32 format version | kind | u64 config fingerprint |
//	u32 phase | u64 episode | u64 payload length | payload |
//	sha256 digest of every preceding byte
//
// The payload is a learner-specific deterministic encoding (see codec.go)
// produced and consumed through the Checkpointer interface. Every container
// field is validated before one payload byte reaches a learner decoder, and
// learner decoders commit state only after a full successful decode, so a
// failed load of any kind leaves the in-memory learner untouched.
//
// Files are written via temp file + fsync + atomic rename: a crash during a
// write can leave a stale temp file behind but never a truncated or
// half-written checkpoint under a checkpoint name. Latest and Prune manage
// a directory of cadence-written checkpoints as a ring of the newest K.
//
// Resume contract (pinned by determinism_test.go at the repo root): a
// learner restored from a checkpoint written after episode K and trained to
// the same total N produces byte-identical weights, optimizer state, and
// evaluation results as the unbroken N-episode run. This works because every
// per-episode stream is re-derived from (seed, episode) via rng.SplitStable
// at episode boundaries — the only state that survives an episode is what
// the checkpoint carries.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Magic identifies a FairMove checkpoint file.
const Magic = "FMCK"

// Version is the current container format version. Bump it when the
// container layout or any learner payload encoding changes shape — the
// golden fixtures under testdata/checkpoints/ exist to force that
// conversation whenever the bytes drift. Version 2 moved the nn weight and
// Adam-moment payloads to float32 (the tensor backend's native precision);
// version 1 files fail closed with ErrVersion.
const Version = 2

// Training phases recorded in the container header.
const (
	// PhasePretrain marks a checkpoint taken between demonstration
	// (warm-start) episodes.
	PhasePretrain = 0
	// PhaseTrain marks a checkpoint taken between reward-driven
	// fine-tuning episodes.
	PhaseTrain = 1
)

// Sentinel errors, one per corruption mode. Load failures wrap exactly one
// of these so callers (and the corruption-battery tests) can tell a
// truncated file from a flipped bit from a config mismatch.
var (
	ErrTruncated    = errors.New("checkpoint: truncated or size-mismatched file")
	ErrBadMagic     = errors.New("checkpoint: bad magic (not a checkpoint file)")
	ErrVersion      = errors.New("checkpoint: unsupported format version")
	ErrDigest       = errors.New("checkpoint: content digest mismatch (corrupt file)")
	ErrKind         = errors.New("checkpoint: learner kind mismatch")
	ErrFingerprint  = errors.New("checkpoint: config fingerprint mismatch")
	ErrPayload      = errors.New("checkpoint: malformed payload")
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
)

// Checkpointer is implemented by every resumable learner (CMA2C, DQN, TQL,
// TBA). Encode must be deterministic — same logical state, same bytes — and
// Decode must be all-or-nothing: decode into temporaries, validate, and only
// then commit, so a malformed payload never leaves a learner half-updated.
type Checkpointer interface {
	// CheckpointKind names the learner format (e.g. "cma2c"); a checkpoint
	// of one kind never loads into another.
	CheckpointKind() string
	// CheckpointFingerprint hashes every hyperparameter that shapes or
	// reinterprets the state. Loading fails closed on mismatch: resuming
	// under a different configuration would silently diverge instead of
	// byte-identically continuing.
	CheckpointFingerprint() uint64
	// CheckpointProgress reports the training phase (PhasePretrain or
	// PhaseTrain) and the number of episodes of that phase completed.
	CheckpointProgress() (phase, episode int)
	// EncodeCheckpoint appends the learner state to the encoder.
	EncodeCheckpoint(e *Encoder)
	// DecodeCheckpoint restores state written by EncodeCheckpoint. It must
	// not mutate the learner unless the entire decode succeeds.
	DecodeCheckpoint(d *Decoder) error
}

// TrainOptions carries the checkpoint cadence through a training call.
// The zero value disables checkpointing entirely.
type TrainOptions struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the cadence in episodes. <= 0 writes only the final
	// checkpoint at the end of the training call.
	Every int
	// Keep bounds how many checkpoint files the directory retains
	// (oldest pruned first); <= 0 means DefaultKeep.
	Keep int
}

// DefaultKeep is the default retention when TrainOptions.Keep <= 0.
const DefaultKeep = 3

// Enabled reports whether the options request any checkpointing.
func (o TrainOptions) Enabled() bool { return o.Dir != "" }

// ShouldSave reports whether a checkpoint is due after `done` of `total`
// episodes: at every cadence boundary and always at the end of the run (so
// a completed training call leaves a loadable final policy behind).
func (o TrainOptions) ShouldSave(done, total int) bool {
	if !o.Enabled() {
		return false
	}
	if done >= total {
		return true
	}
	return o.Every > 0 && done%o.Every == 0
}

// Meta is the validated container header of a checkpoint.
type Meta struct {
	Version     uint32
	Kind        string
	Fingerprint uint64
	Phase       int
	Episode     int
}

// Fingerprint hashes a canonical configuration string with FNV-64a. Learners
// build the string from every hyperparameter that shapes their state.
func Fingerprint(canonical string) uint64 {
	// Inline FNV-64a keeps the fingerprint definition self-contained and
	// frozen: a hash/fnv behavior change could never silently invalidate
	// every existing checkpoint.
	const offset64, prime64 = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset64)
	for i := 0; i < len(canonical); i++ {
		h ^= uint64(canonical[i])
		h *= prime64
	}
	return h
}

// Seal wraps an arbitrary payload in a well-formed container: header,
// length, and a valid digest. Marshal uses it with a real learner payload;
// tests use it directly to build digest-valid containers around malformed
// payloads (the only corruption mode the digest cannot catch).
func Seal(meta Meta, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(meta.Version)
	w(uint16(len(meta.Kind)))
	buf.WriteString(meta.Kind)
	w(meta.Fingerprint)
	w(uint32(meta.Phase))
	w(uint64(meta.Episode))
	w(uint64(len(payload)))
	buf.Write(payload)
	digest := sha256.Sum256(buf.Bytes())
	buf.Write(digest[:])
	return buf.Bytes()
}

// Marshal encodes c into a complete checkpoint container.
func Marshal(c Checkpointer) ([]byte, error) {
	enc := NewEncoder()
	c.EncodeCheckpoint(enc)
	phase, episode := c.CheckpointProgress()
	meta := Meta{
		Version:     Version,
		Kind:        c.CheckpointKind(),
		Fingerprint: c.CheckpointFingerprint(),
		Phase:       phase,
		Episode:     episode,
	}
	return Seal(meta, enc.Bytes()), nil
}

// parseHeader validates everything up to (but not including) the payload
// and returns the meta plus the payload bounds.
func parseHeader(data []byte) (meta Meta, payloadStart, payloadLen int, err error) {
	r := NewDecoder(data)
	magic := r.take(len(Magic))
	if magic == nil {
		return Meta{}, 0, 0, fmt.Errorf("%w: %d bytes is shorter than the magic", ErrTruncated, len(data))
	}
	if string(magic) != Magic {
		return Meta{}, 0, 0, fmt.Errorf("%w: got %q", ErrBadMagic, string(magic))
	}
	meta.Version = r.U32()
	if r.Err() == nil && meta.Version != Version {
		return Meta{}, 0, 0, fmt.Errorf("%w: file has version %d, this build reads version %d", ErrVersion, meta.Version, Version)
	}
	meta.Kind = r.String()
	meta.Fingerprint = r.U64()
	meta.Phase = int(r.U32())
	meta.Episode = int(r.U64())
	n := r.U64()
	if r.Err() != nil {
		return Meta{}, 0, 0, fmt.Errorf("%w: header incomplete: %v", ErrTruncated, r.Err())
	}
	payloadStart = len(data) - r.Remaining()
	if n > uint64(r.Remaining()) {
		return Meta{}, 0, 0, fmt.Errorf("%w: header claims %d payload bytes, %d remain", ErrTruncated, n, r.Remaining())
	}
	return meta, payloadStart, int(n), nil
}

// Unmarshal validates a container and, if every check passes, hands the
// payload to c.DecodeCheckpoint. Validation order — magic, version,
// size, digest, kind, fingerprint — is part of the contract: a file must
// be structurally sound before it is compared against the learner, and no
// payload byte reaches the learner decoder before the digest has proven
// the payload is exactly what was written.
func Unmarshal(data []byte, c Checkpointer) (Meta, error) {
	meta, payloadStart, payloadLen, err := parseHeader(data)
	if err != nil {
		return Meta{}, err
	}
	end := payloadStart + payloadLen
	if len(data) != end+sha256.Size {
		return Meta{}, fmt.Errorf("%w: file is %d bytes, container describes %d", ErrTruncated, len(data), end+sha256.Size)
	}
	digest := sha256.Sum256(data[:end])
	if !bytes.Equal(digest[:], data[end:]) {
		return Meta{}, fmt.Errorf("%w: stored %x, computed %x", ErrDigest, data[end:end+8], digest[:8])
	}
	if meta.Kind != c.CheckpointKind() {
		return Meta{}, fmt.Errorf("%w: file holds %q state, learner is %q", ErrKind, meta.Kind, c.CheckpointKind())
	}
	if meta.Fingerprint != c.CheckpointFingerprint() {
		return Meta{}, fmt.Errorf("%w: file %016x, learner %016x (hyperparameters differ)", ErrFingerprint, meta.Fingerprint, c.CheckpointFingerprint())
	}
	dec := NewDecoder(data[payloadStart:end])
	if err := c.DecodeCheckpoint(dec); err != nil {
		return Meta{}, fmt.Errorf("%w: %v", ErrPayload, err)
	}
	if dec.Remaining() != 0 {
		return Meta{}, fmt.Errorf("%w: %d trailing payload bytes", ErrPayload, dec.Remaining())
	}
	return meta, nil
}

// WriteFile atomically writes c's checkpoint to path: the bytes land in a
// temp file in the same directory, are fsynced, and replace path via rename.
// A crash at any point leaves either the old file or the new file, never a
// torn mix.
func WriteFile(path string, c Checkpointer) error {
	data, err := Marshal(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	// Persist the rename itself. Some platforms do not support fsync on
	// directories; the rename is still atomic there, so this is best-effort.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadFile loads the checkpoint at path into c.
func ReadFile(path string, c Checkpointer) (Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, fmt.Errorf("checkpoint: %w", err)
	}
	meta, err := Unmarshal(data, c)
	if err != nil {
		return Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	return meta, nil
}

// Peek validates the container at path (header and digest) without touching
// any learner and returns its meta.
func Peek(path string) (Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, fmt.Errorf("checkpoint: %w", err)
	}
	meta, payloadStart, payloadLen, err := parseHeader(data)
	if err != nil {
		return Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	end := payloadStart + payloadLen
	if len(data) != end+sha256.Size {
		return Meta{}, fmt.Errorf("%s: %w: file is %d bytes, container describes %d", path, ErrTruncated, len(data), end+sha256.Size)
	}
	digest := sha256.Sum256(data[:end])
	if !bytes.Equal(digest[:], data[end:]) {
		return Meta{}, fmt.Errorf("%s: %w", path, ErrDigest)
	}
	return meta, nil
}

// FileName returns the canonical checkpoint file name for a training
// position. Phase sorts before episode, so lexical order equals training
// order (pretrain checkpoints precede fine-tune checkpoints).
func FileName(phase, episode int) string {
	return fmt.Sprintf("ckpt-%d-%08d.fmck", phase, episode)
}

// checkpointFiles lists the checkpoint files in dir in lexical (= training)
// order.
func checkpointFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), "ckpt-") && strings.HasSuffix(e.Name(), ".fmck") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Latest returns the path and meta of the newest valid checkpoint in dir.
// Corrupt files are skipped (a crash mid-retention or a torn disk cannot
// brick resume as long as one older checkpoint survives); if the directory
// holds no valid checkpoint the error wraps ErrNoCheckpoint.
func Latest(dir string) (string, Meta, error) {
	names, err := checkpointFiles(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// A directory that was never created is just "nothing saved yet",
			// so `-resume` on a fresh run starts cleanly.
			return "", Meta{}, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
		}
		return "", Meta{}, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		meta, err := Peek(path)
		if err == nil {
			return path, meta, nil
		}
	}
	return "", Meta{}, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
}

// Prune deletes all but the newest keep checkpoint files in dir.
func Prune(dir string, keep int) error {
	if keep <= 0 {
		keep = DefaultKeep
	}
	names, err := checkpointFiles(dir)
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-keep)] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("checkpoint: prune: %w", err)
		}
	}
	return nil
}

// SaveDir writes c's checkpoint into dir under its canonical name (creating
// dir if needed), applies retention, and returns the written path.
func SaveDir(dir string, c Checkpointer, keep int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	phase, episode := c.CheckpointProgress()
	path := filepath.Join(dir, FileName(phase, episode))
	if err := WriteFile(path, c); err != nil {
		return "", err
	}
	if err := Prune(dir, keep); err != nil {
		return "", err
	}
	return path, nil
}
