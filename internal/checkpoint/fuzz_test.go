package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary bytes through the full container path. The
// invariants under fuzzing are exactly the production contract: no panic, no
// unbounded allocation, and a learner that is bit-for-bit untouched whenever
// Unmarshal reports an error.
func FuzzDecode(f *testing.F) {
	// Seed with a valid container and structured near-misses so the fuzzer
	// starts at the interesting boundaries instead of random noise.
	valid, err := Marshal(newStub())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte(Magic))
	f.Add(Seal(Meta{Version: Version, Kind: "stub", Fingerprint: Fingerprint("stub|v=1")}, []byte{1, 2, 3}))
	f.Add(Seal(Meta{Version: Version + 1, Kind: "stub"}, nil))
	f.Add([]byte{})
	// The golden fixtures are real learner checkpoints: well-formed
	// containers whose kind the stub rejects, putting the fuzzer right on
	// the header-validation boundary.
	fixtures, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "checkpoints", "*.fmck"))
	for _, path := range fixtures {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		learner := newStub()
		before := learner.snapshot()
		meta, err := Unmarshal(data, learner)
		if err != nil {
			after := learner.snapshot()
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("failed Unmarshal mutated learner: %+v -> %+v", before, after)
			}
			return
		}
		// A successful decode must describe a well-formed container...
		if meta.Version != Version || meta.Kind != learner.kind {
			t.Fatalf("accepted container with meta %+v", meta)
		}
		// ...and the accepted state must re-serialize cleanly.
		if _, err := Marshal(learner); err != nil {
			t.Fatalf("restored learner failed to marshal: %v", err)
		}
	})
}
