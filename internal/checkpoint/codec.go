package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The payload codec is a deliberately tiny deterministic binary format:
// little-endian fixed-width integers, IEEE-754 bit patterns for floats, and
// length-prefixed strings and slices. Two properties matter and are pinned
// by tests:
//
//   - Encoding the same logical state twice produces identical bytes (no
//     map-iteration order, no pointer identity, no timestamps), so a
//     checkpoint digest is a stable fingerprint of the learner state.
//   - Decoding is total: any byte string either decodes or fails with an
//     error — never a panic and never an unbounded allocation — so the
//     container can hand untrusted payloads to learner decoders safely.

// Encoder accumulates a deterministic binary payload.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 as its two's-complement uint64 bits.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern. NaNs round-trip
// bit-exactly, which is what "byte-identical restart" requires.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// F32 appends a float32 as its IEEE-754 bit pattern. Introduced with
// container version 2, when the nn backend moved to float32 storage: weight
// payloads serialize the exact bits the kernels compute with, so a saved and
// restored run is byte-identical with no widen/narrow round trip.
func (e *Encoder) F32(v float32) { e.U32(math.Float32bits(v)) }

// String appends a length-prefixed UTF-8 string (max 64 KiB).
func (e *Encoder) String(s string) {
	if len(s) > math.MaxUint16 {
		panic("checkpoint: string too long to encode")
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// Floats appends a length-prefixed []float64.
func (e *Encoder) Floats(xs []float64) {
	e.U32(uint32(len(xs)))
	for _, x := range xs {
		e.F64(x)
	}
}

// Floats32 appends a length-prefixed []float32.
func (e *Encoder) Floats32(xs []float32) {
	e.U32(uint32(len(xs)))
	for _, x := range xs {
		e.F32(x)
	}
}

// Bools appends a length-prefixed []bool.
func (e *Encoder) Bools(bs []bool) {
	e.U32(uint32(len(bs)))
	for _, b := range bs {
		e.Bool(b)
	}
}

// Decoder reads a payload written by Encoder. Errors are sticky: after the
// first failure every subsequent read returns the zero value and Err()
// reports the original cause, so decode sequences can run unchecked and
// validate once at the end.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps data for reading.
func NewDecoder(data []byte) *Decoder { return &Decoder{b: data} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// fail records the first error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// take returns the next n bytes, or nil after recording a truncation error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("checkpoint: payload truncated at offset %d (need %d bytes, have %d)", d.off, n, d.Remaining())
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool, rejecting values other than 0 and 1.
func (d *Decoder) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("checkpoint: invalid bool byte %d", v)
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// F32 reads a float32 bit pattern.
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	b := d.take(2)
	if b == nil {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(b))
	s := d.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// Count validates a length prefix against the bytes remaining, assuming each
// element occupies at least elemSize bytes. This bounds allocations on
// corrupt or adversarial input: a forged count can never make the decoder
// allocate more than the payload it arrived in. Composite decoders (learner
// state, transition buffers) use it before allocating their slices.
func (d *Decoder) Count(n uint32, elemSize int) (int, bool) {
	if d.err != nil {
		return 0, false
	}
	if int64(n)*int64(elemSize) > int64(d.Remaining()) {
		d.fail("checkpoint: implausible element count %d at offset %d", n, d.off)
		return 0, false
	}
	return int(n), true
}

// Floats reads a length-prefixed []float64. A nil slice encodes/decodes as
// length zero; decoding returns nil for length zero, so encode(decode(x))
// is byte-stable.
func (d *Decoder) Floats() []float64 {
	n, ok := d.Count(d.U32(), 8)
	if !ok || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Floats32 reads a length-prefixed []float32, with the same nil/zero-length
// byte-stability as Floats.
func (d *Decoder) Floats32() []float32 {
	n, ok := d.Count(d.U32(), 4)
	if !ok || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.F32()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Bools reads a length-prefixed []bool.
func (d *Decoder) Bools() []bool {
	n, ok := d.Count(d.U32(), 1)
	if !ok || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.Bool()
	}
	if d.err != nil {
		return nil
	}
	return out
}
