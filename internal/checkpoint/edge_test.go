package checkpoint

// Filesystem edge cases for the directory-level API: resume over empty or
// poisoned directories, retention at the keep boundaries, and save into a
// directory that cannot be written.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestLatestEmptyDir(t *testing.T) {
	_, _, err := Latest(t.TempDir())
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLatestNonexistentDir(t *testing.T) {
	_, _, err := Latest(filepath.Join(t.TempDir(), "never-created"))
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}

// A directory holding only corrupt checkpoint files must report "nothing to
// resume from" rather than an opaque decode error — resume then starts clean.
func TestLatestCorruptOnlyDir(t *testing.T) {
	dir := t.TempDir()
	for i, junk := range []string{"", "not a checkpoint", "FMCK\x00truncated"} {
		path := filepath.Join(dir, FileName(PhaseTrain, i))
		if err := os.WriteFile(path, []byte(junk), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := Latest(dir)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("corrupt-only dir: err = %v, want ErrNoCheckpoint", err)
	}
}

// A corrupt newest file must not mask an older valid checkpoint.
func TestLatestSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	src := newStub()
	src.ep = 1
	good := filepath.Join(dir, FileName(PhaseTrain, 1))
	if err := WriteFile(good, src); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, FileName(PhaseTrain, 2))
	if err := os.WriteFile(torn, []byte("FMCK torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, meta, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != good || meta.Episode != 1 {
		t.Fatalf("Latest = %s (ep %d), want the older valid %s", path, meta.Episode, good)
	}
}

func writeN(t *testing.T, dir string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		src := newStub()
		src.ep = i
		if err := WriteFile(filepath.Join(dir, FileName(PhaseTrain, i)), src); err != nil {
			t.Fatal(err)
		}
	}
}

func countCkpts(t *testing.T, dir string) int {
	t.Helper()
	names, err := checkpointFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

// keep <= 0 means DefaultKeep, not "delete everything": the zero value of a
// config struct must never be an accidental wipe.
func TestPruneKeepZeroMeansDefault(t *testing.T) {
	dir := t.TempDir()
	writeN(t, dir, DefaultKeep+4)
	if err := Prune(dir, 0); err != nil {
		t.Fatal(err)
	}
	if got := countCkpts(t, dir); got != DefaultKeep {
		t.Fatalf("keep=0 left %d checkpoints, want DefaultKeep=%d", got, DefaultKeep)
	}
	// The survivors must be the newest ones.
	_, meta, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := DefaultKeep + 3; meta.Episode != want {
		t.Fatalf("newest survivor episode %d, want %d", meta.Episode, want)
	}
}

func TestPruneKeepExceedsCount(t *testing.T) {
	dir := t.TempDir()
	writeN(t, dir, 2)
	if err := Prune(dir, 10); err != nil {
		t.Fatal(err)
	}
	if got := countCkpts(t, dir); got != 2 {
		t.Fatalf("keep>count removed files: %d left, want 2", got)
	}
}

func TestPruneExactBoundary(t *testing.T) {
	dir := t.TempDir()
	writeN(t, dir, 5)
	if err := Prune(dir, 5); err != nil {
		t.Fatal(err)
	}
	if got := countCkpts(t, dir); got != 5 {
		t.Fatalf("keep==count removed files: %d left, want 5", got)
	}
}

// SaveDir into an unwritable directory must surface the OS error, not panic
// or silently drop the checkpoint.
func TestSaveDirReadOnly(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory write bits")
	}
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(dir, 0o755) })
	if _, err := SaveDir(dir, newStub(), 3); err == nil {
		t.Fatal("SaveDir into a read-only dir succeeded")
	}
}

// SaveDir where the directory path collides with an existing file must fail
// cleanly from MkdirAll.
func TestSaveDirPathIsFile(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveDir(file, newStub(), 3); err == nil {
		t.Fatal("SaveDir over a file path succeeded")
	}
}
