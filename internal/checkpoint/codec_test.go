package checkpoint

import (
	"math"
	"reflect"
	"testing"
)

// TestCodecRoundTrip pins the wire behavior of every primitive: what the
// Encoder writes, the Decoder reads back exactly, in order.
func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(-1)
	e.F64(3.14159)
	e.F64(math.Inf(-1))
	e.String("fairmove")
	e.String("")
	e.Floats([]float64{1, -2.5, 0})
	e.Floats(nil)
	e.Bools([]bool{true, false, true})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d, want 7", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d, want -42", got)
	}
	if got := d.Int(); got != -1 {
		t.Errorf("Int = %d, want -1", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	if got := d.String(); got != "fairmove" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := d.Floats(); !reflect.DeepEqual(got, []float64{1, -2.5, 0}) {
		t.Errorf("Floats = %v", got)
	}
	if got := d.Floats(); got != nil {
		t.Errorf("nil Floats decoded to %v", got)
	}
	if got := d.Bools(); !reflect.DeepEqual(got, []bool{true, false, true}) {
		t.Errorf("Bools = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

// TestCodecNaNBitExact: byte-identical restart requires NaN payloads to
// survive a round trip with their exact bit pattern, not just "some NaN".
func TestCodecNaNBitExact(t *testing.T) {
	pattern := uint64(0x7ff8dead_beef0001)
	e := NewEncoder()
	e.F64(math.Float64frombits(pattern))
	d := NewDecoder(e.Bytes())
	if got := math.Float64bits(d.F64()); got != pattern {
		t.Errorf("NaN bits = %#x, want %#x", got, pattern)
	}
}

// TestCodecEncodeDecodeByteStable: decode then re-encode must reproduce the
// original bytes, including the nil-vs-empty slice edge that would otherwise
// break checkpoint digests.
func TestCodecEncodeDecodeByteStable(t *testing.T) {
	e := NewEncoder()
	e.Floats([]float64{})
	e.Floats([]float64{1})
	e.Bools(nil)
	orig := append([]byte(nil), e.Bytes()...)

	d := NewDecoder(orig)
	a, b, c := d.Floats(), d.Floats(), d.Bools()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	e2 := NewEncoder()
	e2.Floats(a)
	e2.Floats(b)
	e2.Bools(c)
	if !reflect.DeepEqual(e2.Bytes(), orig) {
		t.Errorf("re-encode differs: %x vs %x", e2.Bytes(), orig)
	}
}

// TestDecoderRejectsBadBool: any byte other than 0/1 is corruption, not a
// truthy value.
func TestDecoderRejectsBadBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Error("Bool(2) did not error")
	}
}

// TestDecoderStickyError: the first failure freezes the decoder; later reads
// return zero values and Err keeps reporting the original cause.
func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.U64() // truncated
	first := d.Err()
	if first == nil {
		t.Fatal("truncated U64 did not error")
	}
	if got := d.U32(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
	if d.Err() != first {
		t.Errorf("Err changed after subsequent reads: %v", d.Err())
	}
}

// TestDecoderCountBoundsAllocation: a forged length prefix can never make the
// decoder allocate more than the payload that carried it.
func TestDecoderCountBoundsAllocation(t *testing.T) {
	e := NewEncoder()
	e.U32(math.MaxUint32) // claims 4 billion floats
	d := NewDecoder(e.Bytes())
	if got := d.Floats(); got != nil {
		t.Errorf("forged count decoded to %d floats", len(got))
	}
	if d.Err() == nil {
		t.Error("implausible count did not error")
	}

	// A plausible count that still exceeds the remaining bytes also fails.
	e2 := NewEncoder()
	e2.U32(3)
	e2.F64(1) // only one of three elements present
	d2 := NewDecoder(e2.Bytes())
	if d2.Floats() != nil || d2.Err() == nil {
		t.Error("truncated slice did not fail closed")
	}
}

// TestDecoderTruncationMidSlice: errors inside a slice body surface through
// the sticky error, and the partial slice is discarded.
func TestDecoderTruncationMidSlice(t *testing.T) {
	e := NewEncoder()
	e.Bools([]bool{true, true, true})
	data := e.Bytes()[:len(e.Bytes())-1]
	d := NewDecoder(data)
	if got := d.Bools(); got != nil {
		t.Errorf("truncated Bools returned %v", got)
	}
	if d.Err() == nil {
		t.Error("truncated Bools did not error")
	}
}
