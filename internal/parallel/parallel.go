// Package parallel is the deterministic worker-pool primitive under the
// runtime's fan-out paths (CompareAll, AlphaSweep, batched inference,
// demonstration rollouts). Its contract is stronger than "run things
// concurrently": results are always collected in input order, so any
// caller that feeds it tasks whose outputs depend only on their own
// inputs (independent rng streams, private envs, read-only shared state)
// gets byte-identical output regardless of worker count.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count setting: values <= 0 mean "use every
// available core" (GOMAXPROCS). Callers store 0 as the default so that
// zero-valued configs transparently scale to the machine.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// panicError carries a worker panic across the goroutine boundary so it can
// be re-raised on the calling goroutine with the original value preserved.
type panicError struct{ value any }

func (p panicError) Error() string { return fmt.Sprintf("parallel: worker panic: %v", p.value) }

// ForEach runs fn(ctx, i) for every i in [0, n) using at most workers
// concurrent goroutines. The first error observed (in wall-clock order, not
// task-index order) is returned, and the derived context is cancelled so
// in-flight and queued tasks can bail early. A panic inside fn is captured
// and re-raised on the calling goroutine. With workers <= 1 the loop runs
// inline on the caller.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	tel := batchTel()
	if workers == 1 {
		w0 := tel.worker(0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			tel.queueDepth.Set(float64(n - i - 1))
			stop := tel.taskTime.Start()
			err := fn(ctx, i)
			stop()
			tel.tasks.Inc()
			w0.Inc()
			if err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next task index to claim
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				fail(panicError{value: r})
			}
		}()
		if err := fn(ctx, i); err != nil {
			fail(err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		wc := tel.worker(w)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				tel.queueDepth.Set(float64(n - i - 1))
				stop := tel.taskTime.Start()
				run(i)
				stop()
				tel.tasks.Inc()
				wc.Inc()
			}
		}()
	}
	wg.Wait()
	if pe, ok := firstErr.(panicError); ok {
		panic(pe.value)
	}
	return firstErr
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the results in input order — the property the deterministic
// runtime leans on. Error and panic semantics match ForEach; on error the
// partial results are discarded and a nil slice is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into at most workers contiguous half-open ranges of
// near-equal size, for batched kernels that want each worker to own a
// contiguous block (cache-friendly, and the block boundaries are a pure
// function of (n, workers), so the work split is deterministic too).
func Chunks(n, workers int) [][2]int {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 0 {
		return nil
	}
	out := make([][2]int, 0, workers)
	base, rem := n/workers, n%workers
	start := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}
