package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got < 1 {
		t.Fatalf("Resolve(0) = %d, want >= 1", got)
	}
	if got := Resolve(-5); got != Resolve(0) {
		t.Fatalf("Resolve(-5) = %d, want %d", got, Resolve(0))
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, cap is %d", p, workers)
	}
}

func TestForEachRunsAll(t *testing.T) {
	var n atomic.Int64
	if err := ForEach(context.Background(), 4, 257, func(_ context.Context, i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 257 {
		t.Fatalf("ran %d tasks, want 257", n.Load())
	}
}

func TestForEachErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	err := ForEach(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		if i == 3 {
			return boom
		}
		if i > 500 {
			// Cancellation should stop the sweep long before the tail.
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if after.Load() > 100 {
		t.Fatalf("%d tail tasks ran after the error; cancellation is not pruning", after.Load())
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r != "kaboom" {
					t.Fatalf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			_ = ForEach(context.Background(), workers, 10, func(_ context.Context, i int) error {
				if i == 2 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatalf("workers=%d: no panic reached the caller", workers)
		}()
	}
}

func TestForEachContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 1, 10, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("want context error")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a cancelled context", ran.Load())
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, workers int
	}{{10, 3}, {10, 1}, {3, 8}, {0, 4}, {100, 7}}
	for _, c := range cases {
		chunks := Chunks(c.n, c.workers)
		covered := 0
		prevEnd := 0
		for _, ch := range chunks {
			if ch[0] != prevEnd {
				t.Fatalf("n=%d workers=%d: chunk %v not contiguous", c.n, c.workers, ch)
			}
			if ch[1] < ch[0] {
				t.Fatalf("n=%d workers=%d: negative chunk %v", c.n, c.workers, ch)
			}
			covered += ch[1] - ch[0]
			prevEnd = ch[1]
		}
		if covered != c.n {
			t.Fatalf("n=%d workers=%d: chunks cover %d items", c.n, c.workers, covered)
		}
		if c.n > 0 && len(chunks) > c.workers && c.workers > 0 {
			t.Fatalf("n=%d workers=%d: %d chunks", c.n, c.workers, len(chunks))
		}
	}
}
