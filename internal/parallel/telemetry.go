package parallel

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// telReg is the package-global registry. The worker pool is process-wide
// infrastructure shared by every subsystem, so unlike Env/learner telemetry
// it is installed once per process rather than per instance. Writes use an
// atomic pointer so SetTelemetry is safe against in-flight batches.
var telReg atomic.Pointer[telemetry.Registry]

// SetTelemetry installs (or, with nil, removes) the pool's metrics registry.
//
// The pool emits: "parallel.batches" (ForEach/Map invocations),
// "parallel.tasks" (tasks executed — deterministic), a "parallel.task"
// wall-clock timer, "parallel.queue_depth" (tasks still unclaimed when one
// is taken — a load gauge), and "parallel.worker.<i>.tasks" utilization
// counters. Which worker claims which task is scheduler-dependent, so the
// per-worker attribution, queue-depth gauge, and timer are NOT
// run-to-run-stable; determinism comparisons must exclude the "parallel."
// namespace and compare only the simulation/training counters.
func SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		telReg.Store(nil)
		return
	}
	telReg.Store(r)
}

// poolTel holds the handles for one ForEach invocation, resolved once per
// batch so the per-task cost is an atomic add (or nothing when disabled).
type poolTel struct {
	tasks      *telemetry.Counter
	queueDepth *telemetry.Gauge
	taskTime   *telemetry.Timer
	reg        *telemetry.Registry
}

func batchTel() poolTel {
	r := telReg.Load()
	if r == nil {
		return poolTel{}
	}
	r.Counter("parallel.batches").Inc()
	return poolTel{
		tasks:      r.Counter("parallel.tasks"),
		queueDepth: r.Gauge("parallel.queue_depth"),
		taskTime:   r.Timer("parallel.task"),
		reg:        r,
	}
}

// worker returns the utilization counter for worker w (nil when disabled).
func (p poolTel) worker(w int) *telemetry.Counter {
	if p.reg == nil {
		return nil
	}
	return p.reg.Counter("parallel.worker." + itoa(w) + ".tasks")
}

// itoa avoids strconv on the batch path for the tiny worker indices used.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
