package scenario

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

// zooSpec builds one spec containing every kind in the zoo, old and new.
func zooSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := NewBuilder("zoo").
		StationOutage(1, 420, 540).
		StationDerate(2, 1, 300, 600).
		DemandScale(-1, 0, 720, 1.4).
		DemandScale(3, 360, 720, 0.5).
		FareShock(2, 60, 660, 1.5).
		GPSDropout(1, 200, 260).
		BatteryDegradation(4, 1, 0.8).
		Weather(-1, 420, 660, 0.7).
		Weather(2, 480, 600, 0.85).
		TariffShift(600, 900, 1.6).
		BatteryCohort(3, 0, 1.2).
		ShiftChange(4, 2, 480, 560).
		AirportSurge(2, 360, 540, 2.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// enginesAgree compares every hook answer of two engines over a dense
// minute × region/station/taxi grid.
func enginesAgree(t *testing.T, e1, e2 *Engine, label string) {
	t.Helper()
	for m := 0; m <= 960; m += 13 {
		for r := 0; r < 5; r++ {
			if e1.DemandScale(r, m) != e2.DemandScale(r, m) ||
				e1.FareScale(r, m) != e2.FareScale(r, m) ||
				e1.SpeedScale(r, m) != e2.SpeedScale(r, m) ||
				e1.ObsStale(r, m) != e2.ObsStale(r, m) {
				t.Fatalf("%s: region hooks diverge at region %d minute %d", label, r, m)
			}
		}
		for st := 0; st < 4; st++ {
			if e1.StationClosed(st, m) != e2.StationClosed(st, m) ||
				e1.StationDerate(st, m) != e2.StationDerate(st, m) {
				t.Fatalf("%s: station hooks diverge at station %d minute %d", label, st, m)
			}
		}
		if e1.TariffScale(m) != e2.TariffScale(m) {
			t.Fatalf("%s: tariff scale diverges at minute %d", label, m)
		}
		for taxi := 0; taxi < 13; taxi++ {
			if e1.BatteryFactor(taxi) != e2.BatteryFactor(taxi) ||
				e1.ConsumptionFactor(taxi) != e2.ConsumptionFactor(taxi) ||
				e1.OffDuty(taxi, m) != e2.OffDuty(taxi, m) {
				t.Fatalf("%s: taxi hooks diverge at taxi %d minute %d", label, taxi, m)
			}
		}
	}
}

// TestMergeOrderIndependence is the satellite property test: for random
// permutations of a spec spanning all eleven kinds, the canonical encoding
// AND every compiled hook answer are bit-identical to the reference order.
// Sorting in Normalize is only sound because each kind's merge operation is
// commutative — this test is what pins that claim.
func TestMergeOrderIndependence(t *testing.T) {
	ref := zooSpec(t)
	refEnc, err := Encode(ref)
	if err != nil {
		t.Fatal(err)
	}
	refEngine := NewEngine(ref)
	src := rng.SplitStable(7, "merge-perm")
	for trial := 0; trial < 50; trial++ {
		perm := &Spec{Name: ref.Name, Description: ref.Description}
		for _, i := range src.Perm(len(ref.Events)) {
			perm.Events = append(perm.Events, ref.Events[i])
		}
		if err := perm.Validate(); err != nil {
			t.Fatalf("trial %d: permuted spec invalid: %v", trial, err)
		}
		permEnc, err := Encode(perm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refEnc, permEnc) {
			t.Fatalf("trial %d: permutation changed the canonical encoding:\n%s\nvs\n%s", trial, refEnc, permEnc)
		}
		perm.Normalize()
		enginesAgree(t, refEngine, NewEngine(perm), "permutation")
	}
}

// Composing single-kind slices in any order equals the all-at-once union,
// for the new kinds just like the old ones.
func TestComposeOrderIndependenceAcrossKinds(t *testing.T) {
	mk := func(name string, f func(*Builder) *Builder) *Spec {
		s, err := f(NewBuilder(name)).Build()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	parts := []*Spec{
		mk("wx", func(b *Builder) *Builder { return b.Weather(-1, 400, 700, 0.7).Weather(1, 450, 650, 0.9) }),
		mk("tou", func(b *Builder) *Builder { return b.TariffShift(0, 480, 0.8).TariffShift(400, 900, 1.5) }),
		mk("fleet", func(b *Builder) *Builder { return b.BatteryCohort(2, 0, 1.1).BatteryDegradation(2, 1, 0.85) }),
		mk("ops", func(b *Builder) *Builder { return b.ShiftChange(3, 0, 480, 540).AirportSurge(2, 500, 620, 2) }),
		mk("legacy", func(b *Builder) *Builder { return b.StationOutage(0, 420, 480).DemandScale(-1, 300, 900, 1.3) }),
	}
	fwd, err := Compose("all", parts...)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Compose("all", parts[4], parts[3], parts[2], parts[1], parts[0])
	if err != nil {
		t.Fatal(err)
	}
	ef, _ := Encode(fwd)
	er, _ := Encode(rev)
	if !bytes.Equal(ef, er) {
		t.Fatalf("composition order changed the canonical encoding:\n%s\nvs\n%s", ef, er)
	}
	enginesAgree(t, NewEngine(fwd), NewEngine(rev), "compose")
}

// Non-finite factors must be rejected on the programmatic paths: NaN slips
// past a bare `< 0` comparison, breaks the canonical sort (making the
// encoding permutation-dependent), and poisons every factor product. JSON
// cannot encode NaN/Inf, so Builder/Compose are the only ways in.
func TestNonFiniteFactorsRejected(t *testing.T) {
	cases := []struct {
		name  string
		build func(f float64) *Builder
	}{
		{"demand-scale", func(f float64) *Builder { return NewBuilder("x").DemandScale(0, 0, 60, f) }},
		{"fare-shock", func(f float64) *Builder { return NewBuilder("x").FareShock(0, 0, 60, f) }},
		{"battery-degradation", func(f float64) *Builder { return NewBuilder("x").BatteryDegradation(2, 0, f) }},
		{"weather", func(f float64) *Builder { return NewBuilder("x").Weather(0, 0, 60, f) }},
		{"tariff-shift", func(f float64) *Builder { return NewBuilder("x").TariffShift(0, 60, f) }},
		{"battery-cohort", func(f float64) *Builder { return NewBuilder("x").BatteryCohort(2, 0, f) }},
		{"airport-surge", func(f float64) *Builder { return NewBuilder("x").AirportSurge(0, 0, 60, f) }},
	}
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, tc := range cases {
		for _, f := range bad {
			if _, err := tc.build(f).Build(); err == nil {
				t.Errorf("%s: accepted factor %v", tc.name, f)
			}
		}
	}
}

// The new kinds' schema rejections, mirroring TestParseRejections.
func TestNewKindRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"weather factor above 1", `{"name":"x","events":[{"kind":"weather","from_min":0,"to_min":60,"factor":1.5}]}`, "in (0, 1]"},
		{"weather zero factor", `{"name":"x","events":[{"kind":"weather","from_min":0,"to_min":60}]}`, "in (0, 1]"},
		{"tariff-shift with region", `{"name":"x","events":[{"kind":"tariff-shift","from_min":0,"to_min":60,"factor":1.5,"region":1}]}`, "region field is not allowed"},
		{"tariff-shift zero factor", `{"name":"x","events":[{"kind":"tariff-shift","from_min":0,"to_min":60}]}`, "factor must be > 0"},
		{"battery-cohort with window", `{"name":"x","events":[{"kind":"battery-cohort","from_min":0,"to_min":60,"factor":1.1}]}`, "time windows are not supported"},
		{"battery-cohort bad rem", `{"name":"x","events":[{"kind":"battery-cohort","factor":1.1,"cohort_mod":2,"cohort_rem":2}]}`, "out of [0, 2)"},
		{"shift-change with factor", `{"name":"x","events":[{"kind":"shift-change","from_min":0,"to_min":60,"factor":2,"cohort_mod":2}]}`, "factor field is not allowed"},
		{"shift-change with region", `{"name":"x","events":[{"kind":"shift-change","from_min":0,"to_min":60,"region":1,"cohort_mod":2}]}`, "region field is not allowed"},
		{"airport-surge without region", `{"name":"x","events":[{"kind":"airport-surge","from_min":0,"to_min":60,"factor":2}]}`, "missing region"},
		{"airport-surge zero factor", `{"name":"x","events":[{"kind":"airport-surge","from_min":0,"to_min":60,"region":1}]}`, "factor must be > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted invalid spec %q", tc.src)
			}
			if !contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// Weather couples both axes: speed slows by f while demand rises by 2−f.
func TestWeatherCouplesSpeedAndDemand(t *testing.T) {
	s, err := NewBuilder("wx").Weather(2, 100, 200, 0.7).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s)
	if got := e.SpeedScale(2, 150); got != 0.7 {
		t.Fatalf("SpeedScale = %v, want 0.7", got)
	}
	if got := e.DemandScale(2, 150); math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("DemandScale = %v, want 1.3", got)
	}
	if e.SpeedScale(1, 150) != 1 || e.SpeedScale(2, 200) != 1 {
		t.Fatal("weather leaked outside its region/window")
	}
}

// Airport surges compile into demand AND fares for the one region.
func TestAirportSurgeCompilesToDemandAndFares(t *testing.T) {
	s, err := NewBuilder("ap").AirportSurge(3, 100, 200, 2.5).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s)
	if e.DemandScale(3, 150) != 2.5 || e.FareScale(3, 150) != 2.5 {
		t.Fatalf("surge not applied: demand=%v fares=%v", e.DemandScale(3, 150), e.FareScale(3, 150))
	}
	if e.DemandScale(2, 150) != 1 || e.FareScale(3, 200) != 1 {
		t.Fatal("surge leaked outside its region/window")
	}
}

// Shift-change cohort and window scoping.
func TestShiftChangeScoping(t *testing.T) {
	s, err := NewBuilder("sc").ShiftChange(3, 1, 100, 200).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s)
	if !e.OffDuty(1, 150) || !e.OffDuty(4, 150) {
		t.Fatal("cohort member not off duty inside the window")
	}
	if e.OffDuty(0, 150) || e.OffDuty(1, 99) || e.OffDuty(1, 200) {
		t.Fatal("off-duty leaked outside the cohort/window")
	}
}
