package scenario

import (
	"bytes"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the spec parser. Properties:
//
//  1. Parse never panics, whatever the input.
//  2. Anything Parse accepts re-encodes canonically: Encode is total on
//     parsed specs, Parse(Encode(s)) succeeds, and encoding is a fixpoint
//     (the canonical form of a canonical form is itself).
//
// The committed corpus under testdata/fuzz/FuzzParse seeds the explorer
// with one valid spec per event kind plus structurally-broken inputs; `go
// test` replays it in short mode so regressions surface without -fuzz.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"name":"s","events":[{"kind":"station-outage","from_min":0,"to_min":60,"station":0}]}`))
	f.Add([]byte(`{"name":"s","events":[{"kind":"demand-scale","from_min":10,"to_min":20,"region":2,"factor":0.5}]}`))
	f.Add([]byte(`{"name":"s","events":[{"kind":"battery-degradation","factor":0.8,"cohort_mod":2,"cohort_rem":1}]}`))
	f.Add([]byte(`{"name":"s","events":[{"kind":"weather","from_min":420,"to_min":720,"factor":0.7}]}`))
	f.Add([]byte(`{"name":"s","events":[{"kind":"tariff-shift","from_min":1020,"to_min":1320,"factor":1.6}]}`))
	f.Add([]byte(`{"name":"s","events":[{"kind":"battery-cohort","factor":1.15,"cohort_mod":4,"cohort_rem":2}]}`))
	f.Add([]byte(`{"name":"s","events":[{"kind":"shift-change","from_min":480,"to_min":600,"cohort_mod":3,"cohort_rem":1}]}`))
	f.Add([]byte(`{"name":"s","events":[{"kind":"airport-surge","from_min":360,"to_min":600,"region":2,"factor":2.5}]}`))
	f.Add([]byte(`{"name":"s"`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		enc, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode failed on parsed spec: %v", err)
		}
		s2, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse of canonical encoding failed: %v\n%s", err, enc)
		}
		enc2, err := Encode(s2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
