package scenario

// Golden-trace regression harness.
//
// Every fixture spec under testdata/scenarios/<name>.json is run on the
// micro city (synth.MicroConfig(42), one day, Stay policy, seed 42) with
// the structured event recorder attached, and the SHA-256 digest of the
// canonical event log is compared against testdata/golden/<name>.digest.
// Any behavioral drift in the simulator or the scenario engine — one
// reordered event, one changed minute — changes the digest.
//
// To regenerate after an INTENTIONAL behavior change:
//
//	go test ./internal/scenario -run TestGoldenTraces -update
//
// then commit the refreshed digests together with the change that explains
// them. Never update goldens to quiet a failure you cannot explain.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace digests")

// goldenFixtures lists the committed scenario specs, in run order.
var goldenFixtures = []string{"baseline", "station-outage", "demand-surge", "weather", "airport-surge"}

// goldenSeed fixes both the city and the run; the fixture digests are only
// meaningful against exactly this world.
const goldenSeed = 42

// goldenDigest replays one fixture and digests its event log. Every call
// builds a fresh city and environment so concurrent calls share nothing.
func goldenDigest(spec *Spec) (string, error) {
	cfg := synth.MicroConfig(goldenSeed)
	city, err := synth.Build(cfg)
	if err != nil {
		return "", err
	}
	// Start everyone near the forced-charge threshold so the charging
	// pipeline — stations, queues, outages, derates — is exercised from the
	// first slot.
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.3
	}
	env := sim.New(city, sim.DefaultOptions(1), goldenSeed)
	var events []trace.Event
	env.SetRecorder(func(ev trace.Event) { events = append(events, ev) })
	if _, err := Attach(env, spec); err != nil {
		return "", err
	}
	env.Reset(goldenSeed)
	for !env.Done() {
		env.Step(nil) // Stay policy: forced charging still moves taxis
	}
	return trace.DigestEvents(events), nil
}

func loadFixture(t *testing.T, name string) *Spec {
	t.Helper()
	spec, err := Load(filepath.Join("testdata", "scenarios", name+".json"))
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return spec
}

func TestGoldenTraces(t *testing.T) {
	for _, name := range goldenFixtures {
		t.Run(name, func(t *testing.T) {
			spec := loadFixture(t, name)
			got, err := goldenDigest(spec)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".digest")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != strings.TrimSpace(string(want)) {
				t.Fatalf("trace digest drifted for %s:\n got %s\nwant %s\nIf the change is intentional, regenerate with -update and commit.",
					name, got, strings.TrimSpace(string(want)))
			}
		})
	}
}

// The committed fixtures must be in canonical form: loading and re-encoding
// one reproduces its bytes exactly, so hand edits cannot smuggle in
// non-canonical orderings that would mask composition bugs.
func TestGoldenFixturesCanonical(t *testing.T) {
	for _, name := range goldenFixtures {
		path := filepath.Join("testdata", "scenarios", name+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc, err := Encode(spec)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(raw) {
			t.Fatalf("%s is not canonical; want:\n%s", path, enc)
		}
	}
}

// The baseline fixture must be indistinguishable from running with no
// scenario at all: attaching an empty engine cannot perturb the RNG
// streams or the event log.
func TestGoldenBaselineMatchesNoScenario(t *testing.T) {
	withScenario, err := goldenDigest(loadFixture(t, "baseline"))
	if err != nil {
		t.Fatal(err)
	}
	city, err := synth.Build(synth.MicroConfig(goldenSeed))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.3
	}
	env := sim.New(city, sim.DefaultOptions(1), goldenSeed)
	var events []trace.Event
	env.SetRecorder(func(ev trace.Event) { events = append(events, ev) })
	env.Reset(goldenSeed)
	for !env.Done() {
		env.Step(nil)
	}
	if clean := trace.DigestEvents(events); clean != withScenario {
		t.Fatalf("baseline scenario diverges from a clean run:\nclean    %s\nbaseline %s", clean, withScenario)
	}
}

// Scenario replay must be worker-invariant: digesting the fixtures through
// the parallel runtime with four workers produces exactly the serial
// digests. Each replay owns its city and env, so this pins the absence of
// shared mutable state in the engine (it is called concurrently here).
func TestGoldenTracesWorkerInvariant(t *testing.T) {
	specs := make([]*Spec, len(goldenFixtures))
	for i, name := range goldenFixtures {
		specs[i] = loadFixture(t, name)
	}
	serial := make([]string, len(specs))
	for i, spec := range specs {
		d, err := goldenDigest(spec)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = d
	}
	for _, workers := range []int{1, 4} {
		got, err := parallel.Map(context.Background(), workers, len(specs),
			func(_ context.Context, i int) (string, error) {
				// One engine instance shared across all replicas of the same
				// spec would also be legal (Hooks are pure); building per
				// replay keeps the test symmetric with goldenDigest.
				return goldenDigest(specs[i])
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: fixture %s digest %s, serial %s",
					workers, goldenFixtures[i], got[i], serial[i])
			}
		}
	}
}
