package scenario

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

var genCfg = GenConfig{Stations: 4, Regions: 6, HorizonMin: 1440, MaxEvents: 6}

// Same source state, same name, same config → byte-identical spec.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, err := Generate(rng.SplitStable(seed, "gen"), "g", genCfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(rng.SplitStable(seed, "gen"), "g", genCfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ea, _ := Encode(a)
		eb, _ := Encode(b)
		if !bytes.Equal(ea, eb) {
			t.Fatalf("seed %d: two generations from the same source differ:\n%s\nvs\n%s", seed, ea, eb)
		}
	}
}

// Every generated spec respects the severity envelope: validated, in-range
// indices, in-horizon windows, at most one outage, 2..MaxEvents events.
func TestGenerateRespectsBounds(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s, err := Generate(rng.SplitStable(seed, "bounds"), "g", genCfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s.Events) < 2 || len(s.Events) > genCfg.MaxEvents {
			t.Fatalf("seed %d: %d events, want 2..%d", seed, len(s.Events), genCfg.MaxEvents)
		}
		outages := 0
		for i := range s.Events {
			ev := &s.Events[i]
			if ev.Kind == KindStationOutage {
				outages++
			}
			if st := ev.StationID(); st >= genCfg.Stations {
				t.Fatalf("seed %d: station %d out of range", seed, st)
			}
			if r := ev.RegionID(); r >= genCfg.Regions {
				t.Fatalf("seed %d: region %d out of range", seed, r)
			}
			if ev.ToMin > genCfg.HorizonMin {
				t.Fatalf("seed %d: window [%d, %d) leaves the horizon %d", seed, ev.FromMin, ev.ToMin, genCfg.HorizonMin)
			}
		}
		if outages > 1 {
			t.Fatalf("seed %d: %d outages, want at most 1", seed, outages)
		}
	}
}

func TestGenerateRejectsDegenerateConfigs(t *testing.T) {
	src := rng.New(1)
	if _, err := Generate(src, "g", GenConfig{Stations: 0, Regions: 3, HorizonMin: 1440}); err == nil {
		t.Fatal("accepted a zero-station config")
	}
	if _, err := Generate(src, "g", GenConfig{Stations: 3, Regions: 3, HorizonMin: 30}); err == nil {
		t.Fatal("accepted a sub-hour horizon")
	}
}

// FuzzGenerate explores the generator's seed/config space. Properties:
//
//  1. Generate never panics and never errors on a legal config.
//  2. Its output is a valid spec whose canonical encoding is a fixpoint.
//  3. Reversing the generated events and re-normalizing yields the same
//     canonical bytes — the generator cannot produce order-sensitive specs.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint16(720))
	f.Add(int64(42), uint8(1), uint8(1), uint16(60))
	f.Add(int64(-7), uint8(12), uint8(20), uint16(2880))
	f.Fuzz(func(t *testing.T, seed int64, stations, regions uint8, horizon uint16) {
		cfg := GenConfig{
			Stations:   1 + int(stations)%16,
			Regions:    1 + int(regions)%32,
			HorizonMin: 60 + int(horizon),
		}
		s, err := Generate(rng.SplitStable(seed, "fuzz-gen"), "fz", cfg)
		if err != nil {
			t.Fatalf("Generate errored on a legal config: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generated spec fails validation: %v", err)
		}
		enc, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode failed: %v", err)
		}
		s2, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse of canonical encoding failed: %v\n%s", err, enc)
		}
		enc2, err := Encode(s2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n%s\nvs\n%s", enc, enc2)
		}
		// Order independence: reverse the events and re-encode.
		rev := &Spec{Name: s.Name, Description: s.Description}
		for i := len(s.Events) - 1; i >= 0; i-- {
			rev.Events = append(rev.Events, s.Events[i])
		}
		encRev, err := Encode(rev)
		if err != nil {
			t.Fatalf("Encode of reversed spec failed: %v", err)
		}
		if !bytes.Equal(enc, encRev) {
			t.Fatalf("event order leaked into the canonical encoding:\n%s\nvs\n%s", enc, encRev)
		}
	})
}
