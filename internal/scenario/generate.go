package scenario

import (
	"fmt"

	"repro/internal/rng"
)

// GenConfig bounds the random-scenario generator to a concrete world and a
// sane severity envelope. The bounds are deliberately survivable: the
// battery's job is to find invariant violations under stress, not to prove
// that a city with zero demand and zero chargers grinds to a halt.
type GenConfig struct {
	// Stations and Regions are the city's inventory; generated indices stay
	// in range so ValidateFor never rejects a generated spec.
	Stations int
	Regions  int
	// HorizonMin is the run length in minutes; generated windows stay
	// inside it so every event can actually fire.
	HorizonMin int
	// MaxEvents caps the composition size (0 = the default cap of 6; the
	// generator always emits at least 2 events so every scenario composes
	// at least two fault kinds).
	MaxEvents int
}

// genKinds is the menu the generator draws from — every kind in the zoo.
var genKinds = []string{
	KindStationOutage,
	KindStationDerate,
	KindDemandScale,
	KindFareShock,
	KindGPSDropout,
	KindBatteryDegradation,
	KindWeather,
	KindTariffShift,
	KindBatteryCohort,
	KindShiftChange,
	KindAirportSurge,
}

// Generate draws a random scenario composition from src: 2 to MaxEvents
// events across the full fault zoo, each with bounded severity (at most one
// station outage of at most three hours, derates of a single point, demand
// and fare factors within [0.3, 2.5], weather within (0.6, 1], shift
// changes of at most two hours on a sub-fleet cohort). The result is
// validated and normalized like any authored spec, so Encode(Generate(...))
// is canonical and replayable; identical (src state, name, cfg) inputs
// yield identical specs.
func Generate(src *rng.Source, name string, cfg GenConfig) (*Spec, error) {
	if cfg.Stations < 1 || cfg.Regions < 1 {
		return nil, fmt.Errorf("scenario: Generate needs at least one station and region, got %d/%d",
			cfg.Stations, cfg.Regions)
	}
	if cfg.HorizonMin < 60 {
		return nil, fmt.Errorf("scenario: Generate needs a horizon of at least 60 minutes, got %d", cfg.HorizonMin)
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 6
	}
	if maxEvents < 2 {
		maxEvents = 2
	}
	n := 2
	if maxEvents > 2 {
		n += src.Intn(maxEvents - 1)
	}

	// window draws a half-open window inside the horizon, at most maxDur
	// minutes long and at least 15 (sub-slot windows are legal but inert
	// noise for a battery that wants every event to matter).
	window := func(maxDur int) (from, to int) {
		dur := 15 + src.Intn(maxDur-14)
		from = src.Intn(cfg.HorizonMin - 15)
		to = from + dur
		if to > cfg.HorizonMin {
			to = cfg.HorizonMin
		}
		return from, to
	}
	// regionOrCity picks a concrete region 70% of the time, citywide else.
	regionOrCity := func() int {
		if src.Float64() < 0.3 {
			return -1
		}
		return src.Intn(cfg.Regions)
	}
	// cohort picks a sub-fleet stride: every 3rd or 4th taxi.
	cohort := func() (mod, rem int) {
		mod = 3 + src.Intn(2)
		return mod, src.Intn(mod)
	}

	b := NewBuilder(name).Describe("generated composition")
	usedOutage := false
	for i := 0; i < n; i++ {
		kind := genKinds[src.Intn(len(genKinds))]
		if kind == KindStationOutage && usedOutage {
			// One dark station per composition keeps scenarios survivable;
			// redraws would perturb the stream shape, so substitute instead.
			kind = KindDemandScale
		}
		switch kind {
		case KindStationOutage:
			usedOutage = true
			from, to := window(180)
			b.StationOutage(src.Intn(cfg.Stations), from, to)
		case KindStationDerate:
			from, to := window(240)
			b.StationDerate(src.Intn(cfg.Stations), 1, from, to)
		case KindDemandScale:
			from, to := window(360)
			b.DemandScale(regionOrCity(), from, to, src.Uniform(0.3, 2.5))
		case KindFareShock:
			from, to := window(360)
			b.FareShock(regionOrCity(), from, to, src.Uniform(0.5, 2))
		case KindGPSDropout:
			from, to := window(120)
			b.GPSDropout(regionOrCity(), from, to)
		case KindBatteryDegradation:
			mod, rem := cohort()
			b.BatteryDegradation(mod, rem, src.Uniform(0.7, 1))
		case KindWeather:
			from, to := window(300)
			b.Weather(regionOrCity(), from, to, src.Uniform(0.6, 1))
		case KindTariffShift:
			from, to := window(360)
			b.TariffShift(from, to, src.Uniform(0.5, 2))
		case KindBatteryCohort:
			mod, rem := cohort()
			b.BatteryCohort(mod, rem, src.Uniform(0.8, 1.25))
		case KindShiftChange:
			from, to := window(120)
			mod, rem := cohort()
			b.ShiftChange(mod, rem, from, to)
		case KindAirportSurge:
			from, to := window(240)
			b.AirportSurge(src.Intn(cfg.Regions), from, to, src.Uniform(1, 3))
		}
	}
	return b.Build()
}
