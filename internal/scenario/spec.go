// Package scenario is the fault/perturbation engine of the evaluation
// harness: a declarative, seed-independent description of everything that
// goes wrong in a run — charging-station outages and capacity derating,
// regional demand surges and droughts, GPS dropout windows, fare-price
// shocks, battery-degradation cohorts, weather slowdowns, time-of-use
// tariff shifts, mixed-consumption battery cohorts, shift-change waves,
// and airport surges.
//
// A Spec is loaded from JSON (Parse/Load) or built programmatically
// (Builder), normalized to a canonical event order, and compiled into an
// Engine implementing sim.Hooks. Because specs are data, the same
// perturbation is replayed bit-for-bit under every policy, which is what
// makes scenario-conditioned baseline comparisons (and the golden-trace
// harness) meaningful.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Event kinds. The set is closed: Parse rejects unknown kinds so a typo in
// a spec fails loudly instead of silently not perturbing anything.
const (
	// KindStationOutage closes a station to new arrivals over [FromMin,
	// ToMin). Queued taxis are evicted and re-plan; plugged-in taxis keep
	// charging.
	KindStationOutage = "station-outage"
	// KindStationDerate knocks out Points charging points over [FromMin,
	// ToMin). In-progress sessions are never interrupted; the excess drains
	// as they finish. Overlapping derates sum (clamped to the inventory).
	KindStationDerate = "station-derate"
	// KindDemandScale multiplies a region's (or, with Region omitted, the
	// whole city's) request rate by Factor over [FromMin, ToMin): >1 surge,
	// <1 drought, 0 silence. Overlapping scales multiply.
	KindDemandScale = "demand-scale"
	// KindFareShock multiplies the fare of requests originating in a region
	// (or citywide) by Factor over [FromMin, ToMin). Overlapping shocks
	// multiply.
	KindFareShock = "fare-shock"
	// KindGPSDropout freezes the observations of taxis in a region (or
	// citywide) at the last value seen before the window: the policy
	// decides on stale state until the window closes.
	KindGPSDropout = "gps-dropout"
	// KindBatteryDegradation scales the battery capacity of a cohort of
	// taxis (ID % CohortMod == CohortRem; CohortMod 0 = whole fleet) by
	// Factor for the entire run. Time window fields are ignored: packs do
	// not heal mid-run. Overlapping degradations multiply.
	KindBatteryDegradation = "battery-degradation"
	// KindWeather slows traffic in a region (or citywide) over [FromMin,
	// ToMin): travel speed is multiplied by Factor ∈ (0, 1] while demand is
	// multiplied by 2−Factor (bad weather both slows driving and raises
	// ride-hailing). Overlapping weather windows multiply on both axes.
	KindWeather = "weather"
	// KindTariffShift multiplies the time-of-use charging tariff citywide
	// by Factor over [FromMin, ToMin): a price spike (>1) or an off-peak
	// rebate (<1). It changes billing only — charging power and the
	// tariff-band observation feature are untouched, so policies cannot see
	// the shift except through their wallets. Overlapping shifts multiply.
	KindTariffShift = "tariff-shift"
	// KindBatteryCohort scales the energy consumption per km of a cohort of
	// taxis (ID % CohortMod == CohortRem; CohortMod 0 = whole fleet) by
	// Factor for the entire run: a mixed fleet of efficient (<1) and thirsty
	// (>1) vehicle models. Time windows are not supported. Overlapping
	// cohorts multiply.
	KindBatteryCohort = "battery-cohort"
	// KindShiftChange takes a cohort of taxis (ID % CohortMod == CohortRem;
	// CohortMod 0 = whole fleet) off duty over [FromMin, ToMin): off-duty
	// taxis are excluded from matching and hold position instead of
	// executing displacement actions. Forced charging below the low-SoC
	// floor still applies — a shift change never strands a taxi.
	// Overlapping windows OR.
	KindShiftChange = "shift-change"
	// KindAirportSurge models a flight-bank arrival wave: demand AND fares
	// in one required region are both multiplied by Factor over [FromMin,
	// ToMin). Overlapping surges multiply.
	KindAirportSurge = "airport-surge"
)

// kindRank fixes the canonical sort order of kinds.
var kindRank = map[string]int{
	KindStationOutage:      0,
	KindStationDerate:      1,
	KindDemandScale:        2,
	KindFareShock:          3,
	KindGPSDropout:         4,
	KindBatteryDegradation: 5,
	KindWeather:            6,
	KindTariffShift:        7,
	KindBatteryCohort:      8,
	KindShiftChange:        9,
	KindAirportSurge:       10,
}

// Event is one perturbation. Station and Region are pointers so the wire
// format distinguishes "station 0" from "not a station event"; use the
// StationID/RegionID accessors, which map omitted to -1 (citywide for
// Region).
type Event struct {
	Kind    string `json:"kind"`
	FromMin int    `json:"from_min,omitempty"`
	ToMin   int    `json:"to_min,omitempty"`
	Station *int   `json:"station,omitempty"`
	Region  *int   `json:"region,omitempty"`
	// Points is the number of charging points a derate removes.
	Points int `json:"points,omitempty"`
	// Factor is the multiplier of demand-scale, fare-shock, and
	// battery-degradation events.
	Factor float64 `json:"factor,omitempty"`
	// CohortMod/CohortRem select the battery-degradation cohort:
	// ID % CohortMod == CohortRem. CohortMod 0 selects the whole fleet.
	CohortMod int `json:"cohort_mod,omitempty"`
	CohortRem int `json:"cohort_rem,omitempty"`
}

// StationID returns the event's station, or -1 when it has none.
func (ev *Event) StationID() int {
	if ev.Station == nil {
		return -1
	}
	return *ev.Station
}

// RegionID returns the event's region, or -1 for citywide/none.
func (ev *Event) RegionID() int {
	if ev.Region == nil {
		return -1
	}
	return *ev.Region
}

// Active reports whether the event's window covers absolute minute m.
// Windows are half-open [FromMin, ToMin): zero-duration events are never
// active.
func (ev *Event) Active(m int) bool { return m >= ev.FromMin && m < ev.ToMin }

// Spec is a named, ordered collection of perturbation events.
type Spec struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Events      []Event `json:"events"`
}

// Validate checks every event against its kind's schema. It does not know
// the city, so index range checks happen in Attach.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	for i := range s.Events {
		if err := validateEvent(&s.Events[i]); err != nil {
			return fmt.Errorf("scenario %q: event %d: %w", s.Name, i, err)
		}
	}
	return nil
}

func validateEvent(ev *Event) error {
	if _, ok := kindRank[ev.Kind]; !ok {
		return fmt.Errorf("unknown kind %q", ev.Kind)
	}
	isStation := ev.Kind == KindStationOutage || ev.Kind == KindStationDerate
	isBattery := ev.Kind == KindBatteryDegradation || ev.Kind == KindBatteryCohort
	if !isBattery {
		if ev.FromMin < 0 {
			return fmt.Errorf("%s: negative from_min %d", ev.Kind, ev.FromMin)
		}
		if ev.ToMin < ev.FromMin {
			return fmt.Errorf("%s: window [%d, %d) runs backwards", ev.Kind, ev.FromMin, ev.ToMin)
		}
	} else if ev.FromMin != 0 || ev.ToMin != 0 {
		return fmt.Errorf("%s: time windows are not supported (packs do not heal mid-run)", ev.Kind)
	}
	if isStation {
		if ev.Station == nil {
			return fmt.Errorf("%s: missing station", ev.Kind)
		}
		if *ev.Station < 0 {
			return fmt.Errorf("%s: negative station %d", ev.Kind, *ev.Station)
		}
	} else if ev.Station != nil {
		return fmt.Errorf("%s: station field is not allowed", ev.Kind)
	}
	switch {
	case isStation || isBattery || ev.Kind == KindTariffShift || ev.Kind == KindShiftChange:
		if ev.Region != nil {
			return fmt.Errorf("%s: region field is not allowed", ev.Kind)
		}
	case ev.Kind == KindAirportSurge:
		// An airport is a place: a citywide "airport" surge is a spec bug.
		if ev.Region == nil {
			return fmt.Errorf("airport-surge: missing region")
		}
		if *ev.Region < 0 {
			return fmt.Errorf("airport-surge: negative region %d", *ev.Region)
		}
	default:
		if ev.Region != nil && *ev.Region < 0 {
			return fmt.Errorf("%s: negative region %d", ev.Kind, *ev.Region)
		}
	}
	if ev.Kind == KindStationDerate {
		if ev.Points < 1 {
			return fmt.Errorf("station-derate: points must be >= 1, got %d", ev.Points)
		}
	} else if ev.Points != 0 {
		return fmt.Errorf("%s: points field is not allowed", ev.Kind)
	}
	switch ev.Kind {
	case KindDemandScale, KindFareShock:
		// NaN passes a bare `< 0` check and then poisons every product and
		// the canonical sort, so rule out non-finite factors explicitly
		// (JSON cannot encode them, but Builder/Compose can).
		if math.IsNaN(ev.Factor) || math.IsInf(ev.Factor, 0) {
			return fmt.Errorf("%s: factor must be finite, got %v", ev.Kind, ev.Factor)
		}
		if ev.Factor < 0 {
			return fmt.Errorf("%s: factor must be >= 0, got %v", ev.Kind, ev.Factor)
		}
	case KindBatteryDegradation, KindBatteryCohort, KindTariffShift, KindAirportSurge:
		if math.IsInf(ev.Factor, 0) {
			return fmt.Errorf("%s: factor must be finite, got %v", ev.Kind, ev.Factor)
		}
		if !(ev.Factor > 0) { // also rejects NaN
			return fmt.Errorf("%s: factor must be > 0, got %v", ev.Kind, ev.Factor)
		}
	case KindWeather:
		if !(ev.Factor > 0) || ev.Factor > 1 { // also rejects NaN/Inf
			return fmt.Errorf("weather: factor must be in (0, 1], got %v", ev.Factor)
		}
	default:
		if ev.Factor != 0 {
			return fmt.Errorf("%s: factor field is not allowed", ev.Kind)
		}
	}
	if isBattery || ev.Kind == KindShiftChange {
		if ev.CohortMod < 0 {
			return fmt.Errorf("%s: negative cohort_mod %d", ev.Kind, ev.CohortMod)
		}
		if ev.CohortMod == 0 && ev.CohortRem != 0 {
			return fmt.Errorf("%s: cohort_rem %d without cohort_mod", ev.Kind, ev.CohortRem)
		}
		if ev.CohortMod > 0 && (ev.CohortRem < 0 || ev.CohortRem >= ev.CohortMod) {
			return fmt.Errorf("%s: cohort_rem %d out of [0, %d)", ev.Kind, ev.CohortRem, ev.CohortMod)
		}
	} else if ev.CohortMod != 0 || ev.CohortRem != 0 {
		return fmt.Errorf("%s: cohort fields are not allowed", ev.Kind)
	}
	return nil
}

// Normalize sorts events into the canonical order so semantically equal
// specs encode to identical bytes regardless of authoring order. Merge
// semantics are order-independent (OR / sum / product), so sorting never
// changes behavior.
func (s *Spec) Normalize() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return eventLess(&s.Events[i], &s.Events[j])
	})
}

func eventLess(a, b *Event) bool {
	if ra, rb := kindRank[a.Kind], kindRank[b.Kind]; ra != rb {
		return ra < rb
	}
	if a.FromMin != b.FromMin {
		return a.FromMin < b.FromMin
	}
	if a.ToMin != b.ToMin {
		return a.ToMin < b.ToMin
	}
	if sa, sb := a.StationID(), b.StationID(); sa != sb {
		return sa < sb
	}
	if ra, rb := a.RegionID(), b.RegionID(); ra != rb {
		return ra < rb
	}
	if a.Points != b.Points {
		return a.Points < b.Points
	}
	if a.Factor != b.Factor {
		return a.Factor < b.Factor
	}
	if a.CohortMod != b.CohortMod {
		return a.CohortMod < b.CohortMod
	}
	return a.CohortRem < b.CohortRem
}

// Parse decodes, validates, and normalizes a JSON spec. Unknown fields are
// rejected: a misspelled field means the author's intent would silently not
// apply.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Trailing garbage after the object is an error, not ignored input.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.Normalize()
	return &s, nil
}

// Load reads a spec file from disk.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Encode renders the spec as canonical indented JSON (normalized event
// order, trailing newline). Parse(Encode(s)) reproduces s exactly.
func Encode(s *Spec) ([]byte, error) {
	c := *s
	c.Events = append([]Event{}, s.Events...)
	c.Normalize()
	data, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(data, '\n'), nil
}

// Compose merges several scenarios into one: the union of their events
// under the standard merge semantics (closures OR, derates sum, scales
// multiply). The result is validated and normalized.
func Compose(name string, specs ...*Spec) (*Spec, error) {
	out := &Spec{Name: name}
	var descs []string
	for _, s := range specs {
		if s.Description != "" {
			descs = append(descs, s.Description)
		}
		out.Events = append(out.Events, s.Events...)
	}
	out.Description = strings.Join(descs, " + ")
	if err := out.Validate(); err != nil {
		return nil, err
	}
	out.Normalize()
	return out, nil
}
