package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseValidSpec(t *testing.T) {
	data := []byte(`{
		"name": "demo",
		"description": "one of everything",
		"events": [
			{"kind": "station-outage", "from_min": 60, "to_min": 120, "station": 0},
			{"kind": "station-derate", "from_min": 0, "to_min": 240, "station": 1, "points": 2},
			{"kind": "demand-scale", "from_min": 420, "to_min": 600, "region": 3, "factor": 2.5},
			{"kind": "fare-shock", "from_min": 0, "to_min": 1440, "factor": 1.2},
			{"kind": "gps-dropout", "from_min": 300, "to_min": 330, "region": 1},
			{"kind": "battery-degradation", "factor": 0.8, "cohort_mod": 4, "cohort_rem": 1}
		]
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || len(s.Events) != 6 {
		t.Fatalf("parsed name=%q events=%d", s.Name, len(s.Events))
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty input", ``, "EOF"},
		{"not json", `}{`, "invalid"},
		{"missing name", `{"events": []}`, "missing name"},
		{"unknown kind", `{"name":"x","events":[{"kind":"meteor-strike"}]}`, "unknown kind"},
		{"unknown field", `{"name":"x","events":[],"nope":1}`, "unknown field"},
		{"trailing data", `{"name":"x","events":[]} {"more":1}`, "trailing data"},
		{"backwards window", `{"name":"x","events":[{"kind":"station-outage","from_min":100,"to_min":50,"station":0}]}`, "runs backwards"},
		{"negative from", `{"name":"x","events":[{"kind":"gps-dropout","from_min":-5,"to_min":5}]}`, "negative from_min"},
		{"outage without station", `{"name":"x","events":[{"kind":"station-outage","from_min":0,"to_min":10}]}`, "missing station"},
		{"negative station", `{"name":"x","events":[{"kind":"station-outage","from_min":0,"to_min":10,"station":-1}]}`, "negative station"},
		{"station on demand event", `{"name":"x","events":[{"kind":"demand-scale","from_min":0,"to_min":10,"factor":2,"station":0}]}`, "station field is not allowed"},
		{"region on station event", `{"name":"x","events":[{"kind":"station-outage","from_min":0,"to_min":10,"station":0,"region":1}]}`, "region field is not allowed"},
		{"derate without points", `{"name":"x","events":[{"kind":"station-derate","from_min":0,"to_min":10,"station":0}]}`, "points must be >= 1"},
		{"points on outage", `{"name":"x","events":[{"kind":"station-outage","from_min":0,"to_min":10,"station":0,"points":1}]}`, "points field is not allowed"},
		{"negative demand factor", `{"name":"x","events":[{"kind":"demand-scale","from_min":0,"to_min":10,"factor":-1}]}`, "factor must be >= 0"},
		{"zero battery factor", `{"name":"x","events":[{"kind":"battery-degradation","factor":0}]}`, "factor must be > 0"},
		{"battery with window", `{"name":"x","events":[{"kind":"battery-degradation","from_min":0,"to_min":60,"factor":0.8}]}`, "time windows are not supported"},
		{"cohort rem out of range", `{"name":"x","events":[{"kind":"battery-degradation","factor":0.8,"cohort_mod":3,"cohort_rem":3}]}`, "out of [0, 3)"},
		{"cohort on dropout", `{"name":"x","events":[{"kind":"gps-dropout","from_min":0,"to_min":10,"cohort_mod":2}]}`, "cohort fields are not allowed"},
		{"factor on outage", `{"name":"x","events":[{"kind":"station-outage","from_min":0,"to_min":10,"station":0,"factor":2}]}`, "factor field is not allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted invalid spec %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// Encode(Parse(x)) is a fixpoint, and authoring order does not matter: two
// permutations of the same events encode to identical canonical bytes.
func TestEncodeCanonical(t *testing.T) {
	a, err := NewBuilder("perm").
		StationOutage(2, 60, 120).
		StationOutage(0, 0, 60).
		DemandSurge(1, 0, 600, 3).
		FareShock(-1, 0, 600, 1.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder("perm").
		FareShock(-1, 0, 600, 1.5).
		DemandSurge(1, 0, 600, 3).
		StationOutage(0, 0, 60).
		StationOutage(2, 60, 120).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ea, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatalf("permuted specs encode differently:\n%s\nvs\n%s", ea, eb)
	}
	again, err := Parse(ea)
	if err != nil {
		t.Fatal(err)
	}
	ea2, err := Encode(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, ea2) {
		t.Fatal("Encode(Parse(Encode(s))) is not a fixpoint")
	}
}

// Schedule semantics, table-driven over the compiled engine.
func TestScheduleSemantics(t *testing.T) {
	t.Run("overlapping outages OR", func(t *testing.T) {
		s, err := NewBuilder("t").
			StationOutage(0, 100, 200).
			StationOutage(0, 150, 300).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s)
		for m, want := range map[int]bool{99: false, 100: true, 175: true, 299: true, 300: false} {
			if got := e.StationClosed(0, m); got != want {
				t.Fatalf("closed(0, %d) = %v, want %v", m, got, want)
			}
		}
		if e.StationClosed(1, 150) {
			t.Fatal("outage leaked to station 1")
		}
	})

	t.Run("overlapping derates sum", func(t *testing.T) {
		s, err := NewBuilder("t").
			StationDerate(0, 1, 0, 100).
			StationDerate(0, 2, 50, 150).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s)
		for m, want := range map[int]int{0: 1, 49: 1, 50: 3, 99: 3, 100: 2, 149: 2, 150: 0} {
			if got := e.StationDerate(0, m); got != want {
				t.Fatalf("derate(0, %d) = %d, want %d", m, got, want)
			}
		}
	})

	t.Run("overlapping scales multiply, citywide composes with regional", func(t *testing.T) {
		s, err := NewBuilder("t").
			DemandScale(-1, 0, 100, 2). // citywide
			DemandScale(3, 50, 100, 3). // region 3 only
			Build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s)
		checks := []struct {
			region, minute int
			want           float64
		}{
			{0, 25, 2}, {3, 25, 2}, {0, 75, 2}, {3, 75, 6}, {3, 100, 1},
		}
		for _, c := range checks {
			if got := e.DemandScale(c.region, c.minute); math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("scale(%d, %d) = %v, want %v", c.region, c.minute, got, c.want)
			}
		}
	})

	t.Run("zero-duration events are inert", func(t *testing.T) {
		s, err := NewBuilder("t").
			StationOutage(0, 100, 100).
			DemandScale(-1, 50, 50, 9).
			GPSDropout(-1, 10, 10).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s)
		for m := 0; m < 200; m++ {
			if e.StationClosed(0, m) {
				t.Fatalf("zero-duration outage active at %d", m)
			}
			if e.DemandScale(0, m) != 1 {
				t.Fatalf("zero-duration scale active at %d", m)
			}
			if e.ObsStale(0, m) {
				t.Fatalf("zero-duration dropout active at %d", m)
			}
		}
	})

	t.Run("events past the horizon never fire", func(t *testing.T) {
		const horizon = 24 * 60
		s, err := NewBuilder("t").
			StationOutage(0, horizon+100, horizon+200).
			DemandScale(-1, horizon, 2*horizon, 5).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s)
		for m := 0; m < horizon; m++ {
			if e.StationClosed(0, m) || e.DemandScale(0, m) != 1 {
				t.Fatalf("past-horizon event active at simulated minute %d", m)
			}
		}
	})

	t.Run("battery cohorts multiply", func(t *testing.T) {
		s, err := NewBuilder("t").
			BatteryDegradation(2, 0, 0.8). // even taxis
			BatteryDegradation(4, 0, 0.5). // every 4th taxi (also even)
			Build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s)
		for taxi, want := range map[int]float64{0: 0.4, 1: 1, 2: 0.8, 3: 1, 4: 0.4} {
			if got := e.BatteryFactor(taxi); math.Abs(got-want) > 1e-12 {
				t.Fatalf("battery(%d) = %v, want %v", taxi, got, want)
			}
		}
	})

	t.Run("gps dropout region scoping", func(t *testing.T) {
		s, err := NewBuilder("t").GPSDropout(2, 100, 200).Build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s)
		if !e.ObsStale(2, 150) || e.ObsStale(1, 150) || e.ObsStale(2, 200) {
			t.Fatal("dropout scoping wrong")
		}
	})
}

// Composing two scenarios equals authoring their union: the composed
// engine answers exactly like an engine built from all events at once,
// and composition order does not matter.
func TestComposeEquivalence(t *testing.T) {
	a, err := NewBuilder("outage").
		StationOutage(0, 100, 200).
		StationDerate(1, 1, 0, 300).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder("surge").
		DemandSurge(-1, 50, 250, 2).
		FareShock(2, 0, 400, 1.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ab, err := Compose("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Compose("ab", b, a)
	if err != nil {
		t.Fatal(err)
	}
	eab, err := Encode(ab)
	if err != nil {
		t.Fatal(err)
	}
	eba, err := Encode(ba)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(eab, eba) {
		t.Fatal("composition order changed the canonical encoding")
	}
	union, err := NewBuilder("ab").
		StationOutage(0, 100, 200).
		StationDerate(1, 1, 0, 300).
		DemandSurge(-1, 50, 250, 2).
		FareShock(2, 0, 400, 1.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := NewEngine(ab), NewEngine(union)
	for m := 0; m < 500; m += 7 {
		for r := 0; r < 4; r++ {
			if e1.DemandScale(r, m) != e2.DemandScale(r, m) ||
				e1.FareScale(r, m) != e2.FareScale(r, m) {
				t.Fatalf("composed engine diverges from union at region %d minute %d", r, m)
			}
		}
		for st := 0; st < 2; st++ {
			if e1.StationClosed(st, m) != e2.StationClosed(st, m) ||
				e1.StationDerate(st, m) != e2.StationDerate(st, m) {
				t.Fatalf("composed engine diverges from union at station %d minute %d", st, m)
			}
		}
	}
}

func TestBuilderPropagatesErrors(t *testing.T) {
	if _, err := NewBuilder("bad").StationDerate(0, 0, 0, 10).Build(); err == nil {
		t.Fatal("Build accepted a zero-point derate")
	}
	if _, err := NewBuilder("").StationOutage(0, 0, 10).Build(); err == nil {
		t.Fatal("Build accepted an unnamed spec")
	}
}
