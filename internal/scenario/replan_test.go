package scenario

// Regression tests for the en-route stranding bug: before the hook
// refactor, a taxi whose alternatives were all closed fell back to joining
// its current station's queue even when THAT station was closed too — and
// since a closed station can have free points, the taxi plugged straight
// into it. Now closed-station arrivals wait parked and retry.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// lowSoCCity returns the micro city with every pack near the forced-charge
// threshold, so the whole fleet heads for a station in the first slot.
func lowSoCCity(t *testing.T, seed int64) *synth.City {
	t.Helper()
	city, err := synth.Build(synth.MicroConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	for i := range city.Fleet {
		city.Fleet[i].InitialSoC = 0.22
	}
	return city
}

func recordRun(t *testing.T, city *synth.City, spec *Spec, seed int64) []trace.Event {
	t.Helper()
	env := sim.New(city, sim.DefaultOptions(1), seed)
	var events []trace.Event
	env.SetRecorder(func(ev trace.Event) { events = append(events, ev) })
	if _, err := Attach(env, spec); err != nil {
		t.Fatal(err)
	}
	env.Reset(seed)
	for !env.Done() {
		env.Step(nil)
	}
	return events
}

// A taxi en route to a station that goes dark before it arrives must
// re-plan to an open one: the outage window admits no plug events at the
// closed station, and at least one arrival is redirected away from it.
func TestEnRouteOutageReplans(t *testing.T) {
	city := lowSoCCity(t, 7)
	const dark = 0
	spec, err := NewBuilder("mid-drive-outage").
		StationOutage(dark, 2, 24*60). // closes after dispatch, before arrival
		Build()
	if err != nil {
		t.Fatal(err)
	}
	events := recordRun(t, city, spec, 7)

	var redirected, plugsElsewhere int
	for _, ev := range events {
		switch ev.Kind {
		case trace.EvPlug:
			if ev.A == dark && ev.TimeMin >= 2 {
				t.Fatalf("taxi %d plugged into closed station %d at minute %d", ev.Taxi, ev.A, ev.TimeMin)
			}
			plugsElsewhere++
		case trace.EvBalk, trace.EvReplan:
			if ev.A == dark {
				redirected++
			}
		}
	}
	if redirected == 0 {
		t.Fatal("no arrival was redirected away from the closed station")
	}
	if plugsElsewhere == 0 {
		t.Fatal("outage of one station wiped out all charging")
	}
}

// When EVERY station is closed, taxis wait parked until the blackout lifts
// — nobody plugs into a dead station (the old fallback did exactly that),
// and charging resumes once power returns.
func TestAllStationsClosedWaitsOut(t *testing.T) {
	city := lowSoCCity(t, 8)
	const liftMin = 5 * 60
	b := NewBuilder("citywide-blackout")
	for s := 0; s < city.Stations.Len(); s++ {
		b.StationOutage(s, 0, liftMin)
	}
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	events := recordRun(t, city, spec, 8)

	var plugsAfter int
	for _, ev := range events {
		if ev.Kind != trace.EvPlug {
			continue
		}
		if ev.TimeMin < liftMin {
			t.Fatalf("taxi %d plugged into station %d at minute %d during the blackout",
				ev.Taxi, ev.A, ev.TimeMin)
		}
		plugsAfter++
	}
	if plugsAfter == 0 {
		t.Fatal("fleet never charged after the blackout lifted")
	}
}

// A taxi already waiting in a queue when its station closes is evicted and
// re-plans (EvReplan), rather than staying queued at a dead station.
func TestQueueEvictedOnClosure(t *testing.T) {
	city := lowSoCCity(t, 9)
	// Close everything mid-morning: by then queues have formed (24 taxis,
	// 4 stations, all charging at once), so closures must drain them.
	b := NewBuilder("mid-morning-closure")
	for s := 0; s < city.Stations.Len(); s++ {
		b.StationOutage(s, 45, 4*60)
	}
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	events := recordRun(t, city, spec, 9)

	var queued, evicted bool
	for _, ev := range events {
		switch ev.Kind {
		case trace.EvQueue:
			if ev.TimeMin < 45 {
				queued = true
			}
		case trace.EvReplan:
			evicted = true
		case trace.EvPlug:
			if ev.TimeMin >= 45 && ev.TimeMin < 4*60 {
				t.Fatalf("plug event during the closure window at minute %d", ev.TimeMin)
			}
		}
	}
	if !queued {
		t.Skip("no queue formed before the closure; scenario needs retuning")
	}
	if !evicted {
		t.Fatal("closure did not evict and re-plan the queued taxis")
	}
}
