package scenario

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/synth"
)

// Engine compiles a Spec into the sim.Hooks interface. It is stateless
// beyond the compiled schedule — every method is a pure function of its
// arguments — so one engine can condition any number of runs, policies,
// and resets, and identical runs see identical answers regardless of call
// order or count.
//
// Merge semantics for overlapping events of the same kind:
//
//	station-outage       closures OR       (closed if any window covers m)
//	station-derate       points SUM        (clamped to inventory by the env)
//	demand-scale         factors MULTIPLY  (citywide × regional compose)
//	fare-shock           factors MULTIPLY
//	gps-dropout          windows OR
//	battery-degradation  factors MULTIPLY  (all cohorts containing the taxi)
//	weather              factors MULTIPLY  (speed × f, demand × 2−f)
//	tariff-shift         factors MULTIPLY
//	battery-cohort       factors MULTIPLY  (all cohorts containing the taxi)
//	shift-change         windows OR
//	airport-surge        factors MULTIPLY  (demand and fares both × f)
//
// Because each kind merges with a commutative, associative operation, the
// compiled answers are independent of authoring and composition order.
type Engine struct {
	spec *Spec

	outages map[int][]window
	derates map[int][]derate
	demand  []regionFactor
	fares   []regionFactor
	stale   []regionWindow
	battery []cohortFactor

	speed       []regionFactor
	tariffs     []windowFactor
	consumption []cohortFactor
	offduty     []cohortWindow
}

type window struct{ from, to int }

func (w window) covers(m int) bool { return m >= w.from && m < w.to }

type derate struct {
	window
	points int
}

type regionFactor struct {
	window
	region int // -1 = citywide
	factor float64
}

type regionWindow struct {
	window
	region int // -1 = citywide
}

type cohortFactor struct {
	mod, rem int
	factor   float64
}

type windowFactor struct {
	window
	factor float64
}

type cohortWindow struct {
	window
	mod, rem int
}

// Engine implements the extended tier too: plain-Hooks consumers see the
// base six methods, extended-aware environments get all ten.
var _ sim.ExtendedHooks = (*Engine)(nil)

// NewEngine compiles a validated spec. It does not validate indices against
// a city; use Attach for that.
func NewEngine(spec *Spec) *Engine {
	e := &Engine{
		spec:    spec,
		outages: make(map[int][]window),
		derates: make(map[int][]derate),
	}
	for i := range spec.Events {
		ev := &spec.Events[i]
		w := window{from: ev.FromMin, to: ev.ToMin}
		switch ev.Kind {
		case KindStationOutage:
			e.outages[ev.StationID()] = append(e.outages[ev.StationID()], w)
		case KindStationDerate:
			e.derates[ev.StationID()] = append(e.derates[ev.StationID()], derate{w, ev.Points})
		case KindDemandScale:
			e.demand = append(e.demand, regionFactor{w, ev.RegionID(), ev.Factor})
		case KindFareShock:
			e.fares = append(e.fares, regionFactor{w, ev.RegionID(), ev.Factor})
		case KindGPSDropout:
			e.stale = append(e.stale, regionWindow{w, ev.RegionID()})
		case KindBatteryDegradation:
			e.battery = append(e.battery, cohortFactor{ev.CohortMod, ev.CohortRem, ev.Factor})
		case KindWeather:
			// Bad weather couples both axes: driving slows by Factor while
			// demand rises by the mirrored 2−Factor.
			e.speed = append(e.speed, regionFactor{w, ev.RegionID(), ev.Factor})
			e.demand = append(e.demand, regionFactor{w, ev.RegionID(), 2 - ev.Factor})
		case KindTariffShift:
			e.tariffs = append(e.tariffs, windowFactor{w, ev.Factor})
		case KindBatteryCohort:
			e.consumption = append(e.consumption, cohortFactor{ev.CohortMod, ev.CohortRem, ev.Factor})
		case KindShiftChange:
			e.offduty = append(e.offduty, cohortWindow{w, ev.CohortMod, ev.CohortRem})
		case KindAirportSurge:
			// A flight bank compiles entirely into the existing demand and
			// fare schedules: no new sim wiring is needed for it.
			e.demand = append(e.demand, regionFactor{w, ev.RegionID(), ev.Factor})
			e.fares = append(e.fares, regionFactor{w, ev.RegionID(), ev.Factor})
		}
	}
	return e
}

// Spec returns the spec the engine was compiled from.
func (e *Engine) Spec() *Spec { return e.spec }

// StationClosed implements sim.Hooks.
func (e *Engine) StationClosed(station, minute int) bool {
	for _, w := range e.outages[station] {
		if w.covers(minute) {
			return true
		}
	}
	return false
}

// StationDerate implements sim.Hooks.
func (e *Engine) StationDerate(station, minute int) int {
	total := 0
	for _, d := range e.derates[station] {
		if d.covers(minute) {
			total += d.points
		}
	}
	return total
}

// DemandScale implements sim.Hooks.
func (e *Engine) DemandScale(region, minute int) float64 {
	return productAt(e.demand, region, minute)
}

// FareScale implements sim.Hooks.
func (e *Engine) FareScale(region, minute int) float64 {
	return productAt(e.fares, region, minute)
}

func productAt(fs []regionFactor, region, minute int) float64 {
	f := 1.0
	for _, rf := range fs {
		if rf.covers(minute) && (rf.region < 0 || rf.region == region) {
			f *= rf.factor
		}
	}
	return f
}

// ObsStale implements sim.Hooks.
func (e *Engine) ObsStale(region, minute int) bool {
	for _, rw := range e.stale {
		if rw.covers(minute) && (rw.region < 0 || rw.region == region) {
			return true
		}
	}
	return false
}

// BatteryFactor implements sim.Hooks.
func (e *Engine) BatteryFactor(taxi int) float64 {
	f := 1.0
	for _, c := range e.battery {
		if c.mod <= 0 || taxi%c.mod == c.rem {
			f *= c.factor
		}
	}
	return f
}

// SpeedScale implements sim.ExtendedHooks: the travel-speed multiplier for
// a region at a minute (weather events; 1 means clear skies).
func (e *Engine) SpeedScale(region, minute int) float64 {
	return productAt(e.speed, region, minute)
}

// TariffScale implements sim.ExtendedHooks: the citywide charging-price
// multiplier at a minute (tariff-shift events).
func (e *Engine) TariffScale(minute int) float64 {
	f := 1.0
	for _, wf := range e.tariffs {
		if wf.covers(minute) {
			f *= wf.factor
		}
	}
	return f
}

// OffDuty implements sim.ExtendedHooks: whether a taxi is on a shift
// change at a minute.
func (e *Engine) OffDuty(taxi, minute int) bool {
	for _, cw := range e.offduty {
		if cw.covers(minute) && (cw.mod <= 0 || taxi%cw.mod == cw.rem) {
			return true
		}
	}
	return false
}

// ConsumptionFactor implements sim.ExtendedHooks: the per-taxi multiplier
// on energy consumption per km (battery-cohort events).
func (e *Engine) ConsumptionFactor(taxi int) float64 {
	f := 1.0
	for _, c := range e.consumption {
		if c.mod <= 0 || taxi%c.mod == c.rem {
			f *= c.factor
		}
	}
	return f
}

// ValidateFor checks the spec's station and region indices against a
// concrete city (Spec.Validate alone cannot: it does not know the
// inventory).
func ValidateFor(spec *Spec, city *synth.City) error {
	nStations, nRegions := city.Stations.Len(), city.Partition.Len()
	for i := range spec.Events {
		ev := &spec.Events[i]
		if s := ev.StationID(); s >= nStations {
			return fmt.Errorf("scenario %q: event %d: station %d out of range (city has %d)",
				spec.Name, i, s, nStations)
		}
		if r := ev.RegionID(); r >= nRegions {
			return fmt.Errorf("scenario %q: event %d: region %d out of range (city has %d)",
				spec.Name, i, r, nRegions)
		}
	}
	return nil
}

// AttachTarget is the environment surface Attach needs: any engine that
// exposes its city and accepts hooks (both *sim.Env and the sharded
// shard.Engine qualify).
type AttachTarget interface {
	City() *synth.City
	SetHooks(sim.Hooks)
}

// Attach validates the spec against the environment's city, compiles it,
// and installs the engine as the env's hooks. Install before Reset
// (policy.Evaluate resets internally, so attaching before Evaluate is
// always safe).
func Attach(env AttachTarget, spec *Spec) (*Engine, error) {
	if err := ValidateFor(spec, env.City()); err != nil {
		return nil, err
	}
	eng := NewEngine(spec)
	env.SetHooks(eng)
	return eng, nil
}
