package scenario

// Builder constructs a Spec fluently. Errors accumulate and surface once
// at Build, so call chains stay uncluttered:
//
//	spec, err := scenario.NewBuilder("rush-hour-outage").
//		StationOutage(3, 8*60, 11*60).
//		DemandSurge(14, 7*60, 10*60, 2.5).
//		Build()
type Builder struct {
	spec Spec
}

// NewBuilder starts a spec with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{spec: Spec{Name: name}}
}

// Describe sets the spec's human-readable description.
func (b *Builder) Describe(desc string) *Builder {
	b.spec.Description = desc
	return b
}

// StationOutage closes a station to new arrivals over [from, to).
func (b *Builder) StationOutage(station, from, to int) *Builder {
	s := station
	b.spec.Events = append(b.spec.Events, Event{
		Kind: KindStationOutage, FromMin: from, ToMin: to, Station: &s,
	})
	return b
}

// StationDerate removes points charging points from a station over [from, to).
func (b *Builder) StationDerate(station, points, from, to int) *Builder {
	s := station
	b.spec.Events = append(b.spec.Events, Event{
		Kind: KindStationDerate, FromMin: from, ToMin: to, Station: &s, Points: points,
	})
	return b
}

// DemandScale multiplies a region's request rate by factor over [from, to).
// A negative region means citywide. Use factor > 1 for surges, < 1 for
// droughts, 0 for silence.
func (b *Builder) DemandScale(region, from, to int, factor float64) *Builder {
	ev := Event{Kind: KindDemandScale, FromMin: from, ToMin: to, Factor: factor}
	if region >= 0 {
		r := region
		ev.Region = &r
	}
	b.spec.Events = append(b.spec.Events, ev)
	return b
}

// DemandSurge is DemandScale named for its common use.
func (b *Builder) DemandSurge(region, from, to int, factor float64) *Builder {
	return b.DemandScale(region, from, to, factor)
}

// FareShock multiplies fares originating in a region (negative = citywide)
// by factor over [from, to).
func (b *Builder) FareShock(region, from, to int, factor float64) *Builder {
	ev := Event{Kind: KindFareShock, FromMin: from, ToMin: to, Factor: factor}
	if region >= 0 {
		r := region
		ev.Region = &r
	}
	b.spec.Events = append(b.spec.Events, ev)
	return b
}

// GPSDropout freezes observations of taxis in a region (negative =
// citywide) over [from, to).
func (b *Builder) GPSDropout(region, from, to int) *Builder {
	ev := Event{Kind: KindGPSDropout, FromMin: from, ToMin: to}
	if region >= 0 {
		r := region
		ev.Region = &r
	}
	b.spec.Events = append(b.spec.Events, ev)
	return b
}

// BatteryDegradation scales pack capacity by factor for the cohort of
// taxis with ID % mod == rem (mod 0 = whole fleet), for the entire run.
func (b *Builder) BatteryDegradation(mod, rem int, factor float64) *Builder {
	b.spec.Events = append(b.spec.Events, Event{
		Kind: KindBatteryDegradation, Factor: factor, CohortMod: mod, CohortRem: rem,
	})
	return b
}

// Weather slows traffic in a region (negative = citywide) over [from, to):
// travel speed is multiplied by factor ∈ (0, 1] and demand by 2−factor.
func (b *Builder) Weather(region, from, to int, factor float64) *Builder {
	ev := Event{Kind: KindWeather, FromMin: from, ToMin: to, Factor: factor}
	if region >= 0 {
		r := region
		ev.Region = &r
	}
	b.spec.Events = append(b.spec.Events, ev)
	return b
}

// TariffShift multiplies the citywide charging tariff by factor over
// [from, to). Billing only: charging power and observations are untouched.
func (b *Builder) TariffShift(from, to int, factor float64) *Builder {
	b.spec.Events = append(b.spec.Events, Event{
		Kind: KindTariffShift, FromMin: from, ToMin: to, Factor: factor,
	})
	return b
}

// BatteryCohort scales energy consumption per km by factor for the cohort
// of taxis with ID % mod == rem (mod 0 = whole fleet), for the entire run.
func (b *Builder) BatteryCohort(mod, rem int, factor float64) *Builder {
	b.spec.Events = append(b.spec.Events, Event{
		Kind: KindBatteryCohort, Factor: factor, CohortMod: mod, CohortRem: rem,
	})
	return b
}

// ShiftChange takes the cohort of taxis with ID % mod == rem (mod 0 =
// whole fleet) off duty over [from, to).
func (b *Builder) ShiftChange(mod, rem, from, to int) *Builder {
	b.spec.Events = append(b.spec.Events, Event{
		Kind: KindShiftChange, FromMin: from, ToMin: to, CohortMod: mod, CohortRem: rem,
	})
	return b
}

// AirportSurge multiplies demand and fares in one region by factor over
// [from, to): a flight-bank arrival wave.
func (b *Builder) AirportSurge(region, from, to int, factor float64) *Builder {
	r := region
	b.spec.Events = append(b.spec.Events, Event{
		Kind: KindAirportSurge, FromMin: from, ToMin: to, Region: &r, Factor: factor,
	})
	return b
}

// Build validates and normalizes the accumulated spec.
func (b *Builder) Build() (*Spec, error) {
	s := b.spec
	s.Events = append([]Event(nil), b.spec.Events...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.Normalize()
	return &s, nil
}
