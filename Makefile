# CI entry points. `make ci` is the gate every change must pass:
# vet + build + the full test suite, then the short tier again under the
# race detector (the parallel runtime's serial≡parallel tests stay enabled
# in short mode precisely so the race pass exercises them), then the
# coverage floor on the fault-injection surface.

GO ?= go

# Statement-coverage floor for the scenario engine, the trace codec, and
# the sharded-engine driver — the packages whose tests ARE the regression
# harness (golden digests, fuzz corpora, shard-invariance battery):
# uncovered code there is unpinned behavior.
COVER_PKGS = ./internal/scenario/ ./internal/trace/ ./internal/checkpoint/ ./internal/shard/ ./internal/invariant/ ./internal/serve/
COVER_FLOOR = 70

.PHONY: ci vet build test race cover alloc-gate smoke resume-smoke shard-smoke serve-smoke soak battery fuzz-battery bench-record fuzz bench

ci: vet build test race cover alloc-gate smoke resume-smoke shard-smoke serve-smoke battery

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short tier under the race detector: fast tests plus the worker-invariance
# determinism tests, which fan training and evaluation across goroutines.
# Explicit -timeout: race instrumentation is ~10-20x on the training loops,
# which puts the root package near go's default 10m per-package limit on a
# single-core CI host.
race:
	$(GO) test -short -race -timeout 1800s ./...

# Enforce the coverage floor per package (committed fuzz seed corpora run
# as ordinary test cases here, so short mode still replays them).
cover:
	@for pkg in $(COVER_PKGS); do \
		$(GO) test -short -cover -coverprofile=cover.out $$pkg || exit 1; \
		pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		rm -f cover.out; \
		echo "$$pkg statement coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN {exit (p+0 < f) ? 1 : 0}' || \
			{ echo "coverage below floor for $$pkg"; exit 1; }; \
	done

# Allocation-regression gate: measure allocs/op of every pinned hot-path
# benchmark (testdata/alloc_floors.json names the set) and fail if any
# exceeds its recorded floor. Floors are exact at -benchscale=small —
# steady-state allocation counts do not depend on fleet size, so the gate
# stays cheap in ci. After a deliberate allocation change, regenerate with
# `make alloc-gate UPDATE=1` and commit the diff so the regression shows up
# in review.
alloc-gate:
ifeq ($(UPDATE),1)
	$(GO) test -run TestAllocGate -update-alloc-floors .
else
	$(GO) test -run TestAllocGate .
endif

# Empty-distribution regression smoke: drive the report CLI through the
# committed zero-trip/zero-charge fixture with telemetry on. A median or
# percentile called on an empty series panics here before it can ship.
smoke:
	$(GO) run ./cmd/benchtab -scale small -gt-only -telemetry \
		-scenario testdata/scenarios/total-blackout.json > /dev/null

# Crash-resume smoke: train with checkpoints, "crash" at the episode-1
# cadence cutoff, resume toward the full total with the identical command,
# and diff the saved policy against an unbroken run's byte for byte. Then
# prove the artifact actually loads: eval -load-policy must run clean.
resume-smoke:
	@rm -rf /tmp/fairmove-resume-smoke && mkdir -p /tmp/fairmove-resume-smoke
	$(GO) run ./cmd/fairmove train -fleet 24 -pretrain 1 -episodes 1 \
		-checkpoint-dir /tmp/fairmove-resume-smoke/ckpt -checkpoint-every 1 > /dev/null
	$(GO) run ./cmd/fairmove train -fleet 24 -pretrain 1 -episodes 2 -resume \
		-checkpoint-dir /tmp/fairmove-resume-smoke/ckpt -checkpoint-every 1 \
		-save-policy /tmp/fairmove-resume-smoke/resumed.fmck > /dev/null
	$(GO) run ./cmd/fairmove train -fleet 24 -pretrain 1 -episodes 2 \
		-save-policy /tmp/fairmove-resume-smoke/unbroken.fmck > /dev/null
	cmp /tmp/fairmove-resume-smoke/resumed.fmck /tmp/fairmove-resume-smoke/unbroken.fmck
	$(GO) run ./cmd/fairmove eval -fleet 24 \
		-load-policy /tmp/fairmove-resume-smoke/resumed.fmck > /dev/null
	@rm -rf /tmp/fairmove-resume-smoke
	@echo "resume-smoke: resumed run byte-identical to unbroken run"

# Online-dispatch service smoke: build the real binaries, start
# `fairmove serve`, replay two slots of recorded events through
# `datagen stream`, assert the served decision digest equals the batch
# engine's, then SIGTERM and require a clean drain (exit 0, digest in the
# drain banner). The short-mode tiers of the same batteries (equivalence,
# hot swap, backpressure) run in `make test` / `make race`.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 .

# Long backpressure soak (not part of ci): the same invariants the short
# soak checks — every batch resolves 202 or 429, no admitted event dropped,
# queue empty after drain — at a quarter-million events against a tiny queue.
soak:
	$(GO) test -run TestServeSoak -soak-events 250000 -timeout 900s -count=1 ./internal/serve/

# Property-based robustness battery: 64 random fault compositions from the
# full scenario zoo, each run on the sequential engine and the sharded
# engine at shards=1 and 4, every invariant checked, shard-ladder digests
# byte-compared. Fixed seed, so the CI tier is deterministic.
battery:
	$(GO) test -short -run TestRobustnessBattery ./internal/invariant/

# Time-boxed deep battery (not part of ci): fuzz the scenario generator
# beyond its corpus, then quadruple the random-composition count.
fuzz-battery:
	$(GO) test ./internal/scenario/ -fuzz FuzzGenerate -fuzztime 30s
	$(GO) test -run TestRobustnessBattery -battery-n 256 -timeout 1800s ./internal/invariant/

# Explore the fuzz targets beyond the committed corpora (not part of ci;
# run locally when touching the parser or codec).
fuzz:
	$(GO) test ./internal/scenario/ -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/scenario/ -fuzz FuzzGenerate -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzDecodeEvents -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzEventRoundTrip -fuzztime 30s
	$(GO) test ./internal/checkpoint/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/serve/ -fuzz FuzzHTTPIngest -fuzztime 30s
	$(GO) test ./internal/serve/ -fuzz FuzzParseBatch -fuzztime 30s

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Sharded-engine smoke: one clean short-mode episode plus the shards=1 vs
# shards=N equivalence on the small fixture. The full invariance battery
# (all golden fixtures, every shard count) runs in `make test`.
shard-smoke:
	$(GO) test -short -run 'TestShardSmoke|TestShardCountInvariance' ./internal/shard/ .

# Re-measure slot-stepping throughput (legacy vs shard ladder, three
# scales, best of three reps each) and rewrite BENCH_sharding.json. Not in
# ci: the full tier steps the paper's 20,130-taxi fleet for ~2 minutes.
bench-record:
	$(GO) test -run TestRecordShardingBench -recordbench -timeout 1800s .
	$(GO) test -run TestRecordBatteryBench -recordbench -timeout 1800s .
	$(GO) test -run TestRecordHotpathBench -recordbench -benchscale=full -timeout 1800s .
	$(GO) test -run TestRecordNNBench -recordbench -benchscale=full -timeout 1800s .
	$(GO) test -run TestRecordServeBench -recordbench -benchscale=full -timeout 1800s .
