# CI entry points. `make ci` is the gate every change must pass:
# vet + build + the full test suite, then the short tier again under the
# race detector (the parallel runtime's serial≡parallel tests stay enabled
# in short mode precisely so the race pass exercises them).

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short tier under the race detector: fast tests plus the worker-invariance
# determinism tests, which fan training and evaluation across goroutines.
race:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
