# CI entry points. `make ci` is the gate every change must pass:
# vet + build + the full test suite, then the short tier again under the
# race detector (the parallel runtime's serial≡parallel tests stay enabled
# in short mode precisely so the race pass exercises them), then the
# coverage floor on the fault-injection surface.

GO ?= go

# Statement-coverage floor for the scenario engine and the trace codec —
# the packages whose tests ARE the regression harness (golden digests,
# fuzz corpora): uncovered code there is unpinned behavior.
COVER_PKGS = ./internal/scenario/ ./internal/trace/
COVER_FLOOR = 70

.PHONY: ci vet build test race cover smoke fuzz bench

ci: vet build test race cover smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short tier under the race detector: fast tests plus the worker-invariance
# determinism tests, which fan training and evaluation across goroutines.
race:
	$(GO) test -short -race ./...

# Enforce the coverage floor per package (committed fuzz seed corpora run
# as ordinary test cases here, so short mode still replays them).
cover:
	@for pkg in $(COVER_PKGS); do \
		$(GO) test -short -cover -coverprofile=cover.out $$pkg || exit 1; \
		pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		rm -f cover.out; \
		echo "$$pkg statement coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN {exit (p+0 < f) ? 1 : 0}' || \
			{ echo "coverage below floor for $$pkg"; exit 1; }; \
	done

# Empty-distribution regression smoke: drive the report CLI through the
# committed zero-trip/zero-charge fixture with telemetry on. A median or
# percentile called on an empty series panics here before it can ship.
smoke:
	$(GO) run ./cmd/benchtab -scale small -gt-only -telemetry \
		-scenario testdata/scenarios/total-blackout.json > /dev/null

# Explore the fuzz targets beyond the committed corpora (not part of ci;
# run locally when touching the parser or codec).
fuzz:
	$(GO) test ./internal/scenario/ -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzDecodeEvents -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzEventRoundTrip -fuzztime 30s

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
